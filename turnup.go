// Package turnup reproduces "Turning Up the Dial: the Evolution of a
// Cybercrime Market Through SET-UP, STABLE, and COVID-19 Eras" (Vu et al.,
// ACM IMC 2020) as a Go library.
//
// The proprietary CrimeBB dataset is replaced by a calibrated agent-based
// marketplace simulator (see DESIGN.md §2); everything downstream — the
// contract state machine, text mining, social-network measures, latent
// class models, cold-start clustering, and zero-inflated Poisson
// regressions — is implemented from scratch on the Go standard library.
//
// This package is the public facade: generate (or load) a dataset and run
// any or all of the paper's analyses.
//
//	d, err := turnup.Generate(turnup.Config{Seed: 1, Scale: 0.1})
//	...
//	res, err := turnup.Run(d, turnup.RunOptions{Seed: 1})
//	fmt.Print(turnup.RenderAll(res))
package turnup

import (
	"context"
	"io"

	"turnup/internal/analysis"
	"turnup/internal/dataset"
	"turnup/internal/market"
	"turnup/internal/obs"
	"turnup/internal/report"
	"turnup/internal/rng"
)

// Tracer records a tree of nested pipeline spans (see internal/obs). Attach
// one to Config.Trace and RunOptions.Trace to time a run; a nil Tracer is
// free.
type Tracer = obs.Tracer

// Registry holds a run's counters, gauges, and histograms.
type Registry = obs.Registry

// NewTracer starts a tracer whose root span carries name.
func NewTracer(name string) *Tracer { return obs.NewTracer(name) }

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Config controls dataset generation. Scale 1.0 reproduces the paper-sized
// corpus (~190k contracts, ~27k users over 25 months); smaller scales
// shrink every volume target proportionally.
type Config = market.Config

// Dataset is the study corpus: users, threads, posts, contracts, and the
// synthetic ledger.
type Dataset = dataset.Dataset

// Truth is the simulator's ground truth (never consumed by the analyses).
type Truth = market.Truth

// Results bundles every reproduced table and figure. SizeBytes estimates
// a completed result's resident heap footprint (struct + reachable
// slices/maps/strings) — the serving tier's byte-accounted result cache
// computes it once at admission and evicts by bytes, not entry count.
type Results = analysis.Suite

// Index is the shared, lazily materialised view of one dataset that every
// analysis stage reads (month buckets, era membership, the obligation
// classification table). The serving tier keeps one per stored dataset and
// extends it incrementally as events are appended (see internal/analysis).
type Index = analysis.Index

// NewIndex wraps a dataset; nothing is computed until a group is first
// requested. Pass it back through RunOptions.Index to share derived
// groupings across runs over the same dataset.
func NewIndex(d *Dataset) *Index { return analysis.NewIndex(d) }

// Generate simulates a marketplace corpus.
func Generate(cfg Config) (*Dataset, error) {
	return GenerateCtx(context.Background(), cfg)
}

// GenerateCtx is Generate with cooperative cancellation: the simulator
// checks ctx between simulated months, so a cancelled context stops a
// long Scale-1.0 generation within one month's work.
func GenerateCtx(ctx context.Context, cfg Config) (*Dataset, error) {
	d, _, err := market.GenerateContext(ctx, cfg)
	return d, err
}

// GenerateWithTruth also returns the simulator's ground truth, for
// calibration studies.
func GenerateWithTruth(cfg Config) (*Dataset, *Truth, error) {
	return market.Generate(cfg)
}

// Save writes the dataset into dir: the canonical CSV pair
// (contracts.csv, users.csv) plus the versioned binary form (dataset.bin)
// Load prefers.
func Save(d *Dataset, dir string) error { return d.SaveDir(dir) }

// Load reads a dataset previously written by Save, decoding dataset.bin
// when present and falling back to the CSV pair. Loaded datasets carry
// an empty ledger, so the §4.5 high-value audit reports chain-quoting
// contracts as unverifiable (see Dataset.HasLedger).
func Load(dir string) (*Dataset, error) { return dataset.LoadDir(dir) }

// ReadCSV parses a dataset from its CSV pair — the hfgen/Save format —
// without touching the filesystem; it is the in-memory form of Load used
// by hfserved's upload endpoint. The ledger caveat on Load applies: CSV
// round-trips drop chain evidence, so d.HasLedger() reports false and the
// §4.5 audit counts high-value contracts as unverifiable. Use
// d.Digest() for the content digest the serving layer keys caches on.
func ReadCSV(contracts, users io.Reader) (*Dataset, error) {
	return dataset.Read(contracts, users)
}

// ContentTypeBinary is the Content-Type under which the binary dataset
// form travels over HTTP (uploads and router replication).
const ContentTypeBinary = dataset.ContentTypeBinary

// ReadBinary parses a dataset from its versioned binary on-disk form —
// the dataset.bin file Save writes alongside the CSV pair. The decoded
// corpus is digest-identical to the CSV pair it was encoded from; the
// ledger caveat on Load applies here too.
func ReadBinary(r io.Reader) (*Dataset, error) { return dataset.DecodeBinary(r) }

// WriteBinary encodes d in the versioned binary dataset format; the
// counterpart of ReadBinary.
func WriteBinary(w io.Writer, d *Dataset) error { return d.EncodeBinary(w) }

// RunOptions selects which analyses Run performs.
type RunOptions struct {
	// Seed drives the stochastic analyses (clustering, latent classes).
	Seed uint64
	// LatentClassK is the number of behaviour classes (default 12, the
	// paper's choice).
	LatentClassK int
	// SkipModels skips the expensive statistical models (Tables 6-10),
	// keeping only the descriptive analyses.
	SkipModels bool
	// Workers caps how many analysis stages run concurrently; <= 0 means
	// runtime.GOMAXPROCS(0). Results are bit-for-bit identical for every
	// worker count.
	Workers int
	// Stages selects a stage subset by name (see analysis.Stages for the
	// declared DAG); each requested stage's transitive dependencies are
	// added automatically. Empty means every stage.
	Stages []string
	// Index, when non-nil and wrapping the same dataset passed to Run, is
	// reused instead of deriving fresh groupings — the serving tier's
	// incremental-ingest fast path. An Index over a different dataset is
	// ignored.
	Index *Index

	// Trace, when non-nil, records one span per analysis stage.
	Trace *Tracer
	// Metrics, when non-nil, receives stage timings and audit counters.
	Metrics *Registry
	// Progress, when non-nil, is called with each stage name just before
	// the stage runs — long Scale-1.0 runs use it for stderr progress.
	Progress func(stage string)
}

// Run executes the analysis pipeline over the dataset.
func Run(d *Dataset, opts RunOptions) (*Results, error) {
	return RunCtx(context.Background(), d, opts)
}

// RunCtx is Run with cooperative cancellation: a cancelled context stops
// the stage scheduler from dispatching further stages, drains the ones in
// flight, and returns ctx.Err().
func RunCtx(ctx context.Context, d *Dataset, opts RunOptions) (*Results, error) {
	return analysis.RunSuiteCtx(ctx, d, analysis.SuiteOptions{
		LatentClassK: opts.LatentClassK,
		SkipModels:   opts.SkipModels,
		Workers:      opts.Workers,
		Stages:       opts.Stages,
		Index:        opts.Index,
		Trace:        opts.Trace,
		Metrics:      opts.Metrics,
		Progress:     opts.Progress,
	}, rng.New(opts.Seed))
}

// StageInfo describes one declared stage of the analysis DAG: its name,
// the stages whose results it reads, and whether it belongs to the
// statistical-model tier that SkipModels drops.
type StageInfo = analysis.StageInfo

// Stages returns the declared analysis stage DAG in canonical
// (topological) order — the vocabulary RunOptions.Stages accepts.
func Stages() []StageInfo { return analysis.Stages() }

// ValidateStages reports an error naming the valid stage vocabulary when
// any requested stage name is unknown. RunCtx would fail identically, but
// validating upfront lets callers reject bad input before generating a
// corpus (hfanalyze) or admitting a request (hfserved's 400 responses).
func ValidateStages(names ...string) error { return analysis.ValidateStages(names) }

// Compare builds the paper-vs-measured comparison rows for EXPERIMENTS.md.
func Compare(r *Results) []report.Comparison { return report.Compare(r) }

// RenderComparisons renders comparison rows as a markdown table.
func RenderComparisons(rows []report.Comparison) string {
	return report.RenderComparisons(rows)
}
