package turnup

import (
	"bytes"
	"strings"
	"testing"

	"turnup/internal/analysis"
	"turnup/internal/obs"
)

// TestTracedPipelineCoversErasAndStages runs a small traced
// generate→analyse cycle and checks the span tree covers every simulated
// era and every Suite stage — the shape hfrepro -trace promises.
func TestTracedPipelineCoversErasAndStages(t *testing.T) {
	tracer := NewTracer("test")
	reg := NewRegistry()
	d, err := Generate(Config{Seed: 3, Scale: 0.02, Trace: tracer, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var stages []string
	if _, err := Run(d, RunOptions{
		Seed: 3, SkipModels: true, Trace: tracer, Metrics: reg,
		Progress: func(stage string) { stages = append(stages, stage) },
	}); err != nil {
		t.Fatal(err)
	}
	root := tracer.Finish()

	records := map[string]obs.Record{}
	for _, rec := range obs.Flatten(root) {
		records[rec.Path] = rec
	}
	for _, era := range []string{"SET-UP", "STABLE", "COVID-19"} {
		if _, ok := records["test/market/generate/era/"+era]; !ok {
			t.Errorf("trace missing era span %s", era)
		}
	}
	for _, stage := range analysis.Stages() {
		if stage.Model {
			continue // SkipModels run
		}
		rec, ok := records["test/analysis/RunSuite/analysis/"+stage.Name]
		if !ok {
			t.Errorf("trace missing stage span %s", stage.Name)
			continue
		}
		if _, ok := rec.Attrs["worker"]; !ok {
			t.Errorf("stage span %s missing worker attr", stage.Name)
		}
		if !contains(stages, stage.Name) {
			t.Errorf("progress callback missing stage %s", stage.Name)
		}
	}

	// Metrics recorded on both sides of the pipeline.
	if got := reg.Counter("market_contracts_total").Value(); got != int64(len(d.Contracts)) {
		t.Errorf("market_contracts_total = %d, want %d", got, len(d.Contracts))
	}
	if reg.Counter("analysis_stages_total").Value() == 0 {
		t.Error("analysis_stages_total not incremented")
	}
	if reg.Histogram("analysis_stage_seconds").Count() == 0 {
		t.Error("analysis_stage_seconds empty")
	}
	if got := reg.Gauge("analysis_stages_inflight").Value(); got != 0 {
		t.Errorf("analysis_stages_inflight = %v after the run, want 0", got)
	}

	// The JSON exporter round-trips the live tree.
	var buf bytes.Buffer
	if err := obs.WriteJSON(&buf, root); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(obs.Flatten(root)) {
		t.Errorf("round-trip records = %d, want %d", len(recs), len(obs.Flatten(root)))
	}
}

// TestUntracedRunUnchanged pins the zero-value path: no options set means
// no spans, no metrics, identical results to the seed behaviour.
func TestUntracedRunUnchanged(t *testing.T) {
	d, _ := apiSuite(t)
	res, err := Run(d, RunOptions{Seed: 5, SkipModels: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Taxonomy.Total != len(d.Contracts) {
		t.Errorf("taxonomy total = %d", res.Taxonomy.Total)
	}
}

// TestLoadedDatasetAuditUnverifiable pins the satellite fix: a dataset that
// carries no ledger must surface high-value contracts as Unverifiable (in
// the struct, the rendered table, and the metric) instead of silently
// reporting an audit of zeros.
func TestLoadedDatasetAuditUnverifiable(t *testing.T) {
	d, err := Generate(Config{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Save(d, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	res, err := Run(loaded, RunOptions{Seed: 7, SkipModels: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	audit := res.Values.Audit
	if audit.HighValue == 0 {
		t.Skip("no high-value contracts at this scale/seed")
	}
	if audit.Unverifiable != audit.HighValue {
		t.Errorf("Unverifiable = %d, want all %d high-value contracts", audit.Unverifiable, audit.HighValue)
	}
	if audit.Confirmed != 0 || audit.Revised != 0 || audit.Unclear != 0 {
		t.Errorf("ledger-less audit reported confirmed/revised/unclear = %d/%d/%d",
			audit.Confirmed, audit.Revised, audit.Unclear)
	}
	if got := reg.Counter("audit_unverifiable_total").Value(); got != int64(audit.Unverifiable) {
		t.Errorf("audit_unverifiable_total = %d, want %d", got, audit.Unverifiable)
	}
	if out := RenderAll(res); !strings.Contains(out, "unverifiable") {
		t.Error("rendered tables do not mention the unverifiable count")
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
