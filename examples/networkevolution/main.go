// Network evolution: reproduce §4.2's social-network analysis — the
// power-law degree distributions of the contractual graph (Figure 7) and
// the growth of maximum/mean degrees across the three eras (Figure 8).
//
// Run with:
//
//	go run ./examples/networkevolution
package main

import (
	"fmt"
	"log"
	"sort"

	"turnup"
	"turnup/internal/analysis"
	"turnup/internal/graph"
	"turnup/internal/report"
)

func main() {
	log.SetFlags(0)

	d, err := turnup.Generate(turnup.Config{Seed: 17, Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	created := analysis.DegreeDist(d.Contracts)
	completed := analysis.DegreeDist(d.Completed())
	fmt.Print(report.DegreeDist("created", created))
	fmt.Print(report.DegreeDist("completed", completed))

	// Show the head of the raw degree histogram: the paper's Figure 7
	// plots degrees 0-15, where most of the mass sits.
	fmt.Println("\nraw degree histogram (created contracts, degrees 1-15):")
	degrees := make([]int, 0, len(created.Histogram[graph.Raw]))
	for deg := range created.Histogram[graph.Raw] {
		degrees = append(degrees, deg)
	}
	sort.Ints(degrees)
	var series []float64
	for deg := 1; deg <= 15; deg++ {
		n := created.Histogram[graph.Raw][deg]
		fmt.Printf("  degree %2d: %6d nodes\n", deg, n)
		series = append(series, float64(n))
	}
	fmt.Printf("  shape: %s (power-law decay)\n\n", report.Sparkline(series))

	// Figure 8: the cumulative network's degree growth. Max raw and max
	// inbound track each other; outbound stays far lower — hubs are formed
	// by accepting contracts, not initiating them.
	growth := analysis.DegreeGrowthTrend(d, false)
	fmt.Print(report.DegreeGrowth(growth))
}
