// Cold start: reproduce §5.2 — how new users overcome the cold start
// problem. Clusters STABLE-era cold starters (Table 7), then fits the
// Table 9 zero-inflated Poisson models to show how trust signals predict
// completed contracts.
//
// Run with:
//
//	go run ./examples/coldstart
package main

import (
	"fmt"
	"log"

	"turnup"
	"turnup/internal/analysis"
	"turnup/internal/report"
	"turnup/internal/rng"
)

func main() {
	log.SetFlags(0)

	d, err := turnup.Generate(turnup.Config{Seed: 7, Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	// Two-stage k-means over the cold start variables.
	cs, err := analysis.ColdStart(d, rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.ColdStart(cs))
	fmt.Println()

	// Zero-inflated Poisson: how activity and trust signals predict
	// completed contracts in each era.
	zips, err := analysis.ZIPAllUsers(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.ZIPModels("Table 9: Zero-Inflated Poisson regressions (all users)", zips))

	// The paper's headline: the Vuong test prefers ZIP over plain Poisson,
	// i.e. some users are structural non-completers.
	fmt.Println()
	for _, z := range zips {
		verdict := "ZIP preferred"
		if z.Model.Vuong <= 0 {
			verdict = "inconclusive"
		}
		fmt.Printf("%-9s Vuong z = %+.2f → %s\n", z.Era, z.Model.Vuong, verdict)
	}
}
