// Quickstart: generate a small synthetic marketplace corpus and print the
// paper's headline descriptive tables (Table 1, Table 2, Figure 1).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"turnup"
	"turnup/internal/forum"
)

func main() {
	log.SetFlags(0)

	// A 5% scale corpus (~9.5k contracts) generates in well under a second.
	d, err := turnup.Generate(turnup.Config{Seed: 42, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	s := d.Summary()
	fmt.Printf("generated %d contracts by %d users (%d completed, %d public)\n\n",
		s.Contracts, s.Users, s.Completed, s.Public)

	// Run only the descriptive analyses — the statistical models (Tables
	// 6-10) are skipped to keep the quickstart instant.
	res, err := turnup.Run(d, turnup.RunOptions{Seed: 42, SkipModels: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SALE dominates with %.1f%% of contracts; EXCHANGE completes %.1f%% of the time vs SALE's %.1f%%.\n\n",
		100*float64(res.Taxonomy.TypeTotal(forum.Sale))/float64(res.Taxonomy.Total),
		100*res.Taxonomy.CompletionRate(forum.Exchange),
		100*res.Taxonomy.CompletionRate(forum.Sale))

	// Everything has a renderer; print the full descriptive set.
	fmt.Print(turnup.RenderAll(res))
}
