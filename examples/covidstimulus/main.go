// COVID stimulus: reproduce the paper's headline finding that the pandemic
// was a *stimulus* of the market rather than a *transformation* — volumes
// spike in April 2020 while the composition of contract types, products,
// and payment methods stays essentially unchanged.
//
// Run with:
//
//	go run ./examples/covidstimulus
package main

import (
	"fmt"
	"log"
	"math"

	"turnup"
	"turnup/internal/analysis"
	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/report"
)

func main() {
	log.SetFlags(0)

	d, err := turnup.Generate(turnup.Config{Seed: 23, Scale: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	// --- Stimulus: the volume spike ---
	g := analysis.Growth(d)
	fmt.Println("Monthly created contracts (COVID-19 window highlighted):")
	fmt.Print(report.MonthHeader())
	fmt.Print(report.IntSeries("created", g.Created[:]))
	fmt.Printf("shape: %s\n\n", report.Sparkline(toF(g.Created[:])))

	aprStable, aprCovid := g.Created[10], g.Created[22]
	fmt.Printf("April 2019 peak: %d; April 2020 peak: %d (%.0f%% higher)\n\n",
		aprStable, aprCovid, 100*(float64(aprCovid)/float64(aprStable)-1))

	// --- Not a transformation: shares barely move ---
	ts := analysis.TypeShareTrend(d)
	fmt.Println("Contract type shares, late STABLE vs COVID-19 peak:")
	maxShift := 0.0
	for _, typ := range forum.ContractTypes {
		before := ts.Created[19][typ] // January 2020
		during := ts.Created[22][typ] // April 2020
		shift := math.Abs(during - before)
		if shift > maxShift {
			maxShift = shift
		}
		fmt.Printf("  %-11s %6.1f%% → %6.1f%%  (shift %+.1f pts)\n",
			typ, 100*before, 100*during, 100*(during-before))
	}
	verdict := "STIMULUS (composition stable)"
	if maxShift > 0.10 {
		verdict = "TRANSFORMATION (composition shifted)"
	}
	fmt.Printf("largest share shift: %.1f points → %s\n\n", 100*maxShift, verdict)

	// --- The same story for products and payment methods ---
	prod := analysis.ProductTrends(d)
	fmt.Println("Top-5 product categories, monthly completed public contracts:")
	for _, cat := range prod.Categories {
		counts := prod.Counts[cat]
		fmt.Printf("  %-24s %s\n", cat, report.Sparkline(intToF(counts[:])))
	}
	fmt.Println()

	// --- Era summary ---
	for _, e := range dataset.Eras {
		cs := d.InEra(e)
		perMonth := float64(len(cs)) / float64(len(e.Months()))
		fmt.Printf("%-9s %6d contracts over %2d months (%.0f/month)\n",
			e, len(cs), len(e.Months()), perMonth)
	}
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func intToF(xs []int) []float64 { return toF(xs) }
