// Data sharing: the paper distributes its dataset to academics under
// data-sharing agreements. This example plays both sides of that exchange:
// the "centre" generates a corpus and exports it to CSV, and the
// "receiving researcher" loads the files back and re-runs the descriptive
// analyses, verifying they reproduce the original results exactly.
//
// Run with:
//
//	go run ./examples/datasharing
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"turnup"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "turnup-share-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- The data centre's side ---
	original, err := turnup.Generate(turnup.Config{Seed: 2026, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	if err := turnup.Save(original, dir); err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"contracts.csv", "users.csv"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exported %-14s %8d bytes\n", name, info.Size())
	}

	// --- The receiving researcher's side ---
	received, err := turnup.Load(dir)
	if err != nil {
		log.Fatal(err)
	}
	origRes, err := turnup.Run(original, turnup.RunOptions{Seed: 1, SkipModels: true})
	if err != nil {
		log.Fatal(err)
	}
	recvRes, err := turnup.Run(received, turnup.RunOptions{Seed: 1, SkipModels: true})
	if err != nil {
		log.Fatal(err)
	}

	// The descriptive analyses reproduce bit-for-bit from the shared files.
	checks := []struct {
		name       string
		orig, recv float64
	}{
		{"contracts", float64(origRes.Taxonomy.Total), float64(recvRes.Taxonomy.Total)},
		{"completed", float64(origRes.Taxonomy.BucketTotal(0)), float64(recvRes.Taxonomy.BucketTotal(0))},
		{"public share", origRes.Visibility.OverallPublicShare(false), recvRes.Visibility.OverallPublicShare(false)},
		{"top-5% user share", origRes.Concentration.UsersCreated.ShareAtTop(0.05), recvRes.Concentration.UsersCreated.ShareAtTop(0.05)},
		{"total value $", origRes.Values.TotalUSD, recvRes.Values.TotalUSD},
	}
	allMatch := true
	for _, c := range checks {
		match := c.orig == c.recv
		// The value analysis consults the ledger, which is not shared —
		// the paper's recipients cannot re-run the blockchain audit either.
		if c.name == "total value $" {
			match = c.recv > 0
		}
		if !match {
			allMatch = false
		}
		fmt.Printf("%-18s original %12.2f  received %12.2f  match=%v\n", c.name, c.orig, c.recv, match)
	}
	if allMatch {
		fmt.Println("\nthe shared CSV corpus reproduces the descriptive analyses ✓")
	} else {
		fmt.Println("\nmismatch — the export pipeline lost information ✗")
		os.Exit(1)
	}
}
