package turnup

import (
	"strings"
	"sync"
	"testing"
)

var (
	apiOnce sync.Once
	apiData *Dataset
	apiRes  *Results
)

func apiSuite(t *testing.T) (*Dataset, *Results) {
	t.Helper()
	apiOnce.Do(func() {
		d, err := Generate(Config{Seed: 5, Scale: 0.04})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(d, RunOptions{Seed: 5, LatentClassK: 8})
		if err != nil {
			t.Fatal(err)
		}
		apiData, apiRes = d, res
	})
	return apiData, apiRes
}

func TestGenerateAndRun(t *testing.T) {
	d, res := apiSuite(t)
	if len(d.Contracts) == 0 || len(d.Users) == 0 {
		t.Fatal("empty dataset")
	}
	if res.Taxonomy.Total != len(d.Contracts) {
		t.Errorf("taxonomy total %d", res.Taxonomy.Total)
	}
	if res.LTM == nil || res.ColdStart == nil || res.ZIPAll == nil || res.ZIPSub == nil {
		t.Fatal("model results missing")
	}
}

func TestRunSkipModels(t *testing.T) {
	d, _ := apiSuite(t)
	res, err := Run(d, RunOptions{Seed: 5, SkipModels: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.LTM != nil || res.ColdStart != nil {
		t.Error("SkipModels still ran the models")
	}
	if res.Taxonomy.Total == 0 {
		t.Error("descriptive analyses missing")
	}
}

func TestRenderAllMentionsEveryArtefact(t *testing.T) {
	_, res := apiSuite(t)
	out := RenderAll(res)
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Table 6", "Table 7", "Table 8", "Table 9", "Table 10",
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11", "Figure 12", "Figure 13",
		"SALE", "Bitcoin", "currency exchange",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAll output missing %q", want)
		}
	}
}

func TestCompareProducesRows(t *testing.T) {
	_, res := apiSuite(t)
	rows := Compare(res)
	if len(rows) < 40 {
		t.Fatalf("only %d comparison rows", len(rows))
	}
	held := 0
	for _, r := range rows {
		if r.Held {
			held++
		}
	}
	// At the tiny API-test scale a few noisy claims may flip; the bulk
	// must hold.
	if float64(held) < 0.8*float64(len(rows)) {
		t.Errorf("only %d/%d shape claims held", held, len(rows))
	}
	md := RenderComparisons(rows)
	if !strings.Contains(md, "| ID | Metric |") {
		t.Error("markdown header missing")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d, _ := apiSuite(t)
	dir := t.TempDir()
	if err := Save(d, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Contracts) != len(d.Contracts) || len(loaded.Users) != len(d.Users) {
		t.Errorf("round trip: %d contracts, %d users", len(loaded.Contracts), len(loaded.Users))
	}
	// A loaded dataset supports the descriptive pipeline.
	res, err := Run(loaded, RunOptions{Seed: 1, SkipModels: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Taxonomy.Total != len(d.Contracts) {
		t.Errorf("loaded taxonomy total %d", res.Taxonomy.Total)
	}
}
