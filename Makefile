# Verification tiers and perf tooling (see ROADMAP.md).
#
#   make tier1           # the seed contract: build + tests
#   make tier2           # vet + tests under the race detector
#   make bench-baseline  # 1x bench smoke → BENCH_baseline.json snapshot
#   make check           # tier1 + tier2

.PHONY: tier1 tier2 check bench-baseline

tier1:
	go build ./... && go test ./...

tier2:
	go vet ./... && go test -race ./...

check: tier1 tier2

# Runs every benchmark exactly once and snapshots ns/op per stage into
# BENCH_baseline.json. Future perf PRs diff against this file; regenerate it
# (on the same machine class) whenever a hot path intentionally changes.
bench-baseline:
	go test -run '^$$' -bench . -benchtime 1x . \
	| awk 'BEGIN { print "{"; first = 1 } \
	  /^Benchmark/ { name = $$1; sub(/-[0-9]+$$/, "", name); \
	    if (!first) printf(",\n"); first = 0; \
	    printf("  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s}", name, $$2, $$3) } \
	  END { print "\n}" }' \
	> BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"
