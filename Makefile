# Verification tiers and perf tooling (see ROADMAP.md).
#
#   make tier1           # the seed contract: build + tests
#   make tier2           # vet + tests under the race detector
#   make bench-baseline  # 1x bench smoke → BENCH_baseline.json snapshot
#   make bench-parallel  # sequential-vs-parallel suite → BENCH_parallel.json
#   make bench-index     # index/memoisation benchmarks → BENCH_index.json
#   make bench-smoke     # fail if the suite regresses >2x vs BENCH_index.json
#   make bench-columnar  # columnar-core benchmarks → BENCH_columnar.json + alloc gate
#   make bench-serve     # cache-hit vs cold-request latency
#   make bench-cache     # render-cache hot-hit vs re-render → BENCH_cache.json + 2x gate
#   make bench-load      # hfload run against a booted hfserved → BENCH_serve_load.json
#   make bench-load-router # hfload run through hfrouter over 2 shards → BENCH_router_load.json
#   make router-smoke    # boot 2 shards + hfrouter, verify routing end to end
#   make ingest-smoke    # upload a truncated corpus, stream the rest via events, diff vs hfanalyze
#   make serve           # run the HTTP analysis service (hfserved)
#   make check           # tier1 + tier2

.PHONY: tier1 tier2 check bench-baseline bench-parallel bench-index bench-smoke bench-columnar bench-serve bench-cache bench-load bench-load-router router-smoke ingest-smoke serve

# Benchmarks that claim parallel speedups must run at full machine width;
# an inherited GOMAXPROCS=1 (containers, cgroup limits) silently turns
# them into sequential measurements, which is how the original
# BENCH_parallel.json came to be recorded at gomaxprocs 1.
NPROC := $(shell nproc 2>/dev/null || echo 1)

tier1:
	go build ./... && go test ./...

tier2:
	go vet ./... && go test -race ./...

check: tier1 tier2

# Runs every benchmark exactly once and snapshots ns/op per stage into
# BENCH_baseline.json. Future perf PRs diff against this file; regenerate it
# (on the same machine class) whenever a hot path intentionally changes.
bench-baseline:
	go test -run '^$$' -bench . -benchtime 1x . \
	| awk 'BEGIN { print "{"; first = 1 } \
	  /^Benchmark/ { name = $$1; sub(/-[0-9]+$$/, "", name); \
	    if (!first) printf(",\n"); first = 0; \
	    printf("  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s}", name, $$2, $$3) } \
	  END { print "\n}" }' \
	> BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"

# Shared JSON emitter for -benchmem benchmark output: one object per
# benchmark with iterations, ns/op, B/op, allocs/op, and the gomaxprocs
# the run actually used (parsed from the -N name suffix; absent means 1).
BENCH_JSON_AWK = 'BEGIN { print "{"; first = 1 } \
	  /^Benchmark/ { name = $$1; procs = 1; \
	    if (match(name, /-[0-9]+$$/)) { procs = substr(name, RSTART + 1); sub(/-[0-9]+$$/, "", name) } \
	    if (!first) printf(",\n"); first = 0; \
	    printf("  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"gomaxprocs\": %s}", name, $$2, $$3, $$5, $$7, procs) } \
	  END { print "\n}" }'

# Records the full suite (models, K=6, Scale 0.1) pinned to one worker vs
# the default pool, plus the descriptive pair at bench scale, into
# BENCH_parallel.json next to BENCH_baseline.json. The gomaxprocs field
# qualifies the numbers: on one core the pairs coincide within noise.
bench-parallel:
	GOMAXPROCS=$(NPROC) go test -run '^$$' -benchtime 3x -benchmem . \
	  -bench 'SuiteScale10|SuiteDescriptive(Sequential)?$$' \
	| awk $(BENCH_JSON_AWK) \
	> BENCH_parallel.json
	@echo "wrote BENCH_parallel.json (gomaxprocs $(NPROC))"

# Records the analysis-index benchmarks — the descriptive suite over the
# shared index, memoized vs direct corpus categorisation, and the cold
# obligation-table build — into BENCH_index.json. BENCH_baseline.json is
# the pre-index "before"; this file is the "after" and the bench-smoke
# reference. Regenerate it (same machine class) when a hot path
# intentionally changes.
bench-index:
	GOMAXPROCS=$(NPROC) go test -run '^$$' -benchtime 3x -benchmem . \
	  -bench 'SuiteDescriptive$$|CategoriseCorpus|IndexObligationBuild' \
	| awk $(BENCH_JSON_AWK) \
	> BENCH_index.json
	@echo "wrote BENCH_index.json (gomaxprocs $(NPROC))"

# Fails when one run of the descriptive suite lands more than 2x above
# the committed BENCH_index.json snapshot. One iteration is noisy, hence
# the wide factor: this catches reintroduced corpus rescans (10x-class
# regressions), not percent-level drift. CI runs it on every push.
bench-smoke:
	@snap=$$(awk '/"BenchmarkSuiteDescriptive"/ { match($$0, /"ns_per_op": [0-9.]+/); print substr($$0, RSTART + 13, RLENGTH - 13) }' BENCH_index.json); \
	now=$$(go test -run '^$$' -bench 'SuiteDescriptive$$' -benchtime 1x . | awk '/^BenchmarkSuiteDescriptive/ { print $$3 }'); \
	awk -v now="$$now" -v snap="$$snap" 'BEGIN { \
	  if (now == "" || snap == "") { print "bench-smoke: missing measurement or snapshot"; exit 1 } \
	  if (now + 0 > 2 * snap) { printf("bench-smoke: FAIL %.0f ns/op is >2x the %.0f snapshot\n", now, snap); exit 1 } \
	  printf("bench-smoke: ok %.0f ns/op (%.2fx of the %.0f snapshot)\n", now, now / snap, snap) }'

# Records the columnar-core benchmarks — the descriptive suite over the
# dataset-cached groups plus the binary-vs-CSV load pair — into
# BENCH_columnar.json, then gates against BENCH_index.json: the refactor
# must at least halve the suite's allocs/op and must not exceed 2x its
# ns/op snapshot. Regenerate the snapshot (same machine class) when a hot
# path intentionally changes.
bench-columnar:
	GOMAXPROCS=$(NPROC) go test -run '^$$' -benchtime 3x -benchmem . \
	  -bench 'SuiteDescriptive$$|DatasetBinaryLoad|DatasetCSVLoad' \
	| awk $(BENCH_JSON_AWK) \
	> BENCH_columnar.json
	@echo "wrote BENCH_columnar.json (gomaxprocs $(NPROC))"
	@snapns=$$(awk '/"BenchmarkSuiteDescriptive"/ { match($$0, /"ns_per_op": [0-9.]+/); print substr($$0, RSTART + 13, RLENGTH - 13) }' BENCH_index.json); \
	snapalloc=$$(awk '/"BenchmarkSuiteDescriptive"/ { match($$0, /"allocs_per_op": [0-9.]+/); print substr($$0, RSTART + 17, RLENGTH - 17) }' BENCH_index.json); \
	nowns=$$(awk '/"BenchmarkSuiteDescriptive"/ { match($$0, /"ns_per_op": [0-9.]+/); print substr($$0, RSTART + 13, RLENGTH - 13) }' BENCH_columnar.json); \
	nowalloc=$$(awk '/"BenchmarkSuiteDescriptive"/ { match($$0, /"allocs_per_op": [0-9.]+/); print substr($$0, RSTART + 17, RLENGTH - 17) }' BENCH_columnar.json); \
	awk -v nowns="$$nowns" -v snapns="$$snapns" -v nowalloc="$$nowalloc" -v snapalloc="$$snapalloc" 'BEGIN { \
	  if (nowns == "" || snapns == "" || nowalloc == "" || snapalloc == "") { print "bench-columnar: missing measurement or snapshot"; exit 1 } \
	  if (nowalloc + 0 > snapalloc / 2) { printf("bench-columnar: FAIL %.0f allocs/op is not a 2x drop from the %.0f snapshot\n", nowalloc, snapalloc); exit 1 } \
	  if (nowns + 0 > 2 * snapns) { printf("bench-columnar: FAIL %.0f ns/op is >2x the %.0f snapshot\n", nowns, snapns); exit 1 } \
	  printf("bench-columnar: ok %.0f allocs/op (%.2fx of %.0f), %.0f ns/op (%.2fx of %.0f)\n", \
	    nowalloc, nowalloc / snapalloc, snapalloc, nowns, nowns / snapns, snapns) }'

# Cache-hit vs cold-request latency for the HTTP analysis service; the
# gap is the result cache's value proposition (see DESIGN.md §3.3).
bench-serve:
	go test -run '^$$' -bench 'Serve' -benchtime 3x ./internal/serve/

# Hot-path render-cache benchmark: the same fully-warm /v1/report request
# served from the rendered-section cache versus re-rendered on every hit
# (render tier disabled). Snapshots ns/op and B/op into BENCH_cache.json,
# then gates: the cached hit must be at least 2x faster than the
# re-render, or the tier is not paying for its memory.
bench-cache:
	go test -run '^$$' -bench 'ServeHotRender' -benchtime 200x -benchmem ./internal/serve/ \
	| awk $(BENCH_JSON_AWK) \
	> BENCH_cache.json
	@echo "wrote BENCH_cache.json"
	@cached=$$(awk '/"BenchmarkServeHotRenderCached"/ { match($$0, /"ns_per_op": [0-9.]+/); print substr($$0, RSTART + 13, RLENGTH - 13) }' BENCH_cache.json); \
	uncached=$$(awk '/"BenchmarkServeHotRenderUncached"/ { match($$0, /"ns_per_op": [0-9.]+/); print substr($$0, RSTART + 13, RLENGTH - 13) }' BENCH_cache.json); \
	awk -v cached="$$cached" -v uncached="$$uncached" 'BEGIN { \
	  if (cached == "" || uncached == "") { print "bench-cache: missing measurement"; exit 1 } \
	  if (2 * cached > uncached + 0) { printf("bench-cache: FAIL cached hit %.0f ns/op is not 2x faster than the %.0f re-render\n", cached, uncached); exit 1 } \
	  printf("bench-cache: ok cached hit %.0f ns/op, re-render %.0f ns/op (%.1fx)\n", cached, uncached, uncached / cached) }'

# Build version baked into hfserved/hfload (-version flag, /healthz,
# the turnup_build_info metric, and the load report's version field).
VERSION := $(shell git describe --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X turnup/internal/version.override=$(VERSION)"

# End-to-end load run: boot hfserved on a local port, replay the default
# request mix at LOAD_RPS for LOAD_DURATION via hfload, and snapshot the
# per-route latency report into BENCH_serve_load.json (the load-smoke
# gate's baseline — regenerate on the same machine class when serving
# latency intentionally changes). Extra hfload flags go in LOAD_FLAGS,
# e.g. make bench-load LOAD_FLAGS="-mix hot=1 -slo-p99 250ms".
LOAD_ADDR     ?= 127.0.0.1:8098
LOAD_DURATION ?= 10s
LOAD_RPS      ?= 50
bench-load:
	go build $(LDFLAGS) -o /tmp/hfserved ./cmd/hfserved
	go build $(LDFLAGS) -o /tmp/hfload ./cmd/hfload
	@/tmp/hfserved -addr $(LOAD_ADDR) -max-scale 0.05 -log-format none & \
	SERVED=$$!; \
	/tmp/hfload -target http://$(LOAD_ADDR) -wait 30s \
	  -duration $(LOAD_DURATION) -rps $(LOAD_RPS) -seed 1 \
	  -out BENCH_serve_load.json $(LOAD_FLAGS); \
	STATUS=$$?; \
	kill -TERM $$SERVED 2>/dev/null; wait $$SERVED 2>/dev/null; \
	exit $$STATUS

# Routed variant of bench-load: two hfserved shards behind hfrouter, the
# same mix replayed through the router. The report lands in
# BENCH_router_load.json with the per-shard response distribution.
ROUTER_ADDR  ?= 127.0.0.1:8090
SHARD_A_ADDR ?= 127.0.0.1:8101
SHARD_B_ADDR ?= 127.0.0.1:8102
bench-load-router:
	go build $(LDFLAGS) -o /tmp/hfserved ./cmd/hfserved
	go build $(LDFLAGS) -o /tmp/hfrouter ./cmd/hfrouter
	go build $(LDFLAGS) -o /tmp/hfload ./cmd/hfload
	@/tmp/hfserved -addr $(SHARD_A_ADDR) -shard http://$(SHARD_A_ADDR) -max-scale 0.05 -log-format none & A=$$!; \
	/tmp/hfserved -addr $(SHARD_B_ADDR) -shard http://$(SHARD_B_ADDR) -max-scale 0.05 -log-format none & B=$$!; \
	/tmp/hfrouter -addr $(ROUTER_ADDR) -shards http://$(SHARD_A_ADDR),http://$(SHARD_B_ADDR) -log-format none & R=$$!; \
	/tmp/hfload -target http://$(ROUTER_ADDR) -wait 30s \
	  -duration $(LOAD_DURATION) -rps $(LOAD_RPS) -seed 1 \
	  -out BENCH_router_load.json $(LOAD_FLAGS); \
	STATUS=$$?; \
	kill -TERM $$R $$A $$B 2>/dev/null; wait $$R $$A $$B 2>/dev/null; \
	exit $$STATUS

# Boot two shards behind hfrouter and verify the sharded tier end to end:
# the router reports both shards healthy, a dataset uploaded through the
# router is retrievable through the router, the routed report matches
# hfanalyze over the same corpus byte for byte, and two well-known report
# keys land on different shards (X-Shard differs), proving the hash ring
# actually spreads load. See .github/workflows/ci.yml (router-smoke).
router-smoke:
	go build $(LDFLAGS) -o /tmp/hfserved ./cmd/hfserved
	go build $(LDFLAGS) -o /tmp/hfrouter ./cmd/hfrouter
	go build $(LDFLAGS) -o /tmp/hfgen ./cmd/hfgen
	go build $(LDFLAGS) -o /tmp/hfanalyze ./cmd/hfanalyze
	@set -e; \
	/tmp/hfserved -addr $(SHARD_A_ADDR) -shard http://$(SHARD_A_ADDR) -max-scale 0.05 -log-format none & A=$$!; \
	/tmp/hfserved -addr $(SHARD_B_ADDR) -shard http://$(SHARD_B_ADDR) -max-scale 0.05 -log-format none & B=$$!; \
	/tmp/hfrouter -addr $(ROUTER_ADDR) -shards http://$(SHARD_A_ADDR),http://$(SHARD_B_ADDR) -log-format none & R=$$!; \
	trap "kill -TERM $$R $$A $$B 2>/dev/null; wait $$R $$A $$B 2>/dev/null" EXIT; \
	for i in $$(seq 1 100); do \
	  curl -fsS http://$(ROUTER_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -fsS http://$(ROUTER_ADDR)/healthz | grep -q "shards=2/2" || { echo "router-smoke: FAIL shards not all healthy"; exit 1; }; \
	/tmp/hfgen -scale 0.01 -seed 42 -out /tmp/router-smoke-corpus; \
	ID=$$(curl -fsS -F contracts=@/tmp/router-smoke-corpus/contracts.csv \
	  -F users=@/tmp/router-smoke-corpus/users.csv "http://$(ROUTER_ADDR)/v1/datasets?format=json" \
	  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	test -n "$$ID" || { echo "router-smoke: FAIL upload returned no id"; exit 1; }; \
	curl -fsS "http://$(ROUTER_ADDR)/v1/report/growth?dataset=$$ID&models=false" > /tmp/router-smoke-routed.txt; \
	/tmp/hfanalyze -data /tmp/router-smoke-corpus -models=false -sections growth > /tmp/router-smoke-direct.txt; \
	diff -u /tmp/router-smoke-direct.txt /tmp/router-smoke-routed.txt || { echo "router-smoke: FAIL routed report differs from direct analysis"; exit 1; }; \
	S1=$$(curl -fsSI "http://$(ROUTER_ADDR)/v1/report/growth?seed=1&models=false" | tr -d '\r' | awk 'tolower($$1)=="x-shard:" {print $$2}'); \
	SHARD2=$$S1; SEED=2; \
	while [ "$$SHARD2" = "$$S1" ] && [ $$SEED -le 32 ]; do \
	  SHARD2=$$(curl -fsSI "http://$(ROUTER_ADDR)/v1/report/growth?seed=$$SEED&models=false" | tr -d '\r' | awk 'tolower($$1)=="x-shard:" {print $$2}'); \
	  SEED=$$((SEED+1)); \
	done; \
	test -n "$$S1" -a -n "$$SHARD2" -a "$$S1" != "$$SHARD2" || { echo "router-smoke: FAIL report keys did not spread across shards (got $$S1 / $$SHARD2)"; exit 1; }; \
	echo "router-smoke: ok (dataset on its owner, reports spread: $$S1 vs $$SHARD2)"

# Live-ingest smoke: generate a corpus, upload only the first half of its
# contracts, stream the remainder back through POST /v1/datasets/{id}/events
# as CSV rows, and require the generation-2 report to match hfanalyze over
# the complete corpus byte for byte — the end-to-end proof that appends,
# the incremental index, and generation-keyed caching compose correctly.
# See .github/workflows/ci.yml (ingest-smoke).
INGEST_ADDR ?= 127.0.0.1:8099
ingest-smoke:
	go build $(LDFLAGS) -o /tmp/hfserved ./cmd/hfserved
	go build $(LDFLAGS) -o /tmp/hfgen ./cmd/hfgen
	go build $(LDFLAGS) -o /tmp/hfanalyze ./cmd/hfanalyze
	@set -e; \
	/tmp/hfgen -scale 0.01 -seed 42 -out /tmp/ingest-smoke-corpus; \
	TOTAL=$$(wc -l < /tmp/ingest-smoke-corpus/contracts.csv); \
	HALF=$$(( TOTAL / 2 )); \
	head -n $$HALF /tmp/ingest-smoke-corpus/contracts.csv > /tmp/ingest-smoke-head.csv; \
	{ head -n 1 /tmp/ingest-smoke-corpus/contracts.csv; \
	  tail -n +$$(( HALF + 1 )) /tmp/ingest-smoke-corpus/contracts.csv; } > /tmp/ingest-smoke-rest.csv; \
	/tmp/hfserved -addr $(INGEST_ADDR) -max-scale 0.05 -log-format none & S=$$!; \
	trap "kill -TERM $$S 2>/dev/null; wait $$S 2>/dev/null" EXIT; \
	for i in $$(seq 1 100); do \
	  curl -fsS http://$(INGEST_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	ID=$$(curl -fsS -F contracts=@/tmp/ingest-smoke-head.csv \
	  -F users=@/tmp/ingest-smoke-corpus/users.csv "http://$(INGEST_ADDR)/v1/datasets?format=json" \
	  | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	test -n "$$ID" || { echo "ingest-smoke: FAIL upload returned no id"; exit 1; }; \
	GEN=$$(curl -fsS -D - -o /dev/null -H "Content-Type: text/csv" \
	  --data-binary @/tmp/ingest-smoke-rest.csv "http://$(INGEST_ADDR)/v1/datasets/$$ID/events" \
	  | tr -d '\r' | awk 'tolower($$1)=="x-dataset-generation:" {print $$2}'); \
	test "$$GEN" = "2" || { echo "ingest-smoke: FAIL append generation=$$GEN, want 2"; exit 1; }; \
	curl -fsS "http://$(INGEST_ADDR)/v1/report?dataset=$$ID&seed=1&models=false" > /tmp/ingest-smoke-served.txt; \
	/tmp/hfanalyze -data /tmp/ingest-smoke-corpus -seed 1 -models=false > /tmp/ingest-smoke-direct.txt; \
	diff -u /tmp/ingest-smoke-direct.txt /tmp/ingest-smoke-served.txt \
	  || { echo "ingest-smoke: FAIL ingested report differs from direct analysis"; exit 1; }; \
	echo "ingest-smoke: ok (generation-2 report matches hfanalyze over the full corpus)"

# Serve the simulate→analyse pipeline over HTTP (see README "Serving").
# Override flags via SERVE_FLAGS, e.g.
#   make serve SERVE_FLAGS="-addr :9090 -pprof -max-runs 4"
serve:
	go run ./cmd/hfserved $(SERVE_FLAGS)
