# Verification tiers and perf tooling (see ROADMAP.md).
#
#   make tier1           # the seed contract: build + tests
#   make tier2           # vet + tests under the race detector
#   make bench-baseline  # 1x bench smoke → BENCH_baseline.json snapshot
#   make bench-parallel  # sequential-vs-parallel suite → BENCH_parallel.json
#   make bench-serve     # cache-hit vs cold-request latency
#   make serve           # run the HTTP analysis service (hfserved)
#   make check           # tier1 + tier2

.PHONY: tier1 tier2 check bench-baseline bench-parallel bench-serve serve

tier1:
	go build ./... && go test ./...

tier2:
	go vet ./... && go test -race ./...

check: tier1 tier2

# Runs every benchmark exactly once and snapshots ns/op per stage into
# BENCH_baseline.json. Future perf PRs diff against this file; regenerate it
# (on the same machine class) whenever a hot path intentionally changes.
bench-baseline:
	go test -run '^$$' -bench . -benchtime 1x . \
	| awk 'BEGIN { print "{"; first = 1 } \
	  /^Benchmark/ { name = $$1; sub(/-[0-9]+$$/, "", name); \
	    if (!first) printf(",\n"); first = 0; \
	    printf("  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s}", name, $$2, $$3) } \
	  END { print "\n}" }' \
	> BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"

# Records the full suite (models, K=6, Scale 0.1) pinned to one worker vs
# the default pool, plus the descriptive pair at bench scale, into
# BENCH_parallel.json next to BENCH_baseline.json. The gomaxprocs field
# qualifies the numbers: on one core the pairs coincide within noise.
bench-parallel:
	go test -run '^$$' -benchtime 3x . \
	  -bench 'SuiteScale10|SuiteDescriptive(Sequential)?$$' \
	| awk 'BEGIN { print "{"; first = 1 } \
	  /^Benchmark/ { name = $$1; procs = 1; \
	    if (match(name, /-[0-9]+$$/)) { procs = substr(name, RSTART + 1); sub(/-[0-9]+$$/, "", name) } \
	    if (!first) printf(",\n"); first = 0; \
	    printf("  \"%s\": {\"iterations\": %s, \"ns_per_op\": %s, \"gomaxprocs\": %s}", name, $$2, $$3, procs) } \
	  END { print "\n}" }' \
	> BENCH_parallel.json
	@echo "wrote BENCH_parallel.json"

# Cache-hit vs cold-request latency for the HTTP analysis service; the
# gap is the result cache's value proposition (see DESIGN.md §3.3).
bench-serve:
	go test -run '^$$' -bench 'Serve' -benchtime 3x ./internal/serve/

# Serve the simulate→analyse pipeline over HTTP (see README "Serving").
# Override flags via SERVE_FLAGS, e.g.
#   make serve SERVE_FLAGS="-addr :9090 -pprof -max-runs 4"
serve:
	go run ./cmd/hfserved $(SERVE_FLAGS)
