module turnup

go 1.22
