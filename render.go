package turnup

import (
	"fmt"
	"io"
	"strings"

	"turnup/internal/analysis"
	"turnup/internal/report"
)

// section is one named entry of the report registry. render returns the
// section's text (with its trailing separator) or "" when the underlying
// result was not computed — model sections on a SkipModels run, for
// example — so absent sections vanish instead of printing empty shells.
// stages names the analysis stages whose Suite slots the section reads:
// SectionStages resolves a section request to this list (the scheduler
// then adds transitive stage deps), which is how GET /v1/report/{section}
// runs one or two stages instead of all 29 on a cold cache.
type section struct {
	name   string
	stages []string
	render func(*Results) string
}

// sectionTable registers every report section in canonical order. The
// names are the -sections vocabulary of hfanalyze; RenderAll is exactly
// this table rendered top to bottom.
var sectionTable = []section{
	{"taxonomy", []string{"Taxonomy"}, func(r *Results) string { return report.Taxonomy(r.Taxonomy) + "\n" }},
	{"visibility", []string{"Visibility"}, func(r *Results) string { return report.Visibility(r.Visibility) + "\n" }},
	{"growth", []string{"Growth"}, func(r *Results) string { return report.Growth(r.Growth) + "\n" }},
	{"public-trend", []string{"PublicTrend"}, func(r *Results) string { return report.PublicTrend(r.PublicTrend) + "\n" }},
	{"type-shares", []string{"TypeShares"}, func(r *Results) string { return report.TypeShares(r.TypeShares) + "\n" }},
	{"completion-times", []string{"CompletionTimes"}, func(r *Results) string { return report.CompletionTimes(r.CompletionTimes) + "\n" }},
	{"concentration", []string{"Concentration"}, func(r *Results) string { return report.Concentration(r.Concentration) + "\n" }},
	{"key-shares", []string{"KeyShares"}, func(r *Results) string { return report.KeyShares(r.KeyShares) + "\n" }},
	{"degrees", []string{"DegreesCreated", "DegreesDone"}, func(r *Results) string {
		return report.DegreeDist("created", r.DegreesCreated) +
			report.DegreeDist("completed", r.DegreesDone) + "\n"
	}},
	{"degree-growth", []string{"DegreeGrowth"}, func(r *Results) string { return report.DegreeGrowth(r.DegreeGrowth) + "\n" }},
	{"products", []string{"Products"}, func(r *Results) string { return report.ProductTrend(r.Products) + "\n" }},
	{"payment-trend", []string{"PaymentTrend"}, func(r *Results) string { return report.PaymentTrend(r.PaymentTrend) + "\n" }},
	{"value-trend", []string{"ValueTrend"}, func(r *Results) string { return report.ValueTrend(r.ValueTrend) + "\n" }},
	{"activities", []string{"Activities"}, func(r *Results) string { return report.Activities(r.Activities, 15) + "\n" }},
	{"payments", []string{"Payments"}, func(r *Results) string { return report.Payments(r.Payments, 10) + "\n" }},
	{"values", []string{"Values"}, func(r *Results) string { return report.Values(r.Values, 10) + "\n" }},
	{"participation", []string{"Participation"}, func(r *Results) string { return report.Participation(r.Participation) + "\n" }},
	{"disputes", []string{"Disputes"}, func(r *Results) string { return report.Disputes(r.Disputes) + "\n" }},
	{"centralisation", []string{"Centralisation"}, func(r *Results) string { return report.Centralisation(r.Centralisation) + "\n" }},
	{"cohorts", []string{"Cohorts"}, func(r *Results) string { return report.Cohorts(r.Cohorts) + "\n" }},
	{"corpus", []string{"Corpus"}, func(r *Results) string { return report.Corpus(r.Corpus) + "\n" }},
	{"stimulus", []string{"Stimulus"}, func(r *Results) string { return report.Stimulus(r.Stimulus) + "\n" }},
	{"latent-classes", []string{"LatentClasses"}, func(r *Results) string {
		if r.LTM == nil {
			return ""
		}
		return report.LatentClasses(r.LTM) + "\n"
	}},
	{"class-activity-made", []string{"LatentClasses"}, func(r *Results) string {
		if r.LTM == nil {
			return ""
		}
		return report.ClassActivity(r.LTM, true) + "\n"
	}},
	{"class-activity-accepted", []string{"LatentClasses"}, func(r *Results) string {
		if r.LTM == nil {
			return ""
		}
		return report.ClassActivity(r.LTM, false) + "\n"
	}},
	{"flows", []string{"Flows"}, func(r *Results) string {
		if r.LTM == nil {
			return ""
		}
		return report.Flows(r.Flows, r.LTM) + "\n"
	}},
	{"cold-start", []string{"ColdStart"}, func(r *Results) string {
		if r.ColdStart == nil {
			return ""
		}
		return report.ColdStart(r.ColdStart) + "\n"
	}},
	{"zip-all", []string{"ZIPAll"}, func(r *Results) string {
		if r.ZIPAll == nil {
			return ""
		}
		return report.ZIPModels("Table 9: Zero-Inflated Poisson (all users)", r.ZIPAll) + "\n"
	}},
	{"zip-sub", []string{"ZIPSub"}, func(r *Results) string {
		if r.ZIPSub == nil {
			return ""
		}
		return report.ZIPModels("Table 10: Zero-Inflated Poisson (first-time vs existing)", r.ZIPSub) + "\n"
	}},
}

// sectionIndex maps section name → sectionTable position. The stage
// validation alongside it means a typo in a section's stage list is a
// startup panic, not a runtime "unknown stage" error on the first
// request for that section.
var sectionIndex = func() map[string]int {
	idx := make(map[string]int, len(sectionTable))
	for i, s := range sectionTable {
		idx[s.name] = i
		if len(s.stages) == 0 {
			panic(fmt.Sprintf("turnup: section %q declares no stages", s.name))
		}
		if err := analysis.ValidateStages(s.stages); err != nil {
			panic(fmt.Sprintf("turnup: section %q: %v", s.name, err))
		}
	}
	return idx
}()

// SectionStages resolves report section names to the analysis stages
// that compute their inputs, deduplicated in canonical stage order.
// The list is direct dependencies only — RunOptions.Stages adds each
// stage's transitive DAG dependencies — so it is exactly the subset to
// request for a partial run that renders just those sections. An empty
// name list returns nil (meaning "run everything"); an unknown name is
// an error.
func SectionStages(names ...string) ([]string, error) {
	if len(names) == 0 {
		return nil, nil
	}
	want := make(map[string]bool)
	for _, name := range names {
		i, ok := sectionIndex[name]
		if !ok {
			return nil, unknownSectionError(name)
		}
		for _, st := range sectionTable[i].stages {
			want[st] = true
		}
	}
	stages := make([]string, 0, len(want))
	for _, name := range analysis.StageNames {
		if want[name] {
			stages = append(stages, name)
		}
	}
	return stages, nil
}

// Sections lists every named report section in canonical render order.
func Sections() []string {
	names := make([]string, len(sectionTable))
	for i, s := range sectionTable {
		names[i] = s.name
	}
	return names
}

// ValidateSections reports the first unknown name among names as an error
// listing the registered section vocabulary; an empty list is valid. It is
// the upfront form of the check Render performs, so callers (hfanalyze
// rejecting -sections, hfserved answering 400) can fail before running the
// pipeline rather than after.
func ValidateSections(names ...string) error {
	for _, name := range names {
		if _, ok := sectionIndex[name]; !ok {
			return unknownSectionError(name)
		}
	}
	return nil
}

// unknownSectionError is the canonical bad-section-name error: it names
// the culprit and lists the full valid vocabulary.
func unknownSectionError(name string) error {
	return fmt.Errorf("turnup: unknown section %q (valid: %s)", name, strings.Join(Sections(), ", "))
}

// Render writes the named sections of the results to w, in the order
// given. With no section names it renders every section in canonical
// order (the RenderAll output). Sections whose results were not computed
// render as empty; an unknown section name is an error.
func Render(w io.Writer, r *Results, sections ...string) error {
	if len(sections) == 0 {
		for _, s := range sectionTable {
			if _, err := io.WriteString(w, s.render(r)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, name := range sections {
		i, ok := sectionIndex[name]
		if !ok {
			return unknownSectionError(name)
		}
		if _, err := io.WriteString(w, sectionTable[i].render(r)); err != nil {
			return err
		}
	}
	return nil
}

// RenderAll renders every computed table and figure as text: the whole
// section registry, top to bottom.
func RenderAll(r *Results) string {
	var b strings.Builder
	_ = Render(&b, r) // strings.Builder writes cannot fail
	return b.String()
}

// RenderString renders the named sections (all of them when empty) into a
// string — Render with the buffering done here, so callers that need the
// bytes anyway (the serving tier's rendered-section cache, which stores
// one rendered body per (params, sections, format) key) get them in one
// call. An unknown section name is an error.
func RenderString(r *Results, sections ...string) (string, error) {
	var b strings.Builder
	if err := Render(&b, r, sections...); err != nil {
		return "", err
	}
	return b.String(), nil
}
