package turnup

import (
	"fmt"
	"io"
	"strings"

	"turnup/internal/report"
)

// section is one named entry of the report registry. render returns the
// section's text (with its trailing separator) or "" when the underlying
// result was not computed — model sections on a SkipModels run, for
// example — so absent sections vanish instead of printing empty shells.
type section struct {
	name   string
	render func(*Results) string
}

// sectionTable registers every report section in canonical order. The
// names are the -sections vocabulary of hfanalyze; RenderAll is exactly
// this table rendered top to bottom.
var sectionTable = []section{
	{"taxonomy", func(r *Results) string { return report.Taxonomy(r.Taxonomy) + "\n" }},
	{"visibility", func(r *Results) string { return report.Visibility(r.Visibility) + "\n" }},
	{"growth", func(r *Results) string { return report.Growth(r.Growth) + "\n" }},
	{"public-trend", func(r *Results) string { return report.PublicTrend(r.PublicTrend) + "\n" }},
	{"type-shares", func(r *Results) string { return report.TypeShares(r.TypeShares) + "\n" }},
	{"completion-times", func(r *Results) string { return report.CompletionTimes(r.CompletionTimes) + "\n" }},
	{"concentration", func(r *Results) string { return report.Concentration(r.Concentration) + "\n" }},
	{"key-shares", func(r *Results) string { return report.KeyShares(r.KeyShares) + "\n" }},
	{"degrees", func(r *Results) string {
		return report.DegreeDist("created", r.DegreesCreated) +
			report.DegreeDist("completed", r.DegreesDone) + "\n"
	}},
	{"degree-growth", func(r *Results) string { return report.DegreeGrowth(r.DegreeGrowth) + "\n" }},
	{"products", func(r *Results) string { return report.ProductTrend(r.Products) + "\n" }},
	{"payment-trend", func(r *Results) string { return report.PaymentTrend(r.PaymentTrend) + "\n" }},
	{"value-trend", func(r *Results) string { return report.ValueTrend(r.ValueTrend) + "\n" }},
	{"activities", func(r *Results) string { return report.Activities(r.Activities, 15) + "\n" }},
	{"payments", func(r *Results) string { return report.Payments(r.Payments, 10) + "\n" }},
	{"values", func(r *Results) string { return report.Values(r.Values, 10) + "\n" }},
	{"participation", func(r *Results) string { return report.Participation(r.Participation) + "\n" }},
	{"disputes", func(r *Results) string { return report.Disputes(r.Disputes) + "\n" }},
	{"centralisation", func(r *Results) string { return report.Centralisation(r.Centralisation) + "\n" }},
	{"cohorts", func(r *Results) string { return report.Cohorts(r.Cohorts) + "\n" }},
	{"corpus", func(r *Results) string { return report.Corpus(r.Corpus) + "\n" }},
	{"stimulus", func(r *Results) string { return report.Stimulus(r.Stimulus) + "\n" }},
	{"latent-classes", func(r *Results) string {
		if r.LTM == nil {
			return ""
		}
		return report.LatentClasses(r.LTM) + "\n"
	}},
	{"class-activity-made", func(r *Results) string {
		if r.LTM == nil {
			return ""
		}
		return report.ClassActivity(r.LTM, true) + "\n"
	}},
	{"class-activity-accepted", func(r *Results) string {
		if r.LTM == nil {
			return ""
		}
		return report.ClassActivity(r.LTM, false) + "\n"
	}},
	{"flows", func(r *Results) string {
		if r.LTM == nil {
			return ""
		}
		return report.Flows(r.Flows, r.LTM) + "\n"
	}},
	{"cold-start", func(r *Results) string {
		if r.ColdStart == nil {
			return ""
		}
		return report.ColdStart(r.ColdStart) + "\n"
	}},
	{"zip-all", func(r *Results) string {
		if r.ZIPAll == nil {
			return ""
		}
		return report.ZIPModels("Table 9: Zero-Inflated Poisson (all users)", r.ZIPAll) + "\n"
	}},
	{"zip-sub", func(r *Results) string {
		if r.ZIPSub == nil {
			return ""
		}
		return report.ZIPModels("Table 10: Zero-Inflated Poisson (first-time vs existing)", r.ZIPSub) + "\n"
	}},
}

// sectionIndex maps section name → sectionTable position.
var sectionIndex = func() map[string]int {
	idx := make(map[string]int, len(sectionTable))
	for i, s := range sectionTable {
		idx[s.name] = i
	}
	return idx
}()

// Sections lists every named report section in canonical render order.
func Sections() []string {
	names := make([]string, len(sectionTable))
	for i, s := range sectionTable {
		names[i] = s.name
	}
	return names
}

// ValidateSections reports the first unknown name among names as an error
// listing the registered section vocabulary; an empty list is valid. It is
// the upfront form of the check Render performs, so callers (hfanalyze
// rejecting -sections, hfserved answering 400) can fail before running the
// pipeline rather than after.
func ValidateSections(names ...string) error {
	for _, name := range names {
		if _, ok := sectionIndex[name]; !ok {
			return unknownSectionError(name)
		}
	}
	return nil
}

// unknownSectionError is the canonical bad-section-name error: it names
// the culprit and lists the full valid vocabulary.
func unknownSectionError(name string) error {
	return fmt.Errorf("turnup: unknown section %q (valid: %s)", name, strings.Join(Sections(), ", "))
}

// Render writes the named sections of the results to w, in the order
// given. With no section names it renders every section in canonical
// order (the RenderAll output). Sections whose results were not computed
// render as empty; an unknown section name is an error.
func Render(w io.Writer, r *Results, sections ...string) error {
	if len(sections) == 0 {
		for _, s := range sectionTable {
			if _, err := io.WriteString(w, s.render(r)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, name := range sections {
		i, ok := sectionIndex[name]
		if !ok {
			return unknownSectionError(name)
		}
		if _, err := io.WriteString(w, sectionTable[i].render(r)); err != nil {
			return err
		}
	}
	return nil
}

// RenderAll renders every computed table and figure as text: the whole
// section registry, top to bottom.
func RenderAll(r *Results) string {
	var b strings.Builder
	_ = Render(&b, r) // strings.Builder writes cannot fail
	return b.String()
}
