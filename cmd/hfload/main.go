// Command hfload replays a configurable request mix against a running
// hfserved at a target RPS and reports client-side latency per route:
// p50/p95/p99, achieved RPS, error rate, and cache-hit rate, written as
// BENCH_serve_load.json. It is the measurement gate for the serving tier —
// CI's load-smoke job runs a short fixed-seed mix and fails on p99
// regressions against the committed snapshot (see DESIGN.md §3.5).
//
// The mix (weights, not counts) mirrors real traffic shapes:
//
//	hot      repeated identical report params → cache hits
//	cold     unique seed per request → cold pipeline runs
//	section  per-section partial runs cycling -sections
//	upload   POST /v1/datasets replaying a pre-generated CSV pair
//	dataset  reports over the uploaded dataset (?dataset=)
//	events   POST /v1/datasets/{id}/events JSON-lines appends, each
//	         followed by a windowed report (?window=30d)
//	dense    cycles -dense-keys distinct seeds — a keyspace sized to
//	         overflow a small -max-cache-bytes, keeping the server's
//	         cache in continuous admit/evict
//
// At end of run the harness scrapes the target's /metrics (forcing a GC
// first) and records runtime heap/goroutine gauges plus the serve-layer
// cache gauges into the report; -heap-ceiling and -cache-budget turn
// those samples into hard assertions for CI's memory-bound gate.
//
// Every request carries a deterministic X-Request-Id; the report counts
// responses whose echoed id does not match (request_id_mismatches), so
// the access-log contract is verified from the client side on every run.
//
// Point -target at an hfrouter instead of an hfserved and the same mix
// exercises the sharded tier; the summary then includes the per-shard
// response distribution (X-Shard) and hedged-response count (X-Hedged).
//
// Usage:
//
//	hfload -target http://127.0.0.1:8080 -duration 10s -rps 50
//	hfload -mix hot=6,cold=1,section=2,upload=1,dataset=2,events=1 -seed 1
//	hfload -out BENCH_serve_load.json -wait 30s
//	hfload -gate BENCH_serve_load.json -gate-factor 2   # CI regression gate
//	hfload -slo-p99 500ms                               # absolute SLO gate
//	hfload -version
//
// Exit status 1 means the run (or a gate) failed; the report is still
// written so the regression can be inspected.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"turnup/internal/load"
	"turnup/internal/obs"
	"turnup/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfload: ")
	target := flag.String("target", "http://127.0.0.1:8080", "base URL of the hfserved under test")
	duration := flag.Duration("duration", 10*time.Second, "how long to issue requests")
	rps := flag.Float64("rps", 50, "target requests per second")
	workers := flag.Int("workers", 8, "concurrent request executors")
	mixFlag := flag.String("mix", "hot=6,cold=1,section=2,upload=1,dataset=2,events=1", "request mix weights")
	seed := flag.Uint64("seed", 1, "mix-sequence and report-parameter seed")
	scale := flag.Float64("scale", 0.02, "?scale= for report requests")
	uploadScale := flag.Float64("upload-scale", 0.01, "scale of the generated upload corpus")
	sections := flag.String("sections", "growth,corpus,concentration,payments", "sections cycled by section requests")
	denseKeys := flag.Int("dense-keys", 512, "distinct seeds the dense mix kind cycles")
	out := flag.String("out", "BENCH_serve_load.json", "report path (- for stdout)")
	wait := flag.Duration("wait", 15*time.Second, "poll /healthz this long before starting")
	gate := flag.String("gate", "", "baseline report: fail when p99 regresses beyond -gate-factor")
	gateFactor := flag.Float64("gate-factor", 2, "allowed p99 ratio vs the -gate baseline")
	sloP99 := flag.Duration("slo-p99", 0, "absolute overall-p99 ceiling (0 disables)")
	heapCeiling := flag.Int64("heap-ceiling", 0, "end-of-run post-GC heap ceiling in bytes (0 disables)")
	cacheBudget := flag.Int64("cache-budget", 0, "serve_cache_bytes must not exceed this at end of run (0 disables)")
	renderBudget := flag.Int64("render-cache-budget", 0, "serve_render_cache_bytes must not exceed this at end of run (0 disables)")
	logFormat := flag.String("log-format", "text", "progress log format: text, json, or none")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := strings.TrimSuffix(*target, "/")
	if err := load.WaitReady(ctx, nil, base, *wait); err != nil {
		log.Fatal(err)
	}
	rep, runErr := load.Run(ctx, load.Config{
		BaseURL:     base,
		RPS:         *rps,
		Duration:    *duration,
		Workers:     *workers,
		Mix:         mix,
		Seed:        *seed,
		Scale:       *scale,
		UploadScale: *uploadScale,
		Sections:    splitList(*sections),
		DenseKeys:   *denseKeys,
		Logger:      logger,
	})
	if rep == nil {
		log.Fatal(runErr)
	}

	if *out == "-" {
		if err := rep.WriteReport(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteReport(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	printSummary(rep)

	failed := false
	if runErr != nil {
		log.Printf("run: %v", runErr)
		failed = true
	}
	if rep.RequestIDMismatches > 0 {
		log.Printf("FAIL: %d responses did not echo their X-Request-Id", rep.RequestIDMismatches)
		failed = true
	}
	if *gate != "" {
		f, err := os.Open(*gate)
		if err != nil {
			log.Fatal(err)
		}
		baseline, err := load.ReadReport(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Gate(baseline, *gateFactor); err != nil {
			log.Printf("gate FAIL vs %s:\n%v", *gate, err)
			failed = true
		} else {
			log.Printf("gate ok vs %s (factor %g)", *gate, *gateFactor)
		}
	}
	if err := rep.CheckSLO(float64(*sloP99) / float64(time.Millisecond)); err != nil {
		log.Printf("%v", err)
		failed = true
	}
	if err := rep.CheckHeapCeiling(*heapCeiling); err != nil {
		log.Printf("%v", err)
		failed = true
	}
	if err := rep.CheckCacheBudget(*cacheBudget, *renderBudget); err != nil {
		log.Printf("%v", err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// printSummary renders the human-facing per-route table on stderr.
func printSummary(rep *load.Report) {
	fmt.Fprintf(os.Stderr, "target %s  version %s  %.1fs  %.1f/%.1f rps  %d requests  %.2f%% errors  %.0f%% cache hits\n",
		rep.Target, rep.Version, rep.DurationSeconds, rep.AchievedRPS, rep.TargetRPS,
		rep.Requests, 100*rep.ErrorRate, 100*rep.CacheHitRate)
	fmt.Fprintf(os.Stderr, "%-18s %8s %7s %8s %8s %8s %8s\n",
		"route", "requests", "errors", "p50ms", "p95ms", "p99ms", "hit%")
	for _, rr := range rep.Routes {
		hitPct := 0.0
		if served := rr.CacheHits + rr.CacheMisses + rr.Coalesced; served > 0 {
			hitPct = 100 * float64(rr.CacheHits) / float64(served)
		}
		fmt.Fprintf(os.Stderr, "%-18s %8d %7d %8.2f %8.2f %8.2f %7.0f%%\n",
			rr.Route, rr.Requests, rr.Errors,
			rr.LatencyMS.P50, rr.LatencyMS.P95, rr.LatencyMS.P99, hitPct)
	}
	fmt.Fprintf(os.Stderr, "%-18s %8d %7d %8.2f %8.2f %8.2f\n",
		"overall", rep.Requests, rep.Errors,
		rep.OverallMS.P50, rep.OverallMS.P95, rep.OverallMS.P99)
	if rep.MissedTicks > 0 {
		fmt.Fprintf(os.Stderr, "missed ticks: %d (target RPS exceeded sustainable rate)\n", rep.MissedTicks)
	}
	if len(rep.ServerMetrics) > 0 {
		fmt.Fprintf(os.Stderr, "server: heap %.1f MiB  goroutines %.0f  cache %.1f MiB/%.0f entries  rendered %.1f MiB/%.0f entries\n",
			rep.ServerMetrics["runtime_heap_alloc_bytes"]/(1<<20),
			rep.ServerMetrics["runtime_goroutines"],
			rep.ServerMetrics["serve_cache_bytes"]/(1<<20),
			rep.ServerMetrics["serve_cache_entries"],
			rep.ServerMetrics["serve_render_cache_bytes"]/(1<<20),
			rep.ServerMetrics["serve_render_cache_entries"])
	}
	if len(rep.Shards) > 0 {
		shards := make([]string, 0, len(rep.Shards))
		for s := range rep.Shards {
			shards = append(shards, s)
		}
		sort.Strings(shards)
		fmt.Fprintf(os.Stderr, "shard distribution (%d hedged):\n", rep.Hedged)
		for _, s := range shards {
			fmt.Fprintf(os.Stderr, "  %-40s %8d\n", s, rep.Shards[s])
		}
	}
}

// parseMix parses "hot=6,cold=1,section=2,upload=1,dataset=2"; omitted
// kinds weigh zero.
func parseMix(s string) (load.Mix, error) {
	var m load.Mix
	for _, part := range splitList(s) {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("bad mix entry %q: want kind=weight", part)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q: want a non-negative integer", v)
		}
		switch k {
		case "hot":
			m.Hot = w
		case "cold":
			m.Cold = w
		case "section":
			m.Section = w
		case "upload":
			m.Upload = w
		case "dataset":
			m.Dataset = w
		case "events":
			m.Events = w
		case "dense":
			m.Dense = w
		default:
			return m, fmt.Errorf("unknown mix kind %q (want hot, cold, section, upload, dataset, events, dense)", k)
		}
	}
	if m.Hot+m.Cold+m.Section+m.Upload+m.Dataset+m.Events+m.Dense == 0 {
		return m, fmt.Errorf("mix %q has no positive weights", s)
	}
	return m, nil
}

// splitList parses a comma-separated value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
