// Command hfserved serves the simulate→analyse pipeline over HTTP behind
// a deduplicating result cache: identical requests are answered from a
// size-bounded LRU, identical concurrent requests coalesce onto one
// pipeline run, and a semaphore caps how many runs execute at once (see
// DESIGN.md §3.3).
//
// Endpoints:
//
//	GET    /v1/report               full report (all sections)
//	GET    /v1/report/{section}     one or more (comma-separated) sections
//	       ?seed= &scale= &k= &models= &stages= &dataset= &format=text|json
//	POST   /v1/datasets             upload an hfgen CSV pair (multipart or zip)
//	GET    /v1/datasets             list stored datasets (id, digest, counts, ledger)
//	DELETE /v1/datasets/{id}        drop a stored dataset
//	GET    /v1/sections             report-section vocabulary
//	GET    /v1/stages               analysis stage DAG (name, deps, model)
//	GET    /healthz                 liveness + uptime + cache/dataset counts
//	GET    /metrics                 Prometheus text exposition
//	GET    /debug/pprof/...         with -pprof
//
// Reports over an uploaded corpus (?dataset=<id>) skip generation and
// analyse the stored dataset; uploaded corpora carry no ledger, so those
// responses set X-Dataset-Ledger: absent and the §4.5 audit reports its
// high-value contracts as unverifiable.
//
// Usage:
//
//	hfserved -addr :8080
//	hfserved -cache 128 -max-runs 4 -workers 8
//	hfserved -max-scale 0.25 -default-scale 0.05
//	hfserved -max-datasets 8 -max-dataset-bytes 67108864
//	hfserved -pprof -trace           # pprof endpoints + span tree on exit
//
// SIGINT/SIGTERM shuts down gracefully: in-flight pipeline runs are
// cancelled through the pipeline's context threading (waiters get 503),
// open connections drain within -shutdown-timeout, and with -trace the
// request span tree is flushed to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"turnup/internal/obs"
	"turnup/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfserved: ")
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 64, "completed results retained in the LRU")
	maxRuns := flag.Int("max-runs", 2, "concurrent pipeline runs (cache hits bypass this cap)")
	workers := flag.Int("workers", 0, "concurrent analysis stages per run (0 = GOMAXPROCS)")
	maxScale := flag.Float64("max-scale", 1.0, "largest accepted ?scale= parameter")
	defaultScale := flag.Float64("default-scale", 0.05, "?scale= default")
	defaultK := flag.Int("default-k", 12, "?k= default (latent class count)")
	maxDatasets := flag.Int("max-datasets", 16, "uploaded datasets retained (LRU eviction beyond)")
	maxDatasetBytes := flag.Int64("max-dataset-bytes", 256<<20, "per-upload body cap and total dataset-store bytes")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	trace := flag.Bool("trace", false, "record per-request spans; span tree printed on stderr at exit")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain deadline after SIGINT/SIGTERM")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// runCtx bounds every pipeline run the cache starts; cancelling it on
	// shutdown aborts in-flight runs between months / stages.
	runCtx, cancelRuns := context.WithCancel(context.Background())
	defer cancelRuns()

	var tracer *obs.Tracer
	if *trace {
		tracer = obs.NewTracer("hfserved")
	}
	srv := serve.New(serve.Options{
		CacheSize:       *cache,
		MaxRuns:         *maxRuns,
		Workers:         *workers,
		MaxScale:        *maxScale,
		DefaultScale:    *defaultScale,
		DefaultK:        *defaultK,
		MaxDatasets:     *maxDatasets,
		MaxDatasetBytes: *maxDatasetBytes,
		Metrics:         obs.NewRegistry(),
		Trace:           tracer,
		Pprof:           *pprofFlag,
		BaseContext:     runCtx,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err) // bind failure etc.
	case <-ctx.Done():
	}

	log.Printf("shutting down: cancelling in-flight runs, draining for up to %s", *shutdownTimeout)
	cancelRuns()
	sdCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	if tracer != nil {
		obs.WriteText(os.Stderr, tracer.Finish())
	}
	log.Printf("bye")
}
