// Command hfserved serves the simulate→analyse pipeline over HTTP behind
// a deduplicating result cache: identical requests are answered from a
// size-bounded LRU, identical concurrent requests coalesce onto one
// pipeline run, and a semaphore caps how many runs execute at once (see
// DESIGN.md §3.3).
//
// Endpoints:
//
//	GET    /v1/report               full report (all sections)
//	GET    /v1/report/{section}     one or more (comma-separated) sections
//	       ?seed= &scale= &k= &models= &stages= &dataset= &window= &as-of= &format=text|json
//	POST   /v1/datasets             upload an hfgen CSV pair (multipart or zip)
//	POST   /v1/datasets/{id}/events append an event batch (JSON lines or contract CSV)
//	GET    /v1/datasets             list stored datasets (id, digest, generation, counts, ledger)
//	DELETE /v1/datasets/{id}        drop a stored dataset
//	GET    /v1/sections             report-section vocabulary
//	GET    /v1/stages               analysis stage DAG (name, deps, model)
//	GET    /healthz                 liveness + version + cache/dataset counts (?format=json)
//	GET    /metrics                 Prometheus text exposition (?format=json, gzip-aware)
//	GET    /debug/pprof/...         with -pprof
//
// Reports over an uploaded corpus (?dataset=<id>) skip generation and
// analyse the stored dataset; uploaded corpora carry no ledger, so those
// responses set X-Dataset-Ledger: absent and the §4.5 audit reports its
// high-value contracts as unverifiable.
//
// Uploaded datasets are live: POST /v1/datasets/{id}/events appends a
// validated batch of user/contract events, bumping the dataset's
// generation (X-Dataset-Generation on reports) and invalidating exactly
// the cached reports the append supersedes. ?window=30d|90d|era-to-date
// and ?as-of=YYYY-MM-DD select a time-windowed view of a dataset-backed
// report; -cache-ttl adds an age bound on top of generation keying.
//
// Every request is assigned a request id (an inbound X-Request-Id is
// honoured), echoed on the X-Request-Id response header, stamped on the
// per-request trace span, and logged — method, route, status, bytes,
// duration, cache state — on stderr in key=value or JSON form
// (-log-format text|json|none). A runtime collector samples goroutine,
// heap, and GC gauges onto /metrics every -runtime-metrics interval.
//
// Usage:
//
//	hfserved -addr :8080
//	hfserved -cache 128 -max-runs 4 -workers 8
//	hfserved -max-scale 0.25 -default-scale 0.05
//	hfserved -max-datasets 8 -max-dataset-bytes 67108864
//	hfserved -log-format json        # machine-parsed access log
//	hfserved -pprof -trace           # pprof endpoints + span tree on exit
//	hfserved -version
//
// SIGINT/SIGTERM shuts down gracefully: in-flight pipeline runs are
// cancelled through the pipeline's context threading (waiters get 503),
// open connections drain within -shutdown-timeout, and with -trace the
// request span tree is flushed to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"turnup/internal/obs"
	"turnup/internal/serve"
	"turnup/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfserved: ")
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", 64, "completed results retained in the LRU (count bound, secondary to -max-cache-bytes)")
	maxCacheBytes := flag.Int64("max-cache-bytes", 1<<30, "result cache byte budget; entries are sized at admission and evicted by bytes")
	cacheEntryFrac := flag.Float64("cache-entry-frac", 0.25, "admission bound: results larger than this fraction of -max-cache-bytes are served but never cached")
	renderCacheBytes := flag.Int64("render-cache-bytes", 64<<20, "rendered-section cache byte budget (0 = default, negative disables the tier)")
	cacheTTL := flag.Duration("cache-ttl", 0, "max age a cached result is served (0 = no age bound; generation keying still invalidates on append)")
	maxRuns := flag.Int("max-runs", 2, "concurrent pipeline runs (cache hits bypass this cap)")
	workers := flag.Int("workers", 0, "concurrent analysis stages per run (0 = GOMAXPROCS)")
	maxScale := flag.Float64("max-scale", 1.0, "largest accepted ?scale= parameter")
	defaultScale := flag.Float64("default-scale", 0.05, "?scale= default")
	defaultK := flag.Int("default-k", 12, "?k= default (latent class count)")
	shard := flag.String("shard", "", "shard name stamped on X-Shard and envelope metadata (hfrouter members: the advertised base URL)")
	maxDatasets := flag.Int("max-datasets", 16, "uploaded datasets retained (LRU eviction beyond)")
	maxDatasetBytes := flag.Int64("max-dataset-bytes", 256<<20, "per-upload body cap and total dataset-store bytes")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	trace := flag.Bool("trace", false, "record per-request spans; span tree printed on stderr at exit")
	logFormat := flag.String("log-format", "text", "access-log format: text, json, or none")
	runtimeEvery := flag.Duration("runtime-metrics", 5*time.Second, "runtime gauge sampling interval (0 disables)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain deadline after SIGINT/SIGTERM")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return
	}
	accessLog, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// runCtx bounds every pipeline run the cache starts; cancelling it on
	// shutdown aborts in-flight runs between months / stages.
	runCtx, cancelRuns := context.WithCancel(context.Background())
	defer cancelRuns()

	var tracer *obs.Tracer
	if *trace {
		tracer = obs.NewTracer("hfserved")
	}
	reg := obs.NewRegistry()
	if *runtimeEvery > 0 {
		stopCollector := obs.StartRuntimeCollector(reg, *runtimeEvery)
		defer stopCollector()
	}
	srv := serve.New(serve.Options{
		Shard:            *shard,
		CacheSize:        *cache,
		MaxCacheBytes:    *maxCacheBytes,
		CacheEntryFrac:   *cacheEntryFrac,
		RenderCacheBytes: *renderCacheBytes,
		CacheTTL:         *cacheTTL,
		MaxRuns:          *maxRuns,
		Workers:          *workers,
		MaxScale:         *maxScale,
		DefaultScale:     *defaultScale,
		DefaultK:         *defaultK,
		MaxDatasets:      *maxDatasets,
		MaxDatasetBytes:  *maxDatasetBytes,
		Metrics:          reg,
		AccessLog:        accessLog,
		Trace:            tracer,
		Pprof:            *pprofFlag,
		BaseContext:      runCtx,
	})
	// Listen explicitly (rather than ListenAndServe) so ":0" ephemeral
	// binds log the port that was actually chosen.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("version %s listening on %s", version.String(), ln.Addr())

	select {
	case err := <-errc:
		log.Fatal(err) // bind failure etc.
	case <-ctx.Done():
	}

	log.Printf("shutting down: cancelling in-flight runs, draining for up to %s", *shutdownTimeout)
	cancelRuns()
	sdCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	if tracer != nil {
		obs.WriteText(os.Stderr, tracer.Finish())
	}
	log.Printf("bye")
}
