// Command hfsweep checks the robustness of the reproduction: it repeats
// the generate→analyse→compare cycle across many seeds and reports, for
// every shape claim, the fraction of seeds on which it held. Claims that
// hold only on a lucky seed stand out immediately.
//
// Each configuration's wall time and memory figures are recorded in an obs
// registry and reported alongside the claim table, so sweep runs double as
// perf baselines; -metrics dumps the raw registry on stderr.
//
// Usage:
//
//	hfsweep -seeds 10 -scale 0.05
//	hfsweep -seeds 5 -metrics -cpuprofile cpu.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"text/tabwriter"
	"time"

	"turnup"
	"turnup/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfsweep: ")
	seeds := flag.Int("seeds", 10, "number of seeds to sweep")
	scale := flag.Float64("scale", 0.05, "volume scale per run")
	models := flag.Bool("models", true, "include the statistical models (slower)")
	k := flag.Int("k", 8, "latent class count (smaller than 12 keeps sweeps fast)")
	workers := flag.Int("workers", 0, "concurrent analysis stages per run (0 = GOMAXPROCS)")
	metrics := flag.Bool("metrics", false, "dump the sweep's obs registry in Prometheus text format on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	reg := obs.NewRegistry()

	type tally struct {
		id, metric string
		held, runs int
	}
	byKey := map[string]*tally{}
	var order []string

	for seed := 1; seed <= *seeds; seed++ {
		start := time.Now()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)

		d, err := turnup.GenerateCtx(ctx, turnup.Config{Seed: uint64(seed), Scale: *scale, Metrics: reg})
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		res, err := turnup.RunCtx(ctx, d, turnup.RunOptions{
			Seed: uint64(seed), LatentClassK: *k, SkipModels: !*models, Workers: *workers, Metrics: reg,
		})
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}

		wall := time.Since(start).Seconds()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		reg.Gauge(fmt.Sprintf("sweep_wall_seconds{seed=%q}", itoa(seed))).Set(wall)
		reg.Gauge(fmt.Sprintf("sweep_alloc_bytes{seed=%q}", itoa(seed))).Set(float64(m1.TotalAlloc - m0.TotalAlloc))
		reg.Gauge(fmt.Sprintf("sweep_peak_rss_bytes{seed=%q}", itoa(seed))).Set(float64(m1.Sys))
		reg.Histogram("sweep_wall_seconds_all").Observe(wall)

		for _, row := range turnup.Compare(res) {
			key := row.ID + " | " + row.Metric
			t, ok := byKey[key]
			if !ok {
				t = &tally{id: row.ID, metric: row.Metric}
				byKey[key] = t
				order = append(order, key)
			}
			t.runs++
			if row.Held {
				t.held++
			}
		}
		fmt.Printf("seed %d done in %.2fs\n", seed, wall)
	}

	// Shakiest claims first.
	sort.SliceStable(order, func(i, j int) bool {
		a, b := byKey[order[i]], byKey[order[j]]
		return float64(a.held)/float64(a.runs) < float64(b.held)/float64(b.runs)
	})
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "\nHELD\tID\tMETRIC\n")
	for _, key := range order {
		t := byKey[key]
		fmt.Fprintf(w, "%d/%d\t%s\t%s\n", t.held, t.runs, t.id, t.metric)
	}
	w.Flush()

	// Per-configuration perf columns, read back from the obs registry so
	// the table and the -metrics dump can never disagree.
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "\nSEED\tWALL\tALLOC\tPEAK-SYS\n")
	for seed := 1; seed <= *seeds; seed++ {
		wall := reg.Gauge(fmt.Sprintf("sweep_wall_seconds{seed=%q}", itoa(seed))).Value()
		alloc := reg.Gauge(fmt.Sprintf("sweep_alloc_bytes{seed=%q}", itoa(seed))).Value()
		rss := reg.Gauge(fmt.Sprintf("sweep_peak_rss_bytes{seed=%q}", itoa(seed))).Value()
		fmt.Fprintf(w, "%d\t%.2fs\t%.1fMiB\t%.1fMiB\n", seed, wall, alloc/(1<<20), rss/(1<<20))
	}
	h := reg.Histogram("sweep_wall_seconds_all")
	fmt.Fprintf(w, "p50/p90\t%.2fs/%.2fs\t\t\n", h.Quantile(0.5), h.Quantile(0.9))
	w.Flush()

	// Metrics go to stderr (matching hfanalyze/hfgen) so the Prometheus
	// text never interleaves with the claim and perf tables on stdout.
	if *metrics {
		obs.WritePrometheus(os.Stderr, reg)
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			log.Fatal(err)
		}
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
