// Command hfsweep checks the robustness of the reproduction: it repeats
// the generate→analyse→compare cycle across many seeds and reports, for
// every shape claim, the fraction of seeds on which it held. Claims that
// hold only on a lucky seed stand out immediately.
//
// Usage:
//
//	hfsweep -seeds 10 -scale 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"turnup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfsweep: ")
	seeds := flag.Int("seeds", 10, "number of seeds to sweep")
	scale := flag.Float64("scale", 0.05, "volume scale per run")
	models := flag.Bool("models", true, "include the statistical models (slower)")
	k := flag.Int("k", 8, "latent class count (smaller than 12 keeps sweeps fast)")
	flag.Parse()

	type tally struct {
		id, metric string
		held, runs int
	}
	byKey := map[string]*tally{}
	var order []string

	for seed := 1; seed <= *seeds; seed++ {
		d, err := turnup.Generate(turnup.Config{Seed: uint64(seed), Scale: *scale})
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		res, err := turnup.Run(d, turnup.RunOptions{
			Seed: uint64(seed), LatentClassK: *k, SkipModels: !*models,
		})
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		for _, row := range turnup.Compare(res) {
			key := row.ID + " | " + row.Metric
			t, ok := byKey[key]
			if !ok {
				t = &tally{id: row.ID, metric: row.Metric}
				byKey[key] = t
				order = append(order, key)
			}
			t.runs++
			if row.Held {
				t.held++
			}
		}
		fmt.Printf("seed %d done\n", seed)
	}

	// Shakiest claims first.
	sort.SliceStable(order, func(i, j int) bool {
		a, b := byKey[order[i]], byKey[order[j]]
		return float64(a.held)/float64(a.runs) < float64(b.held)/float64(b.runs)
	})
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "\nHELD\tID\tMETRIC\n")
	for _, key := range order {
		t := byKey[key]
		fmt.Fprintf(w, "%d/%d\t%s\t%s\n", t.held, t.runs, t.id, t.metric)
	}
	w.Flush()
}
