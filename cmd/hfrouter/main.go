// Command hfrouter fronts N hfserved shards with a consistent-hash ring:
// each report key and dataset digest has exactly one owning shard, so the
// shards hold disjoint result caches and dataset stores and cache
// capacity scales with the shard count (see DESIGN.md §3.6).
//
// Routing:
//
//	GET    /v1/report*         by the canonical parameter key (?dataset= by id)
//	POST   /v1/datasets        parsed, digested, forwarded to the digest's
//	                           owner plus -rf minus 1 ring successors
//	POST   /v1/datasets/{id}/events  by dataset id to the owner (replicas
//	                           receive the same batch so generations stay in step)
//	GET    /v1/datasets        scatter-gather union across healthy shards
//	DELETE /v1/datasets/{id}   to every shard that could hold a copy
//	GET    /v1/sections|stages any healthy shard (identical everywhere)
//	GET    /healthz            the router's own ring-membership view
//	GET    /metrics            router_* metrics (Prometheus text)
//
// Shards are probed on /healthz every -health-interval; -health-fails
// consecutive failures eject a shard (its keys fail over clockwise), one
// success readmits it. Connection errors and shutting_down responses
// retry on the next shard with doubling backoff (-retries, -retry-backoff).
// Report keys seen -hot-threshold+ times are hedged: a second shard is
// raced once the observed report p99 (floored by -hedge-delay) elapses,
// the first response wins, and the loser is cancelled. Responses carry
// X-Shard (who answered) and X-Hedged (a hedge was fired); request ids
// propagate client → router → shard so all three logs join on one id.
//
// Usage:
//
//	hfrouter -addr :8090 -shards http://127.0.0.1:8101,http://127.0.0.1:8102
//	hfrouter -rf 2 -retries 2 -hedge-delay 50ms -hot-threshold 3
//	hfrouter -vnodes 128 -health-interval 2s -health-fails 2
//	hfrouter -log-format json
//	hfrouter -version
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"turnup/internal/obs"
	"turnup/internal/ring"
	"turnup/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfrouter: ")
	addr := flag.String("addr", ":8090", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs (required)")
	vnodes := flag.Int("vnodes", 128, "virtual nodes per shard on the hash ring")
	rf := flag.Int("rf", 1, "dataset replication factor (owner + rf-1 successors)")
	retries := flag.Int("retries", 2, "retry budget for connection errors and retryable shard failures")
	retryBackoff := flag.Duration("retry-backoff", 25*time.Millisecond, "first retry delay (doubles per attempt)")
	hedgeDelay := flag.Duration("hedge-delay", 100*time.Millisecond, "hedge trigger floor (and stand-in until a report p99 accumulates)")
	hotThreshold := flag.Int("hot-threshold", 3, "report-key sightings before its requests are hedged")
	defaultScale := flag.Float64("default-scale", 0.05, "?scale= default, must match the shards'")
	defaultK := flag.Int("default-k", 12, "?k= default, must match the shards'")
	maxDatasetBytes := flag.Int64("max-dataset-bytes", 256<<20, "upload body cap (mirror the shards')")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "shard /healthz probe period")
	healthTimeout := flag.Duration("health-timeout", time.Second, "per-probe deadline")
	healthFails := flag.Int("health-fails", 2, "consecutive probe failures before ejection")
	proxyTimeout := flag.Duration("proxy-timeout", 120*time.Second, "per-forwarded-request deadline")
	logFormat := flag.String("log-format", "text", "access-log format: text, json, or none")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain deadline after SIGINT/SIGTERM")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String())
		return
	}
	var shardList []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSuffix(strings.TrimSpace(s), "/"); s != "" {
			shardList = append(shardList, s)
		}
	}
	if len(shardList) == 0 {
		log.Fatal("-shards is required (comma-separated base URLs)")
	}
	accessLog, err := obs.NewLogger(os.Stderr, *logFormat)
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()

	router, err := ring.NewRouter(ring.RouterOptions{
		Shards:          shardList,
		VNodes:          *vnodes,
		RF:              *rf,
		Retries:         *retries,
		RetryBackoff:    *retryBackoff,
		HedgeDelay:      *hedgeDelay,
		HotThreshold:    *hotThreshold,
		DefaultScale:    *defaultScale,
		DefaultK:        *defaultK,
		MaxDatasetBytes: *maxDatasetBytes,
		Client:          &http.Client{Timeout: *proxyTimeout},
		Metrics:         reg,
		AccessLog:       accessLog,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	checker := ring.NewHealthChecker(router.Ring(), ring.HealthOptions{
		Interval:  *healthInterval,
		Timeout:   *healthTimeout,
		FailAfter: *healthFails,
		Metrics:   reg,
		Log:       accessLog,
	})
	go checker.Run(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: router}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("version %s listening on %s, routing %d shards (%d vnodes, rf=%d)",
		version.String(), ln.Addr(), len(shardList), *vnodes, *rf)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining for up to %s", *shutdownTimeout)
	sdCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("bye")
}
