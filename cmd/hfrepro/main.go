// Command hfrepro runs the end-to-end reproduction: generate a corpus,
// execute every analysis, and print the paper-vs-measured comparison that
// EXPERIMENTS.md records. With -out it also writes the comparison as
// markdown and the full rendered tables as text.
//
// Observability (see README "Profiling & tracing a run"):
//
//	hfrepro -seed 1 -scale 0.05 -trace            # span tree + results/trace.json
//	hfrepro -metrics                              # Prometheus dump on stderr
//	hfrepro -progress                             # stage progress on stderr
//	hfrepro -workers 8 -stages Values,ValueTrend  # scheduler width / stage subset
//	hfrepro -cpuprofile cpu.pprof -memprofile mem.pprof
//
// SIGINT cancels the run gracefully: in-flight stages drain and, with
// -trace, the partial span tree is still printed and written to
// results/trace.json.
//
// Usage:
//
//	hfrepro -seed 1 -scale 1.0 -out results/
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"turnup"
	"turnup/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfrepro: ")
	seed := flag.Uint64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1.0, "volume scale (1.0 = paper-sized corpus)")
	out := flag.String("out", "", "optional output directory for comparison.md and tables.txt")
	k := flag.Int("k", 12, "latent class count")
	workers := flag.Int("workers", 0, "concurrent analysis stages (0 = GOMAXPROCS)")
	stages := flag.String("stages", "", "comma-separated analysis stage subset; transitive deps are added (empty = all)")
	trace := flag.Bool("trace", false, "print the pipeline span tree and write results/trace.json")
	metrics := flag.Bool("metrics", false, "dump run metrics in Prometheus text format on stderr")
	progress := flag.Bool("progress", false, "report analysis stage progress on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}

	var tracer *turnup.Tracer
	if *trace {
		tracer = turnup.NewTracer("hfrepro")
	}
	var reg *turnup.Registry
	if *metrics || *trace {
		reg = turnup.NewRegistry()
	}
	// fail flushes the (possibly partial) trace before exiting, so an
	// interrupted run still yields results/trace.json.
	fail := func(err error) {
		flushTrace(tracer, *out)
		log.Fatal(err)
	}

	start := time.Now()
	d, err := turnup.GenerateCtx(ctx, turnup.Config{Seed: *seed, Scale: *scale, Trace: tracer, Metrics: reg})
	if err != nil {
		fail(err)
	}
	s := d.Summary()
	fmt.Printf("generated %d contracts / %d users / %d posts in %v\n",
		s.Contracts, s.Users, s.Posts, time.Since(start).Round(time.Millisecond))

	opts := turnup.RunOptions{
		Seed: *seed, LatentClassK: *k, Workers: *workers, Stages: splitList(*stages),
		Trace: tracer, Metrics: reg,
	}
	if *progress {
		opts.Progress = func(stage string) { fmt.Fprintf(os.Stderr, "hfrepro: stage %s\n", stage) }
	}
	t0 := time.Now()
	res, err := turnup.RunCtx(ctx, d, opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("analyses completed in %v\n\n", time.Since(t0).Round(time.Millisecond))

	rows := turnup.Compare(res)
	md := turnup.RenderComparisons(rows)
	fmt.Print(md)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*out, "comparison.md"), []byte(md), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*out, "tables.txt"), []byte(turnup.RenderAll(res)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s/comparison.md and %s/tables.txt\n", *out, *out)
	}

	flushTrace(tracer, *out)
	// Metrics go to stderr (matching hfanalyze/hfgen) so the Prometheus
	// text never interleaves with the comparison table on stdout.
	if *metrics {
		obs.WritePrometheus(os.Stderr, reg)
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			log.Fatal(err)
		}
	}
}

// flushTrace prints the span tree and writes trace.json under outDir
// (default results/). A nil tracer is a no-op, so the call is safe on
// every exit path, including cancellation.
func flushTrace(tracer *turnup.Tracer, outDir string) {
	if tracer == nil {
		return
	}
	root := tracer.Finish()
	fmt.Println()
	obs.WriteText(os.Stdout, root)
	if outDir == "" {
		outDir = "results"
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Print(err)
		return
	}
	path := filepath.Join(outDir, "trace.json")
	f, err := os.Create(path)
	if err != nil {
		log.Print(err)
		return
	}
	if err := obs.WriteJSON(f, root); err != nil {
		f.Close()
		log.Print(err)
		return
	}
	if err := f.Close(); err != nil {
		log.Print(err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
