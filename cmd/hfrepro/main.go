// Command hfrepro runs the end-to-end reproduction: generate a corpus,
// execute every analysis, and print the paper-vs-measured comparison that
// EXPERIMENTS.md records. With -out it also writes the comparison as
// markdown and the full rendered tables as text.
//
// Observability (see README "Profiling & tracing a run"):
//
//	hfrepro -seed 1 -scale 0.05 -trace            # span tree + results/trace.json
//	hfrepro -metrics                              # Prometheus dump on stdout
//	hfrepro -progress                             # stage progress on stderr
//	hfrepro -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Usage:
//
//	hfrepro -seed 1 -scale 1.0 -out results/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"turnup"
	"turnup/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfrepro: ")
	seed := flag.Uint64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1.0, "volume scale (1.0 = paper-sized corpus)")
	out := flag.String("out", "", "optional output directory for comparison.md and tables.txt")
	k := flag.Int("k", 12, "latent class count")
	trace := flag.Bool("trace", false, "print the pipeline span tree and write results/trace.json")
	metrics := flag.Bool("metrics", false, "dump run metrics in Prometheus text format")
	progress := flag.Bool("progress", false, "report analysis stage progress on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}

	var tracer *turnup.Tracer
	if *trace {
		tracer = turnup.NewTracer("hfrepro")
	}
	var reg *turnup.Registry
	if *metrics || *trace {
		reg = turnup.NewRegistry()
	}

	start := time.Now()
	d, err := turnup.Generate(turnup.Config{Seed: *seed, Scale: *scale, Trace: tracer, Metrics: reg})
	if err != nil {
		log.Fatal(err)
	}
	s := d.Summary()
	fmt.Printf("generated %d contracts / %d users / %d posts in %v\n",
		s.Contracts, s.Users, s.Posts, time.Since(start).Round(time.Millisecond))

	opts := turnup.RunOptions{Seed: *seed, LatentClassK: *k, Trace: tracer, Metrics: reg}
	if *progress {
		opts.Progress = func(stage string) { fmt.Fprintf(os.Stderr, "hfrepro: stage %s\n", stage) }
	}
	t0 := time.Now()
	res, err := turnup.Run(d, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyses completed in %v\n\n", time.Since(t0).Round(time.Millisecond))

	rows := turnup.Compare(res)
	md := turnup.RenderComparisons(rows)
	fmt.Print(md)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*out, "comparison.md"), []byte(md), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*out, "tables.txt"), []byte(turnup.RenderAll(res)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s/comparison.md and %s/tables.txt\n", *out, *out)
	}

	if tracer != nil {
		root := tracer.Finish()
		fmt.Println()
		obs.WriteText(os.Stdout, root)
		traceDir := *out
		if traceDir == "" {
			traceDir = "results"
		}
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(traceDir, "trace.json")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WriteJSON(f, root); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if *metrics {
		fmt.Println()
		obs.WritePrometheus(os.Stdout, reg)
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			log.Fatal(err)
		}
	}
}
