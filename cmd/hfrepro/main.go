// Command hfrepro runs the end-to-end reproduction: generate a corpus,
// execute every analysis, and print the paper-vs-measured comparison that
// EXPERIMENTS.md records. With -out it also writes the comparison as
// markdown and the full rendered tables as text.
//
// Usage:
//
//	hfrepro -seed 1 -scale 1.0 -out results/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"turnup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfrepro: ")
	seed := flag.Uint64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1.0, "volume scale (1.0 = paper-sized corpus)")
	out := flag.String("out", "", "optional output directory for comparison.md and tables.txt")
	k := flag.Int("k", 12, "latent class count")
	flag.Parse()

	start := time.Now()
	d, err := turnup.Generate(turnup.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	s := d.Summary()
	fmt.Printf("generated %d contracts / %d users / %d posts in %v\n",
		s.Contracts, s.Users, s.Posts, time.Since(start).Round(time.Millisecond))

	t0 := time.Now()
	res, err := turnup.Run(d, turnup.RunOptions{Seed: *seed, LatentClassK: *k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyses completed in %v\n\n", time.Since(t0).Round(time.Millisecond))

	rows := turnup.Compare(res)
	md := turnup.RenderComparisons(rows)
	fmt.Print(md)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*out, "comparison.md"), []byte(md), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*out, "tables.txt"), []byte(turnup.RenderAll(res)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s/comparison.md and %s/tables.txt\n", *out, *out)
	}
}
