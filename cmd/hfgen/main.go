// Command hfgen generates a synthetic HACK FORUMS marketplace dataset and
// writes it to a directory: the interchange CSV pair (contracts.csv,
// users.csv) plus the columnar binary form (dataset.bin) that hfanalyze,
// hfserved, and hfrepro load preferentially.
//
// Usage:
//
//	hfgen -seed 1 -scale 1.0 -out ./data
//	hfgen -scale 0.1 -trace -metrics            # span tree + metric dump
//	hfgen -cpuprofile cpu.pprof -memprofile mem.pprof
//
// SIGINT cancels a long generation gracefully (the simulator checks for
// cancellation between simulated months); with -trace the partial span
// tree is still flushed to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"turnup"
	"turnup/internal/obs"
	"turnup/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfgen: ")
	seed := flag.Uint64("seed", 1, "random seed (same seed → identical corpus)")
	scale := flag.Float64("scale", 1.0, "volume scale; 1.0 reproduces the paper-sized corpus (~190k contracts)")
	out := flag.String("out", "data", "output directory")
	trace := flag.Bool("trace", false, "print the simulation span tree on stderr")
	metrics := flag.Bool("metrics", false, "dump generation metrics in Prometheus text format on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	var tracer *turnup.Tracer
	if *trace {
		tracer = turnup.NewTracer("hfgen")
	}
	var reg *turnup.Registry
	if *metrics {
		reg = turnup.NewRegistry()
	}

	d, err := turnup.GenerateCtx(ctx, turnup.Config{Seed: *seed, Scale: *scale, Trace: tracer, Metrics: reg})
	if err != nil {
		if tracer != nil {
			obs.WriteText(os.Stderr, tracer.Finish())
		}
		log.Fatal(err)
	}
	if err := turnup.Save(d, *out); err != nil {
		log.Fatal(err)
	}
	s := d.Summary()
	fmt.Fprintf(os.Stdout,
		"wrote %s: %s contracts (%s completed, %s public, %s disputed), %s users, %s threads, %s posts, %s ledger txs\n",
		*out, report.Count(s.Contracts), report.Count(s.Completed), report.Count(s.Public),
		report.Count(s.Disputed), report.Count(s.Users), report.Count(s.Threads),
		report.Count(s.Posts), report.Count(s.LedgerTxs))

	if tracer != nil {
		obs.WriteText(os.Stderr, tracer.Finish())
	}
	if *metrics {
		obs.WritePrometheus(os.Stderr, reg)
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			log.Fatal(err)
		}
	}
}
