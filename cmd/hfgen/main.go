// Command hfgen generates a synthetic HACK FORUMS marketplace dataset and
// writes it to a directory as CSV (contracts.csv, users.csv).
//
// Usage:
//
//	hfgen -seed 1 -scale 1.0 -out ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"turnup"
	"turnup/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfgen: ")
	seed := flag.Uint64("seed", 1, "random seed (same seed → identical corpus)")
	scale := flag.Float64("scale", 1.0, "volume scale; 1.0 reproduces the paper-sized corpus (~190k contracts)")
	out := flag.String("out", "data", "output directory")
	flag.Parse()

	d, err := turnup.Generate(turnup.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	if err := turnup.Save(d, *out); err != nil {
		log.Fatal(err)
	}
	s := d.Summary()
	fmt.Fprintf(os.Stdout,
		"wrote %s: %s contracts (%s completed, %s public, %s disputed), %s users, %s threads, %s posts, %s ledger txs\n",
		*out, report.Count(s.Contracts), report.Count(s.Completed), report.Count(s.Public),
		report.Count(s.Disputed), report.Count(s.Users), report.Count(s.Threads),
		report.Count(s.Posts), report.Count(s.LedgerTxs))
}
