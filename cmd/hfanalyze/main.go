// Command hfanalyze runs the paper's analyses over a dataset and prints
// the corresponding tables and figures.
//
// Usage:
//
//	hfanalyze -data ./data                 # analyse a saved dataset
//	hfanalyze -seed 1 -scale 0.1           # generate in memory and analyse
//	hfanalyze -seed 1 -scale 0.1 -models=false   # descriptive analyses only
//	hfanalyze -workers 8                         # stage-DAG scheduler width
//	hfanalyze -stages Values,ValueTrend          # stage subset (+ deps)
//	hfanalyze -sections values,value-trend       # render a section subset
//	hfanalyze -scale 0.05 -trace -metrics        # span tree + metric dump
//	hfanalyze -cpuprofile cpu.pprof -memprofile mem.pprof
//
// SIGINT cancels the run gracefully: in-flight stages drain and, with
// -trace, the partial span tree is still flushed to stderr.
//
// Note: datasets loaded from CSV carry no ledger, so the §4.5 high-value
// audit reports every high-value contract in an explicit "unverifiable"
// bucket; generate in memory (or via the library) for the full audit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"turnup"
	"turnup/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfanalyze: ")
	data := flag.String("data", "", "dataset directory written by hfgen (empty: generate in memory)")
	seed := flag.Uint64("seed", 1, "random seed for in-memory generation and stochastic analyses")
	scale := flag.Float64("scale", 0.1, "volume scale for in-memory generation")
	models := flag.Bool("models", true, "fit the statistical models (Tables 6-10); slow at large scales")
	k := flag.Int("k", 12, "latent class count for the Table 6 model")
	workers := flag.Int("workers", 0, "concurrent analysis stages (0 = GOMAXPROCS)")
	stages := flag.String("stages", "", "comma-separated analysis stage subset; transitive deps are added (empty = all)")
	sections := flag.String("sections", "", "comma-separated report sections to print (empty = all)")
	trace := flag.Bool("trace", false, "print the pipeline span tree on stderr")
	metrics := flag.Bool("metrics", false, "dump run metrics in Prometheus text format on stderr")
	progress := flag.Bool("progress", false, "report analysis stage progress on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	var tracer *turnup.Tracer
	if *trace {
		tracer = turnup.NewTracer("hfanalyze")
	}
	var reg *turnup.Registry
	if *metrics {
		reg = turnup.NewRegistry()
	}
	// fail flushes the partial span tree before exiting, so an interrupted
	// run still yields its trace.
	fail := func(err error) {
		if tracer != nil {
			obs.WriteText(os.Stderr, tracer.Finish())
		}
		log.Fatal(err)
	}

	// Reject unknown stage and section names upfront — the errors list the
	// valid vocabulary — rather than after an expensive generate+run.
	stageList := splitList(*stages)
	if err := turnup.ValidateStages(stageList...); err != nil {
		log.Fatal(err)
	}
	sectionList := splitList(*sections)
	if err := turnup.ValidateSections(sectionList...); err != nil {
		log.Fatal(err)
	}

	var d *turnup.Dataset
	var err error
	if *data != "" {
		d, err = turnup.Load(*data)
	} else {
		d, err = turnup.GenerateCtx(ctx, turnup.Config{Seed: *seed, Scale: *scale, Trace: tracer, Metrics: reg})
	}
	if err != nil {
		fail(err)
	}
	opts := turnup.RunOptions{
		Seed:         *seed,
		LatentClassK: *k,
		SkipModels:   !*models,
		Workers:      *workers,
		Stages:       stageList,
		Trace:        tracer,
		Metrics:      reg,
	}
	if *progress {
		opts.Progress = func(stage string) { fmt.Fprintf(os.Stderr, "hfanalyze: stage %s\n", stage) }
	}
	res, err := turnup.RunCtx(ctx, d, opts)
	if err != nil {
		fail(err)
	}
	if err := turnup.Render(os.Stdout, res, sectionList...); err != nil {
		fail(err)
	}

	if tracer != nil {
		obs.WriteText(os.Stderr, tracer.Finish())
	}
	if *metrics {
		obs.WritePrometheus(os.Stderr, reg)
	}
	if *memprofile != "" {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			log.Fatal(err)
		}
	}
}

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
