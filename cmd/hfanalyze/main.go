// Command hfanalyze runs the paper's analyses over a dataset and prints
// the corresponding tables and figures.
//
// Usage:
//
//	hfanalyze -data ./data                 # analyse a saved dataset
//	hfanalyze -seed 1 -scale 0.1           # generate in memory and analyse
//	hfanalyze -seed 1 -scale 0.1 -models=false   # descriptive analyses only
//
// Note: datasets loaded from CSV carry no ledger, so the §4.5 high-value
// audit reports every high-value contract as unverifiable; generate in
// memory (or via the library) for the full audit.
package main

import (
	"flag"
	"fmt"
	"log"

	"turnup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfanalyze: ")
	data := flag.String("data", "", "dataset directory written by hfgen (empty: generate in memory)")
	seed := flag.Uint64("seed", 1, "random seed for in-memory generation and stochastic analyses")
	scale := flag.Float64("scale", 0.1, "volume scale for in-memory generation")
	models := flag.Bool("models", true, "fit the statistical models (Tables 6-10); slow at large scales")
	k := flag.Int("k", 12, "latent class count for the Table 6 model")
	flag.Parse()

	var d *turnup.Dataset
	var err error
	if *data != "" {
		d, err = turnup.Load(*data)
	} else {
		d, err = turnup.Generate(turnup.Config{Seed: *seed, Scale: *scale})
	}
	if err != nil {
		log.Fatal(err)
	}
	res, err := turnup.Run(d, turnup.RunOptions{
		Seed:         *seed,
		LatentClassK: *k,
		SkipModels:   !*models,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(turnup.RenderAll(res))
}
