package turnup

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"turnup/internal/analysis"
)

// TestRenderAllDeterministicAcrossWorkers is the scheduler's headline
// guarantee: the full suite (models included, so both forked RNG streams
// are exercised) renders byte-identically for Workers ∈ {1, 4,
// GOMAXPROCS}, and across two runs at the same seed.
func TestRenderAllDeterministicAcrossWorkers(t *testing.T) {
	d, err := Generate(Config{Seed: 21, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		t.Helper()
		res, err := Run(d, RunOptions{Seed: 21, LatentClassK: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return RenderAll(res)
	}
	base := render(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := render(w); got != base {
			t.Errorf("RenderAll output differs between Workers=1 and Workers=%d", w)
		}
	}
	if render(runtime.GOMAXPROCS(0)) != base {
		t.Error("RenderAll output differs between two runs at the same seed")
	}
}

// TestRunStagesSubset checks the public stage-selection API: the subset
// plus its transitive deps runs, nothing else does.
func TestRunStagesSubset(t *testing.T) {
	d, _ := apiSuite(t)
	res, err := Run(d, RunOptions{Seed: 5, Stages: []string{"ValueTrend", "Corpus"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values.TotalUSD <= 0 {
		t.Error("Values (transitive dep of ValueTrend) not run")
	}
	if len(res.ValueTrend.ByType) == 0 {
		t.Error("ValueTrend not run")
	}
	if res.Corpus.Contracts == 0 {
		t.Error("Corpus not run")
	}
	if res.Taxonomy.Total != 0 || res.LTM != nil {
		t.Error("unrequested stages ran")
	}

	if _, err := Run(d, RunOptions{Seed: 5, Stages: []string{"NoSuchStage"}}); err == nil {
		t.Error("unknown stage accepted")
	}
}

// TestRunCtxCancellation covers both facade entry points: a cancelled
// context stops generation between months and the suite between stages.
func TestRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateCtx(ctx, Config{Seed: 1, Scale: 0.02}); !errors.Is(err, context.Canceled) {
		t.Errorf("GenerateCtx err = %v, want context.Canceled", err)
	}
	d, _ := apiSuite(t)
	if _, err := RunCtx(ctx, d, RunOptions{Seed: 1, SkipModels: true}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunCtx err = %v, want context.Canceled", err)
	}
}

// TestSectionRegistry pins the named-section render API: the registry
// covers every RenderAll block, a subset emits exactly the requested
// sections, and Render with no names reproduces RenderAll byte-for-byte.
func TestSectionRegistry(t *testing.T) {
	_, res := apiSuite(t)

	names := Sections()
	if len(names) != 29 {
		t.Fatalf("Sections() = %d entries, want 29", len(names))
	}
	var all strings.Builder
	if err := Render(&all, res); err != nil {
		t.Fatal(err)
	}
	if all.String() != RenderAll(res) {
		t.Error("Render with no sections diverges from RenderAll")
	}

	var sub strings.Builder
	if err := Render(&sub, res, "values", "taxonomy"); err != nil {
		t.Fatal(err)
	}
	out := sub.String()
	if !strings.Contains(out, "Table 5") || !strings.Contains(out, "Table 1") {
		t.Error("requested sections missing from subset render")
	}
	if strings.Contains(out, "Table 2") || strings.Contains(out, "Figure 1:") {
		t.Error("subset render leaked unrequested sections")
	}
	// Caller order is respected: values was asked for first.
	if strings.Index(out, "Table 5") > strings.Index(out, "Table 1") {
		t.Error("subset render ignored caller-given section order")
	}

	if err := Render(&sub, res, "no-such-section"); err == nil ||
		!strings.Contains(err.Error(), "unknown section") {
		t.Errorf("unknown section error = %v", err)
	}

	// Model sections render empty (not an error) when the models were
	// skipped — mirroring RenderAll's conditional blocks.
	d, _ := apiSuite(t)
	descr, err := Run(d, RunOptions{Seed: 5, SkipModels: true})
	if err != nil {
		t.Fatal(err)
	}
	var ltm strings.Builder
	if err := Render(&ltm, descr, "latent-classes", "zip-all"); err != nil {
		t.Fatal(err)
	}
	if ltm.String() != "" {
		t.Errorf("model sections rendered %q on a SkipModels run", ltm.String())
	}
}

// TestStagesAPICoversSuite cross-checks the public DAG against the facade:
// every declared stage name round-trips through RunOptions.Stages.
func TestStagesAPICoversSuite(t *testing.T) {
	stages := analysis.Stages()
	if !reflect.DeepEqual(analysis.StageNames, func() []string {
		names := make([]string, len(stages))
		for i, st := range stages {
			names[i] = st.Name
		}
		return names
	}()) {
		t.Error("StageNames alias diverged from Stages()")
	}
	d, _ := apiSuite(t)
	for _, st := range stages {
		if st.Model {
			continue // covered by the full-suite tests; skip the slow fits
		}
		if _, err := Run(d, RunOptions{Seed: 5, Stages: []string{st.Name}}); err != nil {
			t.Errorf("stage %q not runnable alone: %v", st.Name, err)
		}
	}
}
