package turnup

import (
	"bytes"
	"os"
	"runtime"
	"testing"

	"turnup/internal/dataset"
)

// TestRenderAllMatchesPreIndexGolden pins the analysis index migration to
// the exact bytes the pre-index pipeline produced:
// testdata/golden_suite_seed7_scale0.02_k6.txt was rendered by the
// per-stage-rescan implementation (full suite, Seed 7, Scale 0.02, K 6)
// before the shared Index existed. The indexed suite must reproduce it
// byte-for-byte at every worker count — memoizing the corpus groupings
// and obligation classifications is a pure performance change.
func TestRenderAllMatchesPreIndexGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_suite_seed7_scale0.02_k6.txt")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Generate(Config{Seed: 7, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		res, err := Run(d, RunOptions{Seed: 7, LatentClassK: 6, Workers: w})
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if got := RenderAll(res); got != string(want) {
			t.Errorf("Workers=%d: RenderAll diverged from the pre-index golden (%d vs %d bytes)",
				w, len(got), len(want))
		}
	}

	// The columnar binary format is a pure storage change: a corpus pushed
	// through WriteBinary/ReadBinary must keep its content digest and
	// render the same golden bytes (ledger-dependent sections excluded —
	// the binary form, like the CSV pair, drops chain evidence, so the
	// suite runs on the generated dataset both times; only the digest and
	// a render over the decoded corpus are compared here).
	var bin bytes.Buffer
	if err := WriteBinary(&bin, d); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, _ := d.Digest()
	gotDigest, _ := rt.Digest()
	if gotDigest != wantDigest {
		t.Fatalf("binary round trip digest %s, want %s", gotDigest, wantDigest)
	}
	res, err := Run(rt, RunOptions{Seed: 7, LatentClassK: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	csvRef, err := ReadCSV(csvPairReaders(t, d))
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := Run(csvRef, RunOptions{Seed: 7, LatentClassK: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if RenderAll(res) != RenderAll(refRes) {
		t.Error("binary-loaded corpus renders differently from its CSV twin")
	}
}

// csvPairReaders renders d's canonical CSV pair in memory.
func csvPairReaders(t *testing.T, d *Dataset) (contracts, users *bytes.Reader) {
	t.Helper()
	var cb, ub bytes.Buffer
	if err := dataset.WriteContractsCSV(&cb, d.Contracts); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteUsersCSV(&ub, d.Users); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(cb.Bytes()), bytes.NewReader(ub.Bytes())
}
