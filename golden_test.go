package turnup

import (
	"os"
	"runtime"
	"testing"
)

// TestRenderAllMatchesPreIndexGolden pins the analysis index migration to
// the exact bytes the pre-index pipeline produced:
// testdata/golden_suite_seed7_scale0.02_k6.txt was rendered by the
// per-stage-rescan implementation (full suite, Seed 7, Scale 0.02, K 6)
// before the shared Index existed. The indexed suite must reproduce it
// byte-for-byte at every worker count — memoizing the corpus groupings
// and obligation classifications is a pure performance change.
func TestRenderAllMatchesPreIndexGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_suite_seed7_scale0.02_k6.txt")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Generate(Config{Seed: 7, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		res, err := Run(d, RunOptions{Seed: 7, LatentClassK: 6, Workers: w})
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if got := RenderAll(res); got != string(want) {
			t.Errorf("Workers=%d: RenderAll diverged from the pre-index golden (%d vs %d bytes)",
				w, len(got), len(want))
		}
	}
}
