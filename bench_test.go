// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see the per-experiment index in DESIGN.md), plus the design
// ablations of DESIGN.md §6 and the simulator itself.
//
// Each benchmark regenerates its artefact against a shared simulated corpus
// (scale 0.05 so `go test -bench=. ./...` stays tractable); use cmd/hfrepro
// at scale 1.0 for a paper-sized run.
package turnup

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"turnup/internal/analysis"
	"turnup/internal/forum"
	"turnup/internal/market"
	"turnup/internal/obs"
	"turnup/internal/rng"
	"turnup/internal/stats"
	"turnup/internal/textmine"
)

var (
	benchOnce sync.Once
	benchData *Dataset
	benchLTM  *analysis.LTMResult
)

func benchCorpus(b *testing.B) *Dataset {
	b.Helper()
	benchOnce.Do(func() {
		d, _, err := market.Generate(market.Config{Seed: 99, Scale: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		benchData = d
	})
	return benchData
}

func benchLTMFit(b *testing.B) (*Dataset, *analysis.LTMResult) {
	b.Helper()
	d := benchCorpus(b)
	if benchLTM == nil {
		ltm, err := analysis.LatentClasses(d, analysis.LTMOptions{K: 8, Restarts: 1}, rng.New(1))
		if err != nil {
			b.Fatal(err)
		}
		benchLTM = ltm
	}
	return d, benchLTM
}

// BenchmarkGenerate measures the simulator (the dataset substitution).
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := market.Generate(market.Config{Seed: uint64(i) + 1, Scale: 0.02}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Tables ----

func BenchmarkTable1Taxonomy(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.Taxonomy(d)
		if r.Total == 0 {
			b.Fatal("empty taxonomy")
		}
	}
}

func BenchmarkTable2Visibility(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.Visibility(d)
		if len(r.Rows) == 0 {
			b.Fatal("empty visibility")
		}
	}
}

func BenchmarkTable3Activities(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.Activities(d)
		if len(r.Rows) == 0 {
			b.Fatal("no activities")
		}
	}
}

func BenchmarkTable4Payments(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.PaymentMethods(d)
		if len(r.Rows) == 0 {
			b.Fatal("no methods")
		}
	}
}

func BenchmarkTable5Values(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.Values(d)
		if r.TotalUSD <= 0 {
			b.Fatal("no value")
		}
	}
}

func BenchmarkTable6LatentClasses(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.LatentClasses(d,
			analysis.LTMOptions{K: 8, Restarts: 1}, rng.New(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7ColdStartClusters(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.ColdStart(d, rng.New(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8Flows(b *testing.B) {
	d, ltm := benchLTMFit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := analysis.Flows(d, ltm)
		if len(f.Flows) == 0 {
			b.Fatal("no flows")
		}
	}
}

func BenchmarkTable9ZIPAll(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.ZIPAllUsers(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable10ZIPSub(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.ZIPSubgroups(d); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures ----

func BenchmarkFigure1MonthlyGrowth(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := analysis.Growth(d)
		if g.Created[9] == 0 {
			b.Fatal("empty growth")
		}
	}
}

func BenchmarkFigure2VisibilityTrend(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.PublicTrend(d)
	}
}

func BenchmarkFigure3TypeShares(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.TypeShareTrend(d)
	}
}

func BenchmarkFigure4CompletionTime(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.CompletionTimeTrend(d)
	}
}

func BenchmarkFigure5Concentration(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Concentrate(d)
	}
}

func BenchmarkFigure6KeyShare(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.KeyShares(d)
	}
}

func BenchmarkFigure7DegreeDist(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.DegreeDist(d.Contracts)
		if r.Nodes == 0 {
			b.Fatal("empty network")
		}
	}
}

func BenchmarkFigure8DegreeGrowth(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.DegreeGrowthTrend(d, false)
	}
}

func BenchmarkFigure9ProductTrend(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.ProductTrends(d)
	}
}

func BenchmarkFigure10PaymentTrend(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.PaymentTrends(d)
	}
}

func BenchmarkFigure11ValueTrend(b *testing.B) {
	d := benchCorpus(b)
	report := analysis.Values(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.ValueTrends(d, report)
	}
}

// BenchmarkFigure12ClassMade and BenchmarkFigure13ClassAccepted measure
// extracting the per-class activity series from a fitted LTM.
func BenchmarkFigure12ClassMade(b *testing.B) {
	_, ltm := benchLTMFit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for c := range ltm.MadeSeries {
			for _, e := range []int{0, 1, 2} {
				_ = e
				total += ltm.ClassActivityTotal(c, forum.Sale, 1, true)
			}
		}
		if total == 0 {
			b.Fatal("empty made series")
		}
	}
}

func BenchmarkFigure13ClassAccepted(b *testing.B) {
	_, ltm := benchLTMFit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for c := range ltm.AcceptedSeries {
			total += ltm.ClassActivityTotal(c, forum.Sale, 1, false)
		}
		if total == 0 {
			b.Fatal("empty accepted series")
		}
	}
}

// BenchmarkFigure14StateMachine drives a contract through its full legal
// lifecycle (the Figure 14 process).
func BenchmarkFigure14StateMachine(b *testing.B) {
	t0 := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		c, err := forum.NewContract(forum.ContractID(i+1), forum.Exchange, 1, 2, t0, true)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Accept(t0.Add(time.Hour)); err != nil {
			b.Fatal(err)
		}
		if err := c.MarkComplete(forum.MakerParty, t0.Add(2*time.Hour)); err != nil {
			b.Fatal(err)
		}
		if err := c.MarkComplete(forum.TakerParty, t0.Add(3*time.Hour)); err != nil {
			b.Fatal(err)
		}
		if err := c.Rate(forum.MakerParty, forum.RatingPositive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHighValueAudit isolates the §4.5 ledger verification.
func BenchmarkHighValueAudit(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.Values(d)
		if r.Audit.HighValue == 0 {
			b.Skip("no high-value contracts at bench scale")
		}
	}
}

// ---- Observability overhead (internal/obs) ----
//
// The zero-cost-when-disabled contract: BenchmarkSuiteDescriptive (nil
// tracer — the default every caller gets) must match the pre-obs baseline
// within noise, while BenchmarkSuiteDescriptiveTraced shows the cost of
// full span + metrics capture.

func benchRunSuite(b *testing.B, opts analysis.SuiteOptions) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.RunSuite(d, opts, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteDescriptive(b *testing.B) {
	benchRunSuite(b, analysis.SuiteOptions{SkipModels: true})
}

func BenchmarkSuiteDescriptiveTraced(b *testing.B) {
	benchRunSuite(b, analysis.SuiteOptions{
		SkipModels: true,
		Trace:      obs.NewTracer("bench"),
		Metrics:    obs.NewRegistry(),
	})
}

// ---- Parallel scheduler (sequential vs worker-pool suite) ----
//
// The bench-parallel Makefile target records this pair next to
// BENCH_baseline.json: the same full suite (models included, K=6) over a
// Scale-0.1 corpus, first pinned to one worker and then with the default
// pool. On a multi-core machine the WorkersMax run should be measurably
// faster; on one core the two coincide within noise. Note that
// BenchmarkSuiteDescriptive above already exercises the parallel default
// (Workers unset → GOMAXPROCS); BenchmarkSuiteDescriptiveSequential is
// its Workers=1 counterpart at bench scale.

func BenchmarkSuiteDescriptiveSequential(b *testing.B) {
	benchRunSuite(b, analysis.SuiteOptions{SkipModels: true, Workers: 1})
}

var (
	parallelOnce sync.Once
	parallelData *Dataset
)

func parallelCorpus(b *testing.B) *Dataset {
	b.Helper()
	parallelOnce.Do(func() {
		d, _, err := market.Generate(market.Config{Seed: 99, Scale: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		parallelData = d
	})
	return parallelData
}

func benchSuiteWorkers(b *testing.B, workers int) {
	d := parallelCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.RunSuite(d, analysis.SuiteOptions{
			LatentClassK: 6, Workers: workers,
		}, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteScale10Workers1(b *testing.B) { benchSuiteWorkers(b, 1) }

func BenchmarkSuiteScale10WorkersMax(b *testing.B) {
	benchSuiteWorkers(b, runtime.GOMAXPROCS(0))
}

// ---- Analysis index (shared groupings + memoized categorisation) ----
//
// The bench-index Makefile target records this trio next to
// BenchmarkSuiteDescriptive: the per-stage re-parse cost the index
// removed, the steady-state cost of reading the memoized table, and the
// cold one-pass build price a suite run pays exactly once.

// BenchmarkCategoriseCorpusDirect re-parses every completed public
// contract's two obligation texts — what each of the five
// categoriser-bound stages used to do per run.
func BenchmarkCategoriseCorpusDirect(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range d.CompletedPublic() {
			textmine.Categorize(c.MakerObligation)
			textmine.Categorize(c.TakerObligation)
		}
	}
}

// BenchmarkCategoriseCorpusMemoized reads the same classifications
// through a warm analysis.Index — what every stage after the first pays.
func BenchmarkCategoriseCorpusMemoized(b *testing.B) {
	d := benchCorpus(b)
	ix := analysis.NewIndex(d)
	cs := ix.CompletedPublic()
	ix.MakerCategories(cs[0]) // build the table outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cs {
			ix.MakerCategories(c)
			ix.TakerCategories(c)
		}
	}
}

// BenchmarkIndexObligationBuild measures the cold one-pass table build
// (worker-pool classification of every completed public contract) that a
// suite run amortises across all categoriser-bound stages.
func BenchmarkIndexObligationBuild(b *testing.B) {
	d := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := analysis.NewIndex(d)
		ix.MakerCategories(ix.CompletedPublic()[0])
	}
}

// ---- Columnar dataset format (dataset.bin vs the CSV pair) ----
//
// The bench-columnar Makefile target records this pair next to
// BenchmarkSuiteDescriptive in BENCH_columnar.json: the load cost of the
// binary format LoadDir now prefers against re-parsing the canonical CSV
// pair it replaced on the hot path.

func benchSavedCorpus(b *testing.B) string {
	b.Helper()
	d := benchCorpus(b)
	dir := b.TempDir()
	if err := Save(d, dir); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkDatasetBinaryLoad measures decoding dataset.bin — the store's
// replication payload and LoadDir's preferred path.
func BenchmarkDatasetBinaryLoad(b *testing.B) {
	dir := benchSavedCorpus(b)
	raw, err := os.ReadFile(filepath.Join(dir, "dataset.bin"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := ReadBinary(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Contracts) == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// BenchmarkDatasetCSVLoad measures parsing the same corpus from its CSV
// pair — the fallback (and upload) path the binary format bypasses.
func BenchmarkDatasetCSVLoad(b *testing.B) {
	dir := benchSavedCorpus(b)
	contracts, err := os.ReadFile(filepath.Join(dir, "contracts.csv"))
	if err != nil {
		b.Fatal(err)
	}
	users, err := os.ReadFile(filepath.Join(dir, "users.csv"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := ReadCSV(bytes.NewReader(contracts), bytes.NewReader(users))
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Contracts) == 0 {
			b.Fatal("empty corpus")
		}
	}
}

// ---- Ablations (DESIGN.md §6) ----

// BenchmarkAblationZIPSolverEM vs BenchmarkAblationZIPSolverGradient:
// the EM solver against direct gradient ascent on the same simulated data.
func ablationZIPData(b *testing.B) (*stats.Matrix, []float64, *stats.Matrix) {
	b.Helper()
	src := rng.New(77)
	n := 2000
	countX := stats.NewMatrix(n, 2)
	zeroX := stats.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		countX.Set(i, 0, 1)
		zeroX.Set(i, 0, 1)
		x := src.Norm()
		countX.Set(i, 1, x)
		zeroX.Set(i, 1, src.Norm())
		if src.Bool(0.35) {
			y[i] = 0
		} else {
			y[i] = float64(src.Poisson(3 * (1 + 0.3*x*x)))
		}
	}
	return countX, y, zeroX
}

func BenchmarkAblationZIPSolverEM(b *testing.B) {
	countX, y, zeroX := ablationZIPData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.ZIPRegression(countX, y, zeroX,
			[]string{"(Intercept)", "x"}, []string{"(Intercept)", "z"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationZIPSolverGradient(b *testing.B) {
	countX, y, zeroX := ablationZIPData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.ZIPRegressionGradient(countX, y, zeroX); err != nil {
			b.Fatal(err)
		}
	}
}

// k-means++ vs uniform seeding on the cold-start-like feature space.
func ablationKMeansData(b *testing.B) [][]float64 {
	b.Helper()
	src := rng.New(78)
	data := make([][]float64, 1500)
	for i := range data {
		row := make([]float64, 7)
		scale := 1.0
		if src.Bool(0.03) {
			scale = 30 // outlier users
		}
		for j := range row {
			row[j] = scale * src.Exp(1)
		}
		data[i] = row
	}
	return data
}

func BenchmarkAblationKMeansPlusPlus(b *testing.B) {
	data := ablationKMeansData(b)
	opts := stats.NewKMeansOptions()
	opts.Restarts = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.KMeans(data, 8, opts, rng.New(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationKMeansRandomSeed(b *testing.B) {
	data := ablationKMeansData(b)
	opts := stats.NewKMeansOptions()
	opts.Restarts = 2
	opts.PlusPlus = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.KMeans(data, 8, opts, rng.New(uint64(i)+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// LCA class-count selection sweep (the paper's "12-class model is most
// parsimonious" step, at bench scale).
func BenchmarkAblationLCASelection(b *testing.B) {
	src := rng.New(79)
	data := make([][]float64, 1200)
	rates := [][]float64{{0.5, 4}, {6, 0.3}, {2, 2}}
	for i := range data {
		c := src.Intn(3)
		data[i] = []float64{float64(src.Poisson(rates[c][0])), float64(src.Poisson(rates[c][1]))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, _, err := stats.SelectLCA(data, 1, 5, 2, rng.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		if best.K < 2 {
			b.Fatalf("selected k=%d", best.K)
		}
	}
}

// Regex bucketiser vs the exact-token baseline classifier.
func ablationTexts(b *testing.B) []string {
	b.Helper()
	d := benchCorpus(b)
	var texts []string
	for _, c := range d.CompletedPublic() {
		if c.MakerObligation != "" {
			texts = append(texts, c.MakerObligation)
		}
	}
	if len(texts) == 0 {
		b.Fatal("no obligation texts")
	}
	return texts
}

func BenchmarkAblationCategoriserRegex(b *testing.B) {
	texts := ablationTexts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		textmine.Categorize(texts[i%len(texts)])
	}
}

func BenchmarkAblationCategoriserTokens(b *testing.B) {
	texts := ablationTexts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		textmine.TokenClassify(texts[i%len(texts)])
	}
}
