package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"Name", "N"}, [][]string{
		{"alpha", "1"},
		{"b", "12345"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All rows render with the same width.
	if len(lines[0]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned rows:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "12345") {
		t.Errorf("missing cells:\n%s", out)
	}
}

func TestCount(t *testing.T) {
	cases := map[int]string{
		0: "0", 5: "5", 999: "999", 1000: "1,000",
		1234567: "1,234,567", -4321: "-4,321",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPctAndUSD(t *testing.T) {
	if got := Pct(0.12345); got != "12.35%" {
		t.Errorf("Pct = %q", got)
	}
	if got := USD(1234567.8); got != "$1,234,568" {
		t.Errorf("USD = %q", got)
	}
	if got := USD(-50); got != "-$50" {
		t.Errorf("USD(-50) = %q", got)
	}
}

func TestCountPair(t *testing.T) {
	if got := CountPair(5533, 1911); got != "5,533 (1,911)" {
		t.Errorf("CountPair = %q", got)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline runes = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline = %q", s)
	}
	// Constant series uses the low block everywhere.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat sparkline = %q", string(flat))
		}
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline not empty")
	}
}

func TestIsNumeric(t *testing.T) {
	for s, want := range map[string]bool{
		"123":       true,
		"1,234":     true,
		"$5 (10%)":  true,
		"12.34%":    true,
		"-8":        true,
		"Bitcoin":   false,
		"":          false,
		"3 monkeys": false,
	} {
		if got := isNumeric(s); got != want {
			t.Errorf("isNumeric(%q) = %v", s, got)
		}
	}
}

func TestSeriesRendering(t *testing.T) {
	out := Series("label", []float64{1, 2}, "%4.1f")
	if !strings.HasPrefix(out, "label") || !strings.Contains(out, "1.0") {
		t.Errorf("Series = %q", out)
	}
	intOut := IntSeries("xs", []int{3, 4})
	if !strings.Contains(intOut, "3") || !strings.Contains(intOut, "4") {
		t.Errorf("IntSeries = %q", intOut)
	}
}

func TestRenderComparisons(t *testing.T) {
	rows := []Comparison{
		{"Table 1", "m", "1", "2", true},
		{"Fig 2", "n", "3", "4", false},
	}
	out := RenderComparisons(rows)
	if !strings.Contains(out, "| Table 1 |") || !strings.Contains(out, "✓") ||
		!strings.Contains(out, "✗") {
		t.Errorf("RenderComparisons = %q", out)
	}
	if !strings.Contains(out, "1 of 2 shape claims held") {
		t.Errorf("summary line missing: %q", out)
	}
}
