package report

import (
	"strings"
	"sync"
	"testing"

	"turnup/internal/analysis"
	"turnup/internal/market"
	"turnup/internal/rng"
)

// The renderer tests share one tiny corpus and suite.
var (
	rptOnce  sync.Once
	rptSuite *analysis.Suite
)

func suite(t *testing.T) *analysis.Suite {
	t.Helper()
	rptOnce.Do(func() {
		d, _, err := market.Generate(market.Config{Seed: 3, Scale: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		s, err := analysis.RunSuite(d, analysis.SuiteOptions{LatentClassK: 6}, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		rptSuite = s
	})
	return rptSuite
}

func TestTaxonomyRenderer(t *testing.T) {
	out := Taxonomy(suite(t).Taxonomy)
	for _, want := range []string{"Table 1", "SALE", "EXCHANGE", "VOUCH COPY", "Complete", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Taxonomy output missing %q", want)
		}
	}
	// 5 type rows + totals row + header + rule.
	if lines := strings.Count(out, "\n"); lines < 8 {
		t.Errorf("Taxonomy output too short: %d lines", lines)
	}
}

func TestVisibilityRenderer(t *testing.T) {
	out := Visibility(suite(t).Visibility)
	if !strings.Contains(out, "SALE Created") || !strings.Contains(out, "SALE Completed") {
		t.Errorf("Visibility output missing rows:\n%s", out)
	}
}

func TestActivitiesRenderer(t *testing.T) {
	out := Activities(suite(t).Activities, 15)
	if !strings.Contains(out, "currency exchange") || !strings.Contains(out, "All Trading Activities") {
		t.Errorf("Activities output missing rows")
	}
}

func TestPaymentsRenderer(t *testing.T) {
	out := Payments(suite(t).Payments, 10)
	if !strings.Contains(out, "Bitcoin") || !strings.Contains(out, "All Methods") {
		t.Errorf("Payments output missing rows")
	}
}

func TestValuesRenderer(t *testing.T) {
	out := Values(suite(t).Values, 10)
	for _, want := range []string{"Table 5", "Total public value", "High-value audit", "Extrapolated"} {
		if !strings.Contains(out, want) {
			t.Errorf("Values output missing %q", want)
		}
	}
}

func TestSeriesRenderers(t *testing.T) {
	s := suite(t)
	cases := map[string]string{
		"Figure 1":  Growth(s.Growth),
		"Figure 2":  PublicTrend(s.PublicTrend),
		"Figure 3":  TypeShares(s.TypeShares),
		"Figure 4":  CompletionTimes(s.CompletionTimes),
		"Figure 5":  Concentration(s.Concentration),
		"Figure 6":  KeyShares(s.KeyShares),
		"Figure 8":  DegreeGrowth(s.DegreeGrowth),
		"Figure 9":  ProductTrend(s.Products),
		"Figure 10": PaymentTrend(s.PaymentTrend),
		"Figure 11": ValueTrend(s.ValueTrend),
		"§4.3":      Participation(s.Participation),
		"§5.1":      Disputes(s.Disputes),
	}
	for want, out := range cases {
		if !strings.Contains(out, want) {
			t.Errorf("renderer output missing header %q:\n%.120s", want, out)
		}
		if len(out) < 50 {
			t.Errorf("%s output suspiciously short", want)
		}
	}
}

func TestDegreeDistRenderer(t *testing.T) {
	out := DegreeDist("created", suite(t).DegreesCreated)
	if !strings.Contains(out, "raw") || !strings.Contains(out, "outbound") {
		t.Errorf("DegreeDist output missing kinds:\n%s", out)
	}
}

func TestModelRenderers(t *testing.T) {
	s := suite(t)
	if s.LTM == nil {
		t.Fatal("suite has no LTM")
	}
	lc := LatentClasses(s.LTM)
	if !strings.Contains(lc, "Table 6") || !strings.Contains(lc, "log-likelihood") {
		t.Errorf("LatentClasses output:\n%.200s", lc)
	}
	ca := ClassActivity(s.LTM, true)
	if !strings.Contains(ca, "Figure 12") {
		t.Errorf("ClassActivity made output:\n%.200s", ca)
	}
	ca13 := ClassActivity(s.LTM, false)
	if !strings.Contains(ca13, "Figure 13") {
		t.Errorf("ClassActivity accepted output:\n%.200s", ca13)
	}
	fl := Flows(s.Flows, s.LTM)
	if !strings.Contains(fl, "Table 8") || !strings.Contains(fl, "SET-UP") {
		t.Errorf("Flows output:\n%.200s", fl)
	}
	cs := ColdStart(s.ColdStart)
	if !strings.Contains(cs, "Table 7") || !strings.Contains(cs, "median lifespan") {
		t.Errorf("ColdStart output:\n%.200s", cs)
	}
	zm := ZIPModels("Table 9: test", s.ZIPAll)
	for _, want := range []string{"Count model", "Zero-inflation model", "Vuong", "McFadden"} {
		if !strings.Contains(zm, want) {
			t.Errorf("ZIPModels output missing %q", want)
		}
	}
}

func TestCompareAgainstSuite(t *testing.T) {
	rows := Compare(suite(t))
	if len(rows) < 45 {
		t.Fatalf("only %d comparison rows", len(rows))
	}
	ids := map[string]bool{}
	for _, r := range rows {
		ids[r.ID] = true
		if r.Metric == "" || r.Paper == "" || r.Measured == "" {
			t.Errorf("incomplete row: %+v", r)
		}
	}
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Table 6", "Table 7", "Table 8", "Table 9", "Table 10",
		"Fig 1", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6", "Fig 7", "Fig 8",
		"§4.3", "§4.5", "§5.1", "§5.2", "§2.2",
	} {
		if !ids[want] {
			t.Errorf("no comparison rows for %s", want)
		}
	}
}
