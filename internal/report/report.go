// Package report renders analysis results as aligned ASCII tables and
// series, in the layout of the paper's tables and figures. The cmd tools
// and EXPERIMENTS.md generation are built on it.
package report

import (
	"fmt"
	"strings"
)

// Table renders rows under headers with column alignment. Numeric-looking
// cells are right-aligned; everything else is left-aligned.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				if isNumeric(cell) {
					fmt.Fprintf(&b, "%*s", widths[i], cell)
				} else {
					fmt.Fprintf(&b, "%-*s", widths[i], cell)
				}
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' || r == ',' || r == '-' || r == '+' || r == '%' || r == '$' || r == '(' || r == ')' || r == ' ':
		default:
			return false
		}
	}
	return true
}

// Count renders an integer with thousands separators: 12345 → "12,345".
func Count(n int) string {
	s := fmt.Sprintf("%d", n)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Pct renders a fraction as a percentage with two decimals: 0.1234 → "12.34%".
func Pct(frac float64) string { return fmt.Sprintf("%.2f%%", 100*frac) }

// USD renders a dollar amount with thousands separators and no cents.
func USD(v float64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	s := "$" + Count(int(v+0.5))
	if neg {
		s = "-" + s
	}
	return s
}

// CountPair renders "contracts (users)" cells like the paper's Tables 3-4.
func CountPair(contracts, users int) string {
	return fmt.Sprintf("%s (%s)", Count(contracts), Count(users))
}

// Series renders a labelled monthly series as "label: v0 v1 ... v24".
func Series(label string, values []float64, format string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s", label)
	for _, v := range values {
		fmt.Fprintf(&b, " "+format, v)
	}
	b.WriteByte('\n')
	return b.String()
}

// IntSeries renders a labelled monthly integer series.
func IntSeries(label string, values []int) string {
	fs := make([]float64, len(values))
	for i, v := range values {
		fs[i] = float64(v)
	}
	return Series(label, fs, "%6.0f")
}

// Sparkline renders a unicode mini-chart of the series, handy for
// eyeballing figure shapes in a terminal.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
