package report

import (
	"fmt"
	"strings"

	"turnup/internal/analysis"
	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/graph"
	"turnup/internal/textmine"
)

// Comparison is one paper-vs-measured row of EXPERIMENTS.md. "Held" means
// the scale-invariant shape claim holds on the generated data; absolute
// values are synthetic and reported for context.
type Comparison struct {
	ID       string // table/figure identifier
	Metric   string
	Paper    string
	Measured string
	Held     bool
}

// Compare evaluates every shape claim of the paper against a computed
// suite.
func Compare(r *analysis.Suite) []Comparison {
	var out []Comparison
	add := func(id, metric, paper, measured string, held bool) {
		out = append(out, Comparison{id, metric, paper, measured, held})
	}

	// ---- Table 1 ----
	tax := r.Taxonomy
	saleShare := float64(tax.TypeTotal(forum.Sale)) / float64(tax.Total)
	exShare := float64(tax.TypeTotal(forum.Exchange)) / float64(tax.Total)
	puShare := float64(tax.TypeTotal(forum.Purchase)) / float64(tax.Total)
	add("Table 1", "SALE share of created contracts", "64.9%", Pct(saleShare),
		saleShare > 0.58 && saleShare < 0.72)
	add("Table 1", "EXCHANGE share", "21.5%", Pct(exShare), exShare > 0.16 && exShare < 0.27)
	add("Table 1", "PURCHASE share", "11.9%", Pct(puShare), puShare > 0.07 && puShare < 0.17)
	exRate := tax.CompletionRate(forum.Exchange)
	saRate := tax.CompletionRate(forum.Sale)
	add("Table 1", "EXCHANGE completion rate", "69.8%", Pct(exRate), exRate > 0.6 && exRate < 0.78)
	add("Table 1", "SALE completion rate", "32.7%", Pct(saRate), saRate > 0.26 && saRate < 0.40)
	add("Table 1", "EXCHANGE completes ≈2× SALE", "2.13×",
		fmt.Sprintf("%.2f×", exRate/saRate), exRate > 1.7*saRate)
	add("Table 1", "VOUCH COPY has no denials", "0",
		Count(tax.Counts[forum.VouchCopy][analysis.BucketDenied]),
		tax.Counts[forum.VouchCopy][analysis.BucketDenied] == 0)

	// ---- Table 2 ----
	vis := r.Visibility
	createdPub := vis.OverallPublicShare(false)
	completedPub := vis.OverallPublicShare(true)
	add("Table 2", "public share of created contracts", "12.0%", Pct(createdPub),
		createdPub > 0.08 && createdPub < 0.18)
	add("Table 2", "public share of completed contracts", "15.7%", Pct(completedPub),
		completedPub > createdPub)

	// ---- Figure 1 ----
	g := r.Growth
	add("Fig 1", "created contracts jump when contracts become mandatory (2019-03 vs 2019-02)",
		"+172%", fmt.Sprintf("%+.0f%%", 100*(float64(g.Created[9])/float64(max(g.Created[8], 1))-1)),
		g.Created[9] > 2*g.Created[8])
	add("Fig 1", "COVID peak (2020-04) exceeds STABLE peak (2019-04)",
		">13,000 vs ~12,500", fmt.Sprintf("%s vs %s", Count(g.Created[22]), Count(g.Created[10])),
		g.Created[22] > g.Created[10])
	add("Fig 1", "new-member burst at 2019-03", "+276%",
		fmt.Sprintf("%+.0f%%", 100*(float64(g.NewCreators[9])/float64(max(g.NewCreators[8], 1))-1)),
		g.NewCreators[9] > 2*g.NewCreators[8])
	add("Fig 1", "post-peak COVID decline", "drop after 2020-04",
		fmt.Sprintf("%s → %s", Count(g.Created[22]), Count(g.Created[24])),
		g.Created[24] < g.Created[22])

	// ---- Figure 2 ----
	pt := r.PublicTrend
	add("Fig 2", "public share declines from ~45-50% (early SET-UP) to ~10% (STABLE)",
		"45% → 10%", fmt.Sprintf("%s → %s", Pct(pt.CreatedPublic[1]), Pct(pt.CreatedPublic[14])),
		pt.CreatedPublic[1] > 0.3 && pt.CreatedPublic[14] < 0.2)

	// ---- Figure 3 ----
	ts := r.TypeShares
	add("Fig 3", "EXCHANGE leads at launch (~50%), SALE dominates STABLE (>70%)",
		"50% → 70%+", fmt.Sprintf("EXCH %s at launch; SALE %s in STABLE",
			Pct(ts.Created[0][forum.Exchange]), Pct(ts.Created[14][forum.Sale])),
		ts.Created[0][forum.Exchange] > ts.Created[0][forum.Sale] && ts.Created[14][forum.Sale] > 0.6)

	// ---- Figure 4 ----
	ct := r.CompletionTimes
	add("Fig 4", "completion under 10h by June 2020", "<10h",
		fmt.Sprintf("SALE %.1fh", ct.MeanHours[24][forum.Sale]), ct.MeanHours[24][forum.Sale] < 20)
	add("Fig 4", "completion-date coverage", "~70%", Pct(ct.CoveredShare),
		ct.CoveredShare > 0.62 && ct.CoveredShare < 0.78)

	// ---- Figure 5 ----
	c5 := r.Concentration
	top5 := c5.UsersCreated.ShareAtTop(0.05)
	add("Fig 5", "top 5% of users involved in >70% of contracts", ">70%", Pct(top5), top5 > 0.55)
	top30t := c5.ThreadsCreated.ShareAtTop(0.30)
	add("Fig 5", "top 30% of threads cover ~70% of linked contracts", "~70%", Pct(top30t), top30t > 0.5)

	// ---- Figure 6 ----
	k6 := r.KeyShares
	covidUp := k6.MemberCreated[21] > k6.MemberCreated[20]-0.02
	add("Fig 6", "key-member share rises into COVID-19", "rapid increase",
		fmt.Sprintf("%s → %s", Pct(k6.MemberCreated[20]), Pct(k6.MemberCreated[22])), covidUp)

	// ---- Figure 7 ----
	dd := r.DegreesCreated
	add("Fig 7", "max raw degree (created)", "5,004", Count(dd.Max[graph.Raw]),
		dd.Max[graph.Raw] > 10*dd.Max[graph.Outbound]/6)
	add("Fig 7", "max raw ≈ max inbound ≫ max outbound", "5,004 ≈ 4,992 ≫ 587",
		fmt.Sprintf("%s ≈ %s ≫ %s", Count(dd.Max[graph.Raw]), Count(dd.Max[graph.Inbound]), Count(dd.Max[graph.Outbound])),
		dd.Max[graph.Inbound] >= dd.Max[graph.Raw]*9/10 && dd.Max[graph.Outbound]*2 < dd.Max[graph.Raw])
	plHeld := dd.PowerLaw[graph.Raw] != nil && dd.PowerLaw[graph.Raw].Alpha > 1.2 && dd.PowerLaw[graph.Raw].Alpha < 4.5
	plStr := "n/a"
	if dd.PowerLaw[graph.Raw] != nil {
		plStr = fmt.Sprintf("alpha=%.2f", dd.PowerLaw[graph.Raw].Alpha)
	}
	add("Fig 7", "raw degree distribution is power-law-like", "power law", plStr, plHeld)

	// ---- Figure 8 ----
	dg := r.DegreeGrowth
	add("Fig 8", "big degree uplift during STABLE", "max raw rockets",
		fmt.Sprintf("%s → %s", Count(dg.MaxRaw[8]), Count(dg.MaxRaw[20])), dg.MaxRaw[20] > 2*dg.MaxRaw[8])

	// ---- Table 3 ----
	act := r.Activities
	ceShare := 0.0
	ranking := make([]string, 0, 4)
	for i, row := range act.Rows {
		if i < 4 {
			ranking = append(ranking, string(row.Category))
		}
	}
	if row, ok := act.Row(textmine.CurrencyExchange); ok && act.Total.Both.Contracts > 0 {
		ceShare = float64(row.Both.Contracts) / float64(act.Total.Both.Contracts)
	}
	add("Table 3", "currency exchange share of classified contracts", "~75%", Pct(ceShare),
		ceShare > 0.55 && ceShare < 0.85)
	wantTop := []string{
		string(textmine.CurrencyExchange), string(textmine.Payments),
		string(textmine.Giftcard), string(textmine.Accounts),
	}
	add("Table 3", "top-4 activity ranking", strings.Join(wantTop, " > "),
		strings.Join(ranking, " > "), len(ranking) == 4 && ranking[0] == wantTop[0] &&
			ranking[1] == wantTop[1] && ranking[2] == wantTop[2])

	// ---- Table 4 ----
	pay := r.Payments
	btcShare, ppShare := 0.0, 0.0
	if row, ok := pay.Row(textmine.MBitcoin); ok && pay.Total.Both.Contracts > 0 {
		btcShare = float64(row.Both.Contracts) / float64(pay.Total.Both.Contracts)
	}
	if row, ok := pay.Row(textmine.MPayPal); ok && pay.Total.Both.Contracts > 0 {
		ppShare = float64(row.Both.Contracts) / float64(pay.Total.Both.Contracts)
	}
	add("Table 4", "Bitcoin share of payment-classified contracts", "75%", Pct(btcShare),
		btcShare > 0.6 && btcShare < 0.9)
	add("Table 4", "PayPal share", "38%", Pct(ppShare), ppShare > 0.25 && ppShare < 0.60)
	top3 := make([]string, 0, 3)
	for i, row := range pay.Rows {
		if i < 3 {
			top3 = append(top3, string(row.Method))
		}
	}
	add("Table 4", "method ranking", "Bitcoin > PayPal > Amazon GC", strings.Join(top3, " > "),
		len(top3) == 3 && top3[0] == "Bitcoin" && top3[1] == "PayPal" && top3[2] == "Amazon Giftcards")

	// ---- Table 5 / §4.5 ----
	vals := r.Values
	add("Table 5", "top value activity is currency exchange", "$971,228",
		fmt.Sprintf("%s (%s)", USD(vals.ActivityValues[0].TotalUSD()), vals.ActivityValues[0].Category),
		vals.ActivityValues[0].Category == textmine.CurrencyExchange)
	btcVal, ppVal := 0.0, 0.0
	for _, row := range vals.MethodValues {
		switch row.Method {
		case textmine.MBitcoin:
			btcVal = row.TotalUSD()
		case textmine.MPayPal:
			ppVal = row.TotalUSD()
		}
	}
	add("Table 5", "Bitcoin value ≈ 2.4× PayPal", "$809,283 vs $334,425",
		fmt.Sprintf("%s vs %s (%.1f×)", USD(btcVal), USD(ppVal), btcVal/maxF(ppVal, 1)),
		btcVal > 1.2*ppVal)
	add("§4.5", "total public value", "$978,800", USD(vals.TotalUSD), vals.TotalUSD > 0)
	add("§4.5", "average contract value", "$85", USD(vals.MeanUSD),
		vals.MeanUSD > 30 && vals.MeanUSD < 200)
	add("§4.5", "maximum contract value", "$9,861", USD(vals.MaxUSD), vals.MaxUSD < 10000)
	add("§4.5", "extrapolated public+private lower bound ≈ 6.3× public", "$6,170,943",
		USD(vals.ExtrapolatedUSD), vals.ExtrapolatedUSD > 3*vals.TotalUSD)
	add("§4.5", "top 10% of users hold >70% of value", ">70%", Pct(vals.TopDecileShare),
		vals.TopDecileShare > 0.5)
	add("§4.5", "mean value per participating user", "$185", USD(vals.MeanPerUserUSD),
		vals.MeanPerUserUSD > 50 && vals.MeanPerUserUSD < 500)
	auditTotal := maxF(float64(vals.Audit.HighValue), 1)
	add("§4.5", "high-value audit mix (confirmed/revised/unclear)", "50% / 43% / 7%",
		fmt.Sprintf("%.0f%% / %.0f%% / %.0f%% of %d",
			100*float64(vals.Audit.Confirmed)/auditTotal,
			100*float64(vals.Audit.Revised)/auditTotal,
			100*float64(vals.Audit.Unclear)/auditTotal, vals.Audit.HighValue),
		vals.Audit.HighValue > 0 && vals.Audit.Confirmed > 0)

	// ---- §3 corpus ----
	corp := r.Corpus
	add("§3", "share of public contracts linked to a thread", "68.4%", Pct(corp.PublicWithThread),
		corp.PublicWithThread > 0.55 && corp.PublicWithThread < 0.80)
	add("§3", "share of all contracts linked to a thread", "8.2%", Pct(corp.OverallWithThread),
		corp.OverallWithThread > 0.04 && corp.OverallWithThread < 0.15)

	// ---- §6 stimulus vs transformation ----
	st := r.Stimulus
	add("§6", "COVID-19 is a stimulus (volume up) ...", "volumes increase",
		fmt.Sprintf("%.2f× late-STABLE monthly volume", st.VolumeRatio), st.VolumeRatio > 1.1)
	add("§6", "... not a transformation (type mix stable)", "composition unchanged",
		fmt.Sprintf("Cramér's V = %.3f", st.CramersV), st.CramersV < 0.15)

	// ---- §4.3 participation ----
	part := r.Participation
	add("§4.3", "share of makers with exactly one transaction", "49%", Pct(part.Makers.ShareOne),
		part.Makers.ShareOne > 0.3 && part.Makers.ShareOne < 0.7)
	add("§4.3", "taker tail far longer than maker tail", "9,000+ vs 700+",
		fmt.Sprintf("%s vs %s", Count(part.Takers.MaxCount), Count(part.Makers.MaxCount)),
		part.Takers.MaxCount > part.Makers.MaxCount)

	// ---- §5.1 disputes ----
	disp := r.Disputes
	add("§5.1", "disputes peak at 2-3% late in SET-UP, ~1% in STABLE", "2-3% vs ~1%",
		fmt.Sprintf("%s vs %s", Pct(disp.LateSetupMean()), Pct(disp.EraMean(dataset.EraStable))),
		disp.LateSetupMean() > 1.4*disp.EraMean(dataset.EraStable) && disp.LateSetupMean() > 0.012)

	// ---- Era-boundary scan ----
	if len(r.ChangePoints) > 0 {
		first := int(r.ChangePoints[0].Month)
		add("§2.2", "strongest volume break near the STABLE boundary (2019-03)",
			"2019-03", dataset.Month(first).String(), first >= 8 && first <= 11)
	}

	// ---- Models ----
	if r.LTM != nil {
		// A single-SALE-maker class and a heavy SALE-taker class exist.
		makerClass, takerClass := false, false
		for c := 0; c < r.LTM.Fit.K; c++ {
			mk := r.LTM.Fit.Rates[c][int(forum.Sale)]
			tk := r.LTM.Fit.Rates[c][forum.NumContractTypes+int(forum.Sale)]
			if mk > 0.5 && mk > 3*tk {
				makerClass = true
			}
			if tk > 10 {
				takerClass = true
			}
		}
		add("Table 6", "distinct single-SALE-maker class (paper class C)", "1.1 SALE/month",
			fmt.Sprintf("recovered=%v", makerClass), makerClass)
		add("Table 6", "SALE-taker power class (paper class L)", "54.9 SALE taken/month",
			fmt.Sprintf("recovered=%v", takerClass), takerClass)
	}
	if r.LTM != nil {
		top := r.Flows.Top(dataset.EraStable, forum.Sale, 1)
		if len(top) == 1 {
			tk := r.LTM.Fit.Rates[top[0].TakerClass][forum.NumContractTypes+int(forum.Sale)]
			add("Table 8", "dominant STABLE SALE flow lands on a power-taker class (C→L, 47%)",
				"47%", Pct(top[0].Share), tk > 1 && top[0].Share > 0.15)
		}
	}
	if r.ColdStart != nil {
		cs := r.ColdStart
		add("Table 7", "tiny outlier cluster among STABLE cold starters", "2.3%",
			Pct(1-cs.MainClusterShare), cs.MainClusterShare > 0.8 && cs.MainClusterShare < 1)
		add("§5.2", "outliers live far longer than typical cold starters", "<1 day vs 250 days",
			fmt.Sprintf("%.1f vs %.1f days", cs.MedianLifespanAllDays, cs.MedianLifespanOutlierDays),
			cs.MedianLifespanOutlierDays > 5*maxF(cs.MedianLifespanAllDays, 0.1))
		add("§5.2", "outliers continue into COVID-19 more often", "13.0% vs 54.1%",
			fmt.Sprintf("%s vs %s", Pct(cs.ContinueIntoCovidAll), Pct(cs.ContinueIntoCovidOutliers)),
			cs.ContinueIntoCovidOutliers > cs.ContinueIntoCovidAll)
		add("§5.2", "SET-UP starters carry more reputation than STABLE cold starters", "96 vs 33",
			fmt.Sprintf("%.0f vs %.0f", cs.MedianReputationSetup, cs.MedianReputationAll),
			cs.MedianReputationSetup > cs.MedianReputationAll)
	}
	if r.ZIPAll != nil {
		favoured := 0
		for _, z := range r.ZIPAll {
			if z.Model.Vuong > 0 {
				favoured++
			}
		}
		add("Table 9", "Vuong tests prefer ZIP over plain Poisson", "all eras",
			fmt.Sprintf("%d of %d eras", favoured, len(r.ZIPAll)), favoured >= 2)
		for _, z := range r.ZIPAll {
			add("Table 9", fmt.Sprintf("%s McFadden pseudo-R²", z.Era),
				"0.65-0.71", fmt.Sprintf("%.3f", z.Model.McFadden),
				z.Model.McFadden > 0.3 && z.Model.McFadden < 0.95)
		}
	}
	if r.ZIPSub != nil {
		var ftN, exN int
		for _, z := range r.ZIPSub {
			if z.Era == dataset.EraStable {
				if z.Subset == "first-time" {
					ftN = z.Records
				} else {
					exN = z.Records
				}
			}
		}
		add("Table 10", "STABLE first-time users outnumber existing users", "16,123 vs 3,534",
			fmt.Sprintf("%s vs %s", Count(ftN), Count(exN)), ftN > exN)
	}
	return out
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RenderComparisons renders comparison rows as a markdown table.
func RenderComparisons(rows []Comparison) string {
	var b strings.Builder
	b.WriteString("| ID | Metric | Paper | Measured | Shape held |\n")
	b.WriteString("|---|---|---|---|---|\n")
	held := 0
	for _, r := range rows {
		mark := "✗"
		if r.Held {
			mark = "✓"
			held++
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n", r.ID, r.Metric, r.Paper, r.Measured, mark)
	}
	fmt.Fprintf(&b, "\n%d of %d shape claims held.\n", held, len(rows))
	return b.String()
}
