package report

import (
	"fmt"
	"strings"

	"turnup/internal/analysis"
	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/graph"
)

// Taxonomy renders Table 1.
func Taxonomy(r analysis.TaxonomyResult) string {
	headers := append([]string{"Type\\Status"}, analysis.BucketNames[:]...)
	headers = append(headers, "Total")
	var rows [][]string
	for _, typ := range forum.ContractTypes {
		row := []string{typ.String()}
		for b := analysis.Bucket(0); b < analysis.NumBuckets; b++ {
			n := r.Counts[typ][b]
			row = append(row, fmt.Sprintf("%s (%s)", Count(n), Pct(r.Share(typ, b))))
		}
		row = append(row, Count(r.TypeTotal(typ)))
		rows = append(rows, row)
	}
	totalRow := []string{"Total"}
	for b := analysis.Bucket(0); b < analysis.NumBuckets; b++ {
		n := r.BucketTotal(b)
		totalRow = append(totalRow, fmt.Sprintf("%s (%s)", Count(n), Pct(float64(n)/float64(max(r.Total, 1)))))
	}
	totalRow = append(totalRow, Count(r.Total))
	rows = append(rows, totalRow)
	return "Table 1: Taxonomy of collected contracts\n" + Table(headers, rows)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Visibility renders Table 2.
func Visibility(r analysis.VisibilityResult) string {
	headers := []string{"Type\\Visibility", "Private", "Public", "Total"}
	var rows [][]string
	for _, row := range r.Rows {
		label := row.Type.String() + " Created"
		if row.Completed {
			label = row.Type.String() + " Completed"
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%s (%s)", Count(row.Private), Pct(1-row.PublicShare())),
			fmt.Sprintf("%s (%s)", Count(row.Public), Pct(row.PublicShare())),
			Count(row.Total()),
		})
	}
	return "Table 2: Visibility of contract types\n" + Table(headers, rows)
}

// Activities renders Table 3 (top n rows).
func Activities(r analysis.ActivitiesResult, n int) string {
	headers := []string{"Trading Activities", "Makers Side", "Takers Side", "Both Sides"}
	var rows [][]string
	for i, row := range r.Rows {
		if i == n {
			break
		}
		rows = append(rows, []string{
			string(row.Category),
			CountPair(row.Makers.Contracts, row.Makers.Users),
			CountPair(row.Takers.Contracts, row.Takers.Users),
			CountPair(row.Both.Contracts, row.Both.Users),
		})
	}
	rows = append(rows, []string{
		"All Trading Activities",
		CountPair(r.Total.Makers.Contracts, r.Total.Makers.Users),
		CountPair(r.Total.Takers.Contracts, r.Total.Takers.Users),
		CountPair(r.Total.Both.Contracts, r.Total.Both.Users),
	})
	return fmt.Sprintf("Table 3: Completed public contracts in the top %d trading activities\n", n) +
		Table(headers, rows)
}

// Payments renders Table 4 (top n rows).
func Payments(r analysis.PaymentsResult, n int) string {
	headers := []string{"Payment Methods", "Makers Side", "Takers Side", "Both Sides"}
	var rows [][]string
	for i, row := range r.Rows {
		if i == n {
			break
		}
		rows = append(rows, []string{
			string(row.Method),
			CountPair(row.Makers.Contracts, row.Makers.Users),
			CountPair(row.Takers.Contracts, row.Takers.Users),
			CountPair(row.Both.Contracts, row.Both.Users),
		})
	}
	rows = append(rows, []string{
		"All Methods",
		CountPair(r.Total.Makers.Contracts, r.Total.Makers.Users),
		CountPair(r.Total.Takers.Contracts, r.Total.Takers.Users),
		CountPair(r.Total.Both.Contracts, r.Total.Both.Users),
	})
	return fmt.Sprintf("Table 4: Completed public contracts in the top %d payment methods\n", n) +
		Table(headers, rows)
}

// Values renders Table 5 plus the §4.5 headline numbers.
func Values(r analysis.ValueReport, n int) string {
	var b strings.Builder
	b.WriteString("Table 5: Top trading activities and payment methods by contract values\n")
	headers := []string{"Trading Activities", "Value (Makers)", "Value (Takers)", "In Total"}
	var rows [][]string
	for i, row := range r.ActivityValues {
		if i == n {
			break
		}
		rows = append(rows, []string{string(row.Category), USD(row.MakersUSD), USD(row.TakersUSD), USD(row.TotalUSD())})
	}
	b.WriteString(Table(headers, rows))
	b.WriteByte('\n')
	headers = []string{"Payment Methods", "Value (Makers)", "Value (Takers)", "In Total"}
	rows = rows[:0]
	for i, row := range r.MethodValues {
		if i == n {
			break
		}
		rows = append(rows, []string{string(row.Method), USD(row.MakersUSD), USD(row.TakersUSD), USD(row.TotalUSD())})
	}
	b.WriteString(Table(headers, rows))
	fmt.Fprintf(&b, "\nTotal public value: %s (avg %s, max %s) over %d valued contracts\n",
		USD(r.TotalUSD), USD(r.MeanUSD), USD(r.MaxUSD), len(r.PerContract))
	for _, typ := range forum.ContractTypes {
		ts, ok := r.ByType[typ]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %s (avg %s, max %s)\n", typ, USD(ts.TotalUSD), USD(ts.MeanUSD), USD(ts.MaxUSD))
	}
	fmt.Fprintf(&b, "High-value audit (> $1,000): %d checked, %d confirmed, %d revised, %d unclear\n",
		r.Audit.HighValue, r.Audit.Confirmed, r.Audit.Revised, r.Audit.Unclear)
	if r.Audit.Unverifiable > 0 {
		fmt.Fprintf(&b, "  %d unverifiable: dataset carries no ledger (loaded from CSV?), so the §4.5 audit could not run\n",
			r.Audit.Unverifiable)
	}
	fmt.Fprintf(&b, "Extrapolated public+private lower bound: %s\n", USD(r.ExtrapolatedUSD))
	fmt.Fprintf(&b, "Top 10%% of users hold %s of value; mean per user %s\n",
		Pct(r.TopDecileShare), USD(r.MeanPerUserUSD))
	return b.String()
}

// MonthHeader lists the study months for series output.
func MonthHeader() string {
	var b strings.Builder
	b.WriteString(strings.Repeat(" ", 26))
	for m := dataset.Month(0); m < dataset.NumMonths; m++ {
		fmt.Fprintf(&b, " %6s", m.String()[2:]) // "18-06"
	}
	b.WriteByte('\n')
	return b.String()
}

// Growth renders Figure 1's four series.
func Growth(g analysis.MonthlyGrowth) string {
	var b strings.Builder
	b.WriteString("Figure 1: Monthly growth of new members and contracts\n")
	b.WriteString(MonthHeader())
	b.WriteString(IntSeries("contracts created", g.Created[:]))
	b.WriteString(IntSeries("contracts completed", g.Completed[:]))
	b.WriteString(IntSeries("new members (created)", g.NewCreators[:]))
	b.WriteString(IntSeries("new members (completed)", g.NewFinishers[:]))
	fmt.Fprintf(&b, "shape: created %s\n", Sparkline(intsToFloats(g.Created[:])))
	return b.String()
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// PublicTrend renders Figure 2.
func PublicTrend(tr analysis.VisibilityTrend) string {
	var b strings.Builder
	b.WriteString("Figure 2: Proportion of public contracts by month\n")
	b.WriteString(MonthHeader())
	b.WriteString(Series("created public", scale100(tr.CreatedPublic[:]), "%5.1f%%"))
	b.WriteString(Series("completed public", scale100(tr.CompletedPublic[:]), "%5.1f%%"))
	return b.String()
}

// TypeShares renders Figure 3 (created side).
func TypeShares(tr analysis.TypeShares) string {
	var b strings.Builder
	b.WriteString("Figure 3: Contract type proportions by month (created)\n")
	b.WriteString(MonthHeader())
	for _, typ := range forum.ContractTypes {
		series := make([]float64, dataset.NumMonths)
		for m := 0; m < dataset.NumMonths; m++ {
			series[m] = 100 * tr.Created[m][typ]
		}
		b.WriteString(Series(typ.String(), series, "%5.1f%%"))
	}
	return b.String()
}

// CompletionTimes renders Figure 4.
func CompletionTimes(tr analysis.CompletionTimes) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Mean completion time by type (hours); completion date coverage %s\n", Pct(tr.CoveredShare))
	b.WriteString(MonthHeader())
	for _, typ := range forum.ContractTypes {
		series := make([]float64, dataset.NumMonths)
		for m := 0; m < dataset.NumMonths; m++ {
			series[m] = tr.MeanHours[m][typ]
		}
		b.WriteString(Series(typ.String(), series, "%6.1f"))
	}
	return b.String()
}

// Concentration renders Figure 5's headline points.
func Concentration(c analysis.Concentration) string {
	var b strings.Builder
	b.WriteString("Figure 5: Market concentration\n")
	for _, q := range []float64{0.01, 0.05, 0.10, 0.30} {
		fmt.Fprintf(&b, "  top %4.0f%% users  → %s of created, %s of completed contracts\n",
			100*q, Pct(c.UsersCreated.ShareAtTop(q)), Pct(c.UsersCompleted.ShareAtTop(q)))
	}
	for _, q := range []float64{0.05, 0.30} {
		fmt.Fprintf(&b, "  top %4.0f%% threads → %s of created, %s of completed linked contracts\n",
			100*q, Pct(c.ThreadsCreated.ShareAtTop(q)), Pct(c.ThreadsCompleted.ShareAtTop(q)))
	}
	return b.String()
}

// KeyShares renders Figure 6.
func KeyShares(k analysis.KeyShare) string {
	var b strings.Builder
	b.WriteString("Figure 6: Monthly share of contracts by key (top-5%) members and threads\n")
	b.WriteString(MonthHeader())
	b.WriteString(Series("key members (created)", scale100(k.MemberCreated[:]), "%5.1f%%"))
	b.WriteString(Series("key members (completed)", scale100(k.MemberCompleted[:]), "%5.1f%%"))
	b.WriteString(Series("key threads (created)", scale100(k.ThreadCreated[:]), "%5.1f%%"))
	b.WriteString(Series("key threads (completed)", scale100(k.ThreadCompleted[:]), "%5.1f%%"))
	return b.String()
}

func scale100(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 100 * x
	}
	return out
}

// DegreeDist renders Figure 7's key statistics.
func DegreeDist(label string, d analysis.DegreeDistribution) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 (%s): degree distributions over %d nodes\n", label, d.Nodes)
	for _, k := range []graph.DegreeKind{graph.Raw, graph.Inbound, graph.Outbound} {
		line := fmt.Sprintf("  %-9s max=%-6d", k, d.Max[k])
		if fit := d.PowerLaw[k]; fit != nil {
			line += fmt.Sprintf(" power-law alpha=%.2f (xmin=%d, KS=%.3f, tail n=%d)",
				fit.Alpha, fit.XMin, fit.KS, fit.NTail)
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

// DegreeGrowth renders Figure 8.
func DegreeGrowth(g analysis.DegreeGrowth) string {
	var b strings.Builder
	b.WriteString("Figure 8: Growth of network degrees over time (created contracts)\n")
	b.WriteString(MonthHeader())
	b.WriteString(IntSeries("max raw", g.MaxRaw[:]))
	b.WriteString(IntSeries("max inbound", g.MaxInbound[:]))
	b.WriteString(IntSeries("max outbound", g.MaxOutbound[:]))
	b.WriteString(Series("mean raw", g.MeanRaw[:], "%6.2f"))
	return b.String()
}

// ZIPModels renders Tables 9/10-style output for the fitted era models.
func ZIPModels(title string, results []analysis.ZIPEraResult) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, r := range results {
		m := r.Model
		fmt.Fprintf(&b, "\n%s (%s): n=%d, %%zero=%.1f, McFadden R²=%.3f, Vuong=%.2f (p=%.4f)\n",
			r.Era, r.Subset, m.N, m.PctZero, m.McFadden, m.Vuong, m.VuongP)
		b.WriteString("  Count model:\n")
		for j, name := range m.Count.Names {
			fmt.Fprintf(&b, "    %-28s %9.3f  (se %7.3f)  z=%8.2f %s\n",
				name, m.Count.Coef[j], m.Count.StdErr[j], m.Count.ZValues[j], m.Count.Stars(j))
		}
		b.WriteString("  Zero-inflation model:\n")
		for j, name := range m.Zero.Names {
			fmt.Fprintf(&b, "    %-28s %9.3f  (se %7.3f)  z=%8.2f %s\n",
				name, m.Zero.Coef[j], m.Zero.StdErr[j], m.Zero.ZValues[j], m.Zero.Stars(j))
		}
	}
	return b.String()
}

// LatentClasses renders Table 6 from a fitted LTM.
func LatentClasses(ltm *analysis.LTMResult) string {
	var b strings.Builder
	b.WriteString("Table 6: Average monthly transactions per latent class (fitted)\n")
	headers := []string{"Class", "Weight",
		"mk SALE", "mk PURCH", "mk EXCH", "mk TRADE", "mk VOUCH",
		"tk SALE", "tk PURCH", "tk EXCH", "tk TRADE", "tk VOUCH"}
	var rows [][]string
	for c := 0; c < ltm.Fit.K; c++ {
		row := []string{fmt.Sprintf("%c", 'A'+c), fmt.Sprintf("%.3f", ltm.Fit.Weights[c])}
		for d := 0; d < 10; d++ {
			row = append(row, fmt.Sprintf("%.1f", ltm.Fit.Rates[c][d]))
		}
		rows = append(rows, row)
	}
	b.WriteString(Table(headers, rows))
	fmt.Fprintf(&b, "log-likelihood %.0f, AIC %.0f, BIC %.0f over %d user-months\n",
		ltm.Fit.LogLik, ltm.Fit.AIC, ltm.Fit.BIC, ltm.Fit.N)
	return b.String()
}

// ClassActivity renders Figure 12 (made=true) or Figure 13 (made=false):
// monthly transactions per fitted class for EXCHANGE, PURCHASE, and SALE.
func ClassActivity(ltm *analysis.LTMResult, made bool) string {
	var b strings.Builder
	fig, side := "Figure 12", "made"
	series := ltm.MadeSeries
	if !made {
		fig, side = "Figure 13", "accepted"
		series = ltm.AcceptedSeries
	}
	fmt.Fprintf(&b, "%s: transactions %s by each latent class over time\n", fig, side)
	for _, typ := range []forum.ContractType{forum.Exchange, forum.Purchase, forum.Sale} {
		fmt.Fprintf(&b, "%s:\n", typ)
		b.WriteString(MonthHeader())
		for c := 0; c < ltm.Fit.K; c++ {
			row := make([]int, dataset.NumMonths)
			total := 0
			for m := 0; m < dataset.NumMonths; m++ {
				row[m] = series[c][m][typ]
				total += row[m]
			}
			if total == 0 {
				continue
			}
			b.WriteString(IntSeries(fmt.Sprintf("class %c", 'A'+c), row))
		}
	}
	return b.String()
}

// Flows renders Table 8.
func Flows(f analysis.FlowsResult, ltm *analysis.LTMResult) string {
	var b strings.Builder
	b.WriteString("Table 8: Top 3 transaction flows per type per era (fitted classes)\n")
	for _, typ := range []forum.ContractType{forum.Exchange, forum.Purchase, forum.Sale} {
		fmt.Fprintf(&b, "%s:\n", typ)
		for _, e := range dataset.Eras {
			for i, cell := range f.Top(e, typ, 3) {
				fmt.Fprintf(&b, "  %-8s #%d  %c → %c  avg %.1f txns/month (%s of type)\n",
					e, i+1, 'A'+cell.MakerClass, 'A'+cell.TakerClass, cell.AvgPerMonth, Pct(cell.Share))
			}
		}
	}
	return b.String()
}

// ColdStart renders Table 7 and the §5.2 headline statistics.
func ColdStart(r *analysis.ColdStartResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cold start (§5.2): %d STABLE cold starters; main cluster %s, %d outliers\n",
		r.N, Pct(r.MainClusterShare), r.OutlierCount)
	headers := []string{"Cluster", "Size", "Disputes", "Posts", "+", "-", "MPosts", "Maker", "Taker"}
	var rows [][]string
	for i, c := range r.OutlierClusters {
		rows = append(rows, []string{
			fmt.Sprintf("%c", 'A'+i), Count(c.Size),
			fmt.Sprintf("%.1f", c.Disputes), fmt.Sprintf("%.1f", c.Posts),
			fmt.Sprintf("%.1f", c.Positive), fmt.Sprintf("%.1f", c.Negative),
			fmt.Sprintf("%.1f", c.MPosts), fmt.Sprintf("%.1f", c.Maker), fmt.Sprintf("%.1f", c.Taker),
		})
	}
	b.WriteString("Table 7: outlier clusters (medians)\n")
	b.WriteString(Table(headers, rows))
	fmt.Fprintf(&b, "median lifespan: all %.1f days, outliers %.1f days\n",
		r.MedianLifespanAllDays, r.MedianLifespanOutlierDays)
	fmt.Fprintf(&b, "continue into COVID-19: all %s, outliers %s\n",
		Pct(r.ContinueIntoCovidAll), Pct(r.ContinueIntoCovidOutliers))
	fmt.Fprintf(&b, "median reputation: STABLE starters %.0f, outliers %.0f, SET-UP starters %.0f\n",
		r.MedianReputationAll, r.MedianReputationOutliers, r.MedianReputationSetup)
	return b.String()
}

// ProductTrend renders Figure 9.
func ProductTrend(tr analysis.ProductTrend) string {
	var b strings.Builder
	b.WriteString("Figure 9: Evolution of the top five products (completed public contracts)\n")
	b.WriteString(MonthHeader())
	for _, cat := range tr.Categories {
		counts := tr.Counts[cat]
		b.WriteString(IntSeries(string(cat), counts[:]))
	}
	return b.String()
}

// PaymentTrend renders Figure 10.
func PaymentTrend(tr analysis.PaymentTrend) string {
	var b strings.Builder
	b.WriteString("Figure 10: Evolution of the top five payment methods (completed public contracts)\n")
	b.WriteString(MonthHeader())
	for _, m := range tr.Methods {
		counts := tr.Counts[m]
		b.WriteString(IntSeries(string(m), counts[:]))
	}
	return b.String()
}

// ValueTrend renders Figure 11: monthly USD value by contract type, top
// payment methods, and top products.
func ValueTrend(tr analysis.ValueTrend) string {
	var b strings.Builder
	b.WriteString("Figure 11: Monthly value by contract type, payment method, and product\n")
	b.WriteString(MonthHeader())
	for _, typ := range forum.ContractTypes {
		series, ok := tr.ByType[typ]
		if !ok {
			continue
		}
		b.WriteString(Series(typ.String(), series[:], "%6.0f"))
	}
	for _, m := range tr.Methods {
		series := tr.ByMethod[m]
		b.WriteString(Series(string(m), series[:], "%6.0f"))
	}
	for _, cat := range tr.Categories {
		series := tr.ByCategory[cat]
		b.WriteString(Series(string(cat), series[:], "%6.0f"))
	}
	return b.String()
}

// Participation renders the §4.3 repeat-transaction statistics.
func Participation(p analysis.ParticipationStats) string {
	var b strings.Builder
	b.WriteString("§4.3: repeat transactions per user\n")
	render := func(name string, s analysis.SideParticipation) {
		fmt.Fprintf(&b, "  %-6s %s users: %s make one, %s two, %s over 20; top counts %v\n",
			name, Count(s.Users), Pct(s.ShareOne), Pct(s.ShareTwo), Pct(s.ShareOver20), s.Top)
	}
	render("makers", p.Makers)
	render("takers", p.Takers)
	return b.String()
}

// Disputes renders the §5.1 dispute-share trend.
func Disputes(tr analysis.DisputeTrend) string {
	var b strings.Builder
	b.WriteString("§5.1: monthly disputed share of created contracts\n")
	b.WriteString(MonthHeader())
	b.WriteString(Series("disputed", scale100(tr.Share[:]), "%5.2f%%"))
	fmt.Fprintf(&b, "late SET-UP mean %s vs STABLE mean %s\n",
		Pct(tr.LateSetupMean()), Pct(tr.EraMean(dataset.EraStable)))
	return b.String()
}

// Centralisation renders the monthly participation Gini.
func Centralisation(c analysis.Centralisation) string {
	var b strings.Builder
	b.WriteString("§4.2: monthly participation Gini (centralisation)\n")
	b.WriteString(MonthHeader())
	b.WriteString(Series("gini", c.Gini[:], "%6.3f"))
	return b.String()
}

// Cohorts renders mean retention by months-since-join.
func Cohorts(r analysis.CohortRetention) string {
	var b strings.Builder
	b.WriteString("Cohort retention: fraction of a join cohort still active k months later\n")
	for _, k := range []int{0, 1, 2, 3, 6, 12} {
		fmt.Fprintf(&b, "  +%2d months: %s\n", k, Pct(r.MeanRetentionAt(k)))
	}
	return b.String()
}

// Corpus renders the §3 dataset description.
func Corpus(s analysis.CorpusStats) string {
	var b strings.Builder
	b.WriteString("§3: corpus description\n")
	fmt.Fprintf(&b, "  %s contracts, %s threads, %s posts by %s members\n",
		Count(s.Contracts), Count(s.Threads), Count(s.Posts), Count(s.PostingMembers))
	fmt.Fprintf(&b, "  thread linkage: %s of public contracts, %s overall\n",
		Pct(s.PublicWithThread), Pct(s.OverallWithThread))
	return b.String()
}

// Stimulus renders the COVID stimulus-vs-transformation test.
func Stimulus(s analysis.StimulusResult) string {
	var b strings.Builder
	b.WriteString("§6: COVID-19 stimulus vs transformation\n")
	fmt.Fprintf(&b, "  monthly volume ratio (COVID / late STABLE): %.2f×\n", s.VolumeRatio)
	fmt.Fprintf(&b, "  type-mix chi-square = %.1f (df %d, p = %.4f), Cramér's V = %.3f\n",
		s.ChiSquare, s.DF, s.PValue, s.CramersV)
	verdict := "STIMULUS: composition essentially unchanged"
	if s.CramersV >= 0.15 {
		verdict = "TRANSFORMATION: composition shifted materially"
	}
	b.WriteString("  verdict: " + verdict + "\n")
	return b.String()
}
