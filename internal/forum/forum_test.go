package forum

import (
	"testing"
	"time"
)

var c0 = time.Date(2019, 4, 1, 9, 0, 0, 0, time.UTC)

func newTestContract(t *testing.T, typ ContractType, public bool) *Contract {
	t.Helper()
	c, err := NewContract(1, typ, 10, 20, c0, public)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewContractValidation(t *testing.T) {
	if _, err := NewContract(1, Sale, 5, 5, c0, true); err == nil {
		t.Error("identical maker/taker accepted")
	}
	if _, err := NewContract(1, Sale, 0, 5, c0, true); err == nil {
		t.Error("zero maker accepted")
	}
	if _, err := NewContract(1, Sale, 5, -1, c0, true); err == nil {
		t.Error("negative taker accepted")
	}
}

func TestHappyPathToCompleted(t *testing.T) {
	c := newTestContract(t, Exchange, true)
	if c.Status != StatusPending {
		t.Fatalf("initial status %v", c.Status)
	}
	if err := c.Accept(c0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if c.Status != StatusActive || !c.Decided.Equal(c0.Add(time.Hour)) {
		t.Fatalf("after accept: %v decided %v", c.Status, c.Decided)
	}
	if err := c.MarkComplete(MakerParty, c0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if c.Status != StatusMarkedComplete {
		t.Fatalf("after first mark: %v", c.Status)
	}
	if err := c.MarkComplete(TakerParty, c0.Add(3*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !c.IsComplete() {
		t.Fatal("not complete after both marks")
	}
	d, ok := c.CompletionTime()
	if !ok || d != 3*time.Hour {
		t.Fatalf("completion time = %v, %v", d, ok)
	}
}

func TestDoubleMarkBySamePartyRejected(t *testing.T) {
	c := newTestContract(t, Sale, true)
	if err := c.Accept(c0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkComplete(MakerParty, c0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkComplete(MakerParty, c0.Add(3*time.Hour)); err == nil {
		t.Fatal("same party marked complete twice")
	}
}

func TestDeny(t *testing.T) {
	c := newTestContract(t, Purchase, false)
	if err := c.Deny(c0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if c.Status != StatusDenied || !c.Status.Terminal() {
		t.Fatalf("after deny: %v", c.Status)
	}
	if err := c.Accept(c0.Add(2 * time.Hour)); err == nil {
		t.Fatal("accepted a denied contract")
	}
}

func TestExpiryWindowEnforced(t *testing.T) {
	c := newTestContract(t, Sale, false)
	// Too early to expire.
	if err := c.Expire(c0.Add(71 * time.Hour)); err == nil {
		t.Fatal("expired before 72h")
	}
	// Too late to accept.
	if err := c.Accept(c0.Add(73 * time.Hour)); err == nil {
		t.Fatal("accepted after 72h")
	}
	if err := c.Expire(c0.Add(73 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if c.Status != StatusExpired {
		t.Fatalf("status %v", c.Status)
	}
	if !c.Decided.Equal(c0.Add(72 * time.Hour)) {
		t.Errorf("expiry decided time = %v", c.Decided)
	}
}

func TestAcceptBeforeCreationRejected(t *testing.T) {
	c := newTestContract(t, Sale, false)
	if err := c.Accept(c0.Add(-time.Hour)); err == nil {
		t.Fatal("accepted before creation")
	}
	if err := c.Deny(c0.Add(-time.Hour)); err == nil {
		t.Fatal("denied before creation")
	}
}

func TestDisputeForcesPublic(t *testing.T) {
	c := newTestContract(t, Exchange, false) // private
	if err := c.Accept(c0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispute(c0.Add(5 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !c.Public {
		t.Fatal("dispute did not force the contract public")
	}
	if c.Status != StatusDisputed {
		t.Fatalf("status %v", c.Status)
	}
}

func TestDisputeFromCompleted(t *testing.T) {
	c := newTestContract(t, Sale, true)
	_ = c.Accept(c0.Add(time.Hour))
	_ = c.MarkComplete(MakerParty, c0.Add(2*time.Hour))
	_ = c.MarkComplete(TakerParty, c0.Add(3*time.Hour))
	if err := c.Dispute(c0.Add(4 * time.Hour)); err != nil {
		t.Fatalf("dispute from completed: %v", err)
	}
}

func TestCancelAndIncomplete(t *testing.T) {
	c := newTestContract(t, Trade, true)
	_ = c.Accept(c0.Add(time.Hour))
	if err := c.Cancel(c0.Add(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if c.Status != StatusCancelled {
		t.Fatalf("status %v", c.Status)
	}

	c2 := newTestContract(t, Trade, true)
	_ = c2.Accept(c0.Add(time.Hour))
	_ = c2.MarkComplete(TakerParty, c0.Add(2*time.Hour))
	if err := c2.MarkIncomplete(c0.Add(80 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if c2.Status != StatusIncomplete {
		t.Fatalf("status %v", c2.Status)
	}
}

func TestIllegalTransitionsFromTerminal(t *testing.T) {
	c := newTestContract(t, Sale, true)
	_ = c.Deny(c0.Add(time.Hour))
	for name, f := range map[string]func() error{
		"Accept":         func() error { return c.Accept(c0.Add(2 * time.Hour)) },
		"Deny":           func() error { return c.Deny(c0.Add(2 * time.Hour)) },
		"Expire":         func() error { return c.Expire(c0.Add(80 * time.Hour)) },
		"MarkComplete":   func() error { return c.MarkComplete(MakerParty, c0) },
		"Dispute":        func() error { return c.Dispute(c0) },
		"Cancel":         func() error { return c.Cancel(c0) },
		"MarkIncomplete": func() error { return c.MarkIncomplete(c0) },
	} {
		if err := f(); err == nil {
			t.Errorf("%s allowed from terminal status", name)
		}
	}
}

func TestRating(t *testing.T) {
	c := newTestContract(t, Sale, true)
	if err := c.Rate(MakerParty, RatingPositive); err == nil {
		t.Fatal("rated a pending contract")
	}
	_ = c.Accept(c0.Add(time.Hour))
	_ = c.MarkComplete(MakerParty, c0.Add(2*time.Hour))
	_ = c.MarkComplete(TakerParty, c0.Add(3*time.Hour))
	if err := c.Rate(MakerParty, RatingPositive); err != nil {
		t.Fatal(err)
	}
	if err := c.Rate(TakerParty, RatingNegative); err != nil {
		t.Fatal(err)
	}
	if c.MakerRating != RatingPositive || c.TakerRating != RatingNegative {
		t.Errorf("ratings = %v, %v", c.MakerRating, c.TakerRating)
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range ContractTypes {
		got, err := ParseContractType(typ.String())
		if err != nil || got != typ {
			t.Errorf("round trip %v: %v, %v", typ, got, err)
		}
	}
	if _, err := ParseContractType("GIFT"); err == nil {
		t.Error("unknown type parsed")
	}
}

func TestBidirectional(t *testing.T) {
	want := map[ContractType]bool{
		Sale: false, Purchase: false, Exchange: true, Trade: true, VouchCopy: false,
	}
	for typ, w := range want {
		if typ.Bidirectional() != w {
			t.Errorf("%v bidirectional = %v", typ, typ.Bidirectional())
		}
	}
}

func TestStatusTerminal(t *testing.T) {
	terminal := map[Status]bool{
		StatusPending: false, StatusActive: false, StatusMarkedComplete: false,
		StatusDenied: true, StatusExpired: true, StatusCompleted: true,
		StatusDisputed: true, StatusCancelled: true, StatusIncomplete: true,
	}
	for s, w := range terminal {
		if s.Terminal() != w {
			t.Errorf("%v terminal = %v, want %v", s, s.Terminal(), w)
		}
	}
}

func TestParticipant(t *testing.T) {
	c := newTestContract(t, Sale, true)
	if !c.Participant(10) || !c.Participant(20) || c.Participant(30) {
		t.Error("Participant wrong")
	}
}

// TestStateMachineExactTransitionSet exhaustively checks that exactly the
// legal transitions of Figure 14 are allowed from every status. This is
// the property backing the "Figure 14" experiment entry in DESIGN.md.
func TestStateMachineExactTransitionSet(t *testing.T) {
	type action struct {
		name string
		run  func(*Contract) error
	}
	actions := []action{
		{"Accept", func(c *Contract) error { return c.Accept(c.Created.Add(time.Hour)) }},
		{"Deny", func(c *Contract) error { return c.Deny(c.Created.Add(time.Hour)) }},
		{"Expire", func(c *Contract) error { return c.Expire(c.Created.Add(80 * time.Hour)) }},
		{"MarkComplete", func(c *Contract) error { return c.MarkComplete(TakerParty, c.Created.Add(time.Hour)) }},
		{"Dispute", func(c *Contract) error { return c.Dispute(c.Created.Add(time.Hour)) }},
		{"Cancel", func(c *Contract) error { return c.Cancel(c.Created.Add(time.Hour)) }},
		{"MarkIncomplete", func(c *Contract) error { return c.MarkIncomplete(c.Created.Add(time.Hour)) }},
	}
	legal := map[Status]map[string]bool{
		StatusPending:        {"Accept": true, "Deny": true, "Expire": true},
		StatusActive:         {"MarkComplete": true, "Dispute": true, "Cancel": true, "MarkIncomplete": true},
		StatusMarkedComplete: {"MarkComplete": true, "Dispute": true, "Cancel": true, "MarkIncomplete": true},
		StatusCompleted:      {"Dispute": true},
		StatusDenied:         {},
		StatusExpired:        {},
		StatusDisputed:       {},
		StatusCancelled:      {},
		StatusIncomplete:     {},
	}
	// reach drives a fresh contract into the target status.
	reach := func(s Status) *Contract {
		c := newTestContract(t, Sale, true)
		switch s {
		case StatusPending:
		case StatusDenied:
			_ = c.Deny(c0.Add(time.Hour))
		case StatusExpired:
			_ = c.Expire(c0.Add(80 * time.Hour))
		case StatusActive:
			_ = c.Accept(c0.Add(time.Hour))
		case StatusMarkedComplete:
			_ = c.Accept(c0.Add(time.Hour))
			_ = c.MarkComplete(MakerParty, c0.Add(2*time.Hour))
		case StatusCompleted:
			_ = c.Accept(c0.Add(time.Hour))
			_ = c.MarkComplete(MakerParty, c0.Add(2*time.Hour))
			_ = c.MarkComplete(TakerParty, c0.Add(3*time.Hour))
		case StatusDisputed:
			_ = c.Accept(c0.Add(time.Hour))
			_ = c.Dispute(c0.Add(2 * time.Hour))
		case StatusCancelled:
			_ = c.Accept(c0.Add(time.Hour))
			_ = c.Cancel(c0.Add(2 * time.Hour))
		case StatusIncomplete:
			_ = c.Accept(c0.Add(time.Hour))
			_ = c.MarkIncomplete(c0.Add(2 * time.Hour))
		}
		if c.Status != s {
			t.Fatalf("could not reach status %v (got %v)", s, c.Status)
		}
		return c
	}
	for s, allowed := range legal {
		for _, a := range actions {
			c := reach(s)
			err := a.run(c)
			if allowed[a.name] && err != nil {
				t.Errorf("%v: legal action %s rejected: %v", s, a.name, err)
			}
			if !allowed[a.name] && err == nil {
				t.Errorf("%v: illegal action %s allowed", s, a.name)
			}
		}
	}
}

func TestCompletionTimeMissingDate(t *testing.T) {
	c := newTestContract(t, Sale, true)
	_ = c.Accept(c0.Add(time.Hour))
	_ = c.MarkComplete(MakerParty, c0.Add(2*time.Hour))
	_ = c.MarkComplete(TakerParty, c0.Add(3*time.Hour))
	c.Completed = time.Time{} // the ~30% of completed contracts without a date
	if _, ok := c.CompletionTime(); ok {
		t.Error("CompletionTime reported a missing date")
	}
	if !c.IsComplete() {
		t.Error("contract no longer complete after clearing the date")
	}
}
