// Package forum models the HACK FORUMS marketplace entities the paper's
// dataset is built from: users, threads, posts, and contracts, including
// the full contract lifecycle state machine of the paper's Figure 14 with
// its 72-hour expiry rule, dispute-forces-public behaviour, and mutual
// completion marking.
package forum

import (
	"fmt"
	"time"
)

// UserID identifies a forum member.
type UserID int

// ThreadID identifies an advertising or discussion thread.
type ThreadID int

// ContractID identifies a marketplace contract.
type ContractID int

// ContractType enumerates the five observed contract types. SALE,
// PURCHASE, and VOUCH COPY are one-way; EXCHANGE and TRADE are
// bi-directional (both parties both give and receive).
type ContractType int

// The five contract types, in the paper's Table 1 order.
const (
	Sale ContractType = iota
	Purchase
	Exchange
	Trade
	VouchCopy
	NumContractTypes = 5
)

// ContractTypes lists all types in canonical order.
var ContractTypes = [NumContractTypes]ContractType{Sale, Purchase, Exchange, Trade, VouchCopy}

// String renders the type as the paper spells it.
func (t ContractType) String() string {
	switch t {
	case Sale:
		return "SALE"
	case Purchase:
		return "PURCHASE"
	case Exchange:
		return "EXCHANGE"
	case Trade:
		return "TRADE"
	case VouchCopy:
		return "VOUCH COPY"
	default:
		return fmt.Sprintf("ContractType(%d)", int(t))
	}
}

// Bidirectional reports whether goods flow both ways (EXCHANGE and TRADE).
func (t ContractType) Bidirectional() bool { return t == Exchange || t == Trade }

// ParseContractType inverts String (and accepts lowercase).
func ParseContractType(s string) (ContractType, error) {
	switch s {
	case "SALE", "sale":
		return Sale, nil
	case "PURCHASE", "purchase":
		return Purchase, nil
	case "EXCHANGE", "exchange":
		return Exchange, nil
	case "TRADE", "trade":
		return Trade, nil
	case "VOUCH COPY", "vouch copy", "VOUCH_COPY", "vouch_copy":
		return VouchCopy, nil
	}
	return 0, fmt.Errorf("forum: unknown contract type %q", s)
}

// Status enumerates the contract lifecycle states of Figure 14. The paper
// simplifies 'Complete' (one party marked) and 'Completed' (both marked)
// into a single Complete bucket for analysis; we keep both in the machine
// and collapse them in reporting.
type Status int

// The nine lifecycle states.
const (
	// StatusPending: created, awaiting the receiving party's decision.
	StatusPending Status = iota
	// StatusDenied: the receiving party declined the proposal.
	StatusDenied
	// StatusExpired: no decision within 72 hours of creation.
	StatusExpired
	// StatusActive: accepted; obligations in progress ("Active Deal").
	StatusActive
	// StatusMarkedComplete: one party has marked its obligations complete.
	StatusMarkedComplete
	// StatusCompleted: both parties marked complete; ratings may be left.
	StatusCompleted
	// StatusDisputed: either party opened a dispute; contract forced public.
	StatusDisputed
	// StatusCancelled: both parties agreed to cancel.
	StatusCancelled
	// StatusIncomplete: the deal lapsed without completion.
	StatusIncomplete
	NumStatuses = 9
)

// String renders the status in the paper's Table 1 vocabulary.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "Pending"
	case StatusDenied:
		return "Denied"
	case StatusExpired:
		return "Expired"
	case StatusActive:
		return "Active Deal"
	case StatusMarkedComplete:
		return "Complete (one side)"
	case StatusCompleted:
		return "Complete"
	case StatusDisputed:
		return "Disputed"
	case StatusCancelled:
		return "Cancelled"
	case StatusIncomplete:
		return "Incomplete"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Terminal reports whether no further transitions are possible.
func (s Status) Terminal() bool {
	switch s {
	case StatusDenied, StatusExpired, StatusCompleted, StatusDisputed,
		StatusCancelled, StatusIncomplete:
		return true
	}
	return false
}

// ExpiryWindow is the acceptance deadline: "the contract is marked as
// expired after 72 hours if no decision is made".
const ExpiryWindow = 72 * time.Hour

// Rating is a B-rating left after completion: +1, 0 (none), or -1.
type Rating int

// Rating values.
const (
	RatingNone     Rating = 0
	RatingPositive Rating = 1
	RatingNegative Rating = -1
)

// Party distinguishes the two sides of a contract.
type Party int

// The two contract parties.
const (
	MakerParty Party = iota
	TakerParty
)

// Contract is one marketplace contract. The zero value is not usable;
// construct with NewContract.
type Contract struct {
	ID     ContractID
	Type   ContractType
	Maker  UserID
	Taker  UserID
	Thread ThreadID // 0 when not linked to a thread

	Created   time.Time
	Decided   time.Time // accept/deny/expiry time; zero while pending
	Completed time.Time // both-parties-complete time; zero otherwise

	Status Status
	Public bool

	// Obligation free text, visible to researchers only on public
	// contracts; the simulator fills these and the dataset layer blanks
	// them for private contracts, mirroring the paper's visibility rules.
	MakerObligation string
	TakerObligation string

	// Ratings left by each side about the other after completion.
	MakerRating Rating // left BY the maker about the taker
	TakerRating Rating // left BY the taker about the maker

	// Optional on-chain evidence quoted in the contract details.
	BTCAddress string
	TxHash     string

	// markedBy tracks which side already marked completion while in
	// StatusMarkedComplete.
	markedBy Party
}

// NewContract creates a pending contract from maker to taker.
func NewContract(id ContractID, t ContractType, maker, taker UserID, created time.Time, public bool) (*Contract, error) {
	if maker == taker {
		return nil, fmt.Errorf("forum: contract %d has identical maker and taker %d", id, maker)
	}
	if maker <= 0 || taker <= 0 {
		return nil, fmt.Errorf("forum: contract %d has invalid party ids (%d, %d)", id, maker, taker)
	}
	return &Contract{
		ID:      id,
		Type:    t,
		Maker:   maker,
		Taker:   taker,
		Created: created,
		Status:  StatusPending,
		Public:  public,
	}, nil
}

func (c *Contract) transitionErr(action string) error {
	return fmt.Errorf("forum: contract %d cannot %s from status %s", c.ID, action, c.Status)
}

// Accept moves a pending contract to an active deal. Accepting after the
// 72-hour window is rejected — the contract should have expired.
func (c *Contract) Accept(at time.Time) error {
	if c.Status != StatusPending {
		return c.transitionErr("accept")
	}
	if at.Sub(c.Created) > ExpiryWindow {
		return fmt.Errorf("forum: contract %d acceptance at %v exceeds the 72h window", c.ID, at)
	}
	if at.Before(c.Created) {
		return fmt.Errorf("forum: contract %d accepted before creation", c.ID)
	}
	c.Status = StatusActive
	c.Decided = at
	return nil
}

// Deny declines a pending contract.
func (c *Contract) Deny(at time.Time) error {
	if c.Status != StatusPending {
		return c.transitionErr("deny")
	}
	if at.Before(c.Created) {
		return fmt.Errorf("forum: contract %d denied before creation", c.ID)
	}
	c.Status = StatusDenied
	c.Decided = at
	return nil
}

// Expire marks a pending contract expired; at must be past the 72h window.
func (c *Contract) Expire(at time.Time) error {
	if c.Status != StatusPending {
		return c.transitionErr("expire")
	}
	if at.Sub(c.Created) <= ExpiryWindow {
		return fmt.Errorf("forum: contract %d cannot expire before the 72h window", c.ID)
	}
	c.Status = StatusExpired
	c.Decided = c.Created.Add(ExpiryWindow)
	return nil
}

// MarkComplete records one party's completion. The first mark moves the
// contract to StatusMarkedComplete; the second (by the other party)
// finalises it as StatusCompleted.
func (c *Contract) MarkComplete(by Party, at time.Time) error {
	switch c.Status {
	case StatusActive:
		c.Status = StatusMarkedComplete
		c.markedBy = by
		return nil
	case StatusMarkedComplete:
		if c.markedBy == by {
			return fmt.Errorf("forum: contract %d already marked complete by the same party", c.ID)
		}
		c.Status = StatusCompleted
		c.Completed = at
		return nil
	default:
		return c.transitionErr("mark complete")
	}
}

// Dispute opens a dispute from an active, part-marked, or completed deal.
// Disputing forces the contract public regardless of prior visibility.
func (c *Contract) Dispute(at time.Time) error {
	switch c.Status {
	case StatusActive, StatusMarkedComplete, StatusCompleted:
		c.Status = StatusDisputed
		c.Public = true
		return nil
	default:
		return c.transitionErr("dispute")
	}
}

// Cancel cancels an active (or part-marked) deal by mutual agreement.
func (c *Contract) Cancel(at time.Time) error {
	switch c.Status {
	case StatusActive, StatusMarkedComplete:
		c.Status = StatusCancelled
		return nil
	default:
		return c.transitionErr("cancel")
	}
}

// MarkIncomplete closes an active (or part-marked) deal as unfulfilled.
func (c *Contract) MarkIncomplete(at time.Time) error {
	switch c.Status {
	case StatusActive, StatusMarkedComplete:
		c.Status = StatusIncomplete
		return nil
	default:
		return c.transitionErr("mark incomplete")
	}
}

// Rate records a post-completion B-rating by one party about the other.
func (c *Contract) Rate(by Party, r Rating) error {
	if c.Status != StatusCompleted && c.Status != StatusDisputed {
		return fmt.Errorf("forum: contract %d cannot be rated in status %s", c.ID, c.Status)
	}
	if by == MakerParty {
		c.MakerRating = r
	} else {
		c.TakerRating = r
	}
	return nil
}

// IsComplete reports whether the contract reached full completion
// (the paper's "Complete" bucket).
func (c *Contract) IsComplete() bool { return c.Status == StatusCompleted }

// CompletionTime returns the created→completed duration and whether a
// completion date is recorded (the paper notes ~70% of completed contracts
// carry one).
func (c *Contract) CompletionTime() (time.Duration, bool) {
	if c.Status != StatusCompleted || c.Completed.IsZero() {
		return 0, false
	}
	return c.Completed.Sub(c.Created), true
}

// Participant reports whether u is a party to the contract.
func (c *Contract) Participant(u UserID) bool { return c.Maker == u || c.Taker == u }

// User is a forum member with the activity counters the cold-start
// analysis consumes. The counters are maintained by the simulator as
// events occur; analyses treat them as observed data.
type User struct {
	ID         UserID
	Joined     time.Time // first forum activity
	FirstPost  time.Time // first post anywhere on the forum (zero if none)
	Posts      int       // posts across the whole forum
	MarketKind int       // latent behaviour class (simulator ground truth)

	MarketplacePosts int // posts within the marketplace section
	Reputation       int // forum reputation voting score
}

// Post is a message within a thread.
type Post struct {
	ID      int
	Thread  ThreadID
	Author  UserID
	Created time.Time
	// Marketplace marks posts made in the marketplace section, the
	// "MPosts" control variable of the cold-start models.
	Marketplace bool
}

// Thread is an advertising or discussion thread that contracts may link to.
type Thread struct {
	ID      ThreadID
	Author  UserID
	Created time.Time
	Title   string
}

// Statuses lists all lifecycle states in canonical order.
var Statuses = [NumStatuses]Status{
	StatusPending, StatusDenied, StatusExpired, StatusActive,
	StatusMarkedComplete, StatusCompleted, StatusDisputed,
	StatusCancelled, StatusIncomplete,
}

// ParseStatus inverts Status.String.
func ParseStatus(s string) (Status, error) {
	for _, st := range Statuses {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("forum: unknown status %q", s)
}
