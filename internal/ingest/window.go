package ingest

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/forum"
)

// ErrEmptyWindow marks a window/as-of combination that selects no
// contracts at all — served as 400 bad_params rather than running the
// analysis suite over an empty corpus.
var ErrEmptyWindow = errors.New("ingest: the requested window contains no contracts")

// ValidateWindow checks the ?window= and ?as-of= parameter syntax without
// a corpus: window is "<N>d" (a positive day count, e.g. 30d or 90d) or
// "era-to-date"; as-of is a YYYY-MM-DD date. Either may be empty.
func ValidateWindow(window, asOf string) error {
	if window != "" && window != "era-to-date" {
		if _, err := parseDayWindow(window); err != nil {
			return err
		}
	}
	if asOf != "" {
		if _, err := time.Parse("2006-01-02", asOf); err != nil {
			return fmt.Errorf("bad as-of %q: want a YYYY-MM-DD date", asOf)
		}
	}
	return nil
}

// parseDayWindow parses "30d" → 30.
func parseDayWindow(window string) (int, error) {
	num, ok := strings.CutSuffix(window, "d")
	if ok {
		if n, err := strconv.Atoi(num); err == nil && n > 0 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad window %q: want <days>d (e.g. 30d, 90d) or era-to-date", window)
}

// WindowBounds resolves the [start, end) time span a window/as-of pair
// selects over d. The end is exclusive: the day after ?as-of= (so the
// as-of day itself is included), defaulting to just past the corpus's
// latest contract creation — a deterministic anchor per generation. The
// start is end minus the day window, the containing era's start for
// era-to-date, or the study start when only ?as-of= is given.
func WindowBounds(d *dataset.Dataset, window, asOf string) (start, end time.Time, err error) {
	if asOf != "" {
		day, err := time.Parse("2006-01-02", asOf)
		if err != nil {
			return start, end, fmt.Errorf("bad as-of %q: want a YYYY-MM-DD date", asOf)
		}
		end = day.AddDate(0, 0, 1)
	} else {
		max := MaxCreated(d)
		if max.IsZero() {
			return start, end, ErrEmptyWindow
		}
		end = max.Add(time.Nanosecond)
	}
	switch {
	case window == "era-to-date":
		start, _ = dataset.EraOf(end.Add(-time.Nanosecond)).Span()
	case window != "":
		days, err := parseDayWindow(window)
		if err != nil {
			return start, end, err
		}
		start = end.AddDate(0, 0, -days)
	default:
		start = dataset.SetupStart
	}
	return start, end, nil
}

// Window returns the sub-corpus of d whose contracts (and posts) were
// created within [start, end) for the given window/as-of pair. Users,
// threads, and the ledger are shared in full — windowing narrows the
// activity under study, not the population it could have come from. The
// derived corpus is a fresh Dataset; d is never mutated. An empty
// selection returns ErrEmptyWindow.
func Window(d *dataset.Dataset, window, asOf string) (*dataset.Dataset, error) {
	start, end, err := WindowBounds(d, window, asOf)
	if err != nil {
		return nil, err
	}
	in := func(t time.Time) bool { return !t.Before(start) && t.Before(end) }
	var contracts []*forum.Contract
	for _, c := range d.Contracts {
		if in(c.Created) {
			contracts = append(contracts, c)
		}
	}
	if len(contracts) == 0 {
		return nil, fmt.Errorf("%w (window %s as-of %s selects [%s, %s))",
			ErrEmptyWindow, orAll(window), orLatest(asOf),
			start.Format("2006-01-02"), end.Format("2006-01-02"))
	}
	var posts []*forum.Post
	for _, p := range d.Posts {
		if in(p.Created) {
			posts = append(posts, p)
		}
	}
	return &dataset.Dataset{
		Users:     d.Users,
		Threads:   d.Threads,
		Posts:     posts,
		Contracts: contracts,
		Ledger:    d.Ledger,
	}, nil
}

func orAll(window string) string {
	if window == "" {
		return "all"
	}
	return window
}

func orLatest(asOf string) string {
	if asOf == "" {
		return "latest"
	}
	return asOf
}
