package ingest

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/forum"
)

// tinyDataset builds a two-user, one-contract corpus for batches to
// extend.
func tinyDataset() *dataset.Dataset {
	at := dataset.SetupStart.Add(24 * time.Hour)
	return &dataset.Dataset{
		Users: map[forum.UserID]*forum.User{
			1: {ID: 1, Joined: dataset.SetupStart},
			2: {ID: 2, Joined: dataset.SetupStart},
		},
		Contracts: []*forum.Contract{{
			ID: 1, Type: forum.Exchange, Maker: 1, Taker: 2,
			Created: at, Completed: at.Add(time.Hour),
			Status: forum.StatusCompleted, Public: true,
			MakerObligation: "btc", TakerObligation: "paypal transfer",
		}},
	}
}

const ndjsonBatch = `
{"kind":"user","id":3,"joined":"2019-04-01T00:00:00Z","first_post":"2019-04-01T00:00:00Z","posts":2,"marketplace_posts":1,"reputation":5}

{"kind":"contract","id":2,"type":"EXCHANGE","maker":3,"taker":1,"thread":1,"created":"2019-04-02T00:00:00Z","decided":"2019-04-02T01:00:00Z","completed":"2019-04-02T02:00:00Z","status":"Complete","public":true,"maker_obligation":"btc","taker_obligation":"paypal transfer","maker_rating":1,"taker_rating":1}
`

func TestDecodeNDJSON(t *testing.T) {
	b, err := DecodeNDJSON(strings.NewReader(ndjsonBatch))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Users) != 1 || len(b.Contracts) != 1 || b.Len() != 2 {
		t.Fatalf("decoded %d users %d contracts, want 1+1", len(b.Users), len(b.Contracts))
	}
	u := b.Users[0]
	if u.ID != 3 || u.Posts != 2 || u.MarketplacePosts != 1 || u.Reputation != 5 {
		t.Errorf("user decoded wrong: %+v", u)
	}
	c := b.Contracts[0]
	if c.ID != 2 || c.Type != forum.Exchange || c.Status != forum.StatusCompleted ||
		c.Maker != 3 || c.Taker != 1 || !c.Public {
		t.Errorf("contract decoded wrong: %+v", c)
	}
	if c.Created.IsZero() || !c.Completed.Equal(c.Created.Add(2*time.Hour)) {
		t.Errorf("contract times decoded wrong: created %v completed %v", c.Created, c.Completed)
	}
}

func TestDecodeNDJSONRejects(t *testing.T) {
	for name, body := range map[string]string{
		"unknown kind":  `{"kind":"thread","id":1}`,
		"unknown field": `{"kind":"user","id":1,"surprise":true}`,
		"bad time":      `{"kind":"user","id":1,"joined":"yesterday"}`,
		"bad status":    `{"kind":"contract","id":1,"type":"SALE","status":"Done"}`,
		"bad type":      `{"kind":"contract","id":1,"type":"LOAN","status":"Complete"}`,
		"not json":      `kind=user id=1`,
	} {
		if _, err := DecodeNDJSON(strings.NewReader(body)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecodeBatchContentTypes(t *testing.T) {
	if _, err := DecodeBatch("application/x-ndjson", strings.NewReader(ndjsonBatch)); err != nil {
		t.Errorf("ndjson: %v", err)
	}
	var csv bytes.Buffer
	if err := WriteBatchContractsCSV(&csv, tinyDataset().Contracts); err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBatch("text/csv", bytes.NewReader(csv.Bytes()))
	if err != nil {
		t.Fatalf("csv: %v", err)
	}
	if len(b.Contracts) != 1 || len(b.Users) != 0 {
		t.Fatalf("csv decoded %d contracts %d users, want 1+0", len(b.Contracts), len(b.Users))
	}
	if _, err := DecodeBatch("application/octet-stream", strings.NewReader("x")); !errors.Is(err, ErrUnsupportedEvents) {
		t.Errorf("octet-stream: got %v, want ErrUnsupportedEvents", err)
	}
}

func TestValidateAgainst(t *testing.T) {
	d := tinyDataset()
	at := dataset.StableStart
	fresh := func() (*forum.User, *forum.Contract) {
		return &forum.User{ID: 3, Joined: at},
			&forum.Contract{ID: 2, Maker: 3, Taker: 1, Created: at,
				Status: forum.StatusCompleted, Public: true}
	}

	u, c := fresh()
	if err := (&Batch{Users: []*forum.User{u}, Contracts: []*forum.Contract{c}}).ValidateAgainst(d); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}

	cases := map[string]func() *Batch{
		"duplicate user id": func() *Batch {
			u, _ := fresh()
			u.ID = 1
			return &Batch{Users: []*forum.User{u}}
		},
		"user twice in batch": func() *Batch {
			u1, _ := fresh()
			u2, _ := fresh()
			return &Batch{Users: []*forum.User{u1, u2}}
		},
		"duplicate contract id": func() *Batch {
			_, c := fresh()
			c.ID = 1
			c.Maker, c.Taker = 1, 2
			return &Batch{Contracts: []*forum.Contract{c}}
		},
		"unknown maker": func() *Batch {
			_, c := fresh()
			return &Batch{Contracts: []*forum.Contract{c}} // maker 3 not introduced
		},
		"self-dealing": func() *Batch {
			_, c := fresh()
			c.Maker, c.Taker = 1, 1
			return &Batch{Contracts: []*forum.Contract{c}}
		},
		"outside study window": func() *Batch {
			u, c := fresh()
			c.Created = dataset.StudyEnd
			return &Batch{Users: []*forum.User{u}, Contracts: []*forum.Contract{c}}
		},
		"completed before created": func() *Batch {
			u, c := fresh()
			c.Completed = c.Created.Add(-time.Hour)
			return &Batch{Users: []*forum.User{u}, Contracts: []*forum.Contract{c}}
		},
		"private contract leaks text": func() *Batch {
			u, c := fresh()
			c.Public = false
			c.MakerObligation = "btc"
			return &Batch{Users: []*forum.User{u}, Contracts: []*forum.Contract{c}}
		},
	}
	for name, mk := range cases {
		if err := mk().ValidateAgainst(d); err == nil {
			t.Errorf("%s: validated without error", name)
		}
	}
}

// TestApplyCopyOnWrite pins the COW contract: the parent dataset's user
// map and contract slice are untouched by an append, and appending two
// different batches to the same parent never makes the siblings share a
// backing array.
func TestApplyCopyOnWrite(t *testing.T) {
	d := tinyDataset()
	at := dataset.StableStart
	mk := func(id int) *Batch {
		return &Batch{
			Users: []*forum.User{{ID: forum.UserID(10 + id), Joined: at}},
			Contracts: []*forum.Contract{{
				ID: forum.ContractID(id), Maker: forum.UserID(10 + id), Taker: 1,
				Created: at, Status: forum.StatusCompleted, Public: true,
			}},
		}
	}
	a := Apply(d, mk(2))
	b := Apply(d, mk(3))

	if len(d.Contracts) != 1 || len(d.Users) != 2 {
		t.Fatalf("parent mutated: %d contracts %d users", len(d.Contracts), len(d.Users))
	}
	if len(a.Contracts) != 2 || len(b.Contracts) != 2 {
		t.Fatalf("children hold %d and %d contracts, want 2 each", len(a.Contracts), len(b.Contracts))
	}
	if a.Contracts[1].ID == b.Contracts[1].ID {
		t.Fatal("sibling appends clobbered each other: shared backing array")
	}
	if _, ok := d.Users[12]; ok {
		t.Fatal("parent user map gained a batch user")
	}
	if _, ok := a.Users[12]; !ok {
		t.Fatal("child user map missing its batch user")
	}
	if _, ok := a.Users[13]; ok {
		t.Fatal("sibling user maps are shared")
	}
}

func TestValidateWindowSyntax(t *testing.T) {
	for _, ok := range []struct{ window, asOf string }{
		{"", ""}, {"30d", ""}, {"90d", ""}, {"1d", ""},
		{"era-to-date", ""}, {"", "2020-03-11"}, {"7d", "2019-01-01"},
	} {
		if err := ValidateWindow(ok.window, ok.asOf); err != nil {
			t.Errorf("ValidateWindow(%q, %q): %v", ok.window, ok.asOf, err)
		}
	}
	for _, bad := range []struct{ window, asOf string }{
		{"30", ""}, {"0d", ""}, {"-5d", ""}, {"monthly", ""},
		{"d", ""}, {"", "yesterday"}, {"", "2020-13-01"}, {"", "03/11/2020"},
	} {
		if err := ValidateWindow(bad.window, bad.asOf); err == nil {
			t.Errorf("ValidateWindow(%q, %q) accepted", bad.window, bad.asOf)
		}
	}
}

func TestWindowBounds(t *testing.T) {
	d := tinyDataset() // one contract created SetupStart+24h
	latest := d.Contracts[0].Created

	start, end, err := WindowBounds(d, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if !start.Equal(dataset.SetupStart) || !end.Equal(latest.Add(time.Nanosecond)) {
		t.Errorf("default bounds [%v, %v)", start, end)
	}

	start, end, err = WindowBounds(d, "30d", "2020-03-15")
	if err != nil {
		t.Fatal(err)
	}
	wantEnd := time.Date(2020, 3, 16, 0, 0, 0, 0, time.UTC) // as-of day inclusive
	if !end.Equal(wantEnd) || !start.Equal(wantEnd.AddDate(0, 0, -30)) {
		t.Errorf("30d as-of bounds [%v, %v)", start, end)
	}

	start, _, err = WindowBounds(d, "era-to-date", "2020-03-15")
	if err != nil {
		t.Fatal(err)
	}
	if !start.Equal(dataset.CovidStart) {
		t.Errorf("era-to-date start %v, want COVID era start %v", start, dataset.CovidStart)
	}

	if _, _, err := WindowBounds(&dataset.Dataset{}, "", ""); !errors.Is(err, ErrEmptyWindow) {
		t.Errorf("empty corpus: got %v, want ErrEmptyWindow", err)
	}
}

func TestWindowFiltersContractsAndPosts(t *testing.T) {
	d := tinyDataset()
	early, late := d.Contracts[0].Created, dataset.CovidStart
	d.Contracts = append(d.Contracts, &forum.Contract{
		ID: 2, Maker: 1, Taker: 2, Created: late,
		Status: forum.StatusCompleted, Public: true,
	})
	d.Posts = []*forum.Post{
		{ID: 1, Author: 1, Created: early},
		{ID: 2, Author: 2, Created: late},
	}

	w, err := Window(d, "30d", "2020-03-20")
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Contracts) != 1 || w.Contracts[0].ID != 2 {
		t.Fatalf("window selected %d contracts, want only the COVID one", len(w.Contracts))
	}
	if len(w.Posts) != 1 || w.Posts[0].ID != 2 {
		t.Fatalf("window selected %d posts, want only the COVID one", len(w.Posts))
	}
	if len(w.Users) != len(d.Users) {
		t.Error("window narrowed the user population")
	}
	if len(d.Contracts) != 2 || len(d.Posts) != 2 {
		t.Error("Window mutated the source dataset")
	}

	if _, err := Window(d, "1d", "2018-06-01"); !errors.Is(err, ErrEmptyWindow) {
		t.Errorf("empty selection: got %v, want ErrEmptyWindow", err)
	}
}
