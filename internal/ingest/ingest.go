// Package ingest turns the frozen-corpus pipeline into a stream consumer:
// it decodes contract/user event batches (JSON lines or CSV rows), validates
// them against the dataset they extend, and applies them copy-on-write so a
// report run holding the previous snapshot never observes a mutation. It
// also implements the time-window views (?window=, ?as-of=) that make
// era-to-date and trailing-window reports possible over a growing corpus.
// See DESIGN.md §3.7.
package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/forum"
)

// Batch is one decoded event batch: zero or more new users followed by
// zero or more new contracts. Contracts may reference users from the same
// batch or users already present in the dataset being extended.
type Batch struct {
	Users     []*forum.User
	Contracts []*forum.Contract
}

// Len reports the number of events in the batch.
func (b *Batch) Len() int { return len(b.Users) + len(b.Contracts) }

// ErrUnsupportedEvents marks an event body whose Content-Type is neither
// JSON lines nor CSV.
var ErrUnsupportedEvents = errors.New("unsupported Content-Type: want application/x-ndjson (JSON lines) or text/csv")

// DecodeBatch parses an event body by Content-Type: JSON lines for
// application/x-ndjson or application/json(l), contract CSV rows (the
// hfgen contracts.csv schema, header included) for text/csv or
// application/csv. The body should already be size-bounded by the caller.
func DecodeBatch(contentType string, body io.Reader) (*Batch, error) {
	switch {
	case strings.Contains(contentType, "ndjson"), strings.Contains(contentType, "jsonl"),
		strings.Contains(contentType, "json"):
		return DecodeNDJSON(body)
	case strings.Contains(contentType, "csv"):
		return DecodeCSV(body)
	default:
		return nil, fmt.Errorf("%w (got %q)", ErrUnsupportedEvents, contentType)
	}
}

// userEvent / contractEvent are the JSON-lines wire forms. Field names
// mirror the CSV schema; times are RFC3339; type and status use the same
// vocabulary the CSV writer emits ("Exchanging", "Complete", …).
type eventLine struct {
	Kind string `json:"kind"` // "user" | "contract"

	// User fields.
	Joined           string `json:"joined,omitempty"`
	FirstPost        string `json:"first_post,omitempty"`
	Posts            int    `json:"posts,omitempty"`
	MarketplacePosts int    `json:"marketplace_posts,omitempty"`
	Reputation       int    `json:"reputation,omitempty"`

	// Contract fields.
	ID              int    `json:"id"`
	Type            string `json:"type,omitempty"`
	Maker           int    `json:"maker,omitempty"`
	Taker           int    `json:"taker,omitempty"`
	Thread          int    `json:"thread,omitempty"`
	Created         string `json:"created,omitempty"`
	Decided         string `json:"decided,omitempty"`
	Completed       string `json:"completed,omitempty"`
	Status          string `json:"status,omitempty"`
	Public          bool   `json:"public,omitempty"`
	MakerObligation string `json:"maker_obligation,omitempty"`
	TakerObligation string `json:"taker_obligation,omitempty"`
	MakerRating     int    `json:"maker_rating,omitempty"`
	TakerRating     int    `json:"taker_rating,omitempty"`
	BTCAddress      string `json:"btc_address,omitempty"`
	TxHash          string `json:"tx_hash,omitempty"`
}

// DecodeNDJSON parses one event per line: {"kind":"user",...} or
// {"kind":"contract",...}. Blank lines are skipped; any other kind, or a
// malformed line, fails the whole batch — appends are all-or-nothing.
func DecodeNDJSON(body io.Reader) (*Batch, error) {
	b := &Batch{}
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20) // obligation text can be long
	for line := 1; sc.Scan(); line++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev eventLine
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("ingest: event line %d: %w", line, err)
		}
		switch ev.Kind {
		case "user":
			u, err := ev.user()
			if err != nil {
				return nil, fmt.Errorf("ingest: event line %d: %w", line, err)
			}
			b.Users = append(b.Users, u)
		case "contract":
			c, err := ev.contract()
			if err != nil {
				return nil, fmt.Errorf("ingest: event line %d: %w", line, err)
			}
			b.Contracts = append(b.Contracts, c)
		default:
			return nil, fmt.Errorf("ingest: event line %d: unknown kind %q (want user or contract)", line, ev.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ingest: reading events: %w", err)
	}
	return b, nil
}

func (ev *eventLine) user() (*forum.User, error) {
	joined, err := parseEventTime(ev.Joined)
	if err != nil {
		return nil, fmt.Errorf("bad joined: %w", err)
	}
	firstPost, err := parseEventTime(ev.FirstPost)
	if err != nil {
		return nil, fmt.Errorf("bad first_post: %w", err)
	}
	return &forum.User{
		ID:               forum.UserID(ev.ID),
		Joined:           joined,
		FirstPost:        firstPost,
		Posts:            ev.Posts,
		MarketplacePosts: ev.MarketplacePosts,
		Reputation:       ev.Reputation,
	}, nil
}

func (ev *eventLine) contract() (*forum.Contract, error) {
	typ, err := forum.ParseContractType(ev.Type)
	if err != nil {
		return nil, err
	}
	status, err := forum.ParseStatus(ev.Status)
	if err != nil {
		return nil, err
	}
	created, err := parseEventTime(ev.Created)
	if err != nil {
		return nil, fmt.Errorf("bad created: %w", err)
	}
	decided, err := parseEventTime(ev.Decided)
	if err != nil {
		return nil, fmt.Errorf("bad decided: %w", err)
	}
	completed, err := parseEventTime(ev.Completed)
	if err != nil {
		return nil, fmt.Errorf("bad completed: %w", err)
	}
	return &forum.Contract{
		ID:              forum.ContractID(ev.ID),
		Type:            typ,
		Maker:           forum.UserID(ev.Maker),
		Taker:           forum.UserID(ev.Taker),
		Thread:          forum.ThreadID(ev.Thread),
		Created:         created,
		Decided:         decided,
		Completed:       completed,
		Status:          status,
		Public:          ev.Public,
		MakerObligation: ev.MakerObligation,
		TakerObligation: ev.TakerObligation,
		MakerRating:     forum.Rating(ev.MakerRating),
		TakerRating:     forum.Rating(ev.TakerRating),
		BTCAddress:      ev.BTCAddress,
		TxHash:          ev.TxHash,
	}, nil
}

func parseEventTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339, s)
}

// DecodeCSV parses an event body holding contract rows in the canonical
// contracts.csv schema, header line included — the form the ingest-smoke
// job streams a truncated hfgen corpus back with. CSV batches carry no
// user events; every referenced user must already exist in the dataset.
func DecodeCSV(body io.Reader) (*Batch, error) {
	contracts, err := dataset.ReadContractsCSV(body)
	if err != nil {
		return nil, err
	}
	return &Batch{Contracts: contracts}, nil
}

// ValidateAgainst checks the batch against the dataset it would extend:
// user and contract IDs must be new (and unique within the batch), every
// contract must reference a known or batch-introduced user, and each
// contract must satisfy the same invariants Dataset.Validate imposes on a
// full corpus. The dataset is not modified.
func (b *Batch) ValidateAgainst(d *dataset.Dataset) error {
	newUsers := make(map[forum.UserID]bool, len(b.Users))
	for _, u := range b.Users {
		if u.ID <= 0 {
			return fmt.Errorf("ingest: user id %d is not positive", u.ID)
		}
		if _, ok := d.Users[u.ID]; ok {
			return fmt.Errorf("ingest: user %d already exists in the dataset", u.ID)
		}
		if newUsers[u.ID] {
			return fmt.Errorf("ingest: user %d appears twice in the batch", u.ID)
		}
		newUsers[u.ID] = true
	}
	known := func(id forum.UserID) bool {
		if newUsers[id] {
			return true
		}
		_, ok := d.Users[id]
		return ok
	}
	existing := make(map[forum.ContractID]bool, len(d.Contracts))
	for _, c := range d.Contracts {
		existing[c.ID] = true
	}
	for _, c := range b.Contracts {
		if c.ID <= 0 {
			return fmt.Errorf("ingest: contract id %d is not positive", c.ID)
		}
		if existing[c.ID] {
			return fmt.Errorf("ingest: contract %d already exists in the dataset", c.ID)
		}
		existing[c.ID] = true
		if c.Maker == c.Taker {
			return fmt.Errorf("ingest: contract %d has identical maker and taker", c.ID)
		}
		if !known(c.Maker) {
			return fmt.Errorf("ingest: contract %d references unknown maker %d", c.ID, c.Maker)
		}
		if !known(c.Taker) {
			return fmt.Errorf("ingest: contract %d references unknown taker %d", c.ID, c.Taker)
		}
		if !dataset.InWindow(c.Created) {
			return fmt.Errorf("ingest: %w: contract %d created %v", dataset.ErrOutOfWindow, c.ID, c.Created)
		}
		if !c.Completed.IsZero() && c.Completed.Before(c.Created) {
			return fmt.Errorf("ingest: contract %d completed before creation", c.ID)
		}
		if !c.Public && (c.MakerObligation != "" || c.TakerObligation != "") {
			return fmt.Errorf("ingest: private contract %d leaks obligation text", c.ID)
		}
		if c.Status == forum.StatusDisputed && !c.Public {
			return fmt.Errorf("ingest: disputed contract %d is not public", c.ID)
		}
	}
	return nil
}

// Apply extends d with the batch copy-on-write and returns the new
// dataset; d itself is never mutated, so an in-flight analysis holding
// the previous snapshot keeps reading consistent data. The user map is
// cloned; the contract slice is extended through a capped append (the
// parent's backing array can never be written through); threads, posts,
// and the ledger are shared — events never touch them.
func Apply(d *dataset.Dataset, b *Batch) *dataset.Dataset {
	users := make(map[forum.UserID]*forum.User, len(d.Users)+len(b.Users))
	for id, u := range d.Users {
		users[id] = u
	}
	for _, u := range b.Users {
		users[u.ID] = u
	}
	nd := &dataset.Dataset{
		Users:     users,
		Threads:   d.Threads,
		Posts:     d.Posts,
		Contracts: append(d.Contracts[:len(d.Contracts):len(d.Contracts)], b.Contracts...),
		Ledger:    d.Ledger,
	}
	// Extend the columnar projection incrementally too: the parent's blocks
	// are shared and the batch becomes one new block, instead of the next
	// Columns() call re-interning the whole corpus.
	nd.ExtendColumnsFrom(d, b.Contracts)
	return nd
}

// WriteBatchContractsCSV renders the batch's contracts in the canonical
// contracts.csv form — the byte stream the serving tier's rolling dataset
// digest commits to.
func WriteBatchContractsCSV(w io.Writer, contracts []*forum.Contract) error {
	return dataset.WriteContractsCSV(w, contracts)
}

// WriteBatchUsersCSV renders the batch's users in the canonical users.csv
// form (ordered by id, so identical batches always serialise identically).
func WriteBatchUsersCSV(w io.Writer, users []*forum.User) error {
	m := make(map[forum.UserID]*forum.User, len(users))
	for _, u := range users {
		m[u.ID] = u
	}
	return dataset.WriteUsersCSV(w, m)
}

// MaxCreated returns the latest contract creation time in d (zero for an
// empty corpus) — the default ?as-of= anchor, deterministic per
// generation.
func MaxCreated(d *dataset.Dataset) time.Time {
	var max time.Time
	for _, c := range d.Contracts {
		if c.Created.After(max) {
			max = c.Created
		}
	}
	return max
}
