package market

import (
	"turnup/internal/dataset"
	"turnup/internal/forum"
)

// flow is one maker-class → taker-class channel with its share of the
// era's transactions of a type.
type flow struct {
	maker, taker Class
	weight       float64
}

// flowTable returns the maker→taker class mix for contracts of type t in
// era e. The top entries encode the paper's Table 8 flows verbatim; the
// remainder spreads the residual mass over the supporting channels the
// §5.1 narrative describes (SET-UP power-users trading within their own
// class, the STABLE emergence of SALE-taking classes L and A, and so on).
// Weights need not sum to 1; they are sampling weights.
func flowTable(e dataset.Era, t forum.ContractType) []flow {
	switch t {
	case forum.Exchange:
		switch e {
		case dataset.EraSetup:
			return []flow{
				{ClassF, ClassE, 0.10}, {ClassF, ClassK, 0.06}, {ClassD, ClassB, 0.035},
				// "power-users and single exchangers are not well connected,
				// with most flow volumes trading within their own class types"
				{ClassD, ClassD, 0.07}, {ClassB, ClassB, 0.07}, {ClassG, ClassG, 0.06},
				{ClassK, ClassK, 0.09}, {ClassE, ClassE, 0.05}, {ClassF, ClassF, 0.10},
				{ClassG, ClassK, 0.12}, {ClassK, ClassE, 0.07}, {ClassD, ClassE, 0.035},
				{ClassB, ClassK, 0.05}, {ClassG, ClassE, 0.04}, {ClassD, ClassK, 0.02},
				{ClassB, ClassE, 0.04},
			}
		case dataset.EraStable:
			return []flow{
				{ClassF, ClassK, 0.11}, {ClassF, ClassE, 0.08}, {ClassG, ClassD, 0.05},
				{ClassG, ClassK, 0.13}, {ClassD, ClassB, 0.03}, {ClassD, ClassK, 0.045},
				{ClassK, ClassK, 0.08}, {ClassD, ClassE, 0.04}, {ClassB, ClassK, 0.06},
				{ClassG, ClassE, 0.05}, {ClassD, ClassD, 0.04}, {ClassB, ClassB, 0.04},
				{ClassK, ClassE, 0.05}, {ClassF, ClassB, 0.04}, {ClassE, ClassK, 0.04},
			}
		default: // COVID-19
			return []flow{
				{ClassF, ClassK, 0.15}, {ClassF, ClassE, 0.08}, {ClassG, ClassD, 0.05},
				{ClassG, ClassK, 0.13}, {ClassD, ClassB, 0.04}, {ClassD, ClassK, 0.045},
				{ClassB, ClassK, 0.07}, {ClassD, ClassE, 0.035}, {ClassK, ClassK, 0.05},
				{ClassG, ClassE, 0.05}, {ClassD, ClassD, 0.035}, {ClassB, ClassB, 0.05},
				{ClassK, ClassE, 0.04}, {ClassE, ClassK, 0.04},
			}
		}
	case forum.Purchase:
		switch e {
		case dataset.EraSetup:
			return []flow{
				{ClassH, ClassC, 0.22}, {ClassJ, ClassC, 0.20}, {ClassH, ClassE, 0.07},
				{ClassH, ClassD, 0.10}, {ClassJ, ClassD, 0.09}, {ClassH, ClassJ, 0.08},
				{ClassA, ClassC, 0.07}, {ClassH, ClassI, 0.05}, {ClassJ, ClassE, 0.05},
				{ClassI, ClassC, 0.04}, {ClassB, ClassC, 0.03},
			}
		case dataset.EraStable:
			return []flow{
				{ClassH, ClassC, 0.23}, {ClassJ, ClassC, 0.19}, {ClassH, ClassK, 0.06},
				{ClassH, ClassI, 0.08}, {ClassJ, ClassD, 0.08}, {ClassH, ClassD, 0.08},
				{ClassA, ClassC, 0.07}, {ClassJ, ClassK, 0.05}, {ClassH, ClassE, 0.05},
				{ClassI, ClassC, 0.04}, {ClassB, ClassC, 0.03},
			}
		default:
			return []flow{
				{ClassH, ClassC, 0.26}, {ClassJ, ClassC, 0.18}, {ClassH, ClassI, 0.06},
				{ClassA, ClassC, 0.09}, {ClassH, ClassB, 0.07}, {ClassJ, ClassD, 0.07},
				{ClassH, ClassD, 0.06}, {ClassJ, ClassE, 0.05}, {ClassH, ClassE, 0.05},
				{ClassB, ClassC, 0.04},
			}
		}
	case forum.Sale:
		switch e {
		case dataset.EraSetup:
			// Small-scale users selling to one another one-to-one; the
			// volume beyond the one-shot cohort comes from the mid-level
			// maker classes (I makes ~5 SALE/month, G and K more).
			return []flow{
				{ClassC, ClassJ, 0.08}, {ClassC, ClassA, 0.045}, {ClassI, ClassJ, 0.14},
				{ClassC, ClassB, 0.026}, {ClassC, ClassH, 0.02}, {ClassI, ClassA, 0.10},
				{ClassC, ClassE, 0.013}, {ClassC, ClassL, 0.013}, {ClassI, ClassB, 0.08},
				{ClassC, ClassK, 0.013}, {ClassG, ClassJ, 0.10}, {ClassF, ClassJ, 0.04},
				{ClassB, ClassJ, 0.08}, {ClassI, ClassH, 0.08}, {ClassG, ClassA, 0.06},
				{ClassK, ClassJ, 0.05}, {ClassH, ClassJ, 0.04},
			}
		case dataset.EraStable:
			// The business-to-customer shift: one-shot C users flood in
			// (the most common flows) while mid/power makers carry the
			// residual volume; L and A absorb on the taker side.
			return []flow{
				{ClassC, ClassL, 0.08}, {ClassC, ClassA, 0.033}, {ClassC, ClassJ, 0.02},
				{ClassC, ClassK, 0.007}, {ClassI, ClassL, 0.24}, {ClassI, ClassA, 0.09},
				{ClassG, ClassL, 0.14}, {ClassB, ClassL, 0.08}, {ClassH, ClassL, 0.06},
				{ClassI, ClassJ, 0.05}, {ClassG, ClassA, 0.05}, {ClassK, ClassL, 0.05},
				{ClassF, ClassL, 0.03}, {ClassI, ClassB, 0.03}, {ClassI, ClassE, 0.03},
			}
		default:
			return []flow{
				{ClassC, ClassL, 0.075}, {ClassC, ClassA, 0.033}, {ClassC, ClassJ, 0.02},
				{ClassC, ClassK, 0.007}, {ClassI, ClassL, 0.23}, {ClassI, ClassA, 0.08},
				{ClassG, ClassL, 0.14}, {ClassB, ClassL, 0.08}, {ClassH, ClassL, 0.06},
				{ClassI, ClassJ, 0.05}, {ClassG, ClassA, 0.05}, {ClassK, ClassL, 0.06},
				{ClassF, ClassL, 0.03}, {ClassI, ClassB, 0.03}, {ClassI, ClassE, 0.03},
			}
		}
	case forum.Trade:
		// TRADE is a trickle spread over mid-size users in all eras.
		return []flow{
			{ClassH, ClassI, 0.2}, {ClassI, ClassH, 0.15}, {ClassE, ClassK, 0.15},
			{ClassA, ClassB, 0.15}, {ClassB, ClassA, 0.15}, {ClassK, ClassE, 0.1},
			{ClassL, ClassE, 0.1},
		}
	default: // VOUCH COPY: reputation-seekers (mostly L-style sellers) giving away goods.
		return []flow{
			{ClassL, ClassC, 0.3}, {ClassL, ClassJ, 0.2}, {ClassI, ClassJ, 0.15},
			{ClassI, ClassC, 0.15}, {ClassK, ClassC, 0.1}, {ClassH, ClassJ, 0.1},
		}
	}
}

// flowWeightsFor caches the weight slice for Categorical sampling.
type flowSampler struct {
	flows   []flow
	weights []float64
}

func newFlowSampler(e dataset.Era, t forum.ContractType) *flowSampler {
	fl := flowTable(e, t)
	w := make([]float64, len(fl))
	for i, f := range fl {
		w[i] = f.weight
	}
	return &flowSampler{flows: fl, weights: w}
}
