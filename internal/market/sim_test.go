package market

import (
	"math"
	"sort"
	"testing"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/fx"
	"turnup/internal/textmine"
)

// testData caches one generated corpus per test binary run: generation at
// scale 0.1 (~19k contracts) is the expensive step every calibration test
// shares.
var (
	testD     *dataset.Dataset
	testTruth *Truth
)

func generated(t *testing.T) (*dataset.Dataset, *Truth) {
	t.Helper()
	if testD == nil {
		var err error
		testD, testTruth, err = Generate(Config{Seed: 7, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
	}
	return testD, testTruth
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []float64{0, -1, 5} {
		if _, _, err := Generate(Config{Seed: 1, Scale: bad}); err == nil {
			t.Errorf("scale %v accepted", bad)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := Generate(Config{Seed: 42, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(Config{Seed: 42, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Summary(), b.Summary()
	if sa != sb {
		t.Fatalf("same seed, different corpora: %+v vs %+v", sa, sb)
	}
	// Contract-level spot check.
	for i := range a.Contracts {
		x, y := a.Contracts[i], b.Contracts[i]
		if x.ID != y.ID || x.Type != y.Type || x.Maker != y.Maker ||
			x.Status != y.Status || x.MakerObligation != y.MakerObligation {
			t.Fatalf("contract %d differs between runs", i)
		}
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	a, _, err := Generate(Config{Seed: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(Config{Seed: 2, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary() == b.Summary() {
		t.Fatal("different seeds produced identical summaries")
	}
}

func TestDatasetValidates(t *testing.T) {
	d, _ := generated(t)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTypeMixMatchesTableOne(t *testing.T) {
	d, _ := generated(t)
	counts := map[forum.ContractType]float64{}
	for _, c := range d.Contracts {
		counts[c.Type]++
	}
	total := float64(len(d.Contracts))
	want := map[forum.ContractType][2]float64{ // {target share, tolerance}
		forum.Sale:      {0.649, 0.05},
		forum.Exchange:  {0.215, 0.04},
		forum.Purchase:  {0.119, 0.04},
		forum.Trade:     {0.0125, 0.01},
		forum.VouchCopy: {0.005, 0.006},
	}
	for typ, w := range want {
		got := counts[typ] / total
		if math.Abs(got-w[0]) > w[1] {
			t.Errorf("%v share = %.3f, want %.3f ± %.3f", typ, got, w[0], w[1])
		}
	}
}

func TestCompletionRatesMatchTableOne(t *testing.T) {
	d, _ := generated(t)
	created := map[forum.ContractType]float64{}
	completed := map[forum.ContractType]float64{}
	for _, c := range d.Contracts {
		created[c.Type]++
		if c.IsComplete() {
			completed[c.Type]++
		}
	}
	// EXCHANGE completes at ~70%, more than double SALE's ~33%.
	exRate := completed[forum.Exchange] / created[forum.Exchange]
	saRate := completed[forum.Sale] / created[forum.Sale]
	if math.Abs(exRate-0.698) > 0.05 {
		t.Errorf("EXCHANGE completion rate = %.3f", exRate)
	}
	if math.Abs(saRate-0.327) > 0.05 {
		t.Errorf("SALE completion rate = %.3f", saRate)
	}
	if exRate < 1.85*saRate {
		t.Errorf("EXCHANGE rate %.3f not roughly double SALE rate %.3f", exRate, saRate)
	}
}

func TestVisibilityShares(t *testing.T) {
	d, _ := generated(t)
	public := float64(len(d.Public()))
	total := float64(len(d.Contracts))
	if share := public / total; share < 0.09 || share > 0.18 {
		t.Errorf("public share = %.3f, want ~0.12-0.15", share)
	}
	// Completed public share exceeds created public share (public deals
	// settle more often).
	completed := d.Completed()
	pubCompleted := 0
	for _, c := range completed {
		if c.Public {
			pubCompleted++
		}
	}
	createdShare := public / total
	completedShare := float64(pubCompleted) / float64(len(completed))
	if completedShare <= createdShare {
		t.Errorf("completed public share %.3f not above created %.3f", completedShare, createdShare)
	}
}

func TestVisibilityDeclinesAcrossEras(t *testing.T) {
	d, _ := generated(t)
	shareIn := func(e dataset.Era) float64 {
		cs := d.InEra(e)
		pub := 0
		for _, c := range cs {
			if c.Public {
				pub++
			}
		}
		return float64(pub) / float64(len(cs))
	}
	setup, stable := shareIn(dataset.EraSetup), shareIn(dataset.EraStable)
	if setup < stable+0.1 {
		t.Errorf("SET-UP public share %.3f not clearly above STABLE %.3f", setup, stable)
	}
}

func TestMonthlyVolumeShape(t *testing.T) {
	d, _ := generated(t)
	byMonth := d.ByMonth()
	count := func(m int) int { return len(byMonth[m]) }
	// The mandatory-contracts jump: March 2019 (month 9) far above Feb 2019 (8).
	if count(9) < 2*count(8) {
		t.Errorf("no mandatory-contract jump: feb=%d mar=%d", count(8), count(9))
	}
	// COVID peak (April 2020, month 22) exceeds the April 2019 peak (10).
	if count(22) <= count(10) {
		t.Errorf("COVID peak %d does not exceed STABLE peak %d", count(22), count(10))
	}
	// SET-UP ramps up: last SET-UP month well above the first.
	if float64(count(8)) < 1.5*float64(count(0)) {
		t.Errorf("SET-UP did not ramp: first=%d last=%d", count(0), count(8))
	}
	// Post-peak COVID decline.
	if count(24) >= count(22) {
		t.Errorf("no post-peak decline: apr=%d jun=%d", count(22), count(24))
	}
}

func TestVouchCopyOnlyFromFebruary2020(t *testing.T) {
	d, _ := generated(t)
	feb2020 := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	for _, c := range d.Contracts {
		if c.Type == forum.VouchCopy && c.Created.Before(feb2020) {
			t.Fatalf("VOUCH COPY created %v, before its introduction", c.Created)
		}
	}
	// And it does exist after introduction.
	if n := len(d.Filter(func(c *forum.Contract) bool { return c.Type == forum.VouchCopy })); n == 0 {
		t.Fatal("no VOUCH COPY contracts at all")
	}
}

func TestVouchCopyNeverDenied(t *testing.T) {
	// Table 1: VOUCH COPY is the only type with no denials. The simulator
	// gives it zero denial weight.
	d, _ := generated(t)
	for _, c := range d.Contracts {
		if c.Type == forum.VouchCopy && c.Status == forum.StatusDenied {
			t.Fatalf("denied VOUCH COPY contract %d", c.ID)
		}
	}
}

func TestCompletionTimesDecline(t *testing.T) {
	d, _ := generated(t)
	meanIn := func(lo, hi int) float64 {
		var total float64
		var n int
		for _, c := range d.Contracts {
			m := int(dataset.MonthOf(c.Created))
			if m < lo || m > hi || !c.IsComplete() {
				continue
			}
			if dur, ok := c.CompletionTime(); ok {
				total += dur.Hours()
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return total / float64(n)
	}
	early := meanIn(0, 2)  // Jun–Aug 2018
	late := meanIn(22, 24) // Apr–Jun 2020
	mid := meanIn(10, 12)  // Apr–Jun 2019
	if early <= mid || mid <= late {
		t.Errorf("completion times not declining: early=%.1fh mid=%.1fh late=%.1fh", early, mid, late)
	}
	if late > 25 {
		t.Errorf("late completion mean %.1fh, want near 10h", late)
	}
}

func TestDisputesPeakLateSetup(t *testing.T) {
	d, _ := generated(t)
	rate := func(lo, hi int) float64 {
		var disputed, total float64
		for _, c := range d.Contracts {
			m := int(dataset.MonthOf(c.Created))
			if m < lo || m > hi {
				continue
			}
			total++
			if c.Status == forum.StatusDisputed {
				disputed++
			}
		}
		return disputed / total
	}
	lateSetup := rate(3, 8)
	stable := rate(10, 20)
	if lateSetup < 1.5*stable {
		t.Errorf("late SET-UP dispute rate %.4f not elevated vs STABLE %.4f", lateSetup, stable)
	}
	if lateSetup < 0.015 || lateSetup > 0.04 {
		t.Errorf("late SET-UP dispute rate %.4f outside the 2-3%% band", lateSetup)
	}
}

func TestDisputedContractsArePublicWithText(t *testing.T) {
	d, _ := generated(t)
	for _, c := range d.Contracts {
		if c.Status == forum.StatusDisputed && !c.Public {
			t.Fatalf("disputed contract %d is private", c.ID)
		}
	}
}

func TestPrivateContractsHideObligations(t *testing.T) {
	d, _ := generated(t)
	for _, c := range d.Contracts {
		if !c.Public && (c.MakerObligation != "" || c.TakerObligation != "") {
			t.Fatalf("private contract %d has obligation text", c.ID)
		}
	}
	// Public completed contracts do carry text.
	withText := 0
	cp := d.CompletedPublic()
	for _, c := range cp {
		if c.MakerObligation != "" {
			withText++
		}
	}
	if float64(withText) < 0.9*float64(len(cp)) {
		t.Errorf("only %d/%d completed public contracts have text", withText, len(cp))
	}
}

func TestGroundTruthPopulated(t *testing.T) {
	d, truth := generated(t)
	if len(truth.Class) != len(d.Users) {
		t.Errorf("truth classes %d for %d users", len(truth.Class), len(d.Users))
	}
	if len(truth.ValueUSD) != len(d.Contracts) {
		t.Errorf("truth values %d for %d contracts", len(truth.ValueUSD), len(d.Contracts))
	}
	// Vouch copies carry no economic value.
	for _, c := range d.Contracts {
		if c.Type == forum.VouchCopy && truth.ValueUSD[c.ID] != 0 {
			t.Fatalf("vouch copy %d has value %v", c.ID, truth.ValueUSD[c.ID])
		}
	}
}

func TestLedgerEvidenceConsistent(t *testing.T) {
	d, truth := generated(t)
	found, notFound := 0, 0
	for _, c := range d.Contracts {
		if c.TxHash == "" {
			continue
		}
		if _, ok := d.Ledger.LookupHash(c.TxHash); ok {
			found++
			if _, hasTruth := truth.LedgerValue[c.ID]; !hasTruth {
				t.Fatalf("ledger tx for contract %d missing from truth", c.ID)
			}
		} else {
			notFound++
		}
	}
	if found == 0 {
		t.Fatal("no chain-backed contracts generated")
	}
	// ~7% of evidence should dangle (the unconfirmable slice).
	frac := float64(notFound) / float64(found+notFound)
	if frac < 0.01 || frac > 0.2 {
		t.Errorf("dangling evidence fraction = %.3f, want ~0.07", frac)
	}
}

func TestTyposInjected(t *testing.T) {
	d, truth := generated(t)
	if len(truth.TypoContracts) == 0 {
		t.Skip("no typos at this scale/seed; acceptable but rare")
	}
	for id := range truth.TypoContracts {
		var c *forum.Contract
		for _, cc := range d.Contracts {
			if cc.ID == id {
				c = cc
				break
			}
		}
		if c == nil {
			t.Fatalf("typo contract %d not in dataset", id)
		}
		if !c.Public {
			t.Fatalf("typo contract %d is private (typos only injected into visible text)", id)
		}
	}
}

func TestPowerUserConcentration(t *testing.T) {
	d, _ := generated(t)
	// Figure 5 semantics: the top 5% of users (by participation count) are
	// *involved in* >70% of contracts — a union count, since a contract has
	// two parties.
	counts := map[forum.UserID]int{}
	for _, c := range d.Contracts {
		counts[c.Maker]++
		counts[c.Taker]++
	}
	type uc struct {
		id forum.UserID
		n  int
	}
	users := make([]uc, 0, len(counts))
	for id, n := range counts {
		users = append(users, uc{id, n})
	}
	sort.Slice(users, func(i, j int) bool { return users[i].n > users[j].n })
	top := map[forum.UserID]bool{}
	for i := 0; i < len(users)/20; i++ {
		top[users[i].id] = true
	}
	involved := 0
	for _, c := range d.Contracts {
		if top[c.Maker] || top[c.Taker] {
			involved++
		}
	}
	share := float64(involved) / float64(len(d.Contracts))
	if share < 0.6 {
		t.Errorf("top-5%% involvement share = %.3f, want > 0.6 (paper: >0.7)", share)
	}
}

func TestInjectTypo(t *testing.T) {
	got := injectTypo("selling $120.00 btc", 10)
	if got != "selling $1120.00 btc" {
		t.Errorf("injectTypo x10 = %q", got)
	}
	got100 := injectTypo("$9.50 deal", 100)
	if got100 != "$999.50 deal" {
		t.Errorf("injectTypo x100 = %q", got100)
	}
	// No dollar amount: unchanged.
	if got := injectTypo("no numbers here", 10); got != "no numbers here" {
		t.Errorf("injectTypo no-op = %q", got)
	}
}

func TestClassStrings(t *testing.T) {
	if ClassA.String() != "A" || ClassL.String() != "L" {
		t.Error("class letters wrong")
	}
	for c := Class(0); c < NumClasses; c++ {
		if c.Behaviour() == "unknown" {
			t.Errorf("class %v lacks a behaviour description", c)
		}
	}
}

func TestPopulationShareSums(t *testing.T) {
	total := 0.0
	for _, s := range populationShare {
		total += s
	}
	if math.Abs(total-1) > 0.08 {
		t.Errorf("population shares sum to %.3f", total)
	}
}

func TestFlowTablesReferenceValidClasses(t *testing.T) {
	for _, e := range dataset.Eras {
		for _, typ := range forum.ContractTypes {
			flows := flowTable(e, typ)
			if len(flows) == 0 {
				t.Fatalf("empty flow table for %v/%v", e, typ)
			}
			for _, f := range flows {
				if f.maker < 0 || f.maker >= NumClasses || f.taker < 0 || f.taker >= NumClasses {
					t.Fatalf("bad class in flow %+v", f)
				}
				if f.weight <= 0 {
					t.Fatalf("non-positive weight in flow %+v", f)
				}
			}
		}
	}
}

func TestTableEightTopFlowsPresent(t *testing.T) {
	// The #1 flows of Table 8 must lead their tables.
	checks := []struct {
		era          dataset.Era
		typ          forum.ContractType
		maker, taker Class
	}{
		{dataset.EraSetup, forum.Exchange, ClassF, ClassE},
		{dataset.EraStable, forum.Exchange, ClassF, ClassK},
		{dataset.EraCovid, forum.Exchange, ClassF, ClassK},
		{dataset.EraSetup, forum.Purchase, ClassH, ClassC},
		{dataset.EraStable, forum.Sale, ClassC, ClassL},
		{dataset.EraSetup, forum.Sale, ClassC, ClassJ},
	}
	for _, ch := range checks {
		flows := flowTable(ch.era, ch.typ)
		if flows[0].maker != ch.maker || flows[0].taker != ch.taker {
			t.Errorf("%v/%v top flow = %v→%v, want %v→%v",
				ch.era, ch.typ, flows[0].maker, flows[0].taker, ch.maker, ch.taker)
		}
	}
}

func TestSetupUsersHavePriorReputation(t *testing.T) {
	d, truth := generated(t)
	var setupRep, stableRep []float64
	for id, u := range d.Users {
		_ = truth.Class[id]
		joinedBeforeSystem := u.Joined.Before(dataset.SetupStart)
		m := dataset.MonthOf(u.Joined)
		switch {
		case joinedBeforeSystem || m < 9:
			setupRep = append(setupRep, float64(u.Reputation))
		case m >= 9 && m < 21:
			stableRep = append(stableRep, float64(u.Reputation))
		}
	}
	if med(setupRep) <= med(stableRep) {
		t.Errorf("SET-UP median reputation %.0f not above STABLE %.0f",
			med(setupRep), med(stableRep))
	}
}

func med(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	return s[len(s)/2]
}

// TestCategoriserAgreesWithGroundTruth closes the loop between the
// simulator and the text miner: the regex categoriser must re-derive the
// intended primary category from the generated obligation text for the
// overwhelming majority of public contracts.
func TestCategoriserAgreesWithGroundTruth(t *testing.T) {
	d, truth := generated(t)
	agree, total := 0, 0
	for _, c := range d.Contracts {
		if !c.Public || c.MakerObligation == "" {
			continue
		}
		want := truth.Category[c.ID]
		total++
		for _, got := range textmine.Categorize(c.MakerObligation + " " + c.TakerObligation) {
			if got == want {
				agree++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no classified contracts")
	}
	rate := float64(agree) / float64(total)
	if rate < 0.9 {
		t.Errorf("categoriser agreement with ground truth = %.3f, want >= 0.9", rate)
	}
}

// TestValueExtractionAgreesWithGroundTruth verifies the extracted USD
// value tracks the simulator's intended value for non-typo public
// completed contracts.
func TestValueExtractionAgreesWithGroundTruth(t *testing.T) {
	d, truth := generated(t)
	tab := fx.Default()
	var within, total int
	for _, c := range d.Contracts {
		if !c.Public || !c.IsComplete() || c.MakerObligation == "" {
			continue
		}
		want := truth.ValueUSD[c.ID]
		if want <= 0 || truth.TypoContracts[c.ID] {
			continue
		}
		at := c.Completed
		if at.IsZero() {
			at = c.Created
		}
		vals := textmine.ExtractValues(c.MakerObligation)
		if len(vals) == 0 {
			continue
		}
		usd, err := tab.ToUSD(vals[0].Amount, vals[0].Currency, at)
		if err != nil {
			continue
		}
		total++
		// The maker-side quote is one side of the deal; allow the premium
		// spread plus FX rounding.
		if usd > want*0.7 && usd < want*1.4 {
			within++
		}
	}
	if total < 100 {
		t.Fatalf("only %d extractable contracts", total)
	}
	rate := float64(within) / float64(total)
	if rate < 0.85 {
		t.Errorf("value extraction agreement = %.3f, want >= 0.85", rate)
	}
}

// TestChristmasSpike reproduces the §5.1 note of "a small spike in
// PURCHASE and EXCHANGE around Christmas/New Year 2019".
func TestChristmasSpike(t *testing.T) {
	d, _ := generated(t)
	shareIn := func(m int, typ forum.ContractType) float64 {
		var match, total float64
		for _, c := range d.Contracts {
			if int(dataset.MonthOf(c.Created)) != m {
				continue
			}
			total++
			if c.Type == typ {
				match++
			}
		}
		if total == 0 {
			return 0
		}
		return match / total
	}
	// December 2019 (month 18) vs its neighbours.
	for _, typ := range []forum.ContractType{forum.Purchase, forum.Exchange} {
		dec := shareIn(18, typ)
		nov := shareIn(17, typ)
		jan := shareIn(19, typ)
		if dec <= nov || dec <= jan {
			t.Errorf("%v share dec=%.3f not above nov=%.3f / jan=%.3f", typ, dec, nov, jan)
		}
	}
}
