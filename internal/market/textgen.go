package market

import (
	"fmt"
	"math"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/fx"
	"turnup/internal/rng"
	"turnup/internal/textmine"
)

// obligation is the generated content of one contract: the two obligation
// texts plus the ground-truth the simulator knows about them (used for
// ledger entries and calibration tests, never by the analyses themselves).
type obligation struct {
	makerText string
	takerText string
	valueUSD  float64 // intended transaction value (0 when none, e.g. vouch copies)
	category  textmine.Category
	methods   []textmine.Method
	typo      bool // a magnitude typo was injected into the text
}

// paymentPair is a two-sided currency-exchange channel with a sampling
// weight; weights are tuned so Bitcoin appears in ~3/4 and PayPal in ~2/5
// of payment-classified contracts, the Table 4 marginals.
type paymentPair struct {
	a, b   textmine.Method
	weight float64
}

var exchangePairs = []paymentPair{
	{textmine.MBitcoin, textmine.MPayPal, 0.380},
	{textmine.MBitcoin, textmine.MAmazonGC, 0.100},
	{textmine.MBitcoin, textmine.MCashapp, 0.048},
	{textmine.MBitcoin, textmine.MUSD, 0.030},
	{textmine.MBitcoin, textmine.MEthereum, 0.026},
	{textmine.MBitcoin, textmine.MVenmo, 0.012},
	{textmine.MBitcoin, textmine.MZelle, 0.008},
	{textmine.MBitcoin, textmine.MVBucks, 0.005},
	{textmine.MBitcoin, textmine.MApplePay, 0.005},
	{textmine.MBitcoin, textmine.MBitcoinCash, 0.004},
	{textmine.MBitcoin, textmine.MLitecoin, 0.003},
	{textmine.MBitcoin, textmine.MMonero, 0.003},
	{textmine.MPayPal, textmine.MAmazonGC, 0.040},
	{textmine.MPayPal, textmine.MCashapp, 0.020},
	{textmine.MPayPal, textmine.MUSD, 0.015},
	{textmine.MPayPal, textmine.MEthereum, 0.006},
	{textmine.MPayPal, textmine.MVBucks, 0.007},
	{textmine.MPayPal, textmine.MApplePay, 0.005},
	{textmine.MPayPal, textmine.MSkrill, 0.004},
	{textmine.MAmazonGC, textmine.MCashapp, 0.006},
	{textmine.MAmazonGC, textmine.MUSD, 0.004},
	{textmine.MEthereum, textmine.MUSD, 0.003},
	{textmine.MCashapp, textmine.MUSD, 0.005},
	{textmine.MCashapp, textmine.MZelle, 0.003},
}

// singleMethodWeights draws the method for one-sided money movements
// (payments, giftcard purchases, priced goods).
var singleMethods = []textmine.Method{
	textmine.MBitcoin, textmine.MPayPal, textmine.MCashapp, textmine.MAmazonGC,
	textmine.MUSD, textmine.MEthereum, textmine.MVenmo, textmine.MZelle,
	textmine.MApplePay, textmine.MSkrill,
}

var singleMethodWeights = []float64{0.48, 0.26, 0.08, 0.05, 0.04, 0.03, 0.02, 0.015, 0.015, 0.01}

// saleCategoryMix is the trading-activity mix for SALE and PURCHASE
// contracts. Currency movement dominates (the forum is a cash-out market);
// the goods tail follows the Table 3 ordering.
var saleCategories = []textmine.Category{
	textmine.CurrencyExchange, textmine.Payments, textmine.Giftcard,
	textmine.Accounts, textmine.Gaming, textmine.HackforumsGoods,
	textmine.Hacking, textmine.SocialBoost, textmine.Tutorials,
	textmine.Tools, textmine.Multimedia, textmine.EWhoring,
	textmine.Shipping, textmine.Academic, textmine.Marketing,
	textmine.Contest,
}

var saleCategoryWeights = []float64{
	0.46, 0.13, 0.095, 0.055, 0.043, 0.040,
	0.028, 0.024, 0.022, 0.020, 0.016, 0.010,
	0.007, 0.007, 0.007, 0.005,
}

// categoryValueScale gives the log-normal value parameters per category.
var categoryValue = map[textmine.Category][2]float64{ // {mu, sigma} of ln(USD)
	textmine.CurrencyExchange: {3.70, 1.42},
	textmine.Payments:         {3.40, 1.25},
	textmine.Giftcard:         {3.10, 0.80},
	textmine.Accounts:         {2.60, 0.90},
	textmine.Gaming:           {2.70, 0.90},
	textmine.HackforumsGoods:  {2.40, 0.90},
	textmine.Hacking:          {3.30, 1.20},
	textmine.SocialBoost:      {2.50, 0.90},
	textmine.Tutorials:        {2.30, 0.80},
	textmine.Tools:            {2.60, 0.90},
	textmine.Multimedia:       {2.60, 0.80},
	textmine.EWhoring:         {2.50, 0.80},
	textmine.Shipping:         {1.80, 0.60},
	textmine.Academic:         {3.00, 0.80},
	textmine.Marketing:        {2.80, 0.90},
	textmine.Contest:          {2.00, 0.80},
}

// goods catalogues per category, cycled deterministically.
var goodsByCategory = map[textmine.Category][]string{
	textmine.Giftcard: {
		"amazon giftcard", "amazon gc", "google play giftcard", "steam giftcard",
		"itunes giftcard", "xbox giftcard",
	},
	textmine.Accounts: {
		"netflix account lifetime", "spotify premium account", "nordvpn subscription",
		"minecraft alts", "windows license key", "hulu account", "office license",
	},
	textmine.Gaming: {
		"fortnite account with rare skins", "csgo skins", "2000 vbucks",
		"steam account stacked", "minecraft account full access", "gta modded account",
	},
	textmine.HackforumsGoods: {
		"500k bytes", "250k bytes", "hf upgrade", "1m bytes",
	},
	textmine.Hacking: {
		"custom python script", "rat setup service", "website development",
		"crypter fud service", "web scraping script", "discord bot coding",
	},
	textmine.SocialBoost: {
		"1000 instagram followers", "youtube views boost", "tiktok likes package",
		"twitter followers", "5000 youtube subscribers",
	},
	textmine.Tutorials: {
		"youtube method tutorial", "dropshipping ebook", "passive income guide",
		"crypto trading course", "refund method guide",
	},
	textmine.Tools: {
		"account checker tool", "scraper bot", "keyword generator software",
		"proxy checker program", "auto poster bot",
	},
	textmine.Multimedia: {
		"logo design", "banner design", "video editing service",
		"channel intro animation", "graphics artwork pack",
	},
	textmine.EWhoring: {
		"ewhoring pack 800 pics", "ewhoring starter pack", "ewhoring method pack",
	},
	textmine.Shipping: {
		"discounted shipping label", "parcel delivery service", "postage label",
	},
	textmine.Academic: {
		"essay writing help", "math homework help", "dissertation chapter",
		"assignment writing service",
	},
	textmine.Marketing: {
		"seo service", "website traffic promotion", "marketing campaign setup",
		"advertising banner slots",
	},
	textmine.Contest: {
		"giveaway entry", "contest award payout", "raffle tickets",
	},
}

// textGen produces obligation texts. It holds its own RNG stream.
type textGen struct {
	src       *rng.Source
	fxTab     *fx.Table
	goodsIdx  map[textmine.Category]int
	pairW     []float64
	highValue bool // transient flag: force a high-value draw (hacking spikes)
}

func newTextGen(src *rng.Source, tab *fx.Table) *textGen {
	pw := make([]float64, len(exchangePairs))
	for i, p := range exchangePairs {
		pw[i] = p.weight
	}
	return &textGen{
		src:      src,
		fxTab:    tab,
		goodsIdx: make(map[textmine.Category]int),
		pairW:    pw,
	}
}

func (g *textGen) nextGood(cat textmine.Category) string {
	goods := goodsByCategory[cat]
	if len(goods) == 0 {
		return "misc goods"
	}
	// Random-but-deterministic rotation keeps variety without favouring
	// the first entry.
	i := g.goodsIdx[cat] % len(goods)
	g.goodsIdx[cat] = g.goodsIdx[cat] + 1 + g.src.Intn(2)
	return goods[i]
}

// drawValue samples a USD value for the category, capped near the paper's
// observed maximum (~$9.9k).
func (g *textGen) drawValue(cat textmine.Category) float64 {
	p, ok := categoryValue[cat]
	if !ok {
		p = [2]float64{2.5, 0.9}
	}
	mu, sigma := p[0], p[1]
	if g.highValue {
		mu += 2.2
		g.highValue = false
	}
	v := g.src.LogNormal(mu, sigma)
	if v < 1 {
		v = 1
	}
	if v > 9900 {
		v = 9900 - g.src.Float64()*900
	}
	return math.Round(v*100) / 100
}

// amount renders a USD value in the denomination conventions the text
// miner must parse: plain dollars, explicit "usd", or a crypto amount.
func (g *textGen) amount(usd float64, m textmine.Method, monthIdx int) string {
	switch m {
	case textmine.MBitcoin, textmine.MEthereum, textmine.MLitecoin, textmine.MMonero, textmine.MBitcoinCash:
		// 30% of crypto mentions quote the coin amount instead of dollars.
		if g.src.Bool(0.30) {
			cur := methodCurrency(m)
			rate, err := g.fxTab.Rate(cur, monthTime(monthIdx))
			if err == nil && rate > 0 {
				return fmt.Sprintf("%.5f %s", usd/rate, string(cur))
			}
		}
		return fmt.Sprintf("$%.2f %s", usd, methodToken(m))
	case textmine.MUSD:
		if g.src.Bool(0.5) {
			return fmt.Sprintf("%.0f usd", usd)
		}
		return fmt.Sprintf("$%.2f cash", usd)
	default:
		return fmt.Sprintf("$%.2f %s", usd, methodToken(m))
	}
}

func methodToken(m textmine.Method) string {
	switch m {
	case textmine.MBitcoin:
		return "btc"
	case textmine.MPayPal:
		return "paypal"
	case textmine.MAmazonGC:
		return "amazon gc"
	case textmine.MCashapp:
		return "cashapp"
	case textmine.MUSD:
		return "usd"
	case textmine.MEthereum:
		return "eth"
	case textmine.MVenmo:
		return "venmo"
	case textmine.MVBucks:
		return "vbucks"
	case textmine.MZelle:
		return "zelle"
	case textmine.MBitcoinCash:
		return "bitcoin cash"
	case textmine.MLitecoin:
		return "ltc"
	case textmine.MMonero:
		return "xmr"
	case textmine.MApplePay:
		return "apple pay"
	case textmine.MSkrill:
		return "skrill"
	}
	return "btc"
}

func methodCurrency(m textmine.Method) fx.Currency {
	switch m {
	case textmine.MBitcoin:
		return fx.BTC
	case textmine.MEthereum:
		return fx.ETH
	case textmine.MLitecoin:
		return fx.LTC
	case textmine.MMonero:
		return fx.XMR
	case textmine.MBitcoinCash:
		return fx.BCH
	default:
		return fx.USD
	}
}

// generate builds the obligation content for a contract of the given type
// created in study month monthIdx.
func (g *textGen) generate(t forum.ContractType, monthIdx int) obligation {
	switch t {
	case forum.Exchange:
		return g.genExchange(monthIdx)
	case forum.VouchCopy:
		return g.genVouchCopy()
	case forum.Trade:
		return g.genTrade()
	default: // SALE and PURCHASE share the goods mix; sides swap.
		return g.genSale(t, monthIdx)
	}
}

func (g *textGen) genExchange(monthIdx int) obligation {
	// A slice of exchanges are giftcard-for-crypto rather than pure
	// currency pairs.
	if g.src.Bool(0.10) {
		v := g.drawValue(textmine.Giftcard)
		pay := v * (0.75 + 0.15*g.src.Float64())
		method := singleMethods[g.src.Categorical([]float64{0.6, 0.3, 0.1, 0, 0, 0, 0, 0, 0, 0})]
		o := obligation{
			makerText: fmt.Sprintf("exchanging $%.2f %s for %s", v, "amazon gc", g.amount(pay, method, monthIdx)),
			takerText: fmt.Sprintf("i will send %s", g.amount(pay, method, monthIdx)),
			valueUSD:  (v + pay) / 2,
			category:  textmine.Giftcard,
			methods:   []textmine.Method{textmine.MAmazonGC, method},
		}
		return o
	}
	pair := exchangePairs[g.src.Categorical(g.pairW)]
	a, b := pair.a, pair.b
	if g.src.Bool(0.5) {
		a, b = b, a
	}
	v := g.drawValue(textmine.CurrencyExchange)
	// Bitcoin commands a premium over other cash-out methods: the side
	// paying for BTC pays a few percent more.
	vb := v
	if a == textmine.MBitcoin {
		vb = v * (1.0 + 0.10*g.src.Float64())
	} else if b == textmine.MBitcoin {
		vb = v * (1.0 - 0.08*g.src.Float64())
	}
	if vb > 9900 {
		vb = 9900 // keep genuine values under the paper's observed maximum
	}
	o := obligation{
		makerText: fmt.Sprintf("exchanging %s for %s", g.amount(v, a, monthIdx), g.amount(vb, b, monthIdx)),
		takerText: g.exchangeTakerText(vb, b, monthIdx),
		valueUSD:  (v + vb) / 2,
		category:  textmine.CurrencyExchange,
		methods:   []textmine.Method{a, b},
	}
	return o
}

// exchangeTakerText phrases the taker side of an exchange. About half
// mention sending a payment (firing the paper's "payments" bucket too),
// the rest only the exchange itself.
func (g *textGen) exchangeTakerText(usd float64, m textmine.Method, monthIdx int) string {
	if g.src.Bool(0.5) {
		return fmt.Sprintf("in exchange i will send %s", g.amount(usd, m, monthIdx))
	}
	return fmt.Sprintf("exchanging my %s for it", g.amount(usd, m, monthIdx))
}

func (g *textGen) genSale(t forum.ContractType, monthIdx int) obligation {
	cat := saleCategories[g.src.Categorical(saleCategoryWeights)]
	verb := "selling"
	if t == forum.Purchase {
		verb = "buying"
	}
	switch cat {
	case textmine.CurrencyExchange:
		// Cash-out posted as SALE: "selling $100 btc for $105 paypal".
		pair := exchangePairs[g.src.Categorical(g.pairW)]
		v := g.drawValue(cat)
		vb := v * (0.95 + 0.12*g.src.Float64())
		return obligation{
			makerText: fmt.Sprintf("%s %s for %s", verb, g.amount(v, pair.a, monthIdx), g.amount(vb, pair.b, monthIdx)),
			takerText: g.exchangeTakerText(vb, pair.b, monthIdx),
			valueUSD:  (v + vb) / 2,
			category:  cat,
			methods:   []textmine.Method{pair.a, pair.b},
		}
	case textmine.Payments:
		m := singleMethods[g.src.Categorical(singleMethodWeights)]
		v := g.drawValue(cat)
		return obligation{
			makerText: fmt.Sprintf("sending a %s payment", g.amount(v, m, monthIdx)),
			takerText: fmt.Sprintf("i will transfer %s back", g.amount(v*(0.9+0.15*g.src.Float64()), m, monthIdx)),
			valueUSD:  v,
			category:  cat,
			methods:   []textmine.Method{m},
		}
	default:
		good := g.nextGood(cat)
		m := singleMethods[g.src.Categorical(singleMethodWeights)]
		// Figure 11's hacking/programming value spikes (October 2018 and
		// January 2020): a handful of genuinely high-value development
		// contracts, which the paper manually confirmed as real trades.
		if cat == textmine.Hacking && (monthIdx == 4 || monthIdx == 19) && g.src.Bool(0.25) {
			g.highValue = true
		}
		v := g.drawValue(cat)
		maker := fmt.Sprintf("%s %s", verb, good)
		taker := fmt.Sprintf("i will pay %s for the %s", g.amount(v, m, monthIdx), good)
		if t == forum.Purchase {
			// Maker is the buyer: maker pays, taker delivers.
			maker = fmt.Sprintf("buying %s, paying %s", good, g.amount(v, m, monthIdx))
			taker = fmt.Sprintf("delivering the %s", good)
		}
		return obligation{
			makerText: maker,
			takerText: taker,
			valueUSD:  v,
			category:  cat,
			methods:   []textmine.Method{m},
		}
	}
}

func (g *textGen) genTrade() obligation {
	give := g.nextGood(textmine.Gaming)
	get := g.nextGood(textmine.Accounts)
	v := g.drawValue(textmine.Gaming)
	return obligation{
		makerText: fmt.Sprintf("trading my %s for %s", give, get),
		takerText: fmt.Sprintf("trading my %s", get),
		valueUSD:  v,
		category:  textmine.Gaming,
		methods:   nil,
	}
}

func (g *textGen) genVouchCopy() obligation {
	good := g.nextGood(textmine.Tutorials)
	return obligation{
		makerText: fmt.Sprintf("vouch copy of my %s", good),
		takerText: "i will leave an honest vouch on hackforums",
		valueUSD:  0,
		category:  textmine.HackforumsGoods,
		methods:   nil,
	}
}

// injectTypo multiplies the first dollar amount in the text by 10 or 100,
// reproducing the magnitude typos the paper's audit uncovers. It returns
// the corrupted maker text.
func injectTypo(text string, factor int) string {
	// Append an extra digit group: "$120.00" → "$12000.00" is achieved by
	// simply repeating the integer part; keeping it textual avoids
	// re-parsing. A crude but realistic fat-finger.
	out := make([]byte, 0, len(text)+2)
	injected := false
	for i := 0; i < len(text); i++ {
		out = append(out, text[i])
		if !injected && text[i] == '$' && i+1 < len(text) && text[i+1] >= '1' && text[i+1] <= '9' {
			out = append(out, text[i+1])
			if factor == 100 {
				out = append(out, text[i+1])
			}
			injected = true
		}
	}
	return string(out)
}

func monthTime(monthIdx int) time.Time {
	return dataset.Month(monthIdx).Time()
}
