package market

import "turnup/internal/forum"

// Class identifies one of the 12 latent behaviour classes of the paper's
// Table 6 (A through L).
type Class int

// The 12 behaviour classes.
const (
	ClassA     Class = iota // mid-level SALE taker
	ClassB                  // exchanger & SALE taker
	ClassC                  // single SALE maker
	ClassD                  // single exchanger
	ClassE                  // exchanger power-user
	ClassF                  // mid-level exchanger
	ClassG                  // exchanger power-user
	ClassH                  // mid-level PURCHASE maker
	ClassI                  // mid-level SALE maker
	ClassJ                  // single SALE taker
	ClassK                  // exchanger power-user
	ClassL                  // SALE taker power-user
	NumClasses = 12
)

// String renders the class letter.
func (c Class) String() string { return string(rune('A' + int(c))) }

// Behaviour describes the class as the paper's Table 6 does.
func (c Class) Behaviour() string {
	switch c {
	case ClassA:
		return "Mid-level SALE taker"
	case ClassB:
		return "Exchanger & Sale taker"
	case ClassC:
		return "Single SALE maker"
	case ClassD:
		return "Single Exchanger"
	case ClassE:
		return "Exchanger power-user"
	case ClassF:
		return "Mid-level Exchanger"
	case ClassG:
		return "Exchanger power-user"
	case ClassH:
		return "Mid-level PURCHASE maker"
	case ClassI:
		return "Mid-level SALE maker"
	case ClassJ:
		return "Single SALE taker"
	case ClassK:
		return "Exchanger power-user"
	case ClassL:
		return "SALE taker power-user"
	default:
		return "unknown"
	}
}

// ClassRates holds a class's mean monthly transaction rates per contract
// type, split by side. Index order follows forum.ContractTypes:
// SALE, PURCHASE, EXCHANGE, TRADE, VOUCH COPY.
type ClassRates struct {
	Make [forum.NumContractTypes]float64
	Take [forum.NumContractTypes]float64
}

// TableSixRates is the paper's Table 6 rate matrix verbatim.
// Column order there is EXCHANGE, PURCHASE, SALE, TRADE, VOUCH COPY; the
// values are re-ordered here to the forum.ContractTypes order
// (SALE, PURCHASE, EXCHANGE, TRADE, VOUCH COPY).
var TableSixRates = [NumClasses]ClassRates{
	ClassA: {Make: rates(0.5, 0.6, 0.5, 0.1, 0.0), Take: rates(10.1, 0.2, 0.5, 0.2, 0.0)},
	ClassB: {Make: rates(0.6, 0.4, 2.3, 0.1, 0.0), Take: rates(1.1, 0.6, 6.5, 0.1, 0.0)},
	ClassC: {Make: rates(1.1, 0.0, 0.0, 0.0, 0.0), Take: rates(0.0, 0.2, 0.0, 0.0, 0.0)},
	ClassD: {Make: rates(0.1, 0.0, 0.9, 0.0, 0.0), Take: rates(0.0, 0.1, 0.9, 0.0, 0.0)},
	ClassE: {Make: rates(2.0, 0.7, 4.3, 0.2, 0.0), Take: rates(3.8, 4.2, 22.3, 0.4, 0.0)},
	ClassF: {Make: rates(0.4, 0.2, 7.3, 0.0, 0.0), Take: rates(0.3, 0.2, 1.3, 0.0, 0.0)},
	ClassG: {Make: rates(1.3, 0.6, 21.2, 0.1, 0.0), Take: rates(1.3, 1.1, 8.1, 0.1, 0.0)},
	ClassH: {Make: rates(0.9, 10.0, 1.3, 0.2, 0.0), Take: rates(3.2, 0.4, 1.0, 0.1, 0.0)},
	ClassI: {Make: rates(5.2, 0.7, 1.1, 0.2, 0.0), Take: rates(1.0, 2.0, 1.6, 0.1, 0.0)},
	ClassJ: {Make: rates(0.1, 0.7, 0.1, 0.0, 0.0), Take: rates(1.1, 0.1, 0.1, 0.0, 0.0)},
	ClassK: {Make: rates(3.3, 0.9, 31.2, 0.3, 0.0), Take: rates(12.8, 9.2, 54.9, 1.0, 0.0)},
	ClassL: {Make: rates(1.2, 1.1, 1.3, 0.2, 0.1), Take: rates(54.9, 0.6, 1.5, 0.2, 0.0)},
}

// rates packs per-type rates in the order SALE, PURCHASE, EXCHANGE, TRADE,
// VOUCH COPY.
func rates(sale, purchase, exchange, trade, vouch float64) [forum.NumContractTypes]float64 {
	return [forum.NumContractTypes]float64{sale, purchase, exchange, trade, vouch}
}

// populationShare is the probability a newly joining user belongs to each
// class. The bulk are one-shot users (C, D, J); power classes (E, G, K, L)
// are rare, producing the concentrated market of §4.2.
var populationShare = [NumClasses]float64{
	ClassA: 0.045,
	ClassB: 0.045,
	ClassC: 0.450,
	ClassD: 0.125,
	ClassE: 0.010,
	ClassF: 0.040,
	ClassG: 0.007,
	ClassH: 0.045,
	ClassI: 0.022,
	ClassJ: 0.150,
	ClassK: 0.004,
	ClassL: 0.003,
}

// latePowerDamp scales the power classes' join probability after SET-UP:
// the paper finds power-users established themselves during SET-UP and
// later cohorts are dominated by small-scale users.
const latePowerDamp = 0.35

func isPowerClass(c Class) bool {
	return c == ClassE || c == ClassG || c == ClassK || c == ClassL
}

// meanLifetimeMonths is the expected number of months a user of the class
// stays active after joining (geometric churn). Power classes effectively
// persist for the whole study.
var meanLifetimeMonths = [NumClasses]float64{
	ClassA: 5, ClassB: 5, ClassC: 1.3, ClassD: 1.4, ClassE: 14,
	ClassF: 6, ClassG: 18, ClassH: 6, ClassI: 5, ClassJ: 1.3,
	ClassK: 26, ClassL: 26,
}

// flakyProb is the chance a newly joining user of the class is a "flaky"
// trader whose deals systematically fall through (scammers, abandoners,
// one-time chancers). One-shot classes carry most of the risk; power
// users survive precisely because they complete.
func flakyProb(c Class) float64 {
	switch {
	case c == ClassC || c == ClassD || c == ClassJ:
		return 0.35
	case isPowerClass(c):
		return 0
	default:
		return 0.18
	}
}

// monthlyPostRate is the mean number of marketplace-section posts a user of
// the class writes per active month (general forum posts are a multiple).
var monthlyPostRate = [NumClasses]float64{
	ClassA: 4, ClassB: 3, ClassC: 1.2, ClassD: 1.2, ClassE: 10,
	ClassF: 4, ClassG: 12, ClassH: 4, ClassI: 5, ClassJ: 1.0,
	ClassK: 18, ClassL: 15,
}
