package market

import (
	"fmt"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/obs"
)

// Config controls a simulation run.
type Config struct {
	// Seed makes the run fully reproducible.
	Seed uint64
	// Scale multiplies all volume targets. 1.0 reproduces the paper-sized
	// corpus (~190k contracts, ~27k users); tests run at 0.02–0.10.
	Scale float64

	// Trace, when non-nil, records one span per simulated era and month
	// (wall time, allocation deltas, per-month volume attributes). The nil
	// default costs nothing (see internal/obs).
	Trace *obs.Tracer
	// Metrics, when non-nil, receives market_contracts_total,
	// market_users_total, and market_posts_total counters.
	Metrics *obs.Registry
}

// DefaultConfig is a paper-scale run.
func DefaultConfig() Config { return Config{Seed: 1, Scale: 1.0} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Scale <= 0 || c.Scale > 4 {
		return fmt.Errorf("market: scale %v out of (0, 4]", c.Scale)
	}
	return nil
}

// monthlyCreated is the target number of created contracts per study month
// at Scale = 1, shaped to Figure 1: a SET-UP ramp that roughly doubles, the
// +172% jump when contracts become mandatory (2019-03), the April 2019 peak
// (~12.5k) and slow STABLE decline, then the COVID-19 spike peaking above
// the old maximum in April 2020 (~13.4k) before falling back.
var monthlyCreated = [dataset.NumMonths]float64{
	// 2018-06 .. 2019-02 (SET-UP)
	2300, 2600, 2800, 3000, 3200, 3500, 3900, 4300, 4600,
	// 2019-03 .. 2020-02 (STABLE)
	12200, 12500, 11600, 11000, 10400, 9900, 9400, 9000, 8700, 8400, 8100, 7900,
	// 2020-03 .. 2020-06 (COVID-19; March straddles the era boundary)
	9800, 13400, 10100, 8600,
}

// monthlyNewUsers is the target number of users joining the contract system
// each month at Scale = 1, shaped to Figure 1's new-member series: a gentle
// SET-UP decline, the March 2019 burst (~3.75× the month before), decline
// to under half the peak by late STABLE, and a short COVID uplift.
var monthlyNewUsers = [dataset.NumMonths]float64{
	1000, 950, 920, 880, 850, 830, 810, 800, 800,
	3000, 2200, 1700, 1400, 1200, 1100, 1000, 950, 900, 850, 800, 750,
	900, 1400, 700, 450,
}

// typeShare gives the per-month probability of each contract type in the
// order SALE, PURCHASE, EXCHANGE, TRADE, VOUCH COPY (Figure 3): EXCHANGE
// leads early SET-UP, SALE and EXCHANGE swap at the STABLE transition, and
// VOUCH COPY appears in February 2020 and grows.
func typeShare(m dataset.Month) [forum.NumContractTypes]float64 {
	switch {
	case m <= 2: // Jun–Aug 2018
		return [forum.NumContractTypes]float64{0.38, 0.09, 0.50, 0.03, 0}
	case m <= 5: // Sep–Nov 2018
		return [forum.NumContractTypes]float64{0.42, 0.10, 0.45, 0.03, 0}
	case m <= 8: // Dec 2018–Feb 2019
		return [forum.NumContractTypes]float64{0.46, 0.12, 0.40, 0.02, 0}
	case m <= 14: // Mar–Aug 2019
		return [forum.NumContractTypes]float64{0.705, 0.10, 0.18, 0.015, 0}
	case m == 18: // Dec 2019: the Christmas/New-Year spike in PURCHASE and
		// EXCHANGE the paper notes in §5.1.
		return [forum.NumContractTypes]float64{0.655, 0.135, 0.195, 0.015, 0}
	case m <= 19: // Sep 2019–Jan 2020
		return [forum.NumContractTypes]float64{0.71, 0.105, 0.17, 0.015, 0}
	case m == 20: // Feb 2020: VOUCH COPY introduced
		return [forum.NumContractTypes]float64{0.705, 0.10, 0.17, 0.015, 0.01}
	case m <= 22: // Mar–Apr 2020
		return [forum.NumContractTypes]float64{0.70, 0.10, 0.17, 0.013, 0.017}
	default: // May–Jun 2020
		return [forum.NumContractTypes]float64{0.695, 0.10, 0.165, 0.015, 0.025}
	}
}

// publicShare is the probability a newly created contract is public, by
// month (Figure 2): ~45% at launch, >50% in August 2018, declining to ~20%
// by late SET-UP, dropping to ~10% when contracts become mandatory.
var publicShare = [dataset.NumMonths]float64{
	0.45, 0.48, 0.52, 0.44, 0.37, 0.31, 0.27, 0.23, 0.20,
	0.115, 0.11, 0.105, 0.10, 0.10, 0.10, 0.095, 0.095, 0.09, 0.09, 0.09, 0.09,
	0.095, 0.10, 0.095, 0.09,
}

// statusWeights returns the lifecycle-outcome distribution for a contract
// of the given type and visibility, in the order:
// completed, active, disputed, incomplete, cancelled, denied, expired.
// The private columns are calibrated to the paper's Table 1 within-type
// proportions; public contracts shift ~15 points of mass from incomplete
// to completed (the paper: 57.0% of public vs 41.7% of private contracts
// settle).
func statusWeights(t forum.ContractType, public bool) [7]float64 {
	// These are Table 1's within-type target proportions. The engine
	// divides the completed weight by each contract's penalty survival
	// factor (flaky traders, newcomer suspicion), so the *realised* rates
	// land on these targets while completion stays strongly heterogeneous
	// across users.
	var w [7]float64
	switch t {
	case forum.Sale:
		w = [7]float64{0.327, 0.016, 0.0075, 0.543, 0.056, 0.0005, 0.050}
	case forum.Purchase:
		w = [7]float64{0.531, 0.001, 0.023, 0.210, 0.106, 0.0013, 0.123}
	case forum.Exchange:
		w = [7]float64{0.698, 0.0001, 0.010, 0.083, 0.143, 0.0016, 0.064}
	case forum.Trade:
		w = [7]float64{0.564, 0.0005, 0.009, 0.233, 0.084, 0.0013, 0.109}
	case forum.VouchCopy:
		w = [7]float64{0.577, 0.0, 0.003, 0.232, 0.057, 0.0, 0.130}
	}
	if public {
		shift := 0.15 * w[3]
		w[3] -= shift
		w[0] += shift
		// Public contracts are also where disputes surface.
		w[2] *= 1.3
	}
	return w
}

// disputeBoost scales dispute probability by month: the paper observes
// disputes at ~1% for most of the study but peaking at 2–3% in the last
// six months of SET-UP (the Tuckman "storming" signal), halving at the
// start of STABLE.
func disputeBoost(m dataset.Month) float64 {
	switch {
	case m >= 3 && m <= 8: // Sep 2018–Feb 2019
		return 2.8
	case m <= 2:
		return 1.2
	default:
		return 1.0
	}
}

// completionMeanHours is the mean completion time by month (Figure 4):
// slowest in early SET-UP, a drop into STABLE, and under 10 hours by June
// 2020.
var completionMeanHours = [dataset.NumMonths]float64{
	95, 90, 84, 78, 72, 66, 60, 55, 50,
	40, 38, 36, 34, 32, 30, 29, 28, 26, 25, 24, 22,
	17, 13, 11, 9,
}

// completionRecordedProb is the chance a completed contract carries an
// explicit completion date (the paper: ~70% of completed contracts do).
const completionRecordedProb = 0.70

// threadLinkProb is the chance a public contract is associated with an
// advertising thread (the paper: 68.4% of public contracts).
const threadLinkProb = 0.684

// chainEvidenceProb is the chance a Bitcoin-denominated contract quotes a
// transaction hash / address that the synthetic ledger can be checked
// against.
const chainEvidenceProb = 0.20

// Audit mix for ledger-backed values (§4.5): 50% confirmed, 43% recorded at
// a different (usually lower) value, 7% with no matching transaction.
const (
	auditConfirmedProb = 0.50
	auditMismatchProb  = 0.43
)

// typoProb is the chance a quoted value suffers a magnitude typo (×10 or
// ×100); the paper found values beyond $10,000 were "likely due to typing
// errors".
const typoProb = 0.004

// covidTradeNoiseMonths are the months where TRADE completion times show
// the short-lived noise peaks of Figure 4 (February and April 2020).
var covidTradeNoiseMonths = map[dataset.Month]bool{20: true, 22: true}
