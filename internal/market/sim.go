// Package market is the agent-based marketplace simulator standing in for
// the proprietary CrimeBB contract dump (see DESIGN.md §2). Agents are
// drawn from the paper's 12 published behaviour classes; contract volumes,
// type mixes, visibility, outcomes, obligation texts, completion times,
// and on-chain evidence follow the calibration targets in params.go, so
// the downstream analyses recover the shapes of every table and figure.
package market

import (
	"context"
	"fmt"
	"math"
	"time"

	"turnup/internal/chain"
	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/fx"
	"turnup/internal/obs"
	"turnup/internal/rng"
	"turnup/internal/textmine"
)

// Truth is the simulator's ground truth, returned alongside the dataset
// for calibration tests and paper-vs-measured reporting. Analyses must not
// consume it; they see only the Dataset.
type Truth struct {
	// ValueUSD is the intended transaction value per contract (including
	// private ones, whose text the dataset hides).
	ValueUSD map[forum.ContractID]float64
	// Category is the intended primary trading activity per contract.
	Category map[forum.ContractID]textmine.Category
	// Class is the latent behaviour class each user was spawned with.
	Class map[forum.UserID]Class
	// TypoContracts lists contracts whose quoted value carries an injected
	// magnitude typo.
	TypoContracts map[forum.ContractID]bool
	// LedgerValue is the on-chain value recorded for contracts with chain
	// evidence (absent for the "not found" audit slice).
	LedgerValue map[forum.ContractID]float64
}

type agent struct {
	id        forum.UserID
	class     Class
	joinMonth int
	lastMonth int     // inclusive
	weight    float64 // within-class selection weight (heavy-tailed for power classes)
	thread    forum.ThreadID
	// flaky marks users whose deals systematically fall through —
	// scammers and abandoners. This user-level trait (not observable from
	// any single contract) is what makes completed-contract counts
	// zero-inflated, as the paper's Vuong tests find.
	flaky bool

	posRatings, negRatings int
	disputes               int
	made, accepted         int
}

type sim struct {
	cfg   Config
	src   *rng.Source
	d     *dataset.Dataset
	truth *Truth
	gen   *textGen
	fxTab *fx.Table

	agents       []*agent
	byClass      [NumClasses][]*agent
	activeCum    [NumClasses][]float64 // taker-side cumulative weights, rebuilt monthly
	activeCumMk  [NumClasses][]float64 // maker-side cumulative weights (flatter tail)
	activeAgents [NumClasses][]*agent

	nextUser     forum.UserID
	nextThread   forum.ThreadID
	nextContract forum.ContractID
	nextPost     int

	flowCache map[[2]int]*flowSampler
}

// Generate runs the simulator and returns the dataset plus ground truth.
func Generate(cfg Config) (*dataset.Dataset, *Truth, error) {
	return GenerateContext(context.Background(), cfg)
}

// GenerateContext is Generate with cooperative cancellation: the
// simulation checks ctx between simulated months and returns a wrapped
// ctx.Err() (so errors.Is(err, context.Canceled) holds) instead of the
// dataset when the caller gives up.
func GenerateContext(ctx context.Context, cfg Config) (*dataset.Dataset, *Truth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	src := rng.New(cfg.Seed)
	s := &sim{
		cfg:   cfg,
		src:   src,
		d:     dataset.New(),
		fxTab: fx.Default(),
		truth: &Truth{
			ValueUSD:      make(map[forum.ContractID]float64),
			Category:      make(map[forum.ContractID]textmine.Category),
			Class:         make(map[forum.UserID]Class),
			TypoContracts: make(map[forum.ContractID]bool),
			LedgerValue:   make(map[forum.ContractID]float64),
		},
		nextUser:     1,
		nextThread:   1,
		nextContract: 1,
		nextPost:     1,
		flowCache:    make(map[[2]int]*flowSampler),
	}
	s.gen = newTextGen(src.Fork(101), s.fxTab)

	genSpan := cfg.Trace.Start("market/generate")
	var eraSpan *obs.Span
	curEra := dataset.Era(-1)
	for m := 0; m < dataset.NumMonths; m++ {
		if err := ctx.Err(); err != nil {
			eraSpan.End()
			genSpan.End()
			return nil, nil, fmt.Errorf("market: generation cancelled: %w", err)
		}
		if e := dataset.EraOf(dataset.Month(m).Time().AddDate(0, 0, 14)); e != curEra {
			eraSpan.End()
			eraSpan = cfg.Trace.Start("era/" + e.String())
			curEra = e
		}
		mSpan := cfg.Trace.Start("month/" + dataset.Month(m).String())
		c0, p0, u0 := len(s.d.Contracts), len(s.d.Posts), len(s.agents)
		s.spawnCohort(m)
		s.rebuildActive(m)
		s.emitPosts(m)
		s.emitContracts(m)
		dc, dp, du := len(s.d.Contracts)-c0, len(s.d.Posts)-p0, len(s.agents)-u0
		mSpan.SetInt("contracts", dc)
		mSpan.SetInt("posts", dp)
		mSpan.SetInt("users", du)
		mSpan.End()
		cfg.Metrics.Counter("market_contracts_total").Add(int64(dc))
		cfg.Metrics.Counter("market_posts_total").Add(int64(dp))
		cfg.Metrics.Counter("market_users_total").Add(int64(du))
	}
	eraSpan.End()
	fSpan := cfg.Trace.Start("finish/users+validate")
	s.finishUsers()
	if err := s.d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("market: generated dataset invalid: %w", err)
	}
	fSpan.End()
	genSpan.SetInt("contracts", len(s.d.Contracts))
	genSpan.SetInt("users", len(s.d.Users))
	genSpan.SetInt("posts", len(s.d.Posts))
	genSpan.SetInt("ledger_txs", s.d.Ledger.Len())
	genSpan.End()
	return s.d, s.truth, nil
}

// spawnCohort creates the month's joining users.
func (s *sim) spawnCohort(m int) {
	n := int(math.Round(monthlyNewUsers[m] * s.cfg.Scale))
	if n < NumClasses && m == 0 {
		n = NumClasses // tiny scales still need one agent of each class early
	}
	shares := make([]float64, NumClasses)
	for c := 0; c < NumClasses; c++ {
		shares[c] = populationShare[c]
		if m >= 9 && isPowerClass(Class(c)) {
			shares[c] *= latePowerDamp
		}
	}
	for i := 0; i < n; i++ {
		var cl Class
		if m == 0 && i < NumClasses {
			cl = Class(i) // guarantee every class is represented from launch
		} else {
			cl = Class(s.src.Categorical(shares))
		}
		s.addAgent(cl, m)
	}
}

func (s *sim) addAgent(cl Class, m int) *agent {
	life := 1 + s.src.Geometric(1/meanLifetimeMonths[cl])
	a := &agent{
		id:        s.nextUser,
		class:     cl,
		joinMonth: m,
		lastMonth: m + life - 1,
		weight:    s.agentWeight(cl),
		flaky:     s.src.Bool(flakyProb(cl)),
	}
	s.nextUser++
	s.agents = append(s.agents, a)
	s.byClass[cl] = append(s.byClass[cl], a)
	s.truth.Class[a.id] = cl
	return a
}

// agentWeight draws the within-class counterparty-selection weight.
// Power classes get Pareto-tailed weights, producing the extreme hubs of
// Figure 7; one-shot classes are uniform.
func (s *sim) agentWeight(cl Class) float64 {
	switch {
	case isPowerClass(cl):
		// Pareto(1) tail capped so the top hub absorbs thousands (the
		// paper's busiest taker accepts ~9,000 contracts), not everything.
		return 1 / math.Max(s.src.Float64(), 0.03)
	case cl == ClassC || cl == ClassD || cl == ClassJ:
		return 1
	default:
		return math.Exp(0.5 * s.src.Norm())
	}
}

// rebuildActive refreshes the per-class active agent lists and cumulative
// weights for month m.
func (s *sim) rebuildActive(m int) {
	for c := 0; c < NumClasses; c++ {
		s.activeAgents[c] = s.activeAgents[c][:0]
		s.activeCum[c] = s.activeCum[c][:0]
		s.activeCumMk[c] = s.activeCumMk[c][:0]
		total, totalMk := 0.0, 0.0
		for _, a := range s.byClass[c] {
			if a.joinMonth <= m && m <= a.lastMonth {
				s.activeAgents[c] = append(s.activeAgents[c], a)
				total += a.weight
				s.activeCum[c] = append(s.activeCum[c], total)
				// Maker-side selection is near-uniform within a class: the
				// paper's hubs form by *accepting* contracts (max outbound
				// 587 vs max inbound 4,992, top maker ~700 contracts vs top
				// taker ~9,000), so initiating is far less concentrated
				// than accepting.
				totalMk += math.Pow(a.weight, 0.1)
				s.activeCumMk[c] = append(s.activeCumMk[c], totalMk)
			}
		}
	}
}

// pickAgent selects an active agent of the class by weight; when the class
// has no active agent this month, it falls back to the most recent joiner
// of the class, spawning one if the class is empty.
func (s *sim) pickAgent(cl Class, m int, avoid forum.UserID, asMaker bool) *agent {
	for attempt := 0; attempt < 12; attempt++ {
		a := s.drawAgent(cl, m, asMaker)
		if a.id != avoid {
			return a
		}
	}
	// Degenerate class population (e.g. a single active agent who is the
	// avoid target): borrow from the global pool.
	for attempt := 0; attempt < 64; attempt++ {
		a := s.agents[s.src.Intn(len(s.agents))]
		if a.id != avoid && a.joinMonth <= m {
			return a
		}
	}
	return s.addAgent(cl, m)
}

func (s *sim) drawAgent(cl Class, m int, asMaker bool) *agent {
	actives := s.activeAgents[cl]
	if len(actives) == 0 {
		pool := s.byClass[cl]
		var candidates []*agent
		for _, a := range pool {
			if a.joinMonth <= m {
				candidates = append(candidates, a)
			}
		}
		if len(candidates) == 0 {
			a := s.addAgent(cl, m)
			s.rebuildActive(m)
			return a
		}
		return candidates[s.src.Intn(len(candidates))]
	}
	cum := s.activeCum[cl]
	if asMaker {
		cum = s.activeCumMk[cl]
	}
	u := s.src.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return actives[lo]
}

// emitPosts generates the month's forum posts (and advertising threads).
func (s *sim) emitPosts(m int) {
	monthStart := dataset.Month(m).Time()
	for c := 0; c < NumClasses; c++ {
		for _, a := range s.activeAgents[c] {
			nPosts := s.src.Poisson(monthlyPostRate[a.class])
			for p := 0; p < nPosts; p++ {
				at := monthStart.Add(time.Duration(s.src.Float64() * 28 * 24 * float64(time.Hour)))
				s.d.Posts = append(s.d.Posts, &forum.Post{
					ID:          s.nextPost,
					Thread:      s.postThread(a, at),
					Author:      a.id,
					Created:     at,
					Marketplace: true,
				})
				s.nextPost++
			}
			// General (non-marketplace) posts at roughly double the rate.
			nGeneral := s.src.Poisson(2 * monthlyPostRate[a.class])
			for p := 0; p < nGeneral; p++ {
				at := monthStart.Add(time.Duration(s.src.Float64() * 28 * 24 * float64(time.Hour)))
				s.d.Posts = append(s.d.Posts, &forum.Post{
					ID: s.nextPost, Author: a.id, Created: at,
				})
				s.nextPost++
			}
		}
	}
}

// postThread returns (creating on demand) the agent's advertising thread
// for marketplace posts; small users mostly post in others' threads.
func (s *sim) postThread(a *agent, at time.Time) forum.ThreadID {
	if a.thread != 0 {
		return a.thread
	}
	createProb := 0.015
	if isPowerClass(a.class) {
		createProb = 0.8
	} else if meanLifetimeMonths[a.class] >= 4 {
		createProb = 0.10
	}
	if s.src.Bool(createProb) {
		th := &forum.Thread{
			ID:      s.nextThread,
			Author:  a.id,
			Created: at,
			Title:   fmt.Sprintf("[%s] marketplace thread #%d", a.class, int(s.nextThread)),
		}
		s.nextThread++
		s.d.Threads[th.ID] = th
		a.thread = th.ID
		return th.ID
	}
	// Post in a random existing thread, if any.
	if len(s.d.Threads) > 0 {
		idx := forum.ThreadID(1 + s.src.Intn(int(s.nextThread)-1))
		if _, ok := s.d.Threads[idx]; ok {
			return idx
		}
	}
	return 0
}

// emitContracts generates the month's contracts.
func (s *sim) emitContracts(m int) {
	n := int(math.Round(monthlyCreated[m] * s.cfg.Scale))
	shares := typeShare(dataset.Month(m))
	w := shares[:]
	for i := 0; i < n; i++ {
		typ := forum.ContractTypes[s.src.Categorical(w)]
		created := dataset.Month(m).Time().Add(time.Duration(s.src.Float64() * 28 * 24 * float64(time.Hour)))
		era := dataset.EraOf(created)
		fs := s.flowSampler(era, typ)
		f := fs.flows[s.src.Categorical(fs.weights)]
		maker := s.pickAgent(f.maker, m, 0, true)
		taker := s.pickAgent(f.taker, m, maker.id, false)
		public := s.src.Bool(publicShare[m])

		c, err := forum.NewContract(s.nextContract, typ, maker.id, taker.id, created, public)
		if err != nil {
			continue // unreachable by construction; skip defensively
		}
		s.nextContract++
		maker.made++

		ob := s.gen.generate(typ, m)
		s.applyOutcome(c, m, maker, taker, &ob)
		s.applyText(c, &ob)
		s.applyThread(c, maker)
		s.applyChainEvidence(c, &ob)

		s.truth.ValueUSD[c.ID] = ob.valueUSD
		s.truth.Category[c.ID] = ob.category
		if ob.typo {
			s.truth.TypoContracts[c.ID] = true
		}
		s.d.Contracts = append(s.d.Contracts, c)
	}
}

func (s *sim) flowSampler(e dataset.Era, t forum.ContractType) *flowSampler {
	key := [2]int{int(e), int(t)}
	fs, ok := s.flowCache[key]
	if !ok {
		fs = newFlowSampler(e, t)
		s.flowCache[key] = fs
	}
	return fs
}

// isNewcomer reports whether the agent joined within the last three months
// after the contract system matured (month 9, when contracts became
// mandatory).
func isNewcomer(a *agent, m int) bool {
	return a.joinMonth >= 9 && m-a.joinMonth <= 2
}

// Outcome indexes into statusWeights order.
const (
	outCompleted = iota
	outActive
	outDisputed
	outIncomplete
	outCancelled
	outDenied
	outExpired
)

// Completion penalties: flaky traders' deals fall through most of the
// time, and both sides of the market treat newcomers (users who joined
// after contracts became mandatory) with suspicion. The survival factor of
// a contract is the product of the applicable (1 − penalty) terms.
const (
	flakyMakerPenalty    = 0.92
	flakyTakerPenalty    = 0.70
	newcomerMakerPenalty = 0.30
	newcomerTakerPenalty = 0.20
)

// meanSurvival is the contract-weighted mean of penaltySurvival per type
// (measured empirically at calibration time); dividing the completed
// weight by it keeps aggregate completion on the Table 1 targets. Indexed
// by forum.ContractType.
var meanSurvival = [forum.NumContractTypes]float64{0.69, 0.45, 0.74, 0.72, 0.56}

// penaltySurvival returns the probability that the penalty chain leaves a
// would-be completion intact for this pairing.
func (s *sim) penaltySurvival(maker, taker *agent, m int) float64 {
	surv := 1.0
	if maker.flaky {
		surv *= 1 - flakyMakerPenalty
	} else if isNewcomer(maker, m) {
		surv *= 1 - newcomerMakerPenalty
	}
	if taker.flaky {
		surv *= 1 - flakyTakerPenalty
	} else if isNewcomer(taker, m) {
		surv *= 1 - newcomerTakerPenalty
	}
	return surv
}

func (s *sim) applyOutcome(c *forum.Contract, m int, maker, taker *agent, ob *obligation) {
	w := statusWeights(c.Type, c.Public)
	w[outDisputed] *= disputeBoost(dataset.Month(m))

	// Scale the completed probability by this pairing's penalty survival
	// relative to the type's mean survival: flaky/newcomer pairings
	// complete far less, reliable pairings more, and the aggregate lands
	// on the Table 1 target. The remaining mass is spread over the other
	// outcomes in proportion to their target weights.
	surv := s.penaltySurvival(maker, taker, m)
	qc := w[outCompleted] * surv / meanSurvival[c.Type]
	if qc > 0.95 {
		qc = 0.95
	}
	restTarget := 1 - w[outCompleted]
	scale := (1 - qc) / restTarget
	for i := range w {
		if i == outCompleted {
			w[i] = qc
		} else {
			w[i] *= scale
		}
	}

	outcome := s.src.Categorical(w[:])

	// "Active Deal" is only observable for contracts still running at the
	// end of collection.
	if outcome == outActive && c.Created.Before(dataset.StudyEnd.AddDate(0, 0, -21)) {
		outcome = outIncomplete
	}

	acceptDelay := time.Duration(math.Min(s.src.Exp(1.0/5.0), 70) * float64(time.Hour))
	acceptAt := c.Created.Add(acceptDelay)

	switch outcome {
	case outDenied:
		_ = c.Deny(acceptAt)
	case outExpired:
		_ = c.Expire(c.Created.Add(forum.ExpiryWindow + time.Hour))
	default:
		if err := c.Accept(acceptAt); err != nil {
			return
		}
		taker.accepted++
		switch outcome {
		case outActive:
			// leave running
		case outCancelled:
			_ = c.Cancel(acceptAt.Add(time.Duration(s.src.Exp(1.0/24.0) * float64(time.Hour))))
		case outIncomplete:
			if s.src.Bool(0.3) {
				_ = c.MarkComplete(forum.MakerParty, acceptAt.Add(time.Hour))
			}
			_ = c.MarkIncomplete(acceptAt.Add(200 * time.Hour))
		case outCompleted, outDisputed:
			dur := s.completionDuration(c.Type, m)
			doneAt := acceptAt.Add(dur)
			if doneAt.After(dataset.StudyEnd.Add(-time.Minute)) {
				doneAt = dataset.StudyEnd.Add(-time.Minute)
			}
			_ = c.MarkComplete(forum.MakerParty, acceptAt.Add(dur/2))
			_ = c.MarkComplete(forum.TakerParty, doneAt)
			if outcome == outDisputed {
				_ = c.Dispute(doneAt.Add(time.Hour))
				maker.disputes++
				taker.disputes++
				s.rateDisputed(c, maker, taker)
			} else {
				s.rateCompleted(c, maker, taker)
				// ~30% of completed contracts lack a recorded completion
				// date in the raw data.
				if !s.src.Bool(completionRecordedProb) {
					c.Completed = time.Time{}
				}
			}
		}
	}
}

func (s *sim) completionDuration(t forum.ContractType, m int) time.Duration {
	mean := completionMeanHours[m]
	// Log-normal with the target mean: mu = ln(mean) - sigma²/2.
	const sigma = 1.0
	h := s.src.LogNormal(math.Log(mean)-sigma*sigma/2, sigma)
	if t == forum.Trade && covidTradeNoiseMonths[dataset.Month(m)] && s.src.Bool(0.08) {
		h *= 25 // the short-lived TRADE noise peaks of Figure 4
	}
	if h > 2000 {
		h = 2000
	}
	return time.Duration(h * float64(time.Hour))
}

func (s *sim) rateCompleted(c *forum.Contract, maker, taker *agent) {
	// Maker rates taker and vice versa; positive dominates.
	if u := s.src.Float64(); u < 0.85 {
		_ = c.Rate(forum.MakerParty, forum.RatingPositive)
		taker.posRatings++
	} else if u < 0.88 {
		_ = c.Rate(forum.MakerParty, forum.RatingNegative)
		taker.negRatings++
	}
	if u := s.src.Float64(); u < 0.85 {
		_ = c.Rate(forum.TakerParty, forum.RatingPositive)
		maker.posRatings++
	} else if u < 0.88 {
		_ = c.Rate(forum.TakerParty, forum.RatingNegative)
		maker.negRatings++
	}
}

func (s *sim) rateDisputed(c *forum.Contract, maker, taker *agent) {
	if s.src.Bool(0.6) {
		_ = c.Rate(forum.MakerParty, forum.RatingNegative)
		taker.negRatings++
	}
	if s.src.Bool(0.5) {
		_ = c.Rate(forum.TakerParty, forum.RatingNegative)
		maker.negRatings++
	}
}

// applyText attaches obligation text (typos included) to the contract.
// Private contracts are blanked — the dataset, like CrimeBB, never sees
// their obligations — unless a dispute forced them public.
func (s *sim) applyText(c *forum.Contract, ob *obligation) {
	if !c.Public {
		return
	}
	makerText := ob.makerText
	if ob.valueUSD > 0 && s.src.Bool(typoProb) {
		factor := 10
		if s.src.Bool(0.3) {
			factor = 100
		}
		makerText = injectTypo(makerText, factor)
		ob.typo = true
	}
	c.MakerObligation = makerText
	c.TakerObligation = ob.takerText
}

func (s *sim) applyThread(c *forum.Contract, maker *agent) {
	if !c.Public || !s.src.Bool(threadLinkProb) {
		return
	}
	if maker.thread == 0 && s.src.Bool(0.55) && len(s.d.Threads) > 0 {
		// Not every linked thread is the maker's own advertisement; some
		// contracts reference general discussion threads elsewhere.
		idx := forum.ThreadID(1 + s.src.Intn(int(s.nextThread)-1))
		if _, ok := s.d.Threads[idx]; ok {
			c.Thread = idx
			return
		}
	}
	if maker.thread == 0 {
		th := &forum.Thread{
			ID:      s.nextThread,
			Author:  maker.id,
			Created: c.Created.Add(-24 * time.Hour),
			Title:   fmt.Sprintf("[%s] marketplace thread #%d", maker.class, int(s.nextThread)),
		}
		s.nextThread++
		s.d.Threads[th.ID] = th
		maker.thread = th.ID
	}
	c.Thread = maker.thread
}

// applyChainEvidence gives Bitcoin-denominated contracts a chance of
// quoting on-chain evidence, and records the corresponding ledger
// transaction per the §4.5 audit mix.
func (s *sim) applyChainEvidence(c *forum.Contract, ob *obligation) {
	if !c.Public || ob.valueUSD <= 0 || !c.IsComplete() {
		return
	}
	hasBTC := false
	for _, m := range ob.methods {
		if m == textmine.MBitcoin {
			hasBTC = true
		}
	}
	prob := chainEvidenceProb
	if ob.valueUSD > 800 {
		// High-value traders cite evidence far more often — which is what
		// makes the paper's §4.5 audit of >$1k contracts possible.
		prob = 0.92
	}
	if !hasBTC || !s.src.Bool(prob) {
		return
	}
	addr := chain.AddressFrom(s.src.Uint64())
	hash := chain.HashFrom(s.src.Uint64(), s.src.Uint64())
	c.BTCAddress = string(addr)
	c.TxHash = hash

	u := s.src.Float64()
	completedAt := c.Completed
	if completedAt.IsZero() {
		completedAt = c.Created.Add(24 * time.Hour)
	}
	switch {
	case u < auditConfirmedProb:
		// On-chain value matches the declaration (±2%). Typos are always
		// mismatches: the chain holds the intended value.
		v := ob.valueUSD * (0.98 + 0.04*s.src.Float64())
		s.recordTx(c, addr, hash, v, completedAt)
	case u < auditConfirmedProb+auditMismatchProb:
		// Privately renegotiated: usually lower, occasionally higher, but
		// never past the market's observed value ceiling.
		factor := 0.2 + 0.7*s.src.Float64()
		if s.src.Bool(0.15) {
			factor = 1.2 + 0.6*s.src.Float64()
		}
		usd := ob.valueUSD * factor
		if usd > 9900 {
			usd = 9900
		}
		s.recordTx(c, addr, hash, usd, completedAt)
	default:
		// No matching transaction: the "could not be confirmed" slice.
	}
}

func (s *sim) recordTx(c *forum.Contract, addr chain.Address, hash string, usd float64, at time.Time) {
	tx := chain.Tx{Hash: hash, From: chain.AddressFrom(s.src.Uint64()), To: addr, ValueUSD: usd, Time: at}
	if err := s.d.Ledger.Record(tx); err == nil {
		s.truth.LedgerValue[c.ID] = usd
	}
}

// finishUsers materialises forum.User records from the agents.
func (s *sim) finishUsers() {
	postCount := make(map[forum.UserID]int)
	mPostCount := make(map[forum.UserID]int)
	firstPost := make(map[forum.UserID]time.Time)
	for _, p := range s.d.Posts {
		postCount[p.Author]++
		if p.Marketplace {
			mPostCount[p.Author]++
		}
		if t, ok := firstPost[p.Author]; !ok || p.Created.Before(t) {
			firstPost[p.Author] = p.Created
		}
	}
	for _, a := range s.agents {
		joined := dataset.Month(a.joinMonth).Time().Add(time.Duration(s.src.Float64() * 20 * 24 * float64(time.Hour)))
		fp := firstPost[a.id]
		// SET-UP joiners mostly had a forum presence predating the contract
		// system (the paper's reputation-score observation).
		if a.joinMonth < 9 && s.src.Bool(0.7) {
			joined = dataset.SetupStart.AddDate(0, 0, -s.src.Intn(700)-30)
			if fp.IsZero() || joined.Before(fp) {
				fp = joined.Add(24 * time.Hour)
			}
		}
		rep := a.posRatings - a.negRatings + postCount[a.id]/10
		if a.joinMonth < 9 {
			rep += 40 + s.src.Intn(120) // pre-existing reputation
		} else {
			rep += s.src.Intn(30)
		}
		s.d.Users[a.id] = &forum.User{
			ID:               a.id,
			Joined:           joined,
			FirstPost:        fp,
			Posts:            postCount[a.id],
			MarketplacePosts: mPostCount[a.id],
			Reputation:       rep,
			MarketKind:       int(a.class),
		}
	}
}
