package ring

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"turnup/internal/obs"
)

// HealthOptions configures the ring's shard health checker.
type HealthOptions struct {
	Interval  time.Duration // probe period (default 2s)
	Timeout   time.Duration // per-probe deadline (default 1s)
	FailAfter int           // consecutive failures before ejection (default 2)
	Client    *http.Client  // probe client (default: fresh client with Timeout)
	Metrics   *obs.Registry // router_shard_healthy gauges + ejection counters (nil = none-safe fresh registry)
	Log       *obs.Logger   // ejection/readmission events (nil-safe)
}

// HealthChecker drives ring membership from GET /healthz probes: a shard
// answering non-200 (or not answering) FailAfter times in a row is
// ejected — its keys fail over to their clockwise successors — and a
// single successful probe readmits it, restoring the original
// assignment. Probes for all shards run concurrently so one hung shard
// cannot delay detection on the others.
type HealthChecker struct {
	ring   *Ring
	opts   HealthOptions
	client *http.Client
	reg    *obs.Registry

	mu    sync.Mutex
	fails map[string]int
}

// NewHealthChecker builds a checker over ring (see HealthOptions for
// defaults). Call Run to start probing.
func NewHealthChecker(ring *Ring, opts HealthOptions) *HealthChecker {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = time.Second
	}
	if opts.FailAfter <= 0 {
		opts.FailAfter = 2
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Timeout}
	}
	h := &HealthChecker{ring: ring, opts: opts, client: client, reg: opts.Metrics, fails: make(map[string]int)}
	for _, s := range ring.Shards() {
		h.gauge(s, true)
	}
	return h
}

// Run probes until ctx is cancelled. It blocks; callers run it in a
// goroutine. One probe round fires immediately so a dead shard is
// ejected within FailAfter×Interval of boot, not one interval later.
func (h *HealthChecker) Run(ctx context.Context) {
	t := time.NewTicker(h.opts.Interval)
	defer t.Stop()
	for {
		h.probeAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// probeAll probes every shard concurrently and applies the results.
func (h *HealthChecker) probeAll(ctx context.Context) {
	shards := h.ring.Shards()
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(shard string) {
			defer wg.Done()
			h.apply(shard, h.probe(ctx, shard))
		}(s)
	}
	wg.Wait()
}

// probe issues one GET /healthz against shard.
func (h *HealthChecker) probe(ctx context.Context, shard string) error {
	ctx, cancel := context.WithTimeout(ctx, h.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", shard+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// apply folds one probe outcome into the failure counts and the ring.
func (h *HealthChecker) apply(shard string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err == nil {
		h.fails[shard] = 0
		if h.ring.SetHealthy(shard, true) {
			h.reg.Counter("router_shard_readmissions_total").Inc()
			h.gauge(shard, true)
			h.opts.Log.Log("shard_readmitted", obs.F("shard", shard))
		}
		return
	}
	h.fails[shard]++
	if h.fails[shard] >= h.opts.FailAfter && h.ring.SetHealthy(shard, false) {
		h.reg.Counter("router_shard_ejections_total").Inc()
		h.gauge(shard, false)
		h.opts.Log.Log("shard_ejected",
			obs.F("shard", shard), obs.F("fails", h.fails[shard]), obs.F("err", err.Error()))
	}
}

// gauge publishes the per-shard health bit.
func (h *HealthChecker) gauge(shard string, healthy bool) {
	v := 0.0
	if healthy {
		v = 1
	}
	h.reg.Gauge(fmt.Sprintf(`router_shard_healthy{shard=%q}`, shard)).Set(v)
}
