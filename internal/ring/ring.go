// Package ring is the sharded serving tier behind cmd/hfrouter: a
// consistent-hash ring over a static shard list (replicated virtual
// nodes, health-check-driven ejection and readmission) and an HTTP
// router that forwards /v1/* traffic to the owning shard with bounded
// retry, hedged requests for hot report keys, and replicated dataset
// uploads. Each report key and each dataset digest has exactly one
// owning shard, so N shards hold N disjoint result caches and dataset
// stores instead of N copies of one — cache capacity and cold-run
// throughput scale with the shard count. See DESIGN.md §3.6.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// point is one virtual node: a position on the 64-bit hash circle and
// the shard it belongs to.
type point struct {
	hash  uint64
	shard int // index into Ring.shards
}

// Ring is a consistent-hash ring over a static shard membership with
// dynamic health. Every shard contributes VNodes virtual nodes placed by
// hashing "<shard>#<i>"; a key's owner is the first virtual node at or
// clockwise after the key's hash whose shard is healthy. Ejecting a
// shard does not move any other shard's points, so only the ejected
// shard's keys are reassigned (to their clockwise successors) and
// readmission restores exactly the original assignment — the property
// the result caches depend on.
type Ring struct {
	shards []string
	points []point // sorted by hash

	mu      sync.RWMutex
	healthy []bool
}

// hash64 places a label on the circle: the first 8 bytes of its SHA-256.
// Uniformity matters more than speed here — points are hashed once at
// construction and keys are short strings.
func hash64(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// New builds a ring over shards with vnodes virtual nodes each (<=0
// means 128). All shards start healthy. Shard names must be non-empty
// and unique — they are both ring labels and dial targets.
func New(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("ring: no shards")
	}
	if vnodes <= 0 {
		vnodes = 128
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("ring: empty shard name")
		}
		if seen[s] {
			return nil, fmt.Errorf("ring: duplicate shard %q", s)
		}
		seen[s] = true
	}
	r := &Ring{
		shards:  append([]string(nil), shards...),
		points:  make([]point, 0, len(shards)*vnodes),
		healthy: make([]bool, len(shards)),
	}
	for i := range r.healthy {
		r.healthy[i] = true
	}
	for si, s := range r.shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", s, v)), shard: si})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// Shards returns the static membership in declaration order.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// SetHealthy marks shard as healthy or ejected; unknown names are
// ignored. Returns true when the state changed.
func (r *Ring) SetHealthy(shard string, healthy bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, s := range r.shards {
		if s == shard {
			if r.healthy[i] == healthy {
				return false
			}
			r.healthy[i] = healthy
			return true
		}
	}
	return false
}

// Healthy reports whether shard is currently admitted.
func (r *Ring) Healthy(shard string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i, s := range r.shards {
		if s == shard {
			return r.healthy[i]
		}
	}
	return false
}

// HealthyShards returns the admitted members in declaration order.
func (r *Ring) HealthyShards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.shards))
	for i, s := range r.shards {
		if r.healthy[i] {
			out = append(out, s)
		}
	}
	return out
}

// Owner returns the healthy shard owning key, or "" when every shard is
// ejected.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct healthy shards for key in ring order:
// the owner first, then the successors a retry, hedge, or replica write
// should try next. Fewer than n are returned when fewer are healthy.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !r.healthy[p.shard] || taken[p.shard] {
			continue
		}
		taken[p.shard] = true
		out = append(out, r.shards[p.shard])
	}
	return out
}
