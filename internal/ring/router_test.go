// Integration tests for the routing tier: two real serve.Servers behind
// a Router — uploads land on the digest's owning shard, dataset reports
// proxy cross-shard to where the dataset lives, report keys spread across
// shards, connection failures retry onto the ring successor, a stalled
// owner is hedged (the second shard's response wins and is marked
// X-Hedged), and the health checker ejects a dead shard. Race-clean.
package ring_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"turnup"
	"turnup/internal/dataset"
	"turnup/internal/ring"
	"turnup/internal/serve"
)

var (
	resOnce sync.Once
	res     *turnup.Results
	resErr  error
)

// stubResults generates one small result set shared by every stub shard.
func stubResults(t testing.TB) *turnup.Results {
	t.Helper()
	resOnce.Do(func() {
		var d *turnup.Dataset
		if d, resErr = turnup.Generate(turnup.Config{Seed: 7, Scale: 0.01}); resErr != nil {
			return
		}
		res, resErr = turnup.Run(d, turnup.RunOptions{Seed: 7, SkipModels: true})
	})
	if resErr != nil {
		t.Fatal(resErr)
	}
	return res
}

// cluster is the two-shard fixture: real serve.Servers (stub runner)
// behind a Router with test-friendly timings.
type cluster struct {
	router   *ring.Router
	rts      *httptest.Server // the router's listener
	shards   [2]*serve.Server
	shardTS  [2]*httptest.Server
	shardURL [2]string
	stall    atomic.Value // shard URL whose report handling sleeps
}

func newCluster(t *testing.T, opts ring.RouterOptions) *cluster {
	t.Helper()
	c := &cluster{}
	c.stall.Store("")
	results := stubResults(t)
	for i := 0; i < 2; i++ {
		i := i
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/report") && c.stall.Load() == c.shardURL[i] {
				time.Sleep(400 * time.Millisecond)
			}
			c.shards[i].ServeHTTP(w, r)
		})
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close) // Close is idempotent; tests may close early
		c.shardTS[i] = ts
		c.shardURL[i] = ts.URL
		c.shards[i] = serve.New(serve.Options{
			Shard: ts.URL,
			Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
				return results, nil
			},
		})
	}
	opts.Shards = c.shardURL[:]
	router, err := ring.NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.router = router
	c.rts = httptest.NewServer(router)
	t.Cleanup(c.rts.Close)
	return c
}

// uploadBody builds a multipart CSV-pair body for d.
func uploadBody(t *testing.T, d *turnup.Dataset) (string, []byte) {
	t.Helper()
	var cb, ub bytes.Buffer
	if err := dataset.WriteContractsCSV(&cb, d.Contracts); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteUsersCSV(&ub, d.Users); err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for _, f := range []struct {
		field string
		data  []byte
	}{{"contracts", cb.Bytes()}, {"users", ub.Bytes()}} {
		fw, err := mw.CreateFormFile(f.field, f.field+".csv")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(f.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return mw.FormDataContentType(), body.Bytes()
}

func TestRouterUploadAndDatasetReportRouting(t *testing.T) {
	c := newCluster(t, ring.RouterOptions{})
	d, err := turnup.Generate(turnup.Config{Seed: 11, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	digest, _ := d.Digest()
	owner := c.router.Ring().Owner(serve.DatasetID(digest))

	ct, raw := uploadBody(t, d)
	resp, err := http.Post(c.rts.URL+"/v1/datasets?format=json", ct, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("routed upload status=%d body=%q", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Shard"); got != owner {
		t.Fatalf("upload answered by %s, want ring owner %s", got, owner)
	}
	var up struct {
		Dataset serve.DatasetInfo `json:"dataset"`
	}
	if err := json.Unmarshal(body, &up); err != nil || up.Dataset.ID == "" {
		t.Fatalf("upload body %q: %v", body, err)
	}

	// The dataset lives on the owning shard only (rf=1).
	for i, s := range c.shards {
		want := 0
		if c.shardURL[i] == owner {
			want = 1
		}
		if got := s.Datasets().Len(); got != want {
			t.Fatalf("shard %s stores %d datasets, want %d", c.shardURL[i], got, want)
		}
	}

	// A ?dataset= report routes by the same token, so it lands where the
	// upload did — cross-shard proxying is exercised whenever the client's
	// arbitrary choice of router ≠ owner.
	rurl := fmt.Sprintf("%s/v1/report/growth?dataset=%s&models=false", c.rts.URL, up.Dataset.ID)
	resp2, err := http.Get(rurl)
	if err != nil {
		t.Fatal(err)
	}
	rbody, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("routed dataset report status=%d body=%q", resp2.StatusCode, rbody)
	}
	if got := resp2.Header.Get("X-Shard"); got != owner {
		t.Fatalf("dataset report answered by %s, want %s (where the dataset lives)", got, owner)
	}
	if !bytes.Contains(rbody, []byte("Figure 1")) {
		t.Fatalf("routed report body unexpected:\n%s", rbody)
	}

	// The merged listing sees it regardless of which shard holds it, with
	// the holder annotated.
	resp3, err := http.Get(c.rts.URL + "/v1/datasets?format=json")
	if err != nil {
		t.Fatal(err)
	}
	lbody, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	var list struct {
		Datasets []serve.DatasetInfo `json:"datasets"`
	}
	if err := json.Unmarshal(lbody, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].ID != up.Dataset.ID || list.Datasets[0].Shard != owner {
		t.Fatalf("merged listing = %s", lbody)
	}

	// DELETE routes by the same id; the dataset disappears everywhere.
	req, _ := http.NewRequest(http.MethodDelete, c.rts.URL+"/v1/datasets/"+up.Dataset.ID, nil)
	resp4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNoContent {
		t.Fatalf("routed delete status=%d", resp4.StatusCode)
	}
	for i, s := range c.shards {
		if s.Datasets().Len() != 0 {
			t.Fatalf("shard %s still stores a dataset after routed delete", c.shardURL[i])
		}
	}
}

func TestRouterSpreadsReportKeys(t *testing.T) {
	c := newCluster(t, ring.RouterOptions{})
	seen := map[string]bool{}
	for seed := 1; seed <= 32 && len(seen) < 2; seed++ {
		url := fmt.Sprintf("%s/v1/report/growth?seed=%d&models=false", c.rts.URL, seed)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d status=%d", seed, resp.StatusCode)
		}
		shard := resp.Header.Get("X-Shard")
		if shard == "" {
			t.Fatal("routed response missing X-Shard")
		}
		// The router must agree with its own ring about who owns the key.
		req, _ := http.NewRequest("GET", url, nil)
		if want := c.router.Ring().Owner(serve.RouteKey(req, 0.05, 12)); shard != want {
			t.Fatalf("seed %d answered by %s, ring owner is %s", seed, shard, want)
		}
		seen[shard] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 distinct report keys all routed to one shard: %v", seen)
	}
}

func TestRouterRetriesOntoSuccessor(t *testing.T) {
	c := newCluster(t, ring.RouterOptions{RetryBackoff: time.Millisecond})
	// Kill shard 0's listener without telling the ring: forwards to it now
	// fail at the connection level, and the router must retry clockwise.
	deadURL := c.shardURL[0]
	// Find a seed owned by the dead shard.
	var url string
	for seed := 1; seed <= 64; seed++ {
		u := fmt.Sprintf("/v1/report/growth?seed=%d&models=false", seed)
		req, _ := http.NewRequest("GET", u, nil)
		if c.router.Ring().Owner(serve.RouteKey(req, 0.05, 12)) == deadURL {
			url = u
			break
		}
	}
	if url == "" {
		t.Fatal("no seed in 1..64 owned by shard 0; degenerate fixture")
	}
	c.shardTS[0].Close()

	resp, err := http.Get(c.rts.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retried request status=%d body=%q", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Shard"); got != c.shardURL[1] {
		t.Fatalf("retried request answered by %q, want the surviving shard %s", got, c.shardURL[1])
	}
}

func TestRouterHedgesStalledOwner(t *testing.T) {
	c := newCluster(t, ring.RouterOptions{
		HedgeDelay:   10 * time.Millisecond,
		HotThreshold: 1, // every key is hot: hedging is the subject here
		RetryBackoff: time.Millisecond,
	})
	// Pick a report key owned by shard 0, then stall shard 0's report path.
	var url string
	for seed := 1; seed <= 64; seed++ {
		u := fmt.Sprintf("/v1/report/growth?seed=%d&models=false", seed)
		req, _ := http.NewRequest("GET", u, nil)
		if c.router.Ring().Owner(serve.RouteKey(req, 0.05, 12)) == c.shardURL[0] {
			url = u
			break
		}
	}
	if url == "" {
		t.Fatal("no seed owned by shard 0")
	}
	other := c.shardURL[1]
	c.stall.Store(c.shardURL[0])

	start := time.Now()
	resp, err := http.Get(c.rts.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request status=%d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Shard"); got != other {
		t.Fatalf("hedged request answered by %s, want the unstalled shard %s", got, other)
	}
	if resp.Header.Get("X-Hedged") != "true" {
		t.Fatal("winning hedged response is not marked X-Hedged")
	}
	// The win must beat the 400ms stall — that is the point of hedging.
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("hedged request took %s; the stall was not raced", elapsed)
	}
}

func TestHealthCheckerEjectsDeadShard(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer live.Close()
	r, err := ring.New([]string{dead.URL, live.URL}, 64)
	if err != nil {
		t.Fatal(err)
	}
	dead.Close() // probes now fail at the connection level

	hc := ring.NewHealthChecker(r, ring.HealthOptions{
		Interval:  10 * time.Millisecond,
		Timeout:   200 * time.Millisecond,
		FailAfter: 2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go hc.Run(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for r.Healthy(dead.URL) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Healthy(dead.URL) {
		t.Fatal("dead shard was not ejected")
	}
	if !r.Healthy(live.URL) {
		t.Fatal("live shard was ejected alongside the dead one")
	}
	if owner := r.Owner("any-key"); owner != live.URL {
		t.Fatalf("post-ejection owner = %q, want the live shard", owner)
	}
}
