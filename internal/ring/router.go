package ring

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"turnup"
	"turnup/internal/obs"
	"turnup/internal/serve"
	"turnup/internal/version"
)

// RouterOptions configures a Router. The zero value is unusable — at
// least Shards is required; everything else defaults sanely.
type RouterOptions struct {
	Shards []string // shard base URLs (also their ring names), e.g. http://127.0.0.1:8101
	VNodes int      // virtual nodes per shard (default 128)

	// RF is the dataset replication factor: uploads are written to the
	// owner plus RF-1 ring successors, so an ejection does not lose the
	// only copy (default 1 — owner only).
	RF int
	// Retries bounds additional attempts after a connection error or a
	// retryable (shutting_down) shard response (default 2). Each retry
	// targets the next distinct shard clockwise and backs off first.
	Retries int
	// RetryBackoff is the first retry's delay; it doubles per attempt
	// (default 25ms).
	RetryBackoff time.Duration
	// HedgeDelay floors the hedged-request delay and stands in for it
	// until enough report latencies accumulate to derive a p99
	// (default 100ms).
	HedgeDelay time.Duration
	// HotThreshold is how many times a report key must be seen before
	// its requests are hedged (default 3); hedging every one-off key
	// would double cold-run load for no latency win.
	HotThreshold int

	// DefaultScale / DefaultK mirror the shards' parameter defaults so
	// an implicit and an explicit default route to the same shard
	// (defaults 0.05 / 12, hfserved's own).
	DefaultScale float64
	DefaultK     int
	// MaxDatasetBytes bounds upload bodies at the router, mirroring the
	// shards' limit (default 256 MiB).
	MaxDatasetBytes int64

	Client    *http.Client  // forwarding client (default: 120s timeout)
	Metrics   *obs.Registry // router_* metrics; fresh when nil
	AccessLog *obs.Logger   // one line per routed request (nil-safe)
}

// Router is the consistent-hash routing tier: an http.Handler that owns
// a Ring and forwards /v1/* requests to owning shards. It serves its own
// /healthz (ring membership view) and /metrics; everything else is
// proxied. Request ids propagate end to end: an inbound X-Request-Id is
// honoured (sanitised), the id is forwarded to the shard and echoed on
// the router's response, so client, router log, and shard log join on
// one id.
type Router struct {
	opts   RouterOptions
	ring   *Ring
	client *http.Client
	reg    *obs.Registry
	mux    *http.ServeMux
	start  time.Time
	hot    hotTracker
}

// NewRouter builds a Router over opts.Shards. Health probing is separate
// — wire a HealthChecker to Ring() — so tests can drive membership
// directly.
func NewRouter(opts RouterOptions) (*Router, error) {
	ring, err := New(opts.Shards, opts.VNodes)
	if err != nil {
		return nil, err
	}
	if opts.RF <= 0 {
		opts.RF = 1
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 25 * time.Millisecond
	}
	if opts.HedgeDelay <= 0 {
		opts.HedgeDelay = 100 * time.Millisecond
	}
	if opts.HotThreshold <= 0 {
		opts.HotThreshold = 3
	}
	if opts.DefaultScale <= 0 {
		opts.DefaultScale = 0.05
	}
	if opts.DefaultK <= 0 {
		opts.DefaultK = 12
	}
	if opts.MaxDatasetBytes <= 0 {
		opts.MaxDatasetBytes = 256 << 20
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 120 * time.Second}
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	rt := &Router{
		opts:   opts,
		ring:   ring,
		client: opts.Client,
		reg:    opts.Metrics,
		mux:    http.NewServeMux(),
		start:  time.Now(),
		hot:    hotTracker{counts: make(map[string]int)},
	}
	rt.reg.Gauge(fmt.Sprintf(`turnup_build_info{version=%q}`, version.String())).Set(1)
	rt.mux.HandleFunc("GET /v1/report", rt.handleReport)
	rt.mux.HandleFunc("GET /v1/report/{section}", rt.handleReport)
	rt.mux.HandleFunc("POST /v1/datasets", rt.handleUpload)
	rt.mux.HandleFunc("GET /v1/datasets", rt.handleList)
	rt.mux.HandleFunc("DELETE /v1/datasets/{id}", rt.handleDelete)
	rt.mux.HandleFunc("POST /v1/datasets/{id}/events", rt.handleEvents)
	rt.mux.HandleFunc("GET /v1/sections", rt.handleVocab)
	rt.mux.HandleFunc("GET /v1/stages", rt.handleVocab)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.Handle("GET /metrics", obs.MetricsHandler(rt.reg))
	return rt, nil
}

// Ring exposes the membership (health checker wiring and tests).
func (rt *Router) Ring() *Ring { return rt.ring }

// statusWriter mirrors serve's: response code + bytes for the log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// ServeHTTP applies the request-observability contract (same as the
// shard tier: id, per-route metrics, access log) and dispatches.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := serve.RequestID(r)
	rt.reg.Counter("router_http_requests_total").Inc()
	rt.reg.Gauge("router_http_inflight").Add(1)
	rw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	rw.Header().Set("X-Request-Id", id)
	start := time.Now()
	rt.mux.ServeHTTP(rw, requestWithID(r, id))
	dur := time.Since(start)
	route := serve.RouteLabel(r.URL.Path)
	rt.reg.Histogram(fmt.Sprintf(`router_http_request_seconds{route=%q,status="%d"}`, route, rw.code)).Observe(dur.Seconds())
	rt.reg.Gauge("router_http_inflight").Add(-1)
	if rw.code >= 400 {
		rt.reg.Counter("router_http_errors_total").Inc()
	}
	rt.opts.AccessLog.Log("route",
		obs.F("id", id),
		obs.F("method", r.Method),
		obs.F("route", route),
		obs.F("path", r.URL.Path),
		obs.F("status", rw.code),
		obs.F("bytes", rw.bytes),
		obs.F("dur_ms", float64(dur)/float64(time.Millisecond)),
		obs.F("shard", rw.Header().Get("X-Shard")),
		obs.F("hedged", rw.Header().Get("X-Hedged") != ""),
	)
}

// requestWithID stamps id into the forwarded header set and the context,
// so handlers and the proxied request agree on it.
func requestWithID(r *http.Request, id string) *http.Request {
	r2 := r.Clone(r.Context())
	r2.Header.Set("X-Request-Id", id)
	return serve.RequestWithID(r2, id)
}

// meta assembles the router's own envelope metadata (its error responses
// and /healthz; proxied responses carry the shard's).
func (rt *Router) meta(r *http.Request) serve.Meta {
	return serve.Meta{RequestID: serve.RequestIDFromContext(r.Context()), Version: version.String()}
}

// fail writes the shared API v1 error envelope.
func (rt *Router) fail(w http.ResponseWriter, r *http.Request, status int, code, message string) {
	serve.WriteError(w, r, status, code, message, rt.meta(r))
}

// forward issues one proxied request: the inbound method, path, and
// query against shard's base URL, headers copied (hop-by-hop dropped),
// the expected owner stamped for the shard-side misroute check.
func (rt *Router) forward(ctx context.Context, shard string, r *http.Request, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, shard+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	for k, vv := range r.Header {
		if k == "Connection" || k == "Keep-Alive" || k == "Upgrade" {
			continue
		}
		req.Header[k] = vv
	}
	req.Header.Set("X-Expected-Shard", shard)
	start := time.Now()
	resp, err := rt.client.Do(req)
	rt.reg.Histogram(fmt.Sprintf(`router_proxy_seconds{shard=%q}`, shard)).Observe(time.Since(start).Seconds())
	if err != nil {
		rt.reg.Counter("router_forward_errors_total").Inc()
	}
	return resp, err
}

// retryableResp reports whether a shard response marks a failure worth
// trying on the next shard — the structured error contract's payoff: the
// router branches on X-Error-Code, never on message prose.
func retryableResp(resp *http.Response) bool {
	return resp.StatusCode >= 500 && serve.RetryableCode(resp.Header.Get("X-Error-Code"))
}

// relay copies a shard response to the client. X-Request-Id is already
// set (same id — the shard echoes what the router forwarded); X-Shard is
// backfilled for shards running without -shard.
func relay(w http.ResponseWriter, resp *http.Response, shard string, hedged bool) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vv := range resp.Header {
		if k == "X-Request-Id" || k == "Connection" {
			continue
		}
		h[k] = vv
	}
	if h.Get("X-Shard") == "" {
		h.Set("X-Shard", shard)
	}
	if hedged {
		h.Set("X-Hedged", "true")
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// outcome is one forwarding attempt's result.
type outcome struct {
	resp   *http.Response
	err    error
	shard  string
	hedged bool
}

// proxy forwards r to the candidate shards with bounded retry and, when
// hedge is set, a second racing request to the next shard once the
// hedge delay elapses without a primary response. The first acceptable
// response wins; losers are cancelled and drained. body is replayed per
// attempt (nil for GETs).
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, cands []string, body []byte, hedge bool) {
	if len(cands) == 0 {
		rt.fail(w, r, http.StatusServiceUnavailable, serve.CodeShardUnavailable, "no healthy shard")
		return
	}
	maxAttempts := rt.opts.Retries + 1

	results := make(chan outcome, maxAttempts+1)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	inflight := 0
	next := 0 // next candidate index to try
	launch := func(hedged bool) {
		shard := cands[next%len(cands)]
		next++
		inflight++
		ctx, cancel := context.WithCancel(r.Context())
		cancels = append(cancels, cancel)
		go func() {
			resp, err := rt.forward(ctx, shard, r, body)
			results <- outcome{resp: resp, err: err, shard: shard, hedged: hedged}
		}()
	}

	launch(false)
	attempts := 1
	hedgeFired := false
	var hedgeTimer <-chan time.Time
	if hedge && len(cands) > 1 {
		hedgeTimer = time.After(rt.hedgeDelay())
	}
	for {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			if next < len(cands) {
				hedgeFired = true
				rt.reg.Counter("router_hedges_total").Inc()
				launch(true)
			}
		case out := <-results:
			inflight--
			acceptable := out.err == nil && !retryableResp(out.resp)
			if acceptable {
				if out.hedged {
					rt.reg.Counter("router_hedge_wins_total").Inc()
				}
				relay(w, out.resp, out.shard, hedgeFired)
				// Drain any straggler so its connection is reusable.
				for ; inflight > 0; inflight-- {
					go func() {
						if s := <-results; s.resp != nil {
							io.Copy(io.Discard, s.resp.Body)
							s.resp.Body.Close()
						}
					}()
				}
				return
			}
			if out.resp != nil {
				io.Copy(io.Discard, out.resp.Body)
				out.resp.Body.Close()
			}
			// Retry on the next shard clockwise, if budget and candidates
			// remain; a hedged attempt already in flight still counts as
			// hope, so only give up when nothing is pending.
			if attempts < maxAttempts && next < len(cands) {
				rt.reg.Counter("router_retries_total").Inc()
				backoff := rt.opts.RetryBackoff << (attempts - 1)
				select {
				case <-time.After(backoff):
				case <-r.Context().Done():
					rt.fail(w, r, http.StatusServiceUnavailable, serve.CodeShardUnavailable, "client gone during retry")
					return
				}
				attempts++
				launch(false)
				continue
			}
			if inflight == 0 {
				status := http.StatusServiceUnavailable
				msg := "all shard attempts failed"
				if out.err != nil {
					msg = out.err.Error()
				}
				rt.fail(w, r, status, serve.CodeShardUnavailable, msg)
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// hedgeDelay derives the hedge trigger from observed report latency: the
// p99 of router_report_seconds once it has enough samples, floored (and
// stood in for, before that) by the configured HedgeDelay, capped at 2s.
func (rt *Router) hedgeDelay() time.Duration {
	h := rt.reg.Histogram("router_report_seconds")
	if h.Count() >= 32 {
		if p99 := h.Quantile(0.99); p99 > 0 {
			d := time.Duration(p99 * float64(time.Second))
			if d < rt.opts.HedgeDelay {
				d = rt.opts.HedgeDelay
			}
			if d > 2*time.Second {
				d = 2 * time.Second
			}
			return d
		}
	}
	return rt.opts.HedgeDelay
}

// hotTracker counts report-key sightings with bounded amnesia: the map
// resets once it holds 8192 keys, so a key-scanning client cannot grow
// it without bound and steady hot keys re-qualify within a few requests.
type hotTracker struct {
	mu     sync.Mutex
	counts map[string]int
}

// touch records one sighting and returns the running count.
func (t *hotTracker) touch(key string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.counts) >= 8192 {
		t.counts = make(map[string]int)
	}
	t.counts[key]++
	return t.counts[key]
}

// handleReport routes GET /v1/report* by the shared routing key. Hot
// keys (seen HotThreshold+ times) are hedged: reports are idempotent
// reads, so racing a second shard trades duplicate work for tail
// latency, exactly the "hot key during a demand spike" case.
func (rt *Router) handleReport(w http.ResponseWriter, r *http.Request) {
	key := serve.RouteKey(r, rt.opts.DefaultScale, rt.opts.DefaultK)
	hot := rt.hot.touch(key) >= rt.opts.HotThreshold
	cands := rt.ring.Owners(key, rt.opts.Retries+2)
	start := time.Now()
	rt.proxy(w, r, cands, nil, hot)
	rt.reg.Histogram("router_report_seconds").Observe(time.Since(start).Seconds())
}

// handleVocab proxies the static registries (/v1/sections, /v1/stages)
// to the key-owner of the path — identical on every shard, so the path
// is as good a spreading key as any.
func (rt *Router) handleVocab(w http.ResponseWriter, r *http.Request) {
	rt.proxy(w, r, rt.ring.Owners(r.URL.Path, rt.opts.Retries+1), nil, false)
}

// handleUpload parses the upload enough to digest it, then forwards the
// raw body to the digest's owner (and RF-1 successors). Parsing at the
// router is the price of content-addressed ownership: the shard a
// dataset lives on must be a pure function of its bytes, or ?dataset=
// reports could not be routed without a directory service.
func (rt *Router) handleUpload(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, rt.opts.MaxDatasetBytes)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		status, code := serve.UploadFailure(err)
		rt.fail(w, r, status, code, err.Error())
		return
	}
	pr := r.Clone(r.Context())
	pr.Body = io.NopCloser(bytes.NewReader(raw))
	d, err := serve.DecodeUpload(w, pr, rt.opts.MaxDatasetBytes)
	if err != nil {
		status, code := serve.UploadFailure(err)
		rt.fail(w, r, status, code, err.Error())
		return
	}
	digest, _ := d.Digest()
	key := serve.DatasetID(digest)
	owners := rt.ring.Owners(key, rt.opts.RF)
	if len(owners) == 0 {
		rt.fail(w, r, http.StatusServiceUnavailable, serve.CodeShardUnavailable, "no healthy shard")
		return
	}
	// Replicas first (concurrently, errors counted but not fatal — the
	// owner's response is the contract), then the owner's answer relays.
	// Replicas receive the compact binary form — already parsed, the
	// encode is cheap, and RF-1 copies of a CSV/zip body are the larger
	// fan-out cost — under a cloned request carrying the binary
	// Content-Type. The owner gets the client's original bytes, so its
	// response reflects exactly what was uploaded.
	var wg sync.WaitGroup
	if len(owners) > 1 {
		var bin bytes.Buffer
		if err := turnup.WriteBinary(&bin, d); err != nil {
			rt.fail(w, r, http.StatusInternalServerError, serve.CodeInternal, err.Error())
			return
		}
		rr := r.Clone(r.Context())
		rr.Header = r.Header.Clone()
		rr.Header.Set("Content-Type", turnup.ContentTypeBinary)
		rr.Header.Del("Content-Length")
		for _, replica := range owners[1:] {
			wg.Add(1)
			go func(shard string) {
				defer wg.Done()
				resp, err := rt.forward(rr.Context(), shard, rr, bin.Bytes())
				if err != nil {
					rt.reg.Counter("router_replica_errors_total").Inc()
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 400 {
					rt.reg.Counter("router_replica_errors_total").Inc()
				}
			}(replica)
		}
	}
	rt.proxy(w, r, owners[:1], raw, false)
	wg.Wait()
}

// handleEvents routes POST /v1/datasets/{id}/events by the dataset id —
// the same key uploads and reports route by, so an append always lands on
// the shard holding the dataset it extends. Like uploads, the raw body is
// replayed to the RF-1 replica successors (concurrently; failures counted,
// not fatal) so replicas advance generation in step with the owner, and
// the owner's response is the contract.
func (rt *Router) handleEvents(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, rt.opts.MaxDatasetBytes)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		status, code := serve.UploadFailure(err)
		rt.fail(w, r, status, code, err.Error())
		return
	}
	id := r.PathValue("id")
	owners := rt.ring.Owners(id, rt.opts.RF)
	if len(owners) == 0 {
		rt.fail(w, r, http.StatusServiceUnavailable, serve.CodeShardUnavailable, "no healthy shard")
		return
	}
	var wg sync.WaitGroup
	for _, replica := range owners[1:] {
		wg.Add(1)
		go func(shard string) {
			defer wg.Done()
			resp, err := rt.forward(r.Context(), shard, r, raw)
			if err != nil {
				rt.reg.Counter("router_replica_errors_total").Inc()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 400 {
				rt.reg.Counter("router_replica_errors_total").Inc()
			}
		}(replica)
	}
	rt.proxy(w, r, owners[:1], raw, false)
	wg.Wait()
}

// handleDelete routes DELETE /v1/datasets/{id} to every shard that could
// hold a copy (owner plus RF-1 successors); the owner's status answers.
func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	owners := rt.ring.Owners(id, rt.opts.RF)
	if len(owners) == 0 {
		rt.fail(w, r, http.StatusServiceUnavailable, serve.CodeShardUnavailable, "no healthy shard")
		return
	}
	for _, replica := range owners[1:] {
		resp, err := rt.forward(r.Context(), replica, r, nil)
		if err != nil {
			rt.reg.Counter("router_replica_errors_total").Inc()
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	rt.proxy(w, r, owners[:1], nil, false)
}

// mergedList is the router's GET /v1/datasets body: the union of every
// healthy shard's stored datasets, deduplicated by digest, each entry
// annotated with the shard holding it.
type mergedList struct {
	serve.Meta
	Datasets []serve.DatasetInfo `json:"datasets"`
}

// handleList scatter-gathers the dataset listing across healthy shards.
// Shards are asked for JSON regardless of what the client negotiated;
// the router re-renders the merged union in the client's format.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	shards := rt.ring.HealthyShards()
	if len(shards) == 0 {
		rt.fail(w, r, http.StatusServiceUnavailable, serve.CodeShardUnavailable, "no healthy shard")
		return
	}
	type shardList struct {
		shard string
		infos []serve.DatasetInfo
		err   error
	}
	results := make(chan shardList, len(shards))
	for _, shard := range shards {
		go func(shard string) {
			req, err := http.NewRequestWithContext(r.Context(), "GET", shard+"/v1/datasets?format=json", nil)
			if err != nil {
				results <- shardList{shard: shard, err: err}
				return
			}
			req.Header.Set("X-Request-Id", serve.RequestIDFromContext(r.Context()))
			resp, err := rt.client.Do(req)
			if err != nil {
				results <- shardList{shard: shard, err: err}
				return
			}
			defer resp.Body.Close()
			var body struct {
				Datasets []serve.DatasetInfo `json:"datasets"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				results <- shardList{shard: shard, err: err}
				return
			}
			results <- shardList{shard: shard, infos: body.Datasets}
		}(shard)
	}
	byDigest := map[string]serve.DatasetInfo{}
	var failed int
	for range shards {
		out := <-results
		if out.err != nil {
			failed++
			rt.reg.Counter("router_forward_errors_total").Inc()
			continue
		}
		for _, info := range out.infos {
			info.Shard = out.shard
			if _, ok := byDigest[info.Digest]; !ok {
				byDigest[info.Digest] = info
			}
		}
	}
	if failed == len(shards) {
		rt.fail(w, r, http.StatusServiceUnavailable, serve.CodeShardUnavailable, "every shard listing failed")
		return
	}
	merged := make([]serve.DatasetInfo, 0, len(byDigest))
	for _, info := range byDigest {
		merged = append(merged, info)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	if wantJSON(r) {
		serve.WriteJSON(w, http.StatusOK, mergedList{Meta: rt.meta(r), Datasets: merged})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, in := range merged {
		fmt.Fprintf(w, "%s digest=%s users=%d contracts=%d bytes=%d ledger=%s shard=%s\n",
			in.ID, in.Digest, in.Users, in.Contracts, in.Bytes, in.Ledger, in.Shard)
	}
}

// shardHealth is one row of the router's /healthz JSON body.
type shardHealth struct {
	Shard   string `json:"shard"`
	Healthy bool   `json:"healthy"`
}

// routerHealth is the router's /healthz JSON body.
type routerHealth struct {
	Status string `json:"status"`
	serve.Meta
	UptimeSeconds float64       `json:"uptime_seconds"`
	Shards        []shardHealth `json:"shards"`
}

// handleHealthz reports the router's own liveness and its view of the
// ring: 200 while at least one shard is admitted, 503 once none are —
// a router with no shards cannot serve anything.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var rows []shardHealth
	healthy := 0
	for _, s := range rt.ring.Shards() {
		ok := rt.ring.Healthy(s)
		if ok {
			healthy++
		}
		rows = append(rows, shardHealth{Shard: s, Healthy: ok})
	}
	status, code := "ok", http.StatusOK
	if healthy == 0 {
		status, code = "no_healthy_shards", http.StatusServiceUnavailable
	}
	if wantJSON(r) {
		serve.WriteJSON(w, code, routerHealth{
			Status:        status,
			Meta:          rt.meta(r),
			UptimeSeconds: time.Since(rt.start).Seconds(),
			Shards:        rows,
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(code)
	fmt.Fprintf(w, "%s version=%s shards=%d/%d uptime=%s\n",
		status, version.String(), healthy, len(rows), time.Since(rt.start).Round(time.Second))
	for _, row := range rows {
		fmt.Fprintf(w, "%s healthy=%t\n", row.Shard, row.Healthy)
	}
}

// wantJSON mirrors serve's negotiation: ?format= wins, then Accept.
func wantJSON(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "json":
		return true
	case "text":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}
