// Property tests for the consistent-hash ring: ownership balance within
// ±20% of fair share at the default 128 vnodes, key stability under
// ejection (only the ejected shard's keys move; nobody else's mapping
// changes), and exact restoration on readmission — the properties the
// per-shard result caches depend on. Plus Owners() ordering/distinctness
// and constructor validation.
package ring

import (
	"fmt"
	"testing"
)

// keys mints n distinct routing keys shaped like the real ones.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d-abcdef", i)
	}
	return out
}

func TestOwnershipBalance(t *testing.T) {
	shards := []string{"http://s1:8101", "http://s2:8102", "http://s3:8103"}
	r, err := New(shards, 128)
	if err != nil {
		t.Fatal(err)
	}
	const n = 30000
	counts := map[string]int{}
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	fair := float64(n) / float64(len(shards))
	for _, s := range shards {
		got := float64(counts[s])
		if got < 0.8*fair || got > 1.2*fair {
			t.Errorf("shard %s owns %.0f keys, outside ±20%% of the fair share %.0f (counts %v)",
				s, got, fair, counts)
		}
	}
}

func TestEjectionMovesOnlyEjectedKeys(t *testing.T) {
	shards := []string{"a", "b", "c"}
	r, err := New(shards, 128)
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(5000)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owner(k)
	}

	if !r.SetHealthy("b", false) {
		t.Fatal("ejecting b reported no change")
	}
	moved := 0
	for _, k := range ks {
		owner := r.Owner(k)
		switch before[k] {
		case "b":
			moved++
			if owner == "b" || owner == "" {
				t.Fatalf("key %s still owned by ejected shard (owner %q)", k, owner)
			}
		default:
			// The stability property: ejecting b must not move a or c keys.
			if owner != before[k] {
				t.Fatalf("key %s moved from %s to %s although its owner stayed healthy", k, before[k], owner)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by b; the fixture is degenerate")
	}

	// Readmission restores exactly the original assignment.
	if !r.SetHealthy("b", true) {
		t.Fatal("readmitting b reported no change")
	}
	for _, k := range ks {
		if owner := r.Owner(k); owner != before[k] {
			t.Fatalf("after readmission key %s owned by %s, want %s", k, owner, before[k])
		}
	}
}

func TestOwnersDistinctAndHealthy(t *testing.T) {
	r, err := New([]string{"a", "b", "c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(200) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%s, 3) = %v, want all three shards", k, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%s, 3) repeats %s: %v", k, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("Owners(%s)[0]=%s disagrees with Owner=%s", k, owners[0], r.Owner(k))
		}
	}

	r.SetHealthy("a", false)
	r.SetHealthy("b", false)
	if owners := r.Owners("x", 3); len(owners) != 1 || owners[0] != "c" {
		t.Fatalf("with only c healthy, Owners = %v", owners)
	}
	r.SetHealthy("c", false)
	if owners := r.Owners("x", 3); len(owners) != 0 {
		t.Fatalf("with no healthy shard, Owners = %v, want empty", owners)
	}
	if owner := r.Owner("x"); owner != "" {
		t.Fatalf("with no healthy shard, Owner = %q, want \"\"", owner)
	}
	if hs := r.HealthyShards(); len(hs) != 0 {
		t.Fatalf("HealthyShards = %v, want empty", hs)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 128); err == nil {
		t.Fatal("empty shard list must be rejected")
	}
	if _, err := New([]string{"a", ""}, 128); err == nil {
		t.Fatal("empty shard name must be rejected")
	}
	if _, err := New([]string{"a", "a"}, 128); err == nil {
		t.Fatal("duplicate shard name must be rejected")
	}
	r, err := New([]string{"solo"}, 0) // 0 → default vnodes
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner("anything"); got != "solo" {
		t.Fatalf("single-shard ring owner = %q", got)
	}
	if !r.Healthy("solo") || r.Healthy("ghost") {
		t.Fatal("health lookups wrong on fresh ring")
	}
	if r.SetHealthy("ghost", false) {
		t.Fatal("SetHealthy on unknown shard must report no change")
	}
}
