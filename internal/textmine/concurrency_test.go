package textmine

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

var concurrencyTexts = []string{
	"selling btc for paypal, $50",
	"EXCHANGE: 0.5 bitcoin cash for amazon giftcard",
	"will vouch copy this thread",
	"fortnite account with 1000 vbucks, skins included",
	"netflix/spotify accounts, bulk discount, venmo or cashapp",
	"ddos service, booter access for a month",
	"need someone to boost my league account to diamond",
	"random untagged obligation text with no category at all",
}

// TestClassifyMatchesSeparateCalls pins the single-normalisation Classify
// to the two calls it fuses: the index layer depends on this equivalence.
func TestClassifyMatchesSeparateCalls(t *testing.T) {
	for _, text := range concurrencyTexts {
		cats, methods := Classify(text)
		if want := Categorize(text); !reflect.DeepEqual(cats, want) {
			t.Errorf("Classify(%q) categories %v, Categorize %v", text, cats, want)
		}
		if want := PaymentMethods(text); !reflect.DeepEqual(methods, want) {
			t.Errorf("Classify(%q) methods %v, PaymentMethods %v", text, methods, want)
		}
	}
}

// TestCategorizeConcurrent hammers the categoriser from many goroutines.
// The rule tables are package-level regexps shared by every caller —
// under -race this pins that classification is safe to run from the
// analysis index's worker pool and from concurrent suite stages.
func TestCategorizeConcurrent(t *testing.T) {
	want := make([][]Category, len(concurrencyTexts))
	for i, text := range concurrencyTexts {
		want[i] = Categorize(text)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, text := range concurrencyTexts {
					if got := Categorize(text); !reflect.DeepEqual(got, want[i]) {
						panic(fmt.Sprintf("concurrent Categorize(%q) = %v, want %v", text, got, want[i]))
					}
					Classify(text)
					PaymentMethods(text)
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkClassifyFused measures the one-normalisation fused path the
// index memoizes, against the two separate calls it replaces.
func BenchmarkClassifyFused(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Classify(concurrencyTexts[i%len(concurrencyTexts)])
	}
}

func BenchmarkClassifySeparate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		text := concurrencyTexts[i%len(concurrencyTexts)]
		Categorize(text)
		PaymentMethods(text)
	}
}
