// Package textmine classifies contract obligation text the way the paper
// does (§4.3–§4.5): normalisation (lower-casing, delimiter and stop-word
// removal, synonym unification), regex bucketing into manually defined
// trading-activity categories and payment methods, and extraction of
// quoted trading values with their currency denominations.
package textmine

import (
	"regexp"
	"sort"
	"strconv"
	"strings"

	"turnup/internal/fx"
)

// Category is a trading-activity bucket from the paper's Table 3.
type Category string

// The trading-activity buckets. Uncategorised marks text too short or
// ambiguous to classify.
const (
	CurrencyExchange Category = "currency exchange"
	Payments         Category = "payments"
	Giftcard         Category = "giftcard/coupon/reward"
	Accounts         Category = "accounts/licenses"
	Gaming           Category = "gaming-related"
	HackforumsGoods  Category = "hackforums-related"
	Hacking          Category = "hacking/programming"
	SocialBoost      Category = "social network boost"
	Tutorials        Category = "tutorials/guides"
	Tools            Category = "tools/bots/software"
	Multimedia       Category = "multimedia"
	EWhoring         Category = "ewhoring"
	Shipping         Category = "delivery/shipping"
	Academic         Category = "academic help"
	Marketing        Category = "marketing"
	Contest          Category = "contest/award"
	Uncategorised    Category = "uncategorised"
)

// Categories lists all classifiable buckets (excluding Uncategorised) in
// a stable order.
var Categories = []Category{
	CurrencyExchange, Payments, Giftcard, Accounts, Gaming, HackforumsGoods,
	Hacking, SocialBoost, Tutorials, Tools, Multimedia, EWhoring, Shipping,
	Academic, Marketing, Contest,
}

// Method is a payment-method bucket from the paper's Table 4.
type Method string

// The payment-method buckets.
const (
	MBitcoin     Method = "Bitcoin"
	MPayPal      Method = "PayPal"
	MAmazonGC    Method = "Amazon Giftcards"
	MCashapp     Method = "Cashapp"
	MUSD         Method = "USD"
	MEthereum    Method = "Ethereum"
	MVenmo       Method = "Venmo"
	MVBucks      Method = "V-bucks"
	MZelle       Method = "Zelle"
	MBitcoinCash Method = "Bitcoin Cash"
	MLitecoin    Method = "Litecoin"
	MMonero      Method = "Monero"
	MApplePay    Method = "Apple/Google Pay"
	MSkrill      Method = "Skrill"
)

// Methods lists all payment-method buckets in a stable order.
var Methods = []Method{
	MBitcoin, MPayPal, MAmazonGC, MCashapp, MUSD, MEthereum, MVenmo,
	MVBucks, MZelle, MBitcoinCash, MLitecoin, MMonero, MApplePay, MSkrill,
}

var (
	delimRe      = regexp.MustCompile(`[,;:!?()\[\]{}"'*_/\\|<>+=~` + "`" + `]`)
	multiSpaceRe = regexp.MustCompile(`\s+`)
)

// synonyms unifies common spellings before matching, mirroring the paper's
// "unifying synonyms" normalisation step.
var synonyms = []struct{ from, to string }{
	{"gift card", "giftcard"},
	{"gift cards", "giftcards"},
	{"cash app", "cashapp"},
	{"pay pal", "paypal"},
	{"vouch copies", "vouch copy"},
	{"e-whoring", "ewhoring"},
	{"e whoring", "ewhoring"},
	{"v bucks", "vbucks"},
	{"v-bucks", "vbucks"},
	{"insta ", "instagram "},
	{"yt ", "youtube "},
	{"remote access tool", "rat"},
	{"remote access trojan", "rat"},
}

var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "i": true, "in": true,
	"is": true, "it": true, "my": true, "of": true, "on": true, "or": true,
	"the": true, "to": true, "will": true, "with": true, "you": true,
	"your": true, "me": true, "am": true, "this": true, "that": true,
}

// Normalize lower-cases the text, strips delimiters, collapses whitespace,
// and unifies synonym spellings. Digits are retained because value
// extraction needs them.
func Normalize(text string) string {
	s := strings.ToLower(text)
	s = delimRe.ReplaceAllString(s, " ")
	s = multiSpaceRe.ReplaceAllString(s, " ")
	s = strings.TrimSpace(s)
	for _, syn := range synonyms {
		s = strings.ReplaceAll(s, syn.from, syn.to)
	}
	return s
}

// ContentTokens returns the normalised tokens with stop-words removed.
func ContentTokens(text string) []string {
	var out []string
	for _, tok := range strings.Fields(Normalize(text)) {
		if !stopwords[tok] {
			out = append(out, tok)
		}
	}
	return out
}

type catRule struct {
	cat Category
	re  *regexp.Regexp
}

var catRules = []catRule{
	{CurrencyExchange, regexp.MustCompile(`\b(exchange|exchanging|exchanged|swap|swapping|convert|converting|cashout|cash out)\b`)},
	{Payments, regexp.MustCompile(`\b(payment|payments|paying|send|sending|transfer|transferring)\b`)},
	{Giftcard, regexp.MustCompile(`\b(giftcard|giftcards|gc|coupon|coupons|voucher|vouchers|reward card)\b`)},
	{Accounts, regexp.MustCompile(`\b(account|accounts|license|licenses|licence|alts?|subscription|serial key|activation key|netflix|spotify|nordvpn|upgrade key)\b`)},
	{Gaming, regexp.MustCompile(`\b(fortnite|minecraft|csgo|cs go|steam|roblox|league of legends|valorant|gta|vbucks|skins?|in game|ingame|game)\b`)},
	{HackforumsGoods, regexp.MustCompile(`\b(hackforums|hack forums|hf|bytes|vouch copy|ub3r|l33t)\b`)},
	{Hacking, regexp.MustCompile(`\b(hacking|hacker|exploits?|rat|crypter|botnets?|stresser|keylogger|malware|fud|sql injection|pentest|coding|programming|python|javascript|web development|website|develop|script)\b`)},
	{SocialBoost, regexp.MustCompile(`\b(instagram|youtube|twitter|tiktok|followers|likes|subscribers|views|upvotes|boost|boosting)\b`)},
	{Tutorials, regexp.MustCompile(`\b(tutorials?|guides?|ebooks?|method|methods|course|courses|mentoring|coaching)\b`)},
	{Tools, regexp.MustCompile(`\b(bots?|tools?|software|program|checker|generator|macro|automation)\b`)},
	{Multimedia, regexp.MustCompile(`\b(logos?|design|designs|banners?|video edit(ing)?|illustrations?|graphics?|thumbnails?|animations?|intro|artwork)\b`)},
	{EWhoring, regexp.MustCompile(`\b(ewhoring|ewhore|ewhores)\b`)},
	{Shipping, regexp.MustCompile(`\b(shipping|delivery|label|labels|parcel|postage)\b`)},
	{Academic, regexp.MustCompile(`\b(essays?|homework|dissertations?|assignments?|thesis|academic)\b`)},
	{Marketing, regexp.MustCompile(`\b(marketing|seo|promotions?|promoting|advertis\w*|traffic)\b`)},
	{Contest, regexp.MustCompile(`\b(contests?|giveaways?|raffles?|awards?)\b`)},
}

var methodRules = []struct {
	m  Method
	re *regexp.Regexp
}{
	// Order matters: multi-word crypto names are matched (and their
	// sub-strings excluded) before their prefixes.
	{MBitcoinCash, regexp.MustCompile(`\b(bitcoin cash|bch)\b`)},
	{MBitcoin, regexp.MustCompile(`\b(bitcoin|btc)\b`)},
	{MPayPal, regexp.MustCompile(`\b(paypal|pp)\b`)},
	{MAmazonGC, regexp.MustCompile(`\b(amazon giftcards?|amazon gc|agc)\b`)},
	{MCashapp, regexp.MustCompile(`\bcashapp\b`)},
	{MUSD, regexp.MustCompile(`\b(usd|dollars?)\b`)},
	{MEthereum, regexp.MustCompile(`\b(ethereum|eth)\b`)},
	{MVenmo, regexp.MustCompile(`\bvenmo\b`)},
	{MVBucks, regexp.MustCompile(`\bvbucks\b`)},
	{MZelle, regexp.MustCompile(`\bzelle\b`)},
	{MLitecoin, regexp.MustCompile(`\b(litecoin|ltc)\b`)},
	{MMonero, regexp.MustCompile(`\b(monero|xmr)\b`)},
	{MApplePay, regexp.MustCompile(`\b(apple pay|google pay|applepay|googlepay)\b`)},
	{MSkrill, regexp.MustCompile(`\bskrill\b`)},
}

// Categorize assigns the obligation text to one or more trading-activity
// buckets (the paper: "some contracts are placed in more than one
// category"). Text matching nothing, or with fewer than two content
// tokens, returns just Uncategorised.
func Categorize(text string) []Category {
	cats, _ := Classify(text)
	return cats
}

// Classify computes both the trading-activity categories and the payment
// methods of the text over a single normalisation pass. It is exactly
// Categorize plus PaymentMethods, but normalises once instead of three
// times (Categorize's implicit-exchange rule needs the methods anyway) —
// the form the analysis index memoizes per contract side.
func Classify(text string) ([]Category, []Method) {
	norm := Normalize(text)
	methods := methodsFromNorm(norm)
	var out []Category
	for _, rule := range catRules {
		if rule.re.MatchString(norm) {
			out = append(out, rule.cat)
		}
	}
	// Two distinct payment methods traded "for" each other is a currency
	// exchange even without an explicit exchange verb.
	if !hasCategory(out, CurrencyExchange) && len(methods) >= 2 &&
		strings.Contains(norm, " for ") {
		out = append(out, CurrencyExchange)
	}
	if len(out) == 0 {
		return []Category{Uncategorised}, methods
	}
	return out, methods
}

func hasCategory(cs []Category, c Category) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// PaymentMethods returns the payment-method buckets mentioned in the text.
// "bitcoin cash" is not double-counted as Bitcoin.
func PaymentMethods(text string) []Method {
	return methodsFromNorm(Normalize(text))
}

func methodsFromNorm(norm string) []Method {
	var out []Method
	for _, rule := range methodRules {
		if rule.re.MatchString(norm) {
			if rule.m == MBitcoin {
				// Strip bitcoin-cash mentions before testing plain bitcoin.
				stripped := methodRules[0].re.ReplaceAllString(norm, " ")
				if !rule.re.MatchString(stripped) {
					continue
				}
			}
			out = append(out, rule.m)
		}
	}
	return out
}

// Money is one extracted value mention: an amount in a denomination.
type Money struct {
	Amount   float64
	Currency fx.Currency
}

var (
	symbolValRe = regexp.MustCompile(`([$£€])\s?([0-9]+(?:\.[0-9]+)?)(k?)\b`)
	cryptoValRe = regexp.MustCompile(`\b([0-9]*\.?[0-9]+)\s?(btc|bitcoin|eth|ethereum|ltc|litecoin|xmr|monero|bch)\b`)
	fiatValRe   = regexp.MustCompile(`\b([0-9]+(?:\.[0-9]+)?)(k?)\s?(usd|dollars?|gbp|pounds?|eur|euros?|cad|aud|inr|jpy|yen)\b`)
)

// ExtractValues pulls every quoted value with its denomination out of the
// obligation text, per the paper's §4.5 extraction: currency symbols
// ("$100", "£20"), fiat codes ("100 usd", "20k inr"), and crypto amounts
// ("0.05 btc"). Amounts suffixed with "k" are scaled by 1000.
//
// Symbol-prefixed amounts take precedence: "$100 btc" means one hundred
// dollars' worth of Bitcoin, so the trailing "100 btc" crypto reading is
// suppressed. Mentions are returned in order of appearance.
func ExtractValues(text string) []Money {
	norm := Normalize(text)
	type mention struct {
		start int
		money Money
	}
	var mentions []mention
	taken := make([]bool, len(norm))
	claim := func(lo, hi int) bool {
		for i := lo; i < hi && i < len(taken); i++ {
			if taken[i] {
				return false
			}
		}
		for i := lo; i < hi && i < len(taken); i++ {
			taken[i] = true
		}
		return true
	}

	for _, idx := range symbolValRe.FindAllStringSubmatchIndex(norm, -1) {
		amtStr := norm[idx[4]:idx[5]]
		amt, err := strconv.ParseFloat(amtStr, 64)
		if err != nil || !claim(idx[0], idx[1]) {
			continue
		}
		if idx[6] >= 0 && norm[idx[6]:idx[7]] == "k" {
			amt *= 1000
		}
		cur := fx.USD
		switch norm[idx[2]:idx[3]] {
		case "£":
			cur = fx.GBP
		case "€":
			cur = fx.EUR
		}
		mentions = append(mentions, mention{idx[0], Money{Amount: amt, Currency: cur}})
	}
	for _, idx := range cryptoValRe.FindAllStringSubmatchIndex(norm, -1) {
		amt, err := strconv.ParseFloat(norm[idx[2]:idx[3]], 64)
		if err != nil || !claim(idx[0], idx[1]) {
			continue
		}
		if cur, ok := fx.ParseCurrency(norm[idx[4]:idx[5]]); ok {
			mentions = append(mentions, mention{idx[0], Money{Amount: amt, Currency: cur}})
		}
	}
	for _, idx := range fiatValRe.FindAllStringSubmatchIndex(norm, -1) {
		amt, err := strconv.ParseFloat(norm[idx[2]:idx[3]], 64)
		if err != nil || !claim(idx[0], idx[1]) {
			continue
		}
		if idx[4] >= 0 && norm[idx[4]:idx[5]] == "k" {
			amt *= 1000
		}
		if cur, ok := fx.ParseCurrency(norm[idx[6]:idx[7]]); ok {
			mentions = append(mentions, mention{idx[0], Money{Amount: amt, Currency: cur}})
		}
	}
	sort.SliceStable(mentions, func(i, j int) bool { return mentions[i].start < mentions[j].start })
	out := make([]Money, 0, len(mentions))
	for _, m := range mentions {
		out = append(out, m.money)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// TokenClassify is the exact-token baseline classifier used by the
// categoriser ablation (DESIGN.md §6): instead of regex rules it matches
// whole content tokens against a flat keyword → category index. Faster but
// blind to multi-word phrases ("bitcoin cash", "vouch copy").
func TokenClassify(text string) []Category {
	seen := map[Category]bool{}
	var out []Category
	for _, tok := range ContentTokens(text) {
		if cat, ok := tokenIndex[tok]; ok && !seen[cat] {
			seen[cat] = true
			out = append(out, cat)
		}
	}
	if len(out) == 0 {
		return []Category{Uncategorised}
	}
	return out
}

var tokenIndex = map[string]Category{
	"exchange": CurrencyExchange, "exchanging": CurrencyExchange, "swap": CurrencyExchange,
	"payment": Payments, "sending": Payments, "transfer": Payments,
	"giftcard": Giftcard, "giftcards": Giftcard, "coupon": Giftcard, "voucher": Giftcard,
	"account": Accounts, "accounts": Accounts, "license": Accounts, "netflix": Accounts,
	"fortnite": Gaming, "minecraft": Gaming, "steam": Gaming, "vbucks": Gaming,
	"bytes": HackforumsGoods, "hackforums": HackforumsGoods,
	"hacking": Hacking, "rat": Hacking, "botnet": Hacking, "python": Hacking, "coding": Hacking,
	"instagram": SocialBoost, "youtube": SocialBoost, "followers": SocialBoost,
	"tutorial": Tutorials, "guide": Tutorials, "ebook": Tutorials, "method": Tutorials,
	"bot": Tools, "tool": Tools, "software": Tools,
	"logo": Multimedia, "design": Multimedia, "banner": Multimedia,
	"ewhoring": EWhoring,
	"shipping": Shipping, "delivery": Shipping,
	"essay": Academic, "homework": Academic, "dissertation": Academic,
	"marketing": Marketing, "seo": Marketing,
	"contest": Contest, "giveaway": Contest,
}
