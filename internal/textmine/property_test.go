package textmine

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"turnup/internal/rng"
)

// randomText assembles obligation-ish text from a vocabulary mixing
// category keywords, amounts, and noise.
func randomText(src *rng.Source) string {
	vocab := []string{
		"selling", "buying", "exchanging", "$50", "$1200.50", "0.004 btc",
		"paypal", "bitcoin", "amazon giftcard", "netflix account", "fortnite",
		"bytes", "essay", "logo design", "for", "and", "the", "quick", "deal",
		"£20", "100 usd", "zelle", "2k", "ASAP!!!", "(escrow)", "…",
	}
	n := 1 + src.Intn(12)
	words := make([]string, n)
	for i := range words {
		words[i] = vocab[src.Intn(len(vocab))]
	}
	return strings.Join(words, " ")
}

func TestNormalizeIdempotent(t *testing.T) {
	src := rng.New(71)
	check := func(seed uint64) bool {
		text := randomText(src.Fork(seed))
		once := Normalize(text)
		twice := Normalize(once)
		return once == twice
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategorizeAlwaysReturnsSomething(t *testing.T) {
	src := rng.New(73)
	check := func(seed uint64) bool {
		cats := Categorize(randomText(src.Fork(seed)))
		if len(cats) == 0 {
			return false
		}
		// Uncategorised never co-occurs with a real category.
		if len(cats) > 1 {
			for _, c := range cats {
				if c == Uncategorised {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCategorizeNoDuplicates(t *testing.T) {
	src := rng.New(79)
	check := func(seed uint64) bool {
		cats := Categorize(randomText(src.Fork(seed)))
		seen := map[Category]bool{}
		for _, c := range cats {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtractValuesNonNegativeAndOrdered(t *testing.T) {
	src := rng.New(83)
	check := func(seed uint64) bool {
		for _, m := range ExtractValues(randomText(src.Fork(seed))) {
			if m.Amount < 0 {
				return false
			}
			if m.Currency == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaymentMethodsSubsetOfKnown(t *testing.T) {
	known := map[Method]bool{}
	for _, m := range Methods {
		known[m] = true
	}
	src := rng.New(89)
	check := func(seed uint64) bool {
		for _, m := range PaymentMethods(randomText(src.Fork(seed))) {
			if !known[m] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	texts := []string{
		"Exchanging $100 BTC for PayPal",
		"SELLING NETFLIX ACCOUNT",
		"Amazon GiftCard $25",
	}
	for _, text := range texts {
		upper := Categorize(strings.ToUpper(text))
		lower := Categorize(strings.ToLower(text))
		if !reflect.DeepEqual(upper, lower) {
			t.Errorf("case sensitivity on %q: %v vs %v", text, upper, lower)
		}
	}
}
