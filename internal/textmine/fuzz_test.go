package textmine

import "testing"

// FuzzExtractValues ensures arbitrary text never panics the extractor and
// always yields non-negative, denominated amounts.
func FuzzExtractValues(f *testing.F) {
	for _, seed := range []string{
		"exchanging $100 btc for $105 paypal",
		"£20 or €15 or 0.004 BTC",
		"$2k budget... 99.99usd",
		"$", "$$$$$", "0.0.0.0 btc", "9999999999999999999999 usd",
		"£", "100 100 100", "selling\tstuff\nnewline",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		for _, m := range ExtractValues(text) {
			if m.Amount < 0 {
				t.Fatalf("negative amount %v from %q", m.Amount, text)
			}
			if m.Currency == "" {
				t.Fatalf("empty currency from %q", text)
			}
		}
	})
}

// FuzzCategorize ensures the categoriser never panics and always returns a
// non-empty, duplicate-free category list.
func FuzzCategorize(f *testing.F) {
	for _, seed := range []string{
		"selling netflix account", "vouch copy", "", "   ",
		"BITCOIN CASH bitcoin", "essay essay essay", "a$b£c€d",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		cats := Categorize(text)
		if len(cats) == 0 {
			t.Fatalf("no categories for %q", text)
		}
		seen := map[Category]bool{}
		for _, c := range cats {
			if seen[c] {
				t.Fatalf("duplicate category %v for %q", c, text)
			}
			seen[c] = true
		}
	})
}
