package textmine

import (
	"reflect"
	"testing"

	"turnup/internal/fx"
)

func hasCat(cs []Category, want Category) bool {
	for _, c := range cs {
		if c == want {
			return true
		}
	}
	return false
}

func hasMethod(ms []Method, want Method) bool {
	for _, m := range ms {
		if m == want {
			return true
		}
	}
	return false
}

func TestNormalize(t *testing.T) {
	got := Normalize("Selling: MY *Gift Card* (Amazon)!!")
	if got != "selling my giftcard amazon" {
		t.Errorf("Normalize = %q", got)
	}
}

func TestNormalizeSynonyms(t *testing.T) {
	cases := map[string]string{
		"Cash App transfer":  "cashapp transfer",
		"e-whoring pack":     "ewhoring pack",
		"V-Bucks for sale":   "vbucks for sale",
		"remote access tool": "rat",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestContentTokens(t *testing.T) {
	got := ContentTokens("I will sell the account to you")
	want := []string{"sell", "account"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentTokens = %v, want %v", got, want)
	}
}

func TestCategorizeCore(t *testing.T) {
	cases := []struct {
		text string
		want Category
	}{
		{"exchanging $100 BTC for $105 PayPal", CurrencyExchange},
		{"sending a $30 paypal payment", Payments},
		{"$25 amazon giftcard for btc", Giftcard},
		{"selling netflix account lifetime", Accounts},
		{"buying fortnite account", Gaming},
		{"selling 500k bytes", HackforumsGoods},
		{"vouch copy of my ebook", HackforumsGoods},
		{"custom python script for scraping", Hacking},
		{"1000 instagram followers boost", SocialBoost},
		{"youtube method tutorial", Tutorials},
		{"selling my checker tool", Tools},
		{"professional logo design service", Multimedia},
		{"ewhoring pack 800 pics", EWhoring},
		{"discounted shipping label service", Shipping},
		{"essay and homework writing help", Academic},
		{"seo and web traffic promotion", Marketing},
		{"win my giveaway contest entry", Contest},
	}
	for _, c := range cases {
		got := Categorize(c.text)
		if !hasCat(got, c.want) {
			t.Errorf("Categorize(%q) = %v, want %v included", c.text, got, c.want)
		}
	}
}

func TestCategorizeMultiLabel(t *testing.T) {
	// The paper's example: "buying fortnite account" is both gaming-related
	// and account/license.
	got := Categorize("buying fortnite account")
	if !hasCat(got, Gaming) || !hasCat(got, Accounts) {
		t.Errorf("multi-label failed: %v", got)
	}
}

func TestCategorizeImplicitExchange(t *testing.T) {
	// Two payment methods joined by "for" without an exchange verb.
	got := Categorize("$50 paypal for $48 btc")
	if !hasCat(got, CurrencyExchange) {
		t.Errorf("implicit exchange not detected: %v", got)
	}
}

func TestCategorizeUncategorised(t *testing.T) {
	for _, text := range []string{"", "stuff", "the thing we discussed"} {
		got := Categorize(text)
		if len(got) != 1 || got[0] != Uncategorised {
			t.Errorf("Categorize(%q) = %v", text, got)
		}
	}
}

func TestPaymentMethods(t *testing.T) {
	cases := []struct {
		text string
		want Method
	}{
		{"paying with bitcoin", MBitcoin},
		{"0.01 BTC", MBitcoin},
		{"$50 PayPal", MPayPal},
		{"amazon gc 25", MAmazonGC},
		{"cash app only", MCashapp},
		{"100 usd cash", MUSD},
		{"0.5 eth", MEthereum},
		{"venmo accepted", MVenmo},
		{"2000 v-bucks", MVBucks},
		{"zelle transfer", MZelle},
		{"litecoin ok", MLitecoin},
		{"monero preferred", MMonero},
		{"apple pay or google pay", MApplePay},
		{"skrill balance", MSkrill},
	}
	for _, c := range cases {
		got := PaymentMethods(c.text)
		if !hasMethod(got, c.want) {
			t.Errorf("PaymentMethods(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestBitcoinCashNotDoubleCounted(t *testing.T) {
	got := PaymentMethods("selling bitcoin cash")
	if !hasMethod(got, MBitcoinCash) {
		t.Errorf("BCH missed: %v", got)
	}
	if hasMethod(got, MBitcoin) {
		t.Errorf("BCH double-counted as Bitcoin: %v", got)
	}
	// But genuine dual mentions keep both.
	both := PaymentMethods("exchange bitcoin for bitcoin cash")
	if !hasMethod(both, MBitcoin) || !hasMethod(both, MBitcoinCash) {
		t.Errorf("dual mention lost one: %v", both)
	}
}

func TestExtractValuesSymbols(t *testing.T) {
	got := ExtractValues("selling for $100 or £20 or €15")
	want := []Money{{100, fx.USD}, {20, fx.GBP}, {15, fx.EUR}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractValues = %v, want %v", got, want)
	}
}

func TestExtractValuesCrypto(t *testing.T) {
	got := ExtractValues("sending 0.05 BTC and 1.2 eth")
	want := []Money{{0.05, fx.BTC}, {1.2, fx.ETH}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractValues = %v, want %v", got, want)
	}
}

func TestExtractValuesFiatCodes(t *testing.T) {
	got := ExtractValues("price is 150 USD or 120 gbp")
	want := []Money{{150, fx.USD}, {120, fx.GBP}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractValues = %v, want %v", got, want)
	}
}

func TestExtractValuesKSuffix(t *testing.T) {
	got := ExtractValues("$2k budget")
	if len(got) != 1 || got[0].Amount != 2000 || got[0].Currency != fx.USD {
		t.Errorf("ExtractValues = %v", got)
	}
}

func TestExtractValuesDecimal(t *testing.T) {
	got := ExtractValues("$99.99 deal")
	if len(got) != 1 || got[0].Amount != 99.99 {
		t.Errorf("ExtractValues = %v", got)
	}
}

func TestExtractValuesNone(t *testing.T) {
	if got := ExtractValues("dissertation help needed"); len(got) != 0 {
		t.Errorf("ExtractValues = %v", got)
	}
}

func TestExtractValuesMixed(t *testing.T) {
	got := ExtractValues("exchanging $1000 paypal for 0.11 btc")
	if len(got) != 2 {
		t.Fatalf("ExtractValues = %v", got)
	}
	if got[0].Currency != fx.USD || got[0].Amount != 1000 {
		t.Errorf("first = %v", got[0])
	}
	if got[1].Currency != fx.BTC || got[1].Amount != 0.11 {
		t.Errorf("second = %v", got[1])
	}
}

func TestTokenClassifyBaseline(t *testing.T) {
	got := TokenClassify("selling netflix account")
	if !hasCat(got, Accounts) {
		t.Errorf("TokenClassify = %v", got)
	}
	// Known blind spot of the baseline: multi-word phrases.
	vc := TokenClassify("vouch copy please")
	if hasCat(vc, HackforumsGoods) {
		t.Errorf("token baseline unexpectedly matched a multi-word phrase: %v", vc)
	}
	if got := TokenClassify("zzz qqq"); len(got) != 1 || got[0] != Uncategorised {
		t.Errorf("TokenClassify fallback = %v", got)
	}
}

func TestCategorizeIsDeterministic(t *testing.T) {
	text := "exchanging $100 BTC for amazon giftcard plus fortnite skins"
	a := Categorize(text)
	b := Categorize(text)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}
