package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	parent2 := New(7)
	_ = parent2.Uint64() // Fork consumes one parent output.
	c2 := parent2.Fork(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forks with different labels produced identical first output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for n := 1; n < 50; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	// Chi-square test with generous threshold (df=9, p=0.001 crit ~27.9).
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.9 {
		t.Fatalf("Intn uniformity chi2 = %v", chi2)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(17)
	for _, lambda := range []float64{0.5, 3, 12, 45, 200} {
		const n = 50000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(r.Poisson(lambda))
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.1 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	r := New(19)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := r.Poisson(-1); got != 0 {
		t.Fatalf("Poisson(-1) = %d", got)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(23)
	const n, p, draws = 40, 0.3, 50000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(r.Binomial(n, p))
	}
	mean := sum / draws
	if math.Abs(mean-n*p) > 0.15 {
		t.Fatalf("binomial mean = %v, want %v", mean, n*p)
	}
}

func TestBinomialEdge(t *testing.T) {
	r := New(29)
	if got := r.Binomial(10, 0); got != 0 {
		t.Fatalf("Binomial(10,0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Fatalf("Binomial(10,1) = %d", got)
	}
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0,.5) = %d", got)
	}
}

func TestExpMean(t *testing.T) {
	r := New(31)
	const rate, n = 2.5, 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp(%v) mean = %v, want %v", rate, mean, 1/rate)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(37)
	const mu, sigma, n = 1.2, 0.8, 50001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(mu, sigma)
	}
	// Median of log-normal is exp(mu); use a counting check.
	below := 0
	med := math.Exp(mu)
	for _, v := range vals {
		if v < med {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(41)
	z := NewZipf(100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[5] || counts[5] <= counts[50] {
		t.Fatalf("Zipf counts not monotone-ish: %v %v %v %v",
			counts[0], counts[1], counts[5], counts[50])
	}
}

func TestZipfBounds(t *testing.T) {
	r := New(43)
	z := NewZipf(7, 0.8)
	for i := 0; i < 10000; i++ {
		k := z.Sample(r)
		if k < 0 || k >= 7 {
			t.Fatalf("Zipf sample out of range: %d", k)
		}
	}
}

func TestCategorical(t *testing.T) {
	r := New(47)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("category ratio = %v, want ~3", ratio)
	}
}

func TestCategoricalPanics(t *testing.T) {
	r := New(53)
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			r.Categorical(w)
		}()
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(59)
	const p, n = 0.25, 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.06 {
		t.Fatalf("geometric mean = %v, want %v", mean, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		n := int(seed%20) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64HighLowBits(t *testing.T) {
	// Both halves of the output should look random (catch rotl mistakes).
	r := New(61)
	var hiOnes, loOnes int
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Uint64()
		if v>>63 == 1 {
			hiOnes++
		}
		if v&1 == 1 {
			loOnes++
		}
	}
	for name, ones := range map[string]int{"high": hiOnes, "low": loOnes} {
		frac := float64(ones) / n
		if math.Abs(frac-0.5) > 0.03 {
			t.Errorf("%s bit fraction = %v", name, frac)
		}
	}
}

func BenchmarkPoissonSmall(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Poisson(4)
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Poisson(400)
	}
}

func BenchmarkZipf(b *testing.B) {
	r := New(1)
	z := NewZipf(10000, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(r)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestGeometricPanicsAndEdge(t *testing.T) {
	if got := New(1).Geometric(1); got != 0 {
		t.Errorf("Geometric(1) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestBoolFrequency(t *testing.T) {
	r := New(67)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(71)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestNewZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(73)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("duplicate after shuffle: %v", xs)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(79)
	for _, c := range []struct{ shape, scale float64 }{
		{0.5, 2}, {1, 1}, {3, 0.5}, {9, 4},
	} {
		const n = 100000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := r.Gamma(c.shape, c.scale)
			if x < 0 {
				t.Fatalf("negative gamma variate %v", x)
			}
			sum += x
			sumsq += x * x
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.03*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean = %v, want %v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.08*wantVar+0.02 {
			t.Errorf("Gamma(%v,%v) variance = %v, want %v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0,1) did not panic")
		}
	}()
	New(1).Gamma(0, 1)
}

func TestNegBinomialMoments(t *testing.T) {
	r := New(83)
	const mu, alpha, n = 6.0, 0.5, 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := float64(r.NegBinomial(mu, alpha))
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	wantVar := mu + alpha*mu*mu // NB2 variance
	if math.Abs(mean-mu) > 0.1 {
		t.Errorf("NB mean = %v, want %v", mean, mu)
	}
	if math.Abs(variance-wantVar) > 0.08*wantVar {
		t.Errorf("NB variance = %v, want %v", variance, wantVar)
	}
	// Degenerate cases.
	if got := r.NegBinomial(0, 1); got != 0 {
		t.Errorf("NB(0,1) = %d", got)
	}
}
