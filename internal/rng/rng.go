// Package rng provides a deterministic pseudo-random number generator and
// the samplers the marketplace simulator and statistical estimators need.
//
// The generator is xoshiro256** seeded through splitmix64, which gives
// high-quality 64-bit streams with a tiny state, cheap forking for
// independent sub-streams, and full reproducibility from a single uint64
// seed. Everything in this repository that consumes randomness takes a
// *rng.Source explicitly; there is no global state.
package rng

import "math"

// Source is a deterministic random source (xoshiro256**).
// It is not safe for concurrent use; fork per goroutine with Fork.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from a single 64-bit seed via splitmix64.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Fork derives an independent child stream. The child is seeded from the
// parent's next output mixed with a stream label, so distinct labels yield
// distinct streams even when forked from the same state.
func (r *Source) Fork(label uint64) *Source {
	return New(r.Uint64() ^ (label * 0xd1342543de82ef95))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Int63 returns a non-negative 63-bit integer.
func (r *Source) Int63() int64 { return int64(r.Uint64() >> 1) }

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }

// Norm returns a standard normal variate (Marsaglia polar method).
func (r *Source) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormMS returns a normal variate with the given mean and standard deviation.
func (r *Source) NormMS(mean, sd float64) float64 { return mean + sd*r.Norm() }

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// LogNormal returns a log-normal variate where the underlying normal has
// mean mu and standard deviation sigma.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Poisson returns a Poisson variate with mean lambda. For small lambda it
// uses Knuth multiplication; for large lambda the PTRS transformed-rejection
// sampler of Hörmann (1993), which is O(1) in lambda.
func (r *Source) Poisson(lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return r.poissonPTRS(lambda)
	}
}

func (r *Source) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(lambda)-lambda-lg {
			return int(k)
		}
	}
}

// Binomial returns a binomial(n, p) variate by direct simulation for small
// n and by Poisson/normal style inversion via repeated Bernoulli otherwise.
func (r *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// BTPE would be faster for huge n, but n here is bounded by per-month
	// agent counts (thousands), so the O(n) loop is fine and exact.
	k := 0
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			k++
		}
	}
	return k
}

// Geometric returns the number of failures before the first success for a
// Bernoulli(p) process.
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		if p >= 1 {
			return 0
		}
		panic("rng: Geometric with p out of (0,1]")
	}
	return int(math.Floor(math.Log(1-r.Float64()) / math.Log(1-p)))
}

// Zipf samples from a bounded Zipf distribution on {0, ..., n-1} with
// exponent s (> 0) using inverse-CDF over precomputed weights held by
// a ZipfSampler; this helper builds a throwaway sampler.
func (r *Source) Zipf(n int, s float64) int {
	return NewZipf(n, s).Sample(r)
}

// ZipfSampler draws from a bounded Zipf distribution with precomputed
// cumulative weights, so repeated sampling is O(log n).
type ZipfSampler struct {
	cum []float64
}

// NewZipf builds a sampler over ranks {0..n-1} with P(k) ∝ 1/(k+1)^s.
func NewZipf(n int, s float64) *ZipfSampler {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &ZipfSampler{cum: cum}
}

// Sample draws a rank from the sampler.
func (z *ZipfSampler) Sample(r *Source) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Categorical draws an index with probability proportional to weights[i].
// It panics if all weights are zero or any weight is negative.
func (r *Source) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative categorical weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: categorical weights sum to zero")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n integers' order via the provided swap
// function (Fisher-Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Perm returns a random permutation of {0..n-1}.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Gamma returns a Gamma(shape, scale) variate using the Marsaglia-Tsang
// squeeze method (with the standard boost for shape < 1).
func (r *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma with non-positive parameters")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// NegBinomial returns an NB2 variate with mean mu and dispersion alpha
// via the gamma-Poisson mixture (alpha <= 0 degenerates to Poisson).
func (r *Source) NegBinomial(mu, alpha float64) int {
	if mu <= 0 {
		return 0
	}
	if alpha <= 0 {
		return r.Poisson(mu)
	}
	shape := 1 / alpha
	lambda := r.Gamma(shape, mu/shape)
	return r.Poisson(lambda)
}
