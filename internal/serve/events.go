package serve

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strconv"

	"turnup/internal/ingest"
)

// eventsResponse is the JSON body of POST /v1/datasets/{id}/events: the
// dataset's post-append listing entry (new generation, rolled digest,
// updated counts) plus how many events the batch carried.
type eventsResponse struct {
	Meta
	Dataset DatasetInfo `json:"dataset"`
	Applied int         `json:"applied"`
}

// handleEvents serves POST /v1/datasets/{id}/events: decode the event
// batch (JSON lines or contract CSV rows, bounded like an upload),
// validate it against the stored dataset, and apply it copy-on-write as
// the dataset's next generation. A successful append then drops every
// cached report for an older generation of this id — the cache-coherence
// half of the ingest contract: reports stay cached exactly until the
// corpus actually changes. Appends are all-or-nothing: any bad event
// fails the whole batch with 400 bad_params and the dataset stays at its
// previous generation.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Read the bounded body up front so an oversized batch is always 413,
	// even when the cap truncates it into something that also fails to
	// parse — the size error is the actionable one.
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxDatasetBytes)
	raw, err := io.ReadAll(r.Body)
	if err == nil {
		var b *ingest.Batch
		if b, err = ingest.DecodeBatch(r.Header.Get("Content-Type"), bytes.NewReader(raw)); err == nil {
			s.applyEvents(w, r, id, b)
			return
		}
	}
	status, code := eventsFailure(err)
	s.fail(w, r, status, code, err)
}

// applyEvents validates and applies a decoded batch, then invalidates the
// superseded cache generations.
func (s *Server) applyEvents(w http.ResponseWriter, r *http.Request, id string, b *ingest.Batch) {
	if b.Len() == 0 {
		s.fail(w, r, http.StatusBadRequest, CodeBadParams, errors.New("empty event batch: no user or contract events decoded"))
		return
	}
	info, err := s.datasets.Append(id, b)
	if err != nil {
		status, code := http.StatusBadRequest, CodeBadParams
		switch {
		case errors.Is(err, ErrUnknownDataset):
			status, code = http.StatusNotFound, CodeUnknownDataset
		case errors.Is(err, ErrStoreFull):
			status, code = http.StatusRequestEntityTooLarge, CodeDatasetTooLarge
		}
		s.fail(w, r, status, code, err)
		return
	}
	// Invalidate superseded generations only — in both cache tiers, so a
	// stale rendered body cannot outlive its result; the new generation's
	// entries (none yet, but coalesced runs may land soon) are untouched,
	// and other datasets' results are untouched.
	s.Invalidate(func(p Params) bool {
		return p.Dataset == id && p.Generation < info.Generation
	})
	w.Header().Set("X-Dataset-Generation", strconv.FormatUint(info.Generation, 10))
	writeJSON(w, http.StatusOK, eventsResponse{Meta: s.meta(r), Dataset: info, Applied: b.Len()})
}

// eventsFailure maps a DecodeBatch error onto its HTTP status and API v1
// error code, mirroring UploadFailure: oversized bodies are 413
// dataset_too_large, unsupported encodings 415, malformed events 400.
func eventsFailure(err error) (status int, code string) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge, CodeDatasetTooLarge
	case errors.Is(err, ingest.ErrUnsupportedEvents):
		return http.StatusUnsupportedMediaType, CodeBadParams
	default:
		return http.StatusBadRequest, CodeBadParams
	}
}
