// Tests for the live-ingest subsystem: POST /v1/datasets/{id}/events
// appends, generation-keyed cache invalidation (the X-Cache regression
// the acceptance criteria pin: a windowed report stays a hit exactly
// until an append bumps the generation), windowed reports matching a
// local ingest.Window analysis byte-for-byte, the store's append /
// snapshot / root-digest mechanics, and the DELETE-during-run race fix.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"turnup"
	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/ingest"
	"turnup/internal/obs"
	"turnup/internal/serve"
)

// eventsNDJSON is a valid two-event batch against the shared tiny corpus:
// one fresh user and one contract pairing them with existing user 1.
const eventsNDJSON = `{"kind":"user","id":900001,"joined":"2020-06-10T00:00:00Z","first_post":"2020-06-10T01:00:00Z","posts":3,"marketplace_posts":2,"reputation":1}
{"kind":"contract","id":900001,"type":"EXCHANGE","maker":900001,"taker":1,"thread":1,"created":"2020-06-15T00:00:00Z","decided":"2020-06-15T01:00:00Z","completed":"2020-06-15T02:00:00Z","status":"Complete","public":true,"maker_obligation":"0.05 btc","taker_obligation":"paypal transfer","maker_rating":1,"taker_rating":1}
`

// postEvents POSTs an NDJSON batch and decodes the enveloped response.
func postEvents(t *testing.T, baseURL, id, body string) (int, serve.DatasetInfo, int) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/datasets/"+id+"/events", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Dataset serve.DatasetInfo `json:"dataset"`
		Applied int               `json:"applied"`
	}
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("X-Dataset-Generation"); got != fmt.Sprint(out.Dataset.Generation) {
			t.Fatalf("append X-Dataset-Generation=%q, body generation=%d", got, out.Dataset.Generation)
		}
	}
	return resp.StatusCode, out.Dataset, out.Applied
}

// getGen issues a GET and returns (status, X-Cache, X-Dataset-Generation).
func getGen(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Cache"), resp.Header.Get("X-Dataset-Generation")
}

// TestEventsGenerationInvalidatesCache is the acceptance regression: a
// windowed dataset report is a miss, then a hit, stays a hit across
// unrelated traffic, and becomes a miss exactly when an append bumps the
// dataset's generation — then a hit again at the new generation.
func TestEventsGenerationInvalidatesCache(t *testing.T) {
	d := tinyDataset(t)
	contracts, users := csvPair(t, d)
	res := tinyResults(t)
	var runs atomic.Int64
	reg := obs.NewRegistry()
	srv := serve.New(serve.Options{
		Metrics: reg,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			runs.Add(1)
			return res, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, info := upload(t, ts.URL, contracts, users)
	if code != http.StatusCreated {
		t.Fatalf("upload code=%d, want 201", code)
	}
	if info.Generation != 1 {
		t.Fatalf("fresh upload generation=%d, want 1", info.Generation)
	}

	url := fmt.Sprintf("%s/v1/report/growth?dataset=%s&window=30d&models=false", ts.URL, info.ID)
	if code, cache, gen := getGen(t, url); code != 200 || cache != "miss" || gen != "1" {
		t.Fatalf("cold windowed report: code=%d cache=%q gen=%q, want 200 miss 1", code, cache, gen)
	}
	if code, cache, gen := getGen(t, url); code != 200 || cache != "hit" || gen != "1" {
		t.Fatalf("repeat windowed report: code=%d cache=%q gen=%q, want 200 hit 1", code, cache, gen)
	}

	code, ninfo, applied := postEvents(t, ts.URL, info.ID, eventsNDJSON)
	if code != http.StatusOK || applied != 2 {
		t.Fatalf("append code=%d applied=%d, want 200 2", code, applied)
	}
	if ninfo.Generation != 2 || ninfo.ID != info.ID {
		t.Fatalf("append info id=%s generation=%d, want %s generation 2", ninfo.ID, ninfo.Generation, info.ID)
	}
	if ninfo.Digest == info.Digest {
		t.Fatal("append did not roll the content digest")
	}
	if ninfo.Users != info.Users+1 || ninfo.Contracts != info.Contracts+1 {
		t.Fatalf("append counts %d/%d, want %d/%d", ninfo.Users, ninfo.Contracts, info.Users+1, info.Contracts+1)
	}

	if code, cache, gen := getGen(t, url); code != 200 || cache != "miss" || gen != "2" {
		t.Fatalf("post-append report: code=%d cache=%q gen=%q, want 200 miss 2 (stale generation served?)", code, cache, gen)
	}
	if code, cache, gen := getGen(t, url); code != 200 || cache != "hit" || gen != "2" {
		t.Fatalf("post-append repeat: code=%d cache=%q gen=%q, want 200 hit 2", code, cache, gen)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("pipeline ran %d times, want 2 (one per generation)", n)
	}

	_, _, metrics := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"serve_datasets_appends_total 1",
		"serve_events_applied_total 2",
		"serve_cache_invalidations_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestEventsWindowedReportEndToEnd runs the real pipeline: a windowed
// dataset report must render exactly what a local ingest.Window +
// analysis over the same CSV pair renders.
func TestEventsWindowedReportEndToEnd(t *testing.T) {
	d := tinyDataset(t)
	contracts, users := csvPair(t, d)
	srv := serve.New(serve.Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, info := upload(t, ts.URL, contracts, users)
	if code != http.StatusCreated {
		t.Fatalf("upload code=%d, want 201", code)
	}

	loaded, err := turnup.ReadCSV(bytes.NewReader(contracts), bytes.NewReader(users))
	if err != nil {
		t.Fatal(err)
	}
	wd, err := ingest.Window(loaded, "era-to-date", "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := turnup.Run(wd, turnup.RunOptions{Seed: 5, SkipModels: true})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := turnup.Render(&want, res, "growth"); err != nil {
		t.Fatal(err)
	}

	url := fmt.Sprintf("%s/v1/report/growth?dataset=%s&window=era-to-date&seed=5&models=false", ts.URL, info.ID)
	code, _, body := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("windowed report code=%d (body %q)", code, body)
	}
	if body != want.String() {
		t.Fatalf("served windowed report differs from local windowed analysis:\nserved:\n%s\nlocal:\n%s", body, want.String())
	}

	// An empty window is a client error, not a suite failure.
	code, _, body = get(t, fmt.Sprintf("%s/v1/report/growth?dataset=%s&window=1d&as-of=2018-06-01&models=false", ts.URL, info.ID))
	if code != http.StatusBadRequest || !strings.Contains(body, "no contracts") {
		t.Fatalf("empty window: code=%d body=%q, want 400 naming the empty selection", code, body)
	}
}

// TestStoreAppendSnapshotAndRootDigest covers the store mechanics under
// an append: old snapshots stay intact (copy-on-write), the rolling
// digest keys the new generation, and re-uploading the original bytes
// still dedupes to the live entry instead of colliding on the id.
func TestStoreAppendSnapshotAndRootDigest(t *testing.T) {
	d := tinyDataset(t)
	reg := obs.NewRegistry()
	st := serve.NewStore(4, 0, reg)
	info, created, err := st.Add(d)
	if err != nil || !created {
		t.Fatalf("Add: created=%t err=%v", created, err)
	}

	pinned, ok := st.Snapshot(info.ID)
	if !ok {
		t.Fatal("Snapshot(stored id) not found")
	}
	before := len(pinned.D.Contracts)

	batch := &ingest.Batch{
		Users: []*forum.User{{ID: 900001, Joined: dataset.CovidStart}},
		Contracts: []*forum.Contract{{
			ID: 900001, Type: forum.Exchange, Maker: 900001, Taker: 1, Thread: 1,
			Created: dataset.CovidStart.Add(24 * time.Hour), Completed: dataset.CovidStart.Add(25 * time.Hour),
			Status: forum.StatusCompleted, Public: true,
			MakerObligation: "btc", TakerObligation: "paypal",
		}},
	}
	ninfo, err := st.Append(info.ID, batch)
	if err != nil {
		t.Fatal(err)
	}
	if ninfo.Generation != 2 || ninfo.Digest == info.Digest || ninfo.Bytes <= info.Bytes {
		t.Fatalf("append info = %+v (parent %+v)", ninfo, info)
	}
	if len(pinned.D.Contracts) != before || pinned.Info.Generation != 1 {
		t.Fatal("append mutated a previously pinned snapshot")
	}
	cur, ok := st.Snapshot(info.ID)
	if !ok || len(cur.D.Contracts) != before+1 || cur.Info.Generation != 2 {
		t.Fatalf("current snapshot generation=%d contracts=%d, want 2/%d", cur.Info.Generation, len(cur.D.Contracts), before+1)
	}
	if _, ok := cur.D.Users[900001]; !ok {
		t.Fatal("current snapshot missing the appended user")
	}

	// Identical appends to identical parents roll to identical digests —
	// but applying the same batch twice must fail validation (dup ids).
	if _, err := st.Append(info.ID, batch); err == nil {
		t.Fatal("re-applying the same batch validated; duplicate ids must fail")
	}

	// The generation-1 digest remains addressable: re-uploading the
	// original corpus dedupes onto the live generation-2 entry.
	again, created, err := st.Add(d)
	if err != nil {
		t.Fatalf("re-upload after append: %v", err)
	}
	if created || again.ID != info.ID || again.Generation != 2 {
		t.Fatalf("re-upload created=%t id=%s generation=%d, want dedupe onto %s generation 2", created, again.ID, again.Generation, info.ID)
	}

	if _, err := st.Append("ds-nope", batch); err == nil {
		t.Fatal("append to unknown id succeeded")
	}

	// A store with no byte headroom refuses the append and keeps the
	// dataset at its previous generation.
	small := serve.NewStore(4, d.BinarySize()+8, obs.NewRegistry())
	sinfo, _, err := small.Add(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Append(sinfo.ID, batch); err == nil {
		t.Fatal("append past the byte bound succeeded")
	}
	if snap, _ := small.Snapshot(sinfo.ID); snap.Info.Generation != 1 {
		t.Fatalf("failed append moved generation to %d", snap.Info.Generation)
	}
}

// TestDeleteDuringReportRun is the race regression: a DELETE landing
// while a report run over that dataset is in flight must not fail the
// run — the snapshot was pinned at admission — and must leave no cached
// result behind for the retired id.
func TestDeleteDuringReportRun(t *testing.T) {
	d := tinyDataset(t)
	contracts, users := csvPair(t, d)
	res := tinyResults(t)
	started := make(chan struct{})
	release := make(chan struct{})
	srv := serve.New(serve.Options{
		Runner: func(ctx context.Context, p serve.Params, snap *serve.Snapshot) (*turnup.Results, error) {
			if p.Dataset != "" && snap == nil {
				return nil, fmt.Errorf("dataset run admitted without a pinned snapshot")
			}
			close(started)
			<-release
			return res, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, info := upload(t, ts.URL, contracts, users)
	if code != http.StatusCreated {
		t.Fatalf("upload code=%d, want 201", code)
	}

	url := fmt.Sprintf("%s/v1/report/growth?dataset=%s&models=false", ts.URL, info.ID)
	type result struct {
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		code, _, _, err := tryGet(url)
		done <- result{code, err}
	}()

	<-started // the run is in flight, holding its snapshot
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE mid-run code=%d, want 204", resp.StatusCode)
	}
	close(release)

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight report after DELETE: code=%d, want 200 (snapshot should outlive the store entry)", r.code)
	}

	// The id is gone: later reports 404, and nothing cached for it survives
	// (the completed run's entry was purged by the drop hook or never lands
	// as servable — either way a fresh upload restarts clean at miss).
	if code, _, _ := getGen(t, url); code != http.StatusNotFound {
		t.Fatalf("report after DELETE completed: code=%d, want 404", code)
	}
	code2, info2 := upload(t, ts.URL, contracts, users)
	if code2 != http.StatusCreated || info2.Generation != 1 {
		t.Fatalf("re-upload after DELETE: code=%d generation=%d, want 201 generation 1", code2, info2.Generation)
	}
}
