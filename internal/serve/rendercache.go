package serve

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"sync"

	"turnup/internal/obs"
)

// renderKey keys one rendered body: the canonical Params key (which folds
// in the dataset generation, so an append invalidates by construction),
// the requested section list in request order (order is semantic — Render
// emits sections in the order asked), and the response format. The key is
// what the ETag is derived from, so two requests that would serve the
// same bytes revalidate against the same ETag.
func renderKey(p Params, sections []string, format string) string {
	return p.Key() + "|" + strings.Join(sections, ",") + "|" + format
}

// Rendered is one cached rendered body. Body is the exact bytes the
// uncached path would write (the text report, or the JSON envelope's
// report fragment — the envelope itself carries a per-request id and is
// rebuilt around the fragment on every response). Gzip, when non-nil, is
// the precompressed Body, so a hot hit for a gzip-accepting client is a
// memcpy of already-compressed bytes. ETag is the fully formed header
// value: a strong `"…"` when Body is byte-identical to the response body
// (text), a weak `W/"…"` when the response embeds Body in a per-request
// envelope (JSON). Entries are immutable once built — they are served
// concurrently without copying.
type Rendered struct {
	Key    string
	Params Params
	Body   []byte
	Gzip   []byte
	ETag   string
	size   int64
}

// buildRendered assembles an entry outside any lock: content hash → ETag,
// and (for strong entries worth it) the precompressed gzip variant. The
// ETag hashes the render key alongside the body, so equal bodies under
// different parameters still get distinct validators. The gzip variant is
// only kept when it actually shrinks the body; tiny or incompressible
// bodies are served identity-only.
func buildRendered(key string, p Params, body []byte, weak bool) *Rendered {
	h := sha256.Sum256(append([]byte(key+"\x00"), body...))
	etag := `"` + hex.EncodeToString(h[:16]) + `"`
	if weak {
		etag = "W/" + etag
	}
	e := &Rendered{Key: key, Params: p, Body: body, ETag: etag}
	if !weak && len(body) >= 256 {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		_, _ = zw.Write(body)
		if err := zw.Close(); err == nil && buf.Len() < len(body) {
			e.Gzip = buf.Bytes()
		}
	}
	e.size = int64(len(e.Body)+len(e.Gzip)+len(e.Key)+len(e.ETag)) + 96
	return e
}

// RenderCache is the second cache tier: rendered bodies keyed by
// (params, sections, format), byte-budgeted LRU like the result cache
// but holding small []byte values instead of whole result suites — a hot
// hit skips Render entirely. A nil *RenderCache is a valid disabled
// cache: Get always misses and Put builds the entry without retaining it,
// so the serving path needs no branches beyond the nil receiver.
type RenderCache struct {
	maxBytes int64
	maxEntry int64 // admission bound: maxBytes/4, one body cannot flush the tier
	reg      *obs.Registry

	mu    sync.Mutex
	bytes int64
	order *list.List               // *Rendered, front = most recent
	byKey map[string]*list.Element // render key → order element
}

// NewRenderCache builds a render cache with the given byte budget
// (<=0 means 64 MiB).
func NewRenderCache(maxBytes int64, reg *obs.Registry) *RenderCache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	// Pre-register the tier's counters so /metrics carries them at 0 from
	// boot rather than materialising them on first use.
	for _, name := range []string{
		"serve_render_cache_hits_total", "serve_render_cache_misses_total",
		"serve_render_cache_evictions_total", "serve_render_cache_invalidations_total",
		"serve_render_cache_rejected_total",
	} {
		reg.Counter(name)
	}
	rc := &RenderCache{
		maxBytes: maxBytes,
		maxEntry: maxBytes / 4,
		reg:      reg,
		order:    list.New(),
		byKey:    make(map[string]*list.Element),
	}
	rc.syncGauges()
	return rc
}

// syncGauges mirrors the byte and entry accounting into the registry;
// callers hold mu.
func (rc *RenderCache) syncGauges() {
	rc.reg.Gauge("serve_render_cache_bytes").Set(float64(rc.bytes))
	rc.reg.Gauge("serve_render_cache_entries").Set(float64(rc.order.Len()))
}

// removeLocked drops el and credits its bytes back; callers hold mu.
func (rc *RenderCache) removeLocked(el *list.Element) {
	e := el.Value.(*Rendered)
	delete(rc.byKey, e.Key)
	rc.order.Remove(el)
	rc.bytes -= e.size
}

// Get returns the cached rendered body for key, counting the outcome in
// serve_render_cache_{hits,misses}_total.
func (rc *RenderCache) Get(key string) (*Rendered, bool) {
	if rc == nil {
		return nil, false
	}
	rc.mu.Lock()
	el, ok := rc.byKey[key]
	if ok {
		rc.order.MoveToFront(el)
	}
	rc.mu.Unlock()
	if !ok {
		rc.reg.Counter("serve_render_cache_misses_total").Inc()
		return nil, false
	}
	rc.reg.Counter("serve_render_cache_hits_total").Inc()
	return el.Value.(*Rendered), true
}

// Put builds the entry for (key, p, body) and admits it, evicting from
// the LRU back until the byte budget holds. Bodies larger than a quarter
// of the budget are built but never retained
// (serve_render_cache_rejected_total). The entry is returned either way,
// so the caller serves this response from it regardless of admission.
func (rc *RenderCache) Put(key string, p Params, body []byte, weak bool) *Rendered {
	e := buildRendered(key, p, body, weak)
	if rc == nil {
		return e
	}
	if e.size > rc.maxEntry {
		rc.reg.Counter("serve_render_cache_rejected_total").Inc()
		return e
	}
	rc.mu.Lock()
	if el, ok := rc.byKey[key]; ok {
		// A racing miss already installed this key; keep the incumbent.
		rc.order.MoveToFront(el)
		rc.mu.Unlock()
		return e
	}
	rc.byKey[key] = rc.order.PushFront(e)
	rc.bytes += e.size
	evicted := 0
	for rc.bytes > rc.maxBytes {
		rc.removeLocked(rc.order.Back())
		evicted++
	}
	rc.syncGauges()
	rc.mu.Unlock()
	if evicted > 0 {
		rc.reg.Counter("serve_render_cache_evictions_total").Add(int64(evicted))
	}
	return e
}

// EvictWhere drops every entry whose Params satisfy pred — the render
// tier's half of the invalidation the result cache's EvictWhere performs,
// driven by the same hooks (dataset drop, generation advance).
func (rc *RenderCache) EvictWhere(pred func(Params) bool) int {
	if rc == nil {
		return 0
	}
	rc.mu.Lock()
	n := 0
	for el := rc.order.Front(); el != nil; {
		next := el.Next()
		if pred(el.Value.(*Rendered).Params) {
			rc.removeLocked(el)
			n++
		}
		el = next
	}
	if n > 0 {
		rc.syncGauges()
	}
	rc.mu.Unlock()
	if n > 0 {
		rc.reg.Counter("serve_render_cache_invalidations_total").Add(int64(n))
	}
	return n
}

// Bytes reports the byte accounting over retained entries.
func (rc *RenderCache) Bytes() int64 {
	if rc == nil {
		return 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.bytes
}

// Len reports the number of retained rendered bodies.
func (rc *RenderCache) Len() int {
	if rc == nil {
		return 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.order.Len()
}
