// Tests for the HTTP analysis service: cache hits, request coalescing,
// LRU eviction, 400 vocabulary errors, shutdown cancellation, and the
// registry endpoints — race-clean under `go test -race`.
//
// Cache mechanics are pinned with stub runners returning a small real
// Results (generated once at Scale 0.02, models skipped), so assertions
// exercise the full render path without per-test pipeline cost;
// TestRealPipeline covers the production runner end to end.
package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"context"

	"turnup"
	"turnup/internal/obs"
	"turnup/internal/serve"
)

var (
	tinyOnce sync.Once
	tinyRes  *turnup.Results
	tinyErr  error
)

// tinyResults generates one small corpus + descriptive-only suite shared
// by every stub runner in this file.
func tinyResults(t testing.TB) *turnup.Results {
	t.Helper()
	tinyOnce.Do(func() {
		var d *turnup.Dataset
		if d, tinyErr = turnup.Generate(turnup.Config{Seed: 7, Scale: 0.02}); tinyErr != nil {
			return
		}
		tinyRes, tinyErr = turnup.Run(d, turnup.RunOptions{Seed: 7, SkipModels: true})
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyRes
}

// tryGet issues a GET and returns (status code, X-Cache header, body);
// unlike get it is safe to call off the test goroutine.
func tryGet(url string) (int, string, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", "", err
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), string(body), nil
}

// get issues a GET and returns (status code, X-Cache header, body).
func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	code, cache, body, err := tryGet(url)
	if err != nil {
		t.Fatal(err)
	}
	return code, cache, body
}

func TestColdRunThenCacheHit(t *testing.T) {
	res := tinyResults(t)
	var runs atomic.Int64
	reg := obs.NewRegistry()
	srv := serve.New(serve.Options{
		Metrics: reg,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			runs.Add(1)
			return res, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	url := ts.URL + "/v1/report/growth?seed=7&scale=0.02&models=false"
	code, cache, body := get(t, url)
	if code != http.StatusOK || cache != "miss" {
		t.Fatalf("cold request: code=%d cache=%q, want 200 miss", code, cache)
	}
	if !strings.Contains(body, "Figure 1: Monthly growth") {
		t.Fatalf("cold request body missing growth section:\n%s", body)
	}
	code, cache, body2 := get(t, url)
	if code != http.StatusOK || cache != "hit" {
		t.Fatalf("repeat request: code=%d cache=%q, want 200 hit", code, cache)
	}
	if body2 != body {
		t.Fatal("cache hit rendered different bytes than the cold run")
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("pipeline ran %d times, want 1", n)
	}
	// The hit is observable on /metrics, as the acceptance criteria demand.
	// The repeat request lands in the render tier (the rendered body was
	// installed on the cold run), so the result cache records only the miss
	// while the render cache records one miss then one hit.
	code, _, metrics := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics code=%d", code)
	}
	for _, want := range []string{"serve_render_cache_hits_total 1", "serve_render_cache_misses_total 1", "serve_cache_misses_total 1", "serve_http_requests_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestConcurrentRequestsCoalesce(t *testing.T) {
	res := tinyResults(t)
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	reg := obs.NewRegistry()
	srv := serve.New(serve.Options{
		Metrics: reg,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			runs.Add(1)
			once.Do(func() { close(started) })
			<-release
			return res, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const n = 8
	url := ts.URL + "/v1/report/growth?seed=1&scale=0.02"
	type outcome struct {
		code  int
		cache string
		err   error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			code, cache, _, err := tryGet(url)
			results <- outcome{code, cache, err}
		}()
	}
	<-started // the one pipeline run is in flight; everything else must wait on it
	close(release)

	counts := map[string]int{}
	for i := 0; i < n; i++ {
		out := <-results
		if out.err != nil {
			t.Fatal(out.err)
		}
		if out.code != http.StatusOK {
			t.Fatalf("request %d: code=%d", i, out.code)
		}
		counts[out.cache]++
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran the pipeline %d times, want 1", n, got)
	}
	if counts["miss"] != 1 {
		t.Fatalf("want exactly 1 miss, got %v", counts)
	}
	// Requests that arrived while the run was in flight coalesced; any that
	// arrived after completion are plain hits. Either way: one run.
	if counts["coalesced"]+counts["hit"] != n-1 {
		t.Fatalf("want %d coalesced+hit, got %v", n-1, counts)
	}
}

func TestLRUEviction(t *testing.T) {
	res := tinyResults(t)
	var mu sync.Mutex
	runsBySeed := map[uint64]int{}
	reg := obs.NewRegistry()
	srv := serve.New(serve.Options{
		CacheSize: 2,
		// This test pins the result tier's LRU mechanics; the render tier
		// would otherwise serve seed 1 from its cached body after the result
		// eviction and hide the re-run.
		RenderCacheBytes: -1,
		Metrics:          reg,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			mu.Lock()
			runsBySeed[p.Seed]++
			mu.Unlock()
			return res, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, seed := range []int{1, 2, 3} { // capacity 2: seed 1 falls out
		if code, _, _ := get(t, fmt.Sprintf("%s/v1/report/growth?seed=%d", ts.URL, seed)); code != http.StatusOK {
			t.Fatalf("seed %d: code=%d", seed, code)
		}
	}
	if got := srv.Cache().Len(); got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}
	code, cache, _ := get(t, ts.URL+"/v1/report/growth?seed=1")
	if code != http.StatusOK || cache != "miss" {
		t.Fatalf("evicted seed: code=%d cache=%q, want 200 miss", code, cache)
	}
	mu.Lock()
	if runsBySeed[1] != 2 {
		t.Fatalf("seed 1 ran %d times, want 2 (evicted between)", runsBySeed[1])
	}
	mu.Unlock()
	if metrics := mustGet(t, ts.URL+"/metrics"); !strings.Contains(metrics, "serve_cache_evictions_total 2") {
		t.Fatalf("/metrics eviction counter, want 2 evictions:\n%s", metrics)
	}
}

func TestBadParamsReturn400(t *testing.T) {
	srv := serve.New(serve.Options{
		MaxScale: 0.1,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			t.Error("pipeline ran for an invalid request")
			return nil, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		url  string
		want string // substring of the error body
	}{
		{"/v1/report/nope", "unknown section"},
		{"/v1/report/nope", "growth"}, // the 400 lists the valid vocabulary
		{"/v1/report/growth?stages=Bogus", "unknown stage"},
		{"/v1/report/growth?stages=Bogus", "Taxonomy"},
		{"/v1/report/growth?seed=abc", "bad seed"},
		{"/v1/report/growth?scale=0.5", "out of range"}, // MaxScale 0.1
		{"/v1/report/growth?scale=-1", "out of range"},
		{"/v1/report/growth?k=0", "bad k"},
		{"/v1/report/growth?models=maybe", "bad models"},
		{"/v1/report/zip-all?models=false&stages=ZIPAll", "model stage"},
	}
	for _, tc := range cases {
		code, _, body := get(t, ts.URL+tc.url)
		if code != http.StatusBadRequest {
			t.Errorf("%s: code=%d, want 400", tc.url, code)
		}
		if !strings.Contains(body, tc.want) {
			t.Errorf("%s: body %q missing %q", tc.url, body, tc.want)
		}
	}
	// JSON errors for JSON requests, in the structured v1 envelope.
	code, _, body := get(t, ts.URL+"/v1/report/nope?format=json")
	if code != http.StatusBadRequest {
		t.Fatalf("json error: code=%d", code)
	}
	var e serve.ErrorResponse
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error.Message == "" {
		t.Fatalf("json error body %q not an {error:{code,message}} envelope (%v)", body, err)
	}
	if e.Error.Code != serve.CodeBadParams {
		t.Fatalf("json error code %q, want %q", e.Error.Code, serve.CodeBadParams)
	}
}

func TestShutdownCancelsInflightRun(t *testing.T) {
	base, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	srv := serve.New(serve.Options{
		BaseContext: base,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			close(started)
			<-ctx.Done() // a real run observes cancellation between months/stages
			return nil, ctx.Err()
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type outcome struct {
		code int
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		code, _, _, err := tryGet(ts.URL + "/v1/report/growth?seed=1")
		done <- outcome{code, err}
	}()
	<-started
	cancel() // shutdown: the base context aborts the in-flight run
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled run answered %d, want 503", out.code)
	}
}

func TestRegistryEndpoints(t *testing.T) {
	srv := serve.New(serve.Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var sectionBody struct {
		Sections []string `json:"sections"`
	}
	if err := json.Unmarshal([]byte(mustGet(t, ts.URL+"/v1/sections?format=json")), &sectionBody); err != nil {
		t.Fatal(err)
	}
	if sections := sectionBody.Sections; len(sections) == 0 || sections[0] != "taxonomy" {
		t.Fatalf("sections = %v", sections)
	}
	var stageBody struct {
		Stages []struct {
			Name  string   `json:"name"`
			Deps  []string `json:"deps"`
			Model bool     `json:"model"`
		} `json:"stages"`
	}
	if err := json.Unmarshal([]byte(mustGet(t, ts.URL+"/v1/stages?format=json")), &stageBody); err != nil {
		t.Fatal(err)
	}
	byName := map[string]bool{}
	for _, st := range stageBody.Stages {
		byName[st.Name] = true
	}
	if !byName["Taxonomy"] || !byName["ZIPAll"] {
		t.Fatalf("stages missing expected names: %v", byName)
	}
	if body := mustGet(t, ts.URL+"/healthz"); !strings.HasPrefix(body, "ok") {
		t.Fatalf("healthz body %q", body)
	}
}

// TestRealPipeline exercises the production runner (generate→analyse) end
// to end at a tiny scale: a cold run renders a real section, an identical
// repeat is a cache hit, and JSON format round-trips.
func TestRealPipeline(t *testing.T) {
	srv := serve.New(serve.Options{MaxScale: 0.05})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	url := ts.URL + "/v1/report/growth,corpus?seed=3&scale=0.02&models=false"
	code, cache, body := get(t, url)
	if code != http.StatusOK || cache != "miss" {
		t.Fatalf("cold: code=%d cache=%q", code, cache)
	}
	if !strings.Contains(body, "Figure 1: Monthly growth") {
		t.Fatalf("missing growth section:\n%s", body)
	}
	code, cache, _ = get(t, url)
	if code != http.StatusOK || cache != "hit" {
		t.Fatalf("repeat: code=%d cache=%q, want 200 hit", code, cache)
	}
	var rr struct {
		Cache  string `json:"cache"`
		Report string `json:"report"`
	}
	if err := json.Unmarshal([]byte(mustGet(t, url+"&format=json")), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Cache != "hit" || !strings.Contains(rr.Report, "Figure 1") {
		t.Fatalf("json response: cache=%q report len=%d", rr.Cache, len(rr.Report))
	}
}

// mustGet fetches url and returns the body, failing the test on any error
// or non-200 status.
func mustGet(t *testing.T, url string) string {
	t.Helper()
	code, _, body := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s: code=%d body=%q", url, code, body)
	}
	return body
}
