package serve

import (
	"compress/gzip"
	"net/http"
	"strings"
)

// acceptsGzip reports whether the client negotiates gzip. A plain
// substring test over Accept-Encoding matches the metrics handler's
// behaviour; "gzip;q=0" is rare enough to ignore for an internal tier.
func acceptsGzip(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
}

// negotiateGzip sets Vary: Accept-Encoding (on every response, compressed
// or not — caches must key on the header either way) and, when the client
// accepts gzip, returns a lazily compressing wrapper. The caller must
// invoke the returned flush after the handler body. Compression starts at
// the first write: WriteHeader skips bodiless statuses (204/304) and
// responses whose Content-Encoding is already set (the render cache's
// precompressed hot path serves its own gzip bytes).
func negotiateGzip(w http.ResponseWriter, r *http.Request) (http.ResponseWriter, func()) {
	w.Header().Add("Vary", "Accept-Encoding")
	if !acceptsGzip(r) {
		return w, func() {}
	}
	gw := &gzipResponseWriter{ResponseWriter: w}
	return gw, gw.flush
}

// gzipResponseWriter compresses the response body when the status allows
// a body and the handler did not already encode one itself.
type gzipResponseWriter struct {
	http.ResponseWriter
	zw          *gzip.Writer
	wroteHeader bool
	passthrough bool
}

func (g *gzipResponseWriter) WriteHeader(code int) {
	if g.wroteHeader {
		return
	}
	g.wroteHeader = true
	h := g.Header()
	switch {
	case code == http.StatusNoContent || code == http.StatusNotModified:
		g.passthrough = true
	case h.Get("Content-Encoding") != "":
		g.passthrough = true
	default:
		h.Set("Content-Encoding", "gzip")
		h.Del("Content-Length")
		g.zw = gzip.NewWriter(g.ResponseWriter)
	}
	g.ResponseWriter.WriteHeader(code)
}

func (g *gzipResponseWriter) Write(p []byte) (int, error) {
	if !g.wroteHeader {
		g.WriteHeader(http.StatusOK)
	}
	if g.passthrough {
		return g.ResponseWriter.Write(p)
	}
	return g.zw.Write(p)
}

// flush terminates the gzip stream (writing its footer); it must run
// after the handler body, deferred by the wrapping handler.
func (g *gzipResponseWriter) flush() {
	if g.zw != nil {
		_ = g.zw.Close()
	}
}
