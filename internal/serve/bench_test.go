// Benchmarks contrasting the two request regimes of the analysis service:
// a cache hit (LRU lookup + render + HTTP) versus a cold request that
// pays for a full generate→analyse pipeline run. Run with
//
//	go test -bench 'Serve' -benchtime 3x ./internal/serve/
//
// The gap is the cache's value proposition: hits are microseconds-to-
// milliseconds while cold runs are seconds at real scales.
package serve_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"turnup/internal/serve"
)

// benchGet fetches url and discards the body.
func benchGet(b *testing.B, url string) {
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("GET %s: code=%d", url, resp.StatusCode)
	}
}

// BenchmarkServeCacheHit measures a repeated identical request: after one
// priming run, every iteration is an LRU hit.
func BenchmarkServeCacheHit(b *testing.B) {
	ts := httptest.NewServer(serve.New(serve.Options{}))
	defer ts.Close()
	url := ts.URL + "/v1/report/growth?seed=1&scale=0.02&models=false"
	benchGet(b, url) // prime the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, url)
	}
}

// BenchmarkServeHotRenderCached measures the full hot path with the
// rendered-section cache at its default budget: after the priming run,
// every iteration serves the full /v1/report body as a memcpy of the
// cached rendering.
func BenchmarkServeHotRenderCached(b *testing.B) {
	ts := httptest.NewServer(serve.New(serve.Options{}))
	defer ts.Close()
	url := ts.URL + "/v1/report?seed=1&scale=0.02&models=false"
	benchGet(b, url) // prime both cache tiers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, url)
	}
}

// BenchmarkServeHotRenderUncached is the same hot request with the render
// tier disabled: every iteration is a result-cache hit that still pays
// for a full report render. The ratio against ServeHotRenderCached is the
// render cache's value proposition and the bench-cache gate (≥2x).
func BenchmarkServeHotRenderUncached(b *testing.B) {
	ts := httptest.NewServer(serve.New(serve.Options{RenderCacheBytes: -1}))
	defer ts.Close()
	url := ts.URL + "/v1/report?seed=1&scale=0.02&models=false"
	benchGet(b, url) // prime the result cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, url)
	}
}

// BenchmarkServeCold measures unique requests: every iteration uses a
// fresh seed, so each pays for a full pipeline run through the real
// runner at Scale 0.02 (descriptive stages only).
func BenchmarkServeCold(b *testing.B) {
	ts := httptest.NewServer(serve.New(serve.Options{}))
	defer ts.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGet(b, fmt.Sprintf("%s/v1/report/growth?seed=%d&scale=0.02&models=false", ts.URL, i+1000))
	}
}
