// Contract tests for the API v1 response envelope: every JSON error is
// {"error":{"code","message"}} plus the uniform metadata (request_id,
// version, shard), every text error is "error <code>: ..." with the same
// metadata on headers, the code vocabulary is stable per endpoint, and —
// the regression this envelope fixed — Content-Type agrees with the body
// shape on every 4xx/5xx, including the 413 minted by the upload body
// limiter. These are the assertions client SDKs and the router rely on;
// breaking one is an API break, not a refactor.
package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"turnup"
	"turnup/internal/serve"
)

// contractServer is the shared fixture: a named shard with a tiny upload
// cap (so a modest body trips the 413 limiter) and a stub runner.
func contractServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Options{
		Shard:           "http://shard-a.test",
		MaxDatasetBytes: 64,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			return tinyResults(t), nil
		},
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// doReq issues one request with the given Accept header and returns the
// response with its body read.
func doReq(t *testing.T, method, url, contentType, accept string, body string) (*http.Response, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	req.Header.Set("X-Request-Id", "contract-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

// TestErrorEnvelopeContract pins status, code, envelope shape, and
// Content-Type for every error path, in both negotiated formats.
func TestErrorEnvelopeContract(t *testing.T) {
	ts := contractServer(t)
	oversized := strings.Repeat("x", 4096) // >64-byte MaxDatasetBytes

	cases := []struct {
		name        string
		method      string
		path        string
		contentType string
		body        string
		wantStatus  int
		wantCode    string
	}{
		{"unknown section", "GET", "/v1/report/nope", "", "", 400, serve.CodeBadParams},
		{"bad seed", "GET", "/v1/report/growth?seed=abc", "", "", 400, serve.CodeBadParams},
		{"bad stage", "GET", "/v1/report/growth?stages=Bogus", "", "", 400, serve.CodeBadParams},
		{"unknown dataset report", "GET", "/v1/report/growth?dataset=ds-nope", "", "", 404, serve.CodeUnknownDataset},
		{"window without dataset", "GET", "/v1/report/growth?window=30d", "", "", 400, serve.CodeBadParams},
		{"as-of without dataset", "GET", "/v1/report/growth?as-of=2020-03-11", "", "", 400, serve.CodeBadParams},
		{"bad window", "GET", "/v1/report/growth?dataset=ds-nope&window=monthly", "", "", 400, serve.CodeBadParams},
		{"bad as-of", "GET", "/v1/report/growth?dataset=ds-nope&as-of=yesterday", "", "", 400, serve.CodeBadParams},
		{"windowed unknown dataset", "GET", "/v1/report/growth?dataset=ds-nope&window=30d", "", "", 404, serve.CodeUnknownDataset},
		{"events unknown dataset", "POST", "/v1/datasets/ds-nope/events", "application/x-ndjson", `{"kind":"user","id":7}`, 404, serve.CodeUnknownDataset},
		{"events unsupported encoding", "POST", "/v1/datasets/ds-nope/events", "application/octet-stream", "x", 415, serve.CodeBadParams},
		{"events malformed line", "POST", "/v1/datasets/ds-nope/events", "application/x-ndjson", "not json", 400, serve.CodeBadParams},
		{"events empty batch", "POST", "/v1/datasets/ds-nope/events", "application/x-ndjson", "\n", 400, serve.CodeBadParams},
		{"events oversized", "POST", "/v1/datasets/ds-nope/events", "application/x-ndjson", oversized, 413, serve.CodeDatasetTooLarge},
		{"unknown dataset delete", "DELETE", "/v1/datasets/ds-nope", "", "", 404, serve.CodeUnknownDataset},
		{"oversized upload", "POST", "/v1/datasets", "application/zip", oversized, 413, serve.CodeDatasetTooLarge},
		{"unsupported upload encoding", "POST", "/v1/datasets", "text/csv", "a,b\n", 415, serve.CodeBadParams},
		{"junk zip upload", "POST", "/v1/datasets", "application/zip", "PKjunk", 400, serve.CodeBadParams},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/json", func(t *testing.T) {
			resp, body := doReq(t, tc.method, ts.URL+tc.path, tc.contentType, "application/json", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status=%d, want %d (body %q)", resp.StatusCode, tc.wantStatus, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type=%q, want application/json — body/header disagreement on an error path", ct)
			}
			if got := resp.Header.Get("X-Error-Code"); got != tc.wantCode {
				t.Fatalf("X-Error-Code=%q, want %q", got, tc.wantCode)
			}
			var e serve.ErrorResponse
			if err := json.Unmarshal([]byte(body), &e); err != nil {
				t.Fatalf("body %q is not the v1 error envelope: %v", body, err)
			}
			if e.Error.Code != tc.wantCode {
				t.Fatalf("error.code=%q, want %q", e.Error.Code, tc.wantCode)
			}
			if e.Error.Message == "" {
				t.Fatal("error.message is empty")
			}
			if e.RequestID != "contract-1" {
				t.Fatalf("request_id=%q, want the inbound id contract-1", e.RequestID)
			}
			if e.Version == "" || e.Shard != "http://shard-a.test" {
				t.Fatalf("metadata version=%q shard=%q incomplete", e.Version, e.Shard)
			}
		})
		t.Run(tc.name+"/text", func(t *testing.T) {
			resp, body := doReq(t, tc.method, ts.URL+tc.path, tc.contentType, "", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status=%d, want %d (body %q)", resp.StatusCode, tc.wantStatus, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
				t.Fatalf("Content-Type=%q, want text/plain", ct)
			}
			if !strings.HasPrefix(body, "error "+tc.wantCode+":") {
				t.Fatalf("text error body %q does not open with %q", body, "error "+tc.wantCode+":")
			}
			// The text form carries the metadata on headers instead.
			if got := resp.Header.Get("X-Error-Code"); got != tc.wantCode {
				t.Fatalf("X-Error-Code=%q, want %q", got, tc.wantCode)
			}
			if resp.Header.Get("X-Request-Id") != "contract-1" || resp.Header.Get("X-Shard") != "http://shard-a.test" {
				t.Fatalf("header metadata incomplete: id=%q shard=%q",
					resp.Header.Get("X-Request-Id"), resp.Header.Get("X-Shard"))
			}
		})
	}
}

// TestShutdownErrorCode pins the one retryable shard error: a run aborted
// by the base (shutdown) context answers 503 with code shutting_down —
// the signal the router's retry logic branches on.
func TestShutdownErrorCode(t *testing.T) {
	base, cancel := context.WithCancel(context.Background())
	cancel() // already shutting down
	srv := serve.New(serve.Options{
		BaseContext: base,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			return nil, ctx.Err()
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := doReq(t, "GET", ts.URL+"/v1/report/growth", "", "application/json", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d, want 503 (body %q)", resp.StatusCode, body)
	}
	var e serve.ErrorResponse
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error.Code != serve.CodeShuttingDown {
		t.Fatalf("body %q: want code shutting_down (%v)", body, err)
	}
	if !serve.RetryableCode(e.Error.Code) {
		t.Fatal("shutting_down must be retryable")
	}
	if serve.RetryableCode(serve.CodeBadParams) || serve.RetryableCode(serve.CodeUnknownDataset) {
		t.Fatal("terminal codes must not be retryable")
	}
}

// TestCacheHeaderParityContract pins the satellite of the render-cache
// tier: X-Cache, X-Request-Id, X-Shard, X-Dataset-Generation, and ETag
// must appear on render-cache hits and on 304 Not Modified responses
// exactly as they do on a full-bodied cold response. Clients key
// revalidation and staleness decisions on these headers, so a cache tier
// that strips them is an API break even though the body bytes match.
func TestCacheHeaderParityContract(t *testing.T) {
	srv := serve.New(serve.Options{
		Shard: "http://shard-a.test",
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			return tinyResults(t), nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	contracts, users := csvPair(t, tinyDataset(t))
	code, info := upload(t, ts.URL, contracts, users)
	if code/100 != 2 {
		t.Fatalf("upload status=%d", code)
	}
	url := ts.URL + "/v1/report/growth?dataset=" + info.ID
	rid := map[string]string{"X-Request-Id": "parity-1"}

	cold, coldBody := getHdr(t, url, rid)
	if cold.StatusCode != http.StatusOK || len(coldBody) == 0 {
		t.Fatalf("cold: status=%d body=%dB", cold.StatusCode, len(coldBody))
	}
	etag := cold.Header.Get("ETag")
	gen := cold.Header.Get("X-Dataset-Generation")
	if etag == "" || gen == "" {
		t.Fatalf("cold response missing validators: etag=%q generation=%q", etag, gen)
	}

	hit, hitBody := getHdr(t, url, rid)
	cond, condBody := getHdr(t, url, map[string]string{"X-Request-Id": "parity-1", "If-None-Match": etag})
	if hit.Header.Get("X-Cache") != "hit" || string(hitBody) != string(coldBody) {
		t.Fatalf("warm: X-Cache=%q body match=%v", hit.Header.Get("X-Cache"), string(hitBody) == string(coldBody))
	}
	if cond.StatusCode != http.StatusNotModified || len(condBody) != 0 {
		t.Fatalf("conditional: status=%d body=%dB, want 304 empty", cond.StatusCode, len(condBody))
	}
	for name, resp := range map[string]*http.Response{"render-cache hit": hit, "304": cond} {
		for hdr, want := range map[string]string{
			"X-Cache":              "hit",
			"X-Request-Id":         "parity-1",
			"X-Shard":              "http://shard-a.test",
			"X-Dataset-Generation": gen,
			"ETag":                 etag,
		} {
			if got := resp.Header.Get(hdr); got != want {
				t.Errorf("%s response: %s=%q, want %q", name, hdr, got, want)
			}
		}
	}
}

// TestSuccessMetadataContract asserts every /v1/* JSON success body
// carries the uniform metadata and that the named-field (non-bare-array)
// shapes hold for the registry endpoints.
func TestSuccessMetadataContract(t *testing.T) {
	ts := contractServer(t)
	paths := []string{
		"/v1/report/growth?models=false",
		"/v1/sections",
		"/v1/stages",
		"/v1/datasets",
		"/healthz",
	}
	for _, path := range paths {
		t.Run(path, func(t *testing.T) {
			resp, body := doReq(t, "GET", ts.URL+path, "", "application/json", "")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status=%d (body %q)", resp.StatusCode, body)
			}
			var m serve.Meta
			if err := json.Unmarshal([]byte(body), &m); err != nil {
				t.Fatalf("body %q: %v", body, err)
			}
			if m.RequestID != "contract-1" || m.Version == "" || m.Shard != "http://shard-a.test" {
				t.Fatalf("%s metadata incomplete: %+v", path, m)
			}
			// A JSON body must never decode as a bare array — the v1 break
			// that moved /v1/sections and /v1/stages into objects.
			if strings.HasPrefix(strings.TrimSpace(body), "[") {
				t.Fatalf("%s answered a bare JSON array; v1 bodies are objects", path)
			}
		})
	}
}
