package serve

import (
	"archive/zip"
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"turnup"
	"turnup/internal/ingest"
	"turnup/internal/obs"
)

// DatasetInfo describes one stored dataset as /v1/datasets lists it. The
// Ledger marker is explicit ("present" or "absent") rather than a silent
// degradation: uploaded CSV corpora carry no chain evidence, so the §4.5
// audit reports their high-value contracts as unverifiable, and clients
// deserve to know that before reading the report.
type DatasetInfo struct {
	ID        string `json:"id"`
	Digest    string `json:"digest"`
	Users     int    `json:"users"`
	Contracts int    `json:"contracts"`
	Bytes     int64  `json:"bytes"`
	Ledger    string `json:"ledger"` // "present" | "absent"
	// Generation counts content versions of this id: 1 at upload, +1 per
	// applied event batch. It keys the result cache (a report cached at
	// generation g stays valid exactly until an append produces g+1) and
	// is echoed on reports as X-Dataset-Generation.
	Generation uint64 `json:"generation"`
	// Shard is set only by the router's merged listing — the shard the
	// dataset was found on. Single-shard listings leave it empty.
	Shard string `json:"shard,omitempty"`
}

// DatasetID derives the short stable id a dataset is stored and routed
// under from its full content digest. The router computes it for uploads
// so they consistent-hash to the same shard every ?dataset= report for
// that id will route to.
func DatasetID(digest string) string { return "ds-" + digest[:16] }

// ledgerMarker renders the explicit ledger flag for d.
func ledgerMarker(d *turnup.Dataset) string {
	if d.HasLedger() {
		return "present"
	}
	return "absent"
}

// Store is the size/count-bounded in-memory dataset store behind the
// /v1/datasets endpoints. Datasets are identified by a short id derived
// from their content digest, so re-uploading identical bytes is
// idempotent; least-recently-used datasets are evicted once the store
// exceeds its count or canonical-byte bounds. All mutations are counted
// in the registry (serve_datasets_{uploads,deletes,evictions}_total plus
// the serve_datasets_{count,bytes} gauges) so store behaviour is
// observable on /metrics.
type Store struct {
	maxCount int
	maxBytes int64
	reg      *obs.Registry
	onDrop   func(id string) // fired (outside mu) when an id leaves the store

	mu       sync.Mutex
	bytes    int64
	order    *list.List               // *storeEntry, front = most recently used
	byID     map[string]*list.Element // DatasetInfo.ID → order element
	byDigest map[string]*list.Element // current digest → order element
}

// storeEntry is one stored dataset at its current generation: the corpus
// snapshot plus the shared analysis Index built over it. Both are replaced
// wholesale by Append (copy-on-write), never mutated, so a Snapshot handed
// to an in-flight report run stays internally consistent forever. root is
// the generation-1 content digest, kept addressable so re-uploading the
// original bytes stays idempotent after appends have rolled info.Digest.
type storeEntry struct {
	info DatasetInfo
	root string
	d    *turnup.Dataset
	ix   *turnup.Index
}

// Snapshot pins one dataset generation for the length of a report run:
// the listing entry, the corpus, and its shared Index. handleReport
// resolves it once and threads it to the runner, so a concurrent DELETE,
// LRU eviction, or append can at worst retire the id from the store — the
// run keeps its immutable snapshot and completes normally.
type Snapshot struct {
	Info DatasetInfo
	D    *turnup.Dataset
	Ix   *turnup.Index
}

// OnDrop registers fn to be called — outside the store lock — with the id
// of every dataset that leaves the store, whether by DELETE or LRU
// eviction. The server wires it to result-cache invalidation: once an id
// is gone, a re-upload restarts generations at 1, and any cached results
// for the old content would alias the new (id, generation) keys.
func (s *Store) OnDrop(fn func(id string)) { s.onDrop = fn }

// NewStore builds a dataset store retaining at most maxCount datasets and
// maxBytes total binary-form bytes (<=0 means 16 datasets / 256 MiB).
func NewStore(maxCount int, maxBytes int64, reg *obs.Registry) *Store {
	if maxCount <= 0 {
		maxCount = 16
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &Store{
		maxCount: maxCount,
		maxBytes: maxBytes,
		reg:      reg,
		order:    list.New(),
		byID:     make(map[string]*list.Element),
		byDigest: make(map[string]*list.Element),
	}
}

// Add stores d and returns its listing entry; created reports whether the
// dataset was new (false: identical content was already stored, and the
// existing entry was refreshed). A dataset larger than the whole store is
// rejected rather than admitted-then-evicted.
func (s *Store) Add(d *turnup.Dataset) (info DatasetInfo, created bool, err error) {
	// Identity is the canonical CSV digest (format-independent: a binary
	// upload of the same corpus dedupes against its CSV twin); the byte
	// accounting is the compact binary size, the form a stored dataset
	// actually occupies and replicates in.
	digest, _ := d.Digest()
	n := d.BinarySize()
	if n > s.maxBytes {
		return DatasetInfo{}, false, fmt.Errorf("dataset of %d binary bytes exceeds the store bound of %d", n, s.maxBytes)
	}
	var dropped []string
	defer func() { s.fireDrops(dropped) }()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byDigest[digest]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*storeEntry).info, false, nil
	}
	id := DatasetID(digest)
	if _, ok := s.byID[id]; ok {
		// Distinct digests sharing a 64-bit id prefix — astronomically
		// unlikely, but refuse rather than alias.
		return DatasetInfo{}, false, fmt.Errorf("dataset id %s collides with a stored dataset of different content", id)
	}
	sum := d.Summary()
	e := &storeEntry{
		info: DatasetInfo{
			ID:         id,
			Digest:     digest,
			Users:      sum.Users,
			Contracts:  sum.Contracts,
			Bytes:      n,
			Ledger:     ledgerMarker(d),
			Generation: 1,
		},
		root: digest,
		d:    d,
		ix:   turnup.NewIndex(d),
	}
	el := s.order.PushFront(e)
	s.byID[id] = el
	s.byDigest[digest] = el
	s.bytes += n
	s.reg.Counter("serve_datasets_uploads_total").Inc()
	for s.order.Len() > s.maxCount || s.bytes > s.maxBytes {
		dropped = append(dropped, s.evictBack())
		s.reg.Counter("serve_datasets_evictions_total").Inc()
	}
	s.gauges()
	return e.info, true, nil
}

// evictBack drops the least-recently-used dataset and returns its id;
// callers hold mu.
func (s *Store) evictBack() string {
	back := s.order.Back()
	if back == nil {
		return ""
	}
	e := back.Value.(*storeEntry)
	delete(s.byID, e.info.ID)
	delete(s.byDigest, e.info.Digest)
	delete(s.byDigest, e.root)
	s.bytes -= e.info.Bytes
	s.order.Remove(back)
	return e.info.ID
}

// fireDrops invokes the drop callback for each departed id. Callers must
// NOT hold mu: the callback reaches into the result cache, and holding
// the store lock across it would order the two locks.
func (s *Store) fireDrops(ids []string) {
	if s.onDrop == nil {
		return
	}
	for _, id := range ids {
		if id != "" {
			s.onDrop(id)
		}
	}
}

// gauges refreshes the count/byte gauges; callers hold mu.
func (s *Store) gauges() {
	s.reg.Gauge("serve_datasets_count").Set(float64(s.order.Len()))
	s.reg.Gauge("serve_datasets_bytes").Set(float64(s.bytes))
}

// Info returns the listing entry for id, refreshing its recency — request
// resolution counts as use, so datasets being queried stay resident.
func (s *Store) Info(id string) (DatasetInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		return DatasetInfo{}, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*storeEntry).info, true
}

// ByDigest returns the stored dataset with the given content digest — the
// runner's load path, keyed the same way as the result cache.
func (s *Store) ByDigest(digest string) (*turnup.Dataset, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byDigest[digest]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*storeEntry).d, true
}

// Snapshot pins the dataset with the given id at its current generation,
// refreshing its recency. The returned snapshot is immutable: appends
// replace the entry's corpus and Index rather than mutating them, so the
// holder can run a full analysis against it while the store moves on.
func (s *Store) Snapshot(id string) (*Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	e := el.Value.(*storeEntry)
	return &Snapshot{Info: e.info, D: e.d, Ix: e.ix}, true
}

// ErrUnknownDataset marks an operation naming an id the store does not
// hold (never stored, deleted, or evicted).
var ErrUnknownDataset = errors.New("unknown dataset")

// ErrStoreFull marks an append whose binary bytes would grow the store
// past its byte bound — served as 413 dataset_too_large, like an
// oversized upload.
var ErrStoreFull = errors.New("dataset store byte bound exceeded")

// Append applies a validated event batch to the dataset with the given
// id, producing its next generation: a copy-on-write corpus extension, an
// incrementally extended Index (falling back to a full rebuild when the
// batch is out of creation order), and a rolling content digest
// H(parentDigest ‖ batch CSV). The previous generation's snapshot remains
// intact for any in-flight report run. Growth beyond the store's byte
// bound answers an error naming the bound; the dataset itself is kept at
// its previous generation.
func (s *Store) Append(id string, b *ingest.Batch) (DatasetInfo, error) {
	// Render the batch's canonical CSV outside the lock: the rolling digest
	// commits to it. (Byte accounting is binary, measured after the apply.)
	var contractsCSV, usersCSV bytes.Buffer
	if err := writeBatchCSV(&contractsCSV, &usersCSV, b); err != nil {
		return DatasetInfo{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		return DatasetInfo{}, fmt.Errorf("%w %q", ErrUnknownDataset, id)
	}
	e := el.Value.(*storeEntry)
	if err := b.ValidateAgainst(e.d); err != nil {
		return DatasetInfo{}, err
	}

	nd := ingest.Apply(e.d, b)
	// Growth is the binary-size delta of the extended corpus — the same
	// accounting Add uses. Over the bound, the dataset keeps its previous
	// generation (nd is simply discarded).
	grow := nd.BinarySize() - e.info.Bytes
	if s.bytes+grow > s.maxBytes {
		return DatasetInfo{}, fmt.Errorf("%w: append of %d binary bytes exceeds the bound of %d", ErrStoreFull, grow, s.maxBytes)
	}
	h := sha256.New()
	h.Write([]byte(e.info.Digest))
	h.Write(contractsCSV.Bytes())
	h.Write(usersCSV.Bytes())
	digest := hex.EncodeToString(h.Sum(nil))

	ne := &storeEntry{
		info: e.info,
		root: e.root,
		d:    nd,
		ix:   e.ix.Append(nd, b.Contracts),
	}
	ne.info.Digest = digest
	ne.info.Users = len(nd.Users)
	ne.info.Contracts = len(nd.Contracts)
	ne.info.Bytes = e.info.Bytes + grow
	ne.info.Generation = e.info.Generation + 1

	// The root digest stays addressable so re-uploading the original
	// bytes dedupes to this (now-later-generation) entry instead of
	// colliding on the id.
	if e.info.Digest != e.root {
		delete(s.byDigest, e.info.Digest)
	}
	s.byDigest[digest] = el
	el.Value = ne
	s.order.MoveToFront(el)
	s.bytes += grow
	s.reg.Counter("serve_datasets_appends_total").Inc()
	s.reg.Counter("serve_events_applied_total").Add(int64(b.Len()))
	s.gauges()
	return ne.info, nil
}

// writeBatchCSV renders the batch in the canonical hfgen CSV forms — the
// byte stream the rolling digest commits to, so identical appends to
// identical parents always produce identical digests.
func writeBatchCSV(contracts, users *bytes.Buffer, b *ingest.Batch) error {
	if err := ingest.WriteBatchContractsCSV(contracts, b.Contracts); err != nil {
		return err
	}
	return ingest.WriteBatchUsersCSV(users, b.Users)
}

// List returns every stored dataset, most recently used first.
func (s *Store) List() []DatasetInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DatasetInfo, 0, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*storeEntry).info)
	}
	return out
}

// Delete removes the dataset with the given id, reporting whether it was
// present. The drop callback then purges the id's cached report results —
// a re-upload restarts at generation 1, and stale entries would alias its
// keys. A report run already holding the snapshot completes normally.
func (s *Store) Delete(id string) bool {
	s.mu.Lock()
	el, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	e := el.Value.(*storeEntry)
	delete(s.byID, e.info.ID)
	delete(s.byDigest, e.info.Digest)
	delete(s.byDigest, e.root)
	s.bytes -= e.info.Bytes
	s.order.Remove(el)
	s.reg.Counter("serve_datasets_deletes_total").Inc()
	s.gauges()
	s.mu.Unlock()
	s.fireDrops([]string{id})
	return true
}

// Len reports the number of stored datasets.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// ErrUnsupportedUpload marks an upload body whose Content-Type is none of
// multipart form data, a zip archive, or the binary dataset form.
var ErrUnsupportedUpload = errors.New("unsupported Content-Type: want multipart/form-data, application/zip, or " + turnup.ContentTypeBinary)

// DecodeUpload parses a POST /v1/datasets body — the hfgen CSV pair as
// multipart form files ("contracts", "users"), as a zip archive holding
// contracts.csv and users.csv, or the versioned binary dataset form under
// its dedicated Content-Type (the router's replication format) — into a
// validated Dataset, bounding the body at maxBytes. It is shared with the
// router, which must parse uploads too: ownership is by content digest,
// and the digest only exists after a parse. Classify failures with
// UploadFailure.
func DecodeUpload(w http.ResponseWriter, r *http.Request, maxBytes int64) (*turnup.Dataset, error) {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	var d *turnup.Dataset
	var err error
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "multipart/"):
		d, err = readMultipartDataset(r)
	case strings.HasPrefix(ct, turnup.ContentTypeBinary):
		d, err = turnup.ReadBinary(r.Body)
	case strings.Contains(ct, "zip"), ct == "", ct == "application/octet-stream":
		d, err = readZipDataset(r.Body)
	default:
		return nil, fmt.Errorf("%w (got %q)", ErrUnsupportedUpload, ct)
	}
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// UploadFailure maps a DecodeUpload (or Store.Add) error onto its HTTP
// status and API v1 error code: oversized bodies are 413
// dataset_too_large, unsupported encodings 415, and everything else —
// malformed CSV, missing halves — 400 bad_params.
func UploadFailure(err error) (status int, code string) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge, CodeDatasetTooLarge
	case errors.Is(err, ErrUnsupportedUpload):
		return http.StatusUnsupportedMediaType, CodeBadParams
	default:
		return http.StatusBadRequest, CodeBadParams
	}
}

// uploadResponse is the JSON body of POST /v1/datasets: the stored
// listing entry inside the uniform v1 envelope. 201 means the dataset
// was new; 200 means identical content was already stored.
type uploadResponse struct {
	Meta
	Dataset DatasetInfo `json:"dataset"`
}

// handleDatasetUpload serves POST /v1/datasets: decode, digest, and
// store the corpus for ?dataset= report requests. Oversized bodies
// answer 413 dataset_too_large, parse failures 400 bad_params;
// re-uploading identical content answers 200 with the existing entry
// instead of 201.
func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	d, err := DecodeUpload(w, r, s.opts.MaxDatasetBytes)
	if err != nil {
		status, code := UploadFailure(err)
		s.fail(w, r, status, code, err)
		return
	}
	info, created, err := s.datasets.Add(d)
	if err != nil {
		s.fail(w, r, http.StatusRequestEntityTooLarge, CodeDatasetTooLarge, err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, uploadResponse{Meta: s.meta(r), Dataset: info})
}

// readMultipartDataset pulls the CSV pair out of a multipart form. The
// canonical field names are "contracts" and "users"; files named
// contracts.csv / users.csv are accepted under any field name.
func readMultipartDataset(r *http.Request) (*turnup.Dataset, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, err
	}
	var contracts, users []byte
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		b, err := io.ReadAll(part)
		part.Close()
		if err != nil {
			return nil, err
		}
		switch {
		case part.FormName() == "contracts", part.FileName() == "contracts.csv":
			contracts = b
		case part.FormName() == "users", part.FileName() == "users.csv":
			users = b
		}
	}
	return readPair(contracts, users)
}

// readZipDataset reads body as a zip archive holding contracts.csv and
// users.csv (any directory prefix).
func readZipDataset(body io.Reader) (*turnup.Dataset, error) {
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, err
	}
	zr, err := zip.NewReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return nil, fmt.Errorf("reading zip body: %w", err)
	}
	var contracts, users []byte
	for _, zf := range zr.File {
		name := zf.Name
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		if name != "contracts.csv" && name != "users.csv" {
			continue
		}
		f, err := zf.Open()
		if err != nil {
			return nil, err
		}
		b, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		if name == "contracts.csv" {
			contracts = b
		} else {
			users = b
		}
	}
	return readPair(contracts, users)
}

// readPair parses the two CSV bodies into a Dataset, requiring both.
func readPair(contracts, users []byte) (*turnup.Dataset, error) {
	if contracts == nil {
		return nil, errors.New("upload is missing contracts.csv (multipart field \"contracts\")")
	}
	if users == nil {
		return nil, errors.New("upload is missing users.csv (multipart field \"users\")")
	}
	return turnup.ReadCSV(bytes.NewReader(contracts), bytes.NewReader(users))
}

// datasetsResponse is the JSON body of GET /v1/datasets — a named field
// inside the v1 envelope rather than a bare array, so the listing can
// grow (per-shard attribution, totals) without breaking clients.
type datasetsResponse struct {
	Meta
	Datasets []DatasetInfo `json:"datasets"`
}

// handleDatasetList serves GET /v1/datasets.
func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	infos := s.datasets.List()
	if wantJSON(r) {
		writeJSON(w, http.StatusOK, datasetsResponse{Meta: s.meta(r), Datasets: infos})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, in := range infos {
		fmt.Fprintf(w, "%s digest=%s users=%d contracts=%d bytes=%d ledger=%s\n",
			in.ID, in.Digest, in.Users, in.Contracts, in.Bytes, in.Ledger)
	}
}

// handleDatasetDelete serves DELETE /v1/datasets/{id}.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.datasets.Delete(id) {
		s.fail(w, r, http.StatusNotFound, CodeUnknownDataset, fmt.Errorf("unknown dataset %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
