// Tests for the rendered-section cache tier and the conditional-request
// machinery around it: byte-identity with the uncached path, strong/weak
// ETags, If-None-Match → 304 with an empty body, gzip negotiation on both
// the miss path (streaming wrapper) and the hit path (precompressed
// variant), Vary headers, and two-tier invalidation coherence.
package serve_test

import (
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"turnup"
	"turnup/internal/obs"
	"turnup/internal/serve"
)

// renderFixture starts a server with a stub runner and the render tier at
// its default budget, returning the server, registry, and run counter.
func renderFixture(t *testing.T) (*serve.Server, *httptest.Server, *obs.Registry, *atomic.Int64) {
	t.Helper()
	res := tinyResults(t)
	var runs atomic.Int64
	reg := obs.NewRegistry()
	srv := serve.New(serve.Options{
		Metrics: reg,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			runs.Add(1)
			return res, nil
		},
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, reg, &runs
}

// getHdr issues a GET with extra headers and returns the full response
// with its body consumed. Setting Accept-Encoding explicitly disables the
// Go client's transparent gzip, so the raw wire body comes back.
func getHdr(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestRenderCacheHitIsByteIdentical(t *testing.T) {
	res := tinyResults(t)
	runner := func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
		return res, nil
	}
	// Reference server with the render tier disabled: every response takes
	// the full Render path.
	ref := httptest.NewServer(serve.New(serve.Options{Runner: runner, RenderCacheBytes: -1}))
	defer ref.Close()
	cached := httptest.NewServer(serve.New(serve.Options{Runner: runner}))
	defer cached.Close()

	for _, path := range []string{
		"/v1/report?seed=7&scale=0.02&models=false",
		"/v1/report/growth,corpus?seed=7&scale=0.02&models=false",
		"/v1/report/payments?seed=7&scale=0.02&models=false&format=json",
	} {
		want := mustGet(t, ref.URL+path)
		first := mustGet(t, cached.URL+path)
		second := mustGet(t, cached.URL+path) // render-tier hit
		// JSON envelopes differ per request (request_id, cache status), so
		// compare the cached report fragment; text must match exactly.
		if strings.Contains(path, "format=json") {
			tail := func(s string) string {
				_, rest, _ := strings.Cut(s, `"report"`)
				return rest
			}
			if tail(first) != tail(want) || tail(second) != tail(want) {
				t.Errorf("%s: cached JSON report diverges from uncached render", path)
			}
			continue
		}
		if first != want {
			t.Errorf("%s: miss-path body differs from render-tier-disabled server", path)
		}
		if second != want {
			t.Errorf("%s: render-cache hit body differs from uncached render", path)
		}
	}
}

func TestReportETagAndConditionalGet(t *testing.T) {
	_, ts, reg, _ := renderFixture(t)

	textURL := ts.URL + "/v1/report/growth?seed=7&scale=0.02&models=false"
	resp, body := getHdr(t, textURL, nil)
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("cold GET: code=%d etag=%q", resp.StatusCode, etag)
	}
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("text ETag %q is not a strong validator", etag)
	}
	if len(body) == 0 {
		t.Fatal("cold GET returned empty body")
	}

	// Same params in JSON format: a different rendered entity, so a
	// different — and weak — validator (the envelope varies per request).
	jresp, _ := getHdr(t, textURL+"&format=json", nil)
	jtag := jresp.Header.Get("ETag")
	if !strings.HasPrefix(jtag, `W/"`) {
		t.Fatalf("JSON ETag %q is not weak", jtag)
	}
	if jtag == etag {
		t.Fatal("JSON and text renderings share an ETag")
	}

	// Conditional GET: matching If-None-Match yields 304 with no body and
	// the same cache-state headers a full response carries.
	cond, condBody := getHdr(t, textURL, map[string]string{"If-None-Match": etag})
	if cond.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match %s: code=%d, want 304", etag, cond.StatusCode)
	}
	if len(condBody) != 0 {
		t.Fatalf("304 carried %d body bytes", len(condBody))
	}
	if got := cond.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag=%q, want %q", got, etag)
	}
	if got := cond.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("304 X-Cache=%q, want hit", got)
	}
	if got := reg.Counter("serve_http_304_total").Value(); got != 1 {
		t.Fatalf("serve_http_304_total=%d, want 1", got)
	}
	// A weak-compare match ("W/" prefix on the client side) also revalidates.
	weak, _ := getHdr(t, textURL, map[string]string{"If-None-Match": "W/" + etag})
	if weak.StatusCode != http.StatusNotModified {
		t.Fatalf("weak If-None-Match: code=%d, want 304", weak.StatusCode)
	}
	// A stale validator gets the full body again.
	stale, staleBody := getHdr(t, textURL, map[string]string{"If-None-Match": `"0000000000000000"`})
	if stale.StatusCode != http.StatusOK || len(staleBody) == 0 {
		t.Fatalf("stale If-None-Match: code=%d body=%dB, want 200 with body", stale.StatusCode, len(staleBody))
	}
}

func TestReportGzipOnMissAndPrecompressedHit(t *testing.T) {
	_, ts, _, _ := renderFixture(t)
	url := ts.URL + "/v1/report?seed=7&scale=0.02&models=false"

	plainResp, plain := getHdr(t, url, nil)
	if enc := plainResp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity request got Content-Encoding %q", enc)
	}

	gunzip := func(t *testing.T, resp *http.Response, wire []byte) string {
		t.Helper()
		if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
			t.Fatalf("Content-Encoding=%q, want gzip", enc)
		}
		zr, err := gzip.NewReader(strings.NewReader(string(wire)))
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}

	// Drain the caches' state: a fresh fixture so the first gzip request
	// exercises the miss-path streaming writer, the second the
	// precompressed render-tier variant.
	_, ts2, reg2, _ := renderFixture(t)
	url2 := ts2.URL + "/v1/report?seed=7&scale=0.02&models=false"
	missResp, missWire := getHdr(t, url2, map[string]string{"Accept-Encoding": "gzip"})
	if got := gunzip(t, missResp, missWire); got != string(plain) {
		t.Fatal("gzip miss-path body differs from identity body")
	}
	if vary := missResp.Header.Get("Vary"); !strings.Contains(vary, "Accept-Encoding") {
		t.Fatalf("gzip miss Vary=%q", vary)
	}
	hitResp, hitWire := getHdr(t, url2, map[string]string{"Accept-Encoding": "gzip"})
	if got := gunzip(t, hitResp, hitWire); got != string(plain) {
		t.Fatal("precompressed hit body differs from identity body")
	}
	if got := hitResp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat gzip request X-Cache=%q, want hit", got)
	}
	if hits := reg2.Counter("serve_render_cache_hits_total").Value(); hits != 1 {
		t.Fatalf("serve_render_cache_hits_total=%d, want 1", hits)
	}
	// The identity variant stays available after a precompressed hit.
	idResp, idBody := getHdr(t, url2, nil)
	if idResp.Header.Get("Content-Encoding") != "" || string(idBody) != string(plain) {
		t.Fatal("identity request after gzip hit did not match the plain body")
	}
}

func TestVaryHeaderOnRegistryEndpoints(t *testing.T) {
	_, ts, _, _ := renderFixture(t)
	for _, path := range []string{"/v1/sections", "/v1/stages", "/v1/report/growth?seed=7&scale=0.02&models=false"} {
		resp, _ := getHdr(t, ts.URL+path, nil)
		if vary := resp.Header.Get("Vary"); !strings.Contains(vary, "Accept-Encoding") {
			t.Errorf("%s: Vary=%q, want Accept-Encoding", path, vary)
		}
		// And gzip actually negotiates on these endpoints.
		zresp, wire := getHdr(t, ts.URL+path, map[string]string{"Accept-Encoding": "gzip"})
		if enc := zresp.Header.Get("Content-Encoding"); enc != "gzip" {
			t.Errorf("%s with Accept-Encoding gzip: Content-Encoding=%q", path, enc)
			continue
		}
		zr, err := gzip.NewReader(strings.NewReader(string(wire)))
		if err != nil {
			t.Errorf("%s: bad gzip stream: %v", path, err)
			continue
		}
		if _, err := io.ReadAll(zr); err != nil {
			t.Errorf("%s: bad gzip payload: %v", path, err)
		}
	}
}

func TestInvalidateClearsBothTiers(t *testing.T) {
	srv, ts, reg, runs := renderFixture(t)
	url := ts.URL + "/v1/report/growth?seed=7&scale=0.02&models=false"

	if code, cache, _ := get(t, url); code != http.StatusOK || cache != "miss" {
		t.Fatalf("cold: code=%d cache=%q", code, cache)
	}
	if code, cache, _ := get(t, url); code != http.StatusOK || cache != "hit" {
		t.Fatalf("warm: code=%d cache=%q", code, cache)
	}
	if n := srv.Invalidate(func(serve.Params) bool { return true }); n != 2 {
		t.Fatalf("Invalidate dropped %d entries, want 2 (one per tier)", n)
	}
	if code, cache, _ := get(t, url); code != http.StatusOK || cache != "miss" {
		t.Fatalf("post-invalidate: code=%d cache=%q, want a fresh miss", code, cache)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("pipeline ran %d times, want 2 (re-run after invalidation)", n)
	}
	if gauge := reg.Gauge("serve_render_cache_bytes").Value(); gauge <= 0 {
		t.Fatalf("serve_render_cache_bytes=%g after re-render, want > 0", gauge)
	}
}
