// Tests for the result cache's byte accounting: the admission policy,
// evict-by-bytes, and — under `go test -race` — the invariant that the
// sum of admitted entry sizes always equals both Cache.Bytes and the
// serve_cache_bytes gauge, across concurrent admissions, LRU evictions,
// TTL expirations, and EvictWhere invalidations.
package serve_test

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"turnup"
	"turnup/internal/obs"
	"turnup/internal/serve"
)

// stubResults returns a distinct empty Suite per call — cache entries the
// test Sizer assigns deterministic sizes to without pipeline cost.
func stubRunner(sized *atomic.Int64) serve.RunFunc {
	return func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
		sized.Store(int64(64 + (p.Seed%13)*32))
		return &turnup.Results{}, nil
	}
}

func TestCacheByteAccountingInvariant(t *testing.T) {
	reg := obs.NewRegistry()
	// The runner records each run's intended size; the sizer reads it. The
	// two race benignly for the *value* under coalescing, but every size
	// drawn is within [64, 448], so the invariant bounds below hold for
	// any interleaving — and the accounting itself must match whatever
	// size was recorded at admission, which Entries() reports back.
	var next atomic.Int64
	c := serve.NewCache(context.Background(), stubRunner(&next), serve.CacheConfig{
		Capacity: 24,
		MaxBytes: 4096,
		MaxRuns:  8,
		TTL:      2 * time.Millisecond,
		Sizer:    func(*turnup.Results) int64 { return next.Load() },
	}, reg)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				seed := uint64(rng.Intn(40))
				if _, _, err := c.Get(context.Background(), serve.Params{Seed: seed, Scale: 0.01}, nil); err != nil {
					t.Errorf("Get(seed=%d): %v", seed, err)
					return
				}
				switch i % 50 {
				case 17:
					// Exercise invalidation concurrently with admissions.
					c.EvictWhere(func(p serve.Params) bool { return p.Seed%5 == 0 })
				case 33:
					// Let some entries age past the 2ms TTL so re-Gets take
					// the expiry path.
					time.Sleep(3 * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()

	var sum int64
	for _, e := range c.Entries() {
		if e.Bytes <= 0 {
			t.Fatalf("entry %s has non-positive size %d", e.Key, e.Bytes)
		}
		sum += e.Bytes
	}
	if got := c.Bytes(); got != sum {
		t.Fatalf("Cache.Bytes()=%d but entries sum to %d", got, sum)
	}
	if gauge := int64(reg.Gauge("serve_cache_bytes").Value()); gauge != sum {
		t.Fatalf("serve_cache_bytes gauge=%d but entries sum to %d", gauge, sum)
	}
	if entries := int(reg.Gauge("serve_cache_entries").Value()); entries != c.Len() {
		t.Fatalf("serve_cache_entries gauge=%d but Len()=%d", entries, c.Len())
	}
	if c.Bytes() > 4096 {
		t.Fatalf("cache holds %d bytes, budget is 4096", c.Bytes())
	}
	if c.Len() > 24 {
		t.Fatalf("cache holds %d entries, cap is 24", c.Len())
	}
}

// TestCacheAdmissionRejectsGiantResults pins the admission policy: a
// result sized over MaxEntryFrac×MaxBytes is served to its waiters but
// never retained, leaving the accounting untouched.
func TestCacheAdmissionRejectsGiantResults(t *testing.T) {
	reg := obs.NewRegistry()
	c := serve.NewCache(context.Background(), func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
		return &turnup.Results{}, nil
	}, serve.CacheConfig{
		MaxBytes: 1000, // default frac 0.25 → 250-byte admission bound
		Sizer:    func(*turnup.Results) int64 { return 500 },
	}, reg)

	res, status, err := c.Get(context.Background(), serve.Params{Seed: 1}, nil)
	if err != nil || res == nil || status != serve.StatusMiss {
		t.Fatalf("Get = (%v, %s, %v), want a served miss", res, status, err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("giant result retained: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if got := reg.Counter("serve_cache_rejected_total").Value(); got != 1 {
		t.Fatalf("serve_cache_rejected_total=%d, want 1", got)
	}
	// The rejected key stays uncached: the identical request runs again.
	if _, status, _ := c.Get(context.Background(), serve.Params{Seed: 1}, nil); status != serve.StatusMiss {
		t.Fatalf("repeat of rejected key = %s, want miss", status)
	}
}

// TestCacheEvictsByBytes pins the primary bound: admissions past the byte
// budget evict from the LRU back even when the entry-count cap is far off.
func TestCacheEvictsByBytes(t *testing.T) {
	reg := obs.NewRegistry()
	c := serve.NewCache(context.Background(), func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
		return &turnup.Results{}, nil
	}, serve.CacheConfig{
		Capacity:     100,
		MaxBytes:     1000,
		MaxEntryFrac: 0.5, // admit the 300-byte entries
		Sizer:        func(*turnup.Results) int64 { return 300 },
	}, reg)

	for seed := uint64(1); seed <= 4; seed++ {
		if _, _, err := c.Get(context.Background(), serve.Params{Seed: seed}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 || c.Bytes() != 900 {
		t.Fatalf("after 4 admissions at 300B/1000B: len=%d bytes=%d, want 3 entries / 900 bytes", c.Len(), c.Bytes())
	}
	if got := reg.Counter("serve_cache_evictions_total").Value(); got != 1 {
		t.Fatalf("serve_cache_evictions_total=%d, want 1", got)
	}
	// The evicted entry is the least recently used — seed 1.
	if _, status, _ := c.Get(context.Background(), serve.Params{Seed: 1}, nil); status != serve.StatusMiss {
		t.Fatalf("oldest seed = %s, want miss after byte eviction", status)
	}
	// Invalidation credits everything back.
	if n := c.EvictWhere(func(serve.Params) bool { return true }); n != 3 {
		t.Fatalf("EvictWhere dropped %d, want 3", n)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after full invalidation: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if gauge := reg.Gauge("serve_cache_bytes").Value(); gauge != 0 {
		t.Fatalf("serve_cache_bytes gauge=%g after full invalidation", gauge)
	}
}
