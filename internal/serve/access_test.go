// Tests for the request-level observability plumbing: request-id
// assignment and propagation, the structured access log, the per-route
// latency histograms, and the versioned health endpoint.
package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"turnup"
	"turnup/internal/obs"
	"turnup/internal/serve"
)

// logBuffer collects access-log lines; the logger serialises writes but
// the test's reads need their own lock under -race.
type logBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) Lines() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := strings.TrimSuffix(l.b.String(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// accessServer boots a stub-runner server with a JSON access log.
func accessServer(t *testing.T) (*httptest.Server, *logBuffer) {
	t.Helper()
	res := tinyResults(t)
	buf := &logBuffer{}
	srv := serve.New(serve.Options{
		AccessLog: obs.NewJSONLogger(buf),
		Metrics:   obs.NewRegistry(),
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			return res, nil
		},
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, buf
}

// TestRequestIDPropagation: an inbound X-Request-Id is echoed on the
// response and appears verbatim in the access log; requests without one
// get a generated id that still matches header-to-log.
func TestRequestIDPropagation(t *testing.T) {
	ts, buf := accessServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/report/growth?seed=1&scale=0.02&models=false", nil)
	req.Header.Set("X-Request-Id", "client-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-trace-42" {
		t.Fatalf("inbound id not echoed: X-Request-Id = %q", got)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	generated := resp2.Header.Get("X-Request-Id")
	if generated == "" {
		t.Fatal("no generated X-Request-Id on response")
	}

	// A hostile inbound id (log-injection shaped) is replaced, not echoed.
	req3, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req3.Header.Set("X-Request-Id", `evil" status=200 x="`)
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-Id"); got == "" || strings.Contains(got, `"`) {
		t.Fatalf("unsafe inbound id handling: X-Request-Id = %q", got)
	}

	ids := map[string]bool{}
	for _, line := range buf.Lines() {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("access log line %q: %v", line, err)
		}
		if id, _ := m["id"].(string); id != "" {
			ids[id] = true
		}
	}
	for _, want := range []string{"client-trace-42", generated} {
		if !ids[want] {
			t.Errorf("access log missing request id %q (got %v)", want, ids)
		}
	}
}

// TestAccessLogShape pins the JSON access-log schema the docs promise:
// id, method, route, path, status, bytes, dur_ms, cache.
func TestAccessLogShape(t *testing.T) {
	ts, buf := accessServer(t)
	url := ts.URL + "/v1/report/growth?seed=9&scale=0.02&models=false"
	if code, cache, _ := get(t, url); code != 200 || cache != "miss" {
		t.Fatalf("cold request: %d %q", code, cache)
	}
	if code, cache, _ := get(t, url); code != 200 || cache != "hit" {
		t.Fatalf("warm request: %d %q", code, cache)
	}

	var got []map[string]any
	for _, line := range buf.Lines() {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if m["route"] == "/v1/report/{section}" {
			got = append(got, m)
		}
	}
	if len(got) != 2 {
		t.Fatalf("report log lines = %d, want 2", len(got))
	}
	for i, m := range got {
		if m["event"] != "request" || m["method"] != "GET" {
			t.Errorf("line %d event/method: %v", i, m)
		}
		if m["path"] != "/v1/report/growth" {
			t.Errorf("line %d path = %v", i, m["path"])
		}
		if m["status"] != 200.0 {
			t.Errorf("line %d status = %v", i, m["status"])
		}
		if b, ok := m["bytes"].(float64); !ok || b <= 0 {
			t.Errorf("line %d bytes = %v", i, m["bytes"])
		}
		if d, ok := m["dur_ms"].(float64); !ok || d < 0 {
			t.Errorf("line %d dur_ms = %v", i, m["dur_ms"])
		}
		if id, _ := m["id"].(string); id == "" {
			t.Errorf("line %d missing id", i)
		}
	}
	if got[0]["cache"] != "miss" || got[1]["cache"] != "hit" {
		t.Errorf("cache states = %v, %v; want miss, hit", got[0]["cache"], got[1]["cache"])
	}
}

// TestPerRouteHistograms: each request lands in the
// serve_http_request_seconds series labelled with its route and status,
// and the exposition keeps the labels on every summary sample.
func TestPerRouteHistograms(t *testing.T) {
	ts, _ := accessServer(t)
	mustGet(t, ts.URL+"/v1/report/growth?seed=1&scale=0.02&models=false")
	get(t, ts.URL+"/v1/report/nope") // 400: separate status series
	metrics := mustGet(t, ts.URL+"/metrics")
	for _, want := range []string{
		`serve_http_request_seconds{route="/v1/report/{section}",status="200",quantile="0.99"} `,
		`serve_http_request_seconds_count{route="/v1/report/{section}",status="200"} 1`,
		`serve_http_request_seconds_count{route="/v1/report/{section}",status="400"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if got := strings.Count(metrics, "# TYPE serve_http_request_seconds summary"); got != 1 {
		t.Errorf("TYPE lines for serve_http_request_seconds = %d, want 1", got)
	}
}

// TestHealthzJSON: the version surfaces in /healthz JSON alongside cache
// and dataset state, and turnup_build_info is on /metrics.
func TestHealthzJSON(t *testing.T) {
	ts, _ := accessServer(t)
	var h struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(mustGet(t, ts.URL+"/healthz?format=json")), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version == "" || h.UptimeSeconds < 0 {
		t.Fatalf("healthz json = %+v", h)
	}
	if body := mustGet(t, ts.URL+"/healthz"); !strings.HasPrefix(body, "ok version=") {
		t.Fatalf("healthz text = %q", body)
	}
	if metrics := mustGet(t, ts.URL+"/metrics"); !strings.Contains(metrics, `turnup_build_info{version=`) {
		t.Error("/metrics missing turnup_build_info")
	}
}
