// API v1 response contract: every JSON body — success or error — carries
// uniform metadata (request_id, version, shard), and every error carries a
// stable machine-readable code alongside its human message. The codes are
// the router's retry vocabulary: a consistent-hash router in front of N
// shards must distinguish "this shard is draining, try its neighbour"
// (shutting_down, shard_unavailable) from "this request can never succeed
// anywhere" (bad_params, unknown_dataset, dataset_too_large) without
// string-matching error prose. Text-form responses carry the same
// metadata on headers instead (X-Request-Id, X-Shard, X-Error-Code).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"turnup/internal/version"
)

// Stable machine-readable error codes, the API v1 error vocabulary.
// Clients and the router branch on these, never on Message text.
const (
	// CodeBadParams — the request can never succeed as written: unknown
	// section/stage names, unparseable or out-of-range parameters,
	// malformed upload bodies or encodings. Terminal; do not retry.
	CodeBadParams = "bad_params"
	// CodeUnknownDataset — the named dataset id is not stored here
	// (never uploaded, deleted, or evicted). Terminal on this shard.
	CodeUnknownDataset = "unknown_dataset"
	// CodeDatasetTooLarge — the upload exceeds the body or store bound.
	// Terminal; a bigger -max-dataset-bytes is an operator decision.
	CodeDatasetTooLarge = "dataset_too_large"
	// CodeShuttingDown — the shard is draining; in-flight runs were
	// cancelled. Retryable on another shard.
	CodeShuttingDown = "shutting_down"
	// CodeShardUnavailable — the router could not reach any owning shard
	// (connection errors exhausted the retry budget, or every candidate
	// is ejected). Retryable later.
	CodeShardUnavailable = "shard_unavailable"
	// CodeInternal — an unexpected server fault. Possibly transient.
	CodeInternal = "internal"
)

// RetryableCode reports whether an error code marks a failure another
// shard (or a later attempt) could resolve — the router's retry test.
func RetryableCode(code string) bool {
	return code == CodeShuttingDown || code == CodeShardUnavailable
}

// Meta is the uniform response metadata every /v1/* JSON body embeds:
// the request id (joins the response to its access-log line and span),
// the build version that produced it, and — when the server is part of
// a sharded tier — the shard that answered.
type Meta struct {
	RequestID string `json:"request_id"`
	Version   string `json:"version"`
	Shard     string `json:"shard,omitempty"`
}

// ErrorBody is the inner object of the API v1 error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the API v1 error envelope:
//
//	{"error":{"code":"bad_params","message":"…"},"request_id":"…","version":"…"}
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
	Meta
}

// ridKey carries the request id through the request context from the
// ServeHTTP middleware to the handlers that stamp it into envelopes.
type ridKey struct{}

// RequestWithID returns r with id attached to its context — the
// middleware side of RequestIDFromContext, exported for the router tier.
func RequestWithID(r *http.Request, id string) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), ridKey{}, id))
}

// RequestIDFromContext returns the request id the middleware assigned, or
// "" outside a served request — exported so the router's handlers can
// share the same envelope helpers.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// meta assembles the uniform metadata for the request being served.
func (s *Server) meta(r *http.Request) Meta {
	return Meta{
		RequestID: RequestIDFromContext(r.Context()),
		Version:   version.String(),
		Shard:     s.opts.Shard,
	}
}

// fail writes the API v1 error envelope in the request's negotiated
// format. JSON requests get the structured envelope with a guaranteed
// application/json Content-Type (the pre-envelope split lost it on some
// 4xx paths); text requests get "error <code>: <message>" plain text.
// Both forms carry the code on the X-Error-Code header so a proxy can
// classify the failure without reading the body.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	WriteError(w, r, status, code, err.Error(), s.meta(r))
}

// WriteError writes the API v1 error envelope — shared by the serve
// handlers and the router, so both tiers speak one error contract.
func WriteError(w http.ResponseWriter, r *http.Request, status int, code, message string, m Meta) {
	w.Header().Set("X-Error-Code", code)
	if wantJSON(r) {
		writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: message}, Meta: m})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	fmt.Fprintf(w, "error %s: %s\n", code, message)
}

// writeJSON writes v as the response body with the given status code. The
// header is set before WriteHeader — the order mistakes on pre-envelope
// error paths are what let a 4xx body go out as text/plain.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteJSON is writeJSON for the router tier: same Content-Type-before-
// WriteHeader discipline for bodies the router renders itself.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }
