// Package serve exposes the simulate→analyse pipeline as an HTTP service
// (command hfserved). Its core is a deduplicating result cache: requests
// are keyed by their run parameters, identical concurrent requests
// coalesce onto one underlying pipeline run (a thundering herd costs one
// run), completed results live in a size-bounded LRU, and a semaphore caps
// how many pipeline runs execute at once while cache hits are served
// immediately. See DESIGN.md §3.3.
package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
	"sync"
	"time"

	"turnup"
	"turnup/internal/obs"
)

// Params keys one pipeline run: the corpus source (generate from Seed and
// Scale, or analyse the stored dataset Dataset at generation Generation)
// plus the analysis knobs (K, Models, Stages) and the optional time
// window (Window, AsOf). Two requests with equal canonical Params are the
// same run — the LRU and the coalescer both key on Params.Key. Scheduler
// width (Options.Workers) is deliberately not part of the key: results
// are bit-for-bit identical at any worker count.
type Params struct {
	Seed   uint64
	Scale  float64
	K      int
	Models bool
	Stages []string
	// Dataset is the stable id (ds-…) of a stored dataset; "" = generate.
	Dataset string
	// Generation is the dataset's append generation at request time.
	// Folding it into the key is what lets a hot windowed report stay
	// cached exactly until an append actually changes the corpus: the
	// next request after an append carries a new generation and misses.
	Generation uint64
	// Window ("30d", "90d", "era-to-date") and AsOf (YYYY-MM-DD) select a
	// time-windowed view of the dataset; both empty means full history.
	Window string
	AsOf   string
}

// Canon returns p with the stage list sorted and deduplicated, so listing
// the same stages in a different order cannot split the cache. Stage
// selection is set-valued (the scheduler adds transitive deps and runs in
// DAG order), so reordering is semantics-preserving. When the corpus is an
// uploaded dataset, Scale is zeroed: it only parameterises generation, and
// keeping a stray value would split the cache for identical runs.
func (p Params) Canon() Params {
	if len(p.Stages) > 1 {
		st := append([]string(nil), p.Stages...)
		sort.Strings(st)
		out := st[:0]
		for i, s := range st {
			if i == 0 || s != st[i-1] {
				out = append(out, s)
			}
		}
		p.Stages = out
	}
	if p.Dataset != "" {
		p.Scale = 0
	}
	return p
}

// Key returns the canonical cache key: the SHA-256 (hex) of an injective
// binary encoding of the canonical Params. Fixed-width fields plus
// length-prefixed strings make the encoding collision-proof — unlike the
// printf-joined key it replaces, no stage or dataset token containing a
// separator ("," or " ") can alias two distinct Params onto one key.
func (p Params) Key() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	putStr := func(s string) {
		put(uint64(len(s)))
		h.Write([]byte(s))
	}
	put(p.Seed)
	put(math.Float64bits(p.Scale))
	put(uint64(p.K))
	if p.Models {
		put(1)
	} else {
		put(0)
	}
	putStr(p.Dataset)
	put(p.Generation)
	putStr(p.Window)
	putStr(p.AsOf)
	put(uint64(len(p.Stages)))
	for _, st := range p.Stages {
		putStr(st)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Status classifies how a request was satisfied; it is exported to
// clients as the X-Cache response header.
type Status string

const (
	// StatusHit — served from the completed-results LRU; no pipeline work.
	StatusHit Status = "hit"
	// StatusMiss — this request started the underlying pipeline run.
	StatusMiss Status = "miss"
	// StatusCoalesced — joined a run an earlier identical request started.
	StatusCoalesced Status = "coalesced"
)

// RunFunc executes one pipeline run for the given parameters. For
// dataset-backed requests snap carries the resolved snapshot — the corpus
// and its shared Index, pinned at request time so a concurrent DELETE or
// LRU eviction cannot yank the data mid-run; it is nil for generated
// corpora. The production runner generates or windows the corpus and runs
// the analysis suite; tests substitute stubs to pin cache mechanics
// without pipeline cost.
type RunFunc func(ctx context.Context, p Params, snap *Snapshot) (*turnup.Results, error)

// Cache is the deduplicating, byte-accounted result cache. Entries are
// bounded twice over: a byte budget (MaxBytes, the primary bound — each
// result's resident size is estimated once at admission and the LRU
// evicts by bytes) and an entry-count cap (a secondary bound against
// pathological many-tiny-results keyspaces). An admission policy keeps a
// single giant result from flushing the whole working set: results larger
// than MaxEntryFrac of the budget are returned to their waiters but never
// cached. All outcomes are counted in the registry
// (serve_cache_{hits,misses,coalesced,rejected}_total,
// serve_cache_evictions_total, and the serve_cache_bytes/serve_cache_entries
// gauges) so cache behaviour is observable on /metrics, which is also how
// the tests assert it.
type Cache struct {
	runner   RunFunc
	base     context.Context // run lifetime: cancelling it aborts in-flight runs
	sem      chan struct{}   // caps concurrent pipeline runs
	cap      int             // completed results retained (count bound)
	maxBytes int64           // byte budget over retained results
	maxEntry int64           // admission bound: larger results are never cached
	ttl      time.Duration   // max age a completed result is served (0 = forever)
	sizer    func(*turnup.Results) int64
	reg      *obs.Registry

	mu       sync.Mutex
	bytes    int64                    // sum of retained entry sizes; mirrors serve_cache_bytes
	order    *list.List               // completed *cacheEntry, front = most recent
	byKey    map[string]*list.Element // Params.Key → order element
	inflight map[string]*flight       // Params.Key → running flight
}

// cacheEntry is one completed result in the LRU. The canonical Params are
// retained so EvictWhere can match entries semantically (by dataset id or
// generation) without reversing the hashed key; size is the admission-time
// estimate the byte accounting credits back on eviction.
type cacheEntry struct {
	key  string
	p    Params
	res  *turnup.Results
	size int64
	at   time.Time // completion time, the TTL anchor
}

// flight is one in-progress run; every coalesced waiter blocks on done,
// which is closed only after res/err are set.
type flight struct {
	done chan struct{}
	res  *turnup.Results
	err  error
}

// CacheConfig bounds a Cache. Zero values default sanely, so tests and
// callers set only what they pin.
type CacheConfig struct {
	// Capacity is the entry-count bound (<=0 means 64) — secondary to the
	// byte budget, it stops many-tiny-results keyspaces from growing the
	// bookkeeping without bound.
	Capacity int
	// MaxBytes is the byte budget over retained results (<=0 means 1 GiB).
	// The sum of admitted entry sizes never exceeds it.
	MaxBytes int64
	// MaxEntryFrac is the admission bound as a fraction of MaxBytes: a
	// result estimated larger than MaxEntryFrac*MaxBytes is served to its
	// waiters but never cached, so one giant result cannot flush the
	// working set. <=0 means 0.25; values >1 clamp to 1.
	MaxEntryFrac float64
	// MaxRuns caps concurrent pipeline runs (<=0 means 2).
	MaxRuns int
	// TTL bounds how long a completed result is served before it is re-run
	// (<=0 means no age bound — generation keying already invalidates
	// dataset-backed results exactly; the TTL is a belt-and-braces bound
	// for deployments that want one).
	TTL time.Duration
	// Sizer overrides the admission-size estimate (tests pin byte
	// accounting with deterministic sizes); nil means Results.SizeBytes.
	Sizer func(*turnup.Results) int64
}

// NewCache builds a cache over runner. base bounds the lifetime of every
// run this cache starts (nil means background — runs are then only
// bounded by completion); see CacheConfig for the bounds.
func NewCache(base context.Context, runner RunFunc, cfg CacheConfig, reg *obs.Registry) *Cache {
	if base == nil {
		base = context.Background()
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 1 << 30
	}
	if cfg.MaxEntryFrac <= 0 {
		cfg.MaxEntryFrac = 0.25
	}
	if cfg.MaxEntryFrac > 1 {
		cfg.MaxEntryFrac = 1
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 2
	}
	if cfg.TTL < 0 {
		cfg.TTL = 0
	}
	sizer := cfg.Sizer
	if sizer == nil {
		sizer = func(res *turnup.Results) int64 { return res.SizeBytes() }
	}
	// Pre-register every counter the cache can increment so the exposition
	// carries them at 0 from boot — scrapers (and the CI smoke greps) see
	// the full vocabulary before the first hit or eviction occurs.
	for _, name := range []string{
		"serve_cache_hits_total", "serve_cache_misses_total",
		"serve_cache_coalesced_total", "serve_cache_evictions_total",
		"serve_cache_expirations_total", "serve_cache_invalidations_total",
		"serve_cache_rejected_total", "serve_runs_total",
	} {
		reg.Counter(name)
	}
	c := &Cache{
		runner:   runner,
		base:     base,
		sem:      make(chan struct{}, cfg.MaxRuns),
		cap:      cfg.Capacity,
		maxBytes: cfg.MaxBytes,
		maxEntry: int64(cfg.MaxEntryFrac * float64(cfg.MaxBytes)),
		ttl:      cfg.TTL,
		sizer:    sizer,
		reg:      reg,
		order:    list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
	c.syncGauges()
	return c
}

// syncGauges mirrors the byte and entry accounting into the registry;
// callers hold mu, so the gauge always reflects a consistent state.
func (c *Cache) syncGauges() {
	c.reg.Gauge("serve_cache_bytes").Set(float64(c.bytes))
	c.reg.Gauge("serve_cache_entries").Set(float64(c.order.Len()))
}

// removeLocked drops el from the LRU and credits its bytes back. Callers
// hold mu and count the reason (eviction, expiration, invalidation).
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	delete(c.byKey, e.key)
	c.order.Remove(el)
	c.bytes -= e.size
}

// Get returns the results for p: from the LRU when present (and younger
// than the TTL), by joining an identical in-flight run when one exists,
// and otherwise by starting the pipeline (subject to the run semaphore).
// snap is handed to the flight leader's runner; coalesced waiters' snaps
// are interchangeable — an equal key pins an equal generation, hence the
// same immutable snapshot. The run itself executes under the cache's base
// context, not ctx — a caller whose ctx is cancelled merely stops waiting
// while the run completes for the cache and any other waiters; cancelling
// the base context (server shutdown) aborts the run through the
// pipeline's context threading.
func (c *Cache) Get(ctx context.Context, p Params, snap *Snapshot) (*turnup.Results, Status, error) {
	p = p.Canon()
	key := p.Key()

	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		if c.ttl > 0 && time.Since(e.at) > c.ttl {
			// Expired: drop the entry and fall through to a fresh run.
			c.removeLocked(el)
			c.syncGauges()
			c.reg.Counter("serve_cache_expirations_total").Inc()
		} else {
			c.order.MoveToFront(el)
			res := e.res
			c.mu.Unlock()
			c.reg.Counter("serve_cache_hits_total").Inc()
			return res, StatusHit, nil
		}
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.reg.Counter("serve_cache_coalesced_total").Inc()
		return c.wait(ctx, f, StatusCoalesced)
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()
	c.reg.Counter("serve_cache_misses_total").Inc()
	go c.run(key, p, snap, f)
	return c.wait(ctx, f, StatusMiss)
}

// wait blocks until the flight completes or the caller's ctx is done.
func (c *Cache) wait(ctx context.Context, f *flight, s Status) (*turnup.Results, Status, error) {
	select {
	case <-f.done:
		return f.res, s, f.err
	case <-ctx.Done():
		return nil, s, ctx.Err()
	}
}

// run is the flight leader: it acquires a run slot, executes the pipeline
// under the base context, publishes the outcome to every waiter, and
// installs successful results into the LRU. Errors are not cached — the
// next identical request retries.
func (c *Cache) run(key string, p Params, snap *Snapshot, f *flight) {
	// A select between the semaphore and base.Done() chooses randomly when
	// both are ready, so a run could launch after server shutdown; checking
	// shutdown first (and again after acquiring a slot) closes that race.
	if err := context.Cause(c.base); err != nil {
		c.finish(key, p, f, nil, err)
		return
	}
	select {
	case c.sem <- struct{}{}:
	case <-c.base.Done():
		c.finish(key, p, f, nil, context.Cause(c.base))
		return
	}
	defer func() { <-c.sem }()
	if err := context.Cause(c.base); err != nil {
		c.finish(key, p, f, nil, err)
		return
	}

	c.reg.Gauge("serve_runs_inflight").Add(1)
	start := time.Now()
	res, err := c.runner(c.base, p, snap)
	c.reg.Gauge("serve_runs_inflight").Add(-1)
	c.reg.Histogram("serve_run_seconds").Observe(time.Since(start).Seconds())
	c.reg.Counter("serve_runs_total").Inc()
	c.finish(key, p, f, res, err)
}

// finish retires the flight: it leaves the in-flight table, a successful
// result is sized and — when it passes admission — enters the LRU front,
// evicting from the back until both the byte budget and the entry cap
// hold again; done is closed to release every waiter. The size estimate
// is computed before taking the lock: walking a Scale-1.0 result is
// real work and must not serialise unrelated cache traffic.
func (c *Cache) finish(key string, p Params, f *flight, res *turnup.Results, err error) {
	var size int64
	if err == nil {
		size = c.sizer(res)
	}
	c.mu.Lock()
	delete(c.inflight, key)
	switch {
	case err != nil:
	case size > c.maxEntry:
		// Admission policy: a single result that would occupy more than
		// MaxEntryFrac of the budget is not worth the working set it would
		// evict. Waiters still get the result; it is just never retained.
		c.reg.Counter("serve_cache_rejected_total").Inc()
	default:
		c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, p: p, res: res, size: size, at: time.Now()})
		c.bytes += size
		for c.order.Len() > c.cap || c.bytes > c.maxBytes {
			c.removeLocked(c.order.Back())
			c.reg.Counter("serve_cache_evictions_total").Inc()
		}
		c.syncGauges()
	}
	c.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}

// EvictWhere drops every completed result whose canonical Params satisfy
// pred, returning how many were dropped. It is the generation-staleness
// hook: an append evicts results for older generations of its dataset,
// and a DELETE (or store LRU eviction) evicts everything for the id — so
// a later re-upload restarting at generation 1 can never alias a stale
// (id, generation) entry onto fresh content. In-flight runs are
// untouched; they complete against the immutable snapshot they hold.
func (c *Cache) EvictWhere(pred func(Params) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if pred(el.Value.(*cacheEntry).p) {
			c.removeLocked(el)
			n++
		}
		el = next
	}
	if n > 0 {
		c.syncGauges()
		c.reg.Counter("serve_cache_invalidations_total").Add(int64(n))
	}
	return n
}

// Len reports the number of completed results currently held.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes reports the byte accounting over retained results — the value the
// serve_cache_bytes gauge mirrors.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// EntryInfo describes one retained result for introspection: the hashed
// key, its admission-time size estimate, and the canonical Params. The
// byte-accounting invariant test sums Bytes over Entries and requires it
// to equal both Cache.Bytes and the serve_cache_bytes gauge.
type EntryInfo struct {
	Key    string
	Bytes  int64
	Params Params
}

// Entries lists the retained results, most recently used first.
func (c *Cache) Entries() []EntryInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EntryInfo, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		out = append(out, EntryInfo{Key: e.key, Bytes: e.size, Params: e.p})
	}
	return out
}
