// Tests for the dataset subsystem: multipart and zip uploads, the
// digest-keyed store (dedupe, LRU eviction, deletion), upload error paths
// (malformed CSV, oversized body, unknown id), the ledger-absent marker,
// and the end-to-end acceptance path — an uploaded hfgen CSV pair served
// through ?dataset= renders the same section text as analysing the same
// directory locally, with X-Cache miss then hit.
package serve_test

import (
	"archive/zip"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"turnup"
	"turnup/internal/dataset"
	"turnup/internal/obs"
	"turnup/internal/serve"
)

var (
	dsOnce sync.Once
	dsData *turnup.Dataset
	dsErr  error
)

// tinyDataset generates one small corpus shared by the upload tests.
func tinyDataset(t testing.TB) *turnup.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		dsData, dsErr = turnup.Generate(turnup.Config{Seed: 7, Scale: 0.01})
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsData
}

// csvPair serialises d exactly as hfgen writes it.
func csvPair(t testing.TB, d *turnup.Dataset) (contracts, users []byte) {
	t.Helper()
	var cb, ub bytes.Buffer
	if err := dataset.WriteContractsCSV(&cb, d.Contracts); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteUsersCSV(&ub, d.Users); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), ub.Bytes()
}

// multipartBody builds a POST /v1/datasets body from the CSV pair; parts
// maps field name → content, so error tests can omit or corrupt parts.
func multipartBody(t testing.TB, parts map[string][]byte) (string, *bytes.Buffer) {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for field, content := range parts {
		fw, err := mw.CreateFormFile(field, field+".csv")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(content); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return mw.FormDataContentType(), &body
}

// upload POSTs a dataset and decodes the enveloped DatasetInfo response.
func upload(t *testing.T, baseURL string, contracts, users []byte) (int, serve.DatasetInfo) {
	t.Helper()
	ct, body := multipartBody(t, map[string][]byte{"contracts": contracts, "users": users})
	resp, err := http.Post(baseURL+"/v1/datasets", ct, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		RequestID string            `json:"request_id"`
		Dataset   serve.DatasetInfo `json:"dataset"`
	}
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decoding upload response %q: %v", raw, err)
		}
		if out.RequestID == "" {
			t.Fatalf("upload response %q is missing envelope request_id", raw)
		}
	}
	return resp.StatusCode, out.Dataset
}

// TestDatasetUploadReportEndToEnd is the acceptance path: hfgen-format
// CSVs uploaded via POST /v1/datasets, then GET /v1/report/growth with
// ?dataset= renders exactly what hfanalyze renders over the same files,
// with X-Cache miss then hit and the explicit ledger-absent marker.
func TestDatasetUploadReportEndToEnd(t *testing.T) {
	d := tinyDataset(t)
	contracts, users := csvPair(t, d)

	srv := serve.New(serve.Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, info := upload(t, ts.URL, contracts, users)
	if code != http.StatusCreated {
		t.Fatalf("upload code=%d, want 201", code)
	}
	wantDigest, _ := d.Digest()
	wantBytes := d.BinarySize()
	if info.Digest != wantDigest || info.Bytes != wantBytes {
		t.Fatalf("upload info digest=%s bytes=%d, want %s/%d", info.Digest, info.Bytes, wantDigest, wantBytes)
	}
	sum := d.Summary()
	if info.Users != sum.Users || info.Contracts != sum.Contracts {
		t.Fatalf("upload info counts %d/%d, want %d/%d", info.Users, info.Contracts, sum.Users, sum.Contracts)
	}
	if info.Ledger != "absent" {
		t.Fatalf("uploaded CSV dataset ledger = %q, want \"absent\"", info.Ledger)
	}

	// What hfanalyze would print for the same CSV pair: load, run, render.
	loaded, err := turnup.ReadCSV(bytes.NewReader(contracts), bytes.NewReader(users))
	if err != nil {
		t.Fatal(err)
	}
	res, err := turnup.Run(loaded, turnup.RunOptions{Seed: 5, SkipModels: true})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := turnup.Render(&want, res, "growth"); err != nil {
		t.Fatal(err)
	}

	url := fmt.Sprintf("%s/v1/report/growth?dataset=%s&seed=5&models=false", ts.URL, info.ID)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold dataset report: code=%d cache=%q, want 200 miss", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if got := resp.Header.Get("X-Dataset-Ledger"); got != "absent" {
		t.Fatalf("X-Dataset-Ledger = %q, want \"absent\"", got)
	}
	if string(body) != want.String() {
		t.Fatalf("served dataset report differs from local analysis:\nserved:\n%s\nlocal:\n%s", body, want.String())
	}

	code2, cache, _ := get(t, url)
	if code2 != http.StatusOK || cache != "hit" {
		t.Fatalf("repeat dataset report: code=%d cache=%q, want 200 hit", code2, cache)
	}

	// The listing carries the stored entry (under the enveloped "datasets"
	// key) with its explicit ledger marker.
	var listed struct {
		Datasets []serve.DatasetInfo `json:"datasets"`
	}
	if err := json.Unmarshal([]byte(mustGet(t, ts.URL+"/v1/datasets?format=json")), &listed); err != nil {
		t.Fatal(err)
	}
	if list := listed.Datasets; len(list) != 1 || list[0].ID != info.ID || list[0].Ledger != "absent" {
		t.Fatalf("dataset list = %+v", listed.Datasets)
	}
	if metrics := mustGet(t, ts.URL+"/metrics"); !strings.Contains(metrics, "serve_datasets_uploads_total 1") {
		t.Fatalf("/metrics missing upload counter:\n%s", metrics)
	}
}

// TestDatasetZipUpload covers the alternative upload encoding: one zip
// archive holding contracts.csv and users.csv.
func TestDatasetZipUpload(t *testing.T) {
	d := tinyDataset(t)
	contracts, users := csvPair(t, d)
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for name, content := range map[string][]byte{"data/contracts.csv": contracts, "data/users.csv": users} {
		f, err := zw.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(content); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	srv := serve.New(serve.Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/datasets", "application/zip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Dataset serve.DatasetInfo `json:"dataset"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("zip upload code=%d, want 201", resp.StatusCode)
	}
	wantDigest, _ := d.Digest()
	if out.Dataset.Digest != wantDigest {
		t.Fatalf("zip upload digest=%s, want %s (same content, same digest)", out.Dataset.Digest, wantDigest)
	}
}

// TestDatasetUploadErrors pins the upload failure modes to their status
// codes: malformed CSV and missing halves 400, an oversized body 413, an
// unsupported encoding 415, and an unknown ?dataset= id 404.
func TestDatasetUploadErrors(t *testing.T) {
	d := tinyDataset(t)
	contracts, users := csvPair(t, d)
	srv := serve.New(serve.Options{
		MaxDatasetBytes: 4096,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			t.Error("pipeline ran for an invalid request")
			return nil, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Malformed CSV (bad header) → 400. Bodies stay under the 4096-byte
	// cap so the parse error, not the size cap, is what answers.
	ct, body := multipartBody(t, map[string][]byte{"contracts": []byte("not,a,contract\n1,2,3\n"), "users": []byte("id\n")})
	if resp, err := http.Post(ts.URL+"/v1/datasets", ct, body); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed CSV upload code=%d, want 400", resp.StatusCode)
	}

	// Missing users half → 400 naming the missing file.
	ct, body = multipartBody(t, map[string][]byte{"contracts": []byte("stub")})
	resp, err := http.Post(ts.URL+"/v1/datasets", ct, body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "users.csv") {
		t.Fatalf("missing-part upload: code=%d body=%q, want 400 naming users.csv", resp.StatusCode, raw)
	}

	// Oversized body (MaxDatasetBytes 4096 above) → 413.
	ct, body = multipartBody(t, map[string][]byte{"contracts": contracts, "users": users})
	if resp, err := http.Post(ts.URL+"/v1/datasets", ct, body); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload code=%d, want 413", resp.StatusCode)
	}

	// Unsupported content type → 415.
	if resp, err := http.Post(ts.URL+"/v1/datasets", "text/plain", strings.NewReader("hello")); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain upload code=%d, want 415", resp.StatusCode)
	}

	// Junk zip body → 400.
	if resp, err := http.Post(ts.URL+"/v1/datasets", "application/zip", strings.NewReader("PKjunk")); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk zip upload code=%d, want 400", resp.StatusCode)
	}

	// Unknown dataset id on the report path → 404; dataset+scale → 400.
	if code, _, _ := get(t, ts.URL+"/v1/report/growth?dataset=ds-nope"); code != http.StatusNotFound {
		t.Fatalf("unknown dataset report code=%d, want 404", code)
	}
	code, _, errBody := get(t, ts.URL+"/v1/report/growth?dataset=ds-nope&scale=0.05")
	if code != http.StatusBadRequest || !strings.Contains(errBody, "scale") {
		t.Fatalf("dataset+scale report: code=%d body=%q, want 400 about scale", code, errBody)
	}
}

// variantDataset returns a copy of d with the contract list truncated by
// drop entries — distinct content, hence a distinct digest — cheap enough
// to mint several datasets without re-running the simulator.
func variantDataset(d *turnup.Dataset, drop int) *turnup.Dataset {
	return &turnup.Dataset{
		Users:     d.Users,
		Threads:   d.Threads,
		Posts:     d.Posts,
		Contracts: d.Contracts[:len(d.Contracts)-drop],
		Ledger:    d.Ledger,
	}
}

// TestDatasetStoreEvictionAndDedupe pins the store bounds: identical
// re-uploads dedupe onto the existing entry, and exceeding -max-datasets
// evicts the least-recently-used dataset (observable on /metrics and as a
// 404 for subsequent ?dataset= requests).
func TestDatasetStoreEvictionAndDedupe(t *testing.T) {
	d := tinyDataset(t)
	res := tinyResults(t)
	reg := obs.NewRegistry()
	srv := serve.New(serve.Options{
		MaxDatasets: 2,
		Metrics:     reg,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			return res, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var infos []serve.DatasetInfo
	for drop := 0; drop < 3; drop++ {
		contracts, users := csvPair(t, variantDataset(d, drop))
		code, info := upload(t, ts.URL, contracts, users)
		if code != http.StatusCreated {
			t.Fatalf("upload %d code=%d, want 201", drop, code)
		}
		infos = append(infos, info)
	}
	if got := srv.Datasets().Len(); got != 2 {
		t.Fatalf("store holds %d datasets, want 2", got)
	}
	// The first upload is the LRU victim: its id no longer resolves.
	if code, _, _ := get(t, ts.URL+"/v1/report/growth?dataset="+infos[0].ID); code != http.StatusNotFound {
		t.Fatalf("evicted dataset report code=%d, want 404", code)
	}
	// Re-uploading identical content answers 200 with the existing entry.
	contracts, users := csvPair(t, variantDataset(d, 2))
	code, info := upload(t, ts.URL, contracts, users)
	if code != http.StatusOK || info.ID != infos[2].ID {
		t.Fatalf("re-upload: code=%d id=%s, want 200 with id %s", code, info.ID, infos[2].ID)
	}
	metrics := mustGet(t, ts.URL+"/metrics")
	for _, want := range []string{"serve_datasets_uploads_total 3", "serve_datasets_evictions_total 1", "serve_datasets_count 2"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestDatasetDelete covers DELETE /v1/datasets/{id}: 204 on success, the
// id stops resolving, and a second delete answers 404.
func TestDatasetDelete(t *testing.T) {
	d := tinyDataset(t)
	contracts, users := csvPair(t, d)
	srv := serve.New(serve.Options{
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			return tinyResults(t), nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, info := upload(t, ts.URL, contracts, users)
	if code != http.StatusCreated {
		t.Fatalf("upload code=%d", code)
	}
	del := func() int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/"+info.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(); code != http.StatusNoContent {
		t.Fatalf("delete code=%d, want 204", code)
	}
	if code, _, _ := get(t, ts.URL+"/v1/report/growth?dataset="+info.ID); code != http.StatusNotFound {
		t.Fatalf("deleted dataset report code=%d, want 404", code)
	}
	if code := del(); code != http.StatusNotFound {
		t.Fatalf("double delete code=%d, want 404", code)
	}
	if srv.Datasets().Len() != 0 {
		t.Fatalf("store not empty after delete: %d", srv.Datasets().Len())
	}
}

// TestReadCSVRoundTrip pins the facade reader: parsing the canonical CSV
// pair reproduces the corpus (same digest, same counts) with the ledger
// explicitly absent.
func TestReadCSVRoundTrip(t *testing.T) {
	d := tinyDataset(t)
	contracts, users := csvPair(t, d)
	got, err := turnup.ReadCSV(bytes.NewReader(contracts), bytes.NewReader(users))
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantBytes := d.Digest()
	gotDigest, gotBytes := got.Digest()
	if gotDigest != wantDigest || gotBytes != wantBytes {
		t.Fatalf("round-trip digest %s/%d, want %s/%d", gotDigest, gotBytes, wantDigest, wantBytes)
	}
	if got.HasLedger() {
		t.Fatal("CSV round-trip kept a ledger; HasLedger must report false")
	}
	if d.HasLedger() != (d.Ledger.Len() > 0) {
		t.Fatal("generated dataset ledger flag inconsistent")
	}
	if len(got.Contracts) != len(d.Contracts) || len(got.Users) != len(d.Users) {
		t.Fatalf("round-trip counts %d/%d, want %d/%d", len(got.Contracts), len(got.Users), len(d.Contracts), len(d.Users))
	}
}
