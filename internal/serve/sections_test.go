// Tests for per-section partial runs: GET /v1/report/{section} must hand
// the pipeline only the stages that section reads, not all of them.
package serve_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"turnup"
	"turnup/internal/serve"
)

// TestSectionRequestRunsMinimalStages pins the section→stage derivation:
// a cold section request reaches the runner with exactly that section's
// stage closure, an explicit ?stages= wins over derivation, and a
// model-only section under models=false falls back to the full
// descriptive run (its text is empty either way).
func TestSectionRequestRunsMinimalStages(t *testing.T) {
	res := tinyResults(t)
	var (
		mu   sync.Mutex
		runs [][]string
	)
	srv := serve.New(serve.Options{
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			mu.Lock()
			runs = append(runs, append([]string(nil), p.Stages...))
			mu.Unlock()
			return res, nil
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		url    string
		stages []string
	}{
		// One section → its stage; the scheduler adds transitive deps.
		{"/v1/report/growth", []string{"Growth"}},
		// A multi-stage section and a comma list both union.
		{"/v1/report/degrees", []string{"DegreesCreated", "DegreesDone"}},
		{"/v1/report/payments,cohorts", []string{"Cohorts", "Payments"}},
		// Explicit ?stages= overrides derivation.
		{"/v1/report/growth?stages=Concentration,Growth&seed=2", []string{"Concentration", "Growth"}},
		// Model-only section with models off: nothing derivable runs, so
		// the unconstrained descriptive run stands in.
		{"/v1/report/zip-all?models=false", nil},
		// No section → full run, no stage subset.
		{"/v1/report?seed=3", nil},
	}
	for i, c := range cases {
		if code, _, body := get(t, ts.URL+c.url); code != 200 {
			t.Fatalf("%s: status %d: %s", c.url, code, body)
		}
		mu.Lock()
		got := runs[i]
		mu.Unlock()
		if !reflect.DeepEqual(got, c.stages) {
			t.Errorf("%s: runner saw stages %v, want %v", c.url, got, c.stages)
		}
	}
	if len(runs) != len(cases) {
		t.Fatalf("%d pipeline runs for %d distinct cold requests", len(runs), len(cases))
	}

	// The derived stage list is part of the cache key, so repeating the
	// section request is a hit, and the full-report request it would have
	// shadowed before derivation stays a separate (miss) entry.
	if _, cache, _ := get(t, ts.URL+"/v1/report/growth"); cache != "hit" {
		t.Errorf("repeated section request: X-Cache %q, want hit", cache)
	}
	if _, cache, _ := get(t, ts.URL+"/v1/report"); cache != "miss" {
		t.Errorf("full-report request after section request: X-Cache %q, want miss", cache)
	}
}

// TestSectionStagesVocabulary pins the exported resolver: every section
// maps to valid stages, unions deduplicate, and unknown names error.
func TestSectionStagesVocabulary(t *testing.T) {
	for _, name := range turnup.Sections() {
		stages, err := turnup.SectionStages(name)
		if err != nil {
			t.Fatalf("SectionStages(%q): %v", name, err)
		}
		if len(stages) == 0 {
			t.Errorf("SectionStages(%q) is empty", name)
		}
		if err := turnup.ValidateStages(stages...); err != nil {
			t.Errorf("SectionStages(%q) → %v: %v", name, stages, err)
		}
	}
	// The three latent-class views share one stage — the union must not
	// repeat it.
	stages, err := turnup.SectionStages("latent-classes", "class-activity-made", "class-activity-accepted")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stages, []string{"LatentClasses"}) {
		t.Errorf("latent-class views union = %v, want [LatentClasses]", stages)
	}
	if _, err := turnup.SectionStages("growth", "nope"); err == nil {
		t.Error("SectionStages accepted an unknown section name")
	}
	if stages, err := turnup.SectionStages(); err != nil || stages != nil {
		t.Errorf("SectionStages() = %v, %v; want nil, nil", stages, err)
	}
}
