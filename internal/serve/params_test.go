// Tests for the canonical cache key: the collision regression the
// printf-joined key failed (separator-bearing tokens aliasing distinct
// Params), a stages-permutation property pinning order-insensitivity, and
// the shutdown pre-check that keeps runs from launching after the base
// context is cancelled.
package serve_test

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"turnup"
	"turnup/internal/obs"
	"turnup/internal/serve"
)

// TestParamsKeyCollisionRegression: two distinct canonical Params must
// never share a key. Every pair here aliased under the old printf key
// ("stages=" joined with "," and fields joined with " ") or probes a
// nearby seam; the length-prefixed digest encoding keeps them apart.
func TestParamsKeyCollisionRegression(t *testing.T) {
	distinct := []serve.Params{
		{Seed: 1, Stages: []string{"a,b"}},             // old key: stages=a,b
		{Seed: 1, Stages: []string{"a", "b"}},          // old key: stages=a,b — collision
		{Seed: 1, Stages: []string{"a b"}},             // space inside a token
		{Seed: 1, Stages: []string{"a", "b", "c"}},     //
		{Seed: 1, Stages: []string{"a", "b,c"}},        // old key: stages=a,b,c — collision
		{Seed: 1, Stages: []string{"ab"}},              //
		{Seed: 1, Dataset: "ab"},                       // dataset token vs stage token
		{Seed: 1, Dataset: "a", Stages: []string{"b"}}, //
		{Seed: 1, Dataset: "a b"},                      // old key field separator inside token
		{Seed: 1},                                      //
		{Seed: 1, Models: true},                        //
		{Seed: 1, Scale: 0.5},                          //
		{Seed: 1, Scale: 0.5, K: 12},                   //
		{Seed: 12, Scale: 0.5},                         //
	}
	seen := map[string]serve.Params{}
	for _, p := range distinct {
		key := p.Canon().Key()
		if prev, ok := seen[key]; ok {
			t.Errorf("distinct Params share a key:\n  %+v\n  %+v\n  key %s", prev, p, key)
		}
		seen[key] = p
	}
}

// TestParamsKeyStagePermutation is the order-insensitivity property:
// Canon() must map every permutation (and duplication) of a stage list
// onto one cache key.
func TestParamsKeyStagePermutation(t *testing.T) {
	stages := []string{"Taxonomy", "Growth", "Values", "ZIPAll", "Cohorts", "Network"}
	want := serve.Params{Seed: 3, Scale: 0.1, K: 12, Models: true, Stages: stages}.Canon().Key()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		perm := make([]string, 0, len(stages)+2)
		for _, j := range rng.Perm(len(stages)) {
			perm = append(perm, stages[j])
		}
		// Duplicates are deduped by Canon and must not change the key.
		perm = append(perm, perm[rng.Intn(len(perm))])
		p := serve.Params{Seed: 3, Scale: 0.1, K: 12, Models: true, Stages: perm}
		if got := p.Canon().Key(); got != want {
			t.Fatalf("permutation %v keyed %s, want %s", perm, got, want)
		}
	}
	// Scale is generation-only: with a dataset set, Canon zeroes it so a
	// stray client-sent scale cannot split the cache.
	a := serve.Params{Seed: 3, Scale: 0.3, Dataset: "d"}.Canon().Key()
	b := serve.Params{Seed: 3, Scale: 0.7, Dataset: "d"}.Canon().Key()
	if a != b {
		t.Fatal("dataset-backed Params with different scales split the cache")
	}
}

// TestCancelledBaseNeverLaunchesRun pins the shutdown pre-check in
// Cache.run: once the base context is cancelled, no pipeline run may
// launch, even with free semaphore slots. The old select between the
// semaphore and base.Done() chose randomly when both were ready, so 200
// distinct requests would launch ~100 runs; the pre-check launches none.
func TestCancelledBaseNeverLaunchesRun(t *testing.T) {
	base, cancel := context.WithCancel(context.Background())
	cancel()
	var launched atomic.Int64
	c := serve.NewCache(base, func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
		launched.Add(1)
		return nil, nil
	}, serve.CacheConfig{Capacity: 8, MaxRuns: 4}, obs.NewRegistry())

	for i := 0; i < 200; i++ {
		_, _, err := c.Get(context.Background(), serve.Params{Seed: uint64(i)}, nil)
		if err == nil {
			t.Fatal("request succeeded after shutdown")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("request %d: err = %v, want context.Canceled", i, err)
		}
	}
	if n := launched.Load(); n != 0 {
		t.Fatalf("%d pipeline runs launched after base-context cancellation, want 0", n)
	}
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after cancelled runs", c.Len())
	}
}
