package serve

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
	"sync/atomic"
)

// Request-id generation: a per-process random prefix plus a monotonic
// counter. Inbound X-Request-Id headers win (so a router or client can
// stitch its own trace through the access log), after sanitisation — a
// header is an attacker-controlled string and the access log is a parsed
// artefact, so anything over-long or outside a safe alphabet is replaced,
// not propagated.
var (
	reqIDPrefix  = randomPrefix()
	reqIDCounter atomic.Uint64
)

func randomPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "turnup"
	}
	return hex.EncodeToString(b[:])
}

// maxRequestIDLen bounds accepted inbound request ids.
const maxRequestIDLen = 64

// RequestID returns the id for this request: the sanitised inbound
// X-Request-Id when present, else a fresh "<prefix>-<n>" id. Exported
// for the router tier, which mints ids with the same contract before
// propagating them shard-wards.
func RequestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= maxRequestIDLen && safeRequestID(id) {
		return id
	}
	var buf [20]byte
	n := reqIDCounter.Add(1)
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		if n /= 10; n == 0 {
			break
		}
	}
	return reqIDPrefix + "-" + string(buf[i:])
}

// safeRequestID accepts alphanumerics plus the usual id punctuation.
func safeRequestID(id string) bool {
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}

// RouteLabel maps a request path onto the served route pattern, bounding
// the label cardinality of the per-route metrics and the access log: path
// parameters collapse to their placeholder and unknown paths to "other",
// so a URL-scanning client cannot mint unbounded metric series.
func RouteLabel(path string) string {
	switch {
	case path == "/v1/report":
		return "/v1/report"
	case strings.HasPrefix(path, "/v1/report/"):
		return "/v1/report/{section}"
	case path == "/v1/datasets":
		return "/v1/datasets"
	case strings.HasPrefix(path, "/v1/datasets/") && strings.HasSuffix(path, "/events"):
		return "/v1/datasets/{id}/events"
	case strings.HasPrefix(path, "/v1/datasets/"):
		return "/v1/datasets/{id}"
	case path == "/v1/sections", path == "/v1/stages", path == "/healthz", path == "/metrics":
		return path
	case strings.HasPrefix(path, "/debug/pprof"):
		return "/debug/pprof"
	}
	return "other"
}

// statusWriter records the response code and body bytes for metrics,
// spans, and the access log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}
