package serve_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"turnup/internal/obs"
	"turnup/internal/serve"
)

// TestMetricsVocabularyAtBoot pins that the cache tiers' full counter and
// gauge vocabulary is present on /metrics from the first scrape — CI's
// serve-smoke greps these names without forcing a hit or eviction first.
func TestMetricsVocabularyAtBoot(t *testing.T) {
	reg := obs.NewRegistry()
	ts := httptest.NewServer(serve.New(serve.Options{Metrics: reg}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, name := range []string{
		"serve_cache_hits_total 0", "serve_cache_misses_total 0",
		"serve_cache_evictions_total 0", "serve_cache_rejected_total 0",
		"serve_cache_bytes 0", "serve_cache_entries 0",
		"serve_render_cache_hits_total 0", "serve_render_cache_misses_total 0",
		"serve_render_cache_bytes 0", "serve_render_cache_entries 0",
		"serve_http_304_total 0",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics at boot missing %q", name)
		}
	}
}
