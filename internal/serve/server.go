package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"turnup"
	"turnup/internal/ingest"
	"turnup/internal/obs"
	"turnup/internal/version"
)

// Options configures a Server. The zero value serves with sane defaults:
// a 64-entry cache, 2 concurrent pipeline runs, GOMAXPROCS analysis
// workers per run, scales up to 1.0, and a fresh metrics registry.
type Options struct {
	CacheSize int // completed results retained in the LRU (default 64)
	MaxRuns   int // concurrent pipeline runs (default 2); hits bypass this cap
	Workers   int // analysis stages per run; 0 = GOMAXPROCS (not part of the cache key)
	// CacheTTL bounds how long a completed result is served before it is
	// recomputed (0 = forever). Generation keying already invalidates
	// dataset-backed results exactly when an append lands; the TTL is an
	// additional age bound for deployments that want one.
	CacheTTL time.Duration
	// MaxCacheBytes is the result cache's byte budget (default 1 GiB): each
	// admitted result is sized once (Results.SizeBytes) and the LRU evicts
	// by bytes, with CacheSize as a secondary count bound.
	MaxCacheBytes int64
	// CacheEntryFrac is the admission bound as a fraction of MaxCacheBytes
	// (default 0.25): results estimated larger are served but never cached,
	// so one giant result cannot flush the working set.
	CacheEntryFrac float64
	// RenderCacheBytes is the rendered-body cache's byte budget: 0 means
	// the 64 MiB default, negative disables the tier (every response then
	// re-renders, the pre-two-tier behaviour — the bench-cache baseline).
	RenderCacheBytes int64

	MaxScale     float64 // largest accepted ?scale= (default 1.0, the paper-sized corpus)
	DefaultScale float64 // ?scale= default (default 0.05)
	DefaultK     int     // ?k= default (default 12, the paper's choice)

	// Shard names this process within a sharded tier (hfserved -shard,
	// conventionally its advertised base URL). It is stamped on the
	// X-Shard response header and the JSON envelope's shard field so a
	// router — and the load harness behind it — can attribute every
	// response to the process that produced it. Empty means unsharded.
	Shard string

	// MaxDatasets bounds how many uploaded datasets the store retains
	// (default 16); beyond it the least-recently-used dataset is evicted.
	MaxDatasets int
	// MaxDatasetBytes bounds both one upload's body size (413 beyond) and
	// the total canonical CSV bytes the store retains (default 256 MiB).
	MaxDatasetBytes int64

	// Metrics receives request, cache, and run metrics and is exported on
	// /metrics; a fresh registry is created when nil.
	Metrics *obs.Registry
	// AccessLog, when non-nil, receives one structured line per request
	// (method, route, status, bytes, duration, cache state, request id).
	AccessLog *obs.Logger
	// Trace, when non-nil, records one child span per request under the
	// tracer's root (method, path, status, cache outcome, request id).
	Trace *obs.Tracer
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Runner substitutes the pipeline (tests); nil means the real
	// generate→analyse pipeline.
	Runner RunFunc
	// BaseContext bounds every pipeline run this server starts; cancel it
	// on shutdown to abort in-flight runs. Nil means context.Background().
	BaseContext context.Context
}

// Server is the HTTP analysis service: section reports over a
// deduplicating result cache, plus the sections/stages registries,
// health, and metrics. It implements http.Handler.
type Server struct {
	opts       Options
	reg        *obs.Registry
	cache      *Cache
	rcache     *RenderCache // nil when RenderCacheBytes < 0 (tier disabled)
	datasets   *Store
	mux        *http.ServeMux
	modelStage map[string]bool // stage name → model tier (for 400s under models=false)
	start      time.Time
}

// New builds a Server from opts (see Options for defaults).
func New(opts Options) *Server {
	if opts.MaxScale <= 0 {
		opts.MaxScale = 1.0
	}
	if opts.DefaultScale <= 0 {
		opts.DefaultScale = 0.05
	}
	if opts.DefaultK <= 0 {
		opts.DefaultK = 12
	}
	if opts.MaxDatasetBytes <= 0 {
		opts.MaxDatasetBytes = 256 << 20
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	s := &Server{
		opts:       opts,
		reg:        opts.Metrics,
		datasets:   NewStore(opts.MaxDatasets, opts.MaxDatasetBytes, opts.Metrics),
		mux:        http.NewServeMux(),
		modelStage: make(map[string]bool),
		start:      time.Now(),
	}
	runner := opts.Runner
	if runner == nil {
		runner = s.pipelineRunner(opts.Workers)
	}
	s.cache = NewCache(opts.BaseContext, runner, CacheConfig{
		Capacity:     opts.CacheSize,
		MaxBytes:     opts.MaxCacheBytes,
		MaxEntryFrac: opts.CacheEntryFrac,
		MaxRuns:      opts.MaxRuns,
		TTL:          opts.CacheTTL,
	}, opts.Metrics)
	if opts.RenderCacheBytes >= 0 {
		s.rcache = NewRenderCache(opts.RenderCacheBytes, opts.Metrics)
	}
	opts.Metrics.Counter("serve_http_304_total")
	// When a dataset id leaves the store (DELETE or LRU eviction), purge
	// its cached report results — both tiers: a later re-upload under the
	// same id restarts generations at 1, and surviving entries would alias
	// the new content's (id, generation) cache keys.
	s.datasets.OnDrop(func(id string) {
		s.Invalidate(func(p Params) bool { return p.Dataset == id })
	})
	// The constant-1 build-info gauge is the Prometheus idiom for joining
	// any other metric to the build that produced it.
	s.reg.Gauge(fmt.Sprintf(`turnup_build_info{version=%q}`, version.String())).Set(1)
	for _, st := range turnup.Stages() {
		s.modelStage[st.Name] = st.Model
	}
	s.mux.HandleFunc("GET /v1/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/report/{section}", s.handleReport)
	s.mux.HandleFunc("GET /v1/sections", s.handleSections)
	s.mux.HandleFunc("GET /v1/stages", s.handleStages)
	s.mux.HandleFunc("POST /v1/datasets", s.handleDatasetUpload)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	s.mux.HandleFunc("DELETE /v1/datasets/{id}", s.handleDatasetDelete)
	s.mux.HandleFunc("POST /v1/datasets/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", obs.MetricsHandler(s.reg))
	if opts.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// pipelineRunner is the production RunFunc: obtain the corpus — generate
// it for (Seed, Scale), or take the dataset snapshot handleReport pinned
// at request time (optionally narrowed to its ?window=/?as-of= view) —
// then run the analysis suite. Both halves honour ctx, so cancelling the
// server's base context aborts a run between simulated months or between
// analysis stages. Full-history dataset runs reuse the store's
// incrementally maintained Index; windowed views derive their own (the
// window changes corpus membership, not just its suffix).
func (s *Server) pipelineRunner(workers int) RunFunc {
	return func(ctx context.Context, p Params, snap *Snapshot) (*turnup.Results, error) {
		var d *turnup.Dataset
		var ix *turnup.Index
		if p.Dataset != "" {
			if snap == nil {
				return nil, fmt.Errorf("dataset %s has no pinned snapshot", p.Dataset)
			}
			d, ix = snap.D, snap.Ix
			if p.Window != "" || p.AsOf != "" {
				wd, err := ingest.Window(d, p.Window, p.AsOf)
				if err != nil {
					return nil, err
				}
				d, ix = wd, nil
			}
		} else {
			var err error
			if d, err = turnup.GenerateCtx(ctx, turnup.Config{Seed: p.Seed, Scale: p.Scale}); err != nil {
				return nil, err
			}
		}
		return turnup.RunCtx(ctx, d, turnup.RunOptions{
			Seed:         p.Seed,
			LatentClassK: p.K,
			SkipModels:   !p.Models,
			Workers:      workers,
			Stages:       p.Stages,
			Index:        ix,
		})
	}
}

// Cache exposes the result cache (tests and the healthz entry count).
func (s *Server) Cache() *Cache { return s.cache }

// RenderCache exposes the rendered-body cache; nil when the tier is
// disabled (Options.RenderCacheBytes < 0).
func (s *Server) RenderCache() *RenderCache { return s.rcache }

// Invalidate drops matching entries from both cache tiers, returning the
// total dropped. Every invalidation hook (dataset drop, generation
// advance on append) goes through here so the tiers can never disagree:
// a stale rendered body must not outlive the result it was rendered from.
func (s *Server) Invalidate(pred func(Params) bool) int {
	return s.cache.EvictWhere(pred) + s.rcache.EvictWhere(pred)
}

// Datasets exposes the dataset store (tests and the healthz entry count).
func (s *Server) Datasets() *Store { return s.datasets }

// ServeHTTP dispatches through the mux under the request-level
// observability contract: every request gets an id (an inbound
// X-Request-Id is honoured, else one is minted) stamped on the response
// header, the per-request trace span, and the access-log line — so a
// client report, a log line, and a span can always be joined. Metrics:
// a request counter, an in-flight gauge, the overall latency histogram,
// a per-route+status latency histogram (serve_http_request_seconds,
// which is what hfload's client-side view is cross-checked against),
// and an error counter for 4xx/5xx.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := RequestID(r)
	s.reg.Counter("serve_http_requests_total").Inc()
	s.reg.Gauge("serve_http_inflight").Add(1)
	var sp *obs.Span
	if s.opts.Trace != nil {
		sp = s.opts.Trace.Root().StartChild("http " + r.Method + " " + r.URL.Path)
		sp.SetAttr("request_id", id)
	}
	rw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	rw.Header().Set("X-Request-Id", id)
	if s.opts.Shard != "" {
		rw.Header().Set("X-Shard", s.opts.Shard)
		// Owner check: the router stamps the shard it believes owns the
		// key; a mismatch means the tiers disagree about the ring (stale
		// membership, mismatched defaults) and is worth counting even
		// though any shard can serve any request correctly.
		if want := r.Header.Get("X-Expected-Shard"); want != "" && want != s.opts.Shard {
			s.reg.Counter("serve_shard_misroutes_total").Inc()
		}
	}
	start := time.Now()
	s.mux.ServeHTTP(rw, RequestWithID(r, id))
	dur := time.Since(start)
	route := RouteLabel(r.URL.Path)
	s.reg.Histogram("serve_http_seconds").Observe(dur.Seconds())
	s.reg.Histogram(fmt.Sprintf(`serve_http_request_seconds{route=%q,status="%d"}`, route, rw.code)).Observe(dur.Seconds())
	s.reg.Gauge("serve_http_inflight").Add(-1)
	if rw.code >= 400 {
		s.reg.Counter("serve_http_errors_total").Inc()
	}
	cache := rw.Header().Get("X-Cache")
	if sp != nil {
		sp.SetInt("status", rw.code)
		if cache != "" {
			sp.SetAttr("cache", cache)
		}
		sp.End()
	}
	s.opts.AccessLog.Log("request",
		obs.F("id", id),
		obs.F("method", r.Method),
		obs.F("route", route),
		obs.F("path", r.URL.Path),
		obs.F("status", rw.code),
		obs.F("bytes", rw.bytes),
		obs.F("dur_ms", float64(dur)/float64(time.Millisecond)),
		obs.F("cache", cache),
	)
}

// reportResponse is the JSON body of /v1/report.
type reportResponse struct {
	Meta
	Params   Params   `json:"params"`
	Sections []string `json:"sections,omitempty"` // empty = full report
	Cache    Status   `json:"cache"`
	// Ledger marks dataset-backed reports whose corpus carries no chain
	// evidence ("absent"): their §4.5 audit is unverifiable rather than
	// silently empty. Omitted for generated corpora.
	Ledger string `json:"ledger,omitempty"`
	Report string `json:"report"`
}

// handleReport serves GET /v1/report[/{section}]: parse and validate the
// run parameters and section names (400 lists the valid vocabulary; an
// unknown ?dataset= id 404s), then serve through the two cache tiers —
// a render-cache hit writes the cached bytes (or answers If-None-Match
// with a zero-body 304) without touching the result cache; a miss gets
// results through the result cache, renders once, and installs the body
// for the next hit. The {section} path element accepts a comma-separated
// list.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	sections := splitList(r.PathValue("section"))
	if err := turnup.ValidateSections(sections...); err != nil {
		s.fail(w, r, http.StatusBadRequest, CodeBadParams, err)
		return
	}
	p, err := s.parseParams(r)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, CodeBadParams, err)
		return
	}
	if len(p.Stages) == 0 && len(sections) > 0 {
		// A section request without an explicit ?stages= runs only the
		// stages that section reads (the scheduler adds their transitive
		// deps) instead of all of them on a cold cache. Model stages are
		// dropped under models=false — those sections render empty either
		// way — and if nothing is left the full descriptive run stands in,
		// matching what an unconstrained request computes.
		stages, err := turnup.SectionStages(sections...)
		if err != nil { // unreachable: names validated above
			s.fail(w, r, http.StatusBadRequest, CodeBadParams, err)
			return
		}
		if !p.Models {
			kept := stages[:0]
			for _, st := range stages {
				if !s.modelStage[st] {
					kept = append(kept, st)
				}
			}
			stages = kept
		}
		if len(stages) > 0 {
			p.Stages = stages
		}
	}
	var ledger string
	var snap *Snapshot
	if id := r.URL.Query().Get("dataset"); id != "" {
		if r.URL.Query().Get("scale") != "" {
			s.fail(w, r, http.StatusBadRequest, CodeBadParams,
				errors.New("scale cannot be combined with dataset: uploaded corpora are fixed, scale only parameterises generation"))
			return
		}
		// Pin the dataset snapshot (corpus + shared Index + generation)
		// here, before entering the cache: the run then owns immutable
		// data, so a concurrent DELETE, LRU eviction, or append cannot
		// fail a report already admitted.
		var ok bool
		snap, ok = s.datasets.Snapshot(id)
		if !ok {
			s.fail(w, r, http.StatusNotFound, CodeUnknownDataset, fmt.Errorf("unknown dataset %q (see GET /v1/datasets)", id))
			return
		}
		p.Dataset = snap.Info.ID
		p.Generation = snap.Info.Generation
		ledger = snap.Info.Ledger
		// The report headers carry the explicit §4.5 marker ("absent"
		// means the audit could not verify high-value contracts because
		// the uploaded corpus has no ledger) and the generation this
		// report is computed at.
		w.Header().Set("X-Dataset-Ledger", ledger)
		w.Header().Set("X-Dataset-Generation", strconv.FormatUint(snap.Info.Generation, 10))
	}
	p = p.Canon()
	format, isJSON := "text", wantJSON(r)
	if isJSON {
		format = "json"
	}
	rkey := renderKey(p, sections, format)
	if e, ok := s.rcache.Get(rkey); ok {
		w.Header().Set("X-Cache", string(StatusHit))
		s.writeRendered(w, r, e, p, sections, StatusHit, ledger, isJSON)
		return
	}
	res, status, err := s.cache.Get(r.Context(), p, snap)
	if err != nil {
		if errors.Is(err, ingest.ErrEmptyWindow) {
			s.fail(w, r, http.StatusBadRequest, CodeBadParams, err)
			return
		}
		// Cancellation means shutdown (base context) or a vanished client
		// (request context); neither is a server fault — and it is the
		// one failure a router should retry on a sibling shard.
		code, apiCode := http.StatusInternalServerError, CodeInternal
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code, apiCode = http.StatusServiceUnavailable, CodeShuttingDown
		}
		s.fail(w, r, code, apiCode, err)
		return
	}
	w.Header().Set("X-Cache", string(status))
	body, _ := turnup.RenderString(res, sections...) // names validated above
	e := s.rcache.Put(rkey, p, []byte(body), isJSON)
	s.writeRendered(w, r, e, p, sections, status, ledger, isJSON)
}

// writeRendered serves one report response from a rendered entry — the
// single exit for hits, misses, and the disabled-tier path, so headers
// (ETag, Vary, X-Cache set by the caller, the dataset headers set during
// snapshot pinning) are identical whichever path produced the bytes.
// If-None-Match revalidation answers 304 with zero body before any
// encoding work; text hits for gzip-accepting clients serve the entry's
// precompressed bytes, and everything else compresses through the lazy
// wrapper.
func (s *Server) writeRendered(w http.ResponseWriter, r *http.Request, e *Rendered, p Params, sections []string, status Status, ledger string, isJSON bool) {
	gw, flush := negotiateGzip(w, r)
	defer flush()
	h := w.Header()
	h.Set("ETag", e.ETag)
	if etagMatch(r.Header.Get("If-None-Match"), e.ETag) {
		s.reg.Counter("serve_http_304_total").Inc()
		gw.WriteHeader(http.StatusNotModified)
		return
	}
	if isJSON {
		writeJSON(gw, http.StatusOK, reportResponse{Meta: s.meta(r), Params: p, Sections: sections, Cache: status, Ledger: ledger, Report: string(e.Body)})
		return
	}
	h.Set("Content-Type", "text/plain; charset=utf-8")
	if e.Gzip != nil && acceptsGzip(r) {
		// Precompressed hot path: setting Content-Encoding here flips the
		// gzip wrapper into passthrough, so these bytes go out verbatim.
		h.Set("Content-Encoding", "gzip")
		h.Set("Content-Length", strconv.Itoa(len(e.Gzip)))
		_, _ = gw.Write(e.Gzip)
		return
	}
	_, _ = gw.Write(e.Body)
}

// etagMatch implements If-None-Match for GET: "*" matches anything, and
// validators compare weakly (a W/ prefix on either side is ignored) —
// the correct comparison for 304 revalidation per RFC 9110 §13.1.2.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	etag = strings.TrimPrefix(etag, "W/")
	for _, cand := range strings.Split(header, ",") {
		if strings.TrimPrefix(strings.TrimSpace(cand), "W/") == etag {
			return true
		}
	}
	return false
}

// parseParams extracts and validates the run parameters from the query
// string. Unknown stage names and model stages under models=false are
// rejected here — before a corpus is generated — with the same
// vocabulary-listing errors the CLIs print.
func (s *Server) parseParams(r *http.Request) (Params, error) {
	q := r.URL.Query()
	p := Params{Seed: 1, Scale: s.opts.DefaultScale, K: s.opts.DefaultK, Models: true}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed %q: want an unsigned integer", v)
		}
		p.Seed = n
	}
	if v := q.Get("scale"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return p, fmt.Errorf("bad scale %q: want a number", v)
		}
		p.Scale = f
	}
	if p.Scale <= 0 || p.Scale > s.opts.MaxScale {
		return p, fmt.Errorf("scale %g out of range (0, %g]", p.Scale, s.opts.MaxScale)
	}
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return p, fmt.Errorf("bad k %q: want a positive integer", v)
		}
		p.K = n
	}
	if v := q.Get("models"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return p, fmt.Errorf("bad models %q: want a boolean", v)
		}
		p.Models = b
	}
	p.Stages = splitList(q.Get("stages"))
	if err := turnup.ValidateStages(p.Stages...); err != nil {
		return p, err
	}
	if !p.Models {
		for _, st := range p.Stages {
			if s.modelStage[st] {
				return p, fmt.Errorf("stage %q is a model stage and unavailable with models=false", st)
			}
		}
	}
	p.Window = q.Get("window")
	p.AsOf = q.Get("as-of")
	if p.Window != "" || p.AsOf != "" {
		if q.Get("dataset") == "" {
			return p, errors.New("window and as-of require ?dataset=: generated corpora are identified by seed and scale, not by time")
		}
		if err := ingest.ValidateWindow(p.Window, p.AsOf); err != nil {
			return p, err
		}
	}
	return p, nil
}

// sectionsResponse is the JSON body of /v1/sections. The list lives in a
// named field (not a bare top-level array) so the contract can grow —
// adding metadata or per-section detail stays backward compatible.
type sectionsResponse struct {
	Meta
	Sections []string `json:"sections"`
}

// handleSections serves the report-section vocabulary.
func (s *Server) handleSections(w http.ResponseWriter, r *http.Request) {
	gw, flush := negotiateGzip(w, r)
	defer flush()
	if wantJSON(r) {
		writeJSON(gw, http.StatusOK, sectionsResponse{Meta: s.meta(r), Sections: turnup.Sections()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(gw, strings.Join(turnup.Sections(), "\n"))
}

// stageJSON is one stage row of /v1/stages.
type stageJSON struct {
	Name  string   `json:"name"`
	Deps  []string `json:"deps,omitempty"`
	Model bool     `json:"model,omitempty"`
}

// stagesResponse is the JSON body of /v1/stages — an object, like every
// other v1 envelope, not a bare array.
type stagesResponse struct {
	Meta
	Stages []stageJSON `json:"stages"`
}

// handleStages serves the analysis stage DAG (name, deps, model tier).
func (s *Server) handleStages(w http.ResponseWriter, r *http.Request) {
	stages := turnup.Stages()
	gw, flush := negotiateGzip(w, r)
	defer flush()
	if wantJSON(r) {
		out := make([]stageJSON, len(stages))
		for i, st := range stages {
			out[i] = stageJSON{Name: st.Name, Deps: st.Deps, Model: st.Model}
		}
		writeJSON(gw, http.StatusOK, stagesResponse{Meta: s.meta(r), Stages: out})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, st := range stages {
		fmt.Fprintf(gw, "%s deps=%s model=%t\n", st.Name, strings.Join(st.Deps, ","), st.Model)
	}
}

// healthResponse is the JSON body of /healthz?format=json. Meta supplies
// the version (and shard, when sharded) alongside the request id.
type healthResponse struct {
	Status string `json:"status"`
	Meta
	UptimeSeconds float64 `json:"uptime_seconds"`
	Cached        int     `json:"cached"`
	CacheBytes    int64   `json:"cache_bytes"`
	Rendered      int     `json:"rendered"`
	RenderedBytes int64   `json:"rendered_bytes"`
	Datasets      int     `json:"datasets"`
}

// handleHealthz reports liveness plus a little state: the build version,
// uptime, the number of cached results, and the number of stored datasets
// — as text by default, as JSON under ?format=json or Accept.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if wantJSON(r) {
		writeJSON(w, http.StatusOK, healthResponse{
			Status:        "ok",
			Meta:          s.meta(r),
			UptimeSeconds: time.Since(s.start).Seconds(),
			Cached:        s.cache.Len(),
			CacheBytes:    s.cache.Bytes(),
			Rendered:      s.rcache.Len(),
			RenderedBytes: s.rcache.Bytes(),
			Datasets:      s.datasets.Len(),
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok version=%s uptime=%s cached=%d cache_bytes=%d rendered=%d datasets=%d\n",
		version.String(), time.Since(s.start).Round(time.Second), s.cache.Len(), s.cache.Bytes(), s.rcache.Len(), s.datasets.Len())
}

// RouteKey derives the consistent-hash routing token for a report
// request, shared with the router tier so routing and caching agree:
// dataset-backed reports route by their dataset id (the same token
// uploads route by, so a report always lands where its dataset lives),
// and generated reports route by the canonical Params cache key. Parse
// failures fall back to defaults — the owning shard will answer the 400;
// the router only needs the mapping to be deterministic.
func RouteKey(r *http.Request, defaultScale float64, defaultK int) string {
	q := r.URL.Query()
	if id := q.Get("dataset"); id != "" {
		return id
	}
	p := Params{Seed: 1, Scale: defaultScale, K: defaultK, Models: true}
	if n, err := strconv.ParseUint(q.Get("seed"), 10, 64); err == nil {
		p.Seed = n
	}
	if f, err := strconv.ParseFloat(q.Get("scale"), 64); err == nil {
		p.Scale = f
	}
	if n, err := strconv.Atoi(q.Get("k")); err == nil {
		p.K = n
	}
	if b, err := strconv.ParseBool(q.Get("models")); err == nil {
		p.Models = b
	}
	p.Stages = splitList(q.Get("stages"))
	return p.Canon().Key()
}

// wantJSON decides the response format: ?format= wins (json or text),
// then an Accept header naming application/json.
func wantJSON(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "json":
		return true
	case "text":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// splitList parses a comma-separated value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
