// Package graph builds and measures the contractual social network of
// §4.2: users are nodes, and a contract links its maker and taker. Raw
// connections ignore direction; an inbound connection from n to m exists
// when m accepts a contract made by n, and an outbound connection when n
// makes a contract to m. Bidirectional contract types (EXCHANGE, TRADE)
// count as both inbound and outbound for both parties.
package graph

import (
	"math"

	"turnup/internal/forum"
)

// Network is the contractual graph. Adjacency sets hold distinct
// counterparties, so degrees are numbers of distinct users, as the paper
// defines them.
type Network struct {
	raw map[forum.UserID]map[forum.UserID]bool
	in  map[forum.UserID]map[forum.UserID]bool
	out map[forum.UserID]map[forum.UserID]bool
}

// New returns an empty network.
func New() *Network {
	return &Network{
		raw: make(map[forum.UserID]map[forum.UserID]bool),
		in:  make(map[forum.UserID]map[forum.UserID]bool),
		out: make(map[forum.UserID]map[forum.UserID]bool),
	}
}

// Build constructs the network over the given contracts. Only accepted
// contracts create connections: a contract that was denied or expired never
// linked two users. (Callers filter to created-and-accepted or completed
// sets as the analysis requires.)
func Build(contracts []*forum.Contract) *Network {
	n := New()
	for _, c := range contracts {
		n.Add(c)
	}
	return n
}

// connected reports whether the contract's parties ever entered the deal.
func connected(c *forum.Contract) bool {
	switch c.Status {
	case forum.StatusPending, forum.StatusDenied, forum.StatusExpired:
		return false
	}
	return true
}

// Add incorporates one contract into the network.
func (n *Network) Add(c *forum.Contract) {
	if !connected(c) {
		return
	}
	n.link(n.raw, c.Maker, c.Taker)
	n.link(n.raw, c.Taker, c.Maker)
	// Maker initiates: outbound maker→taker, inbound for taker from maker.
	n.link(n.out, c.Maker, c.Taker)
	n.link(n.in, c.Taker, c.Maker)
	if c.Type.Bidirectional() {
		// Goods flow both ways: both parties gain both connection kinds.
		n.link(n.out, c.Taker, c.Maker)
		n.link(n.in, c.Maker, c.Taker)
	}
}

func (n *Network) link(adj map[forum.UserID]map[forum.UserID]bool, from, to forum.UserID) {
	set, ok := adj[from]
	if !ok {
		set = make(map[forum.UserID]bool)
		adj[from] = set
	}
	set[to] = true
}

// Nodes returns the number of users with at least one raw connection.
func (n *Network) Nodes() int { return len(n.raw) }

// DegreeKind selects which degree notion to read.
type DegreeKind int

// The three degree notions of §4.2.
const (
	Raw DegreeKind = iota
	Inbound
	Outbound
)

// String names the degree kind.
func (k DegreeKind) String() string {
	switch k {
	case Raw:
		return "raw"
	case Inbound:
		return "inbound"
	case Outbound:
		return "outbound"
	default:
		return "unknown"
	}
}

func (n *Network) adj(k DegreeKind) map[forum.UserID]map[forum.UserID]bool {
	switch k {
	case Inbound:
		return n.in
	case Outbound:
		return n.out
	default:
		return n.raw
	}
}

// Degree returns user u's degree of the given kind.
func (n *Network) Degree(u forum.UserID, k DegreeKind) int { return len(n.adj(k)[u]) }

// Degrees returns the degree of every user that appears in the raw graph
// (users with zero inbound or outbound degree report 0, matching the
// paper's "zero point" in the outbound distribution).
func (n *Network) Degrees(k DegreeKind) map[forum.UserID]int {
	out := make(map[forum.UserID]int, len(n.raw))
	for u := range n.raw {
		out[u] = len(n.adj(k)[u])
	}
	return out
}

// DegreeStats summarises a degree distribution.
type DegreeStats struct {
	Kind  DegreeKind
	Max   int
	Mean  float64
	Nodes int
}

// Stats computes max and mean degree of the given kind over raw-graph nodes.
func (n *Network) Stats(k DegreeKind) DegreeStats {
	s := DegreeStats{Kind: k, Nodes: len(n.raw)}
	total := 0
	for u := range n.raw {
		d := len(n.adj(k)[u])
		total += d
		if d > s.Max {
			s.Max = d
		}
	}
	if s.Nodes > 0 {
		s.Mean = float64(total) / float64(s.Nodes)
	}
	return s
}

// DegreeSlice returns all degrees of a kind as a slice (for distribution
// fitting and histograms).
func (n *Network) DegreeSlice(k DegreeKind) []int {
	out := make([]int, 0, len(n.raw))
	for u := range n.raw {
		out = append(out, len(n.adj(k)[u]))
	}
	return out
}

// DegreeAssortativity returns the Pearson correlation between the raw
// degrees at the two endpoints of every accepted contract: positive values
// mean similar-degree users trade with each other (the paper's SET-UP
// observation that power-users and one-shot users each "trade within their
// own class types"), negative values mean hubs mostly serve the periphery
// (the STABLE business-to-customer pattern).
func DegreeAssortativity(n *Network, contracts []*forum.Contract) float64 {
	var xs, ys []float64
	for _, c := range contracts {
		if !connected(c) {
			continue
		}
		xs = append(xs, float64(n.Degree(c.Maker, Raw)))
		ys = append(ys, float64(n.Degree(c.Taker, Raw)))
	}
	if len(xs) < 2 {
		return 0
	}
	return pearson(xs, ys)
}

func pearson(xs, ys []float64) float64 {
	nf := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/nf, sy/nf
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
