// Package graph builds and measures the contractual social network of
// §4.2: users are nodes, and a contract links its maker and taker. Raw
// connections ignore direction; an inbound connection from n to m exists
// when m accepts a contract made by n, and an outbound connection when n
// makes a contract to m. Bidirectional contract types (EXCHANGE, TRADE)
// count as both inbound and outbound for both parties.
package graph

import (
	"math"

	"turnup/internal/forum"
)

// Network is the contractual graph. Degrees count distinct counterparty
// users, as the paper defines them, so edges must be deduplicated: one
// flat seen-set keyed by directed user pair carries a bitmask of the
// connection kinds already recorded for that pair, and per-user degree
// counters advance only when a pair gains a new kind. This replaces the
// per-user nested adjacency sets the first implementation used — same
// semantics, one map instead of one map per user per kind.
type Network struct {
	seen   map[pair]uint8
	degRaw map[forum.UserID]int
	degIn  map[forum.UserID]int
	degOut map[forum.UserID]int
}

// pair is a directed user pair. A struct key (not packed integers) so IDs
// wider than 32 bits can never collide.
type pair struct{ from, to forum.UserID }

// Connection-kind bits in the seen-set. Raw edges are recorded in both
// directions, so the raw bit on (u,v) means v is among u's distinct
// counterparties.
const (
	bitRaw uint8 = 1 << iota
	bitIn
	bitOut
)

// New returns an empty network.
func New() *Network {
	return &Network{
		seen:   make(map[pair]uint8),
		degRaw: make(map[forum.UserID]int),
		degIn:  make(map[forum.UserID]int),
		degOut: make(map[forum.UserID]int),
	}
}

// Build constructs the network over the given contracts. Only accepted
// contracts create connections: a contract that was denied or expired never
// linked two users. (Callers filter to created-and-accepted or completed
// sets as the analysis requires.)
func Build(contracts []*forum.Contract) *Network {
	n := New()
	for _, c := range contracts {
		n.Add(c)
	}
	return n
}

// connected reports whether the contract's parties ever entered the deal.
func connected(c *forum.Contract) bool {
	switch c.Status {
	case forum.StatusPending, forum.StatusDenied, forum.StatusExpired:
		return false
	}
	return true
}

// Add incorporates one contract into the network.
func (n *Network) Add(c *forum.Contract) {
	if !connected(c) {
		return
	}
	n.link(c.Maker, c.Taker, bitRaw)
	n.link(c.Taker, c.Maker, bitRaw)
	// Maker initiates: outbound maker→taker, inbound for taker from maker.
	n.link(c.Maker, c.Taker, bitOut)
	n.link(c.Taker, c.Maker, bitIn)
	if c.Type.Bidirectional() {
		// Goods flow both ways: both parties gain both connection kinds.
		n.link(c.Taker, c.Maker, bitOut)
		n.link(c.Maker, c.Taker, bitIn)
	}
}

func (n *Network) link(from, to forum.UserID, bit uint8) {
	p := pair{from, to}
	if n.seen[p]&bit != 0 {
		return
	}
	n.seen[p] |= bit
	switch bit {
	case bitRaw:
		n.degRaw[from]++
	case bitIn:
		n.degIn[from]++
	case bitOut:
		n.degOut[from]++
	}
}

// Nodes returns the number of users with at least one raw connection.
func (n *Network) Nodes() int { return len(n.degRaw) }

// DegreeKind selects which degree notion to read.
type DegreeKind int

// The three degree notions of §4.2.
const (
	Raw DegreeKind = iota
	Inbound
	Outbound
)

// String names the degree kind.
func (k DegreeKind) String() string {
	switch k {
	case Raw:
		return "raw"
	case Inbound:
		return "inbound"
	case Outbound:
		return "outbound"
	default:
		return "unknown"
	}
}

func (n *Network) deg(k DegreeKind) map[forum.UserID]int {
	switch k {
	case Inbound:
		return n.degIn
	case Outbound:
		return n.degOut
	default:
		return n.degRaw
	}
}

// Degree returns user u's degree of the given kind.
func (n *Network) Degree(u forum.UserID, k DegreeKind) int { return n.deg(k)[u] }

// Degrees returns the degree of every user that appears in the raw graph
// (users with zero inbound or outbound degree report 0, matching the
// paper's "zero point" in the outbound distribution).
func (n *Network) Degrees(k DegreeKind) map[forum.UserID]int {
	kind := n.deg(k)
	out := make(map[forum.UserID]int, len(n.degRaw))
	for u := range n.degRaw {
		out[u] = kind[u]
	}
	return out
}

// DegreeStats summarises a degree distribution.
type DegreeStats struct {
	Kind  DegreeKind
	Max   int
	Mean  float64
	Nodes int
}

// Stats computes max and mean degree of the given kind over raw-graph nodes.
func (n *Network) Stats(k DegreeKind) DegreeStats {
	s := DegreeStats{Kind: k, Nodes: len(n.degRaw)}
	kind := n.deg(k)
	total := 0
	for u := range n.degRaw {
		d := kind[u]
		total += d
		if d > s.Max {
			s.Max = d
		}
	}
	if s.Nodes > 0 {
		s.Mean = float64(total) / float64(s.Nodes)
	}
	return s
}

// DegreeSlice returns all degrees of a kind as a slice (for distribution
// fitting and histograms).
func (n *Network) DegreeSlice(k DegreeKind) []int {
	kind := n.deg(k)
	out := make([]int, 0, len(n.degRaw))
	for u := range n.degRaw {
		out = append(out, kind[u])
	}
	return out
}

// DegreeAssortativity returns the Pearson correlation between the raw
// degrees at the two endpoints of every accepted contract: positive values
// mean similar-degree users trade with each other (the paper's SET-UP
// observation that power-users and one-shot users each "trade within their
// own class types"), negative values mean hubs mostly serve the periphery
// (the STABLE business-to-customer pattern).
func DegreeAssortativity(n *Network, contracts []*forum.Contract) float64 {
	var xs, ys []float64
	for _, c := range contracts {
		if !connected(c) {
			continue
		}
		xs = append(xs, float64(n.Degree(c.Maker, Raw)))
		ys = append(ys, float64(n.Degree(c.Taker, Raw)))
	}
	if len(xs) < 2 {
		return 0
	}
	return pearson(xs, ys)
}

func pearson(xs, ys []float64) float64 {
	nf := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/nf, sy/nf
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
