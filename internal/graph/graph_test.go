package graph

import (
	"testing"
	"time"

	"turnup/internal/forum"
)

var g0 = time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)

func accepted(t *testing.T, id int, typ forum.ContractType, maker, taker forum.UserID) *forum.Contract {
	t.Helper()
	c, err := forum.NewContract(forum.ContractID(id), typ, maker, taker, g0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Accept(g0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	return c
}

func pending(t *testing.T, id int, maker, taker forum.UserID) *forum.Contract {
	t.Helper()
	c, err := forum.NewContract(forum.ContractID(id), forum.Sale, maker, taker, g0, true)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDirectedDegreesOneWay(t *testing.T) {
	// User 1 makes SALEs to users 2 and 3.
	n := Build([]*forum.Contract{
		accepted(t, 1, forum.Sale, 1, 2),
		accepted(t, 2, forum.Sale, 1, 3),
	})
	if d := n.Degree(1, Outbound); d != 2 {
		t.Errorf("maker outbound = %d", d)
	}
	if d := n.Degree(1, Inbound); d != 0 {
		t.Errorf("maker inbound = %d", d)
	}
	if d := n.Degree(2, Inbound); d != 1 {
		t.Errorf("taker inbound = %d", d)
	}
	if d := n.Degree(2, Outbound); d != 0 {
		t.Errorf("taker outbound = %d", d)
	}
	if d := n.Degree(1, Raw); d != 2 {
		t.Errorf("maker raw = %d", d)
	}
}

func TestBidirectionalCountsBothWays(t *testing.T) {
	n := Build([]*forum.Contract{accepted(t, 1, forum.Exchange, 1, 2)})
	for _, u := range []forum.UserID{1, 2} {
		if d := n.Degree(u, Inbound); d != 1 {
			t.Errorf("user %d inbound = %d", u, d)
		}
		if d := n.Degree(u, Outbound); d != 1 {
			t.Errorf("user %d outbound = %d", u, d)
		}
	}
}

func TestRepeatContractsDoNotInflateDegree(t *testing.T) {
	// Degrees count distinct counterparties, not contracts.
	n := Build([]*forum.Contract{
		accepted(t, 1, forum.Sale, 1, 2),
		accepted(t, 2, forum.Sale, 1, 2),
		accepted(t, 3, forum.Sale, 1, 2),
	})
	if d := n.Degree(1, Raw); d != 1 {
		t.Errorf("raw degree = %d after repeat contracts", d)
	}
	if d := n.Degree(1, Outbound); d != 1 {
		t.Errorf("outbound degree = %d after repeat contracts", d)
	}
}

func TestUnacceptedContractsExcluded(t *testing.T) {
	den := pending(t, 2, 3, 4)
	_ = den.Deny(g0.Add(time.Hour))
	exp := pending(t, 3, 5, 6)
	_ = exp.Expire(g0.Add(80 * time.Hour))
	n := Build([]*forum.Contract{pending(t, 1, 1, 2), den, exp})
	if n.Nodes() != 0 {
		t.Errorf("unaccepted contracts created %d nodes", n.Nodes())
	}
}

func TestStats(t *testing.T) {
	n := Build([]*forum.Contract{
		accepted(t, 1, forum.Sale, 1, 2),
		accepted(t, 2, forum.Sale, 3, 2),
		accepted(t, 3, forum.Sale, 4, 2),
	})
	s := n.Stats(Inbound)
	if s.Max != 3 {
		t.Errorf("max inbound = %d", s.Max)
	}
	if s.Nodes != 4 {
		t.Errorf("nodes = %d", s.Nodes)
	}
	// Mean inbound: user 2 has 3, others 0 → 0.75.
	if s.Mean != 0.75 {
		t.Errorf("mean inbound = %v", s.Mean)
	}
	raw := n.Stats(Raw)
	if raw.Max != 3 || raw.Mean != 1.5 {
		t.Errorf("raw stats = %+v", raw)
	}
}

func TestDegreesIncludeZeroOutbound(t *testing.T) {
	n := Build([]*forum.Contract{accepted(t, 1, forum.Sale, 1, 2)})
	degs := n.Degrees(Outbound)
	if len(degs) != 2 {
		t.Fatalf("degrees over %d nodes", len(degs))
	}
	if degs[2] != 0 {
		t.Errorf("taker outbound = %d, want 0", degs[2])
	}
	slice := n.DegreeSlice(Outbound)
	if len(slice) != 2 {
		t.Errorf("DegreeSlice len = %d", len(slice))
	}
}

func TestIncrementalAddMatchesBuild(t *testing.T) {
	cs := []*forum.Contract{
		accepted(t, 1, forum.Sale, 1, 2),
		accepted(t, 2, forum.Exchange, 2, 3),
		accepted(t, 3, forum.Trade, 3, 1),
	}
	built := Build(cs)
	inc := New()
	for _, c := range cs {
		inc.Add(c)
	}
	for _, k := range []DegreeKind{Raw, Inbound, Outbound} {
		for u := forum.UserID(1); u <= 3; u++ {
			if built.Degree(u, k) != inc.Degree(u, k) {
				t.Errorf("user %d %v: %d vs %d", u, k, built.Degree(u, k), inc.Degree(u, k))
			}
		}
	}
}

func TestDegreeKindString(t *testing.T) {
	if Raw.String() != "raw" || Inbound.String() != "inbound" || Outbound.String() != "outbound" {
		t.Error("degree kind names wrong")
	}
}

func TestDegreeAssortativity(t *testing.T) {
	// Disassortative star: one hub linked to many one-degree spokes.
	var cs []*forum.Contract
	for i := 2; i <= 12; i++ {
		cs = append(cs, accepted(t, i, forum.Sale, forum.UserID(i), 1))
	}
	n := Build(cs)
	if r := DegreeAssortativity(n, cs); r != 0 {
		// All makers have degree 1 and the taker always has degree 11:
		// zero variance on one side → correlation is defined as 0 here.
		t.Errorf("star assortativity = %v, want 0 (degenerate variance)", r)
	}
	// Mixed graph: a hub trading with spokes in both directions plus
	// disjoint peer pairs. Hubs meet low-degree users and low-degree users
	// meet each other, so endpoint degrees anti-correlate.
	var mixed []*forum.Contract
	id := 100
	for i := 0; i < 3; i++ { // hub (user 1) initiates to spokes
		id++
		mixed = append(mixed, accepted(t, id, forum.Sale, 1, forum.UserID(200+i)))
	}
	for i := 3; i < 6; i++ { // spokes initiate to the hub
		id++
		mixed = append(mixed, accepted(t, id, forum.Sale, forum.UserID(200+i), 1))
	}
	for i := 0; i < 6; i++ { // disjoint peer pairs
		id++
		mixed = append(mixed, accepted(t, id, forum.Sale, forum.UserID(300+2*i), forum.UserID(301+2*i)))
	}
	nm := Build(mixed)
	if r := DegreeAssortativity(nm, mixed); r >= 0 {
		t.Errorf("hub-plus-peers assortativity = %v, want negative", r)
	}
	// Empty input.
	if r := DegreeAssortativity(New(), nil); r != 0 {
		t.Errorf("empty assortativity = %v", r)
	}
}
