package stats

import (
	"math"
	"testing"

	"turnup/internal/rng"
)

func TestMatrixBasics(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 1) != 4 {
		t.Errorf("At(1,1) = %v", m.At(1, 1))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Errorf("Set failed")
	}
	v := m.MulVec([]float64{1, 1})
	if v[0] != 11 || v[1] != 7 || v[2] != 11 {
		t.Errorf("MulVec = %v", v)
	}
}

func TestMatrixRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	MatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestXtWX(t *testing.T) {
	x := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	// Unit weights: X'X = [[10,14],[14,20]].
	g := XtWX(x, nil)
	want := [][]float64{{10, 14}, {14, 20}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(g.At(i, j), want[i][j], 1e-12) {
				t.Errorf("XtWX(%d,%d) = %v, want %v", i, j, g.At(i, j), want[i][j])
			}
		}
	}
	// Weighted: w = [2, 0] keeps only the first row's contribution, doubled.
	gw := XtWX(x, []float64{2, 0})
	wantW := [][]float64{{2, 4}, {4, 8}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(gw.At(i, j), wantW[i][j], 1e-12) {
				t.Errorf("weighted XtWX(%d,%d) = %v", i, j, gw.At(i, j))
			}
		}
	}
}

func TestXtWz(t *testing.T) {
	x := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	out := XtWz(x, nil, []float64{1, 1})
	if out[0] != 4 || out[1] != 6 {
		t.Errorf("XtWz = %v", out)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := MatrixFromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L = [[2,0],[1,sqrt(2)]]
	if !almostEq(l.At(0, 0), 2, 1e-12) || !almostEq(l.At(1, 0), 1, 1e-12) ||
		!almostEq(l.At(1, 1), math.Sqrt2, 1e-12) {
		t.Errorf("L = %v", l.Data)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestSolveSPDRoundTrip(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := src.Intn(6) + 2
		// Build SPD A = B'B + I.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = src.Norm()
		}
		a := XtWX(b, nil)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = src.Norm()
		}
		rhs := a.MulVec(xTrue)
		x, err := SolveSPD(a, rhs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestSolveSPDSingularFallback(t *testing.T) {
	// Rank-1 Gram matrix: exact solve impossible, ridge fallback must not error.
	a := MatrixFromRows([][]float64{{1, 1}, {1, 1}})
	x, err := SolveSPD(a, []float64{2, 2})
	if err != nil {
		t.Fatalf("ridge fallback failed: %v", err)
	}
	// Solution should approximately satisfy Ax = b in the least-squares sense.
	r0 := x[0] + x[1]
	if math.Abs(r0-2) > 1e-3 {
		t.Errorf("ridge solution residual: %v", r0)
	}
}

func TestInvertSPD(t *testing.T) {
	a := MatrixFromRows([][]float64{{4, 2}, {2, 3}})
	inv, err := InvertSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	// A * A^-1 = I.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			s := 0.0
			for k := 0; k < 2; k++ {
				s += a.At(i, k) * inv.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(s, want, 1e-10) {
				t.Errorf("(A·A⁻¹)[%d][%d] = %v", i, j, s)
			}
		}
	}
}

func TestDot(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Errorf("Dot = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Dot did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}
