package stats

import (
	"math"
	"testing"

	"turnup/internal/rng"
)

// mixtureData simulates an independent-Poisson mixture with the given class
// weights and rate matrix.
func mixtureData(src *rng.Source, n int, weights []float64, rates [][]float64) ([][]float64, []int) {
	data := make([][]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := src.Categorical(weights)
		labels[i] = c
		row := make([]float64, len(rates[c]))
		for j, lam := range rates[c] {
			row[j] = float64(src.Poisson(lam))
		}
		data[i] = row
	}
	return data, labels
}

func TestLCARecoversRates(t *testing.T) {
	src := rng.New(401)
	weights := []float64{0.6, 0.4}
	rates := [][]float64{{1, 8}, {10, 0.5}}
	data, _ := mixtureData(src, 4000, weights, rates)
	var best *LCAResult
	for r := 0; r < 5; r++ {
		fit, err := FitLCA(data, 2, src.Fork(uint64(r)))
		if err != nil {
			t.Fatal(err)
		}
		if best == nil || fit.LogLik > best.LogLik {
			best = fit
		}
	}
	// Match fitted classes to true classes by first-dimension rate.
	lo, hi := 0, 1
	if best.Rates[0][0] > best.Rates[1][0] {
		lo, hi = 1, 0
	}
	if math.Abs(best.Rates[lo][0]-1) > 0.3 || math.Abs(best.Rates[lo][1]-8) > 0.5 {
		t.Errorf("class-lo rates = %v, want ~[1 8]", best.Rates[lo])
	}
	if math.Abs(best.Rates[hi][0]-10) > 0.5 || math.Abs(best.Rates[hi][1]-0.5) > 0.3 {
		t.Errorf("class-hi rates = %v, want ~[10 0.5]", best.Rates[hi])
	}
	if math.Abs(best.Weights[lo]-0.6) > 0.05 {
		t.Errorf("class-lo weight = %v, want ~0.6", best.Weights[lo])
	}
}

func TestLCAPosteriorRowsSumToOne(t *testing.T) {
	src := rng.New(409)
	data, _ := mixtureData(src, 500, []float64{0.5, 0.5}, [][]float64{{2, 2}, {9, 1}})
	fit, err := FitLCA(data, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range fit.Posterior {
		s := 0.0
		for _, p := range row {
			if p < -1e-12 || p > 1+1e-12 {
				t.Fatalf("posterior out of range at %d: %v", i, p)
			}
			s += p
		}
		if !almostEq(s, 1, 1e-9) {
			t.Fatalf("posterior row %d sums to %v", i, s)
		}
	}
}

func TestLCAWeightsSumToOne(t *testing.T) {
	src := rng.New(419)
	data, _ := mixtureData(src, 800, []float64{0.3, 0.3, 0.4},
		[][]float64{{1, 1}, {6, 1}, {1, 9}})
	fit, err := FitLCA(data, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(Sum(fit.Weights), 1, 1e-9) {
		t.Errorf("weights sum to %v", Sum(fit.Weights))
	}
}

func TestLCAErrors(t *testing.T) {
	src := rng.New(421)
	if _, err := FitLCA(nil, 2, src); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := FitLCA([][]float64{{1}, {2}}, 5, src); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := FitLCA([][]float64{{1, 2}, {-1, 0}}, 1, src); err == nil {
		t.Error("negative counts accepted")
	}
	if _, err := FitLCA([][]float64{{1}, {2, 3}}, 1, src); err == nil {
		t.Error("ragged data accepted")
	}
}

func TestSelectLCAPrefersTrueK(t *testing.T) {
	src := rng.New(431)
	// Three very distinct classes; BIC should not pick fewer than 3 and has
	// no reason to pick many more.
	data, _ := mixtureData(src, 2500, []float64{0.4, 0.3, 0.3},
		[][]float64{{0.5, 0.5}, {10, 0.5}, {0.5, 12}})
	best, fits, err := SelectLCA(data, 1, 5, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	if best.K < 3 || best.K > 4 {
		t.Errorf("BIC selected k = %d, want 3 (or occasionally 4)", best.K)
	}
	// Log-likelihood must be non-decreasing in k for nested mixtures.
	for k := 2; k <= 5; k++ {
		if fits[k].LogLik < fits[k-1].LogLik-25 {
			t.Errorf("loglik dropped substantially from k=%d (%v) to k=%d (%v)",
				k-1, fits[k-1].LogLik, k, fits[k].LogLik)
		}
	}
}

func TestLCAClassify(t *testing.T) {
	src := rng.New(433)
	data, _ := mixtureData(src, 2000, []float64{0.5, 0.5}, [][]float64{{1, 10}, {10, 1}})
	fit, err := FitLCA(data, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	// An extreme observation must classify to the matching component.
	cHi := fit.Classify([]float64{15, 0})
	cLo := fit.Classify([]float64{0, 15})
	if cHi == cLo {
		t.Error("Classify cannot distinguish extreme observations")
	}
	if fit.Rates[cHi][0] < fit.Rates[cLo][0] {
		t.Error("Classify assigned to the wrong component")
	}
}

func TestTransitionMatrix(t *testing.T) {
	seqs := map[string][]int{
		"u1": {0, 0, 1, 1},
		"u2": {0, 1, 1, 0},
		"u3": {0, -1, 1}, // gap: 0→1 must NOT be counted without bridging
	}
	m := TransitionMatrix(seqs, 2, false)
	// Transitions: u1: 0→0, 0→1, 1→1; u2: 0→1, 1→1, 1→0. u3 contributes none.
	// From 0: {0→0:1, 0→1:2} → [1/3, 2/3]. From 1: {1→1:2, 1→0:1} → [1/3, 2/3].
	if !almostEq(m[0][0], 1.0/3, 1e-9) || !almostEq(m[0][1], 2.0/3, 1e-9) {
		t.Errorf("row 0 = %v", m[0])
	}
	if !almostEq(m[1][0], 1.0/3, 1e-9) || !almostEq(m[1][1], 2.0/3, 1e-9) {
		t.Errorf("row 1 = %v", m[1])
	}

	bridged := TransitionMatrix(seqs, 2, true)
	// With bridging, u3 adds one extra 0→1.
	if bridged[0][1] <= m[0][1] {
		t.Errorf("bridging did not add the gap transition: %v vs %v", bridged[0][1], m[0][1])
	}

	// Rows of any transition matrix sum to 1 (or 0 for unseen classes).
	for i, row := range m {
		s := Sum(row)
		if !almostEq(s, 1, 1e-9) && s != 0 {
			t.Errorf("row %d sums to %v", i, s)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	if v := logSumExp([]float64{0, 0}); !almostEq(v, math.Log(2), 1e-12) {
		t.Errorf("logSumExp = %v", v)
	}
	// Extreme values must not overflow.
	if v := logSumExp([]float64{-1000, -1001}); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("logSumExp overflowed: %v", v)
	}
	if v := logSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(v, -1) {
		t.Errorf("all -inf should stay -inf, got %v", v)
	}
}
