package stats

import "math"

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// NormalCDF returns P(Z <= x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// PValueTwoSided returns the two-sided normal p-value for a z statistic.
func PValueTwoSided(z float64) float64 {
	return 2 * NormalCDF(-math.Abs(z))
}

// SignificanceStars renders the paper's convention: * p<0.05, ** p<0.01,
// *** p<0.001, empty otherwise.
func SignificanceStars(p float64) string {
	switch {
	case p < 0.001:
		return "***"
	case p < 0.01:
		return "**"
	case p < 0.05:
		return "*"
	default:
		return ""
	}
}

// PoissonLogPMF returns log P(Y = k) for Y ~ Poisson(lambda).
// For lambda <= 0 it returns 0 probability mass except at k == 0.
func PoissonLogPMF(k int, lambda float64) float64 {
	if k < 0 {
		return math.Inf(-1)
	}
	if lambda <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return float64(k)*math.Log(lambda) - lambda - lg
}

// PoissonPMF returns P(Y = k) for Y ~ Poisson(lambda).
func PoissonPMF(k int, lambda float64) float64 {
	return math.Exp(PoissonLogPMF(k, lambda))
}

// ZIPLogPMF returns the log probability mass of a zero-inflated Poisson
// with structural-zero probability pi and Poisson mean lambda.
func ZIPLogPMF(k int, pi, lambda float64) float64 {
	if k < 0 {
		return math.Inf(-1)
	}
	if k == 0 {
		return math.Log(pi + (1-pi)*math.Exp(-lambda))
	}
	return math.Log1p(-pi) + PoissonLogPMF(k, lambda)
}

// regularizedGammaP computes P(a, x), the regularised lower incomplete
// gamma function, via the series expansion for x < a+1 and the continued
// fraction otherwise (Numerical Recipes gammp).
func regularizedGammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X <= x) for X ~ chi-square with df degrees of
// freedom.
func ChiSquareCDF(x float64, df int) float64 {
	if x <= 0 {
		return 0
	}
	return regularizedGammaP(float64(df)/2, x/2)
}

// ChiSquarePValue returns the upper-tail p-value P(X > x).
func ChiSquarePValue(x float64, df int) float64 {
	return 1 - ChiSquareCDF(x, df)
}
