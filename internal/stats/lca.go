package stats

import (
	"fmt"
	"math"

	"turnup/internal/rng"
)

// LCAResult is a fitted latent class model for multivariate count data:
// a mixture of K classes, each emitting D independent Poisson counts.
// This is the modelling engine behind the paper's Latent Transition Model
// (§5.1): each user-month is an observation, the D dimensions are the
// make/take counts per contract type, and the classes are the 12 behaviour
// types of Table 6.
type LCAResult struct {
	K, D       int
	Weights    []float64   // class mixing proportions, length K
	Rates      [][]float64 // K × D Poisson rates (the Table 6 matrix)
	LogLik     float64
	AIC, BIC   float64
	N          int
	Iters      int
	Converged  bool
	Posterior  [][]float64 // N × K responsibilities
	Assignment []int       // MAP class per observation
}

const (
	lcaMaxIter = 300
	lcaTol     = 1e-7
	lcaRateEps = 1e-6 // floor on rates: keeps log-PMFs finite for zero-rate cells
)

// FitLCA fits a K-class independent-Poisson mixture to data (N × D counts)
// by EM with random-responsibility initialisation.
func FitLCA(data [][]float64, k int, src *rng.Source) (*LCAResult, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("stats: LCA on empty data")
	}
	d := len(data[0])
	if d == 0 {
		return nil, fmt.Errorf("stats: LCA with zero dimensions")
	}
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("stats: ragged LCA data at row %d", i)
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("stats: negative count at (%d,%d)", i, j)
			}
		}
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("stats: LCA k=%d with n=%d", k, n)
	}

	res := &LCAResult{K: k, D: d, N: n}
	// Initialise rates from randomly perturbed k-means-ish seeds: pick k
	// random rows as rate anchors, blended with the global mean.
	global := make([]float64, d)
	for _, row := range data {
		for j, v := range row {
			global[j] += v
		}
	}
	for j := range global {
		global[j] /= float64(n)
	}
	rates := make([][]float64, k)
	for c := range rates {
		anchor := data[src.Intn(n)]
		rates[c] = make([]float64, d)
		for j := range rates[c] {
			rates[c][j] = math.Max(0.7*anchor[j]+0.3*global[j]+0.05*src.Float64(), lcaRateEps)
		}
	}
	weights := make([]float64, k)
	for c := range weights {
		weights[c] = 1 / float64(k)
	}

	post := make([][]float64, n)
	for i := range post {
		post[i] = make([]float64, k)
	}
	logp := make([]float64, k)
	prev := math.Inf(-1)
	for iter := 1; iter <= lcaMaxIter; iter++ {
		res.Iters = iter
		// E-step in log space.
		lik := 0.0
		for i, row := range data {
			for c := 0; c < k; c++ {
				lp := math.Log(weights[c])
				for j, v := range row {
					lp += PoissonLogPMF(int(v), rates[c][j])
				}
				logp[c] = lp
			}
			lse := logSumExp(logp)
			lik += lse
			for c := 0; c < k; c++ {
				post[i][c] = math.Exp(logp[c] - lse)
			}
		}
		if math.Abs(lik-prev) < lcaTol*(math.Abs(lik)+1) {
			res.Converged = true
			res.LogLik = lik
			break
		}
		prev = lik
		res.LogLik = lik

		// M-step.
		for c := 0; c < k; c++ {
			wc := 0.0
			for i := range data {
				wc += post[i][c]
			}
			weights[c] = wc / float64(n)
			for j := 0; j < d; j++ {
				num := 0.0
				for i, row := range data {
					num += post[i][c] * row[j]
				}
				if wc > 0 {
					rates[c][j] = math.Max(num/wc, lcaRateEps)
				}
			}
		}
	}

	res.Weights = weights
	res.Rates = rates
	res.Posterior = post
	res.Assignment = make([]int, n)
	for i := range post {
		best, bestP := 0, post[i][0]
		for c := 1; c < k; c++ {
			if post[i][c] > bestP {
				best, bestP = c, post[i][c]
			}
		}
		res.Assignment[i] = best
	}
	params := float64(k - 1 + k*d)
	res.AIC = -2*res.LogLik + 2*params
	res.BIC = -2*res.LogLik + params*math.Log(float64(n))
	return res, nil
}

func logSumExp(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	s := 0.0
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// SelectLCA sweeps the class count over [kMin, kMax] with nRestarts EM runs
// per k (best log-likelihood kept), returning the fit minimising BIC and
// all per-k fits. The paper selects 12 classes by AIC/BIC parsimony.
func SelectLCA(data [][]float64, kMin, kMax, nRestarts int, src *rng.Source) (best *LCAResult, fits map[int]*LCAResult, err error) {
	if kMin < 1 {
		kMin = 1
	}
	if nRestarts < 1 {
		nRestarts = 1
	}
	fits = make(map[int]*LCAResult)
	for k := kMin; k <= kMax; k++ {
		var bestK *LCAResult
		for r := 0; r < nRestarts; r++ {
			fit, ferr := FitLCA(data, k, src.Fork(uint64(k*1000+r)))
			if ferr != nil {
				return nil, nil, ferr
			}
			if bestK == nil || fit.LogLik > bestK.LogLik {
				bestK = fit
			}
		}
		fits[k] = bestK
		if best == nil || bestK.BIC < best.BIC {
			best = bestK
		}
	}
	return best, fits, nil
}

// Classify returns the MAP class under the fitted model for a new
// observation, without refitting.
func (m *LCAResult) Classify(row []float64) int {
	best, bestLP := 0, math.Inf(-1)
	for c := 0; c < m.K; c++ {
		lp := math.Log(m.Weights[c])
		for j, v := range row {
			lp += PoissonLogPMF(int(v), m.Rates[c][j])
		}
		if lp > bestLP {
			best, bestLP = c, lp
		}
	}
	return best
}

// TransitionMatrix estimates a latent transition matrix from per-period
// class assignments: entry (a, b) is P(class b at t+1 | class a at t),
// estimated from all consecutive-period pairs in the sequences. Sequences
// map an entity ID to its ordered class assignments; negative class values
// mark periods where the entity is absent and are skipped (no transition is
// counted across a gap unless bridgeGaps is true).
func TransitionMatrix(sequences map[string][]int, k int, bridgeGaps bool) [][]float64 {
	counts := make([][]float64, k)
	for i := range counts {
		counts[i] = make([]float64, k)
	}
	for _, seq := range sequences {
		prev := -1
		for _, c := range seq {
			if c < 0 || c >= k {
				if !bridgeGaps {
					prev = -1
				}
				continue
			}
			if prev >= 0 {
				counts[prev][c]++
			}
			prev = c
		}
	}
	for a := range counts {
		total := 0.0
		for _, v := range counts[a] {
			total += v
		}
		if total > 0 {
			for b := range counts[a] {
				counts[a][b] /= total
			}
		}
	}
	return counts
}
