package stats

import (
	"testing"

	"turnup/internal/rng"
)

func TestBootstrapMeanCI(t *testing.T) {
	src := rng.New(801)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = src.NormMS(10, 2)
	}
	ci, err := Bootstrap(xs, Mean, 500, 0.95, src)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(ci.Point) {
		t.Errorf("interval [%v, %v] excludes its own point %v", ci.Lo, ci.Hi, ci.Point)
	}
	if !ci.Contains(10) {
		t.Errorf("95%% CI [%v, %v] excludes the true mean 10", ci.Lo, ci.Hi)
	}
	// Width should be roughly 2·1.96·σ/√n ≈ 0.35.
	width := ci.Hi - ci.Lo
	if width < 0.15 || width > 0.8 {
		t.Errorf("CI width = %v, want ~0.35", width)
	}
}

func TestBootstrapCoverage(t *testing.T) {
	// Repeated experiments: the 90% CI should cover the true value in
	// roughly 90% of trials (allow a generous band at 60 trials).
	src := rng.New(809)
	covered := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 120)
		for i := range xs {
			xs[i] = src.Exp(0.5) // mean 2
		}
		ci, err := Bootstrap(xs, Mean, 300, 0.90, src.Fork(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(2) {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.75 || frac > 1.0 {
		t.Errorf("coverage = %.2f, want ~0.90", frac)
	}
}

func TestBootstrapErrors(t *testing.T) {
	src := rng.New(811)
	if _, err := Bootstrap(nil, Mean, 100, 0.95, src); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Bootstrap([]float64{1, 2}, Mean, 5, 0.95, src); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, err := Bootstrap([]float64{1, 2}, Mean, 100, 1.5, src); err == nil {
		t.Error("bad level accepted")
	}
}
