package stats

import (
	"fmt"
	"sort"

	"turnup/internal/rng"
)

// BootstrapCI is a percentile bootstrap confidence interval for a scalar
// statistic.
type BootstrapCI struct {
	Point float64 // statistic on the original sample
	Lo    float64
	Hi    float64
	Level float64 // e.g. 0.95
	B     int     // resamples
}

// Bootstrap computes a percentile bootstrap CI for stat over xs with B
// resamples at the given confidence level.
func Bootstrap(xs []float64, stat func([]float64) float64, b int, level float64, src *rng.Source) (BootstrapCI, error) {
	if len(xs) == 0 {
		return BootstrapCI{}, fmt.Errorf("stats: bootstrap on empty sample")
	}
	if b < 10 {
		return BootstrapCI{}, fmt.Errorf("stats: bootstrap needs >= 10 resamples, got %d", b)
	}
	if level <= 0 || level >= 1 {
		return BootstrapCI{}, fmt.Errorf("stats: bootstrap level %v out of (0,1)", level)
	}
	out := BootstrapCI{Point: stat(xs), Level: level, B: b}
	resample := make([]float64, len(xs))
	stats := make([]float64, b)
	for r := 0; r < b; r++ {
		for i := range resample {
			resample[i] = xs[src.Intn(len(xs))]
		}
		stats[r] = stat(resample)
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	out.Lo = Quantile(stats, alpha)
	out.Hi = Quantile(stats, 1-alpha)
	return out, nil
}

// Contains reports whether the interval covers v.
func (ci BootstrapCI) Contains(v float64) bool { return v >= ci.Lo && v <= ci.Hi }
