package stats

import (
	"math"
	"testing"

	"turnup/internal/rng"
)

// simulateZIP draws n observations from a ZIP model with the given true
// parameters over standard-normal covariates, returning designs and response.
func simulateZIP(src *rng.Source, n int, beta, gamma []float64) (countX *Matrix, y []float64, zeroX *Matrix) {
	pc, pz := len(beta), len(gamma)
	countX = NewMatrix(n, pc)
	zeroX = NewMatrix(n, pz)
	y = make([]float64, n)
	for i := 0; i < n; i++ {
		countX.Set(i, 0, 1)
		zeroX.Set(i, 0, 1)
		for j := 1; j < pc; j++ {
			countX.Set(i, j, src.Norm())
		}
		for j := 1; j < pz; j++ {
			zeroX.Set(i, j, src.Norm())
		}
		mu := math.Exp(Dot(countX.Row(i), beta))
		pi := 1 / (1 + math.Exp(-Dot(zeroX.Row(i), gamma)))
		if src.Bool(pi) {
			y[i] = 0
		} else {
			y[i] = float64(src.Poisson(mu))
		}
	}
	return countX, y, zeroX
}

func TestZIPRecovery(t *testing.T) {
	src := rng.New(211)
	trueBeta := []float64{1.0, 0.5}
	trueGamma := []float64{-0.5, 0.8}
	countX, y, zeroX := simulateZIP(src, 6000, trueBeta, trueGamma)
	res, err := ZIPRegression(countX, y, zeroX,
		[]string{"(Intercept)", "x1"}, []string{"(Intercept)", "z1"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("ZIP EM did not converge")
	}
	for j, want := range trueBeta {
		if math.Abs(res.Count.Coef[j]-want) > 0.08 {
			t.Errorf("count beta[%d] = %v, want %v", j, res.Count.Coef[j], want)
		}
	}
	for j, want := range trueGamma {
		if math.Abs(res.Zero.Coef[j]-want) > 0.15 {
			t.Errorf("zero gamma[%d] = %v, want %v", j, res.Zero.Coef[j], want)
		}
	}
	// Standard errors should be small but positive at this n.
	for j, se := range res.Count.StdErr {
		if se <= 0 || se > 0.2 {
			t.Errorf("count SE[%d] = %v", j, se)
		}
	}
	// Data genuinely zero-inflated: Vuong must clearly favour ZIP.
	if res.Vuong < 2 {
		t.Errorf("Vuong = %v, expected strong preference for ZIP", res.Vuong)
	}
	if res.VuongP > 0.05 {
		t.Errorf("Vuong p = %v", res.VuongP)
	}
	if res.McFadden <= 0 || res.McFadden >= 1 {
		t.Errorf("McFadden = %v", res.McFadden)
	}
}

func TestZIPPctZero(t *testing.T) {
	src := rng.New(223)
	countX, y, zeroX := simulateZIP(src, 2000, []float64{1.5}, []float64{0})
	res, err := ZIPRegression(countX, y, zeroX, []string{"(Intercept)"}, []string{"(Intercept)"})
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range y {
		if v == 0 {
			zeros++
		}
	}
	want := 100 * float64(zeros) / float64(len(y))
	if !almostEq(res.PctZero, want, 1e-9) {
		t.Errorf("PctZero = %v, want %v", res.PctZero, want)
	}
	// gamma intercept 0 → pi = 0.5; with lambda = e^1.5 ≈ 4.5, zeros ≈ 50%.
	if res.PctZero < 40 || res.PctZero > 62 {
		t.Errorf("zero share = %v%%, expected near 50%%", res.PctZero)
	}
}

func TestZIPRejectsBadInput(t *testing.T) {
	x := NewMatrix(3, 1)
	for i := 0; i < 3; i++ {
		x.Set(i, 0, 1)
	}
	if _, err := ZIPRegression(x, []float64{0, 1, -2}, x, []string{"a"}, []string{"a"}); err == nil {
		t.Error("negative response accepted")
	}
	if _, err := ZIPRegression(x, []float64{0, 1, 2.5}, x, []string{"a"}, []string{"a"}); err == nil {
		t.Error("non-integer response accepted")
	}
	if _, err := ZIPRegression(x, []float64{0, 1, 2}, x, []string{"a", "b"}, []string{"a"}); err == nil {
		t.Error("name/column mismatch accepted")
	}
}

func TestZIPOnPurePoissonData(t *testing.T) {
	// With no zero inflation, the zero model should find a very negative
	// intercept (pi → 0) and Vuong should NOT strongly favour ZIP.
	src := rng.New(227)
	const n = 4000
	countX := NewMatrix(n, 1)
	zeroX := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		countX.Set(i, 0, 1)
		zeroX.Set(i, 0, 1)
		y[i] = float64(src.Poisson(3))
	}
	res, err := ZIPRegression(countX, y, zeroX, []string{"(Intercept)"}, []string{"(Intercept)"})
	if err != nil {
		t.Fatal(err)
	}
	pi := 1 / (1 + math.Exp(-res.Zero.Coef[0]))
	if pi > 0.06 {
		t.Errorf("estimated structural-zero share = %v on pure Poisson data", pi)
	}
	if res.Vuong > 3 {
		t.Errorf("Vuong = %v strongly favours ZIP on non-inflated data", res.Vuong)
	}
}

func TestZIPLogLikConsistency(t *testing.T) {
	src := rng.New(229)
	countX, y, zeroX := simulateZIP(src, 1500, []float64{0.8, 0.3}, []float64{-0.2})
	res, err := ZIPRegression(countX, y, zeroX,
		[]string{"(Intercept)", "x1"}, []string{"(Intercept)"})
	if err != nil {
		t.Fatal(err)
	}
	manual := zipLogLik(countX, y, zeroX, res.Count.Coef, res.Zero.Coef)
	if !almostEq(res.LogLik, manual, 1e-9) {
		t.Errorf("LogLik = %v, manual = %v", res.LogLik, manual)
	}
	k := float64(len(res.Count.Coef) + len(res.Zero.Coef))
	if !almostEq(res.AIC, -2*res.LogLik+2*k, 1e-9) {
		t.Errorf("AIC mismatch")
	}
}

func TestZIPStars(t *testing.T) {
	src := rng.New(233)
	countX, y, zeroX := simulateZIP(src, 5000, []float64{1.2, 0.7}, []float64{-0.4})
	res, err := ZIPRegression(countX, y, zeroX,
		[]string{"(Intercept)", "x1"}, []string{"(Intercept)"})
	if err != nil {
		t.Fatal(err)
	}
	// A strong true effect at n=5000 must be flagged significant.
	if res.Count.Stars(1) != "***" {
		t.Errorf("x1 stars = %q (p=%v)", res.Count.Stars(1), res.Count.PValues[1])
	}
}
