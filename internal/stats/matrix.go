package stats

import (
	"fmt"
	"math"
)

// Matrix is a small dense row-major matrix used by the regression kernels.
// It is deliberately minimal: the design matrices in this repository have at
// most a dozen columns, so numeric robustness (Cholesky with ridge fallback)
// matters far more than BLAS-grade speed.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("stats: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from a slice of equal-length rows.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("stats: ragged matrix rows (%d vs %d)", len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MulVec returns m · v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic("stats: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// XtWX computes Xᵀ·diag(w)·X, the weighted Gram matrix at the heart of
// every IRLS iteration. w may be nil for unit weights.
func XtWX(x *Matrix, w []float64) *Matrix {
	p := x.Cols
	out := NewMatrix(p, p)
	for i := 0; i < x.Rows; i++ {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		if wi == 0 {
			continue
		}
		row := x.Row(i)
		for a := 0; a < p; a++ {
			ra := wi * row[a]
			if ra == 0 {
				continue
			}
			for b := a; b < p; b++ {
				out.Data[a*p+b] += ra * row[b]
			}
		}
	}
	for a := 0; a < p; a++ {
		for b := 0; b < a; b++ {
			out.Data[a*p+b] = out.Data[b*p+a]
		}
	}
	return out
}

// XtWz computes Xᵀ·diag(w)·z. w may be nil for unit weights.
func XtWz(x *Matrix, w, z []float64) []float64 {
	p := x.Cols
	out := make([]float64, p)
	for i := 0; i < x.Rows; i++ {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		wz := wi * z[i]
		if wz == 0 {
			continue
		}
		row := x.Row(i)
		for a := 0; a < p; a++ {
			out[a] += row[a] * wz
		}
	}
	return out
}

// Cholesky factors a symmetric positive-definite matrix as L·Lᵀ, returning
// the lower-triangular factor. It returns an error when the matrix is not
// positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("stats: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("stats: matrix not positive definite (pivot %d = %g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveSPD solves A·x = b for symmetric positive-definite A via Cholesky.
// If A is singular or indefinite it retries with an escalating ridge term
// (A + εI); regression callers rely on this to survive collinear designs.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	ridge := 0.0
	// Scale the ridge to the matrix magnitude so it is meaningful for both
	// tiny and huge Gram matrices.
	maxDiag := 0.0
	for i := 0; i < a.Rows; i++ {
		if d := math.Abs(a.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		maxDiag = 1
	}
	for attempt := 0; attempt < 8; attempt++ {
		work := a
		if ridge > 0 {
			work = NewMatrix(a.Rows, a.Cols)
			copy(work.Data, a.Data)
			for i := 0; i < a.Rows; i++ {
				work.Set(i, i, work.At(i, i)+ridge)
			}
		}
		l, err := Cholesky(work)
		if err != nil {
			if ridge == 0 {
				ridge = 1e-10 * maxDiag
			} else {
				ridge *= 100
			}
			continue
		}
		return choleskySolve(l, b), nil
	}
	return nil, fmt.Errorf("stats: SolveSPD failed even with ridge %g", ridge)
}

func choleskySolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// InvertSPD inverts a symmetric positive-definite matrix, with the same
// ridge fallback as SolveSPD. Used for coefficient covariance matrices.
func InvertSPD(a *Matrix) (*Matrix, error) {
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := SolveSPD(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
