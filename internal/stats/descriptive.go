// Package stats is a from-scratch, stdlib-only statistics library providing
// the estimators the paper's analyses require: descriptive statistics,
// Poisson and logistic generalised linear models, zero-inflated Poisson
// regression with Vuong model comparison, k-means++ clustering, Poisson
// mixture (latent class) models with AIC/BIC selection, latent transition
// summaries, and discrete power-law fitting.
//
// Go has no canonical statistics ecosystem; this package is the substrate
// substitution called out in DESIGN.md. Every estimator is deterministic
// given an explicit *rng.Source and is validated in tests against
// analytically known cases and parameter-recovery simulations.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or 0 if len < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the sample median (average of middle two for even n),
// or 0 for empty input.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics (type-7, the R default).
// It returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Skewness returns the adjusted Fisher-Pearson sample skewness, or 0 when
// it is undefined (n < 3 or zero variance).
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// Standardize returns (xs - mean) / sd columnwise-for-a-vector. When the
// standard deviation is zero the centred values are returned unscaled.
func Standardize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m := Mean(xs)
	sd := StdDev(xs)
	for i, x := range xs {
		if sd > 0 {
			out[i] = (x - m) / sd
		} else {
			out[i] = x - m
		}
	}
	return out
}

// SqrtTransform returns element-wise sqrt(x); negative entries map to
// -sqrt(-x) so the transform is odd and defined everywhere. The paper
// square-root transforms its skewed regression covariates.
func SqrtTransform(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x >= 0 {
			out[i] = math.Sqrt(x)
		} else {
			out[i] = -math.Sqrt(-x)
		}
	}
	return out
}

// Summary bundles the descriptive statistics reported throughout the paper.
type Summary struct {
	N                  int
	Mean, Median       float64
	Min, Max           float64
	StdDev, Total, Q25 float64
	Q75                float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		StdDev: StdDev(xs),
		Total:  Sum(xs),
		Q25:    Quantile(xs, 0.25),
		Q75:    Quantile(xs, 0.75),
	}
}

// Lorenz computes points of the Lorenz-style concentration curve the paper
// plots in Figure 5: after sorting weights descending, share[i] is the
// fraction of the total mass held by the top (i+1)/n fraction of items.
// The returned slices are (topFraction, massShare) pairs of length n.
func Lorenz(weights []float64) (topFrac, share []float64) {
	n := len(weights)
	if n == 0 {
		return nil, nil
	}
	sorted := make([]float64, n)
	copy(sorted, weights)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	total := Sum(sorted)
	topFrac = make([]float64, n)
	share = make([]float64, n)
	acc := 0.0
	for i, w := range sorted {
		acc += w
		topFrac[i] = float64(i+1) / float64(n)
		if total > 0 {
			share[i] = acc / total
		}
	}
	return topFrac, share
}

// ShareOfTop returns the fraction of total mass held by the top q fraction
// of items (q in (0,1]), e.g. ShareOfTop(w, 0.05) for "top 5% of users".
func ShareOfTop(weights []float64, q float64) float64 {
	n := len(weights)
	if n == 0 || q <= 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, weights)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	k := int(math.Ceil(q * float64(n)))
	if k > n {
		k = n
	}
	total := Sum(sorted)
	if total == 0 {
		return 0
	}
	return Sum(sorted[:k]) / total
}

// Gini returns the Gini coefficient of the weights (0 = perfectly equal,
// →1 = fully concentrated). Negative weights are not supported.
func Gini(weights []float64) float64 {
	n := len(weights)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, weights)
	sort.Float64s(sorted)
	total := Sum(sorted)
	if total == 0 {
		return 0
	}
	cum := 0.0
	for i, w := range sorted {
		cum += float64(i+1) * w
	}
	nf := float64(n)
	return (2*cum)/(nf*total) - (nf+1)/nf
}

// PearsonCorr returns the Pearson correlation of two equal-length samples,
// or 0 when undefined.
func PearsonCorr(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
