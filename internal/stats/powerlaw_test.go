package stats

import (
	"math"
	"testing"

	"turnup/internal/rng"
)

// drawPowerLaw samples exactly from a bounded discrete power law
// P(x) ∝ x^-alpha on {xmin, ..., xmin+support-1} via the Zipf sampler.
// The truncation at a large support leaves negligible tail mass for
// alpha > 1.5.
func drawPowerLaw(src *rng.Source, n int, alpha float64, xmin int) []int {
	const support = 200000
	z := rng.NewZipf(support, alpha)
	out := make([]int, n)
	for i := range out {
		// Zipf ranks are 0-based with weight (k+1)^-alpha; shift so the
		// smallest value is exactly xmin.
		out[i] = z.Sample(src) + xmin
	}
	return out
}

func TestFitPowerLawRecovery(t *testing.T) {
	src := rng.New(501)
	for _, alpha := range []float64{1.8, 2.5, 3.2} {
		xs := drawPowerLaw(src, 20000, alpha, 1)
		fit, err := FitPowerLaw(xs, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Alpha-alpha) > 0.1 {
			t.Errorf("alpha = %v, want %v", fit.Alpha, alpha)
		}
		if fit.NTail != len(xs) {
			t.Errorf("NTail = %d", fit.NTail)
		}
		if fit.KS > 0.05 {
			t.Errorf("KS = %v on true power-law data", fit.KS)
		}
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]int{1, 2, 3}, 0); err == nil {
		t.Error("xmin=0 accepted")
	}
	if _, err := FitPowerLaw([]int{1, 1, 1}, 5); err == nil {
		t.Error("empty tail accepted")
	}
}

func TestFitPowerLawScan(t *testing.T) {
	src := rng.New(503)
	// Genuine power law with extra non-power-law mass piled onto {1, 2}:
	// the scan should discard the corrupted head and recover the exponent
	// on the tail.
	xs := drawPowerLaw(src, 8000, 2.2, 1)
	for i := 0; i < 4000; i++ {
		xs = append(xs, 1+src.Intn(2))
	}
	fit, err := FitPowerLawScan(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fit.XMin > 20 {
		t.Errorf("scanned xmin = %d, unreasonably deep into the tail", fit.XMin)
	}
	if math.Abs(fit.Alpha-2.2) > 0.35 {
		t.Errorf("scanned alpha = %v, want ~2.2", fit.Alpha)
	}
}

func TestPowerLawKSDetectsNonPowerLaw(t *testing.T) {
	src := rng.New(509)
	// Poisson data is NOT power-law; KS should be clearly worse than on
	// genuine power-law data.
	var pois []int
	for i := 0; i < 5000; i++ {
		pois = append(pois, 1+src.Poisson(10))
	}
	fitP, err := FitPowerLaw(pois, 1)
	if err != nil {
		t.Fatal(err)
	}
	genuine := drawPowerLaw(src, 5000, 2.3, 1)
	fitG, err := FitPowerLaw(genuine, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fitP.KS < fitG.KS*2 {
		t.Errorf("Poisson KS %v not clearly worse than power-law KS %v", fitP.KS, fitG.KS)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram([]int{1, 1, 2, 5, 5, 5})
	if h[1] != 2 || h[2] != 1 || h[5] != 3 {
		t.Errorf("histogram = %v", h)
	}
	if len(DegreeHistogram(nil)) != 0 {
		t.Error("empty histogram not empty")
	}
}
