package stats

import (
	"testing"

	"turnup/internal/rng"
)

// threeBlobs generates three well-separated Gaussian clusters.
func threeBlobs(src *rng.Source, perCluster int) ([][]float64, []int) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	var data [][]float64
	var labels []int
	for c, cen := range centers {
		for i := 0; i < perCluster; i++ {
			data = append(data, []float64{cen[0] + src.Norm(), cen[1] + src.Norm()})
			labels = append(labels, c)
		}
	}
	return data, labels
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	src := rng.New(301)
	data, labels := threeBlobs(src, 100)
	res, err := KMeans(data, 3, NewKMeansOptions(), src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
	// Every true cluster must map to exactly one fitted cluster.
	mapping := map[int]map[int]int{}
	for i, a := range res.Assignment {
		if mapping[labels[i]] == nil {
			mapping[labels[i]] = map[int]int{}
		}
		mapping[labels[i]][a]++
	}
	used := map[int]bool{}
	for trueC, counts := range mapping {
		best, bestN := -1, 0
		total := 0
		for a, n := range counts {
			total += n
			if n > bestN {
				best, bestN = a, n
			}
		}
		if float64(bestN)/float64(total) < 0.98 {
			t.Errorf("true cluster %d split: %v", trueC, counts)
		}
		if used[best] {
			t.Errorf("two true clusters mapped to fitted cluster %d", best)
		}
		used[best] = true
	}
}

func TestKMeansSizesSumToN(t *testing.T) {
	src := rng.New(307)
	data, _ := threeBlobs(src, 50)
	res, err := KMeans(data, 4, NewKMeansOptions(), src)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(data) {
		t.Errorf("sizes sum to %d, want %d", total, len(data))
	}
}

func TestKMeansErrors(t *testing.T) {
	src := rng.New(311)
	if _, err := KMeans(nil, 2, NewKMeansOptions(), src); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2}}, 3, NewKMeansOptions(), src); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KMeans([][]float64{{1, 2}, {3}}, 1, NewKMeansOptions(), src); err == nil {
		t.Error("ragged data accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2}}, 0, NewKMeansOptions(), src); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	data, _ := threeBlobs(rng.New(313), 40)
	a, err := KMeans(data, 3, NewKMeansOptions(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(data, 3, NewKMeansOptions(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Errorf("same seed produced different inertia: %v vs %v", a.Inertia, b.Inertia)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("assignments differ at %d", i)
		}
	}
}

func TestKMeansPlusPlusNotWorseThanRandom(t *testing.T) {
	// Property the ablation bench relies on: averaged over seeds, ++
	// seeding achieves inertia at least as good as uniform seeding.
	data, _ := threeBlobs(rng.New(317), 60)
	var sumPP, sumRand float64
	for seed := uint64(1); seed <= 10; seed++ {
		pp := NewKMeansOptions()
		pp.Restarts = 1
		rnd := pp
		rnd.PlusPlus = false
		a, err := KMeans(data, 3, pp, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := KMeans(data, 3, rnd, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		sumPP += a.Inertia
		sumRand += b.Inertia
	}
	if sumPP > sumRand*1.05 {
		t.Errorf("k-means++ mean inertia %v worse than random %v", sumPP/10, sumRand/10)
	}
}

func TestSilhouetteQuality(t *testing.T) {
	src := rng.New(331)
	data, labels := threeBlobs(src, 60)
	good := Silhouette(data, labels, 3)
	if good < 0.7 {
		t.Errorf("true-label silhouette = %v, want high", good)
	}
	// Scrambled labels should be much worse.
	bad := make([]int, len(labels))
	for i := range bad {
		bad[i] = i % 3
	}
	if s := Silhouette(data, bad, 3); s > good/2 {
		t.Errorf("scrambled silhouette %v not clearly worse than %v", s, good)
	}
}

func TestSelectKMeansKFindsThree(t *testing.T) {
	src := rng.New(337)
	data, _ := threeBlobs(src, 50)
	bestK, fits, err := SelectKMeansK(data, 2, 6, NewKMeansOptions(), src)
	if err != nil {
		t.Fatal(err)
	}
	if bestK != 3 {
		t.Errorf("selected k = %d, want 3", bestK)
	}
	if len(fits) != 5 {
		t.Errorf("fits for %d values of k, want 5", len(fits))
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	src := rng.New(341)
	data := [][]float64{{1, 1}, {1.1, 0.9}, {0.9, 1.1}}
	res, err := KMeans(data, 1, NewKMeansOptions(), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizes[0] != 3 {
		t.Errorf("k=1 sizes = %v", res.Sizes)
	}
	if !almostEq(res.Centers[0][0], 1, 0.1) {
		t.Errorf("k=1 center = %v", res.Centers[0])
	}
}
