package stats

import (
	"math"
	"testing"

	"turnup/internal/rng"
)

// buildDesign assembles a design matrix with an intercept column followed by
// the provided covariate columns.
func buildDesign(cols ...[]float64) *Matrix {
	n := len(cols[0])
	m := NewMatrix(n, len(cols)+1)
	for i := 0; i < n; i++ {
		m.Set(i, 0, 1)
		for j, c := range cols {
			m.Set(i, j+1, c[i])
		}
	}
	return m
}

func TestPoissonRegressionRecovery(t *testing.T) {
	src := rng.New(101)
	const n = 5000
	trueBeta := []float64{0.5, 0.8, -0.4}
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = src.Norm()
		x2[i] = src.Norm()
		mu := math.Exp(trueBeta[0] + trueBeta[1]*x1[i] + trueBeta[2]*x2[i])
		y[i] = float64(src.Poisson(mu))
	}
	res, err := PoissonRegression(buildDesign(x1, x2), y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("IRLS did not converge")
	}
	for j, want := range trueBeta {
		if math.Abs(res.Coef[j]-want) > 0.06 {
			t.Errorf("beta[%d] = %v, want %v", j, res.Coef[j], want)
		}
		// True value should be within ~4 standard errors.
		if math.Abs(res.Coef[j]-want) > 4*res.StdErr[j] {
			t.Errorf("beta[%d] = %v ± %v too far from %v", j, res.Coef[j], res.StdErr[j], want)
		}
	}
	if res.McFadden <= 0 || res.McFadden >= 1 {
		t.Errorf("McFadden = %v", res.McFadden)
	}
	if res.AIC <= 0 || res.BIC <= res.AIC {
		t.Errorf("AIC=%v BIC=%v (BIC should exceed AIC for n>7)", res.AIC, res.BIC)
	}
}

func TestPoissonRegressionInterceptOnly(t *testing.T) {
	// Intercept-only fit must recover log(mean).
	y := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	x := NewMatrix(len(y), 1)
	for i := range y {
		x.Set(i, 0, 1)
	}
	res, err := PoissonRegression(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Coef[0], math.Log(3.5), 1e-6) {
		t.Errorf("intercept = %v, want log(3.5)=%v", res.Coef[0], math.Log(3.5))
	}
	// Null likelihood equals model likelihood; McFadden 0.
	if !almostEq(res.McFadden, 0, 1e-9) {
		t.Errorf("intercept-only McFadden = %v", res.McFadden)
	}
}

func TestPoissonRegressionWeights(t *testing.T) {
	// Zero-weight observations must not influence the fit.
	y := []float64{1, 2, 3, 1000}
	x := NewMatrix(4, 1)
	for i := 0; i < 4; i++ {
		x.Set(i, 0, 1)
	}
	w := []float64{1, 1, 1, 0}
	res, err := PoissonRegression(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Coef[0], math.Log(2), 1e-6) {
		t.Errorf("weighted intercept = %v, want log(2)", res.Coef[0])
	}
	if res.N != 3 {
		t.Errorf("effective N = %d, want 3", res.N)
	}
}

func TestPoissonRegressionErrors(t *testing.T) {
	x := NewMatrix(2, 1)
	if _, err := PoissonRegression(x, []float64{1}, nil); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, err := PoissonRegression(NewMatrix(0, 0), nil, nil); err == nil {
		t.Error("empty design accepted")
	}
	if _, err := PoissonRegression(x, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("weight length mismatch accepted")
	}
	under := NewMatrix(1, 3)
	if _, err := PoissonRegression(under, []float64{1}, nil); err == nil {
		t.Error("under-determined design accepted")
	}
}

func TestLogisticRegressionRecovery(t *testing.T) {
	src := rng.New(103)
	const n = 8000
	trueBeta := []float64{-0.5, 1.2}
	x1 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = src.Norm()
		p := 1 / (1 + math.Exp(-(trueBeta[0] + trueBeta[1]*x1[i])))
		if src.Bool(p) {
			y[i] = 1
		}
	}
	res, err := LogisticRegression(buildDesign(x1), y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range trueBeta {
		if math.Abs(res.Coef[j]-want) > 0.1 {
			t.Errorf("beta[%d] = %v, want %v", j, res.Coef[j], want)
		}
	}
}

func TestLogisticFractionalResponse(t *testing.T) {
	// Fractional responses (the ZIP M-step case): intercept-only fit must
	// return logit of the mean.
	y := []float64{0.2, 0.4, 0.6, 0.8}
	x := NewMatrix(4, 1)
	for i := range y {
		x.Set(i, 0, 1)
	}
	res, err := LogisticRegression(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Coef[0], 0, 1e-6) { // logit(0.5) = 0
		t.Errorf("fractional intercept = %v", res.Coef[0])
	}
}

func TestLogisticRejectsOutOfRange(t *testing.T) {
	x := NewMatrix(2, 1)
	x.Set(0, 0, 1)
	x.Set(1, 0, 1)
	if _, err := LogisticRegression(x, []float64{0, 1.5}, nil); err == nil {
		t.Error("response > 1 accepted")
	}
}

func TestLogisticSeparationSurvives(t *testing.T) {
	// Perfectly separated data: coefficients diverge in theory; the clamped
	// eta and ridge fallback must keep the fit finite and errorless.
	x1 := []float64{-2, -1, 1, 2}
	y := []float64{0, 0, 1, 1}
	res, err := LogisticRegression(buildDesign(x1), y, nil)
	if err != nil {
		t.Fatalf("separation broke the fit: %v", err)
	}
	for _, c := range res.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("non-finite coefficient %v", c)
		}
	}
}

func TestGLMLogLikMatchesManual(t *testing.T) {
	y := []float64{0, 1, 2}
	x := NewMatrix(3, 1)
	for i := range y {
		x.Set(i, 0, 1)
	}
	res, err := PoissonRegression(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	mu := math.Exp(res.Coef[0])
	want := 0.0
	for _, yi := range y {
		want += PoissonLogPMF(int(yi), mu)
	}
	if !almostEq(res.LogLik, want, 1e-9) {
		t.Errorf("LogLik = %v, want %v", res.LogLik, want)
	}
}

func TestPearsonDispersion(t *testing.T) {
	src := rng.New(401)
	const n = 20000
	y := make([]float64, n)
	mu := make([]float64, n)
	// Equidispersed: Poisson data at its own mean.
	for i := range y {
		mu[i] = 4
		y[i] = float64(src.Poisson(4))
	}
	phi := PearsonDispersion(y, mu, 1)
	if phi < 0.9 || phi > 1.1 {
		t.Errorf("Poisson dispersion = %.3f, want ~1", phi)
	}
	// Overdispersed: negative-binomial-ish mixture.
	for i := range y {
		lambda := 4 * src.Exp(1)
		y[i] = float64(src.Poisson(lambda))
		mu[i] = 4
	}
	phiOver := PearsonDispersion(y, mu, 1)
	if phiOver < 2 {
		t.Errorf("mixture dispersion = %.3f, want clearly > 1", phiOver)
	}
	// Degenerate inputs.
	if got := PearsonDispersion([]float64{1}, []float64{1}, 5); got != 0 {
		t.Errorf("df<=0 dispersion = %v", got)
	}
}
