package stats

import (
	"errors"
	"fmt"
	"math"
)

// GLMResult holds a fitted generalised linear model.
type GLMResult struct {
	Coef      []float64 // estimated coefficients, intercept first if the design includes one
	StdErr    []float64 // asymptotic standard errors from the observed information
	ZValues   []float64 // Coef / StdErr
	PValues   []float64 // two-sided normal p-values
	LogLik    float64   // maximised log-likelihood
	NullLik   float64   // log-likelihood of the intercept-only model
	AIC, BIC  float64
	McFadden  float64 // 1 - LogLik/NullLik
	N         int     // observations (with positive weight)
	Iters     int     // IRLS/Newton iterations used
	Converged bool
}

const (
	glmMaxIter = 100
	glmTol     = 1e-9
	// Caps on the linear predictor keep exp() finite on wild starting
	// points without affecting converged fits on real data.
	etaCap = 30.0
)

func clampEta(eta float64) float64 {
	if eta > etaCap {
		return etaCap
	}
	if eta < -etaCap {
		return -etaCap
	}
	return eta
}

// PoissonRegression fits y ~ Poisson(exp(X·beta)) by IRLS with optional
// prior observation weights (nil for unit weights). X must include an
// intercept column if one is desired.
func PoissonRegression(x *Matrix, y, weights []float64) (*GLMResult, error) {
	if err := checkDesign(x, y, weights); err != nil {
		return nil, err
	}
	n, p := x.Rows, x.Cols
	beta := make([]float64, p)
	// Start from the log of the weighted mean for the intercept-ish scale.
	beta[0] = math.Log(weightedMean(y, weights) + 1e-9)

	w := make([]float64, n) // IRLS working weights
	z := make([]float64, n) // working response
	prevLik := math.Inf(-1)
	res := &GLMResult{N: effectiveN(weights, n)}
	for iter := 1; iter <= glmMaxIter; iter++ {
		res.Iters = iter
		lik := 0.0
		for i := 0; i < n; i++ {
			wi := priorWeight(weights, i)
			eta := clampEta(Dot(x.Row(i), beta))
			mu := math.Exp(eta)
			w[i] = wi * mu
			if mu > 0 {
				z[i] = eta + (y[i]-mu)/mu
			} else {
				z[i] = eta
			}
			if wi > 0 {
				lik += wi * PoissonLogPMF(int(math.Round(y[i])), mu)
			}
		}
		gram := XtWX(x, w)
		rhs := XtWz(x, w, z)
		next, err := SolveSPD(gram, rhs)
		if err != nil {
			return nil, fmt.Errorf("stats: Poisson IRLS step failed: %w", err)
		}
		delta := 0.0
		for j := range beta {
			delta += math.Abs(next[j] - beta[j])
		}
		beta = next
		if math.Abs(lik-prevLik) < glmTol*(math.Abs(lik)+1) && delta < 1e-7 {
			res.Converged = true
			break
		}
		prevLik = lik
	}
	res.Coef = beta
	res.LogLik = poissonLogLik(x, y, weights, beta)
	if err := finishGLM(res, x, w, weights); err != nil {
		return nil, err
	}
	res.NullLik = poissonNullLik(y, weights)
	fillFitStats(res, p)
	return res, nil
}

func poissonLogLik(x *Matrix, y, weights []float64, beta []float64) float64 {
	lik := 0.0
	for i := 0; i < x.Rows; i++ {
		wi := priorWeight(weights, i)
		if wi == 0 {
			continue
		}
		mu := math.Exp(clampEta(Dot(x.Row(i), beta)))
		lik += wi * PoissonLogPMF(int(math.Round(y[i])), mu)
	}
	return lik
}

func poissonNullLik(y, weights []float64) float64 {
	mu := weightedMean(y, weights)
	lik := 0.0
	for i, yi := range y {
		wi := priorWeight(weights, i)
		if wi == 0 {
			continue
		}
		lik += wi * PoissonLogPMF(int(math.Round(yi)), mu)
	}
	return lik
}

// LogisticRegression fits y ~ Bernoulli(logistic(X·beta)) by Newton's
// method. The response may be fractional (values in [0,1]) — the ZIP
// M-step relies on this — in which case the "likelihood" is the usual
// quasi-likelihood with fractional successes. weights may be nil.
func LogisticRegression(x *Matrix, y, weights []float64) (*GLMResult, error) {
	if err := checkDesign(x, y, weights); err != nil {
		return nil, err
	}
	for _, v := range y {
		if v < 0 || v > 1 {
			return nil, errors.New("stats: logistic response outside [0,1]")
		}
	}
	n, p := x.Rows, x.Cols
	beta := make([]float64, p)
	w := make([]float64, n)
	z := make([]float64, n)
	prevLik := math.Inf(-1)
	res := &GLMResult{N: effectiveN(weights, n)}
	for iter := 1; iter <= glmMaxIter; iter++ {
		res.Iters = iter
		lik := 0.0
		for i := 0; i < n; i++ {
			wi := priorWeight(weights, i)
			eta := clampEta(Dot(x.Row(i), beta))
			mu := 1 / (1 + math.Exp(-eta))
			v := mu * (1 - mu)
			if v < 1e-10 {
				v = 1e-10
			}
			w[i] = wi * v
			z[i] = eta + (y[i]-mu)/v
			if wi > 0 {
				lik += wi * bernoulliLogLik(y[i], mu)
			}
		}
		gram := XtWX(x, w)
		rhs := XtWz(x, w, z)
		next, err := SolveSPD(gram, rhs)
		if err != nil {
			return nil, fmt.Errorf("stats: logistic Newton step failed: %w", err)
		}
		delta := 0.0
		for j := range beta {
			delta += math.Abs(next[j] - beta[j])
		}
		beta = next
		if math.Abs(lik-prevLik) < glmTol*(math.Abs(lik)+1) && delta < 1e-7 {
			res.Converged = true
			break
		}
		prevLik = lik
	}
	res.Coef = beta
	res.LogLik = logisticLogLik(x, y, weights, beta)
	if err := finishGLM(res, x, w, weights); err != nil {
		return nil, err
	}
	// Null model: intercept only, p = weighted mean of y.
	pbar := weightedMean(y, weights)
	null := 0.0
	for i, yi := range y {
		wi := priorWeight(weights, i)
		null += wi * bernoulliLogLik(yi, pbar)
	}
	res.NullLik = null
	fillFitStats(res, p)
	return res, nil
}

func bernoulliLogLik(y, mu float64) float64 {
	const eps = 1e-12
	if mu < eps {
		mu = eps
	}
	if mu > 1-eps {
		mu = 1 - eps
	}
	return y*math.Log(mu) + (1-y)*math.Log(1-mu)
}

func logisticLogLik(x *Matrix, y, weights []float64, beta []float64) float64 {
	lik := 0.0
	for i := 0; i < x.Rows; i++ {
		wi := priorWeight(weights, i)
		if wi == 0 {
			continue
		}
		mu := 1 / (1 + math.Exp(-clampEta(Dot(x.Row(i), beta))))
		lik += wi * bernoulliLogLik(y[i], mu)
	}
	return lik
}

// finishGLM computes standard errors from the final working-weight Gram
// matrix (the observed information for canonical links).
func finishGLM(res *GLMResult, x *Matrix, w, prior []float64) error {
	info := XtWX(x, w)
	cov, err := InvertSPD(info)
	if err != nil {
		return fmt.Errorf("stats: information matrix not invertible: %w", err)
	}
	p := x.Cols
	res.StdErr = make([]float64, p)
	res.ZValues = make([]float64, p)
	res.PValues = make([]float64, p)
	for j := 0; j < p; j++ {
		res.StdErr[j] = math.Sqrt(math.Max(cov.At(j, j), 0))
		if res.StdErr[j] > 0 {
			res.ZValues[j] = res.Coef[j] / res.StdErr[j]
		}
		res.PValues[j] = PValueTwoSided(res.ZValues[j])
	}
	return nil
}

func fillFitStats(res *GLMResult, p int) {
	res.AIC = -2*res.LogLik + 2*float64(p)
	res.BIC = -2*res.LogLik + float64(p)*math.Log(float64(max(res.N, 1)))
	if res.NullLik != 0 {
		res.McFadden = 1 - res.LogLik/res.NullLik
	}
}

func checkDesign(x *Matrix, y, weights []float64) error {
	if x.Rows != len(y) {
		return fmt.Errorf("stats: design has %d rows but response has %d", x.Rows, len(y))
	}
	if weights != nil && len(weights) != len(y) {
		return fmt.Errorf("stats: %d weights for %d observations", len(weights), len(y))
	}
	if x.Rows == 0 {
		return errors.New("stats: empty design matrix")
	}
	if x.Cols == 0 {
		return errors.New("stats: design matrix has no columns")
	}
	if x.Rows < x.Cols {
		return fmt.Errorf("stats: under-determined design (%d rows, %d cols)", x.Rows, x.Cols)
	}
	return nil
}

func priorWeight(weights []float64, i int) float64 {
	if weights == nil {
		return 1
	}
	return weights[i]
}

func weightedMean(y, weights []float64) float64 {
	var sw, sy float64
	for i, v := range y {
		w := priorWeight(weights, i)
		sw += w
		sy += w * v
	}
	if sw == 0 {
		return 0
	}
	return sy / sw
}

func effectiveN(weights []float64, n int) int {
	if weights == nil {
		return n
	}
	count := 0
	for _, w := range weights {
		if w > 0 {
			count++
		}
	}
	return count
}

// PearsonDispersion computes the Pearson dispersion statistic
// φ = Σ (y_i − μ_i)² / μ_i / (n − p) for count data against fitted means.
// φ ≈ 1 indicates equidispersion (Poisson-consistent); φ ≫ 1 indicates
// overdispersion (a negative-binomial model would fit better). Entries
// with non-positive fitted means are skipped.
func PearsonDispersion(y, mu []float64, params int) float64 {
	if len(y) != len(mu) {
		panic("stats: PearsonDispersion length mismatch")
	}
	chi2 := 0.0
	n := 0
	for i := range y {
		if mu[i] <= 0 {
			continue
		}
		d := y[i] - mu[i]
		chi2 += d * d / mu[i]
		n++
	}
	df := n - params
	if df <= 0 {
		return 0
	}
	return chi2 / float64(df)
}
