package stats

import (
	"math"
	"testing"

	"turnup/internal/rng"
)

func TestZIPGradientMatchesEM(t *testing.T) {
	src := rng.New(601)
	countX, y, zeroX := simulateZIP(src, 2500, []float64{1.0, 0.5}, []float64{-0.4, 0.6})
	em, err := ZIPRegression(countX, y, zeroX,
		[]string{"(Intercept)", "x1"}, []string{"(Intercept)", "z1"})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := ZIPRegressionGradient(countX, y, zeroX)
	if err != nil {
		t.Fatal(err)
	}
	// Both optimisers must land on (essentially) the same maximum.
	if diff := math.Abs(em.LogLik - gd.LogLik); diff > 0.05*(math.Abs(em.LogLik)/1000+1) {
		t.Errorf("loglik gap: EM %.4f vs gradient %.4f", em.LogLik, gd.LogLik)
	}
	for j := range em.Count.Coef {
		if math.Abs(em.Count.Coef[j]-gd.CountCoef[j]) > 0.05 {
			t.Errorf("count beta[%d]: EM %.4f vs gradient %.4f", j, em.Count.Coef[j], gd.CountCoef[j])
		}
	}
	for j := range em.Zero.Coef {
		if math.Abs(em.Zero.Coef[j]-gd.ZeroCoef[j]) > 0.12 {
			t.Errorf("zero gamma[%d]: EM %.4f vs gradient %.4f", j, em.Zero.Coef[j], gd.ZeroCoef[j])
		}
	}
}

func TestZIPGradientRejectsBadDesign(t *testing.T) {
	x := NewMatrix(2, 1)
	if _, err := ZIPRegressionGradient(x, []float64{1}, x); err == nil {
		t.Error("row mismatch accepted")
	}
}
