package stats

import (
	"fmt"
	"math"
)

// CoefBlock is one block (count model or zero-inflation model) of a fitted
// zero-inflated regression, with named coefficients for reporting.
type CoefBlock struct {
	Names   []string
	Coef    []float64
	StdErr  []float64
	ZValues []float64
	PValues []float64
}

// Stars returns the significance stars for coefficient j.
func (b *CoefBlock) Stars(j int) string { return SignificanceStars(b.PValues[j]) }

// ZIPResult is a fitted Zero-Inflated Poisson regression, mirroring the
// quantities the paper reports in Tables 9 and 10: both coefficient blocks,
// the share of zero responses, McFadden's pseudo R², and the Vuong test
// against a plain Poisson model.
type ZIPResult struct {
	Count *CoefBlock // Poisson count model (log link)
	Zero  *CoefBlock // zero-inflation model (logit link)

	LogLik    float64
	AIC, BIC  float64
	McFadden  float64
	N         int
	PctZero   float64 // percentage of observations with zero response
	Vuong     float64 // Vuong z statistic, positive favours ZIP over Poisson
	VuongP    float64 // one-sided p-value for "ZIP is better"
	Iters     int
	Converged bool
}

const (
	zipMaxIter = 900
	zipTol     = 3e-8
)

// ZIPRegression fits a zero-inflated Poisson model where the count mean is
// exp(countX·beta) and the structural-zero probability is
// logistic(zeroX·gamma), via the standard EM algorithm (structural-zero
// membership as the latent variable). countNames and zeroNames label the
// respective design columns for reporting and must match the column counts.
//
// Standard errors come from the numerically evaluated observed information
// matrix at the EM optimum.
func ZIPRegression(countX *Matrix, y []float64, zeroX *Matrix, countNames, zeroNames []string) (*ZIPResult, error) {
	if err := checkDesign(countX, y, nil); err != nil {
		return nil, err
	}
	if err := checkDesign(zeroX, y, nil); err != nil {
		return nil, err
	}
	if len(countNames) != countX.Cols {
		return nil, fmt.Errorf("stats: %d count names for %d columns", len(countNames), countX.Cols)
	}
	if len(zeroNames) != zeroX.Cols {
		return nil, fmt.Errorf("stats: %d zero names for %d columns", len(zeroNames), zeroX.Cols)
	}
	n := len(y)
	zeros := 0
	for _, v := range y {
		if v < 0 || v != math.Trunc(v) {
			return nil, fmt.Errorf("stats: ZIP response must be a non-negative integer, got %g", v)
		}
		if v == 0 {
			zeros++
		}
	}

	beta, gamma, lik, iters, converged, err := zipEM(countX, y, zeroX)
	if err != nil {
		return nil, err
	}

	res := &ZIPResult{
		N:         n,
		PctZero:   100 * float64(zeros) / float64(n),
		LogLik:    lik,
		Iters:     iters,
		Converged: converged,
	}
	p, q := countX.Cols, zeroX.Cols
	k := p + q
	res.AIC = -2*lik + 2*float64(k)
	res.BIC = -2*lik + float64(k)*math.Log(float64(n))

	// Standard errors from the observed information (numerical Hessian).
	se, err := zipStdErrs(countX, y, zeroX, beta, gamma)
	if err != nil {
		return nil, err
	}
	res.Count = newCoefBlock(countNames, beta, se[:p])
	res.Zero = newCoefBlock(zeroNames, gamma, se[p:])

	// Null model for McFadden: intercept-only ZIP.
	ones := NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		ones.Set(i, 0, 1)
	}
	_, _, nullLik, _, _, err := zipEM(ones, y, ones)
	if err == nil && nullLik != 0 {
		res.McFadden = 1 - lik/nullLik
	}

	// Vuong test against a plain Poisson regression on the count design.
	pois, err := PoissonRegression(countX, y, nil)
	if err == nil {
		res.Vuong, res.VuongP = vuongZIPvsPoisson(countX, y, zeroX, beta, gamma, pois.Coef)
	}
	return res, nil
}

func newCoefBlock(names []string, coef, se []float64) *CoefBlock {
	b := &CoefBlock{
		Names:   append([]string(nil), names...),
		Coef:    append([]float64(nil), coef...),
		StdErr:  append([]float64(nil), se...),
		ZValues: make([]float64, len(coef)),
		PValues: make([]float64, len(coef)),
	}
	for j := range coef {
		if se[j] > 0 {
			b.ZValues[j] = coef[j] / se[j]
		}
		b.PValues[j] = PValueTwoSided(b.ZValues[j])
	}
	return b
}

// zipEM runs the EM loop and returns beta (count), gamma (zero), the final
// log-likelihood, iterations, and convergence flag.
func zipEM(countX *Matrix, y []float64, zeroX *Matrix) (beta, gamma []float64, lik float64, iters int, converged bool, err error) {
	n := len(y)

	// Initialise the count model from a plain Poisson fit and the zero
	// model from the empirical excess-zero share.
	pois, err := PoissonRegression(countX, y, nil)
	if err != nil {
		return nil, nil, 0, 0, false, fmt.Errorf("stats: ZIP init failed: %w", err)
	}
	beta = append([]float64(nil), pois.Coef...)
	gamma = make([]float64, zeroX.Cols)
	zeroShare := 0.0
	for _, v := range y {
		if v == 0 {
			zeroShare++
		}
	}
	zeroShare /= float64(n)
	gamma[0] = math.Log((zeroShare + 0.05) / (1 - zeroShare + 0.05))

	r := make([]float64, n) // E[structural zero | y]
	wCount := make([]float64, n)
	prev := math.Inf(-1)
	for iter := 1; iter <= zipMaxIter; iter++ {
		iters = iter
		// E-step.
		lik = 0
		for i := 0; i < n; i++ {
			mu := math.Exp(clampEta(Dot(countX.Row(i), beta)))
			pi := 1 / (1 + math.Exp(-clampEta(Dot(zeroX.Row(i), gamma))))
			if y[i] == 0 {
				pz := pi + (1-pi)*math.Exp(-mu)
				if pz < 1e-300 {
					pz = 1e-300
				}
				r[i] = pi / pz
				lik += math.Log(pz)
			} else {
				r[i] = 0
				lik += math.Log1p(-pi) + PoissonLogPMF(int(y[i]), mu)
			}
			wCount[i] = 1 - r[i]
		}
		if math.Abs(lik-prev) < zipTol*(math.Abs(lik)+1) {
			converged = true
			break
		}
		prev = lik

		// M-step: weighted Poisson for the count part, fractional-response
		// logistic for the zero part.
		pfit, perr := PoissonRegression(countX, y, wCount)
		if perr != nil {
			return nil, nil, 0, iters, false, fmt.Errorf("stats: ZIP count M-step: %w", perr)
		}
		beta = pfit.Coef
		lfit, lerr := LogisticRegression(zeroX, r, nil)
		if lerr != nil {
			return nil, nil, 0, iters, false, fmt.Errorf("stats: ZIP zero M-step: %w", lerr)
		}
		gamma = lfit.Coef
	}
	lik = zipLogLik(countX, y, zeroX, beta, gamma)
	return beta, gamma, lik, iters, converged, nil
}

func zipLogLik(countX *Matrix, y []float64, zeroX *Matrix, beta, gamma []float64) float64 {
	lik := 0.0
	for i := range y {
		mu := math.Exp(clampEta(Dot(countX.Row(i), beta)))
		pi := 1 / (1 + math.Exp(-clampEta(Dot(zeroX.Row(i), gamma))))
		lik += ZIPLogPMF(int(y[i]), pi, mu)
	}
	return lik
}

// zipStdErrs computes sqrt(diag(inv(-H))) where H is the numerically
// differentiated Hessian of the ZIP log-likelihood at (beta, gamma).
func zipStdErrs(countX *Matrix, y []float64, zeroX *Matrix, beta, gamma []float64) ([]float64, error) {
	p, q := len(beta), len(gamma)
	k := p + q
	theta := make([]float64, k)
	copy(theta, beta)
	copy(theta[p:], gamma)

	f := func(t []float64) float64 {
		return zipLogLik(countX, y, zeroX, t[:p], t[p:])
	}

	h := NewMatrix(k, k)
	step := make([]float64, k)
	for j := 0; j < k; j++ {
		step[j] = 1e-4 * (math.Abs(theta[j]) + 1e-2)
	}
	// Central-difference Hessian.
	for a := 0; a < k; a++ {
		for b := a; b < k; b++ {
			v := hessianElem(f, theta, a, b, step)
			h.Set(a, b, v)
			h.Set(b, a, v)
		}
	}
	// Observed information is -H; invert with ridge fallback.
	info := NewMatrix(k, k)
	for i := range info.Data {
		info.Data[i] = -h.Data[i]
	}
	cov, err := InvertSPD(info)
	if err != nil {
		return nil, fmt.Errorf("stats: ZIP information matrix: %w", err)
	}
	se := make([]float64, k)
	for j := 0; j < k; j++ {
		se[j] = math.Sqrt(math.Max(cov.At(j, j), 0))
	}
	return se, nil
}

func hessianElem(f func([]float64) float64, x []float64, a, b int, step []float64) float64 {
	t := make([]float64, len(x))
	eval := func(da, db float64) float64 {
		copy(t, x)
		t[a] += da
		t[b] += db
		return f(t)
	}
	ha, hb := step[a], step[b]
	if a == b {
		return (eval(ha, 0) - 2*f(x) + eval(-ha, 0)) / (ha * ha)
	}
	return (eval(ha, hb) - eval(ha, -hb) - eval(-ha, hb) + eval(-ha, -hb)) / (4 * ha * hb)
}

// vuongZIPvsPoisson computes the Vuong non-nested test statistic comparing
// the fitted ZIP model against a plain Poisson fit. Positive values favour
// ZIP; the returned p-value is one-sided.
func vuongZIPvsPoisson(countX *Matrix, y []float64, zeroX *Matrix, beta, gamma, poisBeta []float64) (z, p float64) {
	n := len(y)
	m := make([]float64, n)
	for i := range y {
		mu := math.Exp(clampEta(Dot(countX.Row(i), beta)))
		pi := 1 / (1 + math.Exp(-clampEta(Dot(zeroX.Row(i), gamma))))
		muP := math.Exp(clampEta(Dot(countX.Row(i), poisBeta)))
		m[i] = ZIPLogPMF(int(y[i]), pi, mu) - PoissonLogPMF(int(y[i]), muP)
	}
	mean := Mean(m)
	sd := StdDev(m)
	if sd == 0 {
		return 0, 1
	}
	z = math.Sqrt(float64(n)) * mean / sd
	p = 1 - NormalCDF(z)
	return z, p
}
