package stats

import (
	"math"
	"testing"
)

func TestNormalCDFKnown(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{3, 0.998650101968},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEq(got, c.want, 1e-8) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalPDFPeak(t *testing.T) {
	if got := NormalPDF(0); !almostEq(got, 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("NormalPDF(0) = %v", got)
	}
}

func TestPValueTwoSided(t *testing.T) {
	if p := PValueTwoSided(1.959963985); !almostEq(p, 0.05, 1e-6) {
		t.Errorf("p(1.96) = %v", p)
	}
	if p := PValueTwoSided(0); !almostEq(p, 1, 1e-12) {
		t.Errorf("p(0) = %v", p)
	}
}

func TestSignificanceStars(t *testing.T) {
	cases := []struct {
		p    float64
		want string
	}{
		{0.0001, "***"}, {0.005, "**"}, {0.03, "*"}, {0.2, ""},
	}
	for _, c := range cases {
		if got := SignificanceStars(c.p); got != c.want {
			t.Errorf("stars(%v) = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestPoissonPMF(t *testing.T) {
	// Poisson(2): P(0)=e^-2, P(2)=2e^-2.
	if got := PoissonPMF(0, 2); !almostEq(got, math.Exp(-2), 1e-12) {
		t.Errorf("P(0;2) = %v", got)
	}
	if got := PoissonPMF(2, 2); !almostEq(got, 2*math.Exp(-2), 1e-12) {
		t.Errorf("P(2;2) = %v", got)
	}
	if got := PoissonPMF(-1, 2); got != 0 {
		t.Errorf("P(-1;2) = %v", got)
	}
	// Degenerate lambda.
	if got := PoissonPMF(0, 0); got != 1 {
		t.Errorf("P(0;0) = %v", got)
	}
	if got := PoissonPMF(3, 0); got != 0 {
		t.Errorf("P(3;0) = %v", got)
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.3, 1, 5, 20} {
		s := 0.0
		for k := 0; k < 200; k++ {
			s += PoissonPMF(k, lambda)
		}
		if !almostEq(s, 1, 1e-9) {
			t.Errorf("Poisson(%v) pmf sums to %v", lambda, s)
		}
	}
}

func TestZIPLogPMF(t *testing.T) {
	// pi=0 reduces to plain Poisson.
	if got, want := ZIPLogPMF(3, 0, 2), PoissonLogPMF(3, 2); !almostEq(got, want, 1e-12) {
		t.Errorf("ZIP(pi=0) = %v, want %v", got, want)
	}
	// pi=0.5, lambda=2: P(0) = 0.5 + 0.5 e^-2.
	want := math.Log(0.5 + 0.5*math.Exp(-2))
	if got := ZIPLogPMF(0, 0.5, 2); !almostEq(got, want, 1e-12) {
		t.Errorf("ZIP P(0) = %v, want %v", got, want)
	}
}

func TestZIPPMFSumsToOne(t *testing.T) {
	for _, pi := range []float64{0.1, 0.5, 0.9} {
		s := 0.0
		for k := 0; k < 200; k++ {
			s += math.Exp(ZIPLogPMF(k, pi, 4))
		}
		if !almostEq(s, 1, 1e-9) {
			t.Errorf("ZIP(pi=%v) sums to %v", pi, s)
		}
	}
}

func TestChiSquareCDFKnown(t *testing.T) {
	// chi2(1): P(X <= 3.841) ≈ 0.95; chi2(5): P(X <= 11.07) ≈ 0.95.
	cases := []struct {
		x    float64
		df   int
		want float64
	}{
		{3.841459, 1, 0.95},
		{11.0705, 5, 0.95},
		{0, 3, 0},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.x, c.df); !almostEq(got, c.want, 1e-4) {
			t.Errorf("ChiSquareCDF(%v, %d) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
}

func TestChiSquareCDFMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x < 30; x += 0.5 {
		v := ChiSquareCDF(x, 4)
		if v < prev {
			t.Fatalf("CDF not monotone at x=%v", x)
		}
		prev = v
	}
	if !almostEq(ChiSquareCDF(1000, 4), 1, 1e-9) {
		t.Error("CDF does not reach 1")
	}
}

func TestChiSquarePValue(t *testing.T) {
	if p := ChiSquarePValue(3.841459, 1); !almostEq(p, 0.05, 1e-4) {
		t.Errorf("p = %v", p)
	}
}
