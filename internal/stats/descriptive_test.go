package stats

import (
	"math"
	"testing"
	"testing/quick"

	"turnup/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Sample variance of this classic set is 32/7.
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-input descriptive stats should be 0")
	}
	if s := Summarize(nil); s.N != 0 {
		t.Error("Summarize(nil).N != 0")
	}
}

func TestMedianEvenOdd(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); !almostEq(m, 2, 1e-12) {
		t.Errorf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); !almostEq(m, 2.5, 1e-12) {
		t.Errorf("even median = %v", m)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestMinMaxPanic(t *testing.T) {
	for name, f := range map[string]func([]float64) float64{"Min": Min, "Max": Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			f(nil)
		}()
	}
}

func TestSkewnessSymmetric(t *testing.T) {
	if s := Skewness([]float64{1, 2, 3, 4, 5}); !almostEq(s, 0, 1e-12) {
		t.Errorf("symmetric skewness = %v", s)
	}
	if s := Skewness([]float64{1, 1, 1, 1, 100}); s <= 0 {
		t.Errorf("right-skewed data gave skewness %v", s)
	}
}

func TestStandardize(t *testing.T) {
	out := Standardize([]float64{1, 2, 3, 4, 5})
	if !almostEq(Mean(out), 0, 1e-12) {
		t.Errorf("standardized mean = %v", Mean(out))
	}
	if !almostEq(StdDev(out), 1, 1e-12) {
		t.Errorf("standardized sd = %v", StdDev(out))
	}
	// Constant input: centred but not scaled, no NaNs.
	for _, v := range Standardize([]float64{7, 7, 7}) {
		if v != 0 {
			t.Errorf("constant standardize produced %v", v)
		}
	}
}

func TestSqrtTransformOdd(t *testing.T) {
	out := SqrtTransform([]float64{4, -4, 0})
	want := []float64{2, -2, 0}
	for i := range out {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Errorf("SqrtTransform[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestLorenzAndShareOfTop(t *testing.T) {
	// One user holds 70 of 100 total; top 25% (1 of 4) must hold 70%.
	w := []float64{70, 10, 10, 10}
	if s := ShareOfTop(w, 0.25); !almostEq(s, 0.7, 1e-12) {
		t.Errorf("ShareOfTop = %v, want 0.7", s)
	}
	frac, share := Lorenz(w)
	if len(frac) != 4 || !almostEq(share[0], 0.7, 1e-12) || !almostEq(share[3], 1, 1e-12) {
		t.Errorf("Lorenz = %v %v", frac, share)
	}
	// Share curve must be monotone non-decreasing.
	for i := 1; i < len(share); i++ {
		if share[i] < share[i-1]-1e-12 {
			t.Fatalf("Lorenz share not monotone at %d", i)
		}
	}
}

func TestGiniBounds(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); !almostEq(g, 0, 1e-9) {
		t.Errorf("equal Gini = %v", g)
	}
	g := Gini([]float64{0, 0, 0, 100})
	if g < 0.7 || g > 1 {
		t.Errorf("concentrated Gini = %v", g)
	}
}

func TestGiniShareProperties(t *testing.T) {
	check := func(seed uint64) bool {
		src := rng.New(seed)
		n := src.Intn(50) + 2
		w := make([]float64, n)
		for i := range w {
			w[i] = src.Float64() * 100
		}
		g := Gini(w)
		s := ShareOfTop(w, 0.5)
		return g >= -1e-9 && g <= 1 && s >= 0.5-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonCorr(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if c := PearsonCorr(xs, ys); !almostEq(c, 1, 1e-12) {
		t.Errorf("perfect corr = %v", c)
	}
	neg := []float64{8, 6, 4, 2}
	if c := PearsonCorr(xs, neg); !almostEq(c, -1, 1e-12) {
		t.Errorf("perfect anti-corr = %v", c)
	}
	if c := PearsonCorr(xs, []float64{5, 5, 5, 5}); c != 0 {
		t.Errorf("constant corr = %v", c)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || !almostEq(s.Total, 110, 1e-12) {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEq(s.Median, 3, 1e-12) {
		t.Errorf("Summary.Median = %v", s.Median)
	}
}
