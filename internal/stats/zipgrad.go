package stats

import (
	"fmt"
	"math"
)

// ZIPGradientResult is the lean output of the direct-maximisation ZIP
// solver used by the DESIGN.md §6 solver ablation: coefficients and the
// achieved log-likelihood, without the standard-error machinery.
type ZIPGradientResult struct {
	CountCoef []float64
	ZeroCoef  []float64
	LogLik    float64
	Iters     int
	Converged bool
}

// ZIPRegressionGradient fits the same zero-inflated Poisson model as
// ZIPRegression by direct gradient ascent on the joint log-likelihood with
// backtracking line search, instead of EM. It exists to validate (and
// benchmark against) the EM solver: both must reach the same optimum.
func ZIPRegressionGradient(countX *Matrix, y []float64, zeroX *Matrix) (*ZIPGradientResult, error) {
	if err := checkDesign(countX, y, nil); err != nil {
		return nil, err
	}
	if err := checkDesign(zeroX, y, nil); err != nil {
		return nil, err
	}
	p, q := countX.Cols, zeroX.Cols
	n := len(y)

	// Warm start like the EM: Poisson fit + empirical zero share.
	pois, err := PoissonRegression(countX, y, nil)
	if err != nil {
		return nil, fmt.Errorf("stats: gradient ZIP init: %w", err)
	}
	beta := append([]float64(nil), pois.Coef...)
	gamma := make([]float64, q)
	zeroShare := 0.0
	for _, v := range y {
		if v == 0 {
			zeroShare++
		}
	}
	zeroShare /= float64(n)
	gamma[0] = math.Log((zeroShare + 0.05) / (1 - zeroShare + 0.05))

	grad := func(b, g []float64) (db, dg []float64, lik float64) {
		db = make([]float64, p)
		dg = make([]float64, q)
		for i := 0; i < n; i++ {
			xi, zi := countX.Row(i), zeroX.Row(i)
			mu := math.Exp(clampEta(Dot(xi, b)))
			pi := 1 / (1 + math.Exp(-clampEta(Dot(zi, g))))
			if y[i] == 0 {
				den := pi + (1-pi)*math.Exp(-mu)
				if den < 1e-300 {
					den = 1e-300
				}
				lik += math.Log(den)
				// d/dmu log den = -(1-pi)e^{-mu}/den; chain mu' = mu·x.
				dmu := -(1 - pi) * math.Exp(-mu) / den
				for j, x := range xi {
					db[j] += dmu * mu * x
				}
				// d/dpi log den = (1 - e^{-mu})/den; chain pi' = pi(1-pi)·z.
				dpi := (1 - math.Exp(-mu)) / den
				for j, z := range zi {
					dg[j] += dpi * pi * (1 - pi) * z
				}
			} else {
				lik += math.Log1p(-pi) + PoissonLogPMF(int(y[i]), mu)
				for j, x := range xi {
					db[j] += (y[i] - mu) * x
				}
				for j, z := range zi {
					dg[j] += -pi * z
				}
			}
		}
		return db, dg, lik
	}

	res := &ZIPGradientResult{}
	step := 1e-3
	_, _, lik := grad(beta, gamma)
	for iter := 1; iter <= 3000; iter++ {
		res.Iters = iter
		db, dg, _ := grad(beta, gamma)
		// Backtracking: accept the largest step (up to the current one,
		// growing on success) that improves the likelihood.
		improved := false
		for try := 0; try < 30; try++ {
			nb := make([]float64, p)
			ng := make([]float64, q)
			for j := range nb {
				nb[j] = beta[j] + step*db[j]/float64(n)
			}
			for j := range ng {
				ng[j] = gamma[j] + step*dg[j]/float64(n)
			}
			newLik := zipLogLik(countX, y, zeroX, nb, ng)
			if newLik > lik {
				if newLik-lik < 1e-10*(math.Abs(lik)+1) {
					beta, gamma, lik = nb, ng, newLik
					res.Converged = true
				} else {
					beta, gamma, lik = nb, ng, newLik
					step *= 1.3
				}
				improved = true
				break
			}
			step /= 2
		}
		if !improved || res.Converged {
			res.Converged = true
			break
		}
	}
	res.CountCoef = beta
	res.ZeroCoef = gamma
	res.LogLik = lik
	return res, nil
}
