package stats

import (
	"fmt"
	"math"

	"turnup/internal/rng"
)

// KMeansResult is a fitted k-means clustering.
type KMeansResult struct {
	K          int
	Centers    [][]float64 // K × D cluster centroids
	Assignment []int       // cluster index per observation
	Sizes      []int       // observations per cluster
	Inertia    float64     // total within-cluster sum of squared distances
	Iters      int
	Converged  bool
}

// KMeansOptions controls the clustering run.
type KMeansOptions struct {
	MaxIter  int // Lloyd iterations per restart (default 100)
	Restarts int // independent restarts, best inertia wins (default 8)
	// PlusPlus selects k-means++ seeding (default true via NewKMeansOptions);
	// plain uniform seeding is kept for the ablation benchmark.
	PlusPlus bool
}

// NewKMeansOptions returns the default options: 100 iterations, 8 restarts,
// k-means++ seeding.
func NewKMeansOptions() KMeansOptions {
	return KMeansOptions{MaxIter: 100, Restarts: 8, PlusPlus: true}
}

// KMeans clusters the rows of data into k groups using Lloyd's algorithm.
// data must be rectangular and non-empty, with k <= len(data).
func KMeans(data [][]float64, k int, opts KMeansOptions, src *rng.Source) (*KMeansResult, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("stats: k-means on empty data")
	}
	d := len(data[0])
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("stats: ragged k-means data at row %d", i)
		}
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("stats: k-means k=%d with n=%d", k, n)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 1
	}

	var best *KMeansResult
	for r := 0; r < opts.Restarts; r++ {
		res := kmeansOnce(data, k, opts, src.Fork(uint64(r)+1))
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func kmeansOnce(data [][]float64, k int, opts KMeansOptions, src *rng.Source) *KMeansResult {
	n, d := len(data), len(data[0])
	centers := make([][]float64, k)
	if opts.PlusPlus {
		seedPlusPlus(data, centers, src)
	} else {
		for i, idx := range src.Perm(n)[:k] {
			centers[i] = append([]float64(nil), data[idx]...)
		}
	}

	assign := make([]int, n)
	sizes := make([]int, k)
	res := &KMeansResult{K: k}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		res.Iters = iter
		changed := false
		for i := range sizes {
			sizes[i] = 0
		}
		inertia := 0.0
		for i, row := range data {
			bestC, bestD := 0, math.Inf(1)
			for c, cen := range centers {
				dist := sqDist(row, cen)
				if dist < bestD {
					bestC, bestD = c, dist
				}
			}
			if assign[i] != bestC {
				changed = true
				assign[i] = bestC
			}
			sizes[bestC]++
			inertia += bestD
		}
		res.Inertia = inertia
		// Recompute centroids.
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
		}
		for i, row := range data {
			c := assign[i]
			for j, v := range row {
				centers[c][j] += v
			}
		}
		for c := range centers {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to avoid degenerate solutions.
				far, farD := 0, -1.0
				for i, row := range data {
					dist := sqDist(row, centers[assign[i]])
					if dist > farD {
						far, farD = i, dist
					}
				}
				centers[c] = append([]float64(nil), data[far]...)
				continue
			}
			for j := range centers[c] {
				centers[c][j] /= float64(sizes[c])
			}
		}
		if !changed && iter > 1 {
			res.Converged = true
			break
		}
	}
	res.Centers = centers
	res.Assignment = assign
	res.Sizes = sizes
	// Final inertia against the final centroids.
	inertia := 0.0
	for i, row := range data {
		inertia += sqDist(row, centers[assign[i]])
	}
	res.Inertia = inertia
	_ = d
	return res
}

func seedPlusPlus(data [][]float64, centers [][]float64, src *rng.Source) {
	n := len(data)
	centers[0] = append([]float64(nil), data[src.Intn(n)]...)
	dist := make([]float64, n)
	for i, row := range data {
		dist[i] = sqDist(row, centers[0])
	}
	for c := 1; c < len(centers); c++ {
		total := 0.0
		for _, d := range dist {
			total += d
		}
		var idx int
		if total == 0 {
			idx = src.Intn(n)
		} else {
			u := src.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, d := range dist {
				acc += d
				if u < acc {
					idx = i
					break
				}
			}
		}
		centers[c] = append([]float64(nil), data[idx]...)
		for i, row := range data {
			if d := sqDist(row, centers[c]); d < dist[i] {
				dist[i] = d
			}
		}
	}
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Silhouette returns the mean silhouette coefficient of a clustering, a
// standard internal quality measure in [-1, 1]. O(n²); intended for the
// modest n of the cold-start analysis.
func Silhouette(data [][]float64, assign []int, k int) float64 {
	n := len(data)
	if n == 0 || k < 2 {
		return 0
	}
	total, counted := 0.0, 0
	for i := range data {
		// Mean distance to own cluster (a) and nearest other cluster (b).
		sums := make([]float64, k)
		counts := make([]int, k)
		for j := range data {
			if i == j {
				continue
			}
			sums[assign[j]] += math.Sqrt(sqDist(data[i], data[j]))
			counts[assign[j]]++
		}
		own := assign[i]
		if counts[own] == 0 {
			continue
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// SelectKMeansK sweeps k over [kMin, kMax], fitting each and returning the
// k with the best mean silhouette, along with per-k fits. This mirrors the
// paper's data-driven choice of 2 clusters (then 8 within the outliers).
func SelectKMeansK(data [][]float64, kMin, kMax int, opts KMeansOptions, src *rng.Source) (bestK int, fits map[int]*KMeansResult, err error) {
	if kMin < 2 {
		kMin = 2
	}
	if kMax > len(data) {
		kMax = len(data)
	}
	if kMin > kMax {
		return 0, nil, fmt.Errorf("stats: invalid k range [%d, %d]", kMin, kMax)
	}
	fits = make(map[int]*KMeansResult)
	bestScore := math.Inf(-1)
	for k := kMin; k <= kMax; k++ {
		fit, ferr := KMeans(data, k, opts, src.Fork(uint64(k)))
		if ferr != nil {
			return 0, nil, ferr
		}
		fits[k] = fit
		score := Silhouette(data, fit.Assignment, k)
		if score > bestScore {
			bestScore, bestK = score, k
		}
	}
	return bestK, fits, nil
}
