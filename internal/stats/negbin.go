package stats

import (
	"fmt"
	"math"
)

// NegBinResult is a fitted negative binomial (NB2) regression:
// Var(Y) = μ + α·μ². It exists to test the Poisson modelling choice the
// paper makes ("non-overdispersed count data"): when α ≈ 0 the NB2 model
// collapses to Poisson and a likelihood-ratio test will not reject it.
type NegBinResult struct {
	Coef      []float64
	Alpha     float64 // dispersion parameter (0 = Poisson)
	LogLik    float64
	AIC, BIC  float64
	N         int
	Converged bool

	// PoissonLogLik is the plain Poisson fit on the same design, and
	// LRStatistic = 2(LogLik − PoissonLogLik) is the boundary likelihood-
	// ratio statistic for overdispersion (compare to a 0.5·χ²₁ mixture).
	PoissonLogLik float64
	LRStatistic   float64
}

// NegBinRegression fits y ~ NB2(exp(X·beta), alpha) by alternating IRLS
// for beta (given alpha) with golden-section profile likelihood for alpha.
func NegBinRegression(x *Matrix, y []float64) (*NegBinResult, error) {
	if err := checkDesign(x, y, nil); err != nil {
		return nil, err
	}
	for _, v := range y {
		if v < 0 || v != math.Trunc(v) {
			return nil, fmt.Errorf("stats: NB response must be a non-negative integer, got %g", v)
		}
	}
	pois, err := PoissonRegression(x, y, nil)
	if err != nil {
		return nil, fmt.Errorf("stats: NB init failed: %w", err)
	}
	beta := append([]float64(nil), pois.Coef...)
	alpha := 0.1

	res := &NegBinResult{N: len(y), PoissonLogLik: pois.LogLik}
	prev := math.Inf(-1)
	for outer := 0; outer < 50; outer++ {
		var ferr error
		beta, ferr = nbIRLS(x, y, beta, alpha)
		if ferr != nil {
			return nil, ferr
		}
		alpha = goldenMin(func(a float64) float64 {
			return -nbLogLik(x, y, beta, a)
		}, 1e-6, 20, 1e-7)
		lik := nbLogLik(x, y, beta, alpha)
		if math.Abs(lik-prev) < 1e-9*(math.Abs(lik)+1) {
			res.Converged = true
			break
		}
		prev = lik
	}
	res.Coef = beta
	res.Alpha = alpha
	res.LogLik = nbLogLik(x, y, beta, alpha)
	k := float64(x.Cols + 1)
	res.AIC = -2*res.LogLik + 2*k
	res.BIC = -2*res.LogLik + k*math.Log(float64(res.N))
	res.LRStatistic = 2 * (res.LogLik - res.PoissonLogLik)
	if res.LRStatistic < 0 {
		res.LRStatistic = 0 // boundary case: Poisson is the MLE
	}
	return res, nil
}

// nbIRLS runs IRLS for the NB2 mean model at fixed dispersion.
func nbIRLS(x *Matrix, y []float64, start []float64, alpha float64) ([]float64, error) {
	n := x.Rows
	beta := append([]float64(nil), start...)
	w := make([]float64, n)
	z := make([]float64, n)
	for iter := 0; iter < glmMaxIter; iter++ {
		for i := 0; i < n; i++ {
			eta := clampEta(Dot(x.Row(i), beta))
			mu := math.Exp(eta)
			// NB2 working weight: mu / (1 + alpha·mu).
			w[i] = mu / (1 + alpha*mu)
			z[i] = eta + (y[i]-mu)/mu
		}
		gram := XtWX(x, w)
		rhs := XtWz(x, w, z)
		next, err := SolveSPD(gram, rhs)
		if err != nil {
			return nil, fmt.Errorf("stats: NB IRLS step failed: %w", err)
		}
		delta := 0.0
		for j := range beta {
			delta += math.Abs(next[j] - beta[j])
		}
		beta = next
		if delta < 1e-9 {
			break
		}
	}
	return beta, nil
}

// NegBinLogPMF returns log P(Y=k) for the NB2 parameterisation with mean
// mu and dispersion alpha (alpha → 0 recovers Poisson).
func NegBinLogPMF(k int, mu, alpha float64) float64 {
	if k < 0 {
		return math.Inf(-1)
	}
	if alpha < 1e-10 {
		return PoissonLogPMF(k, mu)
	}
	r := 1 / alpha // size parameter
	kf := float64(k)
	lg1, _ := math.Lgamma(kf + r)
	lg2, _ := math.Lgamma(r)
	lg3, _ := math.Lgamma(kf + 1)
	return lg1 - lg2 - lg3 + r*math.Log(r/(r+mu)) + kf*math.Log(mu/(r+mu))
}

func nbLogLik(x *Matrix, y []float64, beta []float64, alpha float64) float64 {
	lik := 0.0
	for i := 0; i < x.Rows; i++ {
		mu := math.Exp(clampEta(Dot(x.Row(i), beta)))
		lik += NegBinLogPMF(int(y[i]), mu, alpha)
	}
	return lik
}

// OverdispersionLR reports whether the boundary likelihood-ratio test
// rejects Poisson in favour of NB2 at the 5% level. The null distribution
// is a 50:50 mixture of a point mass at 0 and χ²₁, so the critical value
// is the χ²₁ 90th percentile (2.706).
func (r *NegBinResult) OverdispersionLR() bool {
	return r.LRStatistic > 2.706
}
