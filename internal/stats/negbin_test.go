package stats

import (
	"math"
	"testing"

	"turnup/internal/rng"
)

func TestNegBinLogPMF(t *testing.T) {
	// alpha → 0 recovers Poisson.
	for k := 0; k < 10; k++ {
		nb := NegBinLogPMF(k, 3, 1e-12)
		po := PoissonLogPMF(k, 3)
		if !almostEq(nb, po, 1e-9) {
			t.Errorf("k=%d: NB %v vs Poisson %v", k, nb, po)
		}
	}
	// PMF sums to 1.
	for _, alpha := range []float64{0.2, 1.0, 3.0} {
		s := 0.0
		for k := 0; k < 600; k++ {
			s += math.Exp(NegBinLogPMF(k, 4, alpha))
		}
		if !almostEq(s, 1, 1e-6) {
			t.Errorf("NB(alpha=%v) sums to %v", alpha, s)
		}
	}
	if !math.IsInf(NegBinLogPMF(-1, 4, 1), -1) {
		t.Error("negative k not impossible")
	}
}

// drawNB2 samples NB2 via the canonical gamma-Poisson mixture.
func drawNB2(src *rng.Source, mu, alpha float64) int {
	return src.NegBinomial(mu, alpha)
}

func TestNegBinRecoversDispersion(t *testing.T) {
	src := rng.New(701)
	const n = 6000
	trueBeta := []float64{1.2, 0.4}
	const trueAlpha = 0.5 // shape 2
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
		xv := src.Norm()
		x.Set(i, 1, xv)
		mu := math.Exp(trueBeta[0] + trueBeta[1]*xv)
		y[i] = float64(drawNB2(src, mu, trueAlpha))
	}
	res, err := NegBinRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range trueBeta {
		if math.Abs(res.Coef[j]-want) > 0.08 {
			t.Errorf("beta[%d] = %v, want %v", j, res.Coef[j], want)
		}
	}
	if math.Abs(res.Alpha-trueAlpha) > 0.12 {
		t.Errorf("alpha = %v, want %v", res.Alpha, trueAlpha)
	}
	if !res.OverdispersionLR() {
		t.Errorf("LR test failed to detect overdispersion (LR=%v)", res.LRStatistic)
	}
	if res.LogLik <= res.PoissonLogLik {
		t.Errorf("NB loglik %v not above Poisson %v on overdispersed data", res.LogLik, res.PoissonLogLik)
	}
}

func TestNegBinOnPoissonData(t *testing.T) {
	src := rng.New(709)
	const n = 5000
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
		y[i] = float64(src.Poisson(5))
	}
	res, err := NegBinRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Dispersion collapses toward zero; the LR test must not reject.
	if res.Alpha > 0.05 {
		t.Errorf("alpha = %v on pure Poisson data", res.Alpha)
	}
	if res.OverdispersionLR() {
		t.Errorf("spurious overdispersion (LR=%v)", res.LRStatistic)
	}
}

func TestNegBinRejectsBadInput(t *testing.T) {
	x := NewMatrix(3, 1)
	for i := 0; i < 3; i++ {
		x.Set(i, 0, 1)
	}
	if _, err := NegBinRegression(x, []float64{1, 2, -1}); err == nil {
		t.Error("negative response accepted")
	}
	if _, err := NegBinRegression(x, []float64{1, 2, 2.5}); err == nil {
		t.Error("non-integer response accepted")
	}
}
