package stats

import (
	"fmt"
	"math"
	"sort"
)

// PowerLawFit is a fitted discrete power law P(X = x) = x^(-Alpha)/ζ(Alpha, XMin)
// for x >= XMin, with the Kolmogorov-Smirnov distance between the empirical
// and fitted CDFs on the tail.
type PowerLawFit struct {
	Alpha float64
	XMin  int
	NTail int     // observations >= XMin
	KS    float64 // KS distance on the tail
}

// hurwitzZeta computes ζ(s, a) = Σ_{k=0..∞} (a+k)^-s for s > 1, a > 0,
// by direct summation of the head plus an Euler-Maclaurin tail correction.
func hurwitzZeta(s, a float64) float64 {
	const head = 64
	sum := 0.0
	for k := 0; k < head; k++ {
		sum += math.Pow(a+float64(k), -s)
	}
	// Tail from x = a+head: ∫ x^-s dx + x^-s/2 + s·x^-(s+1)/12.
	x := a + head
	sum += math.Pow(x, 1-s)/(s-1) + math.Pow(x, -s)/2 + s*math.Pow(x, -s-1)/12
	return sum
}

// FitPowerLaw estimates the exponent of a discrete power law on the tail
// x >= xmin by exact maximum likelihood: it maximises
// -alpha·Σ ln x_i - n·ln ζ(alpha, xmin) over alpha via golden-section
// search. This avoids the well-known bias of the continuous-approximation
// estimator at small xmin.
func FitPowerLaw(xs []int, xmin int) (*PowerLawFit, error) {
	if xmin < 1 {
		return nil, fmt.Errorf("stats: power-law xmin must be >= 1, got %d", xmin)
	}
	var tail []int
	sumLog := 0.0
	for _, x := range xs {
		if x >= xmin {
			tail = append(tail, x)
			sumLog += math.Log(float64(x))
		}
	}
	n := float64(len(tail))
	if len(tail) < 2 {
		return nil, fmt.Errorf("stats: only %d observations >= xmin=%d", len(tail), xmin)
	}
	negLik := func(alpha float64) float64 {
		return alpha*sumLog + n*math.Log(hurwitzZeta(alpha, float64(xmin)))
	}
	alpha := goldenMin(negLik, 1.01, 8.0, 1e-7)
	fit := &PowerLawFit{Alpha: alpha, XMin: xmin, NTail: len(tail)}
	fit.KS = powerLawKS(tail, alpha, xmin)
	return fit, nil
}

// goldenMin minimises a unimodal function on [lo, hi] by golden-section
// search to the given x tolerance.
func goldenMin(f func(float64) float64, lo, hi, tol float64) float64 {
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// FitPowerLawScan scans xmin over the observed support (bounded above by
// xminMax when positive) and returns the fit minimising the KS distance,
// the standard Clauset, Shalizi & Newman (2009) procedure.
func FitPowerLawScan(xs []int, xminMax int) (*PowerLawFit, error) {
	uniq := map[int]bool{}
	for _, x := range xs {
		if x >= 1 && (xminMax <= 0 || x <= xminMax) {
			uniq[x] = true
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("stats: no positive observations for power-law scan")
	}
	candidates := make([]int, 0, len(uniq))
	for x := range uniq {
		candidates = append(candidates, x)
	}
	sort.Ints(candidates)
	var best *PowerLawFit
	for _, xmin := range candidates {
		fit, err := FitPowerLaw(xs, xmin)
		if err != nil {
			continue
		}
		if fit.NTail < 10 {
			continue // too little tail to be meaningful
		}
		if best == nil || fit.KS < best.KS {
			best = fit
		}
	}
	if best == nil {
		return nil, fmt.Errorf("stats: power-law scan found no viable xmin")
	}
	return best, nil
}

// powerLawKS computes the KS distance between the empirical tail CDF and
// the exact discrete power-law CDF normalised by ζ(alpha, xmin).
func powerLawKS(tail []int, alpha float64, xmin int) float64 {
	sorted := append([]int(nil), tail...)
	sort.Ints(sorted)
	maxX := sorted[len(sorted)-1]
	z := hurwitzZeta(alpha, float64(xmin))
	ks := 0.0
	cum := 0.0
	n := float64(len(sorted))
	i := 0
	for x := xmin; x <= maxX; x++ {
		cum += math.Pow(float64(x), -alpha) / z
		for i < len(sorted) && sorted[i] <= x {
			i++
		}
		emp := float64(i) / n
		if d := math.Abs(emp - cum); d > ks {
			ks = d
		}
	}
	return ks
}

// DegreeHistogram counts occurrences of each degree value, which the
// degree-distribution figures plot. Returned map: degree → count.
func DegreeHistogram(degrees []int) map[int]int {
	h := make(map[int]int, len(degrees)/4+1)
	for _, d := range degrees {
		h[d]++
	}
	return h
}
