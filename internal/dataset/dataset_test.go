package dataset

import (
	"bytes"
	"testing"
	"time"

	"turnup/internal/forum"
)

func TestMonthOf(t *testing.T) {
	cases := []struct {
		t    time.Time
		want Month
	}{
		{time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC), 0},
		{time.Date(2018, 12, 31, 23, 0, 0, 0, time.UTC), 6},
		{time.Date(2019, 3, 15, 0, 0, 0, 0, time.UTC), 9},
		{time.Date(2020, 6, 30, 0, 0, 0, 0, time.UTC), 24},
		{time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC), 0},  // clamp low
		{time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC), 24}, // clamp high
	}
	for _, c := range cases {
		if got := MonthOf(c.t); got != c.want {
			t.Errorf("MonthOf(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestMonthRoundTrip(t *testing.T) {
	for m := Month(0); m < NumMonths; m++ {
		if got := MonthOf(m.Time()); got != m {
			t.Errorf("round trip %v → %v", m, got)
		}
	}
	if Month(0).String() != "2018-06" || Month(24).String() != "2020-06" {
		t.Errorf("month strings: %v %v", Month(0), Month(24))
	}
}

func TestEraOf(t *testing.T) {
	cases := []struct {
		t    time.Time
		want Era
	}{
		{time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC), EraSetup},
		{time.Date(2019, 2, 28, 23, 59, 0, 0, time.UTC), EraSetup},
		{time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC), EraStable},
		{time.Date(2020, 3, 10, 23, 0, 0, 0, time.UTC), EraStable},
		{time.Date(2020, 3, 11, 0, 0, 0, 0, time.UTC), EraCovid},
		{time.Date(2020, 6, 30, 0, 0, 0, 0, time.UTC), EraCovid},
	}
	for _, c := range cases {
		if got := EraOf(c.t); got != c.want {
			t.Errorf("EraOf(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestEraMonthsPartitionStudy(t *testing.T) {
	seen := map[Month]Era{}
	for _, e := range Eras {
		for _, m := range e.Months() {
			if prev, dup := seen[m]; dup {
				t.Fatalf("month %v in both %v and %v", m, prev, e)
			}
			seen[m] = e
		}
	}
	if len(seen) != NumMonths {
		t.Fatalf("era months cover %d of %d months", len(seen), NumMonths)
	}
	// SET-UP is 9 months (2018-06..2019-02); COVID-19 is 4 (2020-03..06).
	if n := len(EraSetup.Months()); n != 9 {
		t.Errorf("SET-UP months = %d, want 9", n)
	}
	if n := len(EraCovid.Months()); n != 4 {
		t.Errorf("COVID months = %d, want 4", n)
	}
}

func TestEraStrings(t *testing.T) {
	if EraSetup.String() != "SET-UP" || EraStable.String() != "STABLE" || EraCovid.String() != "COVID-19" {
		t.Error("era names wrong")
	}
}

func mkContract(t *testing.T, d *Dataset, id int, typ forum.ContractType, maker, taker forum.UserID, created time.Time, public, complete bool) *forum.Contract {
	t.Helper()
	c, err := forum.NewContract(forum.ContractID(id), typ, maker, taker, created, public)
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		if err := c.Accept(created.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
		if err := c.MarkComplete(forum.MakerParty, created.Add(2*time.Hour)); err != nil {
			t.Fatal(err)
		}
		if err := c.MarkComplete(forum.TakerParty, created.Add(3*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	d.Contracts = append(d.Contracts, c)
	return c
}

func seedDataset(t *testing.T) *Dataset {
	t.Helper()
	d := New()
	for id := forum.UserID(1); id <= 4; id++ {
		d.Users[id] = &forum.User{ID: id, Joined: SetupStart}
	}
	mkContract(t, d, 1, forum.Sale, 1, 2, time.Date(2018, 7, 1, 0, 0, 0, 0, time.UTC), true, true)
	mkContract(t, d, 2, forum.Exchange, 2, 3, time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC), false, true)
	mkContract(t, d, 3, forum.Purchase, 3, 4, time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC), true, false)
	return d
}

func TestDatasetFilters(t *testing.T) {
	d := seedDataset(t)
	if n := len(d.Completed()); n != 2 {
		t.Errorf("Completed = %d", n)
	}
	if n := len(d.Public()); n != 2 {
		t.Errorf("Public = %d", n)
	}
	if n := len(d.CompletedPublic()); n != 1 {
		t.Errorf("CompletedPublic = %d", n)
	}
	if n := len(d.InEra(EraSetup)); n != 1 {
		t.Errorf("InEra(SET-UP) = %d", n)
	}
	if n := len(d.InEra(EraCovid)); n != 1 {
		t.Errorf("InEra(COVID) = %d", n)
	}
}

func TestByMonth(t *testing.T) {
	d := seedDataset(t)
	months := d.ByMonth()
	if len(months[MonthOf(time.Date(2018, 7, 1, 0, 0, 0, 0, time.UTC))]) != 1 {
		t.Error("2018-07 bucket empty")
	}
	completed := d.CompletedByMonth()
	total := 0
	for _, bucket := range completed {
		total += len(bucket)
	}
	if total != 2 {
		t.Errorf("CompletedByMonth total = %d", total)
	}
}

func TestSummary(t *testing.T) {
	d := seedDataset(t)
	s := d.Summary()
	if s.Users != 4 || s.Contracts != 3 || s.Completed != 2 || s.Public != 2 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestValidate(t *testing.T) {
	d := seedDataset(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	// Unknown maker.
	bad := seedDataset(t)
	bad.Contracts[0].Maker = 99
	if err := bad.Validate(); err == nil {
		t.Error("unknown maker accepted")
	}
	// Private contract with obligation text.
	bad2 := seedDataset(t)
	bad2.Contracts[1].MakerObligation = "leak"
	if err := bad2.Validate(); err == nil {
		t.Error("private obligation leak accepted")
	}
	// Disputed but private: build directly to bypass the state machine.
	bad3 := seedDataset(t)
	bad3.Contracts[2].Status = forum.StatusDisputed
	bad3.Contracts[2].Public = false
	if err := bad3.Validate(); err == nil {
		t.Error("private disputed contract accepted")
	}
}

func TestContractsCSVRoundTrip(t *testing.T) {
	d := seedDataset(t)
	d.Contracts[0].MakerObligation = "selling $25 amazon giftcard, btc only"
	d.Contracts[0].TakerObligation = "paying 0.004 btc"
	d.Contracts[0].BTCAddress = "1abc"
	d.Contracts[0].TxHash = "ffee"
	var buf bytes.Buffer
	if err := WriteContractsCSV(&buf, d.Contracts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadContractsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(d.Contracts) {
		t.Fatalf("round trip count %d vs %d", len(got), len(d.Contracts))
	}
	a, b := d.Contracts[0], got[0]
	if a.ID != b.ID || a.Type != b.Type || a.Maker != b.Maker || a.Taker != b.Taker ||
		!a.Created.Equal(b.Created) || !a.Completed.Equal(b.Completed) ||
		a.Status != b.Status || a.Public != b.Public ||
		a.MakerObligation != b.MakerObligation || a.BTCAddress != b.BTCAddress ||
		a.TxHash != b.TxHash {
		t.Errorf("round trip mismatch:\n%+v\n%+v", a, b)
	}
}

func TestContractsCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadContractsCSV(bytes.NewBufferString("foo,bar\n")); err == nil {
		t.Error("bad header accepted")
	}
}

func TestUsersCSVRoundTrip(t *testing.T) {
	d := seedDataset(t)
	d.Users[2].Posts = 42
	d.Users[2].MarketplacePosts = 7
	d.Users[2].Reputation = 33
	var buf bytes.Buffer
	if err := WriteUsersCSV(&buf, d.Users); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUsersCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(d.Users) {
		t.Fatalf("user count %d vs %d", len(got), len(d.Users))
	}
	if got[2].Posts != 42 || got[2].MarketplacePosts != 7 || got[2].Reputation != 33 {
		t.Errorf("user 2 = %+v", got[2])
	}
}

func TestSaveLoadDir(t *testing.T) {
	d := seedDataset(t)
	dir := t.TempDir()
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Contracts) != len(d.Contracts) || len(got.Users) != len(d.Users) {
		t.Errorf("loaded %d contracts %d users", len(got.Contracts), len(got.Users))
	}
	if err := got.Validate(); err != nil {
		t.Errorf("loaded dataset invalid: %v", err)
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir loaded without error")
	}
}

func TestReadContractsCSVBadRows(t *testing.T) {
	header := "id,type,maker,taker,thread,created,decided,completed,status,public,maker_obligation,taker_obligation,maker_rating,taker_rating,btc_address,tx_hash\n"
	cases := map[string]string{
		"bad id":     "x,SALE,1,2,0,2019-01-01T00:00:00Z,,,Pending,true,,,0,0,,\n",
		"bad type":   "1,GIFT,1,2,0,2019-01-01T00:00:00Z,,,Pending,true,,,0,0,,\n",
		"bad maker":  "1,SALE,x,2,0,2019-01-01T00:00:00Z,,,Pending,true,,,0,0,,\n",
		"bad time":   "1,SALE,1,2,0,notatime,,,Pending,true,,,0,0,,\n",
		"bad status": "1,SALE,1,2,0,2019-01-01T00:00:00Z,,,Sleeping,true,,,0,0,,\n",
		"bad public": "1,SALE,1,2,0,2019-01-01T00:00:00Z,,,Pending,maybe,,,0,0,,\n",
		"bad rating": "1,SALE,1,2,0,2019-01-01T00:00:00Z,,,Pending,true,,,x,0,,\n",
		"few fields": "1,SALE\n",
	}
	for name, row := range cases {
		if _, err := ReadContractsCSV(bytes.NewBufferString(header + row)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadUsersCSVBadRows(t *testing.T) {
	header := "id,joined,first_post,posts,marketplace_posts,reputation,kind\n"
	cases := map[string]string{
		"bad id":    "x,2019-01-01T00:00:00Z,,0,0,0,0\n",
		"bad time":  "1,nope,,0,0,0,0\n",
		"bad posts": "1,2019-01-01T00:00:00Z,,x,0,0,0\n",
		"bad rep":   "1,2019-01-01T00:00:00Z,,0,0,x,0\n",
	}
	for name, row := range cases {
		if _, err := ReadUsersCSV(bytes.NewBufferString(header + row)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
