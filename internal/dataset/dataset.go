// Package dataset defines the study-level container the analyses consume —
// users, threads, posts, contracts, and the synthetic ledger — together
// with the paper's era segmentation, monthly bucketing helpers, and CSV
// persistence so generated datasets can be shared and re-loaded exactly as
// the paper shares CrimeBB extracts under data agreements.
package dataset

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"turnup/internal/chain"
	"turnup/internal/forum"
)

// Month indexes study months: 0 = June 2018 through 24 = June 2020.
type Month int

// NumMonths is the number of months in the study window.
const NumMonths = 25

// MonthOf buckets a time into its study month (clamped to the window).
func MonthOf(t time.Time) Month {
	m := Month((t.Year()-2018)*12 + int(t.Month()) - 6)
	if m < 0 {
		return 0
	}
	if m >= NumMonths {
		return NumMonths - 1
	}
	return m
}

// Time returns the first instant of the month.
func (m Month) Time() time.Time {
	return time.Date(2018, time.Month(6+int(m)), 1, 0, 0, 0, 0, time.UTC)
}

// String renders as "2018-06".
func (m Month) String() string {
	t := m.Time()
	return fmt.Sprintf("%04d-%02d", t.Year(), int(t.Month()))
}

// Era is one of the paper's three analysis eras.
type Era int

// The three eras.
const (
	EraSetup  Era = iota // E1: forming/storming
	EraStable            // E2: norming
	EraCovid             // E3: performing
	NumEras   = 3
)

// Eras lists the eras in order.
var Eras = [NumEras]Era{EraSetup, EraStable, EraCovid}

// Era boundaries: SET-UP from contract-system adoption to the contracts-
// mandatory policy; STABLE to the WHO pandemic declaration; COVID-19 to the
// end of collection.
var (
	SetupStart  = time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	StableStart = time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	CovidStart  = time.Date(2020, 3, 11, 0, 0, 0, 0, time.UTC)
	StudyEnd    = time.Date(2020, 7, 1, 0, 0, 0, 0, time.UTC)
)

// EraOf returns the era containing t (times outside the window clamp to
// the nearest era).
func EraOf(t time.Time) Era {
	switch {
	case t.Before(StableStart):
		return EraSetup
	case t.Before(CovidStart):
		return EraStable
	default:
		return EraCovid
	}
}

// String renders the era as the paper names it.
func (e Era) String() string {
	switch e {
	case EraSetup:
		return "SET-UP"
	case EraStable:
		return "STABLE"
	case EraCovid:
		return "COVID-19"
	default:
		return fmt.Sprintf("Era(%d)", int(e))
	}
}

// Span returns the era's [start, end) bounds.
func (e Era) Span() (start, end time.Time) {
	switch e {
	case EraSetup:
		return SetupStart, StableStart
	case EraStable:
		return StableStart, CovidStart
	default:
		return CovidStart, StudyEnd
	}
}

// Months returns the study months whose first day falls inside the era.
// The COVID-19 era begins mid-March 2020; March is assigned to COVID-19
// for monthly analyses, matching the paper's figures.
func (e Era) Months() []Month {
	var out []Month
	for m := Month(0); m < NumMonths; m++ {
		mid := m.Time().AddDate(0, 0, 14) // mid-month representative
		if EraOf(mid) == e {
			out = append(out, m)
		}
	}
	return out
}

// Dataset is the full study corpus.
type Dataset struct {
	Users     map[forum.UserID]*forum.User
	Threads   map[forum.ThreadID]*forum.Thread
	Posts     []*forum.Post
	Contracts []*forum.Contract
	Ledger    *chain.Ledger

	// derived caches the columnar projection of Contracts and an opaque
	// analysis-owned derived-groups value, both keyed to the current
	// contract count. The zero value is ready to use, so field-literal
	// construction (ingest.Apply) starts with an empty cache.
	derived derivedCache
}

// derivedCache holds lazily built per-corpus derivations. Two separate
// mutexes because building the analysis groups reads Columns(): the
// groups lock may be held across a Columns() call, never vice versa.
type derivedCache struct {
	colsMu sync.Mutex
	cols   *Columns

	groupsMu sync.Mutex
	groups   any
}

// CachedDerived returns the dataset's cached derived value when fresh
// still accepts it, otherwise builds, stores, and returns a new one. The
// analysis layer uses it to share one set of derived groupings (month
// buckets, obligation classifications) across every Index over the same
// corpus. build runs under the cache lock, so concurrent callers observe
// exactly one construction.
func (d *Dataset) CachedDerived(fresh func(any) bool, build func() any) any {
	d.derived.groupsMu.Lock()
	defer d.derived.groupsMu.Unlock()
	if d.derived.groups != nil && fresh(d.derived.groups) {
		return d.derived.groups
	}
	g := build()
	d.derived.groups = g
	return g
}

// StoreDerived installs a derived value built elsewhere — the incremental
// append path extends the parent's groups and plants the result here so
// later Index constructions over this dataset share it.
func (d *Dataset) StoreDerived(g any) {
	d.derived.groupsMu.Lock()
	d.derived.groups = g
	d.derived.groupsMu.Unlock()
}

// ErrOutOfWindow marks a loaded contract created outside the study window
// [SetupStart, StudyEnd). MonthOf deliberately clamps out-of-window times
// (monthly arrays are always fully indexable), which means loader paths
// that skip Validate would silently mis-bucket such rows into the first or
// last study month — so the load/ingest boundaries check explicitly.
var ErrOutOfWindow = errors.New("contract created outside the study window")

// InWindow reports whether t falls inside the study window
// [SetupStart, StudyEnd) — the invariant Validate, the loaders, and the
// ingest boundary all share.
func InWindow(t time.Time) bool {
	return !t.Before(SetupStart) && t.Before(StudyEnd)
}

// CheckWindow verifies every contract was created inside the study
// window, wrapping ErrOutOfWindow with the offending contract. Read,
// LoadDir, and DecodeBinary run it so no out-of-window row survives a
// load only to be clamp-bucketed by MonthOf.
func CheckWindow(contracts []*forum.Contract) error {
	for _, c := range contracts {
		if !InWindow(c.Created) {
			return fmt.Errorf("dataset: %w: contract %d created %v", ErrOutOfWindow, c.ID, c.Created)
		}
	}
	return nil
}

// New returns an empty dataset with initialised maps and ledger.
func New() *Dataset {
	return &Dataset{
		Users:   make(map[forum.UserID]*forum.User),
		Threads: make(map[forum.ThreadID]*forum.Thread),
		Ledger:  chain.NewLedger(),
	}
}

// Completed returns all fully completed contracts.
func (d *Dataset) Completed() []*forum.Contract {
	return d.Filter(func(c *forum.Contract) bool { return c.IsComplete() })
}

// Public returns all public contracts.
func (d *Dataset) Public() []*forum.Contract {
	return d.Filter(func(c *forum.Contract) bool { return c.Public })
}

// CompletedPublic returns completed public contracts — the subset every
// obligation-text analysis runs on.
func (d *Dataset) CompletedPublic() []*forum.Contract {
	return d.Filter(func(c *forum.Contract) bool { return c.Public && c.IsComplete() })
}

// InEra returns contracts created within era e.
func (d *Dataset) InEra(e Era) []*forum.Contract {
	return d.Filter(func(c *forum.Contract) bool { return EraOf(c.Created) == e })
}

// Filter returns contracts satisfying keep.
func (d *Dataset) Filter(keep func(*forum.Contract) bool) []*forum.Contract {
	var out []*forum.Contract
	for _, c := range d.Contracts {
		if keep(c) {
			out = append(out, c)
		}
	}
	return out
}

// ByMonth buckets contracts by creation month.
func (d *Dataset) ByMonth() [NumMonths][]*forum.Contract {
	var out [NumMonths][]*forum.Contract
	for _, c := range d.Contracts {
		m := MonthOf(c.Created)
		out[m] = append(out[m], c)
	}
	return out
}

// CompletedByMonth buckets completed contracts by completion month (falling
// back to creation month when the completion date is missing).
func (d *Dataset) CompletedByMonth() [NumMonths][]*forum.Contract {
	var out [NumMonths][]*forum.Contract
	for _, c := range d.Contracts {
		if !c.IsComplete() {
			continue
		}
		at := c.Completed
		if at.IsZero() {
			at = c.Created
		}
		out[MonthOf(at)] = append(out[MonthOf(at)], c)
	}
	return out
}

// Stats summarises the corpus for logging.
type Stats struct {
	Users, Threads, Posts, Contracts int
	Completed, Public, Disputed      int
	LedgerTxs                        int
}

// Summary computes corpus-level counts.
func (d *Dataset) Summary() Stats {
	s := Stats{
		Users:     len(d.Users),
		Threads:   len(d.Threads),
		Posts:     len(d.Posts),
		Contracts: len(d.Contracts),
	}
	for _, c := range d.Contracts {
		if c.IsComplete() {
			s.Completed++
		}
		if c.Public {
			s.Public++
		}
		if c.Status == forum.StatusDisputed {
			s.Disputed++
		}
	}
	if d.Ledger != nil {
		s.LedgerTxs = d.Ledger.Len()
	}
	return s
}

// Validate checks dataset invariants: every contract references known
// users, times are ordered and inside the study window, private contracts
// carry no obligation text, and disputed contracts are public. Thread
// references are only checkable when the thread table is populated —
// datasets loaded from the CSV pair (Load, Read) legitimately carry
// contract thread IDs without threads.csv.
func (d *Dataset) Validate() error {
	for _, c := range d.Contracts {
		if _, ok := d.Users[c.Maker]; !ok {
			return fmt.Errorf("dataset: contract %d references unknown maker %d", c.ID, c.Maker)
		}
		if _, ok := d.Users[c.Taker]; !ok {
			return fmt.Errorf("dataset: contract %d references unknown taker %d", c.ID, c.Taker)
		}
		if c.Thread != 0 && len(d.Threads) > 0 {
			if _, ok := d.Threads[c.Thread]; !ok {
				return fmt.Errorf("dataset: contract %d references unknown thread %d", c.ID, c.Thread)
			}
		}
		if !InWindow(c.Created) {
			return fmt.Errorf("dataset: contract %d created outside the study window: %v", c.ID, c.Created)
		}
		if !c.Completed.IsZero() && c.Completed.Before(c.Created) {
			return fmt.Errorf("dataset: contract %d completed before creation", c.ID)
		}
		if !c.Public && (c.MakerObligation != "" || c.TakerObligation != "") {
			return fmt.Errorf("dataset: private contract %d leaks obligation text", c.ID)
		}
		if c.Status == forum.StatusDisputed && !c.Public {
			return fmt.Errorf("dataset: disputed contract %d is not public", c.ID)
		}
	}
	return nil
}
