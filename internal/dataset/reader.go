package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
)

// Read parses a dataset from its CSV pair — the format hfgen writes and
// LoadDir reads from disk — so callers holding in-memory bytes (an HTTP
// upload, a zip member) can build a Dataset without touching the
// filesystem. Like LoadDir, the result carries an empty ledger: chain
// evidence is not part of the CSV schema, so the §4.5 audit reports
// high-value contracts as unverifiable (see Dataset.HasLedger).
func Read(contracts, users io.Reader) (*Dataset, error) {
	d := New()
	var err error
	if d.Contracts, err = ReadContractsCSV(contracts); err != nil {
		return nil, err
	}
	if d.Users, err = ReadUsersCSV(users); err != nil {
		return nil, err
	}
	// Reject out-of-window contracts at the boundary: MonthOf clamps, so a
	// row that slipped past here would silently land in the first or last
	// study month instead of failing loudly.
	if err := CheckWindow(d.Contracts); err != nil {
		return nil, err
	}
	return d, nil
}

// HasLedger reports whether the dataset carries chain evidence the §4.5
// audit can verify against. Generated datasets do; datasets round-tripped
// through CSV (Load, Read) do not.
func (d *Dataset) HasLedger() bool {
	return d.Ledger != nil && d.Ledger.Len() > 0
}

// Digest returns the SHA-256 (hex) over the dataset's canonical CSV
// serialisation — contracts.csv bytes then users.csv bytes, exactly as
// SaveDir writes them — plus the canonical byte count. Because the
// writers emit deterministic output (users ordered by ID, contracts in
// slice order), equal corpora digest equally regardless of how they were
// obtained, and the digest is stable across upload/save/load round-trips.
func (d *Dataset) Digest() (string, int64) {
	h := sha256.New()
	cw := &countingWriter{w: h}
	// The CSV writers only fail on underlying writer errors; hashes and
	// counters cannot fail.
	_ = WriteContractsCSV(cw, d.Contracts)
	_ = WriteUsersCSV(cw, d.Users)
	return hex.EncodeToString(h.Sum(nil)), cw.n
}

// countingWriter counts bytes on their way into the digest.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
