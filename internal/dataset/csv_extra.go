package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"turnup/internal/forum"
)

var threadHeader = []string{"id", "author", "created", "title"}

// WriteThreadsCSV streams threads in CSV form, ordered by ID.
func WriteThreadsCSV(w io.Writer, threads map[forum.ThreadID]*forum.Thread) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(threadHeader); err != nil {
		return err
	}
	ids := make([]int, 0, len(threads))
	for id := range threads {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		th := threads[forum.ThreadID(id)]
		rec := []string{
			strconv.Itoa(int(th.ID)),
			strconv.Itoa(int(th.Author)),
			formatTime(th.Created),
			th.Title,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadThreadsCSV parses threads written by WriteThreadsCSV.
func ReadThreadsCSV(r io.Reader) (map[forum.ThreadID]*forum.Thread, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(threadHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading thread header: %w", err)
	}
	if err := checkHeader(header, threadHeader, "thread"); err != nil {
		return nil, err
	}
	out := make(map[forum.ThreadID]*forum.Thread)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: thread line %d: %w", line, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: thread line %d id: %w", line, err)
		}
		author, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: thread line %d author: %w", line, err)
		}
		created, err := parseTime(rec[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: thread line %d created: %w", line, err)
		}
		out[forum.ThreadID(id)] = &forum.Thread{
			ID: forum.ThreadID(id), Author: forum.UserID(author),
			Created: created, Title: rec[3],
		}
	}
	return out, nil
}

var postHeader = []string{"id", "thread", "author", "created", "marketplace"}

// WritePostsCSV streams posts in CSV form.
func WritePostsCSV(w io.Writer, posts []*forum.Post) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(postHeader); err != nil {
		return err
	}
	for _, p := range posts {
		rec := []string{
			strconv.Itoa(p.ID),
			strconv.Itoa(int(p.Thread)),
			strconv.Itoa(int(p.Author)),
			formatTime(p.Created),
			strconv.FormatBool(p.Marketplace),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPostsCSV parses posts written by WritePostsCSV.
func ReadPostsCSV(r io.Reader) ([]*forum.Post, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(postHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading post header: %w", err)
	}
	if err := checkHeader(header, postHeader, "post"); err != nil {
		return nil, err
	}
	var out []*forum.Post
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: post line %d: %w", line, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: post line %d id: %w", line, err)
		}
		thread, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: post line %d thread: %w", line, err)
		}
		author, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: post line %d author: %w", line, err)
		}
		created, err := parseTime(rec[3])
		if err != nil {
			return nil, fmt.Errorf("dataset: post line %d created: %w", line, err)
		}
		mp, err := strconv.ParseBool(rec[4])
		if err != nil {
			return nil, fmt.Errorf("dataset: post line %d marketplace: %w", line, err)
		}
		out = append(out, &forum.Post{
			ID: id, Thread: forum.ThreadID(thread), Author: forum.UserID(author),
			Created: created, Marketplace: mp,
		})
	}
	return out, nil
}

// SaveDirFull writes the complete corpus (contracts, users, threads,
// posts) into dir. The ledger remains regenerable-only.
func (d *Dataset) SaveDirFull(dir string) error {
	if err := d.SaveDir(dir); err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(dir, "threads.csv"))
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := WriteThreadsCSV(tf, d.Threads); err != nil {
		return err
	}
	pf, err := os.Create(filepath.Join(dir, "posts.csv"))
	if err != nil {
		return err
	}
	defer pf.Close()
	return WritePostsCSV(pf, d.Posts)
}

// LoadDirFull reads a corpus saved with SaveDirFull; threads.csv and
// posts.csv are optional for compatibility with SaveDir output.
func LoadDirFull(dir string) (*Dataset, error) {
	d, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	if tf, err := os.Open(filepath.Join(dir, "threads.csv")); err == nil {
		defer tf.Close()
		if d.Threads, err = ReadThreadsCSV(tf); err != nil {
			return nil, err
		}
	}
	if pf, err := os.Open(filepath.Join(dir, "posts.csv")); err == nil {
		defer pf.Close()
		if d.Posts, err = ReadPostsCSV(pf); err != nil {
			return nil, err
		}
	}
	return d, nil
}
