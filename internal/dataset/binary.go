package dataset

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"turnup/internal/forum"
)

// The versioned binary dataset format ("TUDS"). Layout, all little-endian:
//
//	header:   magic "TUDS" | version uint32 | nsections uint32
//	          then nsections × { id uint32, off uint64, len uint64 }
//	CONTRACTS (id 1): n uint32, then n × 107-byte rows —
//	          id int64, type uint8, status uint8, public uint8,
//	          maker int64, taker int64, thread int64,
//	          created/decided/completed int64 epoch seconds
//	          (math.MinInt64 = unset),
//	          maker_rating int64, taker_rating int64,
//	          4 × span { off uint32, len uint32 } for maker_obligation,
//	          taker_obligation, btc_address, tx_hash
//	USERS     (id 2): n uint32, then n × 56-byte rows (seven int64s:
//	          id, joined, first_post, posts, marketplace_posts,
//	          reputation, kind), sorted by id
//	ARENA     (id 3): the concatenated string arena the contract spans
//	          index into
//
// Party IDs travel raw (interning is an in-memory Block concern): a
// multi-block projection can then stream straight to the wire without
// merging per-block dictionaries. Ratings travel as int64 because the
// CSV schema accepts any integer rating and the digest round-trip
// property must hold for every corpus the CSV reader accepts.
//
// Content identity stays defined by the canonical CSV digest
// (Dataset.Digest): a binary round-trip preserves it exactly, since
// every field survives at the CSV's own (whole-second, UTC) precision.
// The encoded bytes themselves are deterministic for a given columnar
// projection, but a multi-block projection (after appends) may encode
// strings twice that a fresh single-block build would intern once — so
// compare corpora by digest, never by dataset.bin bytes.
const (
	// BinaryName is the file SaveDir writes and LoadDir prefers.
	BinaryName = "dataset.bin"
	// BinaryVersion is the current wire version; DecodeBinary rejects
	// any other.
	BinaryVersion = 1
	// ContentTypeBinary is the Content-Type under which a dataset.bin
	// body may be POSTed to /v1/datasets (the router's replication
	// payload).
	ContentTypeBinary = "application/x-turnup-dataset"
)

var binaryMagic = [4]byte{'T', 'U', 'D', 'S'}

const (
	secContracts = 1
	secUsers     = 2
	secArena     = 3

	numSections    = 3
	sectionDirLen  = 20
	headerLen      = 4 + 4 + 4 + numSections*sectionDirLen
	contractRowLen = 107
	userRowLen     = 56
)

// BinarySize returns the exact encoded size of the dataset in bytes —
// the store's byte-accounting unit — without encoding anything. The
// formula mirrors EncodeBinary field-for-field.
func (d *Dataset) BinarySize() int64 {
	cols := d.Columns()
	var arenaLen int64
	for _, b := range cols.Blocks {
		arenaLen += int64(len(b.Arena))
	}
	return headerLen +
		4 + int64(cols.NumRows())*contractRowLen +
		4 + int64(len(d.Users))*userRowLen +
		arenaLen
}

// EncodeBinary writes the dataset in the TUDS binary format. Encoding
// streams the columnar projection directly — blocks in order, spans
// rebased onto the concatenated arena — so an append generation encodes
// without rebuilding the parent's columns.
func (d *Dataset) EncodeBinary(w io.Writer) error {
	cols := d.Columns()
	var arenaLen int
	for _, b := range cols.Blocks {
		arenaLen += len(b.Arena)
	}
	nRows := cols.NumRows()
	contractsLen := 4 + nRows*contractRowLen
	usersLen := 4 + len(d.Users)*userRowLen

	buf := make([]byte, headerLen+contractsLen+usersLen+arenaLen)
	le := binary.LittleEndian
	copy(buf[0:4], binaryMagic[:])
	le.PutUint32(buf[4:], BinaryVersion)
	le.PutUint32(buf[8:], numSections)
	dir := [numSections][3]uint64{
		{secContracts, headerLen, uint64(contractsLen)},
		{secUsers, headerLen + uint64(contractsLen), uint64(usersLen)},
		{secArena, headerLen + uint64(contractsLen) + uint64(usersLen), uint64(arenaLen)},
	}
	p := 12
	for _, s := range dir {
		le.PutUint32(buf[p:], uint32(s[0]))
		le.PutUint64(buf[p+4:], s[1])
		le.PutUint64(buf[p+12:], s[2])
		p += sectionDirLen
	}

	p = headerLen
	le.PutUint32(buf[p:], uint32(nRows))
	p += 4
	base := uint32(0)
	for _, b := range cols.Blocks {
		for i := 0; i < b.N; i++ {
			le.PutUint64(buf[p:], uint64(b.ID[i]))
			buf[p+8] = b.Type[i]
			buf[p+9] = b.Status[i]
			if b.Public[i] {
				buf[p+10] = 1
			}
			le.PutUint64(buf[p+11:], uint64(b.PartyIDs[b.Maker[i]]))
			le.PutUint64(buf[p+19:], uint64(b.PartyIDs[b.Taker[i]]))
			le.PutUint64(buf[p+27:], uint64(b.Thread[i]))
			le.PutUint64(buf[p+35:], uint64(b.Created[i]))
			le.PutUint64(buf[p+43:], uint64(b.Decided[i]))
			le.PutUint64(buf[p+51:], uint64(b.Completed[i]))
			le.PutUint64(buf[p+59:], uint64(b.MakerRating[i]))
			le.PutUint64(buf[p+67:], uint64(b.TakerRating[i]))
			putSpan(buf[p+75:], b.MakerOb[i], base)
			putSpan(buf[p+83:], b.TakerOb[i], base)
			putSpan(buf[p+91:], b.BTC[i], base)
			putSpan(buf[p+99:], b.Tx[i], base)
			p += contractRowLen
		}
		base += uint32(len(b.Arena))
	}

	le.PutUint32(buf[p:], uint32(len(d.Users)))
	p += 4
	ids := make([]int, 0, len(d.Users))
	for id := range d.Users {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		u := d.Users[forum.UserID(id)]
		le.PutUint64(buf[p:], uint64(int64(u.ID)))
		le.PutUint64(buf[p+8:], uint64(epochSec(u.Joined)))
		le.PutUint64(buf[p+16:], uint64(epochSec(u.FirstPost)))
		le.PutUint64(buf[p+24:], uint64(int64(u.Posts)))
		le.PutUint64(buf[p+32:], uint64(int64(u.MarketplacePosts)))
		le.PutUint64(buf[p+40:], uint64(int64(u.Reputation)))
		le.PutUint64(buf[p+48:], uint64(int64(u.MarketKind)))
		p += userRowLen
	}

	for _, b := range cols.Blocks {
		copy(buf[p:], b.Arena)
		p += len(b.Arena)
	}

	_, err := w.Write(buf)
	return err
}

// putSpan writes one span rebased onto the concatenated arena. Empty
// spans stay {0,0} so the encoding of "no string" is canonical.
func putSpan(b []byte, sp Span, base uint32) {
	off := uint32(0)
	if sp.Len > 0 {
		off = sp.Off + base
	}
	binary.LittleEndian.PutUint32(b, off)
	binary.LittleEndian.PutUint32(b[4:], sp.Len)
}

// DecodeBinary reads a TUDS binary dataset, validating the magic,
// version, section bounds, enum ranges, span bounds, and the study
// window. The decoded dataset carries its columnar projection pre-built
// (one block over the wire arena), so analyses start scanning without a
// rebuild; like the CSV pair, it has no threads, posts, or ledger.
func DecodeBinary(r io.Reader) (*Dataset, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(buf) < headerLen {
		return nil, fmt.Errorf("dataset: binary truncated at %d bytes (header is %d)", len(buf), headerLen)
	}
	if [4]byte(buf[0:4]) != binaryMagic {
		return nil, fmt.Errorf("dataset: bad magic %q, want %q", buf[0:4], binaryMagic[:])
	}
	le := binary.LittleEndian
	if v := le.Uint32(buf[4:]); v != BinaryVersion {
		return nil, fmt.Errorf("dataset: unsupported binary version %d (this build reads %d)", v, BinaryVersion)
	}
	if n := le.Uint32(buf[8:]); n != numSections {
		return nil, fmt.Errorf("dataset: %d sections, want %d", n, numSections)
	}
	var contracts, users, arena []byte
	var haveC, haveU, haveA bool
	p := 12
	for i := 0; i < numSections; i++ {
		id := le.Uint32(buf[p:])
		off := le.Uint64(buf[p+4:])
		ln := le.Uint64(buf[p+12:])
		if off > uint64(len(buf)) || ln > uint64(len(buf))-off {
			return nil, fmt.Errorf("dataset: section %d spans [%d,+%d) outside the %d-byte file", id, off, ln, len(buf))
		}
		sec := buf[off : off+ln]
		switch id {
		case secContracts:
			contracts, haveC = sec, true
		case secUsers:
			users, haveU = sec, true
		case secArena:
			arena, haveA = sec, true
		default:
			return nil, fmt.Errorf("dataset: unknown section id %d", id)
		}
		p += sectionDirLen
	}
	if !haveC || !haveU || !haveA {
		return nil, fmt.Errorf("dataset: binary is missing a required section")
	}

	if len(contracts) < 4 {
		return nil, fmt.Errorf("dataset: contract section truncated")
	}
	n := int(le.Uint32(contracts))
	if len(contracts)-4 != n*contractRowLen {
		return nil, fmt.Errorf("dataset: contract section holds %d bytes for %d rows", len(contracts)-4, n)
	}
	b := &Block{
		N:           n,
		ID:          make([]int64, n),
		Type:        make([]uint8, n),
		Status:      make([]uint8, n),
		Public:      make([]bool, n),
		Maker:       make([]int32, n),
		Taker:       make([]int32, n),
		Thread:      make([]int64, n),
		Created:     make([]int64, n),
		Decided:     make([]int64, n),
		Completed:   make([]int64, n),
		MakerRating: make([]int64, n),
		TakerRating: make([]int64, n),
		MakerOb:     make([]Span, n),
		TakerOb:     make([]Span, n),
		BTC:         make([]Span, n),
		Tx:          make([]Span, n),
		Arena:       arena,
	}
	parties := make(map[int64]int32)
	party := func(id int64) int32 {
		if ix, ok := parties[id]; ok {
			return ix
		}
		ix := int32(len(b.PartyIDs))
		b.PartyIDs = append(b.PartyIDs, id)
		parties[id] = ix
		return ix
	}
	rows := contracts[4:]
	for i := 0; i < n; i++ {
		row := rows[i*contractRowLen : (i+1)*contractRowLen]
		b.ID[i] = int64(le.Uint64(row))
		b.Type[i] = row[8]
		b.Status[i] = row[9]
		b.Public[i] = row[10] != 0
		b.Maker[i] = party(int64(le.Uint64(row[11:])))
		b.Taker[i] = party(int64(le.Uint64(row[19:])))
		b.Thread[i] = int64(le.Uint64(row[27:]))
		b.Created[i] = int64(le.Uint64(row[35:]))
		b.Decided[i] = int64(le.Uint64(row[43:]))
		b.Completed[i] = int64(le.Uint64(row[51:]))
		b.MakerRating[i] = int64(le.Uint64(row[59:]))
		b.TakerRating[i] = int64(le.Uint64(row[67:]))
		b.MakerOb[i] = getSpan(row[75:])
		b.TakerOb[i] = getSpan(row[83:])
		b.BTC[i] = getSpan(row[91:])
		b.Tx[i] = getSpan(row[99:])
	}
	cs, err := b.materialize()
	if err != nil {
		return nil, err
	}
	b.deriveScanColumns(cs)

	if len(users) < 4 {
		return nil, fmt.Errorf("dataset: user section truncated")
	}
	un := int(le.Uint32(users))
	if len(users)-4 != un*userRowLen {
		return nil, fmt.Errorf("dataset: user section holds %d bytes for %d rows", len(users)-4, un)
	}
	um := make(map[forum.UserID]*forum.User, un)
	for i := 0; i < un; i++ {
		row := users[4+i*userRowLen:]
		id := forum.UserID(int64(le.Uint64(row)))
		um[id] = &forum.User{
			ID:               id,
			Joined:           secTime(int64(le.Uint64(row[8:]))),
			FirstPost:        secTime(int64(le.Uint64(row[16:]))),
			Posts:            int(int64(le.Uint64(row[24:]))),
			MarketplacePosts: int(int64(le.Uint64(row[32:]))),
			Reputation:       int(int64(le.Uint64(row[40:]))),
			MarketKind:       int(int64(le.Uint64(row[48:]))),
		}
	}

	d := New()
	d.Users = um
	d.Contracts = cs
	if err := CheckWindow(d.Contracts); err != nil {
		return nil, err
	}
	d.setColumns(&Columns{Blocks: []*Block{b}})
	return d, nil
}

func getSpan(b []byte) Span {
	return Span{
		Off: binary.LittleEndian.Uint32(b),
		Len: binary.LittleEndian.Uint32(b[4:]),
	}
}
