package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"turnup/internal/forum"
)

// The CSV schema version written into file headers.
const timeLayout = time.RFC3339

// checkHeader validates a parsed header row against the canonical column
// names for one table. Every reader goes through it: a reordered or renamed
// column is a schema mismatch, not data to be silently mis-assigned. The
// csv.Reader's FieldsPerRecord bound guarantees got and want are the same
// length by the time this runs.
func checkHeader(got, want []string, table string) error {
	for i, h := range want {
		if got[i] != h {
			return fmt.Errorf("dataset: %s column %d is %q, want %q", table, i, got[i], h)
		}
	}
	return nil
}

var contractHeader = []string{
	"id", "type", "maker", "taker", "thread", "created", "decided",
	"completed", "status", "public", "maker_obligation", "taker_obligation",
	"maker_rating", "taker_rating", "btc_address", "tx_hash",
}

// WriteContractsCSV streams the contracts in CSV form.
func WriteContractsCSV(w io.Writer, contracts []*forum.Contract) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(contractHeader); err != nil {
		return err
	}
	for _, c := range contracts {
		rec := []string{
			strconv.Itoa(int(c.ID)),
			c.Type.String(),
			strconv.Itoa(int(c.Maker)),
			strconv.Itoa(int(c.Taker)),
			strconv.Itoa(int(c.Thread)),
			formatTime(c.Created),
			formatTime(c.Decided),
			formatTime(c.Completed),
			c.Status.String(),
			strconv.FormatBool(c.Public),
			c.MakerObligation,
			c.TakerObligation,
			strconv.Itoa(int(c.MakerRating)),
			strconv.Itoa(int(c.TakerRating)),
			c.BTCAddress,
			c.TxHash,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadContractsCSV parses contracts written by WriteContractsCSV. The
// lifecycle state is restored field-by-field (the state machine is not
// replayed); contracts loaded in intermediate states cannot be transitioned
// further, which analysis-only consumers never need.
func ReadContractsCSV(r io.Reader) ([]*forum.Contract, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(contractHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading contract header: %w", err)
	}
	if err := checkHeader(header, contractHeader, "contract"); err != nil {
		return nil, err
	}
	var out []*forum.Contract
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: contract line %d: %w", line, err)
		}
		c, err := parseContract(rec)
		if err != nil {
			return nil, fmt.Errorf("dataset: contract line %d: %w", line, err)
		}
		out = append(out, c)
	}
	return out, nil
}

func parseContract(rec []string) (*forum.Contract, error) {
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return nil, fmt.Errorf("bad id: %w", err)
	}
	typ, err := forum.ParseContractType(rec[1])
	if err != nil {
		return nil, err
	}
	maker, err := strconv.Atoi(rec[2])
	if err != nil {
		return nil, fmt.Errorf("bad maker: %w", err)
	}
	taker, err := strconv.Atoi(rec[3])
	if err != nil {
		return nil, fmt.Errorf("bad taker: %w", err)
	}
	thread, err := strconv.Atoi(rec[4])
	if err != nil {
		return nil, fmt.Errorf("bad thread: %w", err)
	}
	created, err := parseTime(rec[5])
	if err != nil {
		return nil, fmt.Errorf("bad created: %w", err)
	}
	decided, err := parseTime(rec[6])
	if err != nil {
		return nil, fmt.Errorf("bad decided: %w", err)
	}
	completed, err := parseTime(rec[7])
	if err != nil {
		return nil, fmt.Errorf("bad completed: %w", err)
	}
	status, err := forum.ParseStatus(rec[8])
	if err != nil {
		return nil, err
	}
	public, err := strconv.ParseBool(rec[9])
	if err != nil {
		return nil, fmt.Errorf("bad public flag: %w", err)
	}
	mr, err := strconv.Atoi(rec[12])
	if err != nil {
		return nil, fmt.Errorf("bad maker rating: %w", err)
	}
	tr, err := strconv.Atoi(rec[13])
	if err != nil {
		return nil, fmt.Errorf("bad taker rating: %w", err)
	}
	return &forum.Contract{
		ID:              forum.ContractID(id),
		Type:            typ,
		Maker:           forum.UserID(maker),
		Taker:           forum.UserID(taker),
		Thread:          forum.ThreadID(thread),
		Created:         created,
		Decided:         decided,
		Completed:       completed,
		Status:          status,
		Public:          public,
		MakerObligation: rec[10],
		TakerObligation: rec[11],
		MakerRating:     forum.Rating(mr),
		TakerRating:     forum.Rating(tr),
		BTCAddress:      rec[14],
		TxHash:          rec[15],
	}, nil
}

var userHeader = []string{
	"id", "joined", "first_post", "posts", "marketplace_posts", "reputation", "kind",
}

// WriteUsersCSV streams users in CSV form, ordered by ID.
func WriteUsersCSV(w io.Writer, users map[forum.UserID]*forum.User) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(userHeader); err != nil {
		return err
	}
	// Iterate the sorted key set rather than densely scanning 1..maxID:
	// the dense loop silently dropped users with ID <= 0 and paid O(maxID)
	// on sparse ID spaces.
	ids := make([]int, 0, len(users))
	for id := range users {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		u := users[forum.UserID(id)]
		rec := []string{
			strconv.Itoa(int(u.ID)),
			formatTime(u.Joined),
			formatTime(u.FirstPost),
			strconv.Itoa(u.Posts),
			strconv.Itoa(u.MarketplacePosts),
			strconv.Itoa(u.Reputation),
			strconv.Itoa(u.MarketKind),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadUsersCSV parses users written by WriteUsersCSV.
func ReadUsersCSV(r io.Reader) (map[forum.UserID]*forum.User, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(userHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading user header: %w", err)
	}
	if err := checkHeader(header, userHeader, "user"); err != nil {
		return nil, err
	}
	out := make(map[forum.UserID]*forum.User)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: user line %d: %w", line, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: user line %d id: %w", line, err)
		}
		joined, err := parseTime(rec[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: user line %d joined: %w", line, err)
		}
		firstPost, err := parseTime(rec[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: user line %d first_post: %w", line, err)
		}
		posts, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("dataset: user line %d posts: %w", line, err)
		}
		mposts, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, fmt.Errorf("dataset: user line %d mposts: %w", line, err)
		}
		rep, err := strconv.Atoi(rec[5])
		if err != nil {
			return nil, fmt.Errorf("dataset: user line %d reputation: %w", line, err)
		}
		kind, err := strconv.Atoi(rec[6])
		if err != nil {
			return nil, fmt.Errorf("dataset: user line %d kind: %w", line, err)
		}
		out[forum.UserID(id)] = &forum.User{
			ID: forum.UserID(id), Joined: joined, FirstPost: firstPost,
			Posts: posts, MarketplacePosts: mposts, Reputation: rep,
			MarketKind: kind,
		}
	}
	return out, nil
}

// SaveDir writes contracts.csv, users.csv, and dataset.bin into dir,
// creating it. The CSV pair remains the interchange format (uploads, smoke
// jobs, external tools); dataset.bin is the columnar binary LoadDir
// prefers, carrying the same content at the same (second) precision.
// Threads, posts, and the ledger are regenerable from the seed and are not
// persisted.
func (d *Dataset) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(dir, "contracts.csv"))
	if err != nil {
		return err
	}
	defer cf.Close()
	if err := WriteContractsCSV(cf, d.Contracts); err != nil {
		return err
	}
	uf, err := os.Create(filepath.Join(dir, "users.csv"))
	if err != nil {
		return err
	}
	defer uf.Close()
	if err := WriteUsersCSV(uf, d.Users); err != nil {
		return err
	}
	bf, err := os.Create(filepath.Join(dir, BinaryName))
	if err != nil {
		return err
	}
	defer bf.Close()
	return d.EncodeBinary(bf)
}

// LoadDir reads a dataset saved with SaveDir, preferring the columnar
// dataset.bin when present (no CSV re-parse) and falling back to the CSV
// pair for directories written by older tools or by hand.
func LoadDir(dir string) (*Dataset, error) {
	if bf, err := os.Open(filepath.Join(dir, BinaryName)); err == nil {
		defer bf.Close()
		d, err := DecodeBinary(bf)
		if err != nil {
			return nil, fmt.Errorf("dataset: decoding %s: %w", BinaryName, err)
		}
		return d, nil
	}
	cf, err := os.Open(filepath.Join(dir, "contracts.csv"))
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	uf, err := os.Open(filepath.Join(dir, "users.csv"))
	if err != nil {
		return nil, err
	}
	defer uf.Close()
	return Read(cf, uf)
}

func formatTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(timeLayout)
}

func parseTime(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	return time.Parse(timeLayout, s)
}
