package dataset

import (
	"fmt"
	"math"
	"time"

	"turnup/internal/forum"
)

// This file holds the struct-of-arrays columnar core. A Dataset's
// contracts project into one or more Blocks — parallel arrays of small
// fixed-width fields (interned party IDs, epoch-second timestamps,
// one-byte enums) plus a shared byte arena for the string fields, with
// per-row Spans pointing into it. The analysis layer scans these columns
// instead of chasing *forum.Contract pointers, the binary on-disk format
// (binary.go) serialises them directly, and ingest appends new blocks
// copy-on-write so generations share everything already built.

// timeSentinel encodes the zero time.Time in an epoch-second column. It
// is unreachable from any parseable RFC 3339 timestamp, so round-trips
// preserve "unset" exactly.
const timeSentinel = math.MinInt64

// epochSec projects a time onto its epoch-second column value.
func epochSec(t time.Time) int64 {
	if t.IsZero() {
		return timeSentinel
	}
	return t.Unix()
}

// secTime materialises an epoch-second column value back into a time.
// All dataset times are UTC at second precision (the CSV writers format
// whole-second RFC 3339), so the projection is lossless for any corpus
// that has passed through the canonical writers.
func secTime(s int64) time.Time {
	if s == timeSentinel {
		return time.Time{}
	}
	return time.Unix(s, 0).UTC()
}

// Span references one string as a byte range in a block's arena. The
// zero Span is the empty string; equal strings inside a block intern to
// the same Span.
type Span struct {
	Off, Len uint32
}

// Block is the struct-of-arrays projection of one run of contracts.
// Maker/Taker hold indexes into the block's interned PartyIDs table;
// Created/Decided/Completed are epoch seconds (timeSentinel = unset);
// the four string columns are Spans into the shared Arena.
//
// Month, CompletedMonth, and Era are derived scan-accelerator columns
// computed at build time from the source contracts' full-precision times
// — they are never serialised, and DecodeBinary recomputes them from the
// second-precision wire times (equivalent: era and month boundaries are
// whole-second instants).
type Block struct {
	N      int
	ID     []int64
	Type   []uint8
	Status []uint8
	Public []bool

	Maker    []int32
	Taker    []int32
	PartyIDs []int64

	Thread    []int64
	Created   []int64
	Decided   []int64
	Completed []int64

	MakerRating []int64
	TakerRating []int64

	MakerOb []Span
	TakerOb []Span
	BTC     []Span
	Tx      []Span
	Arena   []byte

	Month          []int8 // MonthOf(Created)
	CompletedMonth []int8 // completion-month bucket; -1 when not complete
	Era            []int8 // EraOf(Created)
}

// Str materialises one span from the block's arena.
func (b *Block) Str(sp Span) string {
	return string(b.Arena[sp.Off : sp.Off+uint32(sp.Len)])
}

// BuildBlock projects contracts into a fresh block, interning party IDs
// and deduplicating string fields into the arena in first-appearance
// order (so identical corpora always build byte-identical arenas).
func BuildBlock(cs []*forum.Contract) *Block {
	n := len(cs)
	b := &Block{
		N:              n,
		ID:             make([]int64, n),
		Type:           make([]uint8, n),
		Status:         make([]uint8, n),
		Public:         make([]bool, n),
		Maker:          make([]int32, n),
		Taker:          make([]int32, n),
		Thread:         make([]int64, n),
		Created:        make([]int64, n),
		Decided:        make([]int64, n),
		Completed:      make([]int64, n),
		MakerRating:    make([]int64, n),
		TakerRating:    make([]int64, n),
		MakerOb:        make([]Span, n),
		TakerOb:        make([]Span, n),
		BTC:            make([]Span, n),
		Tx:             make([]Span, n),
		Month:          make([]int8, n),
		CompletedMonth: make([]int8, n),
		Era:            make([]int8, n),
	}
	strs := make(map[string]Span)
	intern := func(s string) Span {
		if s == "" {
			return Span{}
		}
		if sp, ok := strs[s]; ok {
			return sp
		}
		sp := Span{Off: uint32(len(b.Arena)), Len: uint32(len(s))}
		b.Arena = append(b.Arena, s...)
		strs[s] = sp
		return sp
	}
	parties := make(map[int64]int32)
	party := func(id forum.UserID) int32 {
		if ix, ok := parties[int64(id)]; ok {
			return ix
		}
		ix := int32(len(b.PartyIDs))
		b.PartyIDs = append(b.PartyIDs, int64(id))
		parties[int64(id)] = ix
		return ix
	}
	for i, c := range cs {
		b.ID[i] = int64(c.ID)
		b.Type[i] = uint8(c.Type)
		b.Status[i] = uint8(c.Status)
		b.Public[i] = c.Public
		b.Maker[i] = party(c.Maker)
		b.Taker[i] = party(c.Taker)
		b.Thread[i] = int64(c.Thread)
		b.Created[i] = epochSec(c.Created)
		b.Decided[i] = epochSec(c.Decided)
		b.Completed[i] = epochSec(c.Completed)
		b.MakerRating[i] = int64(c.MakerRating)
		b.TakerRating[i] = int64(c.TakerRating)
		b.MakerOb[i] = intern(c.MakerObligation)
		b.TakerOb[i] = intern(c.TakerObligation)
		b.BTC[i] = intern(c.BTCAddress)
		b.Tx[i] = intern(c.TxHash)
		b.Month[i] = int8(MonthOf(c.Created))
		if c.IsComplete() {
			at := c.Completed
			if at.IsZero() {
				at = c.Created
			}
			b.CompletedMonth[i] = int8(MonthOf(at))
		} else {
			b.CompletedMonth[i] = -1
		}
		b.Era[i] = int8(EraOf(c.Created))
	}
	return b
}

// materialize builds row-form contracts back out of the block,
// validating enum and span bounds (the block may have come off the
// wire). Strings are interned per Span so rows sharing obligation text
// share one Go string.
func (b *Block) materialize() ([]*forum.Contract, error) {
	interned := make(map[Span]string)
	str := func(sp Span) (string, error) {
		if sp.Len == 0 {
			return "", nil
		}
		if uint64(sp.Off)+uint64(sp.Len) > uint64(len(b.Arena)) {
			return "", fmt.Errorf("dataset: span [%d,+%d) outside %d-byte arena", sp.Off, sp.Len, len(b.Arena))
		}
		if s, ok := interned[sp]; ok {
			return s, nil
		}
		s := b.Str(sp)
		interned[sp] = s
		return s, nil
	}
	out := make([]*forum.Contract, b.N)
	for i := 0; i < b.N; i++ {
		if b.Type[i] >= forum.NumContractTypes {
			return nil, fmt.Errorf("dataset: contract %d has unknown type %d", b.ID[i], b.Type[i])
		}
		if b.Status[i] >= forum.NumStatuses {
			return nil, fmt.Errorf("dataset: contract %d has unknown status %d", b.ID[i], b.Status[i])
		}
		if int(b.Maker[i]) >= len(b.PartyIDs) || int(b.Taker[i]) >= len(b.PartyIDs) || b.Maker[i] < 0 || b.Taker[i] < 0 {
			return nil, fmt.Errorf("dataset: contract %d references party slot outside the interned table", b.ID[i])
		}
		mob, err := str(b.MakerOb[i])
		if err != nil {
			return nil, err
		}
		tob, err := str(b.TakerOb[i])
		if err != nil {
			return nil, err
		}
		btc, err := str(b.BTC[i])
		if err != nil {
			return nil, err
		}
		tx, err := str(b.Tx[i])
		if err != nil {
			return nil, err
		}
		out[i] = &forum.Contract{
			ID:              forum.ContractID(b.ID[i]),
			Type:            forum.ContractType(b.Type[i]),
			Maker:           forum.UserID(b.PartyIDs[b.Maker[i]]),
			Taker:           forum.UserID(b.PartyIDs[b.Taker[i]]),
			Thread:          forum.ThreadID(b.Thread[i]),
			Created:         secTime(b.Created[i]),
			Decided:         secTime(b.Decided[i]),
			Completed:       secTime(b.Completed[i]),
			Status:          forum.Status(b.Status[i]),
			Public:          b.Public[i],
			MakerObligation: mob,
			TakerObligation: tob,
			MakerRating:     forum.Rating(b.MakerRating[i]),
			TakerRating:     forum.Rating(b.TakerRating[i]),
			BTCAddress:      btc,
			TxHash:          tx,
		}
	}
	return out, nil
}

// deriveScanColumns fills the Month/CompletedMonth/Era accelerator
// columns from the materialised rows — the decode path, where no
// original full-precision times exist (and none are needed: wire times
// are already whole seconds).
func (b *Block) deriveScanColumns(cs []*forum.Contract) {
	b.Month = make([]int8, b.N)
	b.CompletedMonth = make([]int8, b.N)
	b.Era = make([]int8, b.N)
	for i, c := range cs {
		b.Month[i] = int8(MonthOf(c.Created))
		if c.IsComplete() {
			at := c.Completed
			if at.IsZero() {
				at = c.Created
			}
			b.CompletedMonth[i] = int8(MonthOf(at))
		} else {
			b.CompletedMonth[i] = -1
		}
		b.Era[i] = int8(EraOf(c.Created))
	}
}

// Columns is the columnar projection of a dataset's contracts: an
// ordered list of blocks whose concatenated rows equal d.Contracts.
// Single-block for loaded/generated corpora; append generations add one
// block per applied batch and share the parent's blocks untouched.
type Columns struct {
	Blocks []*Block
}

// NumRows counts rows across all blocks.
func (c *Columns) NumRows() int {
	n := 0
	for _, b := range c.Blocks {
		n += b.N
	}
	return n
}

// Columns returns the dataset's columnar projection, building and
// caching it on first use. The cache is keyed to the contract count:
// mutating d.Contracts in place invalidates it naturally, while the
// copy-on-write append path (ExtendColumnsFrom) installs extended
// projections that stay fresh.
func (d *Dataset) Columns() *Columns {
	d.derived.colsMu.Lock()
	defer d.derived.colsMu.Unlock()
	if d.derived.cols != nil && d.derived.cols.NumRows() == len(d.Contracts) {
		return d.derived.cols
	}
	d.derived.cols = &Columns{Blocks: []*Block{BuildBlock(d.Contracts)}}
	return d.derived.cols
}

// setColumns installs a pre-built projection (the decode path).
func (d *Dataset) setColumns(c *Columns) {
	d.derived.colsMu.Lock()
	d.derived.cols = c
	d.derived.colsMu.Unlock()
}

// ExtendColumnsFrom gives d (a copy-on-write extension of parent whose
// contracts are parent's plus added) a columnar projection that shares
// every block the parent has already built, appending one new block for
// the added rows. When the parent has no built projection — or the
// counts do not line up — it does nothing and d builds lazily on first
// Columns() call.
func (d *Dataset) ExtendColumnsFrom(parent *Dataset, added []*forum.Contract) {
	d.derived.colsMu.Lock()
	fresh := d.derived.cols != nil && d.derived.cols.NumRows() == len(d.Contracts)
	d.derived.colsMu.Unlock()
	if fresh {
		return // already extended (Apply and Append both call this)
	}
	parent.derived.colsMu.Lock()
	pc := parent.derived.cols
	parent.derived.colsMu.Unlock()
	if pc == nil || pc.NumRows() != len(d.Contracts)-len(added) {
		return
	}
	if len(added) == 0 {
		d.setColumns(pc)
		return
	}
	blocks := make([]*Block, len(pc.Blocks), len(pc.Blocks)+1)
	copy(blocks, pc.Blocks)
	blocks = append(blocks, BuildBlock(added))
	d.setColumns(&Columns{Blocks: blocks})
}
