package dataset

import (
	"bytes"
	"testing"
	"time"

	"turnup/internal/forum"
)

func TestThreadsCSVRoundTrip(t *testing.T) {
	threads := map[forum.ThreadID]*forum.Thread{
		1: {ID: 1, Author: 10, Created: SetupStart.Add(time.Hour), Title: "selling, \"quoted\" stuff"},
		3: {ID: 3, Author: 11, Created: SetupStart.Add(2 * time.Hour), Title: "exchange thread"},
	}
	var buf bytes.Buffer
	if err := WriteThreadsCSV(&buf, threads); err != nil {
		t.Fatal(err)
	}
	got, err := ReadThreadsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip count %d", len(got))
	}
	if got[1].Title != threads[1].Title || !got[1].Created.Equal(threads[1].Created) {
		t.Errorf("thread 1 = %+v", got[1])
	}
	if got[3].Author != 11 {
		t.Errorf("thread 3 author = %v", got[3].Author)
	}
}

func TestPostsCSVRoundTrip(t *testing.T) {
	posts := []*forum.Post{
		{ID: 1, Thread: 2, Author: 10, Created: SetupStart, Marketplace: true},
		{ID: 2, Thread: 0, Author: 11, Created: SetupStart.Add(time.Hour)},
	}
	var buf bytes.Buffer
	if err := WritePostsCSV(&buf, posts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPostsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip count %d", len(got))
	}
	if !got[0].Marketplace || got[0].Thread != 2 {
		t.Errorf("post 0 = %+v", got[0])
	}
	if got[1].Marketplace || got[1].Thread != 0 {
		t.Errorf("post 1 = %+v", got[1])
	}
}

func TestSaveLoadDirFull(t *testing.T) {
	d := seedDataset(t)
	d.Threads[7] = &forum.Thread{ID: 7, Author: 1, Created: SetupStart, Title: "ad"}
	d.Contracts[0].Thread = 7
	d.Posts = append(d.Posts, &forum.Post{ID: 1, Thread: 7, Author: 1, Created: SetupStart, Marketplace: true})
	dir := t.TempDir()
	if err := d.SaveDirFull(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDirFull(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Threads) != 1 || len(got.Posts) != 1 {
		t.Errorf("loaded %d threads, %d posts", len(got.Threads), len(got.Posts))
	}
	if err := got.Validate(); err != nil {
		t.Errorf("loaded full dataset invalid: %v", err)
	}
}

func TestLoadDirFullWithoutExtras(t *testing.T) {
	// SaveDir output (no threads/posts files) must still load.
	d := seedDataset(t)
	dir := t.TempDir()
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDirFull(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Contracts) != len(d.Contracts) {
		t.Errorf("loaded %d contracts", len(got.Contracts))
	}
}
