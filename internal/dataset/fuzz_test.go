package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadContractsCSV ensures malformed CSV never panics the loader: it
// must either parse or return an error.
func FuzzReadContractsCSV(f *testing.F) {
	var good bytes.Buffer
	d := seedDatasetF(f)
	if err := WriteContractsCSV(&good, d.Contracts); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add("id,type\n1,SALE\n")
	f.Add(strings.Join(contractHeader, ",") + "\nnot,enough,fields\n")
	f.Add("")
	f.Add(strings.Join(contractHeader, ",") + "\n" + strings.Repeat("x,", 15) + "x\n")
	f.Fuzz(func(t *testing.T, input string) {
		contracts, err := ReadContractsCSV(strings.NewReader(input))
		if err == nil {
			// Whatever parsed must be structurally sane.
			for _, c := range contracts {
				if c == nil {
					t.Fatal("nil contract parsed")
				}
			}
		}
	})
}

// seedDatasetF mirrors seedDataset for fuzz seeding (testing.F lacks the
// helper interface used by the test variant).
func seedDatasetF(f *testing.F) *Dataset {
	d := New()
	c, err := ReadContractsCSV(strings.NewReader(strings.Join(contractHeader, ",") + "\n"))
	if err != nil {
		f.Fatal(err)
	}
	d.Contracts = c
	return d
}

// FuzzDatasetRoundTrip is the format-equivalence property: any CSV pair
// the readers accept must survive CSV → columnar → binary → decode with
// its content digest — hence its canonical CSV bytes — unchanged. This is
// the invariant that lets the store admit either format and dedupe across
// them.
func FuzzDatasetRoundTrip(f *testing.F) {
	emptyContracts := strings.Join(contractHeader, ",") + "\n"
	emptyUsers := strings.Join(userHeader, ",") + "\n"
	f.Add(emptyContracts, emptyUsers)
	f.Add(
		emptyContracts+`7,SALE,1,2,0,2018-07-01T00:00:00Z,,,Pending,true,selling "x",paying $5,0,0,,`+"\n",
		emptyUsers+"1,2018-06-01T00:00:00Z,,0,0,0,0\n2,2018-06-02T03:04:05Z,2018-06-03T00:00:00Z,9,2,-4,1\n",
	)
	// Huge ratings, negative/zero user IDs, repeated obligation text.
	f.Add(
		emptyContracts+
			"1,EXCHANGE,-1,0,3,2019-04-01T12:00:00Z,2019-04-02T00:00:00Z,2019-04-03T00:00:00Z,Complete,true,swap btc,swap ltc,99999999999,-99999999999,addr,tx\n"+
			"2,TRADE,5,6,0,2020-03-12T00:00:00Z,,,Denied,false,,,0,0,,\n"+
			"3,SALE,5,6,0,2020-03-13T00:00:00Z,,,Pending,true,swap btc,swap ltc,0,0,,\n",
		emptyUsers+"-1,,,0,0,0,0\n0,,,1,1,1,1\n5,,,0,0,0,0\n6,,,0,0,0,0\n",
	)
	f.Fuzz(func(t *testing.T, contractsCSV, usersCSV string) {
		d, err := Read(strings.NewReader(contractsCSV), strings.NewReader(usersCSV))
		if err != nil {
			return // malformed input: rejection is the correct outcome
		}
		wantDigest, _ := d.Digest()
		var bin bytes.Buffer
		if err := d.EncodeBinary(&bin); err != nil {
			t.Fatalf("encoding accepted corpus: %v", err)
		}
		if int64(bin.Len()) != d.BinarySize() {
			t.Fatalf("encoded %d bytes, BinarySize says %d", bin.Len(), d.BinarySize())
		}
		got, err := DecodeBinary(&bin)
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		gotDigest, _ := got.Digest()
		if gotDigest != wantDigest {
			t.Fatalf("digest changed across binary round trip: %s -> %s", wantDigest, gotDigest)
		}
		if len(got.Contracts) != len(d.Contracts) || len(got.Users) != len(d.Users) {
			t.Fatalf("round trip %d/%d contracts, %d/%d users",
				len(got.Contracts), len(d.Contracts), len(got.Users), len(d.Users))
		}
	})
}
