package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadContractsCSV ensures malformed CSV never panics the loader: it
// must either parse or return an error.
func FuzzReadContractsCSV(f *testing.F) {
	var good bytes.Buffer
	d := seedDatasetF(f)
	if err := WriteContractsCSV(&good, d.Contracts); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add("id,type\n1,SALE\n")
	f.Add(strings.Join(contractHeader, ",") + "\nnot,enough,fields\n")
	f.Add("")
	f.Add(strings.Join(contractHeader, ",") + "\n" + strings.Repeat("x,", 15) + "x\n")
	f.Fuzz(func(t *testing.T, input string) {
		contracts, err := ReadContractsCSV(strings.NewReader(input))
		if err == nil {
			// Whatever parsed must be structurally sane.
			for _, c := range contracts {
				if c == nil {
					t.Fatal("nil contract parsed")
				}
			}
		}
	})
}

// seedDatasetF mirrors seedDataset for fuzz seeding (testing.F lacks the
// helper interface used by the test variant).
func seedDatasetF(f *testing.F) *Dataset {
	d := New()
	c, err := ReadContractsCSV(strings.NewReader(strings.Join(contractHeader, ",") + "\n"))
	if err != nil {
		f.Fatal(err)
	}
	d.Contracts = c
	return d
}
