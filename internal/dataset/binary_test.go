package dataset

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"turnup/internal/forum"
)

// richDataset is seedDataset plus the fields the binary format must carry
// through spans and raw columns: obligation text (with interning-worthy
// repeats), chain evidence, ratings outside int8, and a user with ID 0.
func richDataset(t *testing.T) *Dataset {
	t.Helper()
	d := seedDataset(t)
	d.Users[0] = &forum.User{ID: 0, Joined: SetupStart}
	d.Users[90001] = &forum.User{ID: 90001, Joined: StableStart, Posts: 3}
	d.Contracts[0].MakerObligation = "selling $25 amazon giftcard, btc only"
	d.Contracts[0].TakerObligation = "paying 0.004 btc"
	d.Contracts[0].BTCAddress = "1abc"
	d.Contracts[0].TxHash = "ffee"
	d.Contracts[0].MakerRating = 10
	d.Contracts[0].TakerRating = -1 << 40
	d.Contracts[2].MakerObligation = "selling $25 amazon giftcard, btc only" // repeat: interned
	return d
}

// TestBinaryRoundTripDigest pins the format's core contract: a binary
// round-trip reproduces the exact canonical content digest of the corpus
// it encoded — same bytes out of the CSV writers, field for field.
func TestBinaryRoundTripDigest(t *testing.T) {
	d := richDataset(t)
	wantDigest, _ := d.Digest()

	var buf bytes.Buffer
	if err := d.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != d.BinarySize() {
		t.Fatalf("encoded %d bytes, BinarySize says %d", buf.Len(), d.BinarySize())
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gotDigest, _ := got.Digest()
	if gotDigest != wantDigest {
		t.Fatalf("digest %s after round trip, want %s", gotDigest, wantDigest)
	}
	if len(got.Contracts) != len(d.Contracts) || len(got.Users) != len(d.Users) {
		t.Fatalf("round trip %d contracts / %d users, want %d / %d",
			len(got.Contracts), len(got.Users), len(d.Contracts), len(d.Users))
	}
	if got.Contracts[0].TakerRating != -1<<40 {
		t.Fatalf("wide rating %d, want %d", got.Contracts[0].TakerRating, -1<<40)
	}
}

// TestBinaryMultiBlockRoundTrip encodes a two-block columnar projection —
// the shape an appended generation has — and checks the digest still
// round-trips. Multi-block bytes may differ from a fresh single-block
// encode (arena interning is per block); the digest must not.
func TestBinaryMultiBlockRoundTrip(t *testing.T) {
	parent := richDataset(t)
	parent.Columns() // materialise the parent's projection

	added := []*forum.Contract{}
	child := &Dataset{
		Users:     parent.Users,
		Threads:   parent.Threads,
		Posts:     parent.Posts,
		Contracts: parent.Contracts,
		Ledger:    parent.Ledger,
	}
	c := mkContract(t, child, 50, forum.Sale, 1, 3, time.Date(2020, 5, 2, 0, 0, 0, 0, time.UTC), true, true)
	c.MakerObligation = "selling $25 amazon giftcard, btc only" // repeats a parent-block string
	added = append(added, c)
	child.ExtendColumnsFrom(parent, added)

	if nb := len(child.Columns().Blocks); nb != 2 {
		t.Fatalf("extended projection has %d blocks, want 2", nb)
	}
	var buf bytes.Buffer
	if err := child.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, _ := child.Digest()
	gotDigest, _ := got.Digest()
	if gotDigest != wantDigest {
		t.Fatalf("multi-block digest %s, want %s", gotDigest, wantDigest)
	}
}

// TestBinaryRejectsCorruption walks the validation ladder: magic, version,
// section bounds, and truncation must all fail loudly, never panic.
func TestBinaryRejectsCorruption(t *testing.T) {
	d := richDataset(t)
	var buf bytes.Buffer
	if err := d.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), good...)
		mutate(b)
		_, err := DecodeBinary(bytes.NewReader(b))
		return err
	}
	if err := corrupt(func(b []byte) { b[0] = 'X' }); err == nil {
		t.Error("bad magic accepted")
	}
	if err := corrupt(func(b []byte) { b[4] = 99 }); err == nil {
		t.Error("unknown version accepted")
	}
	if err := corrupt(func(b []byte) { b[16] = 0xff; b[17] = 0xff; b[18] = 0xff; b[19] = 0xff }); err == nil {
		t.Error("section offset past EOF accepted")
	}
	if _, err := DecodeBinary(bytes.NewReader(good[:headerLen-1])); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := DecodeBinary(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Error("truncated arena accepted")
	}
}

// TestLoadDirPrefersBinary proves LoadDir reads dataset.bin, not the CSV
// pair: after SaveDir, the CSVs are overwritten with garbage and the load
// must still succeed with the original content.
func TestLoadDirPrefersBinary(t *testing.T) {
	d := richDataset(t)
	dir := t.TempDir()
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"contracts.csv", "users.csv"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, _ := d.Digest()
	gotDigest, _ := got.Digest()
	if gotDigest != wantDigest {
		t.Fatalf("binary-path load digest %s, want %s", gotDigest, wantDigest)
	}

	// A corrupt dataset.bin is a hard error, not a silent CSV fallback.
	if err := os.WriteFile(filepath.Join(dir, BinaryName), []byte("TUDSgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("corrupt dataset.bin fell back silently")
	}
}

// TestWindowCheckAtLoad pins the loud out-of-window boundary check on both
// load paths. MonthOf clamps out-of-range times into the edge months, so
// without this check a mis-dated corpus would silently pile into month 0
// or 24 instead of failing.
func TestWindowCheckAtLoad(t *testing.T) {
	early := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	if InWindow(early) || !InWindow(SetupStart) || InWindow(StudyEnd) {
		t.Fatal("InWindow boundary semantics wrong")
	}

	// CSV path: Read must reject the contract, naming ErrOutOfWindow.
	bad := seedDataset(t)
	bad.Contracts[1].Created = early
	var cbuf, ubuf bytes.Buffer
	if err := WriteContractsCSV(&cbuf, bad.Contracts); err != nil {
		t.Fatal(err)
	}
	if err := WriteUsersCSV(&ubuf, bad.Users); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&cbuf, &ubuf); !errors.Is(err, ErrOutOfWindow) {
		t.Fatalf("CSV load of out-of-window contract: %v, want ErrOutOfWindow", err)
	}

	// Binary path: EncodeBinary does not validate (it trusts its caller),
	// DecodeBinary must.
	var bbuf bytes.Buffer
	if err := bad.EncodeBinary(&bbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBinary(&bbuf); !errors.Is(err, ErrOutOfWindow) {
		t.Fatalf("binary load of out-of-window contract: %v, want ErrOutOfWindow", err)
	}
}

// TestUsersCSVSparseAndNonPositiveIDs is the regression for the dense
// 1..maxID writer loop: users with ID <= 0 were silently dropped, and a
// sparse ID space paid O(maxID). The sorted-keys writer must emit every
// user exactly once, in ID order.
func TestUsersCSVSparseAndNonPositiveIDs(t *testing.T) {
	users := map[forum.UserID]*forum.User{
		-7:      {ID: -7, Joined: SetupStart},
		0:       {ID: 0, Joined: SetupStart},
		3:       {ID: 3, Joined: StableStart, Posts: 9},
		1 << 40: {ID: 1 << 40, Joined: CovidStart},
	}
	var buf bytes.Buffer
	if err := WriteUsersCSV(&buf, users); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(users) {
		t.Fatalf("wrote %d lines, want header + %d users:\n%s", len(lines), len(users), buf.String())
	}
	wantOrder := []string{"-7", "0", "3", "1099511627776"}
	for i, id := range wantOrder {
		if !strings.HasPrefix(lines[1+i], id+",") {
			t.Fatalf("line %d = %q, want id %s first (sorted order)", 1+i, lines[1+i], id)
		}
	}
	got, err := ReadUsersCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(users) {
		t.Fatalf("round trip %d users, want %d", len(got), len(users))
	}
	if got[0] == nil || got[-7] == nil || got[3].Posts != 9 {
		t.Fatalf("round trip lost a sparse/non-positive user: %+v", got)
	}
}

// TestCSVRejectsReorderedHeaders pins header validation on every reader:
// same column names in a different order is a schema mismatch, not data
// to silently mis-assign.
func TestCSVRejectsReorderedHeaders(t *testing.T) {
	swap := func(h []string) string {
		s := append([]string(nil), h...)
		s[0], s[1] = s[1], s[0]
		return strings.Join(s, ",") + "\n"
	}
	if _, err := ReadContractsCSV(strings.NewReader(swap(contractHeader))); err == nil {
		t.Error("reordered contract header accepted")
	}
	if _, err := ReadUsersCSV(strings.NewReader(swap(userHeader))); err == nil {
		t.Error("reordered user header accepted")
	}
	if _, err := ReadThreadsCSV(strings.NewReader(swap(threadHeader))); err == nil {
		t.Error("reordered thread header accepted")
	}
	if _, err := ReadPostsCSV(strings.NewReader(swap(postHeader))); err == nil {
		t.Error("reordered post header accepted")
	}
}
