// Package chain implements a synthetic blockchain ledger standing in for
// the real Bitcoin/Ethereum blockchains the paper consults when manually
// verifying high-value contracts (§4.5). The simulator records on-chain
// transactions for a fraction of contracts; the audit analysis later looks
// those transactions up by hash or address and compares recorded values
// against contract-declared ones — exactly the verify-against-ledger code
// path the paper describes, including the possibility that a dishonest
// party cites an unrelated-but-plausible transaction.
package chain

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Address is a ledger address (synthetic base58-ish string).
type Address string

// Tx is one recorded ledger transaction.
type Tx struct {
	Hash     string
	From, To Address
	ValueUSD float64 // value at transaction time, in USD
	Time     time.Time
}

// Ledger is an append-only set of transactions with hash and address
// indexes. It is safe for concurrent use.
type Ledger struct {
	mu     sync.RWMutex
	byHash map[string]Tx
	byAddr map[Address][]int // indexes into order
	order  []Tx
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		byHash: make(map[string]Tx),
		byAddr: make(map[Address][]int),
	}
}

// Record appends a transaction. Recording a duplicate hash is an error:
// hashes are unique on a real chain.
func (l *Ledger) Record(tx Tx) error {
	if tx.Hash == "" {
		return fmt.Errorf("chain: transaction with empty hash")
	}
	if tx.ValueUSD < 0 {
		return fmt.Errorf("chain: negative transaction value %v", tx.ValueUSD)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.byHash[tx.Hash]; dup {
		return fmt.Errorf("chain: duplicate transaction hash %s", tx.Hash)
	}
	l.byHash[tx.Hash] = tx
	idx := len(l.order)
	l.order = append(l.order, tx)
	l.byAddr[tx.From] = append(l.byAddr[tx.From], idx)
	if tx.To != tx.From {
		l.byAddr[tx.To] = append(l.byAddr[tx.To], idx)
	}
	return nil
}

// Len returns the number of recorded transactions.
func (l *Ledger) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.order)
}

// LookupHash returns the transaction with the given hash.
func (l *Ledger) LookupHash(hash string) (Tx, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	tx, ok := l.byHash[hash]
	return tx, ok
}

// TxsForAddress returns all transactions touching addr within
// [from, to], ordered by time.
func (l *Ledger) TxsForAddress(addr Address, from, to time.Time) []Tx {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Tx
	for _, i := range l.byAddr[addr] {
		tx := l.order[i]
		if tx.Time.Before(from) || tx.Time.After(to) {
			continue
		}
		out = append(out, tx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Verdict classifies the outcome of verifying a contract-declared value
// against the ledger, mirroring the paper's three audit buckets.
type Verdict int

// Audit outcomes.
const (
	// NotFound: no matching transaction — the paper's "could not be
	// confirmed" bucket (7% of high-value contracts).
	NotFound Verdict = iota
	// Confirmed: a transaction matches the declared value within
	// tolerance (50% of the paper's high-value contracts).
	Confirmed
	// Mismatch: a transaction exists but at a different value, usually
	// lower — private renegotiation or typos (43% in the paper).
	Mismatch
)

// String renders the verdict for reports.
func (v Verdict) String() string {
	switch v {
	case Confirmed:
		return "confirmed"
	case Mismatch:
		return "mismatch"
	default:
		return "not-found"
	}
}

// Verification is the result of checking one declared value.
type Verification struct {
	Verdict   Verdict
	ActualUSD float64 // recorded value when Verdict != NotFound
	Tx        Tx
}

// VerifyHash checks a declared USD value against the transaction with the
// given hash. relTol is the relative tolerance for "confirmed"
// (e.g. 0.1 = within 10%).
func (l *Ledger) VerifyHash(hash string, declaredUSD, relTol float64) Verification {
	tx, ok := l.LookupHash(hash)
	if !ok {
		return Verification{Verdict: NotFound}
	}
	return classify(tx, declaredUSD, relTol)
}

// VerifyAddress checks a declared USD value against transactions touching
// addr within a window around the completion time (the paper checks
// "recorded transactions on the blockchain at the completion time"). The
// closest-in-value transaction in the window is used.
func (l *Ledger) VerifyAddress(addr Address, completedAt time.Time, window time.Duration, declaredUSD, relTol float64) Verification {
	txs := l.TxsForAddress(addr, completedAt.Add(-window), completedAt.Add(window))
	if len(txs) == 0 {
		return Verification{Verdict: NotFound}
	}
	best := txs[0]
	bestDiff := diffAbs(best.ValueUSD, declaredUSD)
	for _, tx := range txs[1:] {
		if d := diffAbs(tx.ValueUSD, declaredUSD); d < bestDiff {
			best, bestDiff = tx, d
		}
	}
	return classify(best, declaredUSD, relTol)
}

func classify(tx Tx, declaredUSD, relTol float64) Verification {
	v := Verification{ActualUSD: tx.ValueUSD, Tx: tx}
	scale := declaredUSD
	if scale < 1 {
		scale = 1
	}
	if diffAbs(tx.ValueUSD, declaredUSD) <= relTol*scale {
		v.Verdict = Confirmed
	} else {
		v.Verdict = Mismatch
	}
	return v
}

func diffAbs(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

const hashAlphabet = "0123456789abcdef"

// HashFrom renders a deterministic 64-hex-char transaction hash from two
// 64-bit words (callers derive the words from their RNG stream).
func HashFrom(a, b uint64) string {
	buf := make([]byte, 64)
	for i := 0; i < 16; i++ {
		buf[i] = hashAlphabet[(a>>(uint(i)*4))&0xf]
		buf[16+i] = hashAlphabet[(b>>(uint(i)*4))&0xf]
		buf[32+i] = hashAlphabet[((a^b)>>(uint(i)*4))&0xf]
		buf[48+i] = hashAlphabet[((a+b)>>(uint(i)*4))&0xf]
	}
	return string(buf)
}

// AddressFrom renders a deterministic synthetic address from a 64-bit word.
func AddressFrom(a uint64) Address {
	const alphabet = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
	buf := make([]byte, 0, 34)
	buf = append(buf, '1')
	x := a
	for i := 0; i < 32; i++ {
		buf = append(buf, alphabet[x%uint64(len(alphabet))])
		x = x*6364136223846793005 + 1442695040888963407
	}
	return Address(buf)
}
