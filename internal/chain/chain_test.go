package chain

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2019, 5, 1, 12, 0, 0, 0, time.UTC)

func tx(hash string, addr Address, usd float64, at time.Time) Tx {
	return Tx{Hash: hash, From: "1sender", To: addr, ValueUSD: usd, Time: at}
}

func TestRecordAndLookup(t *testing.T) {
	l := NewLedger()
	if err := l.Record(tx("aa", "1x", 100, t0)); err != nil {
		t.Fatal(err)
	}
	got, ok := l.LookupHash("aa")
	if !ok || got.ValueUSD != 100 {
		t.Fatalf("LookupHash = %+v, %v", got, ok)
	}
	if _, ok := l.LookupHash("zz"); ok {
		t.Error("found nonexistent hash")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestRecordRejectsDuplicatesAndBadTx(t *testing.T) {
	l := NewLedger()
	if err := l.Record(tx("aa", "1x", 100, t0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(tx("aa", "1y", 50, t0)); err == nil {
		t.Error("duplicate hash accepted")
	}
	if err := l.Record(tx("", "1y", 50, t0)); err == nil {
		t.Error("empty hash accepted")
	}
	if err := l.Record(tx("bb", "1y", -5, t0)); err == nil {
		t.Error("negative value accepted")
	}
}

func TestTxsForAddressWindowAndOrder(t *testing.T) {
	l := NewLedger()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Record(tx("a1", "1x", 10, t0.Add(2*time.Hour))))
	must(l.Record(tx("a2", "1x", 20, t0)))
	must(l.Record(tx("a3", "1x", 30, t0.Add(100*time.Hour)))) // outside window
	must(l.Record(tx("a4", "1y", 40, t0)))
	got := l.TxsForAddress("1x", t0.Add(-time.Hour), t0.Add(10*time.Hour))
	if len(got) != 2 {
		t.Fatalf("got %d txs", len(got))
	}
	if got[0].Hash != "a2" || got[1].Hash != "a1" {
		t.Errorf("not time-ordered: %v %v", got[0].Hash, got[1].Hash)
	}
}

func TestVerifyHash(t *testing.T) {
	l := NewLedger()
	if err := l.Record(tx("h1", "1x", 1000, t0)); err != nil {
		t.Fatal(err)
	}
	if v := l.VerifyHash("h1", 1050, 0.1); v.Verdict != Confirmed {
		t.Errorf("within tolerance: %v", v.Verdict)
	}
	if v := l.VerifyHash("h1", 200, 0.1); v.Verdict != Mismatch || v.ActualUSD != 1000 {
		t.Errorf("out of tolerance: %+v", v)
	}
	if v := l.VerifyHash("nope", 200, 0.1); v.Verdict != NotFound {
		t.Errorf("missing hash: %v", v.Verdict)
	}
}

func TestVerifyAddressPicksClosestValue(t *testing.T) {
	l := NewLedger()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Record(tx("h1", "1x", 100, t0)))
	must(l.Record(tx("h2", "1x", 990, t0.Add(time.Hour))))
	v := l.VerifyAddress("1x", t0, 24*time.Hour, 1000, 0.05)
	if v.Verdict != Confirmed || v.Tx.Hash != "h2" {
		t.Errorf("VerifyAddress = %+v", v)
	}
	// Empty window.
	v = l.VerifyAddress("1x", t0.Add(1000*time.Hour), time.Hour, 1000, 0.05)
	if v.Verdict != NotFound {
		t.Errorf("expected NotFound, got %v", v.Verdict)
	}
}

func TestVerdictString(t *testing.T) {
	if Confirmed.String() != "confirmed" || Mismatch.String() != "mismatch" || NotFound.String() != "not-found" {
		t.Error("verdict strings wrong")
	}
}

func TestHashFromDeterministicAndDistinct(t *testing.T) {
	h1 := HashFrom(1, 2)
	h2 := HashFrom(1, 2)
	h3 := HashFrom(2, 1)
	if h1 != h2 {
		t.Error("HashFrom not deterministic")
	}
	if h1 == h3 {
		t.Error("HashFrom collision on swapped words")
	}
	if len(h1) != 64 {
		t.Errorf("hash length = %d", len(h1))
	}
	for _, c := range h1 {
		if !strings.ContainsRune(hashAlphabet, c) {
			t.Errorf("non-hex char %q", c)
		}
	}
}

func TestAddressFrom(t *testing.T) {
	a := AddressFrom(42)
	if a != AddressFrom(42) {
		t.Error("AddressFrom not deterministic")
	}
	if a == AddressFrom(43) {
		t.Error("adjacent seeds collide")
	}
	if a[0] != '1' {
		t.Errorf("address prefix = %q", a[0])
	}
}

func TestLedgerConcurrentAccess(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := HashFrom(uint64(g), uint64(i))
				if err := l.Record(tx(h, AddressFrom(uint64(g)), float64(i), t0)); err != nil {
					t.Error(err)
					return
				}
				l.LookupHash(h)
				l.TxsForAddress(AddressFrom(uint64(g)), t0.Add(-time.Hour), t0.Add(time.Hour))
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 1600 {
		t.Errorf("Len = %d, want 1600", l.Len())
	}
}
