package version

import "testing"

// Without an ldflags override or module build info the resolver must
// still produce a stable, non-empty stamp (the "dev" fallback chain).
func TestStringStableAndNonEmpty(t *testing.T) {
	a, b := String(), String()
	if a == "" {
		t.Fatal("version.String() is empty")
	}
	if a != b {
		t.Fatalf("version.String() unstable: %q then %q", a, b)
	}
}
