// Package version resolves the build's version string. Release builds
// stamp it through the linker:
//
//	go build -ldflags "-X turnup/internal/version.override=$(git describe --always --dirty)"
//
// (the Makefile does this for every binary it builds). Unstamped builds
// fall back to runtime/debug.ReadBuildInfo — the VCS revision when the
// module was built inside a checkout, the module version when installed
// via `go install` — and finally to "dev". The string surfaces in
// /healthz JSON, the -version flag of hfserved and hfload, the
// turnup_build_info metric, and BENCH_serve_load.json, so a latency
// regression can always be tied to the exact build that produced it.
package version

import (
	"runtime/debug"
	"sync"
)

// override is set via -ldflags -X; empty means fall back to build info.
var override string

var resolved = sync.OnceValue(func() string {
	if override != "" {
		return override
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		dirty := ""
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if rev != "" {
			return rev + dirty
		}
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	return "dev"
})

// String returns the resolved version.
func String() string { return resolved() }
