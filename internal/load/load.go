// Package load is the request-level load harness behind cmd/hfload: it
// replays a configurable mix of requests against a running hfserved at a
// target RPS with a worker pool, records client-side latency per route and
// outcome into obs histograms, and summarises the run — p50/p95/p99,
// achieved RPS, error rate, cache-hit rate per route — as the
// BENCH_serve_load.json report every scale PR is gated on.
//
// The mix mirrors how the service is actually exercised:
//
//	hot      repeated identical report params (cache hits)
//	cold     unique seeds per request (cold pipeline runs)
//	section  per-section partial runs cycling a section list
//	upload   POST /v1/datasets with a pre-generated CSV pair
//	dataset  reports over the uploaded dataset (?dataset=)
//	events   POST /v1/datasets/{id}/events appending a small JSON-lines
//	         batch, each followed by a windowed report (?window=30d) so
//	         both ingest latency and the windowed read path land in the
//	         benchmark report
//
// Every request carries a deterministic X-Request-Id, and the harness
// verifies the server echoes it back — the client half of the access-log
// request-id contract.
//
// The harness also works against cmd/hfrouter unchanged: the routed tier
// speaks the same API, and the report additionally tallies the X-Shard
// distribution (which shard answered each request) and the X-Hedged count
// (responses the router raced a second shard for).
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"turnup"
	"turnup/internal/dataset"
	"turnup/internal/obs"
	"turnup/internal/version"
)

// Mix weights the request kinds in the replayed traffic. Zero-weight kinds
// are never issued (and their setup cost — corpus generation for uploads —
// is skipped).
type Mix struct {
	Hot     int `json:"hot"`
	Cold    int `json:"cold"`
	Section int `json:"section"`
	Upload  int `json:"upload"`
	Dataset int `json:"dataset"`
	Events  int `json:"events"`
	// Dense cycles Config.DenseKeys distinct report seeds — a keyspace
	// sized to overflow a small -max-cache-bytes budget, so the run
	// continuously admits and evicts (the memory-bound proof workload)
	// while still revisiting keys often enough to measure evicted-key
	// re-miss latency.
	Dense int `json:"dense,omitempty"`
}

// DefaultMix is a cache-friendly blend: mostly hot traffic with a steady
// trickle of cold runs, partial sections, uploads, dataset reports, and
// event appends.
func DefaultMix() Mix { return Mix{Hot: 6, Cold: 1, Section: 2, Upload: 1, Dataset: 2, Events: 1} }

func (m Mix) total() int {
	return m.Hot + m.Cold + m.Section + m.Upload + m.Dataset + m.Events + m.Dense
}

// kind indexes the request kinds in Mix order. kindWindow is never drawn
// by pick — each successful events append issues one windowed report as a
// follow-up, so the windowed read path is measured at exactly the moments
// its cache generation just moved.
type kind int

const (
	kindHot kind = iota
	kindCold
	kindSection
	kindUpload
	kindDataset
	kindEvents
	kindDense
	kindWindow
)

// routeNames label the per-kind latency series in the report and the
// registry (load_request_seconds{route=...}).
var routeNames = [...]string{"report:hot", "report:cold", "report:section", "datasets:upload", "report:dataset", "events:append", "report:dense", "report:window"}

// Config parameterises one load run. Zero values default sanely; only
// BaseURL is required.
type Config struct {
	BaseURL  string        // target server, e.g. http://127.0.0.1:8080
	RPS      float64       // target request rate (default 50)
	Duration time.Duration // how long to issue requests (default 10s)
	Workers  int           // concurrent request executors (default 8)
	Mix      Mix           // request blend (default DefaultMix)
	Seed     uint64        // drives the kind sequence and report params (default 1)

	Scale       float64  // ?scale= for report requests (default 0.02)
	UploadScale float64  // scale of the generated upload corpus (default 0.01)
	Sections    []string // cycled by section requests (default growth, corpus, concentration, payments)
	DenseKeys   int      // distinct seeds the dense mix cycles (default 512)

	Client   *http.Client  // default: 30s-timeout client
	Registry *obs.Registry // receives load_request_seconds histograms (fresh when nil)
	Logger   *obs.Logger   // optional run progress (nil = silent)
}

// Latency summarises one latency distribution in milliseconds.
type Latency struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// RouteReport is the per-route section of the run report. Latency
// quantiles cover successful requests; errors are counted separately.
type RouteReport struct {
	Route        string  `json:"route"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	ErrorRate    float64 `json:"error_rate"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	Coalesced    int64   `json:"coalesced"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	LatencyMS    Latency `json:"latency_ms"`
}

// Report is the run summary hfload writes to BENCH_serve_load.json.
type Report struct {
	Version         string  `json:"version"`
	Target          string  `json:"target"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Seed            uint64  `json:"seed"`
	Mix             Mix     `json:"mix"`
	DurationSeconds float64 `json:"duration_seconds"`
	TargetRPS       float64 `json:"target_rps"`
	AchievedRPS     float64 `json:"achieved_rps"`
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"`
	ErrorRate       float64 `json:"error_rate"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	// MissedTicks counts scheduled requests that found every worker busy
	// — nonzero means the target RPS exceeded what client+server sustain.
	MissedTicks         int64   `json:"missed_ticks"`
	RequestIDMismatches int64   `json:"request_id_mismatches"`
	OverallMS           Latency `json:"overall_ms"`
	// Shards counts responses per X-Shard header value — empty against a
	// single unsharded hfserved, the routing distribution when the target
	// is hfrouter. Hedged counts responses the router raced a second
	// shard for (X-Hedged).
	Shards map[string]int64 `json:"shards,omitempty"`
	Hedged int64            `json:"hedged,omitempty"`
	Routes []RouteReport    `json:"routes"`
	// ServerMetrics is the end-of-run /metrics?format=json&gc=1 sample:
	// runtime health (heap_bytes after a forced GC, goroutines) and the
	// serve-layer cache gauges/counters, keyed by metric name. Nil when the
	// target does not answer /metrics (or the sample failed) — the memory
	// assertions then fail loudly rather than pass vacuously.
	ServerMetrics map[string]float64 `json:"server_metrics,omitempty"`
}

// routeStats accumulates one route's counters; latencies live in the
// registry histograms.
type routeStats struct {
	requests, errors, hits, misses, coalesced atomic.Int64
}

// runner is the per-run state shared by the workers.
type runner struct {
	cfg      Config
	client   *http.Client
	reg      *obs.Registry
	stats    [len(routeNames)]routeStats
	seq      atomic.Uint64 // request-id sequence
	coldSeq  atomic.Uint64 // unique seeds for cold requests
	secSeq   atomic.Uint64 // section rotation
	evSeq    atomic.Uint64 // unique user/contract ids for event batches
	denseSeq atomic.Uint64 // dense keyspace rotation
	missed   atomic.Int64
	idBad    atomic.Int64
	hedged   atomic.Int64

	shardMu sync.Mutex
	shards  map[string]int64 // responses per X-Shard value

	uploadBody []byte // prebuilt multipart body (replayed per upload)
	uploadCT   string
	datasetID  string
}

// sawShard tallies one response from the named shard.
func (r *runner) sawShard(shard string) {
	r.shardMu.Lock()
	if r.shards == nil {
		r.shards = make(map[string]int64)
	}
	r.shards[shard]++
	r.shardMu.Unlock()
}

// WaitReady polls /healthz until the server answers 200 or the timeout
// elapses — how hfload (and the Makefile's bench-load) syncs with a
// freshly booted hfserved.
func WaitReady(ctx context.Context, client *http.Client, baseURL string, timeout time.Duration) error {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	deadline := time.Now().Add(timeout)
	for {
		req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("healthz status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("load: %s not ready after %s: %w", baseURL, timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Run executes one load run against cfg.BaseURL and returns its report.
// The kind sequence is drawn from a seeded RNG by a single dispatcher, so
// a fixed seed replays the same mix order regardless of worker scheduling.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("load: BaseURL is required")
	}
	if cfg.RPS <= 0 {
		cfg.RPS = 50
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.02
	}
	if cfg.UploadScale <= 0 {
		cfg.UploadScale = 0.01
	}
	if len(cfg.Sections) == 0 {
		cfg.Sections = []string{"growth", "corpus", "concentration", "payments"}
	}
	if cfg.DenseKeys <= 0 {
		cfg.DenseKeys = 512
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	r := &runner{cfg: cfg, client: cfg.Client, reg: cfg.Registry}

	if cfg.Mix.Upload > 0 || cfg.Mix.Dataset > 0 || cfg.Mix.Events > 0 {
		if err := r.setupDataset(ctx); err != nil {
			return nil, err
		}
	}

	cfg.Logger.Log("load_start",
		obs.F("target", cfg.BaseURL), obs.F("rps", cfg.RPS),
		obs.F("duration", cfg.Duration), obs.F("workers", cfg.Workers))

	// One dispatcher paces tokens at the target RPS and draws the kind
	// sequence; workers race only for tokens, never for the RNG.
	tokens := make(chan kind, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range tokens {
				r.do(ctx, k)
			}
		}()
	}

	start := time.Now()
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	interval := time.Duration(float64(time.Second) / cfg.RPS)
	ticker := time.NewTicker(interval)
	stop := time.After(cfg.Duration)
dispatch:
	for {
		select {
		case <-ticker.C:
			k := r.pick(rng)
			select {
			case tokens <- k:
			default:
				r.missed.Add(1)
			}
		case <-stop:
			break dispatch
		case <-ctx.Done():
			break dispatch
		}
	}
	ticker.Stop()
	close(tokens)
	wg.Wait()
	elapsed := time.Since(start)

	rep := r.report(elapsed)
	if sm, err := SampleServerMetrics(ctx, cfg.Client, cfg.BaseURL); err == nil {
		rep.ServerMetrics = sm
	} else {
		cfg.Logger.Log("load_metrics_sample_failed", obs.F("err", err.Error()))
	}
	cfg.Logger.Log("load_done",
		obs.F("requests", rep.Requests), obs.F("errors", rep.Errors),
		obs.F("achieved_rps", rep.AchievedRPS), obs.F("p99_ms", rep.OverallMS.P99))
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}
	return rep, nil
}

// pick draws one request kind from the mix weights.
func (r *runner) pick(rng *rand.Rand) kind {
	m := r.cfg.Mix
	n := rng.Intn(m.total())
	for i, w := range []int{m.Hot, m.Cold, m.Section, m.Upload, m.Dataset, m.Events, m.Dense} {
		if n < w {
			return kind(i)
		}
		n -= w
	}
	return kindHot // unreachable
}

// setupDataset generates the upload corpus once, prebuilds the multipart
// body every upload request replays, and uploads it once so dataset
// report requests have an id to hit.
func (r *runner) setupDataset(ctx context.Context) error {
	d, err := turnup.GenerateCtx(ctx, turnup.Config{Seed: r.cfg.Seed, Scale: r.cfg.UploadScale})
	if err != nil {
		return fmt.Errorf("load: generating upload corpus: %w", err)
	}
	var contracts, users bytes.Buffer
	if err := dataset.WriteContractsCSV(&contracts, d.Contracts); err != nil {
		return err
	}
	if err := dataset.WriteUsersCSV(&users, d.Users); err != nil {
		return err
	}
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for _, f := range []struct {
		field, name string
		data        []byte
	}{
		{"contracts", "contracts.csv", contracts.Bytes()},
		{"users", "users.csv", users.Bytes()},
	} {
		fw, err := mw.CreateFormFile(f.field, f.name)
		if err != nil {
			return err
		}
		if _, err := fw.Write(f.data); err != nil {
			return err
		}
	}
	if err := mw.Close(); err != nil {
		return err
	}
	r.uploadBody, r.uploadCT = body.Bytes(), mw.FormDataContentType()

	req, err := http.NewRequestWithContext(ctx, "POST", r.cfg.BaseURL+"/v1/datasets", bytes.NewReader(r.uploadBody))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", r.uploadCT)
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("load: seeding dataset: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("load: seeding dataset: status %d: %s", resp.StatusCode, b)
	}
	var uploaded struct {
		Dataset struct {
			ID string `json:"id"`
		} `json:"dataset"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&uploaded); err != nil || uploaded.Dataset.ID == "" {
		return fmt.Errorf("load: seeding dataset: bad upload response (%v)", err)
	}
	r.datasetID = uploaded.Dataset.ID
	return nil
}

// do issues one request of kind k and records its outcome.
func (r *runner) do(ctx context.Context, k kind) {
	var req *http.Request
	var err error
	switch k {
	case kindHot:
		req, err = http.NewRequestWithContext(ctx, "GET",
			fmt.Sprintf("%s/v1/report/%s?seed=%d&scale=%g&models=false",
				r.cfg.BaseURL, r.cfg.Sections[0], r.cfg.Seed, r.cfg.Scale), nil)
	case kindCold:
		// Unique seed per request: always a distinct cache key, so each
		// one exercises a cold pipeline run (on a fresh server).
		seed := r.cfg.Seed*1_000_000 + r.coldSeq.Add(1)
		req, err = http.NewRequestWithContext(ctx, "GET",
			fmt.Sprintf("%s/v1/report/%s?seed=%d&scale=%g&models=false",
				r.cfg.BaseURL, r.cfg.Sections[0], seed, r.cfg.Scale), nil)
	case kindSection:
		sec := r.cfg.Sections[int(r.secSeq.Add(1))%len(r.cfg.Sections)]
		req, err = http.NewRequestWithContext(ctx, "GET",
			fmt.Sprintf("%s/v1/report/%s?seed=%d&scale=%g&models=false",
				r.cfg.BaseURL, sec, r.cfg.Seed, r.cfg.Scale), nil)
	case kindUpload:
		req, err = http.NewRequestWithContext(ctx, "POST", r.cfg.BaseURL+"/v1/datasets", bytes.NewReader(r.uploadBody))
		if err == nil {
			req.Header.Set("Content-Type", r.uploadCT)
		}
	case kindDataset:
		req, err = http.NewRequestWithContext(ctx, "GET",
			fmt.Sprintf("%s/v1/report/%s?dataset=%s&models=false",
				r.cfg.BaseURL, r.cfg.Sections[0], r.datasetID), nil)
	case kindEvents:
		req, err = http.NewRequestWithContext(ctx, "POST",
			fmt.Sprintf("%s/v1/datasets/%s/events", r.cfg.BaseURL, r.datasetID),
			bytes.NewReader(r.eventBatch()))
		if err == nil {
			req.Header.Set("Content-Type", "application/x-ndjson")
		}
	case kindDense:
		// Cycle a dense keyspace disjoint from the hot and cold seed ranges:
		// with a budget smaller than DenseKeys results, the cache is in
		// continuous admit/evict, which is exactly the state the memory-bound
		// assertions sample at the end of the run.
		seed := r.cfg.Seed*10_000_000 + r.denseSeq.Add(1)%uint64(r.cfg.DenseKeys)
		req, err = http.NewRequestWithContext(ctx, "GET",
			fmt.Sprintf("%s/v1/report/%s?seed=%d&scale=%g&models=false",
				r.cfg.BaseURL, r.cfg.Sections[0], seed, r.cfg.Scale), nil)
	case kindWindow:
		req, err = http.NewRequestWithContext(ctx, "GET",
			fmt.Sprintf("%s/v1/report/%s?dataset=%s&window=30d&models=false",
				r.cfg.BaseURL, r.cfg.Sections[0], r.datasetID), nil)
	}
	st := &r.stats[k]
	st.requests.Add(1)
	if err != nil {
		st.errors.Add(1)
		return
	}
	id := fmt.Sprintf("hfload-%d", r.seq.Add(1))
	req.Header.Set("X-Request-Id", id)

	start := time.Now()
	resp, err := r.client.Do(req)
	dur := time.Since(start).Seconds()
	outcome := "ok"
	if err != nil {
		outcome = "error"
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 400 {
			outcome = "error"
		}
		if resp.Header.Get("X-Request-Id") != id {
			r.idBad.Add(1)
		}
		if shard := resp.Header.Get("X-Shard"); shard != "" {
			r.sawShard(shard)
		}
		if resp.Header.Get("X-Hedged") != "" {
			r.hedged.Add(1)
		}
		switch resp.Header.Get("X-Cache") {
		case "hit":
			st.hits.Add(1)
		case "miss":
			st.misses.Add(1)
		case "coalesced":
			st.coalesced.Add(1)
		}
	}
	if outcome == "error" {
		st.errors.Add(1)
	}
	r.reg.Histogram("load_request_seconds").Observe(dur)
	r.reg.Histogram(fmt.Sprintf(`load_request_seconds{route=%q,outcome=%q}`, routeNames[k], outcome)).Observe(dur)
	if k == kindEvents && outcome == "ok" {
		// Read-your-write: the windowed report right after an append lands
		// on the just-bumped generation, so report:window measures the
		// invalidate→recompute path rather than a steady cache hit.
		r.do(ctx, kindWindow)
	}
}

// eventBatch builds one small JSON-lines append: two fresh users and a
// completed public contract between them, created late in the COVID-19
// era. Sequential ids keep batches disjoint; concurrent workers may land
// batches out of creation order, which exercises the server's full-rebuild
// fallback alongside the in-order incremental path.
func (r *runner) eventBatch() []byte {
	n := r.evSeq.Add(1)
	maker := 5_000_000 + 2*n - 1
	taker := 5_000_000 + 2*n
	at := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(n) * time.Second)
	created := at.Format(time.RFC3339)
	done := at.Add(30 * time.Minute).Format(time.RFC3339)
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"kind":"user","id":%d,"joined":%q,"first_post":%q,"posts":1,"marketplace_posts":1,"reputation":1}`+"\n", maker, created, created)
	fmt.Fprintf(&b, `{"kind":"user","id":%d,"joined":%q,"first_post":%q,"posts":1,"marketplace_posts":1,"reputation":1}`+"\n", taker, created, created)
	fmt.Fprintf(&b, `{"kind":"contract","id":%d,"type":"EXCHANGE","maker":%d,"taker":%d,"thread":1,"created":%q,"decided":%q,"completed":%q,"status":"Complete","public":true,"maker_obligation":"btc","taker_obligation":"paypal transfer","maker_rating":1,"taker_rating":1}`+"\n",
		9_000_000+n, maker, taker, created, created, done)
	return b.Bytes()
}

// latencyOf summarises a histogram in milliseconds.
func latencyOf(h *obs.Histogram) Latency {
	const ms = 1000
	return Latency{
		P50:  h.Quantile(0.50) * ms,
		P95:  h.Quantile(0.95) * ms,
		P99:  h.Quantile(0.99) * ms,
		Mean: h.Mean() * ms,
		Max:  h.Max() * ms,
	}
}

// report assembles the run summary from the counters and histograms.
func (r *runner) report(elapsed time.Duration) *Report {
	rep := &Report{
		Version:             version.String(),
		Target:              r.cfg.BaseURL,
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		Seed:                r.cfg.Seed,
		Mix:                 r.cfg.Mix,
		DurationSeconds:     elapsed.Seconds(),
		TargetRPS:           r.cfg.RPS,
		MissedTicks:         r.missed.Load(),
		RequestIDMismatches: r.idBad.Load(),
		OverallMS:           latencyOf(r.reg.Histogram("load_request_seconds")),
		Hedged:              r.hedged.Load(),
	}
	r.shardMu.Lock()
	if len(r.shards) > 0 {
		rep.Shards = make(map[string]int64, len(r.shards))
		for s, n := range r.shards {
			rep.Shards[s] = n
		}
	}
	r.shardMu.Unlock()
	var hits, lookups int64
	for k, name := range routeNames {
		st := &r.stats[k]
		n := st.requests.Load()
		if n == 0 {
			continue
		}
		rr := RouteReport{
			Route:       name,
			Requests:    n,
			Errors:      st.errors.Load(),
			CacheHits:   st.hits.Load(),
			CacheMisses: st.misses.Load(),
			Coalesced:   st.coalesced.Load(),
			LatencyMS:   latencyOf(r.reg.Histogram(fmt.Sprintf(`load_request_seconds{route=%q,outcome="ok"}`, name))),
		}
		rr.ErrorRate = float64(rr.Errors) / float64(n)
		if served := rr.CacheHits + rr.CacheMisses + rr.Coalesced; served > 0 {
			rr.CacheHitRate = float64(rr.CacheHits) / float64(served)
		}
		rep.Routes = append(rep.Routes, rr)
		rep.Requests += n
		rep.Errors += rr.Errors
		hits += rr.CacheHits
		lookups += rr.CacheHits + rr.CacheMisses + rr.Coalesced
	}
	sort.Slice(rep.Routes, func(i, j int) bool { return rep.Routes[i].Route < rep.Routes[j].Route })
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	if lookups > 0 {
		rep.CacheHitRate = float64(hits) / float64(lookups)
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep
}

// ReadReport parses a BENCH_serve_load.json written by WriteReport — the
// gate's baseline loader.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("load: decoding report: %w", err)
	}
	return &rep, nil
}

// WriteReport writes the report as indented JSON.
func (rep *Report) WriteReport(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Gate compares this run against a baseline report: any route whose p99
// exceeds factor× the baseline's p99 (for routes present in both), or an
// overall p99 regression beyond the same factor, is an error — the CI
// load-smoke contract, mirroring bench-smoke's 2× rule. Sub-millisecond
// baselines are floored at 1ms so scheduler jitter on a hot cache path
// cannot flake the gate.
func (rep *Report) Gate(baseline *Report, factor float64) error {
	if factor <= 0 {
		factor = 2
	}
	const floorMS = 1.0
	var errs []error
	check := func(route string, now, base float64) {
		limit := base
		if limit < floorMS {
			limit = floorMS
		}
		limit *= factor
		if now > limit {
			errs = append(errs, fmt.Errorf("%s p99 %.2fms is %.2fx the %.2fms baseline (limit %.1fx)",
				route, now, now/base, base, factor))
		}
	}
	check("overall", rep.OverallMS.P99, baseline.OverallMS.P99)
	base := make(map[string]Latency, len(baseline.Routes))
	for _, rr := range baseline.Routes {
		base[rr.Route] = rr.LatencyMS
	}
	for _, rr := range rep.Routes {
		if b, ok := base[rr.Route]; ok {
			check(rr.Route, rr.LatencyMS.P99, b.P99)
		}
	}
	return errors.Join(errs...)
}

// CheckSLO enforces an absolute overall p99 ceiling (milliseconds).
func (rep *Report) CheckSLO(p99ms float64) error {
	if p99ms > 0 && rep.OverallMS.P99 > p99ms {
		return fmt.Errorf("load: overall p99 %.2fms exceeds the %.2fms SLO", rep.OverallMS.P99, p99ms)
	}
	return nil
}

// serverMetricPrefixes selects which of the target's metrics land in
// Report.ServerMetrics: runtime health plus every serve-layer cache
// series — the inputs of the heap-ceiling and cache-budget assertions and
// the gauges the benchmark snapshot archives.
var serverMetricPrefixes = []string{"runtime_", "serve_cache_", "serve_render_cache_", "serve_http_304"}

// SampleServerMetrics scrapes the target's /metrics JSON snapshot with
// gc=1 — the server garbage-collects and resamples its runtime gauges
// first, so heap_alloc reflects live bytes (retained caches, datasets),
// not floating garbage from the load just applied. Only scalar metrics
// matching serverMetricPrefixes are kept.
func SampleServerMetrics(ctx context.Context, client *http.Client, baseURL string) (map[string]float64, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/metrics?format=json&gc=1", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("load: sampling /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: sampling /metrics: status %d", resp.StatusCode)
	}
	var snap []struct {
		Name  string  `json:"name"`
		Kind  string  `json:"kind"`
		Value float64 `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("load: decoding /metrics snapshot: %w", err)
	}
	out := make(map[string]float64)
	for _, m := range snap {
		if m.Kind != "counter" && m.Kind != "gauge" {
			continue
		}
		for _, prefix := range serverMetricPrefixes {
			if strings.HasPrefix(m.Name, prefix) {
				out[m.Name] = m.Value
				break
			}
		}
	}
	return out, nil
}

// CheckHeapCeiling enforces an absolute end-of-run heap ceiling (bytes)
// over the post-GC runtime_heap_alloc_bytes sample — the CI memory-bound
// assertion: a byte-budgeted cache under a dense keyspace must leave the
// heap near its budget, not growing with the keyspace. A missing sample
// is an error, not a pass.
func (rep *Report) CheckHeapCeiling(maxBytes int64) error {
	if maxBytes <= 0 {
		return nil
	}
	heap, ok := rep.ServerMetrics["runtime_heap_alloc_bytes"]
	if !ok {
		return errors.New("load: heap ceiling set but no runtime_heap_alloc_bytes sample (target /metrics unreachable?)")
	}
	if int64(heap) > maxBytes {
		return fmt.Errorf("load: end-of-run heap %.1f MiB exceeds the %.1f MiB ceiling",
			heap/(1<<20), float64(maxBytes)/(1<<20))
	}
	return nil
}

// CheckCacheBudget asserts the serve-layer byte accounting held: the
// serve_cache_bytes gauge (and the render tier's) must not exceed its
// configured budget at end of run. Like CheckHeapCeiling, a missing
// sample fails.
func (rep *Report) CheckCacheBudget(resultBudget, renderBudget int64) error {
	check := func(name string, budget int64) error {
		if budget <= 0 {
			return nil
		}
		got, ok := rep.ServerMetrics[name]
		if !ok {
			return fmt.Errorf("load: budget set but no %s sample (target /metrics unreachable?)", name)
		}
		if int64(got) > budget {
			return fmt.Errorf("load: %s %.0f exceeds the %d-byte budget", name, got, budget)
		}
		return nil
	}
	return errors.Join(
		check("serve_cache_bytes", resultBudget),
		check("serve_render_cache_bytes", renderBudget),
	)
}
