// Tests for the load harness: an end-to-end run against a live httptest
// server (stub pipeline, real cache/dataset/observability layers), the
// report round-trip, and the p99 regression/SLO gates. Run with -race:
// the dispatcher, worker pool, and counters are the concurrency surface.
package load_test

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"turnup"
	"turnup/internal/load"
	"turnup/internal/obs"
	"turnup/internal/serve"
)

var (
	tinyOnce sync.Once
	tinyRes  *turnup.Results
	tinyErr  error
)

// tinyResults runs the real pipeline once at a small scale; the stub
// Runner hands the same results to every report request so load tests
// measure the serving layer, not the simulation.
func tinyResults(t testing.TB) *turnup.Results {
	t.Helper()
	tinyOnce.Do(func() {
		var d *turnup.Dataset
		if d, tinyErr = turnup.Generate(turnup.Config{Seed: 7, Scale: 0.02}); tinyErr != nil {
			return
		}
		tinyRes, tinyErr = turnup.Run(d, turnup.RunOptions{Seed: 7, SkipModels: true})
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyRes
}

// loadServer boots a full serve.Server (stub pipeline) for the harness
// to drive.
func loadServer(t *testing.T) *httptest.Server {
	t.Helper()
	res := tinyResults(t)
	srv := serve.New(serve.Options{
		CacheSize: 32,
		MaxRuns:   4,
		Runner: func(ctx context.Context, p serve.Params, _ *serve.Snapshot) (*turnup.Results, error) {
			return res, nil
		},
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestRunEndToEnd drives the default mix against a live server and
// checks the report: every request accounted for, zero errors, zero
// request-id mismatches, hot traffic hitting the cache, and a report
// that survives the write/read round-trip and passes its own gate.
func TestRunEndToEnd(t *testing.T) {
	ts := loadServer(t)
	reg := obs.NewRegistry()
	rep, err := load.Run(context.Background(), load.Config{
		BaseURL:     ts.URL,
		RPS:         200,
		Duration:    600 * time.Millisecond,
		Workers:     8,
		Seed:        1,
		Scale:       0.02,
		UploadScale: 0.01,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d of %d requests:\n%+v", rep.Errors, rep.Requests, rep.Routes)
	}
	if rep.RequestIDMismatches != 0 {
		t.Fatalf("request-id mismatches = %d: server broke the X-Request-Id echo contract", rep.RequestIDMismatches)
	}
	if rep.AchievedRPS <= 0 {
		t.Fatalf("achieved RPS = %v", rep.AchievedRPS)
	}
	if rep.CacheHitRate == 0 {
		t.Fatalf("cache hit rate = 0; hot requests should repeat one cache key (routes %+v)", rep.Routes)
	}
	if rep.OverallMS.P99 <= 0 || rep.OverallMS.P99 < rep.OverallMS.P50 {
		t.Fatalf("latency summary out of order: %+v", rep.OverallMS)
	}
	if rep.Version == "" || rep.Target != ts.URL || rep.Seed != 1 {
		t.Fatalf("report identity fields: version=%q target=%q seed=%d", rep.Version, rep.Target, rep.Seed)
	}
	var total int64
	seen := map[string]bool{}
	for _, rr := range rep.Routes {
		total += rr.Requests
		seen[rr.Route] = true
		if rr.Requests > 0 && rr.Errors == 0 && rr.LatencyMS.P99 < rr.LatencyMS.P50 {
			t.Errorf("route %s latency out of order: %+v", rr.Route, rr.LatencyMS)
		}
	}
	if total != rep.Requests {
		t.Fatalf("route totals %d != overall %d", total, rep.Requests)
	}
	// ~120 requests through a 6/1/2/1/2 mix: every kind should appear.
	for _, want := range []string{"report:hot", "report:cold", "report:section", "datasets:upload", "report:dataset"} {
		if !seen[want] {
			t.Errorf("mix never issued route %s (routes %v)", want, seen)
		}
	}

	// The harness's own histograms are registered per route and outcome.
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for _, m := range snap {
		names = append(names, m.Name)
	}
	if !contains(names, `load_request_seconds{route="report:hot",outcome="ok"}`) {
		t.Errorf("registry missing hot-route histogram; have %v", names)
	}

	// Round-trip and self-gate.
	var buf strings.Builder
	if err := rep.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := load.ReadReport(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Requests != rep.Requests || back.Mix != rep.Mix || len(back.Routes) != len(rep.Routes) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, rep)
	}
	if math.Abs(back.OverallMS.P99-rep.OverallMS.P99) > 1e-9 {
		t.Fatalf("round-trip p99: %v vs %v", back.OverallMS.P99, rep.OverallMS.P99)
	}
	if err := rep.Gate(back, 2); err != nil {
		t.Fatalf("report failed its own gate: %v", err)
	}
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// TestRunContextCancel: cancelling mid-run still yields a report for the
// work done so far, plus the context error.
func TestRunContextCancel(t *testing.T) {
	ts := loadServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	rep, err := load.Run(ctx, load.Config{
		BaseURL:  ts.URL,
		RPS:      100,
		Duration: 10 * time.Second, // cut short by ctx
		Workers:  4,
		Mix:      load.Mix{Hot: 1}, // no upload setup cost
	})
	if err == nil {
		t.Fatal("expected a context error from a cancelled run")
	}
	if rep == nil || rep.Requests == 0 {
		t.Fatalf("cancelled run should still report partial work: %+v", rep)
	}
}

// TestWaitReady: not-ready targets time out with the cause, live ones
// return promptly.
func TestWaitReady(t *testing.T) {
	var ready bool
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ok := ready
		mu.Unlock()
		if !ok {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	err := load.WaitReady(context.Background(), nil, ts.URL, 300*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("not-ready wait error = %v, want the 503 cause", err)
	}
	mu.Lock()
	ready = true
	mu.Unlock()
	if err := load.WaitReady(context.Background(), nil, ts.URL, 2*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestGate pins the regression contract: >factor× p99 per route or
// overall fails; sub-millisecond baselines are floored at 1ms; routes
// missing from the baseline are skipped.
func TestGate(t *testing.T) {
	mk := func(overall float64, routes map[string]float64) *load.Report {
		rep := &load.Report{OverallMS: load.Latency{P99: overall}}
		for name, p99 := range routes {
			rep.Routes = append(rep.Routes, load.RouteReport{Route: name, LatencyMS: load.Latency{P99: p99}})
		}
		return rep
	}
	baseline := mk(10, map[string]float64{"report:hot": 0.2, "report:cold": 40})

	if err := mk(19, map[string]float64{"report:hot": 0.3, "report:cold": 75}).Gate(baseline, 2); err != nil {
		t.Fatalf("within-budget run failed the gate: %v", err)
	}
	if err := mk(21, nil).Gate(baseline, 2); err == nil || !strings.Contains(err.Error(), "overall") {
		t.Fatalf("overall regression not caught: %v", err)
	}
	if err := mk(10, map[string]float64{"report:cold": 90}).Gate(baseline, 2); err == nil || !strings.Contains(err.Error(), "report:cold") {
		t.Fatalf("route regression not caught: %v", err)
	}
	// 0.2ms → floored to 1ms: 1.9ms passes at factor 2, 2.5ms fails.
	if err := mk(10, map[string]float64{"report:hot": 1.9}).Gate(baseline, 2); err != nil {
		t.Fatalf("sub-floor jitter flaked the gate: %v", err)
	}
	if err := mk(10, map[string]float64{"report:hot": 2.5}).Gate(baseline, 2); err == nil {
		t.Fatal("above-floor regression not caught")
	}
	// Routes new in this run have no baseline: skipped, not failed.
	if err := mk(10, map[string]float64{"report:dataset": 500}).Gate(baseline, 2); err != nil {
		t.Fatalf("baseline-less route should be skipped: %v", err)
	}
}

func TestCheckSLO(t *testing.T) {
	rep := &load.Report{OverallMS: load.Latency{P99: 120}}
	if err := rep.CheckSLO(0); err != nil {
		t.Fatalf("disabled SLO: %v", err)
	}
	if err := rep.CheckSLO(200); err != nil {
		t.Fatalf("within SLO: %v", err)
	}
	if err := rep.CheckSLO(100); err == nil {
		t.Fatal("blown SLO not caught")
	}
}
