// The golden incremental-index test: a corpus is replayed as a base
// prefix plus event batches, and at every generation the report rendered
// through Index.Append must be byte-identical to one rebuilt from
// scratch — at every worker count. This is the contract the serving
// tier's live-ingest path (POST /v1/datasets/{id}/events) rests on; it
// lives in an external test package so it can render through the public
// facade exactly as hfserved does.
package analysis_test

import (
	"reflect"
	"runtime"
	"sort"
	"testing"

	"turnup"
	"turnup/internal/analysis"
	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/ingest"
	"turnup/internal/market"
	"turnup/internal/rng"
)

// renderSuite runs the descriptive suite (SkipModels: the model tier
// re-fits from raw groups and only slows the comparison down) and
// renders every section.
func renderSuite(t *testing.T, d *dataset.Dataset, ix *analysis.Index, workers int) string {
	t.Helper()
	res, err := analysis.RunSuite(d, analysis.SuiteOptions{
		SkipModels: true,
		Workers:    workers,
		Index:      ix,
	}, rng.New(1))
	if err != nil {
		t.Fatalf("RunSuite (workers=%d): %v", workers, err)
	}
	return turnup.RenderAll(res)
}

func TestIncrementalIndexGolden(t *testing.T) {
	full, _, err := market.Generate(market.Config{Seed: 29, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the corpus in event order: contracts sorted by creation time
	// (ties by id) so every batch is an in-order suffix extension.
	contracts := append([]*forum.Contract(nil), full.Contracts...)
	sort.SliceStable(contracts, func(i, j int) bool {
		if !contracts[i].Created.Equal(contracts[j].Created) {
			return contracts[i].Created.Before(contracts[j].Created)
		}
		return contracts[i].ID < contracts[j].ID
	})
	if len(contracts) < 40 {
		t.Fatalf("corpus too small to split: %d contracts", len(contracts))
	}
	base := len(contracts) / 2
	d := &dataset.Dataset{
		Users:     full.Users,
		Threads:   full.Threads,
		Posts:     full.Posts,
		Contracts: contracts[:base:base],
		Ledger:    full.Ledger,
	}
	ix := analysis.NewIndex(d)

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	baseReport := renderSuite(t, d, ix, 1)

	// Three batches: two thirds of the remainder in two chunks, then the
	// tail — uneven sizes so batch boundaries never align with months.
	rest := contracts[base:]
	cuts := []int{len(rest) / 3, 2 * len(rest) / 3, len(rest)}
	prev := 0
	parentD, parentIx := d, ix
	for gen, cut := range cuts {
		batch := rest[prev:cut]
		prev = cut
		nd := ingest.Apply(parentD, &ingest.Batch{Contracts: batch})
		nix := parentIx.Append(nd, batch)

		assertIndexMatchesRebuild(t, nd, nix)

		// One from-scratch render is the golden reference; the incremental
		// index must reproduce it byte-for-byte at every worker count. The
		// reference must bypass the dataset's shared group cache (Append
		// installed the groups under test there), so it pins RebuildIndex.
		want := renderSuite(t, nd, analysis.RebuildIndex(nd), 1)
		for _, w := range workerCounts {
			if got := renderSuite(t, nd, nix, w); got != want {
				t.Fatalf("generation %d workers %d: incremental report diverges from rebuild", gen+2, w)
			}
		}
		parentD, parentIx = nd, nix
	}

	// COW: the base snapshot must render today exactly as it did before
	// any append — three generations later, nothing leaked backwards.
	if got := renderSuite(t, d, ix, 1); got != baseReport {
		t.Fatal("appends mutated the parent snapshot: base report changed")
	}

	// Out-of-order append: a contract created before the watermark dirties
	// history, so Append falls back to a rebuild — and must still match.
	early := *contracts[base] // re-use a real contract's shape
	early.ID = contracts[len(contracts)-1].ID + 1
	early.Created = contracts[0].Created
	ooo := []*forum.Contract{&early}
	nd := ingest.Apply(parentD, &ingest.Batch{Contracts: ooo})
	nix := parentIx.Append(nd, ooo)
	assertIndexMatchesRebuild(t, nd, nix)
	if got, want := renderSuite(t, nd, nix, 4), renderSuite(t, nd, analysis.RebuildIndex(nd), 1); got != want {
		t.Fatal("out-of-order append: incremental report diverges from rebuild")
	}
}

// assertIndexMatchesRebuild pins the appended index's derived groups to
// a from-scratch rebuild over the same corpus — structural identity, not
// just report identity. RebuildIndex, not NewIndex: the latter would read
// the shared cache slot Append just installed the groups under test into.
func assertIndexMatchesRebuild(t *testing.T, d *dataset.Dataset, got *analysis.Index) {
	t.Helper()
	want := analysis.RebuildIndex(d)
	if !reflect.DeepEqual(got.ByMonth(), want.ByMonth()) {
		t.Fatal("ByMonth diverges from rebuild")
	}
	if !reflect.DeepEqual(got.CompletedByMonth(), want.CompletedByMonth()) {
		t.Fatal("CompletedByMonth diverges from rebuild")
	}
	if !reflect.DeepEqual(got.Completed(), want.Completed()) {
		t.Fatal("Completed diverges from rebuild")
	}
	if !reflect.DeepEqual(got.Public(), want.Public()) {
		t.Fatal("Public diverges from rebuild")
	}
	if !reflect.DeepEqual(got.CompletedPublic(), want.CompletedPublic()) {
		t.Fatal("CompletedPublic diverges from rebuild")
	}
	for _, e := range dataset.Eras {
		if !reflect.DeepEqual(got.InEra(e), want.InEra(e)) {
			t.Fatalf("InEra(%v) diverges from rebuild", e)
		}
	}
	if !reflect.DeepEqual(got.UserContracts(), want.UserContracts()) {
		t.Fatal("UserContracts diverges from rebuild")
	}
	if !reflect.DeepEqual(got.FirstEraOfUse(), want.FirstEraOfUse()) {
		t.Fatal("FirstEraOfUse diverges from rebuild")
	}
	if !reflect.DeepEqual(got.MoneyContracts(), want.MoneyContracts()) {
		t.Fatal("MoneyContracts diverges from rebuild")
	}
	for _, c := range d.CompletedPublic() {
		if !reflect.DeepEqual(got.MakerCategories(c), want.MakerCategories(c)) {
			t.Fatalf("contract %d: MakerCategories diverge from rebuild", c.ID)
		}
		if !reflect.DeepEqual(got.TakerCategories(c), want.TakerCategories(c)) {
			t.Fatalf("contract %d: TakerCategories diverge from rebuild", c.ID)
		}
	}
	if !got.MaxCreated().Equal(want.MaxCreated()) {
		t.Fatalf("MaxCreated %v diverges from rebuild %v", got.MaxCreated(), want.MaxCreated())
	}
}
