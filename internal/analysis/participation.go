package analysis

import (
	"sort"

	"turnup/internal/dataset"
	"turnup/internal/forum"
)

// ParticipationStats reproduces the §4.3 participation text: "Most makers
// initiate only a small number of contracts, with 49% making one
// transaction, 16% making two, and only 5% exceeding 20. ... two users
// initiating over 700 contracts. Equally, most takers accept few
// contracts... two takers accepting more than 9,000 contracts."
type ParticipationStats struct {
	Makers SideParticipation
	Takers SideParticipation
}

// SideParticipation summarises one side's per-user transaction counts.
type SideParticipation struct {
	Users       int     // users appearing on this side at least once
	ShareOne    float64 // fraction with exactly one transaction
	ShareTwo    float64 // fraction with exactly two
	ShareOver20 float64 // fraction with more than 20
	Top         []int   // the five largest per-user counts, descending
	MaxCount    int
	MedianCount float64
}

// Participation computes the maker/taker repeat-transaction distributions
// over all contracts (the taker side counts entered deals only).
func Participation(d *dataset.Dataset) ParticipationStats { return participationIdx(NewIndex(d)) }

func participationIdx(ix *Index) ParticipationStats {
	makers := map[forum.UserID]int{}
	takers := map[forum.UserID]int{}
	for u, cs := range ix.UserContracts() {
		for _, c := range cs {
			if c.Maker == u {
				makers[u]++
			}
			if c.Taker == u {
				switch c.Status {
				case forum.StatusPending, forum.StatusDenied, forum.StatusExpired:
				default:
					takers[u]++
				}
			}
		}
	}
	return ParticipationStats{
		Makers: sideStats(makers),
		Takers: sideStats(takers),
	}
}

func sideStats(counts map[forum.UserID]int) SideParticipation {
	s := SideParticipation{Users: len(counts)}
	if len(counts) == 0 {
		return s
	}
	all := make([]int, 0, len(counts))
	var one, two, over20 int
	for _, n := range counts {
		all = append(all, n)
		switch {
		case n == 1:
			one++
		case n == 2:
			two++
		}
		if n > 20 {
			over20++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	total := float64(len(all))
	s.ShareOne = float64(one) / total
	s.ShareTwo = float64(two) / total
	s.ShareOver20 = float64(over20) / total
	s.MaxCount = all[0]
	top := 5
	if top > len(all) {
		top = len(all)
	}
	s.Top = append([]int(nil), all[:top]...)
	mid := len(all) / 2
	if len(all)%2 == 1 {
		s.MedianCount = float64(all[mid])
	} else {
		s.MedianCount = float64(all[mid-1]+all[mid]) / 2
	}
	return s
}

// DisputeTrend reproduces the §5.1 dispute dynamics: the monthly share of
// created contracts that end disputed, which sits near 1% for most of the
// study but peaks at 2-3% in the last six months of SET-UP (the Tuckman
// "storming" signal) and halves at the start of STABLE.
type DisputeTrend struct {
	Share [dataset.NumMonths]float64
}

// Disputes computes the monthly disputed share.
func Disputes(d *dataset.Dataset) DisputeTrend {
	var disputed, total [dataset.NumMonths]float64
	for _, c := range d.Contracts {
		m := dataset.MonthOf(c.Created)
		total[m]++
		if c.Status == forum.StatusDisputed {
			disputed[m]++
		}
	}
	var t DisputeTrend
	for m := range t.Share {
		if total[m] > 0 {
			t.Share[m] = disputed[m] / total[m]
		}
	}
	return t
}

// EraMean returns the mean monthly disputed share within an era.
func (t DisputeTrend) EraMean(e dataset.Era) float64 {
	months := e.Months()
	if len(months) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range months {
		sum += t.Share[m]
	}
	return sum / float64(len(months))
}

// LateSetupMean returns the mean disputed share over the last six months
// of SET-UP (2018-09 .. 2019-02), the storming window.
func (t DisputeTrend) LateSetupMean() float64 {
	sum := 0.0
	for m := 3; m <= 8; m++ {
		sum += t.Share[m]
	}
	return sum / 6
}
