package analysis

import (
	"sort"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/stats"
)

// ConcentrationCurve is Figure 5: for each top-percentile of users (or
// threads) ranked by participation, the share of contracts they are
// involved in.
type ConcentrationCurve struct {
	// TopFrac[i] is the fraction of entities in the top i+1 ranks;
	// Share[i] is the fraction of contracts involving at least one of them.
	TopFrac []float64
	Share   []float64
}

// ShareAtTop interpolates the share covered by the top q fraction.
func (c ConcentrationCurve) ShareAtTop(q float64) float64 {
	for i, f := range c.TopFrac {
		if f >= q {
			return c.Share[i]
		}
	}
	if len(c.Share) == 0 {
		return 0
	}
	return c.Share[len(c.Share)-1]
}

// Concentration holds the four curves of Figure 5.
type Concentration struct {
	UsersCreated     ConcentrationCurve
	UsersCompleted   ConcentrationCurve
	ThreadsCreated   ConcentrationCurve
	ThreadsCompleted ConcentrationCurve
}

// Concentrate computes Figure 5. User curves rank users by the number of
// contracts they are party to and report, for each prefix of the ranking,
// the fraction of contracts involving at least one ranked user. Thread
// curves do the same over thread-linked contracts.
func Concentrate(d *dataset.Dataset) Concentration { return concentrateIdx(NewIndex(d)) }

func concentrateIdx(ix *Index) Concentration {
	completed := ix.Completed()
	return Concentration{
		UsersCreated:     userCurve(ix.D.Contracts),
		UsersCompleted:   userCurve(completed),
		ThreadsCreated:   threadCurve(ix.D.Contracts),
		ThreadsCompleted: threadCurve(completed),
	}
}

func userCurve(cs []*forum.Contract) ConcentrationCurve {
	counts := map[forum.UserID]int{}
	for _, c := range cs {
		counts[c.Maker]++
		counts[c.Taker]++
	}
	type entry struct {
		id forum.UserID
		n  int
	}
	ranked := make([]entry, 0, len(counts))
	for id, n := range counts {
		ranked = append(ranked, entry{id, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].id < ranked[j].id
	})

	// A contract is covered once either party enters the ranking prefix —
	// i.e. at the smaller of its two parties' ranks. Histogram contracts
	// by that rank and prefix-sum, instead of materialising a per-user
	// contract-index multimap. The counts map is reused as the rank table
	// (every ranked user is a counts key, and counts are no longer needed).
	rankOf := counts
	for i, e := range ranked {
		rankOf[e.id] = i
	}
	coveredAt := make([]int, len(ranked))
	for _, c := range cs {
		r := rankOf[c.Maker]
		if tr := rankOf[c.Taker]; tr < r {
			r = tr
		}
		coveredAt[r]++
	}
	covered := 0
	curve := ConcentrationCurve{
		TopFrac: make([]float64, len(ranked)),
		Share:   make([]float64, len(ranked)),
	}
	for i := range ranked {
		covered += coveredAt[i]
		curve.TopFrac[i] = float64(i+1) / float64(len(ranked))
		if len(cs) > 0 {
			curve.Share[i] = float64(covered) / float64(len(cs))
		}
	}
	return curve
}

func threadCurve(cs []*forum.Contract) ConcentrationCurve {
	counts := map[forum.ThreadID]int{}
	linked := 0
	for _, c := range cs {
		if c.Thread != 0 {
			counts[c.Thread]++
			linked++
		}
	}
	ns := make([]int, 0, len(counts))
	for _, n := range counts {
		ns = append(ns, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ns)))
	curve := ConcentrationCurve{
		TopFrac: make([]float64, len(ns)),
		Share:   make([]float64, len(ns)),
	}
	acc := 0
	for i, n := range ns {
		acc += n
		curve.TopFrac[i] = float64(i+1) / float64(len(ns))
		if linked > 0 {
			curve.Share[i] = float64(acc) / float64(linked)
		}
	}
	return curve
}

// KeyShare is Figure 6: the monthly share of contracts involving that
// month's key (top-5%) members and key threads.
type KeyShare struct {
	MemberCreated   [dataset.NumMonths]float64
	MemberCompleted [dataset.NumMonths]float64
	ThreadCreated   [dataset.NumMonths]float64
	ThreadCompleted [dataset.NumMonths]float64
}

// KeyShares computes Figure 6. Key members and key threads are recomputed
// per month, as the paper notes.
func KeyShares(d *dataset.Dataset) KeyShare { return keySharesIdx(NewIndex(d)) }

func keySharesIdx(ix *Index) KeyShare {
	var r KeyShare
	byMonth := ix.ByMonth()
	completedByMonth := ix.CompletedByMonth()
	for m := 0; m < dataset.NumMonths; m++ {
		r.MemberCreated[m] = keyMemberShare(byMonth[m])
		r.MemberCompleted[m] = keyMemberShare(completedByMonth[m])
		r.ThreadCreated[m] = keyThreadShare(byMonth[m])
		r.ThreadCompleted[m] = keyThreadShare(completedByMonth[m])
	}
	return r
}

func keyMemberShare(cs []*forum.Contract) float64 {
	if len(cs) == 0 {
		return 0
	}
	curve := userCurve(cs)
	return curve.ShareAtTop(0.05)
}

func keyThreadShare(cs []*forum.Contract) float64 {
	curve := threadCurve(cs)
	if len(curve.Share) == 0 {
		return 0
	}
	return curve.ShareAtTop(0.05)
}

// Centralisation is the monthly Gini coefficient of per-user contract
// participation — a single-number view of §4.2's "the market is becoming
// more centralised over time around influential users".
type Centralisation struct {
	Gini [dataset.NumMonths]float64
}

// CentralisationTrend computes the monthly participation Gini.
func CentralisationTrend(d *dataset.Dataset) Centralisation {
	return centralisationTrendIdx(NewIndex(d))
}

func centralisationTrendIdx(ix *Index) Centralisation {
	var out Centralisation
	byMonth := ix.ByMonth()
	for m := 0; m < dataset.NumMonths; m++ {
		counts := map[forum.UserID]float64{}
		for _, c := range byMonth[m] {
			counts[c.Maker]++
			counts[c.Taker]++
		}
		weights := make([]float64, 0, len(counts))
		for _, v := range counts {
			weights = append(weights, v)
		}
		out.Gini[m] = stats.Gini(weights)
	}
	return out
}

// EraMean returns the mean monthly Gini within an era.
func (c Centralisation) EraMean(e dataset.Era) float64 {
	months := e.Months()
	if len(months) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range months {
		sum += c.Gini[m]
	}
	return sum / float64(len(months))
}
