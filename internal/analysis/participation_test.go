package analysis

import (
	"testing"

	"turnup/internal/dataset"
)

func TestParticipationSectionFourThree(t *testing.T) {
	d := corpus(t)
	p := Participation(d)
	if p.Makers.Users == 0 || p.Takers.Users == 0 {
		t.Fatal("no participants")
	}
	// Most makers initiate one transaction (paper: 49%); a sizeable block
	// makes two (16%); few exceed 20 (5%).
	if p.Makers.ShareOne < 0.30 || p.Makers.ShareOne > 0.70 {
		t.Errorf("maker one-transaction share = %.3f, want ~0.49", p.Makers.ShareOne)
	}
	if p.Makers.ShareTwo < 0.05 || p.Makers.ShareTwo > 0.35 {
		t.Errorf("maker two-transaction share = %.3f, want ~0.16", p.Makers.ShareTwo)
	}
	if p.Makers.ShareOver20 > 0.15 {
		t.Errorf("maker >20 share = %.3f, want small", p.Makers.ShareOver20)
	}
	// The taker tail is far longer than the maker tail (paper: two takers
	// above 9,000 vs two makers above 700).
	if p.Takers.MaxCount <= p.Makers.MaxCount {
		t.Errorf("taker max %d not above maker max %d", p.Takers.MaxCount, p.Makers.MaxCount)
	}
	// Median user on both sides is a one-or-two-timer.
	if p.Makers.MedianCount > 3 || p.Takers.MedianCount > 3 {
		t.Errorf("medians: makers %.1f takers %.1f", p.Makers.MedianCount, p.Takers.MedianCount)
	}
	// Shares are consistent.
	for _, side := range []SideParticipation{p.Makers, p.Takers} {
		if side.ShareOne+side.ShareTwo+side.ShareOver20 > 1.0001 {
			t.Errorf("inconsistent shares: %+v", side)
		}
		if len(side.Top) == 0 || side.Top[0] != side.MaxCount {
			t.Errorf("top list inconsistent: %+v", side)
		}
		for i := 1; i < len(side.Top); i++ {
			if side.Top[i] > side.Top[i-1] {
				t.Errorf("top list not sorted: %v", side.Top)
			}
		}
	}
}

func TestParticipationEmpty(t *testing.T) {
	d := dataset.New()
	p := Participation(d)
	if p.Makers.Users != 0 || p.Takers.Users != 0 {
		t.Errorf("empty dataset participation: %+v", p)
	}
}

func TestDisputesStormingWindow(t *testing.T) {
	d := corpus(t)
	tr := Disputes(d)
	late := tr.LateSetupMean()
	stable := tr.EraMean(dataset.EraStable)
	if late < 1.4*stable {
		t.Errorf("late SET-UP dispute share %.4f not elevated vs STABLE %.4f", late, stable)
	}
	// The storming peak sits in the paper's 2-3% band; STABLE near 1%.
	if late < 0.012 || late > 0.04 {
		t.Errorf("late SET-UP dispute share = %.4f, want ~0.02-0.03", late)
	}
	if stable < 0.004 || stable > 0.025 {
		t.Errorf("STABLE dispute share = %.4f, want ~0.01", stable)
	}
	for m, s := range tr.Share {
		if s < 0 || s > 1 {
			t.Fatalf("month %d share %v", m, s)
		}
	}
}
