package analysis

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"turnup/internal/obs"
	"turnup/internal/rng"
)

// TestStageDAGIsValid pins the declared DAG's structural invariants: 29
// stages, unique names, every dep declared, declaration order topological
// (so Stages() is a valid schedule), no cycles, and the deprecated
// StageNames alias derived from it.
func TestStageDAGIsValid(t *testing.T) {
	stages := Stages()
	if len(stages) != 29 {
		t.Fatalf("Stages() = %d entries, want 29", len(stages))
	}
	pos := map[string]int{}
	for i, st := range stages {
		if _, dup := pos[st.Name]; dup {
			t.Fatalf("duplicate stage %q", st.Name)
		}
		pos[st.Name] = i
	}
	for i, st := range stages {
		for _, dep := range st.Deps {
			j, ok := pos[dep]
			if !ok {
				t.Errorf("stage %q dep %q undeclared", st.Name, dep)
				continue
			}
			if j >= i {
				t.Errorf("stage %q (pos %d) depends on %q (pos %d): order not topological", st.Name, i, dep, j)
			}
		}
	}
	// Kahn's algorithm must consume every stage — a cycle would leave some.
	indeg := map[string]int{}
	dependents := map[string][]string{}
	for _, st := range stages {
		indeg[st.Name] += 0
		for _, dep := range st.Deps {
			indeg[st.Name]++
			dependents[dep] = append(dependents[dep], st.Name)
		}
	}
	var queue []string
	for _, st := range stages {
		if indeg[st.Name] == 0 {
			queue = append(queue, st.Name)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		seen++
		for _, d := range dependents[n] {
			if indeg[d]--; indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if seen != len(stages) {
		t.Errorf("topological sort consumed %d of %d stages: cycle in DAG", seen, len(stages))
	}
	// The deprecated alias is exactly the DAG's name sequence.
	names := make([]string, len(stages))
	for i, st := range stages {
		names[i] = st.Name
	}
	if !reflect.DeepEqual(names, StageNames) {
		t.Errorf("StageNames diverged from Stages():\n%v\nvs\n%v", StageNames, names)
	}
	// The declared cross-stage reads.
	if !reflect.DeepEqual(stages[pos["ValueTrend"]].Deps, []string{"Values"}) {
		t.Errorf("ValueTrend deps = %v", stages[pos["ValueTrend"]].Deps)
	}
	if !reflect.DeepEqual(stages[pos["Flows"]].Deps, []string{"LatentClasses"}) {
		t.Errorf("Flows deps = %v", stages[pos["Flows"]].Deps)
	}
}

// TestSelectStages pins subset resolution: transitive closure over deps,
// table-order output, unknown-name and model-with-SkipModels errors.
func TestSelectStages(t *testing.T) {
	names := func(sel []int) []string {
		out := make([]string, len(sel))
		for i, idx := range sel {
			out[i] = stageTable[idx].name
		}
		return out
	}

	sel, err := selectStages([]string{"ValueTrend"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(sel); !reflect.DeepEqual(got, []string{"Values", "ValueTrend"}) {
		t.Errorf("ValueTrend closure = %v", got)
	}

	sel, err = selectStages([]string{"Flows", "Taxonomy"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(sel); !reflect.DeepEqual(got, []string{"Taxonomy", "LatentClasses", "Flows"}) {
		t.Errorf("Flows+Taxonomy closure = %v", got)
	}

	if _, err := selectStages([]string{"NoSuchStage"}, false); err == nil ||
		!strings.Contains(err.Error(), "unknown stage") {
		t.Errorf("unknown stage error = %v", err)
	}
	if _, err := selectStages([]string{"Flows"}, true); err == nil ||
		!strings.Contains(err.Error(), "SkipModels") {
		t.Errorf("model-with-SkipModels error = %v", err)
	}

	all, err := selectStages(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(stageTable) {
		t.Errorf("nil request selected %d of %d stages", len(all), len(stageTable))
	}
	descr, err := selectStages(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(descr) != len(stageTable)-5 {
		t.Errorf("SkipModels selected %d stages, want %d", len(descr), len(stageTable)-5)
	}
}

// TestSchedulerStageSubset runs a real corpus through a stage subset and
// checks exactly the closure ran: requested slots filled, others zero.
func TestSchedulerStageSubset(t *testing.T) {
	d := smallCorpus(t)
	res, err := RunSuiteCtx(context.Background(), d,
		SuiteOptions{Stages: []string{"ValueTrend"}, Workers: 4}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Values.TotalUSD <= 0 {
		t.Error("Values dep not run for ValueTrend subset")
	}
	if len(res.ValueTrend.ByType) == 0 {
		t.Error("ValueTrend not computed")
	}
	if res.Taxonomy.Total != 0 {
		t.Error("Taxonomy ran although not requested")
	}
	if res.LTM != nil {
		t.Error("model stages ran although not requested")
	}
}

// TestSchedulerDeterministicAcrossWorkers runs the full suite (models
// included, so both forked RNG streams are exercised) at several worker
// counts and requires identical results.
func TestSchedulerDeterministicAcrossWorkers(t *testing.T) {
	d := smallCorpus(t)
	run := func(workers int) *Suite {
		t.Helper()
		res, err := RunSuiteCtx(context.Background(), d,
			SuiteOptions{LatentClassK: 6, Workers: workers}, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if got.Values.TotalUSD != base.Values.TotalUSD {
			t.Errorf("Workers=%d: Values.TotalUSD %v != %v", w, got.Values.TotalUSD, base.Values.TotalUSD)
		}
		if got.LTM.Fit.LogLik != base.LTM.Fit.LogLik {
			t.Errorf("Workers=%d: LTM log-lik %v != %v", w, got.LTM.Fit.LogLik, base.LTM.Fit.LogLik)
		}
		if got.ColdStart.OutlierCount != base.ColdStart.OutlierCount {
			t.Errorf("Workers=%d: cold-start outliers %d != %d", w, got.ColdStart.OutlierCount, base.ColdStart.OutlierCount)
		}
		if !reflect.DeepEqual(got.Flows, base.Flows) {
			t.Errorf("Workers=%d: flows diverged", w)
		}
	}
}

// TestSchedulerCancellation: a cancelled context aborts before any stage
// runs, and cancellation mid-run surfaces context.Canceled after draining.
func TestSchedulerCancellation(t *testing.T) {
	d := smallCorpus(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSuiteCtx(ctx, d, SuiteOptions{SkipModels: true}, rng.New(1)); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	opts := SuiteOptions{
		SkipModels: true,
		Workers:    2,
		Progress:   func(string) { cancel() }, // cancel as soon as the first stage starts
	}
	if _, err := RunSuiteCtx(ctx, d, opts, rng.New(1)); !errors.Is(err, context.Canceled) {
		t.Errorf("mid-run cancel: err = %v, want context.Canceled", err)
	}
}

// TestSchedulerObservability pins the obs contract under parallelism: one
// span per stage under analysis/RunSuite carrying a worker attr, the
// stage histogram/counter, and the in-flight gauge back at zero.
func TestSchedulerObservability(t *testing.T) {
	d := smallCorpus(t)
	tr := obs.NewTracer("sched")
	reg := obs.NewRegistry()
	var stages []string
	_, err := RunSuiteCtx(context.Background(), d, SuiteOptions{
		SkipModels: true,
		Workers:    4,
		Trace:      tr,
		Metrics:    reg,
		Progress:   func(s string) { stages = append(stages, s) },
	}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Finish()
	descriptive := len(stageTable) - 5
	if len(stages) != descriptive {
		t.Errorf("progress callback fired %d times, want %d", len(stages), descriptive)
	}
	byPath := map[string]obs.Record{}
	for _, rec := range obs.Flatten(root) {
		byPath[rec.Path] = rec
	}
	for _, st := range stageTable {
		if st.model {
			continue
		}
		rec, ok := byPath["sched/analysis/RunSuite/analysis/"+st.name]
		if !ok {
			t.Errorf("missing span for stage %s", st.name)
			continue
		}
		if _, ok := rec.Attrs["worker"]; !ok {
			t.Errorf("stage %s span missing worker attr", st.name)
		}
	}
	if got := reg.Counter("analysis_stages_total").Value(); got != int64(descriptive) {
		t.Errorf("analysis_stages_total = %d, want %d", got, descriptive)
	}
	if got := reg.Histogram("analysis_stage_seconds").Count(); got != descriptive {
		t.Errorf("analysis_stage_seconds count = %d, want %d", got, descriptive)
	}
	if got := reg.Gauge("analysis_stages_inflight").Value(); got != 0 {
		t.Errorf("analysis_stages_inflight = %v after run, want 0", got)
	}
}
