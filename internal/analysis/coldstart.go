package analysis

import (
	"fmt"
	"math"
	"sort"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/rng"
	"turnup/internal/stats"
)

// ColdStartFeatures are the paper's cold start variables for one user,
// measured over the era of their first accepted contract: disputes,
// ratings, posts, and contract counts (Table 7's columns).
type ColdStartFeatures struct {
	User     forum.UserID
	Disputes float64
	Posts    float64 // posts across the forum
	Positive float64 // positive ratings received
	Negative float64 // negative ratings received
	MPosts   float64 // marketplace posts
	Maker    float64 // contracts initiated
	Taker    float64 // contracts accepted
}

func (f ColdStartFeatures) vector() []float64 {
	return []float64{f.Disputes, f.Posts, f.Positive, f.Negative, f.MPosts, f.Maker, f.Taker}
}

// ClusterRow is one row of Table 7: a cluster of outlier cold starters
// with its size and median feature values.
type ClusterRow struct {
	Size                           int
	Disputes, Posts, Positive      float64
	Negative, MPosts, Maker, Taker float64
}

// ColdStartResult bundles the §5.2 clustering analysis.
type ColdStartResult struct {
	N                int     // cold starters in STABLE
	MainClusterShare float64 // share of members in the dominant low-volume cluster
	OutlierCount     int
	OutlierClusters  []ClusterRow // Table 7, sorted by size descending

	MedianLifespanAllDays     float64
	MedianLifespanOutlierDays float64
	ContinueIntoCovidAll      float64 // fraction accepting contracts in COVID-19
	ContinueIntoCovidOutliers float64
	MedianReputationAll       float64
	MedianReputationOutliers  float64
	MedianReputationSetup     float64 // SET-UP starters, for comparison
}

// ColdStart runs the paper's two-stage clustering: k-means with k=2 over
// standardised cold start variables of users whose first accepted contract
// falls in STABLE, then re-clustering of the small outlier cluster into
// (up to) eight groups.
func ColdStart(d *dataset.Dataset, src *rng.Source) (*ColdStartResult, error) {
	return coldStartIdx(NewIndex(d), src)
}

func coldStartIdx(ix *Index, src *rng.Source) (*ColdStartResult, error) {
	d := ix.D
	firstAccept, lastActivity := activitySpans(d)

	// Cold starters: first accepted contract in STABLE.
	var starters []forum.UserID
	for u, at := range firstAccept {
		if dataset.EraOf(at) == dataset.EraStable {
			starters = append(starters, u)
		}
	}
	sort.Slice(starters, func(i, j int) bool { return starters[i] < starters[j] })
	if len(starters) < 10 {
		return nil, fmt.Errorf("analysis: only %d cold starters", len(starters))
	}

	feats := featuresFor(ix, starters, dataset.EraStable)
	raw := make([][]float64, len(feats))
	for i, f := range feats {
		// Power-transform (x^0.5) before standardising: the features are
		// heavily skewed (the paper notes the skew shapes its clusters),
		// and this damping yields an outlier cluster of a relative size
		// comparable to the paper's 2.3%.
		v := f.vector()
		for j, x := range v {
			v[j] = math.Pow(x, 0.5)
		}
		raw[i] = v
	}
	std := standardizeColumns(raw)

	two, err := stats.KMeans(std, 2, stats.NewKMeansOptions(), src.Fork(1))
	if err != nil {
		return nil, err
	}
	big := 0
	if two.Sizes[1] > two.Sizes[0] {
		big = 1
	}
	res := &ColdStartResult{
		N:                len(starters),
		MainClusterShare: float64(two.Sizes[big]) / float64(len(starters)),
	}
	var outlierIdx []int
	for i, a := range two.Assignment {
		if a != big {
			outlierIdx = append(outlierIdx, i)
		}
	}
	res.OutlierCount = len(outlierIdx)

	// Second stage: cluster the outliers into up to 8 groups.
	if len(outlierIdx) >= 2 {
		k := 8
		if k > len(outlierIdx) {
			k = len(outlierIdx)
		}
		sub := make([][]float64, len(outlierIdx))
		for i, idx := range outlierIdx {
			sub[i] = std[idx]
		}
		eight, err := stats.KMeans(sub, k, stats.NewKMeansOptions(), src.Fork(2))
		if err != nil {
			return nil, err
		}
		for c := 0; c < k; c++ {
			var members []ColdStartFeatures
			for i, a := range eight.Assignment {
				if a == c {
					members = append(members, feats[outlierIdx[i]])
				}
			}
			if len(members) == 0 {
				continue
			}
			res.OutlierClusters = append(res.OutlierClusters, medianRow(members))
		}
		sort.Slice(res.OutlierClusters, func(i, j int) bool {
			return res.OutlierClusters[i].Size > res.OutlierClusters[j].Size
		})
	}

	// Lifespans, survival into COVID, and reputation comparisons.
	outlierSet := map[forum.UserID]bool{}
	for _, idx := range outlierIdx {
		outlierSet[feats[idx].User] = true
	}
	acceptedInCovid := acceptedInEra(d, dataset.EraCovid)
	var lifeAll, lifeOut, repAll, repOut []float64
	var contAll, contOut, nAll, nOut float64
	for _, f := range feats {
		u := f.User
		life := lastActivity[u].Sub(firstAccept[u]).Hours() / 24
		rep := 0.0
		if user, ok := d.Users[u]; ok {
			rep = float64(user.Reputation)
		}
		nAll++
		lifeAll = append(lifeAll, life)
		repAll = append(repAll, rep)
		if acceptedInCovid[u] {
			contAll++
		}
		if outlierSet[u] {
			nOut++
			lifeOut = append(lifeOut, life)
			repOut = append(repOut, rep)
			if acceptedInCovid[u] {
				contOut++
			}
		}
	}
	res.MedianLifespanAllDays = stats.Median(lifeAll)
	res.MedianLifespanOutlierDays = stats.Median(lifeOut)
	if nAll > 0 {
		res.ContinueIntoCovidAll = contAll / nAll
	}
	if nOut > 0 {
		res.ContinueIntoCovidOutliers = contOut / nOut
	}
	res.MedianReputationAll = stats.Median(repAll)
	res.MedianReputationOutliers = stats.Median(repOut)

	var repSetup []float64
	for u, at := range firstAccept {
		if dataset.EraOf(at) == dataset.EraSetup {
			if user, ok := d.Users[u]; ok {
				repSetup = append(repSetup, float64(user.Reputation))
			}
		}
	}
	res.MedianReputationSetup = stats.Median(repSetup)
	return res, nil
}

// activitySpans returns each user's first-accepted-contract time and last
// contract-activity time.
func activitySpans(d *dataset.Dataset) (firstAccept, lastActivity map[forum.UserID]time.Time) {
	firstAccept = make(map[forum.UserID]time.Time)
	lastActivity = make(map[forum.UserID]time.Time)
	for _, c := range d.Contracts {
		touch := func(u forum.UserID, at time.Time) {
			if t, ok := lastActivity[u]; !ok || at.After(t) {
				lastActivity[u] = at
			}
		}
		touch(c.Maker, c.Created)
		touch(c.Taker, c.Created)
		switch c.Status {
		case forum.StatusPending, forum.StatusDenied, forum.StatusExpired:
			continue
		}
		at := c.Decided
		if at.IsZero() {
			at = c.Created
		}
		if t, ok := firstAccept[c.Taker]; !ok || at.Before(t) {
			firstAccept[c.Taker] = at
		}
	}
	return firstAccept, lastActivity
}

func acceptedInEra(d *dataset.Dataset, e dataset.Era) map[forum.UserID]bool {
	out := map[forum.UserID]bool{}
	for _, c := range d.Contracts {
		switch c.Status {
		case forum.StatusPending, forum.StatusDenied, forum.StatusExpired:
			continue
		}
		if dataset.EraOf(c.Created) == e {
			out[c.Taker] = true
		}
	}
	return out
}

// featuresFor computes the cold start variables for the users, measured
// over contracts created in the given era plus their global post counts.
func featuresFor(ix *Index, users []forum.UserID, e dataset.Era) []ColdStartFeatures {
	idx := map[forum.UserID]int{}
	feats := make([]ColdStartFeatures, len(users))
	for i, u := range users {
		idx[u] = i
		feats[i].User = u
		if user, ok := ix.D.Users[u]; ok {
			feats[i].Posts = float64(user.Posts)
			feats[i].MPosts = float64(user.MarketplacePosts)
		}
	}
	for _, c := range ix.InEra(e) {
		if i, ok := idx[c.Maker]; ok {
			feats[i].Maker++
			if c.Status == forum.StatusDisputed {
				feats[i].Disputes++
			}
			switch c.TakerRating { // rating received by the maker
			case forum.RatingPositive:
				feats[i].Positive++
			case forum.RatingNegative:
				feats[i].Negative++
			}
		}
		if i, ok := idx[c.Taker]; ok {
			switch c.Status {
			case forum.StatusPending, forum.StatusDenied, forum.StatusExpired:
			default:
				feats[i].Taker++
			}
			if c.Status == forum.StatusDisputed {
				feats[i].Disputes++
			}
			switch c.MakerRating { // rating received by the taker
			case forum.RatingPositive:
				feats[i].Positive++
			case forum.RatingNegative:
				feats[i].Negative++
			}
		}
	}
	return feats
}

func standardizeColumns(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return rows
	}
	cols := len(rows[0])
	out := make([][]float64, len(rows))
	for i := range out {
		out[i] = make([]float64, cols)
	}
	col := make([]float64, len(rows))
	for j := 0; j < cols; j++ {
		for i := range rows {
			col[i] = rows[i][j]
		}
		std := stats.Standardize(col)
		for i := range rows {
			out[i][j] = std[i]
		}
	}
	return out
}

func medianRow(members []ColdStartFeatures) ClusterRow {
	pick := func(f func(ColdStartFeatures) float64) float64 {
		vals := make([]float64, len(members))
		for i, m := range members {
			vals[i] = f(m)
		}
		return stats.Median(vals)
	}
	return ClusterRow{
		Size:     len(members),
		Disputes: pick(func(f ColdStartFeatures) float64 { return f.Disputes }),
		Posts:    pick(func(f ColdStartFeatures) float64 { return f.Posts }),
		Positive: pick(func(f ColdStartFeatures) float64 { return f.Positive }),
		Negative: pick(func(f ColdStartFeatures) float64 { return f.Negative }),
		MPosts:   pick(func(f ColdStartFeatures) float64 { return f.MPosts }),
		Maker:    pick(func(f ColdStartFeatures) float64 { return f.Maker }),
		Taker:    pick(func(f ColdStartFeatures) float64 { return f.Taker }),
	}
}
