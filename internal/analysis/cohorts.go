package analysis

import (
	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/rng"
	"turnup/internal/stats"
)

// CohortRetention is a join-month × months-since-join activity matrix:
// Retention[c][k] is the fraction of users first active in study month c
// who are party to at least one contract k months later. It quantifies
// §2.2's observation that "users of underground markets are transient".
type CohortRetention struct {
	// Retention[c][k]; k = 0 is the joining month itself (always 1 for
	// cohorts with any members).
	Retention [dataset.NumMonths][dataset.NumMonths]float64
	// Size[c] is the number of users in cohort c.
	Size [dataset.NumMonths]int
}

// Cohorts computes the retention matrix from contract participation.
func Cohorts(d *dataset.Dataset) CohortRetention { return cohortsIdx(NewIndex(d)) }

func cohortsIdx(ix *Index) CohortRetention {
	var r CohortRetention
	var activeCounts [dataset.NumMonths][dataset.NumMonths]int
	// Per-user retention is a pure count: iterating users in map order is
	// fine because every accumulation below is commutative.
	for _, cs := range ix.UserContracts() {
		var active [dataset.NumMonths]bool
		first := dataset.NumMonths
		for _, c := range cs {
			m := int(dataset.MonthOf(c.Created))
			active[m] = true
			if m < first {
				first = m
			}
		}
		r.Size[first]++
		for m := first; m < dataset.NumMonths; m++ {
			if active[m] {
				activeCounts[first][m-first]++
			}
		}
	}
	for c := 0; c < dataset.NumMonths; c++ {
		if r.Size[c] == 0 {
			continue
		}
		for k := 0; k < dataset.NumMonths; k++ {
			r.Retention[c][k] = float64(activeCounts[c][k]) / float64(r.Size[c])
		}
	}
	return r
}

// MeanRetentionAt returns the cohort-size-weighted mean retention k months
// after joining, over cohorts that can be observed that far.
func (r CohortRetention) MeanRetentionAt(k int) float64 {
	var num, den float64
	for c := 0; c+k < dataset.NumMonths; c++ {
		num += r.Retention[c][k] * float64(r.Size[c])
		den += float64(r.Size[c])
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ConcentrationCI bootstrap-resamples users to put a confidence interval
// on the Figure 5 headline number — the share of contracts involving the
// top 5% of users.
func ConcentrationCI(d *dataset.Dataset, level float64, resamples int, src *rng.Source) (stats.BootstrapCI, error) {
	counts := map[forum.UserID]float64{}
	for _, c := range d.Contracts {
		counts[c.Maker]++
		counts[c.Taker]++
	}
	weights := make([]float64, 0, len(counts))
	for _, v := range counts {
		weights = append(weights, v)
	}
	// ShareOfTop over participation weights approximates the union-share
	// curve closely enough for an uncertainty band and is resample-stable.
	return stats.Bootstrap(weights, func(xs []float64) float64 {
		return stats.ShareOfTop(xs, 0.05)
	}, resamples, level, src)
}
