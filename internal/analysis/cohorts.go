package analysis

import (
	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/rng"
	"turnup/internal/stats"
)

// CohortRetention is a join-month × months-since-join activity matrix:
// Retention[c][k] is the fraction of users first active in study month c
// who are party to at least one contract k months later. It quantifies
// §2.2's observation that "users of underground markets are transient".
type CohortRetention struct {
	// Retention[c][k]; k = 0 is the joining month itself (always 1 for
	// cohorts with any members).
	Retention [dataset.NumMonths][dataset.NumMonths]float64
	// Size[c] is the number of users in cohort c.
	Size [dataset.NumMonths]int
}

// Cohorts computes the retention matrix from contract participation.
func Cohorts(d *dataset.Dataset) CohortRetention {
	firstMonth := map[forum.UserID]int{}
	activeIn := map[forum.UserID]map[int]bool{}
	for _, c := range d.Contracts {
		m := int(dataset.MonthOf(c.Created))
		for _, u := range []forum.UserID{c.Maker, c.Taker} {
			if prev, ok := firstMonth[u]; !ok || m < prev {
				firstMonth[u] = m
			}
			set, ok := activeIn[u]
			if !ok {
				set = map[int]bool{}
				activeIn[u] = set
			}
			set[m] = true
		}
	}
	var r CohortRetention
	var activeCounts [dataset.NumMonths][dataset.NumMonths]int
	for u, c := range firstMonth {
		r.Size[c]++
		for m := range activeIn[u] {
			if k := m - c; k >= 0 && k < dataset.NumMonths {
				activeCounts[c][k]++
			}
		}
	}
	for c := 0; c < dataset.NumMonths; c++ {
		if r.Size[c] == 0 {
			continue
		}
		for k := 0; k < dataset.NumMonths; k++ {
			r.Retention[c][k] = float64(activeCounts[c][k]) / float64(r.Size[c])
		}
	}
	return r
}

// MeanRetentionAt returns the cohort-size-weighted mean retention k months
// after joining, over cohorts that can be observed that far.
func (r CohortRetention) MeanRetentionAt(k int) float64 {
	var num, den float64
	for c := 0; c+k < dataset.NumMonths; c++ {
		num += r.Retention[c][k] * float64(r.Size[c])
		den += float64(r.Size[c])
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ConcentrationCI bootstrap-resamples users to put a confidence interval
// on the Figure 5 headline number — the share of contracts involving the
// top 5% of users.
func ConcentrationCI(d *dataset.Dataset, level float64, resamples int, src *rng.Source) (stats.BootstrapCI, error) {
	counts := map[forum.UserID]float64{}
	for _, c := range d.Contracts {
		counts[c.Maker]++
		counts[c.Taker]++
	}
	weights := make([]float64, 0, len(counts))
	for _, v := range counts {
		weights = append(weights, v)
	}
	// ShareOfTop over participation weights approximates the union-share
	// curve closely enough for an uncertainty band and is resample-stable.
	return stats.Bootstrap(weights, func(xs []float64) float64 {
		return stats.ShareOfTop(xs, 0.05)
	}, resamples, level, src)
}
