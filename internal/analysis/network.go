package analysis

import (
	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/graph"
	"turnup/internal/stats"
)

// DegreeDistribution is Figure 7 for one contract set (created or
// completed): the histogram of raw/inbound/outbound degrees plus power-law
// fits of the tails.
type DegreeDistribution struct {
	Histogram map[graph.DegreeKind]map[int]int
	Max       map[graph.DegreeKind]int
	PowerLaw  map[graph.DegreeKind]*stats.PowerLawFit // nil when unfittable
	Nodes     int
}

// DegreeDist computes Figure 7's distribution for the given contracts.
func DegreeDist(contracts []*forum.Contract) DegreeDistribution {
	n := graph.Build(contracts)
	r := DegreeDistribution{
		Histogram: make(map[graph.DegreeKind]map[int]int),
		Max:       make(map[graph.DegreeKind]int),
		PowerLaw:  make(map[graph.DegreeKind]*stats.PowerLawFit),
		Nodes:     n.Nodes(),
	}
	for _, k := range []graph.DegreeKind{graph.Raw, graph.Inbound, graph.Outbound} {
		degs := n.DegreeSlice(k)
		r.Histogram[k] = stats.DegreeHistogram(degs)
		r.Max[k] = n.Stats(k).Max
		if fit, err := stats.FitPowerLaw(degs, 1); err == nil {
			r.PowerLaw[k] = fit
		}
	}
	return r
}

// DegreeGrowth is Figure 8: the cumulative network's max raw / max inbound
// / max outbound / mean raw degree at each month, for created and
// completed contracts.
type DegreeGrowth struct {
	MaxRaw      [dataset.NumMonths]int
	MaxInbound  [dataset.NumMonths]int
	MaxOutbound [dataset.NumMonths]int
	MeanRaw     [dataset.NumMonths]float64
}

// DegreeGrowthTrend computes Figure 8 by growing the network month by
// month. completedOnly selects the completed-contract variant.
func DegreeGrowthTrend(d *dataset.Dataset, completedOnly bool) DegreeGrowth {
	return degreeGrowthTrendIdx(NewIndex(d), completedOnly)
}

func degreeGrowthTrendIdx(ix *Index, completedOnly bool) DegreeGrowth {
	var r DegreeGrowth
	var buckets [dataset.NumMonths][]*forum.Contract
	if completedOnly {
		buckets = ix.CompletedByMonth()
	} else {
		buckets = ix.ByMonth()
	}
	n := graph.New()
	for m := 0; m < dataset.NumMonths; m++ {
		for _, c := range buckets[m] {
			n.Add(c)
		}
		r.MaxRaw[m] = n.Stats(graph.Raw).Max
		r.MaxInbound[m] = n.Stats(graph.Inbound).Max
		r.MaxOutbound[m] = n.Stats(graph.Outbound).Max
		r.MeanRaw[m] = n.Stats(graph.Raw).Mean
	}
	return r
}

// AssortativityByEra computes the degree assortativity of each era's
// contractual network. The paper's §6 narrative predicts the sign
// structure: SET-UP is relatively flat (small users deal with one another,
// power-users with power-users), while STABLE's business-to-customer shift
// drives assortativity further negative (hubs serving the periphery).
func AssortativityByEra(d *dataset.Dataset) map[dataset.Era]float64 {
	out := make(map[dataset.Era]float64, dataset.NumEras)
	for _, e := range dataset.Eras {
		cs := d.InEra(e)
		n := graph.Build(cs)
		out[e] = graph.DegreeAssortativity(n, cs)
	}
	return out
}
