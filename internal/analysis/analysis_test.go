package analysis

import (
	"sync"
	"testing"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/market"
)

// The analysis tests share one simulated corpus (scale 0.1, ~19k
// contracts) and a smaller one for the expensive latent-class fits.
var (
	bigOnce   sync.Once
	bigData   *dataset.Dataset
	smallOnce sync.Once
	smallData *dataset.Dataset
)

func corpus(t *testing.T) *dataset.Dataset {
	t.Helper()
	bigOnce.Do(func() {
		d, _, err := market.Generate(market.Config{Seed: 11, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		bigData = d
	})
	return bigData
}

func smallCorpus(t *testing.T) *dataset.Dataset {
	t.Helper()
	smallOnce.Do(func() {
		d, _, err := market.Generate(market.Config{Seed: 13, Scale: 0.04})
		if err != nil {
			t.Fatal(err)
		}
		smallData = d
	})
	return smallData
}

func TestBucketOfCoversAllStatuses(t *testing.T) {
	want := map[forum.Status]Bucket{
		forum.StatusCompleted:      BucketComplete,
		forum.StatusActive:         BucketActive,
		forum.StatusMarkedComplete: BucketActive,
		forum.StatusPending:        BucketActive,
		forum.StatusDisputed:       BucketDisputed,
		forum.StatusIncomplete:     BucketIncomplete,
		forum.StatusCancelled:      BucketCancelled,
		forum.StatusDenied:         BucketDenied,
		forum.StatusExpired:        BucketExpired,
	}
	for s, b := range want {
		if got := BucketOf(s); got != b {
			t.Errorf("BucketOf(%v) = %v, want %v", s, got, b)
		}
	}
}

func TestTaxonomyTotalsConsistent(t *testing.T) {
	d := corpus(t)
	r := Taxonomy(d)
	if r.Total != len(d.Contracts) {
		t.Fatalf("Total = %d, want %d", r.Total, len(d.Contracts))
	}
	sumTypes := 0
	for _, typ := range forum.ContractTypes {
		sumTypes += r.TypeTotal(typ)
	}
	if sumTypes != r.Total {
		t.Errorf("type totals sum to %d", sumTypes)
	}
	sumBuckets := 0
	for b := Bucket(0); b < NumBuckets; b++ {
		sumBuckets += r.BucketTotal(b)
	}
	if sumBuckets != r.Total {
		t.Errorf("bucket totals sum to %d", sumBuckets)
	}
}

func TestTaxonomyShapesMatchPaper(t *testing.T) {
	d := corpus(t)
	r := Taxonomy(d)
	// SALE dominates; EXCHANGE second; VOUCH COPY has no denials.
	if r.TypeTotal(forum.Sale) <= r.TypeTotal(forum.Exchange) {
		t.Error("SALE does not dominate EXCHANGE")
	}
	if r.TypeTotal(forum.Exchange) <= r.TypeTotal(forum.Purchase) {
		t.Error("EXCHANGE does not beat PURCHASE")
	}
	if r.Counts[forum.VouchCopy][BucketDenied] != 0 {
		t.Error("VOUCH COPY has denials")
	}
	// EXCHANGE completion more than double SALE's.
	if r.CompletionRate(forum.Exchange) < 2*r.CompletionRate(forum.Sale) {
		t.Errorf("completion rates: EXCHANGE %.3f vs SALE %.3f",
			r.CompletionRate(forum.Exchange), r.CompletionRate(forum.Sale))
	}
	// SALE has the highest non-completion count.
	if r.Counts[forum.Sale][BucketIncomplete] <= r.Counts[forum.Exchange][BucketIncomplete] {
		t.Error("SALE incomplete not dominant")
	}
}

func TestVisibilityTable(t *testing.T) {
	d := corpus(t)
	r := Visibility(d)
	if len(r.Rows) != 2*forum.NumContractTypes {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	created := r.OverallPublicShare(false)
	completed := r.OverallPublicShare(true)
	if created < 0.08 || created > 0.20 {
		t.Errorf("created public share = %.3f", created)
	}
	if completed <= created {
		t.Errorf("completed public share %.3f not above created %.3f", completed, created)
	}
	// SALE created rows are the most private of the major types.
	var saleRow, purchaseRow VisibilityRow
	for _, row := range r.Rows {
		if row.Completed {
			continue
		}
		switch row.Type {
		case forum.Sale:
			saleRow = row
		case forum.Purchase:
			purchaseRow = row
		}
	}
	if saleRow.PublicShare() >= purchaseRow.PublicShare() {
		t.Errorf("SALE public share %.3f not below PURCHASE %.3f",
			saleRow.PublicShare(), purchaseRow.PublicShare())
	}
}

func TestGrowthFigureOne(t *testing.T) {
	d := corpus(t)
	g := Growth(d)
	totalCreated := 0
	for _, n := range g.Created {
		totalCreated += n
	}
	if totalCreated != len(d.Contracts) {
		t.Fatalf("created sums to %d, want %d", totalCreated, len(d.Contracts))
	}
	totalCompleted := 0
	for _, n := range g.Completed {
		totalCompleted += n
	}
	if totalCompleted != len(d.Completed()) {
		t.Fatalf("completed sums to %d", totalCompleted)
	}
	// Mandatory-contract jump and COVID spike.
	if g.Created[9] < 2*g.Created[8] {
		t.Error("no March 2019 jump in created contracts")
	}
	if g.Created[22] <= g.Created[10] {
		t.Error("April 2020 does not exceed April 2019")
	}
	// New members burst in March 2019.
	if g.NewCreators[9] < 2*g.NewCreators[8] {
		t.Errorf("new-member burst missing: feb=%d mar=%d", g.NewCreators[8], g.NewCreators[9])
	}
	// Every member counted at most once.
	totalNew := 0
	for _, n := range g.NewCreators {
		totalNew += n
	}
	if totalNew > len(d.Users) {
		t.Errorf("new creators %d exceed user count %d", totalNew, len(d.Users))
	}
}

func TestPublicTrendFigureTwo(t *testing.T) {
	d := corpus(t)
	tr := PublicTrend(d)
	// Early SET-UP well above STABLE.
	early := (tr.CreatedPublic[0] + tr.CreatedPublic[1] + tr.CreatedPublic[2]) / 3
	stable := (tr.CreatedPublic[12] + tr.CreatedPublic[13] + tr.CreatedPublic[14]) / 3
	if early < stable+0.15 {
		t.Errorf("public share not declining: early %.3f stable %.3f", early, stable)
	}
	// Completed share above created share in most months and on average.
	higher := 0
	var sumCreated, sumCompleted float64
	for m := 0; m < dataset.NumMonths; m++ {
		if tr.CompletedPublic[m] > tr.CreatedPublic[m] {
			higher++
		}
		sumCreated += tr.CreatedPublic[m]
		sumCompleted += tr.CompletedPublic[m]
	}
	if higher < 13 {
		t.Errorf("completed public share above created in only %d months", higher)
	}
	if sumCompleted <= sumCreated {
		t.Errorf("mean completed public share %.3f not above created %.3f",
			sumCompleted/dataset.NumMonths, sumCreated/dataset.NumMonths)
	}
}

func TestTypeShareTrendFigureThree(t *testing.T) {
	d := corpus(t)
	tr := TypeShareTrend(d)
	for m := 0; m < dataset.NumMonths; m++ {
		sum := 0.0
		for _, s := range tr.Created[m] {
			sum += s
		}
		if sum > 0 && (sum < 0.999 || sum > 1.001) {
			t.Fatalf("month %d created shares sum to %v", m, sum)
		}
	}
	// EXCHANGE leads at launch; SALE dominates in STABLE (the swap).
	if tr.Created[0][forum.Exchange] <= tr.Created[0][forum.Sale] {
		t.Error("EXCHANGE does not lead at launch")
	}
	if tr.Created[12][forum.Sale] < 0.6 {
		t.Errorf("SALE share in STABLE = %.3f, want > 0.6", tr.Created[12][forum.Sale])
	}
	// VOUCH COPY absent before February 2020 (month 20).
	for m := 0; m < 20; m++ {
		if tr.Created[m][forum.VouchCopy] != 0 {
			t.Fatalf("VOUCH COPY share %.4f in month %d", tr.Created[m][forum.VouchCopy], m)
		}
	}
	// Completed SALE share below completed EXCHANGE relative to created
	// (EXCHANGE more likely to complete): check ratio ordering mid-STABLE.
	if tr.Completed[14][forum.Exchange]/tr.Created[14][forum.Exchange] <=
		tr.Completed[14][forum.Sale]/tr.Created[14][forum.Sale] {
		t.Error("EXCHANGE not over-represented among completed")
	}
}

func TestCompletionTimeTrendFigureFour(t *testing.T) {
	d := corpus(t)
	tr := CompletionTimeTrend(d)
	if tr.CoveredShare < 0.6 || tr.CoveredShare > 0.8 {
		t.Errorf("completion-date coverage = %.3f, want ~0.7", tr.CoveredShare)
	}
	early := tr.MeanHours[1][forum.Sale]
	late := tr.MeanHours[24][forum.Sale]
	if late >= early {
		t.Errorf("SALE completion time not declining: %v → %v", early, late)
	}
	if late > 25 {
		t.Errorf("June 2020 SALE completion %.1fh, want near 10h", late)
	}
}

func TestConcentrationFigureFive(t *testing.T) {
	d := corpus(t)
	c := Concentrate(d)
	// Top 5% of users involved in the majority of contracts.
	if s := c.UsersCreated.ShareAtTop(0.05); s < 0.55 {
		t.Errorf("top-5%% user share (created) = %.3f", s)
	}
	if s := c.UsersCompleted.ShareAtTop(0.05); s < 0.55 {
		t.Errorf("top-5%% user share (completed) = %.3f", s)
	}
	// ~70% of thread-linked contracts within the top 30% of threads.
	if s := c.ThreadsCreated.ShareAtTop(0.30); s < 0.5 {
		t.Errorf("top-30%% thread share = %.3f", s)
	}
	// Curves are monotone and end at 1.
	for i := 1; i < len(c.UsersCreated.Share); i++ {
		if c.UsersCreated.Share[i] < c.UsersCreated.Share[i-1]-1e-12 {
			t.Fatal("user curve not monotone")
		}
	}
	last := c.UsersCreated.Share[len(c.UsersCreated.Share)-1]
	if last < 0.999 {
		t.Errorf("user curve ends at %.4f", last)
	}
}

func TestKeySharesFigureSix(t *testing.T) {
	d := corpus(t)
	k := KeyShares(d)
	for m := 0; m < dataset.NumMonths; m++ {
		for _, v := range []float64{k.MemberCreated[m], k.MemberCompleted[m], k.ThreadCreated[m], k.ThreadCompleted[m]} {
			if v < 0 || v > 1 {
				t.Fatalf("month %d key share out of range: %v", m, v)
			}
		}
		if k.MemberCreated[m] < 0.2 {
			t.Errorf("month %d key member share %.3f implausibly low", m, k.MemberCreated[m])
		}
	}
}

func TestCentralisationTrend(t *testing.T) {
	d := corpus(t)
	c := CentralisationTrend(d)
	for m, g := range c.Gini {
		if g < 0 || g > 1 {
			t.Fatalf("month %d Gini = %v", m, g)
		}
	}
	// The market centralises over time: later eras at least as
	// concentrated as SET-UP (§4.2).
	if c.EraMean(dataset.EraStable) < c.EraMean(dataset.EraSetup)-0.05 {
		t.Errorf("STABLE Gini %.3f well below SET-UP %.3f",
			c.EraMean(dataset.EraStable), c.EraMean(dataset.EraSetup))
	}
}
