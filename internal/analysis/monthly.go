package analysis

import (
	"turnup/internal/dataset"
	"turnup/internal/forum"
)

// MonthlyGrowth is Figure 1: per-month new contracts (created and
// completed) and new members involved in each.
type MonthlyGrowth struct {
	Created      [dataset.NumMonths]int // contracts created in the month
	Completed    [dataset.NumMonths]int // contracts completed in the month
	NewCreators  [dataset.NumMonths]int // members first party to a created contract
	NewFinishers [dataset.NumMonths]int // members first party to a completed contract
}

// Growth computes Figure 1's four series.
func Growth(d *dataset.Dataset) MonthlyGrowth { return growthIdx(NewIndex(d)) }

func growthIdx(ix *Index) MonthlyGrowth {
	var g MonthlyGrowth
	seenCreated := make(map[forum.UserID]bool)
	seenCompleted := make(map[forum.UserID]bool)
	// Process contracts in creation order so "new member" is well defined.
	byMonth := ix.ByMonth()
	completedByMonth := ix.CompletedByMonth()
	for m := 0; m < dataset.NumMonths; m++ {
		for _, c := range byMonth[m] {
			g.Created[m]++
			for _, u := range []forum.UserID{c.Maker, c.Taker} {
				if !seenCreated[u] {
					seenCreated[u] = true
					g.NewCreators[m]++
				}
			}
		}
		for _, c := range completedByMonth[m] {
			g.Completed[m]++
			for _, u := range []forum.UserID{c.Maker, c.Taker} {
				if !seenCompleted[u] {
					seenCompleted[u] = true
					g.NewFinishers[m]++
				}
			}
		}
	}
	return g
}

// VisibilityTrend is Figure 2: the monthly share of public contracts among
// created and completed contracts.
type VisibilityTrend struct {
	CreatedPublic   [dataset.NumMonths]float64
	CompletedPublic [dataset.NumMonths]float64
}

// PublicTrend computes Figure 2.
func PublicTrend(d *dataset.Dataset) VisibilityTrend { return publicTrendIdx(NewIndex(d)) }

func publicTrendIdx(ix *Index) VisibilityTrend {
	var t VisibilityTrend
	byMonth := ix.ByMonth()
	completedByMonth := ix.CompletedByMonth()
	for m := 0; m < dataset.NumMonths; m++ {
		var pub int
		for _, c := range byMonth[m] {
			if c.Public {
				pub++
			}
		}
		if n := len(byMonth[m]); n > 0 {
			t.CreatedPublic[m] = float64(pub) / float64(n)
		}
		pub = 0
		for _, c := range completedByMonth[m] {
			if c.Public {
				pub++
			}
		}
		if n := len(completedByMonth[m]); n > 0 {
			t.CompletedPublic[m] = float64(pub) / float64(n)
		}
	}
	return t
}

// TypeShares is Figure 3: monthly proportions of each contract type among
// created and completed contracts.
type TypeShares struct {
	Created   [dataset.NumMonths][forum.NumContractTypes]float64
	Completed [dataset.NumMonths][forum.NumContractTypes]float64
}

// TypeShareTrend computes Figure 3.
func TypeShareTrend(d *dataset.Dataset) TypeShares { return typeShareTrendIdx(NewIndex(d)) }

func typeShareTrendIdx(ix *Index) TypeShares {
	var t TypeShares
	byMonth := ix.ByMonth()
	completedByMonth := ix.CompletedByMonth()
	for m := 0; m < dataset.NumMonths; m++ {
		fill := func(cs []*forum.Contract, out *[forum.NumContractTypes]float64) {
			if len(cs) == 0 {
				return
			}
			var counts [forum.NumContractTypes]int
			for _, c := range cs {
				counts[c.Type]++
			}
			for i, n := range counts {
				out[i] = float64(n) / float64(len(cs))
			}
		}
		fill(byMonth[m], &t.Created[m])
		fill(completedByMonth[m], &t.Completed[m])
	}
	return t
}

// CompletionTimes is Figure 4: the mean completion time (hours) per type
// per month, over completed contracts that record a completion date.
type CompletionTimes struct {
	MeanHours [dataset.NumMonths][forum.NumContractTypes]float64
	Counts    [dataset.NumMonths][forum.NumContractTypes]int
	// CoveredShare is the fraction of completed contracts carrying a
	// completion date (the paper reports ~70%).
	CoveredShare float64
}

// CompletionTimeTrend computes Figure 4, bucketing by completion month.
func CompletionTimeTrend(d *dataset.Dataset) CompletionTimes {
	var r CompletionTimes
	var sums [dataset.NumMonths][forum.NumContractTypes]float64
	covered, completedTotal := 0, 0
	for _, c := range d.Contracts {
		if !c.IsComplete() {
			continue
		}
		completedTotal++
		dur, ok := c.CompletionTime()
		if !ok {
			continue
		}
		covered++
		m := dataset.MonthOf(c.Completed)
		sums[m][c.Type] += dur.Hours()
		r.Counts[m][c.Type]++
	}
	for m := 0; m < dataset.NumMonths; m++ {
		for t := 0; t < forum.NumContractTypes; t++ {
			if r.Counts[m][t] > 0 {
				r.MeanHours[m][t] = sums[m][t] / float64(r.Counts[m][t])
			}
		}
	}
	if completedTotal > 0 {
		r.CoveredShare = float64(covered) / float64(completedTotal)
	}
	return r
}
