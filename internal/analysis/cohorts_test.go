package analysis

import (
	"testing"

	"turnup/internal/rng"
)

func TestCohortRetention(t *testing.T) {
	d := corpus(t)
	r := Cohorts(d)
	totalUsers := 0
	for _, s := range r.Size {
		totalUsers += s
	}
	if totalUsers == 0 {
		t.Fatal("no cohorts")
	}
	// Month-0 retention is 1 for every non-empty cohort by construction.
	for c := 0; c < len(r.Size); c++ {
		if r.Size[c] == 0 {
			continue
		}
		if r.Retention[c][0] < 0.999 {
			t.Errorf("cohort %d month-0 retention = %v", c, r.Retention[c][0])
		}
	}
	// Transient users: most of a cohort is gone one month after joining,
	// and retention declines with horizon.
	m1 := r.MeanRetentionAt(1)
	m3 := r.MeanRetentionAt(3)
	m6 := r.MeanRetentionAt(6)
	if m1 > 0.6 {
		t.Errorf("month-1 retention = %.3f, users not transient enough", m1)
	}
	if !(m1 >= m3 && m3 >= m6) {
		t.Errorf("retention not declining: m1=%.3f m3=%.3f m6=%.3f", m1, m3, m6)
	}
	// All values are probabilities.
	for c := range r.Retention {
		for k, v := range r.Retention[c] {
			if v < 0 || v > 1 {
				t.Fatalf("retention[%d][%d] = %v", c, k, v)
			}
		}
	}
}

func TestConcentrationCI(t *testing.T) {
	d := corpus(t)
	ci, err := ConcentrationCI(d, 0.95, 200, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	if ci.Point < 0.4 || ci.Point > 1 {
		t.Errorf("top-5%% point = %v", ci.Point)
	}
	if !(ci.Lo <= ci.Point && ci.Point <= ci.Hi) {
		t.Errorf("CI [%v, %v] excludes point %v", ci.Lo, ci.Hi, ci.Point)
	}
	// The statistic is hub-dominated, so the interval is wide but bounded.
	if ci.Hi-ci.Lo > 0.4 {
		t.Errorf("CI width = %v, implausibly wide", ci.Hi-ci.Lo)
	}
}
