package analysis

import (
	"fmt"
	"sort"
	"sync"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/rng"
	"turnup/internal/stats"
)

// UserMonth is one observation of the latent class model: a user's
// transaction counts in one study month, split into contracts made and
// accepted per type (10 dimensions).
type UserMonth struct {
	User   forum.UserID
	Month  dataset.Month
	Counts []float64 // len 10: made SALE..VOUCH, then accepted SALE..VOUCH
	Class  int       // fitted class assignment
}

// LTMOptions controls the latent transition analysis.
type LTMOptions struct {
	K        int // number of classes (the paper selects 12)
	Restarts int // EM restarts (best log-likelihood kept)
	// Sweep, when non-zero, also fits every class count in [SweepMin,
	// SweepMax] to reproduce the AIC/BIC model-selection step.
	SweepMin, SweepMax int
}

// DefaultLTMOptions mirrors the paper: 12 classes.
func DefaultLTMOptions() LTMOptions { return LTMOptions{K: 12, Restarts: 3} }

// LTMResult is the fitted latent transition model and its derived series.
type LTMResult struct {
	Fit *stats.LCAResult
	Obs []UserMonth

	// MadeSeries[class][month][type] is the total number of contracts of
	// the type made in the month by users assigned to the class (Fig. 12);
	// AcceptedSeries is the taker-side analogue (Fig. 13).
	MadeSeries     [][dataset.NumMonths][forum.NumContractTypes]int
	AcceptedSeries [][dataset.NumMonths][forum.NumContractTypes]int

	// Transition is the month-to-month class transition matrix.
	Transition [][]float64

	// Sweep holds the per-k fits when a selection sweep was requested.
	Sweep map[int]*stats.LCAResult
}

// LatentClasses fits the Table 6 latent class model over user-months with
// at least one transaction, assigns classes, and builds the Figure 12/13
// activity series and the transition matrix.
func LatentClasses(d *dataset.Dataset, opts LTMOptions, src *rng.Source) (*LTMResult, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("analysis: LTM requires K > 0, got %d", opts.K)
	}
	if opts.Restarts <= 0 {
		opts.Restarts = 1
	}
	obs := buildUserMonths(d)
	if len(obs) == 0 {
		return nil, fmt.Errorf("analysis: no user-month observations")
	}
	if opts.K > len(obs) {
		return nil, fmt.Errorf("analysis: K=%d exceeds %d observations", opts.K, len(obs))
	}
	data := make([][]float64, len(obs))
	for i, o := range obs {
		data[i] = o.Counts
	}
	// EM restarts are independent: pre-fork one stream per restart in
	// restart order (so the fork sequence is identical to the old
	// sequential loop), run the fits concurrently, then pick the winner by
	// scanning restarts in order with a strictly-greater comparison — the
	// same tie-break the sequential loop applied. Byte-identical results
	// at any parallelism.
	streams := make([]*rng.Source, opts.Restarts)
	for r := range streams {
		streams[r] = src.Fork(uint64(r) + 1)
	}
	fits := make([]*stats.LCAResult, opts.Restarts)
	errs := make([]error, opts.Restarts)
	var wg sync.WaitGroup
	for r := range streams {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fits[r], errs[r] = stats.FitLCA(data, opts.K, streams[r])
		}(r)
	}
	wg.Wait()
	var fit *stats.LCAResult
	for r := 0; r < opts.Restarts; r++ {
		if errs[r] != nil {
			return nil, errs[r]
		}
		if fit == nil || fits[r].LogLik > fit.LogLik {
			fit = fits[r]
		}
	}

	res := &LTMResult{Fit: fit, Obs: obs}
	for i := range obs {
		obs[i].Class = fit.Assignment[i]
	}

	res.MadeSeries = make([][dataset.NumMonths][forum.NumContractTypes]int, opts.K)
	res.AcceptedSeries = make([][dataset.NumMonths][forum.NumContractTypes]int, opts.K)
	for _, o := range obs {
		for t := 0; t < forum.NumContractTypes; t++ {
			res.MadeSeries[o.Class][o.Month][t] += int(o.Counts[t])
			res.AcceptedSeries[o.Class][o.Month][t] += int(o.Counts[forum.NumContractTypes+t])
		}
	}

	// Transition matrix over consecutive months.
	seqs := make(map[string][]int)
	for _, o := range obs {
		key := fmt.Sprintf("u%d", o.User)
		seq, ok := seqs[key]
		if !ok {
			seq = make([]int, dataset.NumMonths)
			for i := range seq {
				seq[i] = -1
			}
			seqs[key] = seq
		}
		seq[o.Month] = o.Class
	}
	res.Transition = stats.TransitionMatrix(seqs, opts.K, false)

	if opts.SweepMax >= opts.SweepMin && opts.SweepMax > 0 {
		_, fits, err := stats.SelectLCA(data, opts.SweepMin, opts.SweepMax, opts.Restarts, src.Fork(999))
		if err != nil {
			return nil, err
		}
		res.Sweep = fits
	}
	return res, nil
}

// buildUserMonths assembles the observations: every (user, month) with at
// least one contract made or accepted. Contracts are attributed to their
// creation month; a contract is "accepted" for the taker when the deal was
// entered (not denied/expired/pending).
func buildUserMonths(d *dataset.Dataset) []UserMonth {
	type key struct {
		u forum.UserID
		m dataset.Month
	}
	acc := map[key][]float64{}
	get := func(u forum.UserID, m dataset.Month) []float64 {
		k := key{u, m}
		v, ok := acc[k]
		if !ok {
			v = make([]float64, 2*forum.NumContractTypes)
			acc[k] = v
		}
		return v
	}
	for _, c := range d.Contracts {
		m := dataset.MonthOf(c.Created)
		get(c.Maker, m)[int(c.Type)]++
		switch c.Status {
		case forum.StatusPending, forum.StatusDenied, forum.StatusExpired:
		default:
			get(c.Taker, m)[forum.NumContractTypes+int(c.Type)]++
		}
	}
	out := make([]UserMonth, 0, len(acc))
	for k, counts := range acc {
		out = append(out, UserMonth{User: k.u, Month: k.m, Counts: counts})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Month < out[j].Month
	})
	return out
}

// ClassActivityTotal sums a class's transactions of a type over an era
// (made side when made is true).
func (r *LTMResult) ClassActivityTotal(class int, t forum.ContractType, e dataset.Era, made bool) int {
	total := 0
	series := r.AcceptedSeries
	if made {
		series = r.MadeSeries
	}
	for _, m := range e.Months() {
		total += series[class][m][t]
	}
	return total
}

// FlowCell is one maker-class → taker-class flow within an era and type
// (Table 8).
type FlowCell struct {
	MakerClass, TakerClass int
	AvgPerMonth            float64 // mean transactions per month of the era
	Share                  float64 // share of the era's transactions of this type
}

// FlowsResult maps (era, type) to flows sorted by share descending.
type FlowsResult struct {
	Flows map[dataset.Era]map[forum.ContractType][]FlowCell
}

// Flows computes Table 8 from the fitted class assignments: each accepted
// contract contributes one (maker class, taker class) event in its era.
func Flows(d *dataset.Dataset, ltm *LTMResult) FlowsResult {
	classOf := map[[2]int]int{}
	for _, o := range ltm.Obs {
		classOf[[2]int{int(o.User), int(o.Month)}] = o.Class
	}
	counts := map[dataset.Era]map[forum.ContractType]map[[2]int]int{}
	totals := map[dataset.Era]map[forum.ContractType]int{}
	for _, c := range d.Contracts {
		switch c.Status {
		case forum.StatusPending, forum.StatusDenied, forum.StatusExpired:
			continue
		}
		m := int(dataset.MonthOf(c.Created))
		e := dataset.EraOf(c.Created)
		mc, okM := classOf[[2]int{int(c.Maker), m}]
		tc, okT := classOf[[2]int{int(c.Taker), m}]
		if !okM || !okT {
			continue
		}
		if counts[e] == nil {
			counts[e] = map[forum.ContractType]map[[2]int]int{}
			totals[e] = map[forum.ContractType]int{}
		}
		if counts[e][c.Type] == nil {
			counts[e][c.Type] = map[[2]int]int{}
		}
		counts[e][c.Type][[2]int{mc, tc}]++
		totals[e][c.Type]++
	}
	r := FlowsResult{Flows: map[dataset.Era]map[forum.ContractType][]FlowCell{}}
	for e, byType := range counts {
		r.Flows[e] = map[forum.ContractType][]FlowCell{}
		months := float64(len(e.Months()))
		for t, cells := range byType {
			var list []FlowCell
			for k, n := range cells {
				list = append(list, FlowCell{
					MakerClass:  k[0],
					TakerClass:  k[1],
					AvgPerMonth: float64(n) / months,
					Share:       float64(n) / float64(totals[e][t]),
				})
			}
			sort.Slice(list, func(i, j int) bool {
				if list[i].Share != list[j].Share {
					return list[i].Share > list[j].Share
				}
				if list[i].MakerClass != list[j].MakerClass {
					return list[i].MakerClass < list[j].MakerClass
				}
				return list[i].TakerClass < list[j].TakerClass
			})
			r.Flows[e][t] = list
		}
	}
	return r
}

// Top returns the first n flows for an era and type.
func (r FlowsResult) Top(e dataset.Era, t forum.ContractType, n int) []FlowCell {
	list := r.Flows[e][t]
	if len(list) > n {
		list = list[:n]
	}
	return list
}

// Dispersion computes the Pearson dispersion of the user-month counts
// against the fitted class rates, pooled over all dimensions. The paper
// justifies its Poisson emission model by the data being
// "non-overdispersed"; a value near 1 reproduces that check.
func (r *LTMResult) Dispersion() float64 {
	var ys, mus []float64
	for i, o := range r.Obs {
		class := r.Fit.Assignment[i]
		for j, v := range o.Counts {
			ys = append(ys, v)
			mus = append(mus, r.Fit.Rates[class][j])
		}
	}
	return stats.PearsonDispersion(ys, mus, r.Fit.K*len(r.Obs[0].Counts))
}
