package analysis

import "reflect"

// SizeBytes estimates the resident heap footprint of a completed Suite:
// the struct itself plus everything reachable from it — slice backing
// arrays (at capacity, since that is what the allocator holds), map
// buckets, strings, and pointed-to values. The serve-layer result cache
// calls it exactly once per admission and keys its byte budget on the
// estimate, so the walk favours being cheap and deterministic over being
// exact: shared backing arrays are counted once per reachable slice
// header (a deliberate overestimate — the cache would rather evict early
// than blow its budget), and map overhead is approximated per entry.
func (s *Suite) SizeBytes() int64 {
	if s == nil {
		return 0
	}
	w := sizeWalker{seen: make(map[uintptr]bool)}
	v := reflect.ValueOf(s)
	w.walk(v)
	return w.bytes + int64(v.Type().Elem().Size())
}

// sizeWalker accumulates reachable bytes. seen tracks pointer and map
// identities so shared nodes (and any accidental cycle) are counted once.
type sizeWalker struct {
	bytes int64
	seen  map[uintptr]bool
}

// walk adds the heap bytes reachable *through* v. The immediate storage
// of v itself is the caller's: a struct field's inline bytes are part of
// the struct, a pointee's are added at the dereference site.
func (w *sizeWalker) walk(v reflect.Value) {
	switch v.Kind() {
	case reflect.String:
		w.bytes += int64(v.Len())
	case reflect.Slice:
		if v.IsNil() || v.Cap() == 0 {
			return
		}
		if p := v.Pointer(); w.seen[p] {
			return
		} else {
			w.seen[p] = true
		}
		elem := v.Type().Elem()
		w.bytes += int64(v.Cap()) * int64(elem.Size())
		if hasIndirections(elem) {
			for i := 0; i < v.Len(); i++ {
				w.walk(v.Index(i))
			}
		}
	case reflect.Map:
		if v.IsNil() {
			return
		}
		if p := v.Pointer(); w.seen[p] {
			return
		} else {
			w.seen[p] = true
		}
		kt, vt := v.Type().Key(), v.Type().Elem()
		// Approximate bucket overhead: key + value storage plus ~16 bytes
		// of per-entry bookkeeping (tophash, bucket slack).
		w.bytes += int64(v.Len()) * (int64(kt.Size()) + int64(vt.Size()) + 16)
		if hasIndirections(kt) || hasIndirections(vt) {
			it := v.MapRange()
			for it.Next() {
				w.walk(it.Key())
				w.walk(it.Value())
			}
		}
	case reflect.Pointer:
		if v.IsNil() {
			return
		}
		if p := v.Pointer(); w.seen[p] {
			return
		} else {
			w.seen[p] = true
		}
		w.bytes += int64(v.Type().Elem().Size())
		w.walk(v.Elem())
	case reflect.Interface:
		if !v.IsNil() {
			w.walk(v.Elem())
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if hasIndirections(t.Field(i).Type) {
				w.walk(v.Field(i))
			}
		}
	case reflect.Array:
		if hasIndirections(v.Type().Elem()) {
			for i := 0; i < v.Len(); i++ {
				w.walk(v.Index(i))
			}
		}
	}
}

// hasIndirections reports whether values of type t can reference heap
// memory beyond their inline storage — the pruning test that lets walk
// skip scanning large flat slices ([]float64, []int) element by element.
func hasIndirections(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.String, reflect.Slice, reflect.Map, reflect.Pointer, reflect.Interface:
		return true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasIndirections(t.Field(i).Type) {
				return true
			}
		}
		return false
	case reflect.Array:
		return hasIndirections(t.Elem())
	default:
		return false
	}
}
