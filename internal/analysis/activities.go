package analysis

import (
	"sort"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/textmine"
)

// SideCount is one side's tally for an activity or payment method row:
// number of completed public contracts matched on that side, and the
// unique users involved on that side.
type SideCount struct {
	Contracts int
	Users     int
}

// ActivityRow is one row of Table 3.
type ActivityRow struct {
	Category textmine.Category
	Makers   SideCount
	Takers   SideCount
	Both     SideCount
}

// ActivitiesResult is Table 3: per-category tallies over completed public
// contracts, with the all-categories totals row.
type ActivitiesResult struct {
	Rows  []ActivityRow // sorted by Both.Contracts descending
	Total ActivityRow   // the "All Trading Activities" row (union semantics)
}

// Activities computes Table 3 over completed public contracts.
func Activities(d *dataset.Dataset) ActivitiesResult { return activitiesIdx(NewIndex(d)) }

func activitiesIdx(ix *Index) ActivitiesResult {
	return activitiesOver(ix, ix.CompletedPublic())
}

func activitiesOver(ix *Index, cs []*forum.Contract) ActivitiesResult {
	type acc struct {
		makerContracts, takerContracts, bothContracts int
		makerUsers, takerUsers, bothUsers             map[forum.UserID]bool
	}
	accs := map[textmine.Category]*acc{}
	get := func(cat textmine.Category) *acc {
		a, ok := accs[cat]
		if !ok {
			a = &acc{
				makerUsers: map[forum.UserID]bool{},
				takerUsers: map[forum.UserID]bool{},
				bothUsers:  map[forum.UserID]bool{},
			}
			accs[cat] = a
		}
		return a
	}
	totalAcc := get("__total__")
	for _, c := range cs {
		catsM := ix.MakerCategories(c)
		catsT := ix.TakerCategories(c)
		seenBoth := map[textmine.Category]bool{}
		anyClassified := false
		for _, cat := range catsM {
			if cat == textmine.Uncategorised {
				continue
			}
			anyClassified = true
			a := get(cat)
			a.makerContracts++
			a.makerUsers[c.Maker] = true
			a.bothUsers[c.Maker] = true
			if !seenBoth[cat] {
				seenBoth[cat] = true
				a.bothContracts++
			}
		}
		for _, cat := range catsT {
			if cat == textmine.Uncategorised {
				continue
			}
			anyClassified = true
			a := get(cat)
			a.takerContracts++
			a.takerUsers[c.Taker] = true
			a.bothUsers[c.Taker] = true
			if !seenBoth[cat] {
				seenBoth[cat] = true
				a.bothContracts++
			}
		}
		if anyClassified {
			// The totals row counts each classified contract once per side
			// and once overall, matching the paper's note that the total is
			// below the per-category sum.
			if hasRealCategory(catsM) {
				totalAcc.makerContracts++
				totalAcc.makerUsers[c.Maker] = true
				totalAcc.bothUsers[c.Maker] = true
			}
			if hasRealCategory(catsT) {
				totalAcc.takerContracts++
				totalAcc.takerUsers[c.Taker] = true
				totalAcc.bothUsers[c.Taker] = true
			}
			totalAcc.bothContracts++
		}
	}

	var r ActivitiesResult
	for cat, a := range accs {
		if cat == "__total__" {
			continue
		}
		r.Rows = append(r.Rows, ActivityRow{
			Category: cat,
			Makers:   SideCount{a.makerContracts, len(a.makerUsers)},
			Takers:   SideCount{a.takerContracts, len(a.takerUsers)},
			Both:     SideCount{a.bothContracts, len(a.bothUsers)},
		})
	}
	sort.Slice(r.Rows, func(i, j int) bool {
		if r.Rows[i].Both.Contracts != r.Rows[j].Both.Contracts {
			return r.Rows[i].Both.Contracts > r.Rows[j].Both.Contracts
		}
		return r.Rows[i].Category < r.Rows[j].Category
	})
	r.Total = ActivityRow{
		Category: "All Trading Activities",
		Makers:   SideCount{totalAcc.makerContracts, len(totalAcc.makerUsers)},
		Takers:   SideCount{totalAcc.takerContracts, len(totalAcc.takerUsers)},
		Both:     SideCount{totalAcc.bothContracts, len(totalAcc.bothUsers)},
	}
	return r
}

func hasRealCategory(cats []textmine.Category) bool {
	for _, c := range cats {
		if c != textmine.Uncategorised {
			return true
		}
	}
	return false
}

// Row returns the row for a category, if present.
func (r ActivitiesResult) Row(cat textmine.Category) (ActivityRow, bool) {
	for _, row := range r.Rows {
		if row.Category == cat {
			return row, true
		}
	}
	return ActivityRow{}, false
}

// ProductTrend is Figure 9: the monthly number of completed public
// contracts in the overall top five product categories, excluding currency
// exchange and payments (examined separately in §4.4).
type ProductTrend struct {
	Categories []textmine.Category
	Counts     map[textmine.Category][dataset.NumMonths]int
}

// ProductTrends computes Figure 9.
func ProductTrends(d *dataset.Dataset) ProductTrend { return productTrendsIdx(NewIndex(d)) }

func productTrendsIdx(ix *Index) ProductTrend {
	overall := activitiesIdx(ix)
	var top []textmine.Category
	for _, row := range overall.Rows {
		if row.Category == textmine.CurrencyExchange || row.Category == textmine.Payments {
			continue
		}
		top = append(top, row.Category)
		if len(top) == 5 {
			break
		}
	}
	counts := make(map[textmine.Category][dataset.NumMonths]int)
	for _, c := range ix.CompletedPublic() {
		at := c.Completed
		if at.IsZero() {
			at = c.Created
		}
		m := dataset.MonthOf(at)
		matched := map[textmine.Category]bool{}
		for _, cat := range ix.MakerCategories(c) {
			matched[cat] = true
		}
		for _, cat := range ix.TakerCategories(c) {
			matched[cat] = true
		}
		for _, cat := range top {
			if matched[cat] {
				arr := counts[cat]
				arr[m]++
				counts[cat] = arr
			}
		}
	}
	return ProductTrend{Categories: top, Counts: counts}
}
