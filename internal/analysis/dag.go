package analysis

import (
	"fmt"
	"strings"

	"turnup/internal/rng"
)

// StageInfo describes one declared stage of the analysis DAG: its name,
// the stages whose results it reads, and whether it belongs to the
// statistical-model tier that SkipModels drops.
type StageInfo struct {
	Name  string
	Deps  []string
	Model bool
}

// stageSpec is the internal declaration of one Suite stage. fn computes
// the stage into its own slot(s) of res and never writes another stage's
// slot — that ownership discipline is what makes concurrent execution
// safe without locks. Stages read the corpus through the run's shared
// Index (ix.D for raw access), so derived groupings and the obligation
// classification table are built once per run instead of once per stage.
// rngLabel, when non-zero, assigns the stage a forked RNG stream; the
// scheduler forks every labelled stream from the suite source in
// declaration order before any stage runs, so streams are identical for
// every worker count and stage subset (and match the fork order of the
// old sequential pipeline).
type stageSpec struct {
	name     string
	deps     []string
	model    bool
	rngLabel uint64
	fn       func(ix *Index, res *Suite, opts *SuiteOptions, src *rng.Source) error
}

// pure wraps an infallible descriptive stage.
func pure(fn func(ix *Index, res *Suite)) func(*Index, *Suite, *SuiteOptions, *rng.Source) error {
	return func(ix *Index, res *Suite, _ *SuiteOptions, _ *rng.Source) error {
		fn(ix, res)
		return nil
	}
}

// stageTable declares the full analysis DAG in canonical order:
// descriptive stages first, model stages last. Declaration order is
// topological — every dep precedes its dependents — which init verifies
// together with name uniqueness, so the scheduler can trust the table.
var stageTable = []stageSpec{
	{name: "Taxonomy", fn: pure(func(ix *Index, res *Suite) { res.Taxonomy = Taxonomy(ix.D) })},
	{name: "Visibility", fn: pure(func(ix *Index, res *Suite) { res.Visibility = Visibility(ix.D) })},
	{name: "Growth", fn: pure(func(ix *Index, res *Suite) { res.Growth = growthIdx(ix) })},
	{name: "PublicTrend", fn: pure(func(ix *Index, res *Suite) { res.PublicTrend = publicTrendIdx(ix) })},
	{name: "TypeShares", fn: pure(func(ix *Index, res *Suite) { res.TypeShares = typeShareTrendIdx(ix) })},
	{name: "CompletionTimes", fn: pure(func(ix *Index, res *Suite) { res.CompletionTimes = CompletionTimeTrend(ix.D) })},
	{name: "Concentration", fn: pure(func(ix *Index, res *Suite) { res.Concentration = concentrateIdx(ix) })},
	{name: "KeyShares", fn: pure(func(ix *Index, res *Suite) { res.KeyShares = keySharesIdx(ix) })},
	{name: "DegreesCreated", fn: pure(func(ix *Index, res *Suite) { res.DegreesCreated = DegreeDist(ix.D.Contracts) })},
	{name: "DegreesDone", fn: pure(func(ix *Index, res *Suite) { res.DegreesDone = DegreeDist(ix.Completed()) })},
	{name: "DegreeGrowth", fn: pure(func(ix *Index, res *Suite) { res.DegreeGrowth = degreeGrowthTrendIdx(ix, false) })},
	{name: "Products", fn: pure(func(ix *Index, res *Suite) { res.Products = productTrendsIdx(ix) })},
	{name: "PaymentTrend", fn: pure(func(ix *Index, res *Suite) { res.PaymentTrend = paymentTrendsIdx(ix) })},
	{name: "Activities", fn: pure(func(ix *Index, res *Suite) { res.Activities = activitiesIdx(ix) })},
	{name: "Payments", fn: pure(func(ix *Index, res *Suite) { res.Payments = paymentMethodsIdx(ix) })},
	{name: "ChangePoints", fn: pure(func(ix *Index, res *Suite) { res.ChangePoints = changePointsIdx(ix, 3) })},
	{name: "Participation", fn: pure(func(ix *Index, res *Suite) { res.Participation = participationIdx(ix) })},
	{name: "Disputes", fn: pure(func(ix *Index, res *Suite) { res.Disputes = Disputes(ix.D) })},
	{name: "Centralisation", fn: pure(func(ix *Index, res *Suite) { res.Centralisation = centralisationTrendIdx(ix) })},
	{name: "Cohorts", fn: pure(func(ix *Index, res *Suite) { res.Cohorts = cohortsIdx(ix) })},
	{name: "Corpus", fn: pure(func(ix *Index, res *Suite) { res.Corpus = Corpus(ix.D) })},
	{name: "Stimulus", fn: pure(func(ix *Index, res *Suite) { res.Stimulus = StimulusTest(ix.D) })},
	{name: "Values", fn: func(ix *Index, res *Suite, opts *SuiteOptions, _ *rng.Source) error {
		res.Values = valuesIdx(ix)
		if opts.Metrics != nil {
			opts.Metrics.Counter("audit_high_value_total").Add(int64(res.Values.Audit.HighValue))
			opts.Metrics.Counter("audit_confirmed_total").Add(int64(res.Values.Audit.Confirmed))
			opts.Metrics.Counter("audit_revised_total").Add(int64(res.Values.Audit.Revised))
			opts.Metrics.Counter("audit_unclear_total").Add(int64(res.Values.Audit.Unclear))
			opts.Metrics.Counter("audit_unverifiable_total").Add(int64(res.Values.Audit.Unverifiable))
		}
		return nil
	}},
	{name: "ValueTrend", deps: []string{"Values"},
		fn: pure(func(ix *Index, res *Suite) { res.ValueTrend = valueTrendsIdx(ix, res.Values) })},
	{name: "LatentClasses", model: true, rngLabel: 1,
		fn: func(ix *Index, res *Suite, opts *SuiteOptions, src *rng.Source) error {
			ltm, err := LatentClasses(ix.D, LTMOptions{K: opts.LatentClassK, Restarts: 2}, src)
			if err != nil {
				return fmt.Errorf("analysis: latent classes: %w", err)
			}
			res.LTM = ltm
			return nil
		}},
	{name: "Flows", deps: []string{"LatentClasses"}, model: true,
		fn: pure(func(ix *Index, res *Suite) { res.Flows = Flows(ix.D, res.LTM) })},
	{name: "ColdStart", model: true, rngLabel: 2,
		fn: func(ix *Index, res *Suite, _ *SuiteOptions, src *rng.Source) error {
			cs, err := coldStartIdx(ix, src)
			if err != nil {
				return fmt.Errorf("analysis: cold start: %w", err)
			}
			res.ColdStart = cs
			return nil
		}},
	{name: "ZIPAll", model: true,
		fn: func(ix *Index, res *Suite, _ *SuiteOptions, _ *rng.Source) error {
			var err error
			if res.ZIPAll, err = zipAllUsersIdx(ix); err != nil {
				return fmt.Errorf("analysis: ZIP (all users): %w", err)
			}
			return nil
		}},
	{name: "ZIPSub", model: true,
		fn: func(ix *Index, res *Suite, _ *SuiteOptions, _ *rng.Source) error {
			var err error
			if res.ZIPSub, err = zipSubgroupsIdx(ix); err != nil {
				return fmt.Errorf("analysis: ZIP (subgroups): %w", err)
			}
			return nil
		}},
}

// stageIndex maps stage name → stageTable position.
var stageIndex = func() map[string]int {
	idx := make(map[string]int, len(stageTable))
	for i, st := range stageTable {
		idx[st.name] = i
	}
	return idx
}()

func init() {
	// The table is a compile-time constant; a broken edit should fail the
	// first test run loudly rather than hang or misschedule.
	seen := make(map[string]int, len(stageTable))
	for i, st := range stageTable {
		if j, dup := seen[st.name]; dup {
			panic(fmt.Sprintf("analysis: stage %q declared twice (positions %d and %d)", st.name, j, i))
		}
		seen[st.name] = i
		for _, dep := range st.deps {
			j, ok := seen[dep]
			if !ok {
				panic(fmt.Sprintf("analysis: stage %q depends on %q, which is undeclared or declared later (table must be topological)", st.name, dep))
			}
			if !st.model && stageTable[j].model {
				panic(fmt.Sprintf("analysis: descriptive stage %q cannot depend on model stage %q (SkipModels would orphan it)", st.name, dep))
			}
		}
	}
}

// Stages returns the declared analysis DAG in canonical (topological)
// order. It replaces the order-only StageNames list: consumers get each
// stage's dependencies and model tier as well as the order.
func Stages() []StageInfo {
	out := make([]StageInfo, len(stageTable))
	for i, st := range stageTable {
		out[i] = StageInfo{
			Name:  st.name,
			Deps:  append([]string(nil), st.deps...),
			Model: st.model,
		}
	}
	return out
}

// StageNames lists every Suite stage in canonical execution order, model
// stages last.
//
// Deprecated: StageNames is now derived from the stage DAG and kept so
// existing consumers compile; new code should use Stages, which also
// carries each stage's dependencies.
var StageNames = func() []string {
	names := make([]string, len(stageTable))
	for i, st := range stageTable {
		names[i] = st.name
	}
	return names
}()

// ValidateStages reports the first unknown name among names as an error
// listing the declared stage vocabulary; a nil or empty list is valid.
// It is the upfront form of the check selectStages performs, so callers
// (CLIs rejecting flags, the HTTP server answering 400) can fail fast
// before generating a corpus or starting a run.
func ValidateStages(names []string) error {
	for _, name := range names {
		if _, ok := stageIndex[name]; !ok {
			return unknownStageError(name)
		}
	}
	return nil
}

// unknownStageError is the canonical bad-stage-name error: it names the
// culprit and lists the full valid vocabulary.
func unknownStageError(name string) error {
	return fmt.Errorf("analysis: unknown stage %q (valid: %s)", name, strings.Join(StageNames, ", "))
}

// selectStages resolves a requested subset to the set of stageTable
// indexes to run, in table order: each requested stage plus its
// transitive dependencies, minus the model tier when skipModels is set.
// An empty request selects every stage. Requesting an unknown stage, or a
// model stage together with skipModels, is an error.
func selectStages(requested []string, skipModels bool) ([]int, error) {
	if len(requested) == 0 {
		sel := make([]int, 0, len(stageTable))
		for i, st := range stageTable {
			if skipModels && st.model {
				continue
			}
			sel = append(sel, i)
		}
		return sel, nil
	}
	selected := make(map[int]bool)
	var add func(name string) error
	add = func(name string) error {
		i, ok := stageIndex[name]
		if !ok {
			return unknownStageError(name)
		}
		if selected[i] {
			return nil
		}
		selected[i] = true
		for _, dep := range stageTable[i].deps {
			if err := add(dep); err != nil {
				return err
			}
		}
		return nil
	}
	for _, name := range requested {
		i, ok := stageIndex[name]
		if !ok {
			return nil, unknownStageError(name)
		}
		if skipModels && stageTable[i].model {
			return nil, fmt.Errorf("analysis: stage %q is a model stage and unavailable with SkipModels", name)
		}
		if err := add(name); err != nil {
			return nil, err
		}
	}
	sel := make([]int, 0, len(selected))
	for i := range stageTable {
		if selected[i] {
			sel = append(sel, i)
		}
	}
	return sel, nil
}
