package analysis

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/obs"
	"turnup/internal/rng"
)

// RunSuiteCtx executes the analysis DAG over the dataset with a pool of
// opts.Workers goroutines (default runtime.GOMAXPROCS(0)). A stage is
// dispatched as soon as every stage it depends on has completed; almost
// all descriptive stages are independent reads of the immutable dataset,
// so on a multi-core machine they run concurrently.
//
// Results are bit-for-bit identical for every worker count: each stage
// writes only its own Suite slot, stage inputs are either the dataset or
// completed dependency slots (ordered by the scheduler's happens-before
// edges), and RNG-consuming stages draw from streams forked in
// declaration order before any stage runs.
//
// Cancellation is cooperative: when ctx is cancelled the scheduler stops
// dispatching, drains stages already in flight, and returns ctx.Err().
// A stage error likewise halts dispatch, drains, and is returned (first
// error wins).
func RunSuiteCtx(ctx context.Context, d *dataset.Dataset, opts SuiteOptions, src *rng.Source) (*Suite, error) {
	if opts.LatentClassK <= 0 {
		opts.LatentClassK = 12
	}
	sel, err := selectStages(opts.Stages, opts.SkipModels)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Pre-fork every labelled RNG stream in declaration order, so stage
	// streams do not depend on worker count, completion order, or the
	// selected subset — and match the old sequential pipeline's forks.
	streams := make(map[int]*rng.Source)
	for i, st := range stageTable {
		if st.rngLabel != 0 {
			streams[i] = src.Fork(st.rngLabel)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sel) && len(sel) > 0 {
		workers = len(sel)
	}

	res := &Suite{}
	suiteSpan := opts.Trace.Start("analysis/RunSuite")
	defer suiteSpan.End()
	suiteSpan.SetInt("workers", workers)
	suiteSpan.SetInt("stages", len(sel))

	// One Index per run: every stage reads the corpus through it, so
	// shared groupings (month buckets, subsets, the obligation
	// classification table) are built once, by whichever stage first needs
	// them, and reused by the rest. A caller-supplied Index over the same
	// dataset (the ingest tier's incrementally-extended one) stands in for
	// a fresh derivation; its groups are identical by Append's contract.
	ix := opts.Index
	if ix == nil || ix.D != d {
		ix = NewIndex(d)
	}
	sched := &scheduler{ix: ix, res: res, opts: &opts, streams: streams, parent: suiteSpan}

	// Per-selection dependency bookkeeping. selectStages guarantees every
	// dep of a selected stage is selected too, so indegrees are complete.
	inSel := make(map[int]bool, len(sel))
	for _, i := range sel {
		inSel[i] = true
	}
	indeg := make(map[int]int, len(sel))
	dependents := make(map[int][]int, len(sel))
	for _, i := range sel {
		for _, dep := range stageTable[i].deps {
			j := stageIndex[dep]
			if inSel[j] {
				indeg[i]++
				dependents[j] = append(dependents[j], i)
			}
		}
	}

	type outcome struct {
		idx int
		err error
	}
	ready := make(chan int, len(sel))
	done := make(chan outcome, len(sel))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range ready {
				// After a halt, queued-but-unstarted stages are skipped;
				// only stages already past this check drain to completion.
				if sched.halted.Load() {
					done <- outcome{idx, nil}
					continue
				}
				done <- outcome{idx, sched.runStage(worker, idx)}
			}
		}(w)
	}

	inflight := 0
	enqueue := func(i int) {
		inflight++
		ready <- i // buffered to len(sel); never blocks
	}
	for _, i := range sel {
		if indeg[i] == 0 {
			enqueue(i)
		}
	}

	var firstErr error
	ctxDone := ctx.Done()
	for inflight > 0 {
		select {
		case out := <-done:
			inflight--
			if out.err != nil {
				if firstErr == nil {
					firstErr = out.err
				}
				sched.halted.Store(true)
				continue
			}
			if sched.halted.Load() {
				continue
			}
			for _, next := range dependents[out.idx] {
				indeg[next]--
				if indeg[next] == 0 {
					enqueue(next)
				}
			}
		case <-ctxDone:
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			sched.halted.Store(true)
			ctxDone = nil // drain in-flight work via done only
		}
	}
	close(ready)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// scheduler carries the per-run state shared by the worker pool.
type scheduler struct {
	ix      *Index
	res     *Suite
	opts    *SuiteOptions
	streams map[int]*rng.Source
	parent  *obs.Span

	progressMu sync.Mutex  // serialises the user's Progress callback
	halted     atomic.Bool // stop-dispatch latch: stage error or ctx cancel
}

// runStage executes one stage under the observability contract: the
// Progress callback, a span (with a worker attr) under the RunSuite span,
// the stage-timing histogram and counter, and the in-flight gauge.
func (s *scheduler) runStage(worker, idx int) error {
	st := &stageTable[idx]
	if s.opts.Progress != nil {
		s.progressMu.Lock()
		s.opts.Progress(st.name)
		s.progressMu.Unlock()
	}
	sp := s.parent.StartChild("analysis/" + st.name)
	sp.SetInt("worker", worker)
	inflight := s.opts.Metrics.Gauge("analysis_stages_inflight")
	inflight.Add(1)
	start := time.Time{}
	if s.opts.Metrics != nil {
		start = time.Now()
	}
	err := st.fn(s.ix, s.res, s.opts, s.streams[idx])
	sp.End()
	inflight.Add(-1)
	if s.opts.Metrics != nil {
		s.opts.Metrics.Histogram("analysis_stage_seconds").Observe(time.Since(start).Seconds())
		s.opts.Metrics.Counter("analysis_stages_total").Inc()
	}
	return err
}
