// Package analysis implements every table and figure of the paper's
// evaluation as a pure function from a dataset to a typed result. The
// per-experiment index in DESIGN.md maps each function here to the paper
// artefact it regenerates.
package analysis

import (
	"turnup/internal/dataset"
	"turnup/internal/forum"
)

// Bucket is one of Table 1's seven status columns.
type Bucket int

// Table 1 status buckets, in column order.
const (
	BucketComplete Bucket = iota
	BucketActive
	BucketDisputed
	BucketIncomplete
	BucketCancelled
	BucketDenied
	BucketExpired
	NumBuckets = 7
)

// BucketNames are the column headers of Table 1.
var BucketNames = [NumBuckets]string{
	"Complete", "Active Deal", "Disputed", "Incomplete", "Cancelled", "Denied", "Expired",
}

// BucketOf collapses a lifecycle status into its Table 1 column (the paper
// simplifies one-side-marked and fully completed into "Complete", and a
// still-pending contract is counted with active deals).
func BucketOf(s forum.Status) Bucket {
	switch s {
	case forum.StatusCompleted:
		return BucketComplete
	case forum.StatusActive, forum.StatusMarkedComplete, forum.StatusPending:
		return BucketActive
	case forum.StatusDisputed:
		return BucketDisputed
	case forum.StatusIncomplete:
		return BucketIncomplete
	case forum.StatusCancelled:
		return BucketCancelled
	case forum.StatusDenied:
		return BucketDenied
	default:
		return BucketExpired
	}
}

// TaxonomyResult is Table 1: contract counts per type × status bucket.
type TaxonomyResult struct {
	Counts [forum.NumContractTypes][NumBuckets]int
	Total  int
}

// Taxonomy computes Table 1 over all contracts.
func Taxonomy(d *dataset.Dataset) TaxonomyResult {
	var r TaxonomyResult
	for _, c := range d.Contracts {
		r.Counts[c.Type][BucketOf(c.Status)]++
		r.Total++
	}
	return r
}

// TypeTotal returns the number of contracts of type t.
func (r TaxonomyResult) TypeTotal(t forum.ContractType) int {
	sum := 0
	for _, n := range r.Counts[t] {
		sum += n
	}
	return sum
}

// BucketTotal returns the number of contracts in bucket b across types.
func (r TaxonomyResult) BucketTotal(b Bucket) int {
	sum := 0
	for t := range r.Counts {
		sum += r.Counts[t][b]
	}
	return sum
}

// Share returns the cell's share of all contracts.
func (r TaxonomyResult) Share(t forum.ContractType, b Bucket) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Counts[t][b]) / float64(r.Total)
}

// CompletionRate returns the within-type completion rate.
func (r TaxonomyResult) CompletionRate(t forum.ContractType) float64 {
	total := r.TypeTotal(t)
	if total == 0 {
		return 0
	}
	return float64(r.Counts[t][BucketComplete]) / float64(total)
}

// VisibilityRow is one row of Table 2.
type VisibilityRow struct {
	Type      forum.ContractType
	Completed bool // false = the "Created" rows
	Private   int
	Public    int
}

// Total returns the row total.
func (v VisibilityRow) Total() int { return v.Private + v.Public }

// PublicShare returns the public fraction of the row.
func (v VisibilityRow) PublicShare() float64 {
	if v.Total() == 0 {
		return 0
	}
	return float64(v.Public) / float64(v.Total())
}

// VisibilityResult is Table 2: visibility by type, for created and
// completed contracts.
type VisibilityResult struct {
	Rows []VisibilityRow
}

// Visibility computes Table 2.
func Visibility(d *dataset.Dataset) VisibilityResult {
	var created, completed [forum.NumContractTypes]VisibilityRow
	for i, t := range forum.ContractTypes {
		created[i].Type = t
		completed[i].Type = t
		completed[i].Completed = true
	}
	for _, c := range d.Contracts {
		i := int(c.Type)
		if c.Public {
			created[i].Public++
		} else {
			created[i].Private++
		}
		if c.IsComplete() {
			if c.Public {
				completed[i].Public++
			} else {
				completed[i].Private++
			}
		}
	}
	r := VisibilityResult{}
	r.Rows = append(r.Rows, created[:]...)
	r.Rows = append(r.Rows, completed[:]...)
	return r
}

// OverallPublicShare returns the public fraction across the created or
// completed rows.
func (r VisibilityResult) OverallPublicShare(completed bool) float64 {
	var pub, total int
	for _, row := range r.Rows {
		if row.Completed != completed {
			continue
		}
		pub += row.Public
		total += row.Total()
	}
	if total == 0 {
		return 0
	}
	return float64(pub) / float64(total)
}
