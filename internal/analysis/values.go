package analysis

import (
	"math/bits"
	"time"

	"turnup/internal/chain"
	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/fx"
	"turnup/internal/stats"
	"turnup/internal/textmine"
)

// TypeValueSummary summarises extracted values within one contract type.
type TypeValueSummary struct {
	TotalUSD float64
	MeanUSD  float64
	MaxUSD   float64
	Count    int
}

// ValueRow is one activity row of Table 5's left half.
type ValueRow struct {
	Category  textmine.Category
	MakersUSD float64
	TakersUSD float64
}

// TotalUSD is the row total (makers + takers, as in the paper).
func (v ValueRow) TotalUSD() float64 { return v.MakersUSD + v.TakersUSD }

// MethodValueRow is one payment-method row of Table 5's right half.
type MethodValueRow struct {
	Method    textmine.Method
	MakersUSD float64
	TakersUSD float64
}

// TotalUSD is the row total.
func (v MethodValueRow) TotalUSD() float64 { return v.MakersUSD + v.TakersUSD }

// AuditOutcome tallies the §4.5 manual verification of high-value
// (>$1,000) contracts against the ledger.
type AuditOutcome struct {
	HighValue int // contracts exceeding the threshold
	Confirmed int // ledger value matches the declaration
	Revised   int // ledger value differs; contract value updated
	Unclear   int // no evidence or no matching transaction
	// Unverifiable counts high-value contracts that could not be audited at
	// all because the dataset carries no ledger — the turnup.Load case,
	// where CSV round-trips drop the chain evidence. Distinguishing this
	// from Unclear stops ledger-less runs from silently reporting an audit
	// of zeros.
	Unverifiable int
}

// ValueReport bundles every §4.5 quantity.
type ValueReport struct {
	// PerContract holds the post-audit USD value of each completed public
	// contract with a determinable non-zero value (VOUCH COPY excluded).
	PerContract map[forum.ContractID]float64

	TotalUSD float64
	MeanUSD  float64
	MaxUSD   float64
	ByType   map[forum.ContractType]TypeValueSummary

	ActivityValues []ValueRow       // Table 5 left, sorted by total desc
	MethodValues   []MethodValueRow // Table 5 right, sorted by total desc

	Audit AuditOutcome

	// ExtrapolatedUSD is the public+private lower bound, extrapolated by
	// contract type under the private-at-least-as-valuable assumption.
	ExtrapolatedUSD float64

	// TopDecileShare is the fraction of total value held by the top 10% of
	// users by value (the paper: >70%).
	TopDecileShare float64
	// MeanPerUserUSD is the average trading value per participating user.
	MeanPerUserUSD float64
}

const (
	highValueThreshold = 1000.0
	auditTolerance     = 0.10
)

// Values computes the full §4.5 value analysis (Table 5 and the
// surrounding totals) from completed public contracts.
func Values(d *dataset.Dataset) ValueReport { return valuesIdx(NewIndex(d)) }

func valuesIdx(ix *Index) ValueReport {
	d := ix.D
	fxTab := fx.Default()
	r := ValueReport{
		PerContract: make(map[forum.ContractID]float64),
		ByType:      make(map[forum.ContractType]TypeValueSummary),
	}
	ledgerEmpty := !d.HasLedger()
	actAcc := map[textmine.Category]*ValueRow{}
	methAcc := map[textmine.Method]*MethodValueRow{}
	userValue := map[forum.UserID]float64{}
	extracted := ix.groups().extractedValues()

	for _, c := range ix.CompletedPublic() {
		if c.Type == forum.VouchCopy {
			continue // reputation proofs, not economic trades
		}
		at := c.Completed
		if at.IsZero() {
			at = c.Created
		}
		mv := firstValueUSD(lookupValues(extracted, c.MakerObligation), fxTab, at)
		tv := firstValueUSD(lookupValues(extracted, c.TakerObligation), fxTab, at)
		if mv == 0 && tv == 0 {
			continue // value undeterminable for both sides: excluded
		}
		// Goods without a quoted value are assumed equal to the other side.
		if mv == 0 {
			mv = tv
		}
		if tv == 0 {
			tv = mv
		}
		value := (mv + tv) / 2 // double counting rule

		// High-value audit against the ledger. Values beyond $10k with no
		// confirmable transaction are excluded, mirroring the paper's
		// manual rule that such quotes are "likely due to typing errors"
		// (its post-audit maximum is $9,861).
		if value > highValueThreshold {
			r.Audit.HighValue++
			if ledgerEmpty {
				// No ledger to audit against (loaded datasets): count the
				// contract explicitly instead of letting it masquerade as
				// an "unclear" audit of an empty chain.
				r.Audit.Unverifiable++
				if value > 10000 {
					continue
				}
			} else {
				switch verifyAgainstLedger(d.Ledger, c, value) {
				case chain.Confirmed:
					r.Audit.Confirmed++
				case chain.Mismatch:
					r.Audit.Revised++
					v := d.Ledger.VerifyHash(c.TxHash, value, auditTolerance)
					value = v.ActualUSD
					mv, tv = value, value
				default:
					r.Audit.Unclear++
					if value > 10000 {
						continue
					}
				}
			}
		}

		r.PerContract[c.ID] = value
		r.TotalUSD += value
		if value > r.MaxUSD {
			r.MaxUSD = value
		}
		ts := r.ByType[c.Type]
		ts.TotalUSD += value
		ts.Count++
		if value > ts.MaxUSD {
			ts.MaxUSD = value
		}
		r.ByType[c.Type] = ts
		userValue[c.Maker] += value
		userValue[c.Taker] += value

		// Table 5 left: per-activity maker/taker value sums — bitmask union
		// of both sides' categories instead of a per-contract map.
		for mask := ix.categoryMask(c); mask != 0; mask &= mask - 1 {
			cat := textmine.Categories[trailingBit(mask)]
			row, ok := actAcc[cat]
			if !ok {
				row = &ValueRow{Category: cat}
				actAcc[cat] = row
			}
			row.MakersUSD += mv
			row.TakersUSD += tv
		}
		// Table 5 right: per-method value sums.
		for mask := ix.methodMask(c); mask != 0; mask &= mask - 1 {
			m := textmine.Methods[trailingBit(mask)]
			row, ok := methAcc[m]
			if !ok {
				row = &MethodValueRow{Method: m}
				methAcc[m] = row
			}
			row.MakersUSD += mv
			row.TakersUSD += tv
		}
	}

	if n := len(r.PerContract); n > 0 {
		r.MeanUSD = r.TotalUSD / float64(n)
	}
	for t, ts := range r.ByType {
		if ts.Count > 0 {
			ts.MeanUSD = ts.TotalUSD / float64(ts.Count)
			r.ByType[t] = ts
		}
	}
	for _, row := range actAcc {
		r.ActivityValues = append(r.ActivityValues, *row)
	}
	sortValueRows(r.ActivityValues)
	for _, row := range methAcc {
		r.MethodValues = append(r.MethodValues, *row)
	}
	sortMethodRows(r.MethodValues)

	r.ExtrapolatedUSD = extrapolate(ix, r.ByType)
	r.TopDecileShare, r.MeanPerUserUSD = userValueStats(userValue)
	return r
}

// firstValueUSD walks a side's extracted quoted values (the index's memo
// table, one ExtractValues per distinct text) and returns the first
// converted to USD at the transaction time. An unknown denomination falls
// back to USD, per the paper's default.
func firstValueUSD(ms []textmine.Money, tab *fx.Table, at time.Time) float64 {
	for _, m := range ms {
		usd, err := tab.ToUSD(m.Amount, m.Currency, at)
		if err != nil {
			usd = m.Amount // unknown denomination: treat as USD
		}
		if usd > 0 {
			return usd
		}
	}
	return 0
}

// lookupValues resolves a text's extracted values through the memo table,
// parsing directly only for text outside it (the table covers the whole
// §4.5 population, so this is belt-and-braces).
func lookupValues(vals map[string][]textmine.Money, text string) []textmine.Money {
	if ms, ok := vals[text]; ok {
		return ms
	}
	return textmine.ExtractValues(text)
}

// trailingBit returns the index of the lowest set bit (mask != 0).
func trailingBit(mask uint32) int {
	return bits.TrailingZeros32(mask)
}

func verifyAgainstLedger(l *chain.Ledger, c *forum.Contract, declared float64) chain.Verdict {
	if c.TxHash == "" {
		return chain.NotFound
	}
	return l.VerifyHash(c.TxHash, declared, auditTolerance).Verdict
}

// extrapolate scales each type's public value by its private multiple,
// assuming private contracts are at least as valuable on average.
func extrapolate(ix *Index, byType map[forum.ContractType]TypeValueSummary) float64 {
	completedAll := map[forum.ContractType]int{}
	completedPublic := map[forum.ContractType]int{}
	for _, c := range ix.Completed() {
		completedAll[c.Type]++
		if c.Public {
			completedPublic[c.Type]++
		}
	}
	total := 0.0
	for t, ts := range byType {
		if completedPublic[t] == 0 {
			continue
		}
		scale := float64(completedAll[t]) / float64(completedPublic[t])
		total += ts.TotalUSD * scale
	}
	return total
}

func userValueStats(userValue map[forum.UserID]float64) (topDecileShare, meanPerUser float64) {
	if len(userValue) == 0 {
		return 0, 0
	}
	vals := make([]float64, 0, len(userValue))
	for _, v := range userValue {
		vals = append(vals, v)
	}
	return stats.ShareOfTop(vals, 0.10), stats.Mean(vals)
}

func sortValueRows(rows []ValueRow) {
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].TotalUSD() > rows[i].TotalUSD() {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
}

func sortMethodRows(rows []MethodValueRow) {
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].TotalUSD() > rows[i].TotalUSD() {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
}

// ValueTrend is Figure 11: monthly USD value by contract type, by the
// top-5 payment methods, and by the top-5 product categories (excluding
// the money-movement ones).
type ValueTrend struct {
	ByType     map[forum.ContractType][dataset.NumMonths]float64
	ByMethod   map[textmine.Method][dataset.NumMonths]float64
	ByCategory map[textmine.Category][dataset.NumMonths]float64
	Methods    []textmine.Method
	Categories []textmine.Category
}

// ValueTrends computes Figure 11 from a previously computed ValueReport.
func ValueTrends(d *dataset.Dataset, report ValueReport) ValueTrend {
	return valueTrendsIdx(NewIndex(d), report)
}

func valueTrendsIdx(ix *Index, report ValueReport) ValueTrend {
	t := ValueTrend{
		ByType:     make(map[forum.ContractType][dataset.NumMonths]float64),
		ByMethod:   make(map[textmine.Method][dataset.NumMonths]float64),
		ByCategory: make(map[textmine.Category][dataset.NumMonths]float64),
	}
	// Top-5 methods / product categories by total value.
	for i, row := range report.MethodValues {
		if i == 5 {
			break
		}
		t.Methods = append(t.Methods, row.Method)
	}
	for _, row := range report.ActivityValues {
		if row.Category == textmine.CurrencyExchange || row.Category == textmine.Payments {
			continue
		}
		t.Categories = append(t.Categories, row.Category)
		if len(t.Categories) == 5 {
			break
		}
	}
	topM := map[textmine.Method]bool{}
	for _, m := range t.Methods {
		topM[m] = true
	}
	topC := map[textmine.Category]bool{}
	for _, cat := range t.Categories {
		topC[cat] = true
	}

	for _, c := range ix.CompletedPublic() {
		value, ok := report.PerContract[c.ID]
		if !ok {
			continue
		}
		at := c.Completed
		if at.IsZero() {
			at = c.Created
		}
		m := dataset.MonthOf(at)
		arr := t.ByType[c.Type]
		arr[m] += value
		t.ByType[c.Type] = arr
		for mask := ix.methodMask(c); mask != 0; mask &= mask - 1 {
			meth := textmine.Methods[trailingBit(mask)]
			if topM[meth] {
				a := t.ByMethod[meth]
				a[m] += value
				t.ByMethod[meth] = a
			}
		}
		for mask := ix.categoryMask(c); mask != 0; mask &= mask - 1 {
			cat := textmine.Categories[trailingBit(mask)]
			if topC[cat] {
				a := t.ByCategory[cat]
				a[m] += value
				t.ByCategory[cat] = a
			}
		}
	}
	return t
}
