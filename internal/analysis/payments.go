package analysis

import (
	"sort"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/textmine"
)

// PaymentRow is one row of Table 4.
type PaymentRow struct {
	Method textmine.Method
	Makers SideCount
	Takers SideCount
	Both   SideCount
}

// PaymentsResult is Table 4: payment-method tallies over completed public
// contracts classified into the money-movement activities (currency
// exchange, payments, giftcard), exactly the subset the paper inspects.
type PaymentsResult struct {
	Rows  []PaymentRow
	Total PaymentRow
}

// PaymentMethods computes Table 4.
func PaymentMethods(d *dataset.Dataset) PaymentsResult { return paymentMethodsIdx(NewIndex(d)) }

func paymentMethodsIdx(ix *Index) PaymentsResult {
	cs := ix.MoneyContracts()
	type acc struct {
		makerContracts, takerContracts, bothContracts int
		makerUsers, takerUsers, bothUsers             map[forum.UserID]bool
	}
	accs := map[textmine.Method]*acc{}
	get := func(m textmine.Method) *acc {
		a, ok := accs[m]
		if !ok {
			a = &acc{
				makerUsers: map[forum.UserID]bool{},
				takerUsers: map[forum.UserID]bool{},
				bothUsers:  map[forum.UserID]bool{},
			}
			accs[m] = a
		}
		return a
	}
	totalAcc := get("__total__")
	for _, c := range cs {
		msM := ix.MakerMethods(c)
		msT := ix.TakerMethods(c)
		seenBoth := map[textmine.Method]bool{}
		for _, m := range msM {
			a := get(m)
			a.makerContracts++
			a.makerUsers[c.Maker] = true
			a.bothUsers[c.Maker] = true
			if !seenBoth[m] {
				seenBoth[m] = true
				a.bothContracts++
			}
		}
		for _, m := range msT {
			a := get(m)
			a.takerContracts++
			a.takerUsers[c.Taker] = true
			a.bothUsers[c.Taker] = true
			if !seenBoth[m] {
				seenBoth[m] = true
				a.bothContracts++
			}
		}
		if len(msM) > 0 || len(msT) > 0 {
			if len(msM) > 0 {
				totalAcc.makerContracts++
				totalAcc.makerUsers[c.Maker] = true
				totalAcc.bothUsers[c.Maker] = true
			}
			if len(msT) > 0 {
				totalAcc.takerContracts++
				totalAcc.takerUsers[c.Taker] = true
				totalAcc.bothUsers[c.Taker] = true
			}
			totalAcc.bothContracts++
		}
	}
	var r PaymentsResult
	for m, a := range accs {
		if m == "__total__" {
			continue
		}
		r.Rows = append(r.Rows, PaymentRow{
			Method: m,
			Makers: SideCount{a.makerContracts, len(a.makerUsers)},
			Takers: SideCount{a.takerContracts, len(a.takerUsers)},
			Both:   SideCount{a.bothContracts, len(a.bothUsers)},
		})
	}
	sort.Slice(r.Rows, func(i, j int) bool {
		if r.Rows[i].Both.Contracts != r.Rows[j].Both.Contracts {
			return r.Rows[i].Both.Contracts > r.Rows[j].Both.Contracts
		}
		return r.Rows[i].Method < r.Rows[j].Method
	})
	r.Total = PaymentRow{
		Method: "All Methods",
		Makers: SideCount{totalAcc.makerContracts, len(totalAcc.makerUsers)},
		Takers: SideCount{totalAcc.takerContracts, len(totalAcc.takerUsers)},
		Both:   SideCount{totalAcc.bothContracts, len(totalAcc.bothUsers)},
	}
	return r
}

// Row returns the row for a method, if present.
func (r PaymentsResult) Row(m textmine.Method) (PaymentRow, bool) {
	for _, row := range r.Rows {
		if row.Method == m {
			return row, true
		}
	}
	return PaymentRow{}, false
}

// RepeatRate returns the mean transactions per unique trader for a method
// (the paper: V-Bucks peaks at 8.37 transactions per trader).
func (r PaymentsResult) RepeatRate(m textmine.Method) float64 {
	row, ok := r.Row(m)
	if !ok || row.Both.Users == 0 {
		return 0
	}
	return float64(row.Both.Contracts) / float64(row.Both.Users)
}

// PaymentTrend is Figure 10: the monthly number of completed public
// contracts mentioning each of the overall top-5 payment methods.
type PaymentTrend struct {
	Methods []textmine.Method
	Counts  map[textmine.Method][dataset.NumMonths]int
}

// PaymentTrends computes Figure 10.
func PaymentTrends(d *dataset.Dataset) PaymentTrend { return paymentTrendsIdx(NewIndex(d)) }

func paymentTrendsIdx(ix *Index) PaymentTrend {
	overall := paymentMethodsIdx(ix)
	var top []textmine.Method
	for _, row := range overall.Rows {
		top = append(top, row.Method)
		if len(top) == 5 {
			break
		}
	}
	counts := make(map[textmine.Method][dataset.NumMonths]int)
	for _, c := range ix.MoneyContracts() {
		at := c.Completed
		if at.IsZero() {
			at = c.Created
		}
		m := dataset.MonthOf(at)
		mentioned := map[textmine.Method]bool{}
		for _, mm := range ix.MakerMethods(c) {
			mentioned[mm] = true
		}
		for _, mm := range ix.TakerMethods(c) {
			mentioned[mm] = true
		}
		for _, mm := range top {
			if mentioned[mm] {
				arr := counts[mm]
				arr[m]++
				counts[mm] = arr
			}
		}
	}
	return PaymentTrend{Methods: top, Counts: counts}
}
