package analysis

import (
	"reflect"
	"sync"
	"testing"

	"turnup/internal/dataset"
	"turnup/internal/textmine"
)

// TestIndexMatchesDatasetScans pins every index group to the ad-hoc
// Dataset scan it replaced.
func TestIndexMatchesDatasetScans(t *testing.T) {
	d := corpus(t)
	ix := NewIndex(d)

	if got, want := ix.ByMonth(), d.ByMonth(); !reflect.DeepEqual(got, want) {
		t.Error("ByMonth diverges from Dataset.ByMonth")
	}
	if got, want := ix.CompletedByMonth(), d.CompletedByMonth(); !reflect.DeepEqual(got, want) {
		t.Error("CompletedByMonth diverges from Dataset.CompletedByMonth")
	}
	if got, want := ix.Completed(), d.Completed(); !reflect.DeepEqual(got, want) {
		t.Error("Completed diverges from Dataset.Completed")
	}
	if got, want := ix.Public(), d.Public(); !reflect.DeepEqual(got, want) {
		t.Error("Public diverges from Dataset.Public")
	}
	if got, want := ix.CompletedPublic(), d.CompletedPublic(); !reflect.DeepEqual(got, want) {
		t.Error("CompletedPublic diverges from Dataset.CompletedPublic")
	}
	for _, e := range dataset.Eras {
		if got, want := ix.InEra(e), d.InEra(e); !reflect.DeepEqual(got, want) {
			t.Errorf("InEra(%v) diverges from Dataset.InEra", e)
		}
	}

	users := ix.UserContracts()
	perUser := 0
	for u, cs := range users {
		perUser += len(cs)
		for _, c := range cs {
			if c.Maker != u && c.Taker != u {
				t.Fatalf("user %d listed for contract %d they are not party to", u, c.ID)
			}
		}
	}
	want := 0
	for _, c := range d.Contracts {
		want++
		if c.Taker != c.Maker {
			want++
		}
	}
	if perUser != want {
		t.Errorf("UserContracts holds %d entries, want %d", perUser, want)
	}
}

// TestIndexCategoriesMatchDirect verifies the memoized obligation table
// returns exactly what direct categorisation computes, for every
// completed public contract and for the direct-parse fallback outside
// the table.
func TestIndexCategoriesMatchDirect(t *testing.T) {
	d := corpus(t)
	ix := NewIndex(d)
	for _, c := range d.CompletedPublic() {
		if got, want := ix.MakerCategories(c), textmine.Categorize(c.MakerObligation); !reflect.DeepEqual(got, want) {
			t.Fatalf("contract %d: maker categories %v, direct %v", c.ID, got, want)
		}
		if got, want := ix.TakerCategories(c), textmine.Categorize(c.TakerObligation); !reflect.DeepEqual(got, want) {
			t.Fatalf("contract %d: taker categories %v, direct %v", c.ID, got, want)
		}
		if got, want := ix.MakerMethods(c), textmine.PaymentMethods(c.MakerObligation); !reflect.DeepEqual(got, want) {
			t.Fatalf("contract %d: maker methods %v, direct %v", c.ID, got, want)
		}
		if got, want := ix.TakerMethods(c), textmine.PaymentMethods(c.TakerObligation); !reflect.DeepEqual(got, want) {
			t.Fatalf("contract %d: taker methods %v, direct %v", c.ID, got, want)
		}
	}
	// Fallback path: a private or incomplete contract is outside the
	// table but must still classify.
	for _, c := range d.Contracts {
		if c.Public && c.IsComplete() {
			continue
		}
		if got, want := ix.MakerCategories(c), textmine.Categorize(c.MakerObligation); !reflect.DeepEqual(got, want) {
			t.Fatalf("fallback contract %d: %v != %v", c.ID, got, want)
		}
		break
	}
}

// TestIndexConcurrentConstruction hammers every lazy group from many
// goroutines at once — the pattern the scheduler produces when multiple
// stages touch a cold index simultaneously. Run under -race this pins
// the once-guard; the result checks pin that racing builders agree.
func TestIndexConcurrentConstruction(t *testing.T) {
	d := corpus(t)
	for round := 0; round < 3; round++ {
		ix := NewIndex(d)
		ref := NewIndex(d) // built serially below, compared after the race
		refCats := ref.MakerCategories(ref.CompletedPublic()[0])

		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				switch g % 8 {
				case 0:
					ix.ByMonth()
				case 1:
					ix.CompletedByMonth()
				case 2:
					ix.CompletedPublic()
				case 3:
					ix.InEra(dataset.EraStable)
				case 4:
					ix.UserContracts()
				case 5:
					ix.FirstEraOfUse()
				case 6:
					ix.MoneyContracts()
				default:
					ix.MakerCategories(d.CompletedPublic()[0])
				}
			}(g)
		}
		wg.Wait()

		if got := ix.MakerCategories(ix.CompletedPublic()[0]); !reflect.DeepEqual(got, refCats) {
			t.Fatalf("round %d: concurrent build produced %v, serial %v", round, got, refCats)
		}
		if !reflect.DeepEqual(ix.MoneyContracts(), ref.MoneyContracts()) {
			t.Fatalf("round %d: MoneyContracts diverge between concurrent and serial builds", round)
		}
	}
}
