package analysis

import (
	"math"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/stats"
)

// CorpusStats reproduces the §3 prose description of the dataset: contract
// counts, thread/post/member volumes, and the thread-linkage rates.
type CorpusStats struct {
	Contracts int
	Threads   int
	Posts     int
	// PostingMembers counts users with at least one post.
	PostingMembers int

	// PublicWithThread is the share of public contracts associated with a
	// thread (the paper: 68.4%); OverallWithThread is the same over all
	// contracts (the paper: 8.2%).
	PublicWithThread  float64
	OverallWithThread float64
}

// Corpus computes the §3 statistics.
func Corpus(d *dataset.Dataset) CorpusStats {
	s := CorpusStats{
		Contracts: len(d.Contracts),
		Threads:   len(d.Threads),
		Posts:     len(d.Posts),
	}
	posters := map[forum.UserID]bool{}
	for _, p := range d.Posts {
		posters[p.Author] = true
	}
	s.PostingMembers = len(posters)
	var public, publicLinked, linked int
	for _, c := range d.Contracts {
		if c.Thread != 0 {
			linked++
		}
		if c.Public {
			public++
			if c.Thread != 0 {
				publicLinked++
			}
		}
	}
	if public > 0 {
		s.PublicWithThread = float64(publicLinked) / float64(public)
	}
	if s.Contracts > 0 {
		s.OverallWithThread = float64(linked) / float64(s.Contracts)
	}
	return s
}

// StimulusResult quantifies the paper's headline COVID-19 conclusion —
// "a stimulus of the market, rather than a transformation" — as a
// chi-square test of contract-type composition between late STABLE and
// COVID-19. Cramér's V near 0 means the composition barely moved even if
// the chi-square statistic is significant at these sample sizes.
type StimulusResult struct {
	ChiSquare float64
	DF        int
	PValue    float64
	CramersV  float64
	// VolumeRatio is COVID-19's monthly contract volume relative to late
	// STABLE — the "stimulus" part.
	VolumeRatio float64
}

// StimulusTest compares the type mix of the last three STABLE months
// against the COVID-19 era.
func StimulusTest(d *dataset.Dataset) StimulusResult {
	var before, during [forum.NumContractTypes]float64
	var nBefore, nDuring float64
	for _, c := range d.Contracts {
		m := int(dataset.MonthOf(c.Created))
		switch {
		case m >= 18 && m <= 20: // Dec 2019 – Feb 2020
			before[c.Type]++
			nBefore++
		case dataset.EraOf(c.Created) == dataset.EraCovid:
			during[c.Type]++
			nDuring++
		}
	}
	res := StimulusResult{}
	if nBefore == 0 || nDuring == 0 {
		return res
	}
	// Chi-square over the 2×T contingency table (types with any mass).
	total := nBefore + nDuring
	cols := 0
	for t := 0; t < forum.NumContractTypes; t++ {
		colTotal := before[t] + during[t]
		if colTotal == 0 {
			continue
		}
		cols++
		for _, rc := range []struct{ obs, rowTotal float64 }{
			{before[t], nBefore}, {during[t], nDuring},
		} {
			expected := rc.rowTotal * colTotal / total
			if expected > 0 {
				d := rc.obs - expected
				res.ChiSquare += d * d / expected
			}
		}
	}
	res.DF = cols - 1
	if res.DF > 0 {
		res.PValue = stats.ChiSquarePValue(res.ChiSquare, res.DF)
		res.CramersV = math.Sqrt(res.ChiSquare / (total * float64(minInt(1, res.DF))))
	}
	covidMonths := float64(len(dataset.EraCovid.Months()))
	res.VolumeRatio = (nDuring / covidMonths) / (nBefore / 3)
	return res
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
