package analysis

import (
	"runtime"
	"sync"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/textmine"
)

// corpusGroups is the full set of derived groupings over one immutable
// corpus — the value an Index hands out and the dataset's derived-cache
// slot stores, so every Index over the same corpus (per-stage, per-report,
// per-generation) shares one construction instead of each rebuilding it.
//
// The eager groups are filled by buildGroups in a single scan of the
// columnar projection; the obligation-classification and value-extraction
// tables stay lazy behind their own sync.Once so partial runs never pay
// for text mining they don't touch. Everything here is shared read-only
// data; the incremental append path extends copies (see Append), never
// mutates an installed corpusGroups.
type corpusGroups struct {
	// nContracts keys cache freshness: a dataset whose contract count no
	// longer matches was extended (or mutated) and rebuilds.
	nContracts int

	byMonth          [dataset.NumMonths][]*forum.Contract
	completedByMonth [dataset.NumMonths][]*forum.Contract
	completed        []*forum.Contract
	public           []*forum.Contract
	completedPublic  []*forum.Contract
	inEra            [dataset.NumEras][]*forum.Contract
	userContracts    map[forum.UserID][]*forum.Contract
	firstEra         map[forum.UserID]dataset.Era
	maxCreated       time.Time

	obligOnce sync.Once
	oblig     map[forum.ContractID]*obligation
	money     []*forum.Contract

	valsOnce sync.Once
	vals     map[string][]textmine.Money
}

// Category/method bit tables: every classification is also carried as a
// bitmask over the canonical textmine orderings, so per-contract unions
// (Table 5's maker∪taker rows) are ORs instead of map inserts.
var (
	catBit  = map[textmine.Category]uint32{}
	methBit = map[textmine.Method]uint32{}
	// uncatMask is Uncategorised's bit — excluded from activity unions.
	uncatMask uint32
	// moneyMask covers the money-movement categories (currency exchange,
	// payments, giftcard) — the MoneyContracts membership test.
	moneyMask uint32
)

func init() {
	for i, c := range textmine.Categories {
		catBit[c] = uint32(i)
	}
	catBit[textmine.Uncategorised] = uint32(len(textmine.Categories))
	uncatMask = uint32(1) << catBit[textmine.Uncategorised]
	moneyMask = uint32(1)<<catBit[textmine.CurrencyExchange] |
		uint32(1)<<catBit[textmine.Payments] |
		uint32(1)<<catBit[textmine.Giftcard]
	for i, m := range textmine.Methods {
		methBit[m] = uint32(i)
	}
}

func catMaskOf(cats []textmine.Category) uint32 {
	var m uint32
	for _, c := range cats {
		m |= 1 << catBit[c]
	}
	return m
}

func methMaskOf(ms []textmine.Method) uint32 {
	var m uint32
	for _, meth := range ms {
		m |= 1 << methBit[meth]
	}
	return m
}

// sharedGroups resolves the corpus's derived groups through the dataset's
// cache slot: built at most once per corpus content, shared by every
// Index. Freshness is keyed to the contract count, so copy-on-write
// extensions (which install their own groups via StoreDerived) and
// rebuilt datasets both resolve correctly.
func sharedGroups(d *dataset.Dataset) *corpusGroups {
	return d.CachedDerived(
		func(v any) bool {
			g, ok := v.(*corpusGroups)
			return ok && g.nContracts == len(d.Contracts)
		},
		func() any { return buildGroups(d) },
	).(*corpusGroups)
}

// buildGroups derives every eager group in one scan of the columnar
// projection. Predicates read the int8/uint8 accelerator columns
// (month, completion month, era, public) and the interned party table;
// the bucket contents are the corpus's own contract pointers, appended
// in corpus order so results are identical to the row-walks this
// replaced — and to any worker count, since the scan is sequential.
func buildGroups(d *dataset.Dataset) *corpusGroups {
	g := &corpusGroups{
		nContracts:    len(d.Contracts),
		userContracts: make(map[forum.UserID][]*forum.Contract, len(d.Users)),
		firstEra:      make(map[forum.UserID]dataset.Era, len(d.Users)),
	}
	cols := d.Columns()
	row := 0
	for _, b := range cols.Blocks {
		for i := 0; i < b.N; i++ {
			c := d.Contracts[row]
			row++
			m := b.Month[i]
			g.byMonth[m] = append(g.byMonth[m], c)
			done := b.CompletedMonth[i] >= 0
			if done {
				cm := b.CompletedMonth[i]
				g.completedByMonth[cm] = append(g.completedByMonth[cm], c)
				g.completed = append(g.completed, c)
			}
			if b.Public[i] {
				g.public = append(g.public, c)
				if done {
					g.completedPublic = append(g.completedPublic, c)
				}
			}
			e := dataset.Era(b.Era[i])
			g.inEra[e] = append(g.inEra[e], c)

			maker := forum.UserID(b.PartyIDs[b.Maker[i]])
			taker := forum.UserID(b.PartyIDs[b.Taker[i]])
			g.userContracts[maker] = append(g.userContracts[maker], c)
			if taker != maker {
				g.userContracts[taker] = append(g.userContracts[taker], c)
			}
			if prev, ok := g.firstEra[maker]; !ok || e < prev {
				g.firstEra[maker] = e
			}
			if prev, ok := g.firstEra[taker]; !ok || e < prev {
				g.firstEra[taker] = e
			}
			// The watermark compares against live event times, so it keeps
			// the contract's full (sub-second) precision rather than the
			// column's whole seconds.
			if c.Created.After(g.maxCreated) {
				g.maxCreated = c.Created
			}
		}
	}
	return g
}

// obligations returns the contract→classification table, building it on
// first use — along with the money-contracts subset, which is a pure
// function of the same classifications. Each distinct obligation text is
// classified exactly once (corpora repeat template text heavily), with
// the distinct texts split across a small worker pool in fixed disjoint
// ranges of their first-appearance order, so the table is identical at
// every worker count.
func (g *corpusGroups) obligations() map[forum.ContractID]*obligation {
	g.obligOnce.Do(func() {
		cs := g.completedPublic
		texts := make([]string, 0, 2*len(cs))
		slot := make(map[string]int, 2*len(cs))
		for _, c := range cs {
			if _, ok := slot[c.MakerObligation]; !ok {
				slot[c.MakerObligation] = len(texts)
				texts = append(texts, c.MakerObligation)
			}
			if _, ok := slot[c.TakerObligation]; !ok {
				slot[c.TakerObligation] = len(texts)
				texts = append(texts, c.TakerObligation)
			}
		}
		type classified struct {
			cats     []textmine.Category
			methods  []textmine.Method
			catMask  uint32
			methMask uint32
		}
		results := make([]classified, len(texts))
		classify := func(i int) {
			cats, methods := textmine.Classify(texts[i])
			results[i] = classified{cats, methods, catMaskOf(cats), methMaskOf(methods)}
		}
		workers := runtime.GOMAXPROCS(0)
		if workers > len(texts) {
			workers = len(texts)
		}
		if workers > 1 {
			var wg sync.WaitGroup
			chunk := (len(texts) + workers - 1) / workers
			for lo := 0; lo < len(texts); lo += chunk {
				hi := lo + chunk
				if hi > len(texts) {
					hi = len(texts)
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						classify(i)
					}
				}(lo, hi)
			}
			wg.Wait()
		} else {
			for i := range texts {
				classify(i)
			}
		}
		entries := make([]obligation, len(cs))
		tab := make(map[forum.ContractID]*obligation, len(cs))
		for i, c := range cs {
			mk := results[slot[c.MakerObligation]]
			tk := results[slot[c.TakerObligation]]
			entries[i] = obligation{
				MakerCats:     mk.cats,
				TakerCats:     tk.cats,
				MakerMethods:  mk.methods,
				TakerMethods:  tk.methods,
				makerCatMask:  mk.catMask,
				takerCatMask:  tk.catMask,
				makerMethMask: mk.methMask,
				takerMethMask: tk.methMask,
			}
			tab[c.ID] = &entries[i]
			if (mk.catMask|tk.catMask)&moneyMask != 0 {
				g.money = append(g.money, c)
			}
		}
		g.oblig = tab
	})
	return g.oblig
}

// moneyContracts returns the money-movement subset, forcing the
// obligation build it falls out of.
func (g *corpusGroups) moneyContracts() []*forum.Contract {
	g.obligations()
	return g.money
}

// extractedValues returns the memoized text→quoted-values table for the
// value analysis: ExtractValues runs once per distinct obligation text in
// the §4.5 population (completed public, VOUCH COPY excluded) instead of
// twice per contract per stage. Currency conversion stays per-contract —
// it depends on the transaction time, not the text.
func (g *corpusGroups) extractedValues() map[string][]textmine.Money {
	g.valsOnce.Do(func() {
		vals := make(map[string][]textmine.Money, 2*len(g.completedPublic))
		for _, c := range g.completedPublic {
			if c.Type == forum.VouchCopy {
				continue
			}
			if _, ok := vals[c.MakerObligation]; !ok {
				vals[c.MakerObligation] = textmine.ExtractValues(c.MakerObligation)
			}
			if _, ok := vals[c.TakerObligation]; !ok {
				vals[c.TakerObligation] = textmine.ExtractValues(c.TakerObligation)
			}
		}
		g.vals = vals
	})
	return g.vals
}
