package analysis

import (
	"fmt"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/obs"
	"turnup/internal/rng"
)

// SuiteOptions selects which analyses RunSuite performs and how the run is
// observed.
type SuiteOptions struct {
	// LatentClassK is the number of behaviour classes (default 12, the
	// paper's choice).
	LatentClassK int
	// SkipModels skips the statistical models (Tables 6-10), keeping only
	// the descriptive analyses.
	SkipModels bool

	// Trace, when non-nil, records one span per Suite stage (wall time and
	// allocation deltas). The nil default costs nothing.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives an analysis_stage_seconds histogram,
	// an analysis_stages_total counter, and the §4.5 audit counters
	// (including audit_unverifiable_total for ledger-less datasets).
	Metrics *obs.Registry
	// Progress, when non-nil, is called with each stage name just before
	// the stage runs — the hook hfrepro uses for stderr progress lines.
	Progress func(stage string)
}

// Suite bundles every reproduced table and figure.
type Suite struct {
	Taxonomy        TaxonomyResult   // Table 1
	Visibility      VisibilityResult // Table 2
	Growth          MonthlyGrowth    // Figure 1
	PublicTrend     VisibilityTrend  // Figure 2
	TypeShares      TypeShares       // Figure 3
	CompletionTimes CompletionTimes  // Figure 4
	Concentration   Concentration    // Figure 5
	KeyShares       KeyShare         // Figure 6
	DegreesCreated  DegreeDistribution
	DegreesDone     DegreeDistribution // Figure 7
	DegreeGrowth    DegreeGrowth       // Figure 8
	Products        ProductTrend       // Figure 9
	PaymentTrend    PaymentTrend       // Figure 10
	Activities      ActivitiesResult   // Table 3
	Payments        PaymentsResult     // Table 4
	Values          ValueReport        // Table 5 + §4.5
	ValueTrend      ValueTrend         // Figure 11
	ChangePoints    []ChangePoint      // era-boundary scan
	Participation   ParticipationStats // §4.3 repeat-transaction text
	Disputes        DisputeTrend       // §5.1 dispute dynamics
	Centralisation  Centralisation     // monthly participation Gini
	Cohorts         CohortRetention    // join-cohort retention
	Corpus          CorpusStats        // §3 dataset description
	Stimulus        StimulusResult     // COVID stimulus-vs-transformation test

	// Model outputs (nil/zero when SkipModels).
	LTM       *LTMResult       // Table 6, Figures 12-13
	Flows     FlowsResult      // Table 8
	ColdStart *ColdStartResult // Table 7 + §5.2
	ZIPAll    []ZIPEraResult   // Table 9
	ZIPSub    []ZIPEraResult   // Table 10
}

// StageNames lists every Suite stage in execution order, model stages last.
// Exporters and progress consumers can rely on this order.
var StageNames = []string{
	"Taxonomy", "Visibility", "Growth", "PublicTrend", "TypeShares",
	"CompletionTimes", "Concentration", "KeyShares", "DegreesCreated",
	"DegreesDone", "DegreeGrowth", "Products", "PaymentTrend", "Activities",
	"Payments", "ChangePoints", "Participation", "Disputes",
	"Centralisation", "Cohorts", "Corpus", "Stimulus", "Values",
	"ValueTrend",
	"LatentClasses", "Flows", "ColdStart", "ZIPAll", "ZIPSub",
}

// stage runs one named analysis stage under the options' observability
// hooks: a progress callback, a trace span, and stage-timing metrics.
func (o *SuiteOptions) stage(name string, fn func() error) error {
	if o.Progress != nil {
		o.Progress(name)
	}
	sp := o.Trace.Start("analysis/" + name)
	start := time.Time{}
	if o.Metrics != nil {
		start = time.Now()
	}
	err := fn()
	sp.End()
	if o.Metrics != nil {
		o.Metrics.Histogram("analysis_stage_seconds").Observe(time.Since(start).Seconds())
		o.Metrics.Counter("analysis_stages_total").Inc()
	}
	return err
}

// run is the infallible-stage shorthand.
func (o *SuiteOptions) run(name string, fn func()) {
	_ = o.stage(name, func() error { fn(); return nil })
}

// RunSuite executes the full analysis pipeline over the dataset.
func RunSuite(d *dataset.Dataset, opts SuiteOptions, src *rng.Source) (*Suite, error) {
	if opts.LatentClassK <= 0 {
		opts.LatentClassK = 12
	}
	res := &Suite{}
	suiteSpan := opts.Trace.Start("analysis/RunSuite")
	defer suiteSpan.End()

	opts.run("Taxonomy", func() { res.Taxonomy = Taxonomy(d) })
	opts.run("Visibility", func() { res.Visibility = Visibility(d) })
	opts.run("Growth", func() { res.Growth = Growth(d) })
	opts.run("PublicTrend", func() { res.PublicTrend = PublicTrend(d) })
	opts.run("TypeShares", func() { res.TypeShares = TypeShareTrend(d) })
	opts.run("CompletionTimes", func() { res.CompletionTimes = CompletionTimeTrend(d) })
	opts.run("Concentration", func() { res.Concentration = Concentrate(d) })
	opts.run("KeyShares", func() { res.KeyShares = KeyShares(d) })
	opts.run("DegreesCreated", func() { res.DegreesCreated = DegreeDist(d.Contracts) })
	opts.run("DegreesDone", func() { res.DegreesDone = DegreeDist(d.Completed()) })
	opts.run("DegreeGrowth", func() { res.DegreeGrowth = DegreeGrowthTrend(d, false) })
	opts.run("Products", func() { res.Products = ProductTrends(d) })
	opts.run("PaymentTrend", func() { res.PaymentTrend = PaymentTrends(d) })
	opts.run("Activities", func() { res.Activities = Activities(d) })
	opts.run("Payments", func() { res.Payments = PaymentMethods(d) })
	opts.run("ChangePoints", func() { res.ChangePoints = ChangePoints(d, 3) })
	opts.run("Participation", func() { res.Participation = Participation(d) })
	opts.run("Disputes", func() { res.Disputes = Disputes(d) })
	opts.run("Centralisation", func() { res.Centralisation = CentralisationTrend(d) })
	opts.run("Cohorts", func() { res.Cohorts = Cohorts(d) })
	opts.run("Corpus", func() { res.Corpus = Corpus(d) })
	opts.run("Stimulus", func() { res.Stimulus = StimulusTest(d) })
	opts.run("Values", func() {
		res.Values = Values(d)
		opts.Metrics.Counter("audit_high_value_total").Add(int64(res.Values.Audit.HighValue))
		opts.Metrics.Counter("audit_confirmed_total").Add(int64(res.Values.Audit.Confirmed))
		opts.Metrics.Counter("audit_revised_total").Add(int64(res.Values.Audit.Revised))
		opts.Metrics.Counter("audit_unclear_total").Add(int64(res.Values.Audit.Unclear))
		opts.Metrics.Counter("audit_unverifiable_total").Add(int64(res.Values.Audit.Unverifiable))
	})
	opts.run("ValueTrend", func() { res.ValueTrend = ValueTrends(d, res.Values) })
	if opts.SkipModels {
		return res, nil
	}

	if err := opts.stage("LatentClasses", func() error {
		ltm, err := LatentClasses(d, LTMOptions{K: opts.LatentClassK, Restarts: 2}, src.Fork(1))
		if err != nil {
			return fmt.Errorf("analysis: latent classes: %w", err)
		}
		res.LTM = ltm
		return nil
	}); err != nil {
		return nil, err
	}
	opts.run("Flows", func() { res.Flows = Flows(d, res.LTM) })
	if err := opts.stage("ColdStart", func() error {
		cs, err := ColdStart(d, src.Fork(2))
		if err != nil {
			return fmt.Errorf("analysis: cold start: %w", err)
		}
		res.ColdStart = cs
		return nil
	}); err != nil {
		return nil, err
	}
	if err := opts.stage("ZIPAll", func() error {
		var err error
		if res.ZIPAll, err = ZIPAllUsers(d); err != nil {
			return fmt.Errorf("analysis: ZIP (all users): %w", err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := opts.stage("ZIPSub", func() error {
		var err error
		if res.ZIPSub, err = ZIPSubgroups(d); err != nil {
			return fmt.Errorf("analysis: ZIP (subgroups): %w", err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}
