package analysis

import (
	"fmt"

	"turnup/internal/dataset"
	"turnup/internal/rng"
)

// SuiteOptions selects which analyses RunSuite performs.
type SuiteOptions struct {
	// LatentClassK is the number of behaviour classes (default 12, the
	// paper's choice).
	LatentClassK int
	// SkipModels skips the statistical models (Tables 6-10), keeping only
	// the descriptive analyses.
	SkipModels bool
}

// Suite bundles every reproduced table and figure.
type Suite struct {
	Taxonomy        TaxonomyResult   // Table 1
	Visibility      VisibilityResult // Table 2
	Growth          MonthlyGrowth    // Figure 1
	PublicTrend     VisibilityTrend  // Figure 2
	TypeShares      TypeShares       // Figure 3
	CompletionTimes CompletionTimes  // Figure 4
	Concentration   Concentration    // Figure 5
	KeyShares       KeyShare         // Figure 6
	DegreesCreated  DegreeDistribution
	DegreesDone     DegreeDistribution // Figure 7
	DegreeGrowth    DegreeGrowth       // Figure 8
	Products        ProductTrend       // Figure 9
	PaymentTrend    PaymentTrend       // Figure 10
	Activities      ActivitiesResult   // Table 3
	Payments        PaymentsResult     // Table 4
	Values          ValueReport        // Table 5 + §4.5
	ValueTrend      ValueTrend         // Figure 11
	ChangePoints    []ChangePoint      // era-boundary scan
	Participation   ParticipationStats // §4.3 repeat-transaction text
	Disputes        DisputeTrend       // §5.1 dispute dynamics
	Centralisation  Centralisation     // monthly participation Gini
	Cohorts         CohortRetention    // join-cohort retention
	Corpus          CorpusStats        // §3 dataset description
	Stimulus        StimulusResult     // COVID stimulus-vs-transformation test

	// Model outputs (nil/zero when SkipModels).
	LTM       *LTMResult       // Table 6, Figures 12-13
	Flows     FlowsResult      // Table 8
	ColdStart *ColdStartResult // Table 7 + §5.2
	ZIPAll    []ZIPEraResult   // Table 9
	ZIPSub    []ZIPEraResult   // Table 10
}

// RunSuite executes the full analysis pipeline over the dataset.
func RunSuite(d *dataset.Dataset, opts SuiteOptions, src *rng.Source) (*Suite, error) {
	if opts.LatentClassK <= 0 {
		opts.LatentClassK = 12
	}
	res := &Suite{
		Taxonomy:        Taxonomy(d),
		Visibility:      Visibility(d),
		Growth:          Growth(d),
		PublicTrend:     PublicTrend(d),
		TypeShares:      TypeShareTrend(d),
		CompletionTimes: CompletionTimeTrend(d),
		Concentration:   Concentrate(d),
		KeyShares:       KeyShares(d),
		DegreesCreated:  DegreeDist(d.Contracts),
		DegreesDone:     DegreeDist(d.Completed()),
		DegreeGrowth:    DegreeGrowthTrend(d, false),
		Products:        ProductTrends(d),
		PaymentTrend:    PaymentTrends(d),
		Activities:      Activities(d),
		Payments:        PaymentMethods(d),
		ChangePoints:    ChangePoints(d, 3),
		Participation:   Participation(d),
		Disputes:        Disputes(d),
		Centralisation:  CentralisationTrend(d),
		Cohorts:         Cohorts(d),
		Corpus:          Corpus(d),
		Stimulus:        StimulusTest(d),
	}
	res.Values = Values(d)
	res.ValueTrend = ValueTrends(d, res.Values)
	if opts.SkipModels {
		return res, nil
	}
	ltm, err := LatentClasses(d, LTMOptions{K: opts.LatentClassK, Restarts: 2}, src.Fork(1))
	if err != nil {
		return nil, fmt.Errorf("analysis: latent classes: %w", err)
	}
	res.LTM = ltm
	res.Flows = Flows(d, ltm)
	cs, err := ColdStart(d, src.Fork(2))
	if err != nil {
		return nil, fmt.Errorf("analysis: cold start: %w", err)
	}
	res.ColdStart = cs
	if res.ZIPAll, err = ZIPAllUsers(d); err != nil {
		return nil, fmt.Errorf("analysis: ZIP (all users): %w", err)
	}
	if res.ZIPSub, err = ZIPSubgroups(d); err != nil {
		return nil, fmt.Errorf("analysis: ZIP (subgroups): %w", err)
	}
	return res, nil
}
