package analysis

import (
	"context"

	"turnup/internal/dataset"
	"turnup/internal/obs"
	"turnup/internal/rng"
)

// SuiteOptions selects which analyses RunSuite performs and how the run is
// scheduled and observed.
type SuiteOptions struct {
	// LatentClassK is the number of behaviour classes (default 12, the
	// paper's choice).
	LatentClassK int
	// SkipModels skips the statistical models (Tables 6-10), keeping only
	// the descriptive analyses.
	SkipModels bool
	// Workers caps how many stages execute concurrently; <= 0 means
	// runtime.GOMAXPROCS(0). Results are bit-for-bit identical for every
	// worker count.
	Workers int
	// Stages selects a stage subset by name (see Stages for the declared
	// DAG); the scheduler adds each requested stage's transitive
	// dependencies automatically. Empty means every stage.
	Stages []string
	// Index, when non-nil and built over the same dataset the run is for,
	// is reused instead of deriving a fresh Index — how the serving tier
	// carries incrementally-extended groupings (Index.Append) across
	// ingest generations instead of re-bucketing the whole corpus per
	// run. Ignored when it wraps a different dataset.
	Index *Index

	// Trace, when non-nil, records one span per Suite stage (wall time and
	// allocation deltas; a worker attr says which pool worker ran it). The
	// nil default costs nothing.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives an analysis_stage_seconds histogram,
	// an analysis_stages_total counter, an analysis_stages_inflight gauge,
	// and the §4.5 audit counters (including audit_unverifiable_total for
	// ledger-less datasets).
	Metrics *obs.Registry
	// Progress, when non-nil, is called with each stage name just before
	// the stage runs — the hook hfrepro uses for stderr progress lines.
	// Calls are serialised, but under Workers > 1 their order is the
	// scheduler's dispatch order, not the canonical stage order.
	Progress func(stage string)
}

// Suite bundles every reproduced table and figure.
type Suite struct {
	Taxonomy        TaxonomyResult   // Table 1
	Visibility      VisibilityResult // Table 2
	Growth          MonthlyGrowth    // Figure 1
	PublicTrend     VisibilityTrend  // Figure 2
	TypeShares      TypeShares       // Figure 3
	CompletionTimes CompletionTimes  // Figure 4
	Concentration   Concentration    // Figure 5
	KeyShares       KeyShare         // Figure 6
	DegreesCreated  DegreeDistribution
	DegreesDone     DegreeDistribution // Figure 7
	DegreeGrowth    DegreeGrowth       // Figure 8
	Products        ProductTrend       // Figure 9
	PaymentTrend    PaymentTrend       // Figure 10
	Activities      ActivitiesResult   // Table 3
	Payments        PaymentsResult     // Table 4
	Values          ValueReport        // Table 5 + §4.5
	ValueTrend      ValueTrend         // Figure 11
	ChangePoints    []ChangePoint      // era-boundary scan
	Participation   ParticipationStats // §4.3 repeat-transaction text
	Disputes        DisputeTrend       // §5.1 dispute dynamics
	Centralisation  Centralisation     // monthly participation Gini
	Cohorts         CohortRetention    // join-cohort retention
	Corpus          CorpusStats        // §3 dataset description
	Stimulus        StimulusResult     // COVID stimulus-vs-transformation test

	// Model outputs (nil/zero when SkipModels).
	LTM       *LTMResult       // Table 6, Figures 12-13
	Flows     FlowsResult      // Table 8
	ColdStart *ColdStartResult // Table 7 + §5.2
	ZIPAll    []ZIPEraResult   // Table 9
	ZIPSub    []ZIPEraResult   // Table 10
}

// RunSuite executes the full analysis pipeline over the dataset. It is
// RunSuiteCtx without cancellation.
func RunSuite(d *dataset.Dataset, opts SuiteOptions, src *rng.Source) (*Suite, error) {
	return RunSuiteCtx(context.Background(), d, opts, src)
}
