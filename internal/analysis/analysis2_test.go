package analysis

import (
	"testing"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/graph"
	"turnup/internal/rng"
	"turnup/internal/textmine"
)

func TestDegreeDistFigureSeven(t *testing.T) {
	d := corpus(t)
	created := DegreeDist(d.Contracts)
	completed := DegreeDist(d.Completed())
	if created.Nodes == 0 || completed.Nodes <= 0 {
		t.Fatal("empty networks")
	}
	if completed.Nodes >= created.Nodes {
		t.Error("completed network not smaller than created")
	}
	// Max outbound far below max raw; raw and inbound maxima close.
	if created.Max[graph.Outbound]*2 > created.Max[graph.Raw] {
		t.Errorf("outbound max %d not well below raw max %d",
			created.Max[graph.Outbound], created.Max[graph.Raw])
	}
	ratio := float64(created.Max[graph.Inbound]) / float64(created.Max[graph.Raw])
	if ratio < 0.9 {
		t.Errorf("inbound/raw max ratio = %.3f, want near 1", ratio)
	}
	// Power-law fits exist and have plausible exponents.
	for _, k := range []graph.DegreeKind{graph.Raw, graph.Inbound} {
		fit := created.PowerLaw[k]
		if fit == nil {
			t.Fatalf("no power-law fit for %v", k)
		}
		if fit.Alpha < 1.2 || fit.Alpha > 4.5 {
			t.Errorf("%v alpha = %.2f", k, fit.Alpha)
		}
	}
	// Most nodes have small degrees (1-15), with a long tail.
	small := 0
	total := 0
	for deg, n := range created.Histogram[graph.Raw] {
		total += n
		if deg <= 15 {
			small += n
		}
	}
	if float64(small) < 0.88*float64(total) {
		t.Errorf("only %d/%d nodes with degree <= 15", small, total)
	}
}

func TestDegreeGrowthFigureEight(t *testing.T) {
	d := corpus(t)
	g := DegreeGrowthTrend(d, false)
	// Cumulative maxima are non-decreasing.
	for m := 1; m < dataset.NumMonths; m++ {
		if g.MaxRaw[m] < g.MaxRaw[m-1] || g.MaxInbound[m] < g.MaxInbound[m-1] ||
			g.MaxOutbound[m] < g.MaxOutbound[m-1] {
			t.Fatalf("max degree decreased at month %d", m)
		}
	}
	// Raw and inbound maxima nearly identical; outbound much smaller.
	last := dataset.NumMonths - 1
	if g.MaxInbound[last]*10 < g.MaxRaw[last]*9 {
		t.Errorf("inbound max %d not tracking raw max %d", g.MaxInbound[last], g.MaxRaw[last])
	}
	if g.MaxOutbound[last]*2 > g.MaxRaw[last] {
		t.Errorf("outbound max %d too close to raw max %d", g.MaxOutbound[last], g.MaxRaw[last])
	}
	// Big uplift during STABLE.
	if g.MaxRaw[20] < 2*g.MaxRaw[8] {
		t.Errorf("no STABLE uplift: end-SET-UP %d vs late-STABLE %d", g.MaxRaw[8], g.MaxRaw[20])
	}
	// Mean degree grows gradually.
	if g.MeanRaw[last] <= g.MeanRaw[5] {
		t.Error("mean degree did not grow")
	}
	// Completed variant produces smaller maxima.
	gc := DegreeGrowthTrend(d, true)
	if gc.MaxRaw[last] >= g.MaxRaw[last] {
		t.Error("completed network max not below created")
	}
}

func TestActivitiesTableThree(t *testing.T) {
	d := corpus(t)
	r := Activities(d)
	if len(r.Rows) < 10 {
		t.Fatalf("only %d activity rows", len(r.Rows))
	}
	if r.Rows[0].Category != textmine.CurrencyExchange {
		t.Errorf("top activity = %v, want currency exchange", r.Rows[0].Category)
	}
	if r.Rows[1].Category != textmine.Payments {
		t.Errorf("second activity = %v, want payments", r.Rows[1].Category)
	}
	if r.Rows[2].Category != textmine.Giftcard {
		t.Errorf("third activity = %v, want giftcard", r.Rows[2].Category)
	}
	// Currency exchange ≈ 75% of classified contracts, well above payments.
	ceShare := float64(r.Rows[0].Both.Contracts) / float64(r.Total.Both.Contracts)
	if ceShare < 0.55 || ceShare > 0.85 {
		t.Errorf("currency exchange share = %.3f, want ~0.75", ceShare)
	}
	if float64(r.Rows[0].Both.Contracts) < 1.3*float64(r.Rows[1].Both.Contracts) {
		t.Error("currency exchange not well above payments")
	}
	// The union total is below the per-category sum (multi-category).
	sum := 0
	for _, row := range r.Rows {
		sum += row.Both.Contracts
	}
	if r.Total.Both.Contracts >= sum {
		t.Errorf("total %d not below category sum %d", r.Total.Both.Contracts, sum)
	}
	// Users involved never exceed contracts matched per side by definition
	// of distinctness... (users <= contracts on each side).
	for _, row := range r.Rows {
		if row.Makers.Users > row.Makers.Contracts && row.Makers.Contracts > 0 {
			t.Errorf("%v: %d maker users for %d contracts", row.Category, row.Makers.Users, row.Makers.Contracts)
		}
	}
}

func TestProductTrendsFigureNine(t *testing.T) {
	d := corpus(t)
	tr := ProductTrends(d)
	if len(tr.Categories) != 5 {
		t.Fatalf("top categories = %v", tr.Categories)
	}
	for _, cat := range tr.Categories {
		if cat == textmine.CurrencyExchange || cat == textmine.Payments {
			t.Fatalf("excluded category %v present", cat)
		}
		if _, ok := tr.Counts[cat]; !ok {
			t.Fatalf("no series for %v", cat)
		}
	}
	// Giftcard should be among the top five products.
	found := false
	for _, cat := range tr.Categories {
		if cat == textmine.Giftcard {
			found = true
		}
	}
	if !found {
		t.Errorf("giftcard missing from top products: %v", tr.Categories)
	}
	// COVID stimulus: April 2020 counts above February 2020 for the top product.
	top := tr.Categories[0]
	if tr.Counts[top][22] <= tr.Counts[top][20]/2 {
		t.Errorf("no COVID uplift for %v: feb=%d apr=%d", top, tr.Counts[top][20], tr.Counts[top][22])
	}
}

func TestPaymentMethodsTableFour(t *testing.T) {
	d := corpus(t)
	r := PaymentMethods(d)
	if len(r.Rows) < 8 {
		t.Fatalf("only %d method rows", len(r.Rows))
	}
	if r.Rows[0].Method != textmine.MBitcoin {
		t.Errorf("top method = %v", r.Rows[0].Method)
	}
	if r.Rows[1].Method != textmine.MPayPal {
		t.Errorf("second method = %v", r.Rows[1].Method)
	}
	if r.Rows[2].Method != textmine.MAmazonGC {
		t.Errorf("third method = %v", r.Rows[2].Method)
	}
	btcShare := float64(r.Rows[0].Both.Contracts) / float64(r.Total.Both.Contracts)
	if btcShare < 0.6 || btcShare > 0.9 {
		t.Errorf("Bitcoin share = %.3f, want ~0.75", btcShare)
	}
	// Bitcoin comfortably above PayPal.
	if float64(r.Rows[0].Both.Contracts) < 1.2*float64(r.Rows[1].Both.Contracts) {
		t.Error("Bitcoin not well above PayPal")
	}
}

func TestPaymentTrendsFigureTen(t *testing.T) {
	d := corpus(t)
	tr := PaymentTrends(d)
	if len(tr.Methods) != 5 {
		t.Fatalf("top methods = %v", tr.Methods)
	}
	if tr.Methods[0] != textmine.MBitcoin || tr.Methods[1] != textmine.MPayPal {
		t.Errorf("top methods = %v", tr.Methods)
	}
	// Bitcoin's series dominates PayPal's in most months.
	btc := tr.Counts[textmine.MBitcoin]
	pp := tr.Counts[textmine.MPayPal]
	wins := 0
	for m := 0; m < dataset.NumMonths; m++ {
		if btc[m] >= pp[m] {
			wins++
		}
	}
	if wins < 18 {
		t.Errorf("Bitcoin above PayPal in only %d months", wins)
	}
}

func TestValuesSectionFourFive(t *testing.T) {
	d := corpus(t)
	r := Values(d)
	if len(r.PerContract) == 0 {
		t.Fatal("no valued contracts")
	}
	if r.TotalUSD <= 0 || r.MeanUSD <= 0 {
		t.Fatalf("totals: %v / %v", r.TotalUSD, r.MeanUSD)
	}
	// Average contract value in the tens-of-dollars band (paper: $85).
	if r.MeanUSD < 30 || r.MeanUSD > 200 {
		t.Errorf("mean value = $%.1f", r.MeanUSD)
	}
	if r.MaxUSD > 10000 {
		t.Errorf("max value = $%.0f exceeds the plausible cap", r.MaxUSD)
	}
	// Extrapolation scales up by roughly the private multiple (~5-7x).
	scale := r.ExtrapolatedUSD / r.TotalUSD
	if scale < 3 || scale > 10 {
		t.Errorf("extrapolation scale = %.2f", scale)
	}
	// VOUCH COPY never contributes value.
	if _, ok := r.ByType[forum.VouchCopy]; ok {
		t.Error("VOUCH COPY in value-by-type")
	}
	// Currency exchange is the top activity by value; Bitcoin top method.
	if r.ActivityValues[0].Category != textmine.CurrencyExchange {
		t.Errorf("top value activity = %v", r.ActivityValues[0].Category)
	}
	if r.MethodValues[0].Method != textmine.MBitcoin {
		t.Errorf("top value method = %v", r.MethodValues[0].Method)
	}
	// Bitcoin value at least double third place.
	if len(r.MethodValues) > 2 && r.MethodValues[0].TotalUSD() < 2*r.MethodValues[2].TotalUSD() {
		t.Error("Bitcoin value not dominant")
	}
	// Concentration of value.
	if r.TopDecileShare < 0.5 {
		t.Errorf("top decile value share = %.3f", r.TopDecileShare)
	}
	// Audit ran and classified everything it saw.
	if r.Audit.HighValue != r.Audit.Confirmed+r.Audit.Revised+r.Audit.Unclear {
		t.Errorf("audit buckets inconsistent: %+v", r.Audit)
	}
	if r.Audit.HighValue == 0 {
		t.Error("no high-value contracts found")
	}
}

func TestValueTrendsFigureEleven(t *testing.T) {
	d := corpus(t)
	report := Values(d)
	tr := ValueTrends(d, report)
	// Monthly by-type totals reconstruct the overall total.
	sum := 0.0
	for _, series := range tr.ByType {
		for _, v := range series {
			sum += v
		}
	}
	if diff := sum - report.TotalUSD; diff > 1 || diff < -1 {
		t.Errorf("by-type monthly sum %v != total %v", sum, report.TotalUSD)
	}
	if len(tr.Methods) != 5 || len(tr.Categories) != 5 {
		t.Fatalf("top lists: %v / %v", tr.Methods, tr.Categories)
	}
	// EXCHANGE carries the highest value overall.
	var exSum, trSum float64
	for _, v := range tr.ByType[forum.Exchange] {
		exSum += v
	}
	for _, v := range tr.ByType[forum.Trade] {
		trSum += v
	}
	if exSum <= trSum {
		t.Error("EXCHANGE value not above TRADE")
	}
}

func TestColdStartSectionFiveTwo(t *testing.T) {
	d := corpus(t)
	r, err := ColdStart(d, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if r.N < 100 {
		t.Fatalf("only %d cold starters", r.N)
	}
	if r.MainClusterShare < 0.8 || r.MainClusterShare >= 1 {
		t.Errorf("main cluster share = %.3f", r.MainClusterShare)
	}
	if len(r.OutlierClusters) == 0 || len(r.OutlierClusters) > 8 {
		t.Fatalf("%d outlier clusters", len(r.OutlierClusters))
	}
	// Cluster sizes sorted descending and sum to the outlier count.
	total := 0
	for i, c := range r.OutlierClusters {
		total += c.Size
		if i > 0 && c.Size > r.OutlierClusters[i-1].Size {
			t.Error("clusters not sorted by size")
		}
	}
	if total != r.OutlierCount {
		t.Errorf("cluster sizes sum to %d, want %d", total, r.OutlierCount)
	}
	// Outliers live much longer and continue into COVID more often.
	if r.MedianLifespanOutlierDays < 5*r.MedianLifespanAllDays {
		t.Errorf("outlier lifespan %.1fd not far above all %.1fd",
			r.MedianLifespanOutlierDays, r.MedianLifespanAllDays)
	}
	if r.ContinueIntoCovidOutliers <= r.ContinueIntoCovidAll {
		t.Error("outliers not more likely to continue into COVID")
	}
	// SET-UP starters carry more reputation than STABLE cold starters.
	if r.MedianReputationSetup <= r.MedianReputationAll {
		t.Errorf("SET-UP reputation %.0f not above STABLE starters %.0f",
			r.MedianReputationSetup, r.MedianReputationAll)
	}
}

func TestChangePointsNearEraBoundaries(t *testing.T) {
	d := corpus(t)
	points := ChangePoints(d, 3)
	if len(points) == 0 {
		t.Fatal("no change points")
	}
	// The strongest break is at the contracts-mandatory boundary
	// (month 9 ± 1), supporting the deductively imposed eras.
	first := int(points[0].Month)
	if first < 8 || first > 11 {
		t.Errorf("strongest break at month %d, want near 9", first)
	}
	// Some detected break lies in the COVID window (months 21-23).
	foundCovid := false
	for _, p := range points {
		if p.Month >= 21 && p.Month <= 23 {
			foundCovid = true
		}
	}
	if !foundCovid {
		t.Errorf("no break detected in the COVID window: %+v", points)
	}
}

func TestAssortativityByEra(t *testing.T) {
	d := corpus(t)
	a := AssortativityByEra(d)
	if len(a) != dataset.NumEras {
		t.Fatalf("eras = %d", len(a))
	}
	for e, r := range a {
		if r < -1 || r > 1 {
			t.Fatalf("%v assortativity = %v", e, r)
		}
	}
	// No era shows strong positive assortativity: hubs trade with the
	// periphery rather than with each other. (Pearson assortativity on
	// heavy-tailed degrees hovers near zero; a strongly positive value
	// would contradict the hub-to-periphery market structure.)
	for e, r := range a {
		if r > 0.25 {
			t.Errorf("%v assortativity = %v, implausibly assortative", e, r)
		}
	}
}
