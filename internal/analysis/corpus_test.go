package analysis

import "testing"

func TestCorpusStats(t *testing.T) {
	d := corpus(t)
	s := Corpus(d)
	if s.Contracts != len(d.Contracts) {
		t.Errorf("contracts = %d", s.Contracts)
	}
	if s.Threads == 0 || s.Posts == 0 || s.PostingMembers == 0 {
		t.Fatalf("empty corpus stats: %+v", s)
	}
	// The paper: 68.4% of public contracts carry a thread, 8.2% overall.
	if s.PublicWithThread < 0.55 || s.PublicWithThread > 0.8 {
		t.Errorf("public thread linkage = %.3f, want ~0.68", s.PublicWithThread)
	}
	if s.OverallWithThread < 0.05 || s.OverallWithThread > 0.15 {
		t.Errorf("overall thread linkage = %.3f, want ~0.08", s.OverallWithThread)
	}
	if s.PublicWithThread <= s.OverallWithThread {
		t.Error("public linkage not above overall linkage")
	}
}

func TestStimulusNotTransformation(t *testing.T) {
	d := corpus(t)
	r := StimulusTest(d)
	if r.DF <= 0 {
		t.Fatalf("degenerate test: %+v", r)
	}
	// Stimulus: COVID months carry more volume than late STABLE.
	if r.VolumeRatio < 1.1 {
		t.Errorf("volume ratio = %.2f, want > 1.1", r.VolumeRatio)
	}
	// Not a transformation: the association between era and contract type
	// is weak (Cramér's V well under the conventional 0.1 "small" mark
	// would be ideal; allow a little slack for the VOUCH COPY ramp).
	if r.CramersV > 0.15 {
		t.Errorf("Cramér's V = %.3f, composition shifted too much", r.CramersV)
	}
	if r.PValue < 0 || r.PValue > 1 {
		t.Errorf("p-value = %v", r.PValue)
	}
}
