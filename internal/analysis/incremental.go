package analysis

import (
	"turnup/internal/dataset"
	"turnup/internal/forum"
)

// Append derives the Index for nd — the parent corpus extended by the
// added contracts, in that order — incrementally: every derived group is
// extended in place of being rebuilt, and only the new completed-public
// obligation text goes through the classifier. nd must be ix.D plus added
// (ingest.Apply's contract): the group builder's corpus-order scan then
// makes the result structurally identical to a from-scratch rebuild,
// which the golden incremental test pins report-byte-for-byte.
//
// The in-order fast path requires every added contract to be created at
// or after the parent's creation watermark; an out-of-order append has
// dirtied history (month buckets, era membership, first-era-of-use are no
// longer suffix-extensions), so Append falls back to a full rebuild.
//
// The parent's groups are never mutated: array-of-slice groups are copied
// by value, bucket extensions use capped appends (the parent's backing
// arrays cannot be written through), and maps are shallow-cloned before
// new keys land. Suite runs holding the parent keep reading consistent
// data. The extended groups are installed into nd's derived-cache slot,
// so later NewIndex(nd) handles (per-report, per-stage) share them.
func (ix *Index) Append(nd *dataset.Dataset, added []*forum.Contract) *Index {
	parent := ix.groups()
	watermark := parent.maxCreated
	for _, c := range added {
		if c.Created.Before(watermark) {
			return NewIndex(nd) // out-of-order: history dirtied, rebuild
		}
	}

	// Force the parent's obligation table so the child extends it instead
	// of re-deriving. After the first append this is a no-op: the previous
	// child was born with it built.
	parent.obligations()

	child := &corpusGroups{
		nContracts: len(nd.Contracts),
		maxCreated: watermark,
	}

	// Months: value-copy the bucket arrays, then cap each touched bucket
	// before appending so the parent's backing array is never written.
	child.byMonth = parent.byMonth
	child.completedByMonth = parent.completedByMonth
	for _, c := range added {
		m := dataset.MonthOf(c.Created)
		child.byMonth[m] = appendCopy(child.byMonth[m], c)
		if c.IsComplete() {
			at := c.Completed
			if at.IsZero() {
				at = c.Created
			}
			cm := dataset.MonthOf(at)
			child.completedByMonth[cm] = appendCopy(child.completedByMonth[cm], c)
		}
	}

	// Subsets: suffix-extend in corpus order.
	child.completed = parent.completed
	child.public = parent.public
	child.completedPublic = parent.completedPublic
	for _, c := range added {
		done := c.IsComplete()
		if done {
			child.completed = appendCopy(child.completed, c)
		}
		if c.Public {
			child.public = appendCopy(child.public, c)
			if done {
				child.completedPublic = appendCopy(child.completedPublic, c)
			}
		}
	}

	// Eras.
	child.inEra = parent.inEra
	for _, c := range added {
		e := dataset.EraOf(c.Created)
		child.inEra[e] = appendCopy(child.inEra[e], c)
	}

	// Per-user groupings: clone the maps, extend touched users' lists.
	child.userContracts = make(map[forum.UserID][]*forum.Contract, len(parent.userContracts)+2*len(added))
	for u, cs := range parent.userContracts {
		child.userContracts[u] = cs
	}
	child.firstEra = make(map[forum.UserID]dataset.Era, len(parent.firstEra)+2*len(added))
	for u, e := range parent.firstEra {
		child.firstEra[u] = e
	}
	for _, c := range added {
		child.userContracts[c.Maker] = appendCopy(child.userContracts[c.Maker], c)
		if c.Taker != c.Maker {
			child.userContracts[c.Taker] = appendCopy(child.userContracts[c.Taker], c)
		}
		e := dataset.EraOf(c.Created)
		for _, u := range []forum.UserID{c.Maker, c.Taker} {
			if prev, ok := child.firstEra[u]; !ok || e < prev {
				child.firstEra[u] = e
			}
		}
	}

	// Obligation table: clone, then classify only the new completed-public
	// text — the incremental path's whole point. The value-extraction memo
	// is left unbuilt: it rebuilds lazily (per distinct text) on the first
	// value stage over the child corpus.
	child.oblig = make(map[forum.ContractID]*obligation, len(parent.oblig)+len(added))
	for id, o := range parent.oblig {
		child.oblig[id] = o
	}
	child.money = parent.money
	for _, c := range added {
		if !c.Public || !c.IsComplete() {
			continue
		}
		o := classifyContract(c)
		child.oblig[c.ID] = &o
		if (o.makerCatMask|o.takerCatMask)&moneyMask != 0 {
			child.money = appendCopy(child.money, c)
		}
	}
	// The obligation group is fully extended: mark its Once consumed so
	// lazy accessors hand out this state instead of rebuilding from nd.
	child.obligOnce.Do(func() {})

	// New watermark: the in-order check above makes it the last added
	// contract's creation time (or the parent's, for a contract-less batch).
	for _, c := range added {
		if c.Created.After(child.maxCreated) {
			child.maxCreated = c.Created
		}
	}

	// Give nd its columnar projection cheaply too, if ingest.Apply has not
	// already: parent blocks shared, one new block for the added rows.
	nd.ExtendColumnsFrom(ix.D, added)

	nix := &Index{D: nd}
	nix.g.Store(child)
	// Share the extended groups with every future Index over nd.
	nd.StoreDerived(child)
	return nix
}

// appendCopy appends c to s without ever growing into s's backing array:
// the capped three-index slice forces the append to allocate, so siblings
// derived from the same parent cannot clobber each other's elements.
func appendCopy(s []*forum.Contract, c *forum.Contract) []*forum.Contract {
	return append(s[:len(s):len(s)], c)
}
