package analysis

import (
	"sync"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/forum"
)

// MaxCreated returns the latest contract creation time in the corpus
// (zero when empty) — the watermark Append's in-order check compares new
// events against.
func (ix *Index) MaxCreated() time.Time {
	ix.maxOnce.Do(func() {
		for _, c := range ix.D.Contracts {
			if c.Created.After(ix.maxCreated) {
				ix.maxCreated = c.Created
			}
		}
	})
	return ix.maxCreated
}

// Append derives the Index for nd — the parent corpus extended by the
// added contracts, in that order — incrementally: every derived group is
// extended in place of being rebuilt, and only the new completed-public
// obligation text goes through the classifier. nd must be ix.D plus added
// (ingest.Apply's contract): the builders' corpus-order iteration then
// makes the result structurally identical to NewIndex(nd) built from
// scratch, which the golden incremental test pins report-byte-for-byte.
//
// The in-order fast path requires every added contract to be created at
// or after the parent's creation watermark; an out-of-order append has
// dirtied history (month buckets, era membership, first-era-of-use are no
// longer suffix-extensions), so Append falls back to a full rebuild.
//
// The parent Index is never mutated: array-of-slice groups are copied by
// value, bucket extensions use capped appends (the parent's backing
// arrays cannot be written through), and maps are shallow-cloned before
// new keys land. Suite runs holding the parent keep reading consistent
// data.
func (ix *Index) Append(nd *dataset.Dataset, added []*forum.Contract) *Index {
	watermark := ix.MaxCreated()
	for _, c := range added {
		if c.Created.Before(watermark) {
			return NewIndex(nd) // out-of-order: history dirtied, rebuild
		}
	}

	// Force-build every parent group so the child can extend rather than
	// re-derive. After the first append these are no-ops: the previous
	// child was born with all groups built.
	ix.buildMonths()
	ix.buildSubsets()
	ix.InEra(dataset.EraSetup)
	ix.buildUsers()
	ix.buildObligations()
	ix.MoneyContracts()

	child := &Index{D: nd}

	// Months: value-copy the bucket arrays, then cap each touched bucket
	// before appending so the parent's backing array is never written.
	child.byMonth = ix.byMonth
	child.completedByMonth = ix.completedByMonth
	for _, c := range added {
		m := dataset.MonthOf(c.Created)
		child.byMonth[m] = appendCopy(child.byMonth[m], c)
		if c.IsComplete() {
			at := c.Completed
			if at.IsZero() {
				at = c.Created
			}
			cm := dataset.MonthOf(at)
			child.completedByMonth[cm] = appendCopy(child.completedByMonth[cm], c)
		}
	}

	// Subsets: suffix-extend in corpus order.
	child.completed = ix.completed
	child.public = ix.public
	child.completedPublic = ix.completedPublic
	for _, c := range added {
		done := c.IsComplete()
		if done {
			child.completed = appendCopy(child.completed, c)
		}
		if c.Public {
			child.public = appendCopy(child.public, c)
			if done {
				child.completedPublic = appendCopy(child.completedPublic, c)
			}
		}
	}

	// Eras.
	child.inEra = ix.inEra
	for _, c := range added {
		e := dataset.EraOf(c.Created)
		child.inEra[e] = appendCopy(child.inEra[e], c)
	}

	// Per-user groupings: clone the maps, extend touched users' lists.
	child.userContracts = make(map[forum.UserID][]*forum.Contract, len(ix.userContracts)+2*len(added))
	for u, cs := range ix.userContracts {
		child.userContracts[u] = cs
	}
	child.firstEra = make(map[forum.UserID]dataset.Era, len(ix.firstEra)+2*len(added))
	for u, e := range ix.firstEra {
		child.firstEra[u] = e
	}
	for _, c := range added {
		child.userContracts[c.Maker] = appendCopy(child.userContracts[c.Maker], c)
		if c.Taker != c.Maker {
			child.userContracts[c.Taker] = appendCopy(child.userContracts[c.Taker], c)
		}
		e := dataset.EraOf(c.Created)
		for _, u := range []forum.UserID{c.Maker, c.Taker} {
			if prev, ok := child.firstEra[u]; !ok || e < prev {
				child.firstEra[u] = e
			}
		}
	}

	// Obligation table: clone, then classify only the new completed-public
	// text — the incremental path's whole point.
	child.oblig = make(map[forum.ContractID]*obligation, len(ix.oblig)+len(added))
	for id, o := range ix.oblig {
		child.oblig[id] = o
	}
	child.money = ix.money
	for _, c := range added {
		if !c.Public || !c.IsComplete() {
			continue
		}
		o := classifyContract(c)
		child.oblig[c.ID] = &o
		if isMoney(o.MakerCats) || isMoney(o.TakerCats) {
			child.money = appendCopy(child.money, c)
		}
	}

	// New watermark: the in-order check above makes it the last added
	// contract's creation time (or the parent's, for a contract-less batch).
	child.maxCreated = watermark
	for _, c := range added {
		if c.Created.After(child.maxCreated) {
			child.maxCreated = c.Created
		}
	}

	// Mark every group built so the child's lazy accessors hand out the
	// extended state instead of rebuilding from nd.
	for _, once := range []*sync.Once{
		&child.monthsOnce, &child.subsetsOnce, &child.erasOnce,
		&child.usersOnce, &child.obligOnce, &child.moneyOnce, &child.maxOnce,
	} {
		once.Do(func() {})
	}
	return child
}

// appendCopy appends c to s without ever growing into s's backing array:
// the capped three-index slice forces the append to allocate, so siblings
// derived from the same parent cannot clobber each other's elements.
func appendCopy(s []*forum.Contract, c *forum.Contract) []*forum.Contract {
	return append(s[:len(s):len(s)], c)
}
