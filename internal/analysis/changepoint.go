package analysis

import (
	"sort"

	"turnup/internal/dataset"
)

// ChangePoint is a detected structural break in the monthly created-
// contract series.
type ChangePoint struct {
	Month dataset.Month
	// Score is the normalised mean-shift statistic: |mean after − mean
	// before| over a ±3-month window, divided by the pooled mean.
	Score float64
}

// ChangePoints supports the DESIGN.md §6 "deductive era boundaries"
// ablation: the paper imposes its era boundaries from external events
// rather than inferring them, and this scan shows the data independently
// breaks near the same months (2019-03 and 2020-03/04).
func ChangePoints(d *dataset.Dataset, top int) []ChangePoint {
	return changePointsIdx(NewIndex(d), top)
}

func changePointsIdx(ix *Index, top int) []ChangePoint {
	byMonth := ix.ByMonth()
	var series [dataset.NumMonths]float64
	for m := range byMonth {
		series[m] = float64(len(byMonth[m]))
	}
	const w = 3
	var points []ChangePoint
	for m := w; m <= dataset.NumMonths-w; m++ {
		var before, after float64
		for i := m - w; i < m; i++ {
			before += series[i]
		}
		for i := m; i < m+w; i++ {
			after += series[i]
		}
		before /= w
		after /= w
		pooled := (before + after) / 2
		if pooled == 0 {
			continue
		}
		diff := after - before
		if diff < 0 {
			diff = -diff
		}
		points = append(points, ChangePoint{Month: dataset.Month(m), Score: diff / pooled})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Score > points[j].Score })
	// Suppress near-duplicate months (adjacent windows overlapping the
	// same break): keep the strongest per ±2-month neighbourhood.
	var out []ChangePoint
	for _, p := range points {
		dup := false
		for _, q := range out {
			dm := int(p.Month) - int(q.Month)
			if dm < 0 {
				dm = -dm
			}
			if dm <= 2 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
		if len(out) == top {
			break
		}
	}
	return out
}
