package analysis

import (
	"testing"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/rng"
)

func TestZIPAllUsersTableNine(t *testing.T) {
	d := corpus(t)
	results, err := ZIPAllUsers(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d era models", len(results))
	}
	for i, r := range results {
		if r.Era != dataset.Eras[i] {
			t.Errorf("era %d = %v", i, r.Era)
		}
		m := r.Model
		if !m.Converged {
			t.Errorf("%v model did not converge", r.Era)
		}
		if m.N != r.Records {
			t.Errorf("%v: model N %d vs records %d", r.Era, m.N, r.Records)
		}
		if m.PctZero <= 0 || m.PctZero >= 100 {
			t.Errorf("%v pct zero = %v", r.Era, m.PctZero)
		}
		if m.McFadden < 0.2 || m.McFadden > 0.95 {
			t.Errorf("%v McFadden = %v", r.Era, m.McFadden)
		}
		// The covariate sets match the paper's Table 9 layout.
		wantCount := 9
		wantZero := 5
		if r.Era == dataset.EraSetup {
			wantCount, wantZero = 8, 4 // no first-time covariate
		}
		if len(m.Count.Names) != wantCount {
			t.Errorf("%v count covariates = %v", r.Era, m.Count.Names)
		}
		if len(m.Zero.Names) != wantZero {
			t.Errorf("%v zero covariates = %v", r.Era, m.Zero.Names)
		}
		// Activity covariates drive completion: marketplace posts and
		// positive ratings positive and significant in every era.
		idx := func(block []string, name string) int {
			for j, n := range block {
				if n == name {
					return j
				}
			}
			t.Fatalf("%v missing covariate %s", r.Era, name)
			return -1
		}
		// Activity drives completion: in STABLE (the largest sample) the
		// marketplace-posts and positive-rating coefficients are positive
		// and strongly significant; smaller eras are noisier at test scale.
		if r.Era == dataset.EraStable {
			j := idx(m.Count.Names, "Marketplace Post Count")
			if m.Count.Coef[j] <= 0 || m.Count.PValues[j] > 0.001 {
				t.Errorf("%v marketplace posts coef = %v (p=%v)", r.Era, m.Count.Coef[j], m.Count.PValues[j])
			}
			j = idx(m.Count.Names, "Positive Rating")
			if m.Count.Coef[j] <= 0 {
				t.Errorf("%v positive rating coef = %v", r.Era, m.Count.Coef[j])
			}
		}
		// Negative ratings lower the odds of zero completed contracts.
		if jz := idx(m.Zero.Names, "Negative Rating"); m.Zero.Coef[jz] >= 0 {
			t.Errorf("%v zero-model negative rating coef = %v, want negative", r.Era, m.Zero.Coef[jz])
		}
	}
	// The Vuong statistic favours ZIP over plain Poisson on this data.
	favoured := 0
	for _, r := range results {
		if r.Model.Vuong > 0 {
			favoured++
		}
	}
	if favoured < 2 {
		t.Errorf("Vuong favours ZIP in only %d/3 eras", favoured)
	}
}

func TestZIPSubgroupsTableTen(t *testing.T) {
	d := corpus(t)
	results, err := ZIPSubgroups(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d subgroup models", len(results))
	}
	seen := map[string]bool{}
	var firstTimeN, existingN int
	for _, r := range results {
		key := r.Era.String() + "/" + r.Subset
		if seen[key] {
			t.Fatalf("duplicate model %s", key)
		}
		seen[key] = true
		if !r.Model.Converged {
			t.Errorf("%s did not converge", key)
		}
		// Sub-sample designs drop the first-time covariate.
		for _, n := range r.Model.Count.Names {
			if n == "First-Time Contract User" {
				t.Errorf("%s retains the first-time covariate", key)
			}
		}
		if r.Era == dataset.EraStable {
			if r.Subset == "first-time" {
				firstTimeN = r.Records
			} else {
				existingN = r.Records
			}
		}
	}
	// STABLE has far more first-time than existing users (paper: 16,123
	// vs 3,534).
	if firstTimeN <= existingN {
		t.Errorf("STABLE first-time %d not above existing %d", firstTimeN, existingN)
	}
}

func TestZIPRecordsConsistency(t *testing.T) {
	d := corpus(t)
	ix := NewIndex(d)
	all := zipRecords(ix, dataset.EraStable, "all")
	ft := zipRecords(ix, dataset.EraStable, "first-time")
	ex := zipRecords(ix, dataset.EraStable, "existing")
	if len(ft)+len(ex) != len(all) {
		t.Fatalf("subsets %d+%d != all %d", len(ft), len(ex), len(all))
	}
	for _, r := range ft {
		if !r.FirstTime {
			t.Fatal("non-first-time record in first-time subset")
		}
	}
	for _, r := range all {
		if r.Initiated == 0 && r.Accepted == 0 {
			// Every record stems from a contract; makers always count as
			// initiators, but takers of never-accepted contracts have
			// zero accepted. They must still have been a party.
			if r.Completed > 0 {
				t.Fatalf("record with completions but no activity: %+v", r)
			}
		}
		if r.LengthDays < 0 {
			t.Fatalf("negative length: %+v", r)
		}
	}
}

func TestLatentClassesTableSix(t *testing.T) {
	d := smallCorpus(t)
	ltm, err := LatentClasses(d, LTMOptions{K: 8, Restarts: 2}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if ltm.Fit.K != 8 {
		t.Fatalf("K = %d", ltm.Fit.K)
	}
	// Class weights form a distribution.
	sum := 0.0
	for _, w := range ltm.Fit.Weights {
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum to %v", sum)
	}
	// The fitted classes must separate the market's two big poles: a
	// SALE-maker-dominated class and a heavy SALE-taker class.
	makerClass, takerClass := -1, -1
	for c := 0; c < ltm.Fit.K; c++ {
		makeSale := ltm.Fit.Rates[c][int(forum.Sale)]
		takeSale := ltm.Fit.Rates[c][forum.NumContractTypes+int(forum.Sale)]
		if makeSale > 0.5 && makeSale > 3*takeSale && makerClass == -1 {
			makerClass = c
		}
		if takeSale > 5 && takerClass == -1 {
			takerClass = c
		}
	}
	if makerClass == -1 {
		t.Error("no SALE-maker class recovered")
	}
	if takerClass == -1 {
		t.Error("no heavy SALE-taker class recovered")
	}
	// Series totals match the number of attributable transactions.
	madeTotal := 0
	for c := range ltm.MadeSeries {
		for m := 0; m < dataset.NumMonths; m++ {
			for typ := 0; typ < forum.NumContractTypes; typ++ {
				madeTotal += ltm.MadeSeries[c][m][typ]
			}
		}
	}
	if madeTotal != len(d.Contracts) {
		t.Errorf("made series total %d, want %d", madeTotal, len(d.Contracts))
	}
	// Transition matrix rows are distributions (or all-zero).
	for i, row := range ltm.Transition {
		s := 0.0
		for _, v := range row {
			s += v
		}
		if s != 0 && (s < 0.999 || s > 1.001) {
			t.Errorf("transition row %d sums to %v", i, s)
		}
	}
}

func TestLTMErrors(t *testing.T) {
	d := smallCorpus(t)
	if _, err := LatentClasses(d, LTMOptions{K: 0}, rng.New(1)); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := LatentClasses(d, LTMOptions{K: 1 << 30}, rng.New(1)); err == nil {
		t.Error("absurd K accepted")
	}
}

func TestFlowsTableEight(t *testing.T) {
	d := smallCorpus(t)
	ltm, err := LatentClasses(d, LTMOptions{K: 8, Restarts: 2}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	flows := Flows(d, ltm)
	for _, e := range dataset.Eras {
		top := flows.Top(e, forum.Sale, 3)
		if len(top) == 0 {
			t.Fatalf("no SALE flows in %v", e)
		}
		// Shares are sorted descending and within (0, 1].
		for i, f := range top {
			if f.Share <= 0 || f.Share > 1 {
				t.Fatalf("%v flow share %v", e, f.Share)
			}
			if i > 0 && f.Share > top[i-1].Share {
				t.Fatalf("%v flows not sorted", e)
			}
			if f.AvgPerMonth <= 0 {
				t.Fatalf("%v flow avg %v", e, f.AvgPerMonth)
			}
		}
		// All shares for a type sum to at most 1.
		total := 0.0
		for _, f := range flows.Flows[e][forum.Sale] {
			total += f.Share
		}
		if total > 1.0001 {
			t.Fatalf("%v SALE flow shares sum to %v", e, total)
		}
	}
	// In STABLE the dominant SALE flow lands on a heavy SALE-taker class
	// (the C→L pattern of Table 8).
	top := flows.Top(dataset.EraStable, forum.Sale, 1)[0]
	takeRate := ltm.Fit.Rates[top.TakerClass][forum.NumContractTypes+int(forum.Sale)]
	if takeRate < 1 {
		t.Errorf("top STABLE SALE flow taker class has take-rate %v", takeRate)
	}
}

func TestLTMDispersionNearOne(t *testing.T) {
	d := smallCorpus(t)
	ltm, err := LatentClasses(d, LTMOptions{K: 8, Restarts: 2}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	phi := ltm.Dispersion()
	// The paper: "non-overdispersed count data" justifies the Poisson
	// emission. With enough classes the within-class dispersion should be
	// near 1; far above 2 would contradict the modelling choice.
	if phi <= 0 || phi > 2.5 {
		t.Errorf("Pearson dispersion = %.2f, want ~1", phi)
	}
}

// TestLTMSweep exercises the class-count selection path (the paper's
// "most accurate and parsimonious (per AIC and BIC) is a 12-class model"
// step) at a small sweep range.
func TestLTMSweep(t *testing.T) {
	d := smallCorpus(t)
	ltm, err := LatentClasses(d, LTMOptions{K: 4, Restarts: 1, SweepMin: 2, SweepMax: 5}, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if len(ltm.Sweep) != 4 {
		t.Fatalf("sweep fitted %d class counts, want 4", len(ltm.Sweep))
	}
	// Log-likelihood is (weakly) increasing in K for nested mixtures.
	for k := 3; k <= 5; k++ {
		if ltm.Sweep[k].LogLik < ltm.Sweep[k-1].LogLik-50 {
			t.Errorf("loglik dropped from k=%d (%v) to k=%d (%v)",
				k-1, ltm.Sweep[k-1].LogLik, k, ltm.Sweep[k].LogLik)
		}
	}
	// BIC penalises complexity: it must not be monotone decreasing forever
	// (i.e. some finite K is preferred). Sanity: every fit has finite BIC.
	for k, fit := range ltm.Sweep {
		if fit.BIC != fit.BIC || fit.BIC == 0 {
			t.Errorf("k=%d has degenerate BIC %v", k, fit.BIC)
		}
	}
}
